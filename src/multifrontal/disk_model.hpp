// A secondary-memory cost model: turns the paper's I/O *volume* objective
// into estimated I/O *time*, the quantity an out-of-core solver ultimately
// minimizes. The paper optimizes volume because time is monotone in it for
// a fixed device; this model adds the per-operation latency term, which
// breaks ties between heuristics that trade few-large writes (FirstFit)
// against many-small writes (LSNF fallbacks) — quantified by
// bench/ablations and EXPERIMENTS.md.
#pragma once

#include "core/minio.hpp"
#include "core/traversal.hpp"
#include "tree/tree.hpp"

namespace treemem {

struct DiskModel {
  double latency_s = 5e-3;          ///< per-operation seek/queue latency
  double bandwidth_entries_s = 25e6; ///< entries per second (8-byte entries
                                     ///< at ~200 MB/s)

  /// Time to write (or read back) a file of `entries` matrix entries.
  double transfer_s(Weight entries) const {
    return latency_s + static_cast<double>(entries) / bandwidth_entries_s;
  }
};

/// Estimated total I/O time of a schedule: every write event is one write
/// plus, later, one read of the same file.
double io_time_s(const Tree& tree, const IoSchedule& schedule,
                 const DiskModel& model);

/// Convenience: estimated I/O time of a heuristic result.
inline double io_time_s(const Tree& tree, const MinIoResult& result,
                        const DiskModel& model) {
  return io_time_s(tree, result.schedule, model);
}

}  // namespace treemem
