// Out-of-core multifrontal execution: runs a MinIO eviction schedule for
// real. Where core/minio.hpp *plans* which contribution blocks to spill,
// this engine *executes* the plan: spilled blocks move to a simulated
// secondary store right after they are produced, are restored just before
// their parent assembles them, and the engine asserts that in-core live
// memory never exceeds the budget the plan was made for.
//
// Directions: MinIO schedules are expressed on the out-tree order σ (the
// paper's convention); the factorization runs bottom-up on reverse(σ). A
// file written at out-tree step τ(j) is, in factorization time, a
// contribution block that spends part of its produced-to-consumed lifetime
// on disk — spilling it immediately after production is the
// memory-dominant choice, so that is what the engine does.
#pragma once

#include "core/traversal.hpp"
#include "multifrontal/disk_model.hpp"
#include "multifrontal/numeric.hpp"
#include "symbolic/assembly_tree.hpp"

namespace treemem {

struct OutOfCoreRunResult {
  CholeskyFactor factor;
  /// Largest in-core live entries over the run (spilled blocks excluded).
  Weight peak_live_entries = 0;
  /// Entries actually moved to the secondary store (once each; the same
  /// volume is read back).
  Weight entries_spilled = 0;
  /// Number of spill (write) operations.
  int spill_events = 0;
  /// I/O time under the given disk model (writes + reads).
  double estimated_io_s = 0.0;
};

/// Executes `schedule` (out-tree order + writes, e.g. from minio_heuristic)
/// against `budget_entries` of in-core memory. Throws if the schedule is
/// structurally invalid; TM_ASSERTs that the measured in-core peak respects
/// the budget (guaranteed when the plan was feasible for the same tree,
/// since real fronts never exceed the model's padded fronts).
OutOfCoreRunResult multifrontal_cholesky_out_of_core(
    const SymmetricMatrix& matrix, const AssemblyTree& assembly,
    const IoSchedule& schedule, Weight budget_entries,
    const DiskModel& disk = {});

}  // namespace treemem
