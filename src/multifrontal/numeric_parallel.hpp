// Parallel numeric multifrontal Cholesky: the FrontalEngine kernels of
// multifrontal/numeric.hpp dispatched through the memory-bounded threaded
// executor of parallel/executor.hpp — the end-to-end system the paper's
// traversal model abstracts, running for real.
//
// Each assembly-tree task body allocates its front, extend-adds its
// children's contribution blocks, runs the dense partial Cholesky and
// emits its contribution block; the executor provides the precedence
// (children complete before the parent starts) and gates admission on the
// abstract Eq. 1 transient accounting, which remains the source of truth
// for the memory budget. The engine independently meters *measured* live
// factor entries; on every run measured occupancy is bounded by the
// modeled occupancy (fronts never exceed their padded model weights), and
// on single-worker runs over perfectly amalgamated trees the two agree
// step for step — both facts are pinned by
// tests/multifrontal/numeric_parallel_test.cpp.
//
// The factor is schedule-exact: fronts write disjoint factor columns and
// extend-add walks children in tree order, so every worker count and every
// interleaving produces bit-identical values to the serial engine *running
// the same kernel*. Kernel selection (options.kernel) composes with the
// tree-level parallelism: the scalar and blocked kernels keep the factor
// bit-identical to the scalar reference, while the parallel-tiled kernel
// adds intra-front parallelism over trailing-update tiles for the large
// root fronts (contract: small residual; currently also bit-identical —
// see dense/front_kernel.hpp).
#pragma once

#include "multifrontal/numeric.hpp"
#include "parallel/schedule_core.hpp"

namespace treemem {

struct ParallelFactorOptions {
  int workers = 4;
  /// Budget on the *modeled* live entries (Eq. 1 accounting over the
  /// assembly tree's n_i/f_i weights); kInfiniteWeight disables it.
  Weight memory_budget = kInfiniteWeight;
  ParallelPriority priority = ParallelPriority::kCriticalPath;
  /// How fronts are admitted against the budget. The greedy default can
  /// deadlock under a tight budget; lookahead and reservation consult
  /// `serial_witness` and never stall when the budget covers its serial
  /// peak. The factor stays bit-identical across policies (schedule-exact
  /// numerics — policies only reorder the schedule).
  AdmissionPolicy admission = AdmissionPolicy::kGreedy;
  /// Optional bottom-up witness traversal of the assembly tree for the
  /// non-greedy policies; empty = the MinMem optimum.
  Traversal serial_witness = {};
  /// Dense front kernel (dense/front_kernel.hpp). The default honors the
  /// TREEMEM_KERNEL environment override and otherwise runs the scalar
  /// reference. Note the env parse is strict: default-constructing this
  /// struct under a malformed TREEMEM_KERNEL throws (fail fast at the
  /// experiment boundary). Code that must stay env-independent — the
  /// Solver facade does this — names every member in a designated
  /// initializer so this default is never evaluated.
  KernelConfig kernel = kernel_config_from_env();
  /// Elastic crewing (ExecutorOptions::lease_idle_workers): tree-level
  /// workers with no ready front return to the persistent pool mid-run,
  /// where a large front's trailing-update lease can absorb them — the
  /// root-front case lone-job promotion (PR 8) could only approximate
  /// from outside the run. Off = the pre-pool behavior (the full crew is
  /// held for the whole run), kept for the scaling sweep's comparison.
  /// The factor is bit-identical either way (schedule-exact numerics).
  bool lease_idle_workers = true;
};

struct ParallelFactorResult {
  /// False iff the run could not complete under the memory budget (some
  /// front's transient or the witness peak exceeds it outright, or the
  /// greedy schedule stalled). The factor is only valid on feasible runs.
  bool feasible = false;
  CholeskyFactor factor;
  long long flops = 0;
  /// Engine-measured peak of live factor entries (resident contribution
  /// blocks + active fronts, full-square storage). Always <= the modeled
  /// peak, hence <= the budget on feasible runs.
  Weight measured_peak_entries = 0;
  /// Executor-accounted Eq. 1 peak over the assembly-tree weights.
  Weight modeled_peak_entries = 0;
  /// Measured wall-clock seconds of the factorization (executor makespan).
  double factor_seconds = 0.0;
  /// Σ per-front busy seconds / makespan — achieved parallel speedup.
  double speedup = 0.0;
  /// Supernodes in completion order — a valid bottom-up traversal.
  Traversal completion_order;
  /// Intra-front lease tallies of the run's kernel: panels that cleared
  /// the volume gate and got pool workers / found none idle and ran
  /// inline. Both 0 under the serial kernels.
  long long leases_granted = 0;
  long long lease_denied = 0;
  /// Measured occupancy at each front's allocation instant / right after
  /// each front's release, in completion order. On w = 1 these are the
  /// serial stepwise memory profiles (and live_after_step.back() == 0).
  std::vector<Weight> transient_per_step;
  std::vector<Weight> live_after_step;
};

/// Factors `matrix` (already permuted!) with options.workers threads over
/// the assembly tree, under the modeled memory budget. Produces the same
/// factor as multifrontal_cholesky (bit-exact). Throws treemem::Error if
/// the matrix is not positive definite or does not match the tree; the
/// error surfaces through the executor's exception-propagation contract
/// (workers drain and join, then the first error is rethrown).
ParallelFactorResult factor_parallel(const SymmetricMatrix& matrix,
                                     const AssemblyTree& assembly,
                                     const ParallelFactorOptions& options = {});

/// Convenience overload matching the "matrix, tree, budget, workers" call
/// shape of the bench and tests.
inline ParallelFactorResult factor_parallel(const SymmetricMatrix& matrix,
                                            const AssemblyTree& assembly,
                                            Weight memory_budget,
                                            int workers) {
  ParallelFactorOptions options;
  options.workers = workers;
  options.memory_budget = memory_budget;
  return factor_parallel(matrix, assembly, options);
}

}  // namespace treemem
