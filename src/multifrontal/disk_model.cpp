#include "multifrontal/disk_model.hpp"

namespace treemem {

double io_time_s(const Tree& tree, const IoSchedule& schedule,
                 const DiskModel& model) {
  TM_CHECK(model.latency_s >= 0.0 && model.bandwidth_entries_s > 0.0,
           "disk model: bad parameters");
  double total = 0.0;
  for (const IoWrite& w : schedule.writes) {
    const Weight entries = tree.file_size(w.node);
    total += 2.0 * model.transfer_s(entries);  // one write + one read back
  }
  return total;
}

}  // namespace treemem
