#include "multifrontal/out_of_core.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"
#include "symbolic/symbolic.hpp"

namespace treemem {

namespace {

struct Block {
  std::vector<Index> rows;
  std::vector<double> values;  // dense |rows| x |rows|, column-major
  bool on_disk = false;
};

}  // namespace

OutOfCoreRunResult multifrontal_cholesky_out_of_core(
    const SymmetricMatrix& matrix, const AssemblyTree& assembly,
    const IoSchedule& schedule, Weight budget_entries, const DiskModel& disk) {
  const Index n = matrix.size();
  const Tree& tree = assembly.tree;
  TM_CHECK(assembly.columns == n, "matrix/assembly size mismatch");

  // Validate the schedule once with the reference checker at the budget...
  // using the *model* weights; real fronts are no larger, so feasibility
  // transfers to the engine.
  {
    const CheckResult check = check_out_of_core(tree, schedule, budget_entries);
    TM_CHECK(check.feasible,
             "out-of-core schedule rejected by Algorithm 2: " << check.reason);
  }

  // Which contribution blocks does the plan spill?
  std::vector<char> spills(static_cast<std::size_t>(tree.size()), 0);
  for (const IoWrite& w : schedule.writes) {
    spills[static_cast<std::size_t>(w.node)] = 1;
  }

  // Bottom-up execution order.
  const Traversal bottom_up = reverse_traversal(schedule.order);

  // Member columns per supernode.
  std::vector<std::vector<Index>> members(static_cast<std::size_t>(tree.size()));
  for (Index j = 0; j < n; ++j) {
    members[static_cast<std::size_t>(
                assembly.supernode_of[static_cast<std::size_t>(j)])]
        .push_back(j);
  }
  for (auto& m : members) {
    std::sort(m.begin(), m.end());
  }

  const SparsePattern l_pattern = symbolic_cholesky(matrix.pattern());

  OutOfCoreRunResult result;
  result.factor.pattern = l_pattern;
  result.factor.values.assign(static_cast<std::size_t>(l_pattern.nnz()), 0.0);

  std::vector<Block> blocks(static_cast<std::size_t>(tree.size()));
  Weight live = 0;

  std::vector<Index> rows;
  std::vector<Index> front_pos(static_cast<std::size_t>(n), -1);
  std::vector<double> front;

  auto block_entries = [](const Block& b) {
    return static_cast<Weight>(b.rows.size() * b.rows.size());
  };

  for (const NodeId s : bottom_up) {
    const auto& cols = members[static_cast<std::size_t>(s)];
    rows.clear();
    for (const Index j : cols) {
      const auto lc = l_pattern.column(j);
      rows.insert(rows.end(), lc.begin(), lc.end());
    }
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    const std::size_t m = rows.size();
    const std::size_t eta = cols.size();
    for (std::size_t k = 0; k < m; ++k) {
      front_pos[static_cast<std::size_t>(rows[k])] = static_cast<Index>(k);
    }

    // Read back any spilled child blocks first (their entries re-enter the
    // in-core pool before the front is at full size — matching the
    // checker's accounting where the read-back precedes MemReq(i)).
    for (const NodeId c : tree.children(s)) {
      Block& cb = blocks[static_cast<std::size_t>(c)];
      if (cb.on_disk) {
        cb.on_disk = false;
        live += block_entries(cb);
        result.estimated_io_s += disk.transfer_s(block_entries(cb));
      }
    }

    front.assign(m * m, 0.0);
    live += static_cast<Weight>(m * m);
    result.peak_live_entries = std::max(result.peak_live_entries, live);

    auto at = [&](std::size_t r, std::size_t c) -> double& {
      return front[c * m + r];
    };
    for (const Index j : cols) {
      const std::size_t jc =
          static_cast<std::size_t>(front_pos[static_cast<std::size_t>(j)]);
      for (const Index r : matrix.pattern().column(j)) {
        if (r >= j) {
          at(static_cast<std::size_t>(front_pos[static_cast<std::size_t>(r)]), jc) +=
              matrix.value_of(r, j);
        }
      }
    }
    for (const NodeId c : tree.children(s)) {
      Block& cb = blocks[static_cast<std::size_t>(c)];
      const std::size_t cm = cb.rows.size();
      for (std::size_t cc = 0; cc < cm; ++cc) {
        const std::size_t fc = static_cast<std::size_t>(
            front_pos[static_cast<std::size_t>(cb.rows[cc])]);
        for (std::size_t cr = cc; cr < cm; ++cr) {
          at(static_cast<std::size_t>(
                 front_pos[static_cast<std::size_t>(cb.rows[cr])]),
             fc) += cb.values[cc * cm + cr];
        }
      }
      live -= block_entries(cb);
      cb = Block{};
    }

    for (std::size_t k = 0; k < eta; ++k) {
      const double pivot = at(k, k);
      TM_CHECK(pivot > 0.0, "matrix is not positive definite at column "
                                << cols[k]);
      const double lkk = std::sqrt(pivot);
      at(k, k) = lkk;
      for (std::size_t r = k + 1; r < m; ++r) {
        at(r, k) /= lkk;
      }
      for (std::size_t c = k + 1; c < m; ++c) {
        const double lck = at(c, k);
        if (lck == 0.0) {
          continue;
        }
        for (std::size_t r = c; r < m; ++r) {
          at(r, c) -= at(r, k) * lck;
        }
      }
    }

    for (std::size_t k = 0; k < eta; ++k) {
      const Index j = cols[k];
      const auto lc = l_pattern.column(j);
      const std::size_t base = static_cast<std::size_t>(
          l_pattern.col_ptr()[static_cast<std::size_t>(j)]);
      for (std::size_t i = 0; i < lc.size(); ++i) {
        result.factor.values[base + i] =
            at(static_cast<std::size_t>(
                   front_pos[static_cast<std::size_t>(lc[i])]),
               k);
      }
    }

    Block& own = blocks[static_cast<std::size_t>(s)];
    const std::size_t cbm = m - eta;
    own.rows.assign(rows.begin() + static_cast<std::ptrdiff_t>(eta), rows.end());
    own.values.assign(cbm * cbm, 0.0);
    for (std::size_t c = 0; c < cbm; ++c) {
      for (std::size_t r = c; r < cbm; ++r) {
        own.values[c * cbm + r] = at(eta + r, eta + c);
      }
    }
    live += block_entries(own);
    live -= static_cast<Weight>(m * m);

    // Execute the plan: spill the fresh contribution block immediately if
    // the schedule writes it at any point of its lifetime.
    if (spills[static_cast<std::size_t>(s)] && cbm > 0) {
      own.on_disk = true;
      live -= block_entries(own);
      result.entries_spilled += block_entries(own);
      ++result.spill_events;
      result.estimated_io_s += disk.transfer_s(block_entries(own));
    }

    for (const Index r : rows) {
      front_pos[static_cast<std::size_t>(r)] = -1;
    }
  }

  TM_ASSERT(live == 0, "out-of-core run leaked " << live << " entries");
  TM_ASSERT(result.peak_live_entries <= budget_entries,
            "engine exceeded the planned budget: " << result.peak_live_entries
                                                   << " > " << budget_entries);
  return result;
}

}  // namespace treemem
