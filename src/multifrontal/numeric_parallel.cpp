#include "multifrontal/numeric_parallel.hpp"

#include <mutex>
#include <utility>
#include <vector>

#include "parallel/executor.hpp"

namespace treemem {

namespace {

/// A small pool of per-front workspaces, one in flight per worker. Tasks
/// check a workspace out for the duration of one front; the pool mutex is
/// negligible next to the dense kernel it brackets.
class WorkspacePool {
 public:
  WorkspacePool(const FrontalEngine& engine, int workers) {
    free_.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      free_.push_back(engine.make_workspace());
    }
  }

  FrontWorkspace acquire() {
    std::lock_guard<std::mutex> lock(mutex_);
    TM_ASSERT(!free_.empty(), "workspace pool exhausted: more concurrent "
                              "fronts than workers");
    FrontWorkspace ws = std::move(free_.back());
    free_.pop_back();
    return ws;
  }

  void release(FrontWorkspace ws) {
    std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(std::move(ws));
  }

 private:
  std::mutex mutex_;
  std::vector<FrontWorkspace> free_;
};

}  // namespace

ParallelFactorResult factor_parallel(const SymmetricMatrix& matrix,
                                     const AssemblyTree& assembly,
                                     const ParallelFactorOptions& options) {
  TM_CHECK(options.workers >= 1, "factor_parallel: need at least one worker");
  FrontalEngine engine(matrix, assembly, options.kernel);
  WorkspacePool pool(engine, options.workers);

  // Flop-count durations drive both the priority ranks and the executor's
  // notion of task cost — the real-payload analogue of the scheduling
  // studies' n_i + f_i proxy.
  const std::vector<double> durations = engine.estimated_front_flops();

  ExecutorOptions exec_options;
  exec_options.workers = options.workers;
  exec_options.memory_budget = options.memory_budget;
  exec_options.priority = options.priority;
  exec_options.admission = options.admission;
  exec_options.serial_witness = options.serial_witness;
  exec_options.lease_idle_workers = options.lease_idle_workers;
  // Tree level and front level draw from the same pool: whichever pool
  // the kernel leases from is the one the executor recruits stints from
  // (tests pass a private pool through the kernel config for
  // deterministic counters).
  exec_options.pool = options.kernel.pool;

  const ExecutorResult run = execute_task_tree(
      assembly.tree, exec_options, durations, [&](NodeId node) {
        FrontWorkspace ws = pool.acquire();
        try {
          engine.process_front(node, ws);
        } catch (...) {
          pool.release(std::move(ws));  // keep the checkout exception-safe
          throw;
        }
        pool.release(std::move(ws));
      });

  ParallelFactorResult result;
  result.feasible = run.feasible;
  result.modeled_peak_entries = run.peak_memory;
  result.measured_peak_entries = engine.peak_live_entries();
  result.flops = engine.flops();
  result.factor_seconds = run.makespan;
  result.speedup = run.speedup;
  result.completion_order = run.completion_order;
  const KernelLeaseStats lease_stats = engine.kernel_lease_stats();
  result.leases_granted = lease_stats.leases_granted;
  result.lease_denied = lease_stats.leases_denied;
  if (!run.feasible) {
    return result;  // factor left empty: the run did not complete
  }

  TM_ASSERT(engine.live_entries() == 0,
            "contribution blocks leaked: " << engine.live_entries());
  TM_ASSERT(result.measured_peak_entries <= result.modeled_peak_entries,
            "measured live entries exceeded the Eq. 1 model: "
                << result.measured_peak_entries << " > "
                << result.modeled_peak_entries);

  result.transient_per_step.reserve(result.completion_order.size());
  result.live_after_step.reserve(result.completion_order.size());
  for (const NodeId s : result.completion_order) {
    result.transient_per_step.push_back(engine.transient_at_start(s));
    result.live_after_step.push_back(engine.live_after(s));
  }
  result.factor = engine.take_factor();
  return result;
}

}  // namespace treemem
