#include "multifrontal/numeric.hpp"

#include <algorithm>
#include <cmath>

#include "obs/trace.hpp"
#include "symbolic/symbolic.hpp"

namespace treemem {

double CholeskyFactor::value_of(Index row, Index col) const {
  const auto c = pattern.column(col);
  const auto it = std::lower_bound(c.begin(), c.end(), row);
  if (it == c.end() || *it != row) {
    return 0.0;
  }
  const std::size_t offset =
      static_cast<std::size_t>(pattern.col_ptr()[static_cast<std::size_t>(col)]) +
      static_cast<std::size_t>(it - c.begin());
  return values[offset];
}

Weight LiveEntryMeter::raise(Weight delta) {
  TM_ASSERT(delta >= 0, "LiveEntryMeter::raise needs delta >= 0");
  const Weight now =
      current_.fetch_add(delta, std::memory_order_relaxed) + delta;
  Weight seen = peak_.load(std::memory_order_relaxed);
  while (now > seen &&
         !peak_.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
  }
  return now;
}

Weight LiveEntryMeter::lower(Weight delta) {
  TM_ASSERT(delta >= 0, "LiveEntryMeter::lower needs delta >= 0");
  return current_.fetch_sub(delta, std::memory_order_relaxed) - delta;
}

FrontalEngine::FrontalEngine(const SymmetricMatrix& matrix,
                             const AssemblyTree& assembly,
                             const KernelConfig& kernel)
    : matrix_(&matrix),
      assembly_(&assembly),
      kernel_(make_front_kernel(kernel)) {
  const Index n = matrix.size();
  const Tree& tree = assembly.tree;
  TM_CHECK(assembly.columns == n,
           "assembly tree built for " << assembly.columns
                                      << " columns, matrix has " << n);

  // Member columns per supernode, ascending.
  members_.assign(static_cast<std::size_t>(tree.size()), {});
  for (Index j = 0; j < n; ++j) {
    members_[static_cast<std::size_t>(
                 assembly.supernode_of[static_cast<std::size_t>(j)])]
        .push_back(j);
  }
  for (auto& m : members_) {
    std::sort(m.begin(), m.end());
  }

  // Exact factor structure (column-merge symbolic factorization).
  factor_.pattern = symbolic_cholesky(matrix.pattern());
  factor_.values.assign(static_cast<std::size_t>(factor_.pattern.nnz()), 0.0);

  // Symbolic front sizes: |union of the member columns' factor structures|.
  // The members are the leading front rows, so the union size is the
  // largest member structure extended by the earlier members — computed
  // here once so durations/priorities are available before any numeric
  // work runs.
  front_size_.assign(static_cast<std::size_t>(tree.size()), 0);
  std::vector<Index> mark(static_cast<std::size_t>(n), -1);
  for (NodeId s = 0; s < tree.size(); ++s) {
    Index count = 0;
    for (const Index j : members_[static_cast<std::size_t>(s)]) {
      for (const Index r : factor_.pattern.column(j)) {
        if (mark[static_cast<std::size_t>(r)] != s) {
          mark[static_cast<std::size_t>(r)] = s;
          ++count;
        }
      }
    }
    front_size_[static_cast<std::size_t>(s)] = count;
  }

  blocks_.assign(static_cast<std::size_t>(tree.size()), {});
  transient_at_start_.assign(static_cast<std::size_t>(tree.size()), 0);
  live_after_.assign(static_cast<std::size_t>(tree.size()), 0);
}

FrontWorkspace FrontalEngine::make_workspace() const {
  FrontWorkspace ws;
  ws.front_pos.assign(static_cast<std::size_t>(matrix_->size()), -1);
  return ws;
}

std::vector<double> FrontalEngine::estimated_front_flops() const {
  std::vector<double> flops(front_size_.size(), 1.0);
  for (std::size_t s = 0; s < front_size_.size(); ++s) {
    const double m = static_cast<double>(front_size_[s]);
    const double eta = static_cast<double>(members_[s].size());
    // Σ_{k=0..η-1} (m-k)² — the dense partial-Cholesky update volume.
    double cost = 0.0;
    for (double k = 0.0; k < eta; k += 1.0) {
      cost += (m - k) * (m - k);
    }
    flops[s] = std::max(1.0, cost);
  }
  return flops;
}

void FrontalEngine::process_front(NodeId s, FrontWorkspace& ws) {
  const Tree& tree = assembly_->tree;
  TM_CHECK(s >= 0 && s < tree.size(), "process_front: bad supernode " << s);
  TM_CHECK(ws.front_pos.size() == static_cast<std::size_t>(matrix_->size()),
           "process_front: workspace not made by this engine");
  const SparsePattern& l_pattern = factor_.pattern;
  const auto& cols = members_[static_cast<std::size_t>(s)];

  // Front rows: union of the member columns' factor structures.
  ws.rows.clear();
  for (const Index j : cols) {
    const auto lc = l_pattern.column(j);
    ws.rows.insert(ws.rows.end(), lc.begin(), lc.end());
  }
  std::sort(ws.rows.begin(), ws.rows.end());
  ws.rows.erase(std::unique(ws.rows.begin(), ws.rows.end()), ws.rows.end());
  const std::size_t m = ws.rows.size();
  const std::size_t eta = cols.size();
  // On the emitting thread's own track: the executor separately records
  // this front on its worker lane, so serial runs still get front spans.
  obs::TraceSpan trace_front("process_front", "mf",
                             obs::TraceRecorder::kNoLane, "node",
                             static_cast<long long>(s), "m",
                             static_cast<long long>(m));
  TM_ASSERT(m == static_cast<std::size_t>(
                     front_size_[static_cast<std::size_t>(s)]),
            "symbolic front size drifted from the numeric union at node " << s);
  // Members are the eta smallest rows of the front (they are mutually
  // reachable along the etree path inside the supernode; every other row
  // is a strict ancestor of the top member).
  for (std::size_t k = 0; k < eta; ++k) {
    TM_ASSERT(ws.rows[k] == cols[k],
              "member columns are not the leading front rows at node " << s);
  }
  for (std::size_t k = 0; k < m; ++k) {
    ws.front_pos[static_cast<std::size_t>(ws.rows[k])] = static_cast<Index>(k);
  }

  ws.front.assign(m * m, 0.0);
  auto at = [&](std::size_t r, std::size_t c) -> double& {
    return ws.front[c * m + r];
  };

  // Assemble the original entries of the member columns (lower part).
  for (const Index j : cols) {
    const std::size_t jc = static_cast<std::size_t>(
        ws.front_pos[static_cast<std::size_t>(j)]);
    for (const Index r : matrix_->pattern().column(j)) {
      if (r >= j) {
        TM_ASSERT(ws.front_pos[static_cast<std::size_t>(r)] >= 0,
                  "matrix entry outside the front at (" << r << "," << j << ")");
        at(static_cast<std::size_t>(ws.front_pos[static_cast<std::size_t>(r)]),
           jc) += matrix_->value_of(r, j);
      }
    }
  }

  // The front is fully allocated while the children contribution blocks are
  // still resident — that instant is the step's Eq. 1 transient, and the
  // only point where the meter's peak can rise.
  transient_at_start_[static_cast<std::size_t>(s)] =
      meter_.raise(static_cast<Weight>(m * m));

  // Extend-add the children contribution blocks, releasing each as it is
  // absorbed. Children are walked in tree order (not completion order), so
  // the floating-point sums — and hence the factor — are schedule-exact
  // under every kernel (the kernel only scatters one child at a time).
  for (const NodeId c : tree.children(s)) {
    ContributionBlock& cb = blocks_[static_cast<std::size_t>(c)];
    const std::size_t cm = cb.rows.size();
    kernel_->extend_add(ws.front.data(), m, ws.front_pos.data(),
                        cb.rows.data(), cm, cb.values.data());
    meter_.lower(static_cast<Weight>(cm * cm));
    cb.rows.clear();
    cb.rows.shrink_to_fit();
    cb.values.clear();
    cb.values.shrink_to_fit();
  }

  // Dense partial Cholesky of the leading eta pivots via the configured
  // kernel (dense/front_kernel.hpp) — scalar reference, cache-blocked, or
  // parallel-tiled for intra-front parallelism.
  flops_.fetch_add(
      kernel_->partial_factor(ws.front.data(), m, eta, cols.data()),
      std::memory_order_relaxed);

  // Extract the factor columns of the members (disjoint ranges per
  // supernode, so concurrent fronts never write the same slot).
  for (std::size_t k = 0; k < eta; ++k) {
    const Index j = cols[k];
    const auto lc = l_pattern.column(j);
    const std::size_t base = static_cast<std::size_t>(
        l_pattern.col_ptr()[static_cast<std::size_t>(j)]);
    for (std::size_t i = 0; i < lc.size(); ++i) {
      const std::size_t fr = static_cast<std::size_t>(
          ws.front_pos[static_cast<std::size_t>(lc[i])]);
      factor_.values[base + i] = at(fr, k);
    }
  }

  // Store the contribution block (full square, the model's f_s entries)
  // and release the front. The carve-out convention: the CB was already
  // counted inside m², so the meter shrinks by m² − (m−η)² in one step and
  // the peak cannot rise here.
  ContributionBlock& own = blocks_[static_cast<std::size_t>(s)];
  const std::size_t cbm = m - eta;
  own.rows.assign(ws.rows.begin() + static_cast<std::ptrdiff_t>(eta),
                  ws.rows.end());
  own.values.assign(cbm * cbm, 0.0);
  for (std::size_t c = 0; c < cbm; ++c) {
    for (std::size_t r = c; r < cbm; ++r) {
      own.values[c * cbm + r] = at(eta + r, eta + c);
    }
  }
  live_after_[static_cast<std::size_t>(s)] =
      meter_.lower(static_cast<Weight>(m * m - cbm * cbm));

  for (const Index r : ws.rows) {
    ws.front_pos[static_cast<std::size_t>(r)] = -1;
  }
}

MultifrontalResult multifrontal_cholesky(const SymmetricMatrix& matrix,
                                         const AssemblyTree& assembly,
                                         const Traversal& bottom_up_order,
                                         const KernelConfig& kernel) {
  const Tree& tree = assembly.tree;
  TM_CHECK(bottom_up_order.size() == static_cast<std::size_t>(tree.size()),
           "traversal size mismatch");

  // Validate the in-tree order: children before parents.
  {
    std::vector<NodeId> pos(static_cast<std::size_t>(tree.size()), kNoNode);
    for (std::size_t t = 0; t < bottom_up_order.size(); ++t) {
      const NodeId u = bottom_up_order[t];
      TM_CHECK(u >= 0 && u < tree.size() && pos[static_cast<std::size_t>(u)] == kNoNode,
               "invalid traversal entry at step " << t);
      pos[static_cast<std::size_t>(u)] = static_cast<NodeId>(t);
    }
    for (NodeId u = 0; u < tree.size(); ++u) {
      if (tree.parent(u) != kNoNode) {
        TM_CHECK(pos[static_cast<std::size_t>(u)] <
                     pos[static_cast<std::size_t>(tree.parent(u))],
                 "traversal is not bottom-up at node " << u);
      }
    }
  }

  FrontalEngine engine(matrix, assembly, kernel);
  FrontWorkspace ws = engine.make_workspace();
  MultifrontalResult result;
  result.live_after_step.reserve(bottom_up_order.size());
  for (const NodeId s : bottom_up_order) {
    engine.process_front(s, ws);
    result.live_after_step.push_back(engine.live_entries());
  }

  // Root contribution blocks are empty (mu = 1 for etree roots), so all
  // live memory must have drained; anything left indicates a bug.
  TM_ASSERT(engine.live_entries() == 0,
            "contribution blocks leaked: " << engine.live_entries());
  result.peak_live_entries = engine.peak_live_entries();
  result.flops = engine.flops();
  result.factor = engine.take_factor();
  return result;
}

double relative_residual(const SymmetricMatrix& matrix,
                         const std::vector<double>& x,
                         const std::vector<double>& b) {
  TM_CHECK(x.size() == b.size() &&
               b.size() == static_cast<std::size_t>(matrix.size()),
           "relative_residual: x/b size mismatch");
  const std::vector<double> ax = matrix.multiply(x);
  double err = 0.0, norm = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    const double d = ax[i] - b[i];
    err += d * d;
    norm += b[i] * b[i];
  }
  return std::sqrt(err) / std::max(std::sqrt(norm), 1e-300);
}

double relative_residual(const SymmetricMatrix& matrix,
                         const CholeskyFactor& factor) {
  const Index n = matrix.size();
  TM_CHECK(n <= 2000, "relative_residual: dense check capped at n=2000");
  // Dense A and L.
  std::vector<double> a(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0.0);
  for (Index j = 0; j < n; ++j) {
    for (const Index r : matrix.pattern().column(j)) {
      a[static_cast<std::size_t>(j) * static_cast<std::size_t>(n) +
        static_cast<std::size_t>(r)] = matrix.value_of(r, j);
    }
  }
  double norm_a = 0.0;
  for (const double v : a) {
    norm_a += v * v;
  }

  // Subtract L Lᵀ column by column: (L Lᵀ)(i,j) = Σ_k L(i,k) L(j,k).
  for (Index k = 0; k < n; ++k) {
    const auto lc = factor.pattern.column(k);
    const std::size_t base = static_cast<std::size_t>(
        factor.pattern.col_ptr()[static_cast<std::size_t>(k)]);
    for (std::size_t x = 0; x < lc.size(); ++x) {
      for (std::size_t y = 0; y < lc.size(); ++y) {
        a[static_cast<std::size_t>(lc[y]) * static_cast<std::size_t>(n) +
          static_cast<std::size_t>(lc[x])] -=
            factor.values[base + x] * factor.values[base + y];
      }
    }
  }
  double norm_r = 0.0;
  for (const double v : a) {
    norm_r += v * v;
  }
  return std::sqrt(norm_r) / std::sqrt(norm_a);
}

std::vector<double> solve_with_factor(const CholeskyFactor& factor,
                                      std::vector<double> rhs) {
  const Index n = factor.pattern.cols();
  TM_CHECK(rhs.size() == static_cast<std::size_t>(n),
           "solve: rhs size mismatch");
  // Forward: L y = b.
  for (Index j = 0; j < n; ++j) {
    const auto lc = factor.pattern.column(j);
    const std::size_t base = static_cast<std::size_t>(
        factor.pattern.col_ptr()[static_cast<std::size_t>(j)]);
    TM_ASSERT(!lc.empty() && lc.front() == j, "factor missing diagonal");
    rhs[static_cast<std::size_t>(j)] /= factor.values[base];
    const double yj = rhs[static_cast<std::size_t>(j)];
    for (std::size_t i = 1; i < lc.size(); ++i) {
      rhs[static_cast<std::size_t>(lc[i])] -= factor.values[base + i] * yj;
    }
  }
  // Backward: Lᵀ x = y.
  for (Index j = n; j-- > 0;) {
    const auto lc = factor.pattern.column(j);
    const std::size_t base = static_cast<std::size_t>(
        factor.pattern.col_ptr()[static_cast<std::size_t>(j)]);
    double sum = rhs[static_cast<std::size_t>(j)];
    for (std::size_t i = 1; i < lc.size(); ++i) {
      sum -= factor.values[base + i] * rhs[static_cast<std::size_t>(lc[i])];
    }
    rhs[static_cast<std::size_t>(j)] = sum / factor.values[base];
  }
  return rhs;
}

}  // namespace treemem
