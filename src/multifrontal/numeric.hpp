// A numerical multifrontal Cholesky factorization driven by the assembly
// tree — the system the paper's model abstracts.
//
// This closes the loop on the reproduction: the traversal algorithms
// operate on the (n_i, f_i) weight model, and this engine executes the
// *actual* factorization those weights describe. The per-front work
// (allocate front, assemble original entries, extend-add the children's
// contribution blocks, dense partial Cholesky, emit the contribution
// block) lives in FrontalEngine::process_front, a reentrant kernel that is
// safe to run concurrently for distinct supernodes: the serial driver
// below walks it along a planned traversal, and factor_parallel
// (multifrontal/numeric_parallel.hpp) dispatches it as the task body of
// the memory-bounded threaded executor.
//
// The dense math inside a front — the partial Cholesky and the
// contribution-block scatter-add — is delegated to a pluggable FrontKernel
// (dense/front_kernel.hpp): the scalar reference, a cache-blocked kernel
// (bit-identical factors) or the parallel-tiled kernel (intra-front
// parallelism for large root fronts; residual-bounded contract). The
// engine keeps everything the kernels must not perturb: the front row-set
// union, the tree-ordered extend-add of children (schedule-exact sums),
// the contribution-block slot protocol and the LiveEntryMeter accounting,
// so the Eq. 1 modeled/measured invariants hold under every kernel.
//
// Measured vs. modeled memory: the engine counts *measured* live factor
// entries (resident contribution blocks + active fronts) in an atomic
// meter, following the model's carve-out convention — a front's
// contribution block is part of the front until the front is released, so
// per-front occupancy moves m² → m² − Σ(children CBs) → (m−η)² and the
// meter's peak is only raised when a front is allocated. For trees built
// with perfect amalgamation only, the measured live entries at every step
// of a serial schedule equal the abstract Eq. 1 in-tree transient of
// core/check.hpp exactly (full-square frontal storage, the paper's
// convention); with relaxed amalgamation the model pads fronts with
// explicit zeros, so measured memory is bounded by the model. Both facts
// are asserted in the tests.
//
// Scope: double-precision Cholesky of symmetric positive definite matrices;
// fronts are dense full squares; contribution blocks live until the parent
// assembles them (any valid bottom-up traversal, not just postorders).
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "core/traversal.hpp"
#include "dense/front_kernel.hpp"
#include "sparse/matrix.hpp"
#include "sparse/pattern.hpp"
#include "symbolic/assembly_tree.hpp"
#include "tree/tree.hpp"

namespace treemem {

// SymmetricMatrix and make_spd_matrix moved down into sparse/matrix.hpp
// (so the Matrix Market reader can produce real-valued matrices); the
// include above keeps every existing consumer of this header working.

/// Lower-triangular factor in CSC form (pattern includes the diagonal).
struct CholeskyFactor {
  SparsePattern pattern;       ///< lower triangle of L
  std::vector<double> values;  ///< aligned with pattern.row_idx()

  double value_of(Index row, Index col) const;
};

/// Atomic live-entry meter for the engine's *measured* memory. Increments
/// are applied with `raise`, which also advances the high-water mark;
/// decrements (and the carve-out front→CB shrink) go through `lower`,
/// which never touches the peak — mirroring the at-dispatch peak
/// convention of the paper's Eq. 1 checkers.
class LiveEntryMeter {
 public:
  /// Adds `delta` >= 0 and returns the new occupancy; raises the peak.
  Weight raise(Weight delta);
  /// Subtracts `delta` >= 0 and returns the new occupancy.
  Weight lower(Weight delta);

  Weight current() const { return current_.load(std::memory_order_relaxed); }
  Weight peak() const { return peak_.load(std::memory_order_relaxed); }

 private:
  std::atomic<Weight> current_{0};
  std::atomic<Weight> peak_{0};
};

/// Per-thread scratch for one front elimination. Obtain via
/// FrontalEngine::make_workspace(); a workspace may be reused for any
/// number of sequential process_front calls but never shared between two
/// concurrent ones.
class FrontWorkspace {
 public:
  FrontWorkspace() = default;

 private:
  friend class FrontalEngine;
  std::vector<Index> rows;       ///< front row set, ascending
  std::vector<Index> front_pos;  ///< global row → front row, -1 outside
  std::vector<double> front;     ///< dense front, column-major
};

/// The reentrant numeric core of the multifrontal factorization: one
/// instance per factorization run, shared by every worker.
///
/// Thread-safety contract: process_front(s) may run concurrently with
/// process_front(t) for s ≠ t, provided each call owns its workspace and
/// every child of s completed (with a happens-before edge) before s
/// starts — exactly what the serial driver and the executor's precedence
/// guarantee. Contribution-block slots are written once by the owning
/// supernode and consumed once by its parent; factor columns are disjoint
/// per supernode; flop and live-entry counters are atomic.
class FrontalEngine {
 public:
  /// Validates that `assembly` matches `matrix` and precomputes the member
  /// columns, the factor pattern and the per-front sizes. `kernel` selects
  /// the dense front kernel (default: the scalar reference).
  FrontalEngine(const SymmetricMatrix& matrix, const AssemblyTree& assembly,
                const KernelConfig& kernel = {});

  FrontWorkspace make_workspace() const;

  /// Executes supernode s end to end: allocate the front, assemble the
  /// original entries of the member columns, extend-add (and release) the
  /// children's contribution blocks, dense partial Cholesky of the leading
  /// η pivots, emit the factor columns and store the contribution block.
  /// Throws treemem::Error if a pivot is not positive (matrix not SPD).
  void process_front(NodeId s, FrontWorkspace& ws);

  /// Estimated dense-elimination flops per supernode, from the symbolic
  /// front sizes — the natural duration/priority proxy for scheduling.
  std::vector<double> estimated_front_flops() const;

  /// Measured live factor entries right now / at the run's high-water mark
  /// (full-square storage; multiply by sizeof(double) for bytes).
  Weight live_entries() const { return meter_.current(); }
  Weight peak_live_entries() const { return meter_.peak(); }

  /// Measured occupancy right after front s was allocated (its at-dispatch
  /// transient) / right after it released its front. Only meaningful after
  /// s was processed; on a single-worker schedule these are the serial
  /// stepwise profiles.
  Weight transient_at_start(NodeId s) const {
    return transient_at_start_[static_cast<std::size_t>(s)];
  }
  Weight live_after(NodeId s) const {
    return live_after_[static_cast<std::size_t>(s)];
  }

  /// Total floating-point operations of the dense eliminations so far.
  long long flops() const { return flops_.load(std::memory_order_relaxed); }

  /// The kernel's lease grant/denial tallies for this engine's run (all
  /// zeros for the serial kernels — only the parallel kernel leases pool
  /// workers for its trailing updates).
  KernelLeaseStats kernel_lease_stats() const {
    return kernel_->lease_stats();
  }

  /// The factor (valid once every supernode was processed). take_factor
  /// moves it out and leaves the engine empty.
  const CholeskyFactor& factor() const { return factor_; }
  CholeskyFactor take_factor() { return std::move(factor_); }

 private:
  /// Live contribution block of a completed supernode (full-square storage,
  /// the paper's accounting convention).
  struct ContributionBlock {
    std::vector<Index> rows;     ///< global row indices, ascending
    std::vector<double> values;  ///< dense |rows| x |rows|, column-major
  };

  const SymmetricMatrix* matrix_;
  const AssemblyTree* assembly_;
  std::unique_ptr<const FrontKernel> kernel_;
  std::vector<std::vector<Index>> members_;  ///< columns per supernode
  std::vector<Index> front_size_;            ///< |front rows| per supernode
  CholeskyFactor factor_;
  std::vector<ContributionBlock> blocks_;
  std::vector<Weight> transient_at_start_;
  std::vector<Weight> live_after_;
  LiveEntryMeter meter_;
  std::atomic<long long> flops_{0};
};

/// Result of a (serial) multifrontal run.
struct MultifrontalResult {
  CholeskyFactor factor;
  /// Largest number of simultaneously live matrix entries (resident
  /// contribution blocks + the active front, both stored as full squares as
  /// in the paper's model). Factor entries stream out and are not counted,
  /// matching the out-of-core multifrontal convention.
  Weight peak_live_entries = 0;
  /// Live entries after each supernode's elimination (length = tree size).
  std::vector<Weight> live_after_step;
  /// Total floating-point operations of the dense eliminations.
  long long flops = 0;
};

/// Factors `matrix` (already permuted!) with the multifrontal method,
/// serially along the given traversal.
///
/// `assembly` must come from build_assembly_tree on matrix.pattern();
/// `bottom_up_order` is an in-tree traversal of assembly.tree (children
/// before parents) — e.g. reverse_traversal(minmem_optimal(tree).order).
/// Throws if the order is invalid or the matrix does not match the tree.
/// `kernel` selects the dense front kernel; the default honors the
/// TREEMEM_KERNEL environment override and otherwise runs the scalar
/// reference. For the threaded counterpart see factor_parallel in
/// multifrontal/numeric_parallel.hpp.
MultifrontalResult multifrontal_cholesky(
    const SymmetricMatrix& matrix, const AssemblyTree& assembly,
    const Traversal& bottom_up_order,
    const KernelConfig& kernel = kernel_config_from_env());

/// Frobenius norm of A − L·Lᵀ divided by the norm of A — the correctness
/// metric for factorization tests.
double relative_residual(const SymmetricMatrix& matrix,
                         const CholeskyFactor& factor);

/// ‖A·x − b‖₂ / ‖b‖₂ — the correctness metric for solves (shared by the
/// CLI, the examples and the facade tests).
double relative_residual(const SymmetricMatrix& matrix,
                         const std::vector<double>& x,
                         const std::vector<double>& b);

/// Solves A x = b via the factor (forward + backward substitution).
std::vector<double> solve_with_factor(const CholeskyFactor& factor,
                                      std::vector<double> rhs);

}  // namespace treemem
