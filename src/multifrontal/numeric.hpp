// A numerical multifrontal Cholesky factorization driven by the assembly
// tree and a planned traversal — the system the paper's model abstracts.
//
// This closes the loop on the reproduction: the traversal algorithms
// operate on the (n_i, f_i) weight model, and this engine executes the
// *actual* factorization those weights describe. For trees built with
// perfect amalgamation only, the engine's measured live memory at every
// step equals the abstract in-tree transient of core/check.hpp exactly
// (full-square frontal storage, the paper's convention); with relaxed
// amalgamation the model pads fronts with explicit zeros, so measured
// memory is bounded by the model. Both facts are asserted in the tests.
//
// Scope: double-precision Cholesky of symmetric positive definite matrices;
// fronts are dense full squares; contribution blocks live until the parent
// assembles them (any valid bottom-up traversal, not just postorders).
#pragma once

#include <vector>

#include "core/traversal.hpp"
#include "sparse/pattern.hpp"
#include "symbolic/assembly_tree.hpp"
#include "tree/tree.hpp"

namespace treemem {

/// A symmetric matrix with values: `pattern` holds the full symmetric
/// pattern (both triangles + diagonal); `value_of(r, c)` is defined for
/// every stored entry, with value(r,c) == value(c,r).
class SymmetricMatrix {
 public:
  SymmetricMatrix() = default;

  /// `values` aligned with pattern.row_idx(). The symmetry of the values is
  /// validated on construction.
  SymmetricMatrix(SparsePattern pattern, std::vector<double> values);

  const SparsePattern& pattern() const { return pattern_; }
  Index size() const { return pattern_.cols(); }

  /// Value at (row, col); zero if the entry is not stored.
  double value_of(Index row, Index col) const;

  /// P A Pᵀ with the same convention as permute_symmetric.
  SymmetricMatrix permuted(const std::vector<Index>& perm) const;

 private:
  SparsePattern pattern_;
  std::vector<double> values_;
};

/// A strictly diagonally dominant (hence SPD) matrix on the given symmetric
/// pattern: off-diagonals drawn in [-1, -1/4] ∪ [1/4, 1], diagonal set to
/// 1 + Σ|row off-diagonals|. Deterministic in `seed`.
SymmetricMatrix make_spd_matrix(const SparsePattern& pattern,
                                std::uint64_t seed);

/// Lower-triangular factor in CSC form (pattern includes the diagonal).
struct CholeskyFactor {
  SparsePattern pattern;       ///< lower triangle of L
  std::vector<double> values;  ///< aligned with pattern.row_idx()

  double value_of(Index row, Index col) const;
};

/// Result of a multifrontal run.
struct MultifrontalResult {
  CholeskyFactor factor;
  /// Largest number of simultaneously live matrix entries (resident
  /// contribution blocks + the active front, both stored as full squares as
  /// in the paper's model). Factor entries stream out and are not counted,
  /// matching the out-of-core multifrontal convention.
  Weight peak_live_entries = 0;
  /// Live entries after each supernode's elimination (length = tree size).
  std::vector<Weight> live_after_step;
  /// Total floating-point operations of the dense eliminations.
  long long flops = 0;
};

/// Factors `matrix` (already permuted!) with the multifrontal method.
///
/// `assembly` must come from build_assembly_tree on matrix.pattern();
/// `bottom_up_order` is an in-tree traversal of assembly.tree (children
/// before parents) — e.g. reverse_traversal(minmem_optimal(tree).order).
/// Throws if the order is invalid or the matrix does not match the tree.
MultifrontalResult multifrontal_cholesky(const SymmetricMatrix& matrix,
                                         const AssemblyTree& assembly,
                                         const Traversal& bottom_up_order);

/// Frobenius norm of A − L·Lᵀ divided by the norm of A — the correctness
/// metric for factorization tests.
double relative_residual(const SymmetricMatrix& matrix,
                         const CholeskyFactor& factor);

/// Solves A x = b via the factor (forward + backward substitution).
std::vector<double> solve_with_factor(const CholeskyFactor& factor,
                                      std::vector<double> rhs);

}  // namespace treemem
