// Deterministic solver-service traffic traces.
//
// The solver_service bench (and the pool tests) need a reproducible
// stream of "tenant" requests with realistic structure: a small set of
// distinct sparsity patterns hit over and over with fresh value sets and
// varying right-hand-side batch sizes — the workload shape a symbolic
// cache exists for — plus a knob to dial pattern reuse down to zero for
// the cold-analyze baseline. Everything is seeded through support/prng,
// so the same TrafficOptions produce the same trace on every machine.
#pragma once

#include <cstdint>
#include <vector>

#include "solver/solver_pool.hpp"
#include "sparse/matrix.hpp"
#include "sparse/pattern.hpp"

namespace treemem {

struct TrafficOptions {
  /// Distinct sparsity patterns in rotation (the cache's working set).
  int patterns = 4;
  /// Total requests in the trace.
  int requests = 64;
  /// Base grid edge for the generated patterns (pattern i is a 2-D grid
  /// of edge `grid_base + 2 * i`, so sizes vary across the set).
  Index grid_base = 12;
  /// Right-hand-side columns per request, uniform in [1, max_rhs].
  int max_rhs = 4;
  std::uint64_t seed = 20110516;  // IPDPS 2011
};

/// One request of the trace: which pattern, which value seed (feeding
/// make_spd_matrix — every request gets a distinct SPD value set on its
/// pattern), how many rhs columns.
struct ServiceRequest {
  int pattern_id = 0;
  std::uint64_t value_seed = 0;
  int num_rhs = 1;
};

struct ServiceTrace {
  std::vector<SparsePattern> patterns;
  std::vector<ServiceRequest> requests;

  /// Total rhs columns across the trace (the "solves" of solves/sec).
  long long total_rhs() const;
};

ServiceTrace build_service_trace(const TrafficOptions& options);

/// Materializes one request: the SPD matrix on its pattern (seeded by
/// value_seed) plus `num_rhs` deterministic dense right-hand sides.
SolveRequest materialize_request(const ServiceTrace& trace,
                                 const ServiceRequest& request);

}  // namespace treemem
