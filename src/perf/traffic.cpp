#include "perf/traffic.hpp"

#include "sparse/generators.hpp"
#include "support/check.hpp"
#include "support/prng.hpp"

namespace treemem {

long long ServiceTrace::total_rhs() const {
  long long total = 0;
  for (const ServiceRequest& request : requests) {
    total += request.num_rhs;
  }
  return total;
}

ServiceTrace build_service_trace(const TrafficOptions& options) {
  TM_CHECK(options.patterns > 0, "traffic: need at least one pattern");
  TM_CHECK(options.requests > 0, "traffic: need at least one request");
  TM_CHECK(options.grid_base >= 2, "traffic: grid_base must be >= 2");
  TM_CHECK(options.max_rhs > 0, "traffic: max_rhs must be positive");

  ServiceTrace trace;
  trace.patterns.reserve(static_cast<std::size_t>(options.patterns));
  for (int i = 0; i < options.patterns; ++i) {
    const Index edge = options.grid_base + 2 * static_cast<Index>(i);
    trace.patterns.push_back(gen::grid2d(edge, edge));
  }

  Prng prng(options.seed);
  trace.requests.reserve(static_cast<std::size_t>(options.requests));
  for (int r = 0; r < options.requests; ++r) {
    ServiceRequest request;
    request.pattern_id =
        static_cast<int>(prng.uniform_int(0, options.patterns - 1));
    request.value_seed = prng.next_u64();
    request.num_rhs = static_cast<int>(prng.uniform_int(1, options.max_rhs));
    trace.requests.push_back(request);
  }
  return trace;
}

SolveRequest materialize_request(const ServiceTrace& trace,
                                 const ServiceRequest& request) {
  TM_CHECK(request.pattern_id >= 0 &&
               static_cast<std::size_t>(request.pattern_id) <
                   trace.patterns.size(),
           "traffic: request references pattern " << request.pattern_id
                                                  << " outside the trace");
  const SparsePattern& pattern =
      trace.patterns[static_cast<std::size_t>(request.pattern_id)];
  SolveRequest job;
  job.matrix = make_spd_matrix(pattern, request.value_seed);
  const std::size_t n = static_cast<std::size_t>(pattern.cols());
  Prng rhs_prng(request.value_seed ^ 0x5157CE5Bu);  // distinct rhs stream
  job.rhs.resize(static_cast<std::size_t>(request.num_rhs));
  for (std::vector<double>& column : job.rhs) {
    column.resize(n);
    for (double& entry : column) {
      entry = rhs_prng.uniform_real(-1.0, 1.0);
    }
  }
  return job;
}

}  // namespace treemem
