#include "perf/profile.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/check.hpp"

namespace treemem {

std::vector<ProfileSeries> performance_profiles(
    const std::vector<std::vector<double>>& values,
    const std::vector<std::string>& methods, const ProfileOptions& options) {
  const std::size_t cases = values.size();
  const std::size_t m = methods.size();
  TM_CHECK(m >= 1, "performance_profiles: no methods");
  for (const auto& row : values) {
    TM_CHECK(row.size() == m, "performance_profiles: ragged value table");
  }

  // Per-case ratios (infinity = failure).
  std::vector<std::vector<double>> ratios(
      m, std::vector<double>(cases, std::numeric_limits<double>::infinity()));
  for (std::size_t c = 0; c < cases; ++c) {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < m; ++k) {
      const double v = values[c][k];
      if (std::isfinite(v) && v >= 0.0) {
        best = std::min(best, v);
      }
    }
    for (std::size_t k = 0; k < m; ++k) {
      const double v = values[c][k];
      if (!std::isfinite(v) || v < 0.0 || !std::isfinite(best)) {
        continue;
      }
      if (best == 0.0) {
        ratios[k][c] = (v == 0.0) ? 1.0
                                  : std::numeric_limits<double>::infinity();
      } else {
        ratios[k][c] = v / best;
      }
    }
  }

  std::vector<ProfileSeries> out(m);
  for (std::size_t k = 0; k < m; ++k) {
    out[k].method = methods[k];
    std::vector<double> r = ratios[k];
    std::sort(r.begin(), r.end());
    // Step function: at each distinct finite ratio, the fraction of cases
    // with ratio <= it.
    out[k].tau.push_back(1.0);
    double at_one = 0.0;
    for (std::size_t i = 0; i < r.size() && r[i] <= 1.0; ++i) {
      at_one += 1.0;
    }
    out[k].fraction.push_back(cases == 0 ? 0.0 : at_one / static_cast<double>(cases));
    for (std::size_t i = 0; i < r.size(); ++i) {
      if (!std::isfinite(r[i]) || r[i] <= 1.0) {
        continue;
      }
      if (options.max_tau > 0.0 && r[i] > options.max_tau) {
        break;
      }
      const double frac = static_cast<double>(i + 1) / static_cast<double>(cases);
      if (!out[k].tau.empty() && out[k].tau.back() == r[i]) {
        out[k].fraction.back() = frac;  // collapse ties to the last one
      } else {
        out[k].tau.push_back(r[i]);
        out[k].fraction.push_back(frac);
      }
    }
  }
  return out;
}

std::string render_profiles(const std::vector<ProfileSeries>& profiles,
                            const std::string& x_label) {
  std::vector<PlotSeries> series;
  double max_tau = 1.0;
  for (const auto& p : profiles) {
    if (!p.tau.empty()) {
      max_tau = std::max(max_tau, p.tau.back());
    }
  }
  for (const auto& p : profiles) {
    PlotSeries s;
    s.label = p.method;
    s.x = p.tau;
    s.y = p.fraction;
    // Extend each curve to the global right edge so plateaus are visible.
    if (!s.x.empty() && s.x.back() < max_tau) {
      s.x.push_back(max_tau);
      s.y.push_back(s.y.back());
    }
    series.push_back(std::move(s));
  }
  PlotOptions options;
  options.step = true;
  options.x_label = x_label;
  options.y_label = "fraction of cases";
  options.width = 72;
  options.height = 18;
  return render_ascii_plot(series, options);
}

RatioStats ratio_stats(const std::vector<double>& values,
                       const std::vector<double>& best) {
  TM_CHECK(values.size() == best.size(), "ratio_stats: size mismatch");
  RatioStats stats;
  stats.cases = values.size();
  if (values.empty()) {
    return stats;
  }
  double sum = 0.0;
  double sum_sq = 0.0;
  stats.max_ratio = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    TM_CHECK(best[i] > 0.0, "ratio_stats: non-positive best at case " << i);
    const double ratio = values[i] / best[i];
    if (ratio > 1.0 + 1e-12) {
      ++stats.non_optimal;
    }
    stats.max_ratio = std::max(stats.max_ratio, ratio);
    sum += ratio;
    sum_sq += ratio * ratio;
  }
  const double n = static_cast<double>(values.size());
  stats.non_optimal_fraction = static_cast<double>(stats.non_optimal) / n;
  stats.mean_ratio = sum / n;
  const double var = std::max(0.0, sum_sq / n - stats.mean_ratio * stats.mean_ratio);
  stats.stddev_ratio = std::sqrt(var);
  return stats;
}

}  // namespace treemem
