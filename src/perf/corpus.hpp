// The experiment corpus: synthetic sparse matrices standing in for the
// paper's 291 University of Florida matrices, and the full
// matrix → ordering → elimination tree → assembly tree pipeline that turns
// them into traversal-problem instances (Section VI-B; substitution
// rationale in DESIGN.md §4).
//
// Everything is seeded and deterministic: corpus(i) is the same instance on
// every machine and every run.
#pragma once

#include <string>
#include <vector>

#include "multifrontal/numeric.hpp"
#include "sparse/pattern.hpp"
#include "support/prng.hpp"
#include "symbolic/assembly_tree.hpp"
#include "tree/tree.hpp"

namespace treemem {

/// One source matrix of the corpus.
struct CorpusMatrix {
  std::string name;
  SparsePattern pattern;  ///< symmetrized, full diagonal
};

enum class OrderingKind {
  kMinDegree,        ///< AMD-class (the paper's `amd` runs)
  kNestedDissection, ///< MeTiS-class (the paper's MeTiS runs)
};

const char* to_string(OrderingKind kind);

/// One traversal-problem instance: a weighted assembly tree plus provenance.
struct CorpusInstance {
  std::string name;       ///< "<matrix>/<ordering>/r<relax>"
  std::string matrix;
  OrderingKind ordering;
  Index relax = 1;
  Tree tree;
  Index matrix_n = 0;
  std::int64_t matrix_nnz = 0;
};

struct CorpusOptions {
  /// Scale factor on matrix dimensions (1.0 = default sizes of roughly
  /// 1.5k–20k; the paper used 2e4–2e5 — set 4.0+ to approach that regime
  /// at matching runtime cost).
  double scale = 1.0;
  /// Amalgamation parameters to instantiate per (matrix, ordering), as in
  /// the paper (1, 2, 4, and 16 for the largest matrices).
  std::vector<Index> relax_values = {1, 2, 4, 16};
  /// Base seed for all randomized generators.
  std::uint64_t seed = 20110516;  // IPDPS 2011
};

/// The deterministic matrix family (25 matrices across 7 structural
/// classes: 2-D/3-D grids, punched grids, random, banded, arrowhead,
/// block-tridiagonal).
std::vector<CorpusMatrix> build_corpus_matrices(const CorpusOptions& options = {});

/// The `count` *smallest* corpus matrices by dimension (stable order) —
/// the one slicing rule shared by build_numeric_instances and the
/// numeric benches, so the two cannot drift.
std::vector<CorpusMatrix> smallest_corpus_matrices(
    const CorpusOptions& options = {}, std::size_t count = 5);

/// Orders a matrix, builds the elimination tree and column counts, and
/// amalgamates into an assembly tree.
Tree assembly_tree_for(const SparsePattern& symmetric_pattern,
                       OrderingKind ordering, Index relax);

/// The full instance set: every matrix × ordering × relax value.
std::vector<CorpusInstance> build_corpus_instances(
    const CorpusOptions& options = {});

/// The random-weight variant of Section VI-E: same tree structures,
/// weights redrawn as n_i ∈ [1, p/500], f_i ∈ [1, p]. `replicas` re-rolls
/// per structure multiply the case count (the paper reaches >3200 trees).
std::vector<CorpusInstance> build_random_weight_instances(
    const CorpusOptions& options = {}, int replicas = 2);

/// One *numeric* pipeline instance: seeded SPD values on a corpus pattern,
/// permuted by the chosen ordering, plus the assembly tree built on the
/// permuted pattern — everything multifrontal_cholesky / factor_parallel
/// consume. The weighted tree (instance.assembly.tree) carries the same
/// n_i/f_i the scheduling experiments use, so modeled and measured memory
/// speak the same units.
struct NumericInstance {
  std::string name;  ///< "<matrix>/<ordering>/r<relax>"
  std::string matrix_name;
  OrderingKind ordering;
  Index relax = 1;
  SymmetricMatrix matrix;  ///< permuted: factor this directly
  AssemblyTree assembly;   ///< built on matrix.pattern()
};

/// Builds the numeric instance of one corpus matrix under one ordering and
/// amalgamation level. Deterministic in `seed`.
NumericInstance build_numeric_instance(const CorpusMatrix& source,
                                       OrderingKind ordering, Index relax,
                                       std::uint64_t seed);

/// Numeric instances for the `max_matrices` *smallest* corpus matrices (by
/// dimension) under `options`, one per (matrix, ordering) pair with the
/// first relax value of `options.relax_values` — the corpus slice the
/// parallel-numeric bench and tests sweep.
std::vector<NumericInstance> build_numeric_instances(
    const CorpusOptions& options = {}, std::size_t max_matrices = 5);

}  // namespace treemem
