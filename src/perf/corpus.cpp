#include "perf/corpus.hpp"

#include <algorithm>
#include <cmath>

#include "order/ordering.hpp"
#include "sparse/generators.hpp"
#include "symbolic/symbolic.hpp"
#include "tree/generators.hpp"

namespace treemem {

const char* to_string(OrderingKind kind) {
  switch (kind) {
    case OrderingKind::kMinDegree:
      return "mindeg";
    case OrderingKind::kNestedDissection:
      return "nd";
  }
  return "?";
}

namespace {

Index scaled(double scale, Index base) {
  return std::max<Index>(2, static_cast<Index>(std::llround(base * std::sqrt(scale))));
}

}  // namespace

std::vector<CorpusMatrix> build_corpus_matrices(const CorpusOptions& options) {
  TM_CHECK(options.scale > 0.0, "corpus: scale must be positive");
  Prng prng(options.seed);
  std::vector<CorpusMatrix> out;
  const double s = options.scale;

  auto add = [&](std::string name, SparsePattern pattern) {
    out.push_back({std::move(name), symmetrize(pattern)});
  };

  // 2-D grids (regular, anisotropic, 9-point).
  add("grid2d-40", gen::grid2d(scaled(s, 40), scaled(s, 40)));
  add("grid2d-64", gen::grid2d(scaled(s, 64), scaled(s, 64)));
  add("grid2d-wide", gen::grid2d(scaled(s, 120), scaled(s, 18)));
  add("grid2d-9pt", gen::grid2d(scaled(s, 48), scaled(s, 48), true));

  // 2-D grids with holes (irregular FEM-ish domains).
  add("grid2d-holes-10", gen::grid2d_with_holes(scaled(s, 56), scaled(s, 56), 0.10, prng));
  add("grid2d-holes-30", gen::grid2d_with_holes(scaled(s, 64), scaled(s, 64), 0.30, prng));

  // 3-D grids.
  add("grid3d-12", gen::grid3d(scaled(s, 12), scaled(s, 12), scaled(s, 12)));
  add("grid3d-16", gen::grid3d(scaled(s, 16), scaled(s, 16), scaled(s, 8)));
  add("grid3d-27pt", gen::grid3d(scaled(s, 10), scaled(s, 10), scaled(s, 10), true));

  // Random symmetric patterns in the paper's nnz/row regime (>= 2.5).
  {
    const Index n1 = scaled(s, 45) * scaled(s, 45);
    add("rand-sparse", gen::random_symmetric(n1, 3.0, prng));
    const Index n2 = scaled(s, 40) * scaled(s, 40);
    add("rand-mid", gen::random_symmetric(n2, 6.0, prng));
    const Index n3 = scaled(s, 30) * scaled(s, 30);
    add("rand-dense", gen::random_symmetric(n3, 12.0, prng));
  }

  // Banded (thinned) matrices.
  {
    const Index n = scaled(s, 55) * scaled(s, 55);
    add("band-16", gen::banded(n, 16, 0.25, prng));
    add("band-48", gen::banded(scaled(s, 38) * scaled(s, 38), 48, 0.10, prng));
  }

  // Arrowhead.
  add("arrow", gen::arrowhead(scaled(s, 40) * scaled(s, 40), 12));

  // Block tridiagonal.
  add("blocktri-sparse",
      gen::block_tridiagonal(scaled(s, 48), scaled(s, 24), 0.08, prng));
  add("blocktri-dense",
      gen::block_tridiagonal(scaled(s, 24), scaled(s, 40), 0.25, prng));

  return out;
}

Tree assembly_tree_for(const SparsePattern& symmetric_pattern,
                       OrderingKind ordering, Index relax) {
  std::vector<Index> perm;
  switch (ordering) {
    case OrderingKind::kMinDegree:
      perm = min_degree_order(symmetric_pattern);
      break;
    case OrderingKind::kNestedDissection:
      perm = nested_dissection_order(symmetric_pattern);
      break;
  }
  const SparsePattern permuted = permute_symmetric(symmetric_pattern, perm);
  AssemblyTreeOptions options;
  options.relax = relax;
  return build_assembly_tree(permuted, options).tree;
}

std::vector<CorpusInstance> build_corpus_instances(const CorpusOptions& options) {
  const std::vector<CorpusMatrix> matrices = build_corpus_matrices(options);
  std::vector<CorpusInstance> out;
  for (const CorpusMatrix& m : matrices) {
    for (const OrderingKind ordering :
         {OrderingKind::kMinDegree, OrderingKind::kNestedDissection}) {
      // Orderings are deterministic per matrix; reuse across relax values.
      std::vector<Index> perm = ordering == OrderingKind::kMinDegree
                                    ? min_degree_order(m.pattern)
                                    : nested_dissection_order(m.pattern);
      const SparsePattern permuted = permute_symmetric(m.pattern, perm);
      const std::vector<Index> parent = elimination_tree(permuted);
      const std::vector<Index> counts = column_counts(permuted, parent);
      for (const Index relax : options.relax_values) {
        AssemblyTreeOptions at;
        at.relax = relax;
        CorpusInstance inst;
        inst.name = m.name + "/" + to_string(ordering) + "/r" +
                    std::to_string(relax);
        inst.matrix = m.name;
        inst.ordering = ordering;
        inst.relax = relax;
        inst.tree = amalgamate(parent, counts, at).tree;
        inst.matrix_n = m.pattern.cols();
        inst.matrix_nnz = m.pattern.nnz();
        out.push_back(std::move(inst));
      }
    }
  }
  return out;
}

NumericInstance build_numeric_instance(const CorpusMatrix& source,
                                       OrderingKind ordering, Index relax,
                                       std::uint64_t seed) {
  NumericInstance inst;
  inst.name = source.name + "/" + to_string(ordering) + "/r" +
              std::to_string(relax);
  inst.matrix_name = source.name;
  inst.ordering = ordering;
  inst.relax = relax;

  const SymmetricMatrix values = make_spd_matrix(source.pattern, seed);
  const std::vector<Index> perm = ordering == OrderingKind::kMinDegree
                                      ? min_degree_order(source.pattern)
                                      : nested_dissection_order(source.pattern);
  inst.matrix = values.permuted(perm);
  AssemblyTreeOptions at;
  at.relax = relax;
  inst.assembly = build_assembly_tree(inst.matrix.pattern(), at);
  return inst;
}

std::vector<CorpusMatrix> smallest_corpus_matrices(const CorpusOptions& options,
                                                   std::size_t count) {
  std::vector<CorpusMatrix> matrices = build_corpus_matrices(options);
  std::stable_sort(matrices.begin(), matrices.end(),
                   [](const CorpusMatrix& a, const CorpusMatrix& b) {
                     return a.pattern.cols() < b.pattern.cols();
                   });
  if (matrices.size() > count) {
    matrices.resize(count);
  }
  return matrices;
}

std::vector<NumericInstance> build_numeric_instances(
    const CorpusOptions& options, std::size_t max_matrices) {
  TM_CHECK(!options.relax_values.empty(),
           "build_numeric_instances: need at least one relax value");
  const std::vector<CorpusMatrix> matrices =
      smallest_corpus_matrices(options, max_matrices);
  const Index relax = options.relax_values.front();
  std::vector<NumericInstance> out;
  out.reserve(matrices.size() * 2);
  for (const CorpusMatrix& m : matrices) {
    for (const OrderingKind ordering :
         {OrderingKind::kMinDegree, OrderingKind::kNestedDissection}) {
      out.push_back(
          build_numeric_instance(m, ordering, relax, options.seed));
    }
  }
  return out;
}

std::vector<CorpusInstance> build_random_weight_instances(
    const CorpusOptions& options, int replicas) {
  TM_CHECK(replicas >= 1, "corpus: need at least one replica");
  const std::vector<CorpusInstance> base = build_corpus_instances(options);
  std::vector<CorpusInstance> out;
  out.reserve(base.size() * static_cast<std::size_t>(replicas));
  Prng prng(options.seed ^ 0x5eedf00dULL);
  for (const CorpusInstance& inst : base) {
    for (int r = 0; r < replicas; ++r) {
      CorpusInstance copy = inst;
      copy.name = inst.name + "/rw" + std::to_string(r);
      copy.tree = gen::with_random_paper_weights(inst.tree, prng);
      out.push_back(std::move(copy));
    }
  }
  return out;
}

}  // namespace treemem
