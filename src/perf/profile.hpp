// Dolan–Moré performance profiles — the evaluation methodology of the
// paper's Section VI (Figs. 5–9).
//
// Given a metric value per (case, method), the profile of a method is the
// cumulative distribution ρ(τ) = fraction of cases where
// value(case, method) ≤ τ · best(case). Higher curves are better; ρ(1) is
// the fraction of cases where the method is (tied-)best.
#pragma once

#include <string>
#include <vector>

#include "support/ascii_plot.hpp"
#include "tree/tree.hpp"

namespace treemem {

struct ProfileSeries {
  std::string method;
  std::vector<double> tau;       ///< breakpoints, ascending (tau >= 1)
  std::vector<double> fraction;  ///< ρ(tau), step function (right-continuous)
};

struct ProfileOptions {
  /// Clip the τ axis (0 = no clipping). Figs. 5–8 of the paper show τ up to
  /// 1.1–5 depending on the experiment.
  double max_tau = 0.0;
};

/// Builds profiles from a dense value table: values[c][m] is the metric of
/// method m on case c. Non-finite or negative entries mark failures (the
/// method never reaches those cases). Cases where the best value is 0 are
/// handled by treating every method with value 0 as ratio 1 and any other
/// as failed.
std::vector<ProfileSeries> performance_profiles(
    const std::vector<std::vector<double>>& values,
    const std::vector<std::string>& methods, const ProfileOptions& options = {});

/// Renders profiles as an ASCII step plot.
std::string render_profiles(const std::vector<ProfileSeries>& profiles,
                            const std::string& x_label = "tau");

/// Ratio statistics against the per-case best — Tables I & II of the paper.
struct RatioStats {
  std::size_t cases = 0;
  std::size_t non_optimal = 0;   ///< ratio > 1
  double non_optimal_fraction = 0.0;
  double max_ratio = 1.0;
  double mean_ratio = 1.0;
  double stddev_ratio = 0.0;
};

/// Stats for one method's values against the per-case best over all
/// methods... `best` supplies the per-case reference (e.g. the optimal
/// memory), `values` the method under study.
RatioStats ratio_stats(const std::vector<double>& values,
                       const std::vector<double>& best);

}  // namespace treemem
