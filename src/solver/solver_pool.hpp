// SolverPool — many tenants, one solver service.
//
// A pool of worker threads, each owning a persistent Solver, serving
// SolveRequests (a matrix plus a batch of right-hand sides) submitted from
// any thread. The workers share one SymbolicCache, so a request whose
// sparsity pattern was seen before skips straight to the numeric phase —
// the service's steady-state fast path — while cold patterns pay
// analyze+plan exactly once. Results come back through std::future, and
// throughput statistics (per-solver and aggregated) are race-free
// snapshots taken as each job completes.
//
// Memory admission: the pool gates in-flight factorizations on a shared
// MemoryAccountant. Each job charges its plan's modeled Eq. 1 peak
// against the pool budget before factorizing and releases it after its
// solves finish; jobs that do not fit wait. A single job larger than the
// whole budget is admitted alone (clamped charge) so it serializes
// instead of deadlocking. With the default infinite budget the gate is
// free.
//
// Engine defaults: request-level parallelism comes from the pool's
// workers, so a job's factorize defaults to the serial engine on one
// thread (kAuto would grab every core per job and oversubscribe W-fold).
// An explicit FactorizeEngine::kParallel in the pool options is honored
// for deliberate hybrid setups. With `promote_lone_jobs`, a job that
// finds the service otherwise idle (empty queue, no sibling in flight)
// keeps kAuto with the pool's full worker count instead — a lone big job
// borrows the idle threads for factor_parallel rather than leaving W-1
// cores dark. The gate is queue depth at dequeue time, so a busy service
// never oversubscribes.
//
// Numeric-factor cache: with `factor_cache_entries > 0` the pool also
// caches the CholeskyFactor keyed by (pattern fingerprint, value
// fingerprint). A request repeating both pattern AND values skips
// factorize entirely and goes straight to triangular solves
// (SolveOutcome::factor_hit). Resident factors are charged against the
// same MemoryAccountant as in-flight jobs (charge = factor nnz, the
// Eq. 1 currency), and admission under pressure evicts cached factors
// first — they are the only memory the service can always recompute.
//
// The `use_cache = false` mode re-runs the full symbolic phase for every
// request — the cold-analyze baseline bench/solver_service.cpp compares
// the cache against. Numeric results are identical either way (cache hits
// are bit-exact).
#pragma once

#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "parallel/schedule_core.hpp"
#include "solver/numeric_cache.hpp"
#include "solver/solver.hpp"
#include "solver/symbolic_cache.hpp"
#include "sparse/matrix.hpp"

namespace treemem {

struct SolverPoolOptions {
  /// Worker threads (each with its own persistent Solver); 0 defers to
  /// default_thread_count() (which honors TREEMEM_THREADS).
  int workers = 0;
  /// Share symbolic state across requests via the SymbolicCache. False =
  /// the cold-analyze baseline: every request redoes ordering, assembly
  /// tree and planning.
  bool use_cache = true;
  /// Phase options applied to every request (analyze/plan feed the cache
  /// key configuration; factorize applies per job, with kAuto demoted to
  /// serial as described above). This is also how the scheduler's
  /// admission policy reaches pooled jobs: plan.admission /
  /// factorize.admission — e.g. set from TREEMEM_ADMISSION via
  /// solver_options_from_env() — apply to every tenant's parallel
  /// factorizations.
  SolverOptions solver;
  /// Pool-wide budget on the sum of in-flight plans' modeled peaks
  /// (entries, Eq. 1 accounting). kInfiniteWeight = no admission gate.
  Weight memory_budget = kInfiniteWeight;
  /// LRU caps forwarded to the SymbolicCache (0 = unbounded): bound the
  /// symbolic state a service under pattern churn keeps resident.
  std::size_t cache_entries = 0;
  std::size_t cache_bytes = 0;
  /// Resident-factor cap of the numeric cache; 0 (default) disables it.
  std::size_t factor_cache_entries = 0;
  /// Promote a lone job (empty queue, nothing else in flight) to the
  /// parallel engine with the pool's worker count. Off by default: the
  /// steady-state service assumption is request-level parallelism.
  bool promote_lone_jobs = false;
};

/// One unit of service: factorize `matrix`, then solve every column of
/// `rhs` against it. `rhs` may be empty (factorize only).
struct SolveRequest {
  SymmetricMatrix matrix;
  std::vector<std::vector<double>> rhs;
};

struct SolveOutcome {
  std::vector<std::vector<double>> solutions;  ///< one per rhs column
  bool cache_hit = false;   ///< symbolic state came from the cache
  bool factor_hit = false;  ///< numeric factor came from the cache too
  double seconds = 0.0;     ///< service time (symbolic+factorize+solves)
};

/// Sum of per-solver cumulative counters (factorizations, rhs_solved, the
/// per-phase seconds, flops); peaks aggregate by max. Labels (ordering,
/// strategy, engine) are per-run fields and stay empty in the aggregate.
SolverStats aggregate_solver_stats(const std::vector<SolverStats>& stats);

class SolverPool {
 public:
  explicit SolverPool(SolverPoolOptions options = {});
  /// Drains every queued job, then joins the workers.
  ~SolverPool();

  SolverPool(const SolverPool&) = delete;
  SolverPool& operator=(const SolverPool&) = delete;

  /// Enqueues a request; the future delivers the outcome (or rethrows the
  /// job's exception). Thread-safe.
  std::future<SolveOutcome> submit(SolveRequest request);

  /// Synchronous convenience: submit + wait.
  SolveOutcome solve(SolveRequest request);

  int workers() const { return static_cast<int>(threads_.size()); }
  SymbolicCache& cache() { return cache_; }
  SymbolicCache::Stats cache_stats() const { return cache_.stats(); }
  NumericCache::Stats factor_cache_stats() const {
    return factor_cache_.stats();
  }

  /// Stats snapshot of each worker's Solver as of its last completed job
  /// (index = worker id). Race-free regardless of in-flight work.
  std::vector<SolverStats> solver_stats() const;
  /// aggregate_solver_stats(solver_stats()).
  SolverStats aggregated_stats() const;

  /// End-to-end service-time distribution (one observation per completed
  /// job, cache hits included — they are the latencies tenants see).
  const obs::Histogram& solve_latency() const { return solve_latency_; }

 private:
  struct Job {
    SolveRequest request;
    std::promise<SolveOutcome> promise;
  };

  void worker_loop(int id);
  SolveOutcome run_job(Solver& solver, SolveRequest& request);
  Weight admission_charge(Weight planned_peak) const;
  /// Blocks until `charge` fits the accountant, evicting cached factors
  /// under pressure (they free real charge and are always recomputable).
  void acquire_memory(Weight charge);
  void release_memory(Weight charge);
  /// Non-blocking: room for a factor's cache residency, made by evicting
  /// older cached factors if needed. False = don't cache this one.
  bool try_acquire_for_cache(Weight charge);

  SolverPoolOptions options_;
  SymbolicCache cache_;
  NumericCache factor_cache_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  bool stopping_ = false;
  int active_jobs_ = 0;  ///< dequeued, not yet finished (queue_mutex_)

  MemoryAccountant accountant_;
  std::mutex memory_mutex_;
  std::condition_variable memory_cv_;

  mutable std::mutex stats_mutex_;
  std::vector<SolverStats> worker_stats_;

  /// Observed in run_job at both exits (factor-cache fast path and the
  /// full pipeline); the exporter renders it as
  /// `treemem_solve_latency_seconds`.
  obs::Histogram solve_latency_{obs::Histogram::exponential_bounds(1e-6,
                                                                   10.0)};
  std::uint64_t metrics_token_ = 0;  ///< exporter registration handle

  std::vector<std::unique_ptr<Solver>> solvers_;
  std::vector<std::thread> threads_;
};

}  // namespace treemem
