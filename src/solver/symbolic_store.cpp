#include "solver/symbolic_store.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace treemem {

namespace {

constexpr char kMagic[8] = {'T', 'M', 'S', 'Y', 'M', 'B', '0', '1'};
constexpr std::uint32_t kVersion = 1;

// ---------------------------------------------------------------------------
// Binary encoding: native-endian scalars and length-prefixed arrays. The
// reader bounds-checks every access, so a truncated file throws a clean
// Error instead of reading garbage.
// ---------------------------------------------------------------------------

class Writer {
 public:
  template <typename T>
  void scalar(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t at = buffer_.size();
    buffer_.resize(at + sizeof(T));
    std::memcpy(buffer_.data() + at, &value, sizeof(T));
  }

  template <typename T>
  void array(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    scalar(static_cast<std::uint64_t>(values.size()));
    const std::size_t at = buffer_.size();
    buffer_.resize(at + values.size() * sizeof(T));
    std::memcpy(buffer_.data() + at, values.data(), values.size() * sizeof(T));
  }

  void string(const std::string& text) {
    scalar(static_cast<std::uint64_t>(text.size()));
    buffer_.insert(buffer_.end(), text.begin(), text.end());
  }

  const std::vector<char>& buffer() const { return buffer_; }

 private:
  std::vector<char> buffer_;
};

class Reader {
 public:
  Reader(std::vector<char> buffer, std::string path)
      : buffer_(std::move(buffer)), path_(std::move(path)) {}

  template <typename T>
  T scalar() {
    static_assert(std::is_trivially_copyable_v<T>);
    require(sizeof(T));
    T value;
    std::memcpy(&value, buffer_.data() + at_, sizeof(T));
    at_ += sizeof(T);
    return value;
  }

  template <typename T>
  std::vector<T> array() {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t count = scalar<std::uint64_t>();
    require(count * sizeof(T));
    std::vector<T> values(static_cast<std::size_t>(count));
    std::memcpy(values.data(), buffer_.data() + at_,
                values.size() * sizeof(T));
    at_ += values.size() * sizeof(T);
    return values;
  }

  std::string string() {
    const std::uint64_t size = scalar<std::uint64_t>();
    require(size);
    std::string text(buffer_.data() + at_, static_cast<std::size_t>(size));
    at_ += static_cast<std::size_t>(size);
    return text;
  }

  void expect_end() const {
    TM_CHECK(at_ == buffer_.size(), "symbolic file " << path_ << ": "
                                    << buffer_.size() - at_
                                    << " trailing bytes");
  }

 private:
  void require(std::uint64_t bytes) const {
    TM_CHECK(at_ + bytes <= buffer_.size(),
             "symbolic file " << path_ << ": truncated (need " << bytes
                              << " bytes at offset " << at_ << ", have "
                              << buffer_.size() - at_ << ")");
  }

  std::vector<char> buffer_;
  std::string path_;
  std::size_t at_ = 0;
};

void write_pattern(Writer& out, const SparsePattern& pattern) {
  out.scalar<std::int32_t>(pattern.rows());
  out.scalar<std::int32_t>(pattern.cols());
  out.array(pattern.col_ptr());
  out.array(pattern.row_idx());
}

SparsePattern read_pattern(Reader& in) {
  const Index rows = in.scalar<std::int32_t>();
  const Index cols = in.scalar<std::int32_t>();
  std::vector<std::int64_t> col_ptr = in.array<std::int64_t>();
  std::vector<Index> row_idx = in.array<Index>();
  // The validating constructor rejects malformed CSC arrays.
  return SparsePattern(rows, cols, std::move(col_ptr), std::move(row_idx));
}

}  // namespace

bool same_build_options(const AnalyzeOptions& a, const AnalyzeOptions& b) {
  return a.ordering == b.ordering && a.relax == b.relax &&
         a.perfect == b.perfect;
}

bool same_build_options(const PlanOptions& a, const PlanOptions& b) {
  return a.policy == b.policy && a.memory_budget == b.memory_budget &&
         a.allow_out_of_core == b.allow_out_of_core &&
         a.admission == b.admission &&
         a.co_search_workers == b.co_search_workers;
}

void write_symbolic_file(const SolverSymbolic& symbolic,
                         const std::string& path) {
  TM_CHECK(static_cast<bool>(symbolic),
           "write_symbolic_file: symbolic state must carry both an analysis "
           "and a plan");
  const SolverAnalysis& a = *symbolic.analysis;
  const SolverPlan& p = *symbolic.plan;

  Writer out;
  for (const char c : kMagic) {
    out.scalar(c);
  }
  out.scalar(kVersion);

  // Build options — re-validated on load against the consumer's config.
  out.scalar(static_cast<std::uint8_t>(a.options.ordering));
  out.scalar<std::int32_t>(a.options.relax);
  out.scalar(static_cast<std::uint8_t>(a.options.perfect));
  out.scalar(static_cast<std::uint8_t>(p.options.policy));
  out.scalar<std::int64_t>(p.options.memory_budget);
  out.scalar(static_cast<std::uint8_t>(p.options.allow_out_of_core));
  out.scalar(static_cast<std::uint8_t>(p.options.admission));
  out.scalar<std::int32_t>(p.options.co_search_workers);

  out.scalar(pattern_fingerprint(a.pattern));

  // Analysis.
  write_pattern(out, a.pattern);
  out.array(a.perm);
  write_pattern(out, a.permuted_pattern);
  out.array(a.assembly.tree.parents());
  out.array(a.assembly.tree.files());
  out.array(a.assembly.tree.works());
  out.array(a.assembly.supernode_of);
  out.array(a.assembly.eta);
  out.array(a.assembly.mu);
  out.scalar<std::int32_t>(a.assembly.columns);
  out.scalar(static_cast<std::uint8_t>(a.assembly.has_virtual_root));
  out.array(a.permuted_value_map);
  out.scalar<std::int64_t>(a.factor_nnz);
  out.string(a.ordering_name);
  out.scalar(a.analyze_seconds);

  // Plan.
  out.array(p.bottom_up_order);
  out.array(p.io_schedule.order);
  out.array(p.io_schedule.writes);
  out.scalar(static_cast<std::uint8_t>(p.out_of_core));
  out.scalar<std::int64_t>(p.budget);
  out.string(p.strategy);
  out.scalar<std::int64_t>(p.planned_peak_entries);
  out.scalar<std::int64_t>(p.in_core_optimum);
  out.scalar<std::int64_t>(p.best_postorder_peak);
  out.scalar<std::int64_t>(p.planned_io_volume);
  out.scalar<std::int64_t>(p.planned_parallel_peak);
  out.scalar(p.plan_seconds);

  // Temp + rename: a crash mid-write never leaves a half file that a
  // later warm start would have to reject.
  const std::string temp = path + ".tmp";
  {
    std::ofstream file(temp, std::ios::binary | std::ios::trunc);
    TM_CHECK(file.good(), "write_symbolic_file: cannot open " << temp);
    file.write(out.buffer().data(),
               static_cast<std::streamsize>(out.buffer().size()));
    TM_CHECK(file.good(), "write_symbolic_file: write failed for " << temp);
  }
  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  TM_CHECK(!ec, "write_symbolic_file: rename " << temp << " -> " << path
                                               << " failed: " << ec.message());
}

SolverSymbolic read_symbolic_file(const std::string& path) {
  std::vector<char> buffer;
  {
    std::ifstream file(path, std::ios::binary | std::ios::ate);
    TM_CHECK(file.good(), "read_symbolic_file: cannot open " << path);
    const std::streamsize size = file.tellg();
    file.seekg(0);
    buffer.resize(static_cast<std::size_t>(size));
    file.read(buffer.data(), size);
    TM_CHECK(file.good(), "read_symbolic_file: read failed for " << path);
  }
  Reader in(std::move(buffer), path);

  for (const char expected : kMagic) {
    TM_CHECK(in.scalar<char>() == expected,
             "read_symbolic_file: " << path << " is not a symbolic state "
                                    << "file (bad magic)");
  }
  const std::uint32_t version = in.scalar<std::uint32_t>();
  TM_CHECK(version == kVersion, "read_symbolic_file: "
                                    << path << " has version " << version
                                    << ", expected " << kVersion);

  auto analysis = std::make_shared<SolverAnalysis>();
  auto plan = std::make_shared<SolverPlan>();

  analysis->options.ordering =
      static_cast<OrderingChoice>(in.scalar<std::uint8_t>());
  analysis->options.relax = in.scalar<std::int32_t>();
  analysis->options.perfect = in.scalar<std::uint8_t>() != 0;
  plan->options.policy =
      static_cast<TraversalPolicy>(in.scalar<std::uint8_t>());
  plan->options.memory_budget = in.scalar<std::int64_t>();
  plan->options.allow_out_of_core = in.scalar<std::uint8_t>() != 0;
  plan->options.admission =
      static_cast<AdmissionPolicy>(in.scalar<std::uint8_t>());
  plan->options.co_search_workers = in.scalar<std::int32_t>();

  const std::uint64_t stored_fingerprint = in.scalar<std::uint64_t>();

  analysis->pattern = read_pattern(in);
  analysis->perm = in.array<Index>();
  analysis->permuted_pattern = read_pattern(in);
  std::vector<NodeId> parents = in.array<NodeId>();
  std::vector<Weight> files = in.array<Weight>();
  std::vector<Weight> works = in.array<Weight>();
  // The Tree constructor re-validates the parent array (single root, no
  // cycles, f_i >= 0), so a tampered file cannot build a malformed tree.
  analysis->assembly.tree =
      Tree(std::move(parents), std::move(files), std::move(works));
  analysis->assembly.supernode_of = in.array<NodeId>();
  analysis->assembly.eta = in.array<Index>();
  analysis->assembly.mu = in.array<Index>();
  analysis->assembly.columns = in.scalar<std::int32_t>();
  analysis->assembly.has_virtual_root = in.scalar<std::uint8_t>() != 0;
  analysis->permuted_value_map = in.array<std::size_t>();
  analysis->factor_nnz = in.scalar<std::int64_t>();
  analysis->ordering_name = in.string();
  analysis->analyze_seconds = in.scalar<double>();

  plan->bottom_up_order = in.array<NodeId>();
  plan->io_schedule.order = in.array<NodeId>();
  plan->io_schedule.writes = in.array<IoWrite>();
  plan->out_of_core = in.scalar<std::uint8_t>() != 0;
  plan->budget = in.scalar<std::int64_t>();
  plan->strategy = in.string();
  plan->planned_peak_entries = in.scalar<std::int64_t>();
  plan->in_core_optimum = in.scalar<std::int64_t>();
  plan->best_postorder_peak = in.scalar<std::int64_t>();
  plan->planned_io_volume = in.scalar<std::int64_t>();
  plan->planned_parallel_peak = in.scalar<std::int64_t>();
  plan->plan_seconds = in.scalar<double>();
  in.expect_end();

  TM_CHECK(pattern_fingerprint(analysis->pattern) == stored_fingerprint,
           "read_symbolic_file: " << path << " fingerprint mismatch (stale "
                                  << "or tampered state file)");
  check_permutation(analysis->perm, analysis->pattern.cols());
  TM_CHECK(plan->bottom_up_order.size() ==
               static_cast<std::size_t>(analysis->assembly.tree.size()),
           "read_symbolic_file: " << path << " plan order does not cover the "
                                  << "assembly tree");

  return SolverSymbolic{std::move(analysis), std::move(plan)};
}

std::string symbolic_file_name(std::uint64_t fingerprint, std::size_t slot) {
  std::ostringstream name;
  name << "pattern-" << std::hex << std::setw(16) << std::setfill('0')
       << fingerprint;
  if (slot > 0) {
    name << "-" << std::dec << slot;
  }
  name << ".tmsym";
  return name.str();
}

SymbolicStoreReport save_symbolic_state(const SymbolicCache& cache,
                                        const std::string& dir) {
  std::filesystem::create_directories(dir);
  SymbolicStoreReport report;
  // Slot-number fingerprint collisions so two colliding patterns get two
  // files instead of overwriting each other.
  std::map<std::uint64_t, std::size_t> slots;
  for (const SolverSymbolic& symbolic : cache.snapshot()) {
    const std::uint64_t fingerprint =
        pattern_fingerprint(symbolic.analysis->pattern);
    const std::size_t slot = slots[fingerprint]++;
    const std::filesystem::path path =
        std::filesystem::path(dir) / symbolic_file_name(fingerprint, slot);
    write_symbolic_file(symbolic, path.string());
    ++report.saved;
  }
  return report;
}

SymbolicStoreReport load_symbolic_state(SymbolicCache& cache,
                                        const std::string& dir) {
  SymbolicStoreReport report;
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    return report;  // nothing persisted yet: a cold start, not an error
  }
  // Deterministic load order (directory iteration order is not).
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".tmsym") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const std::filesystem::path& path : files) {
    SolverSymbolic symbolic;
    try {
      symbolic = read_symbolic_file(path.string());
    } catch (const Error&) {
      // A stale or corrupt file degrades that pattern to a cold build;
      // the warm start itself must never fail on leftover state.
      ++report.skipped_invalid;
      continue;
    }
    if (!same_build_options(symbolic.analysis->options,
                            cache.options().analyze) ||
        !same_build_options(symbolic.plan->options, cache.options().plan)) {
      ++report.skipped_options;
      continue;
    }
    if (cache.insert(std::move(symbolic))) {
      ++report.saved;
    }
  }
  return report;
}

}  // namespace treemem
