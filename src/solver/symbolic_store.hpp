// Symbolic persistence — warm restarts for the solver service.
//
// A service restart used to throw away every cached analyze+plan: the
// first request per pattern paid the full symbolic phase again. This
// layer serializes the immutable SolverSymbolic state (analysis + plan)
// to a versioned binary file and loads it back with full re-validation,
// so `treemem_cli serve --state-dir` restarts warm — zero symbolic misses
// on a repeated trace.
//
// Format: a little-structured native-endian binary stream ("TMSYMB01"
// magic + u32 version, then length-prefixed arrays). The file carries the
// build's AnalyzeOptions/PlanOptions and the pattern fingerprint; loading
// re-validates all three (magic/version, fingerprint recomputed from the
// decoded pattern, options equal to the consumer's) and reconstructs
// SparsePattern/Tree through their validating constructors, so a stale,
// truncated or foreign file can never smuggle malformed state into a
// solver. Files are written to a temp name and renamed, so a crash
// mid-write never leaves a half file behind.
#pragma once

#include <cstddef>
#include <string>

#include "solver/solver.hpp"
#include "solver/symbolic_cache.hpp"

namespace treemem {

/// Whether two analyze/plan configurations build identical symbolic state
/// (the load-time compatibility check).
bool same_build_options(const AnalyzeOptions& a, const AnalyzeOptions& b);
bool same_build_options(const PlanOptions& a, const PlanOptions& b);

/// Serializes `symbolic` to `path` (atomically: temp file + rename).
/// Throws treemem::Error on I/O failure.
void write_symbolic_file(const SolverSymbolic& symbolic,
                         const std::string& path);

/// Deserializes a SolverSymbolic from `path`. Throws treemem::Error when
/// the file is missing, truncated, carries a wrong magic/version, or its
/// stored fingerprint disagrees with the decoded pattern.
SolverSymbolic read_symbolic_file(const std::string& path);

/// The canonical file name for a pattern's symbolic state inside a state
/// directory: "pattern-<hex fingerprint>[-<slot>].tmsym" (`slot`
/// disambiguates fingerprint collisions).
std::string symbolic_file_name(std::uint64_t fingerprint, std::size_t slot);

struct SymbolicStoreReport {
  std::size_t saved = 0;    ///< files written (save) / entries added (load)
  std::size_t skipped_options = 0;  ///< files whose build options differ
  std::size_t skipped_invalid = 0;  ///< corrupt/truncated/foreign files
};

/// Writes every built entry of `cache` into directory `dir` (created if
/// missing), one file per pattern. Returns how many files were written.
SymbolicStoreReport save_symbolic_state(const SymbolicCache& cache,
                                        const std::string& dir);

/// Loads every "*.tmsym" file under `dir` into `cache`, skipping files
/// whose analyze/plan options differ from the cache's configuration and
/// files that fail validation (a stale or corrupt state dir degrades to a
/// cold start, never to an error). Missing directory = nothing to load.
SymbolicStoreReport load_symbolic_state(SymbolicCache& cache,
                                        const std::string& dir);

}  // namespace treemem
