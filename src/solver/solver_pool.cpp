#include "solver/solver_pool.hpp"

#include <algorithm>
#include <utility>

#include "support/parallel_for.hpp"
#include "support/timer.hpp"

namespace treemem {

SolverStats aggregate_solver_stats(const std::vector<SolverStats>& stats) {
  SolverStats total;
  for (const SolverStats& s : stats) {
    total.analyze_seconds += s.analyze_seconds;
    total.plan_seconds += s.plan_seconds;
    total.factorize_seconds += s.factorize_seconds;
    total.solve_seconds += s.solve_seconds;
    total.factorizations += s.factorizations;
    total.rhs_solved += s.rhs_solved;
    total.flops += s.flops;
    total.measured_peak_entries =
        std::max(total.measured_peak_entries, s.measured_peak_entries);
    total.modeled_peak_entries =
        std::max(total.modeled_peak_entries, s.modeled_peak_entries);
  }
  return total;
}

SolverPool::SolverPool(SolverPoolOptions options)
    : options_(std::move(options)),
      cache_(SymbolicCacheOptions{options_.solver.analyze,
                                  options_.solver.plan}),
      accountant_(options_.memory_budget) {
  TM_CHECK(options_.workers >= 0,
           "SolverPool: workers must be >= 0 (0 = default)");
  TM_CHECK(options_.memory_budget > 0,
           "SolverPool: memory budget must be positive");
  const int workers = options_.workers > 0
                          ? options_.workers
                          : static_cast<int>(default_thread_count());
  worker_stats_.resize(static_cast<std::size_t>(workers));
  solvers_.reserve(static_cast<std::size_t>(workers));
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int id = 0; id < workers; ++id) {
    solvers_.push_back(std::make_unique<Solver>(options_.solver));
  }
  for (int id = 0; id < workers; ++id) {
    threads_.emplace_back([this, id] { worker_loop(id); });
  }
}

SolverPool::~SolverPool() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& thread : threads_) {
    thread.join();
  }
}

std::future<SolveOutcome> SolverPool::submit(SolveRequest request) {
  Job job;
  job.request = std::move(request);
  std::future<SolveOutcome> future = job.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    TM_CHECK(!stopping_, "SolverPool::submit: pool is shutting down");
    queue_.push_back(std::move(job));
  }
  queue_cv_.notify_one();
  return future;
}

SolveOutcome SolverPool::solve(SolveRequest request) {
  return submit(std::move(request)).get();
}

void SolverPool::worker_loop(int id) {
  Solver& solver = *solvers_[static_cast<std::size_t>(id)];
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping, and every queued job has been drained
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      SolveOutcome outcome = run_job(solver, job.request);
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        worker_stats_[static_cast<std::size_t>(id)] = solver.stats();
      }
      job.promise.set_value(std::move(outcome));
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        worker_stats_[static_cast<std::size_t>(id)] = solver.stats();
      }
      job.promise.set_exception(std::current_exception());
    }
  }
}

Weight SolverPool::admission_charge(Weight planned_peak) const {
  // Clamp to the budget so one oversized job runs alone (serialized by the
  // gate) instead of waiting forever for room that can never exist.
  return std::min(planned_peak, options_.memory_budget);
}

SolveOutcome SolverPool::run_job(Solver& solver, SolveRequest& request) {
  Timer timer;
  SolveOutcome outcome;

  const SparsePattern& pattern = request.matrix.pattern();
  if (options_.use_cache) {
    SymbolicCache::LookupResult looked = cache_.lookup(pattern);
    outcome.cache_hit = looked.hit;
    solver.adopt(std::move(looked.symbolic));
  } else {
    // Cold-analyze baseline: redo the full symbolic phase per request.
    // Built in a scratch solver and adopt()ed so the worker solver's
    // cumulative counters survive (analyze() on it would reset them).
    Solver scratch;
    scratch.analyze(pattern, options_.solver.analyze)
        .plan(options_.solver.plan);
    solver.adopt(scratch.symbolic());
  }

  // Request-level parallelism is the pool's: demote kAuto to one serial
  // worker per job (see the header).
  FactorizeOptions factorize = options_.solver.factorize;
  if (factorize.engine == FactorizeEngine::kAuto) {
    factorize.engine = FactorizeEngine::kSerial;
    factorize.workers = 1;
  }

  const Weight charge = admission_charge(solver.stats().planned_peak_entries);
  {
    std::unique_lock<std::mutex> lock(memory_mutex_);
    memory_cv_.wait(lock, [&] { return accountant_.try_acquire(charge); });
  }
  // Releases take the mutex so a waiter cannot miss the wakeup between
  // its failed predicate check and blocking.
  const auto release = [&] {
    {
      std::lock_guard<std::mutex> lock(memory_mutex_);
      accountant_.adjust(-charge);
    }
    memory_cv_.notify_all();
  };
  try {
    solver.factorize(request.matrix, factorize);
    outcome.solutions = solver.solve(request.rhs);
  } catch (...) {
    release();
    throw;
  }
  release();

  outcome.seconds = timer.elapsed_s();
  return outcome;
}

std::vector<SolverStats> SolverPool::solver_stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return worker_stats_;
}

SolverStats SolverPool::aggregated_stats() const {
  return aggregate_solver_stats(solver_stats());
}

}  // namespace treemem
