#include "solver/solver_pool.hpp"

#include <algorithm>
#include <utility>

#include "support/parallel_for.hpp"
#include "support/timer.hpp"

namespace treemem {

SolverStats aggregate_solver_stats(const std::vector<SolverStats>& stats) {
  SolverStats total;
  for (const SolverStats& s : stats) {
    total.analyze_seconds += s.analyze_seconds;
    total.plan_seconds += s.plan_seconds;
    total.factorize_seconds += s.factorize_seconds;
    total.solve_seconds += s.solve_seconds;
    total.factorizations += s.factorizations;
    total.rhs_solved += s.rhs_solved;
    total.flops += s.flops;
    total.leases_granted += s.leases_granted;
    total.lease_denied += s.lease_denied;
    total.measured_peak_entries =
        std::max(total.measured_peak_entries, s.measured_peak_entries);
    total.modeled_peak_entries =
        std::max(total.modeled_peak_entries, s.modeled_peak_entries);
    // The plan-phase peaks aggregate by max too — dropping them reported
    // "planned peak 0" at pool level even while admission was charging
    // real plans against the budget.
    total.planned_peak_entries =
        std::max(total.planned_peak_entries, s.planned_peak_entries);
    total.planned_parallel_peak =
        std::max(total.planned_parallel_peak, s.planned_parallel_peak);
  }
  return total;
}

SolverPool::SolverPool(SolverPoolOptions options)
    : options_(std::move(options)),
      cache_(SymbolicCacheOptions{options_.solver.analyze,
                                  options_.solver.plan,
                                  options_.cache_entries,
                                  options_.cache_bytes}),
      factor_cache_(NumericCacheOptions{options_.factor_cache_entries}),
      accountant_(options_.memory_budget) {
  TM_CHECK(options_.workers >= 0,
           "SolverPool: workers must be >= 0 (0 = default)");
  TM_CHECK(options_.memory_budget > 0,
           "SolverPool: memory budget must be positive");
  const int workers = options_.workers > 0
                          ? options_.workers
                          : static_cast<int>(default_thread_count());
  worker_stats_.resize(static_cast<std::size_t>(workers));
  solvers_.reserve(static_cast<std::size_t>(workers));
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int id = 0; id < workers; ++id) {
    solvers_.push_back(std::make_unique<Solver>(options_.solver));
  }
  for (int id = 0; id < workers; ++id) {
    threads_.emplace_back([this, id] { worker_loop(id); });
  }
}

SolverPool::~SolverPool() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& thread : threads_) {
    thread.join();
  }
}

std::future<SolveOutcome> SolverPool::submit(SolveRequest request) {
  Job job;
  job.request = std::move(request);
  std::future<SolveOutcome> future = job.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    TM_CHECK(!stopping_, "SolverPool::submit: pool is shutting down");
    queue_.push_back(std::move(job));
  }
  queue_cv_.notify_one();
  return future;
}

SolveOutcome SolverPool::solve(SolveRequest request) {
  return submit(std::move(request)).get();
}

void SolverPool::worker_loop(int id) {
  Solver& solver = *solvers_[static_cast<std::size_t>(id)];
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping, and every queued job has been drained
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_jobs_;  // counted until the job finishes, so a lone job
                       // can tell no sibling is mid-factorize
    }
    try {
      SolveOutcome outcome = run_job(solver, job.request);
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        worker_stats_[static_cast<std::size_t>(id)] = solver.stats();
      }
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        --active_jobs_;
      }
      job.promise.set_value(std::move(outcome));
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        worker_stats_[static_cast<std::size_t>(id)] = solver.stats();
      }
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        --active_jobs_;
      }
      job.promise.set_exception(std::current_exception());
    }
  }
}

Weight SolverPool::admission_charge(Weight planned_peak) const {
  // Clamp to the budget so one oversized job runs alone (serialized by the
  // gate) instead of waiting forever for room that can never exist.
  return std::min(planned_peak, options_.memory_budget);
}

void SolverPool::acquire_memory(Weight charge) {
  std::unique_lock<std::mutex> lock(memory_mutex_);
  memory_cv_.wait(lock, [&] {
    // Under pressure, drop cached factors before waiting: they hold real
    // charge and can always be recomputed, so a job never queues behind
    // memory that is merely a cache.
    while (!accountant_.try_acquire(charge)) {
      const Weight freed = factor_cache_.evict_lru();
      if (freed == 0) {
        return false;  // nothing evictable left — wait for a release
      }
      accountant_.adjust(-freed);
    }
    return true;
  });
}

void SolverPool::release_memory(Weight charge) {
  // Releases take the mutex so a waiter cannot miss the wakeup between
  // its failed predicate check and blocking.
  {
    std::lock_guard<std::mutex> lock(memory_mutex_);
    accountant_.adjust(-charge);
  }
  memory_cv_.notify_all();
}

bool SolverPool::try_acquire_for_cache(Weight charge) {
  std::lock_guard<std::mutex> lock(memory_mutex_);
  while (!accountant_.try_acquire(charge)) {
    const Weight freed = factor_cache_.evict_lru();
    if (freed == 0) {
      return false;  // caching this factor would starve real jobs
    }
    accountant_.adjust(-freed);
  }
  return true;
}

SolveOutcome SolverPool::run_job(Solver& solver, SolveRequest& request) {
  Timer timer;
  SolveOutcome outcome;

  const SparsePattern& pattern = request.matrix.pattern();
  if (options_.use_cache) {
    SymbolicCache::LookupResult looked = cache_.lookup(pattern);
    outcome.cache_hit = looked.hit;
    solver.adopt(std::move(looked.symbolic));
  } else {
    // Cold-analyze baseline: redo the full symbolic phase per request.
    // Built in a scratch solver and adopt()ed so the worker solver's
    // cumulative counters survive (analyze() on it would reset them).
    Solver scratch;
    scratch.analyze(pattern, options_.solver.analyze)
        .plan(options_.solver.plan);
    solver.adopt(scratch.symbolic());
  }

  // Numeric fast path: pattern AND values seen before — adopt the cached
  // factor and go straight to solves. No admission gate: the resident
  // factor is already charged, and no new memory is allocated.
  const std::uint64_t pattern_key =
      factor_cache_.enabled() ? pattern_fingerprint(pattern) : 0;
  if (factor_cache_.enabled()) {
    if (std::shared_ptr<const CholeskyFactor> cached =
            factor_cache_.lookup(pattern_key, request.matrix.values())) {
      solver.adopt_factor(std::move(cached));
      outcome.factor_hit = true;
      outcome.solutions = solver.solve(request.rhs);
      outcome.seconds = timer.elapsed_s();
      return outcome;
    }
  }

  FactorizeOptions factorize = options_.solver.factorize;
  if (factorize.engine == FactorizeEngine::kAuto) {
    bool promote = false;
    if (options_.promote_lone_jobs && workers() > 1) {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      promote = queue_.empty() && active_jobs_ == 1;
    }
    if (promote) {
      // A lone job with idle siblings: keep kAuto with the pool's worker
      // count, so Solver's own engine choice applies (parallel for
      // in-core plans, serial for out-of-core ones).
      factorize.workers = workers();
    } else {
      // Request-level parallelism is the pool's: demote kAuto to one
      // serial worker per job (see the header).
      factorize.engine = FactorizeEngine::kSerial;
      factorize.workers = 1;
    }
  }

  const Weight charge = admission_charge(solver.stats().planned_peak_entries);
  acquire_memory(charge);
  try {
    solver.factorize(request.matrix, factorize);
    outcome.solutions = solver.solve(request.rhs);
  } catch (...) {
    release_memory(charge);
    throw;
  }
  release_memory(charge);

  // Cache the fresh factor for future (pattern, values) repeats, charged
  // like any resident memory. Non-blocking: when even evicting every
  // older cached factor cannot make room, skip caching rather than
  // stalling the job (its result is already computed).
  if (factor_cache_.enabled()) {
    std::shared_ptr<const CholeskyFactor> factor = solver.shared_factor();
    const Weight residency = admission_charge(
        static_cast<Weight>(factor->values.size()));
    if (try_acquire_for_cache(residency)) {
      const bool inserted = factor_cache_.insert(
          pattern_key, request.matrix.values(), std::move(factor), residency);
      // insert() may itself have evicted (max_entries); and a racing
      // duplicate insert returns false — either way, hand the freed
      // charge back to the accountant.
      Weight freed = factor_cache_.take_freed_charge();
      if (!inserted) {
        freed += residency;
      }
      if (freed > 0) {
        release_memory(freed);
      }
    }
  }

  outcome.seconds = timer.elapsed_s();
  return outcome;
}

std::vector<SolverStats> SolverPool::solver_stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return worker_stats_;
}

SolverStats SolverPool::aggregated_stats() const {
  return aggregate_solver_stats(solver_stats());
}

}  // namespace treemem
