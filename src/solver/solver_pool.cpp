#include "solver/solver_pool.hpp"

#include <algorithm>
#include <type_traits>
#include <utility>

#include "obs/stats_fields.hpp"
#include "support/parallel_for.hpp"
#include "support/timer.hpp"

namespace treemem {

SolverStats aggregate_solver_stats(const std::vector<SolverStats>& stats) {
  // One fold per field, driven by the table in obs/stats_fields.hpp —
  // the sum/max lists live there (and only there), shared with the
  // metrics exporter below, so a new SolverStats field cannot be
  // aggregated and not exported, or vice versa.
  SolverStats total;
  for (const SolverStats& s : stats) {
    obs::merge_solver_stats(total, s);
  }
  return total;
}

SolverPool::SolverPool(SolverPoolOptions options)
    : options_(std::move(options)),
      cache_(SymbolicCacheOptions{options_.solver.analyze,
                                  options_.solver.plan,
                                  options_.cache_entries,
                                  options_.cache_bytes}),
      factor_cache_(NumericCacheOptions{options_.factor_cache_entries}),
      accountant_(options_.memory_budget) {
  TM_CHECK(options_.workers >= 0,
           "SolverPool: workers must be >= 0 (0 = default)");
  TM_CHECK(options_.memory_budget > 0,
           "SolverPool: memory budget must be positive");
  const int workers = options_.workers > 0
                          ? options_.workers
                          : static_cast<int>(default_thread_count());
  worker_stats_.resize(static_cast<std::size_t>(workers));
  solvers_.reserve(static_cast<std::size_t>(workers));
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int id = 0; id < workers; ++id) {
    solvers_.push_back(std::make_unique<Solver>(options_.solver));
  }
  for (int id = 0; id < workers; ++id) {
    threads_.emplace_back([this, id] { worker_loop(id); });
  }
  // Every line of the service's exposition comes from state the pool
  // already keeps: the latency histogram, both cache Stats, and the
  // aggregated SolverStats rendered field-by-field from the same table
  // that drives aggregate_solver_stats. Removed in the destructor before
  // anything the lambda reads is torn down.
  metrics_token_ = obs::MetricsRegistry::instance().add_exporter([this] {
    std::string text;
    text += obs::format_histogram("treemem_solve_latency_seconds", "",
                                  solve_latency_);
    const SymbolicCache::Stats sym = cache_stats();
    text += obs::format_counter("treemem_symbolic_cache_hits_total", "",
                                sym.hits);
    text += obs::format_counter("treemem_symbolic_cache_misses_total", "",
                                sym.misses);
    text += obs::format_counter("treemem_symbolic_cache_evictions_total", "",
                                sym.evictions);
    text += obs::format_gauge("treemem_symbolic_cache_entries", "",
                              static_cast<double>(sym.entries));
    text += obs::format_gauge("treemem_symbolic_cache_resident_bytes", "",
                              static_cast<double>(sym.resident_bytes));
    const NumericCache::Stats num = factor_cache_stats();
    text += obs::format_counter("treemem_factor_cache_hits_total", "",
                                num.hits);
    text += obs::format_counter("treemem_factor_cache_misses_total", "",
                                num.misses);
    text += obs::format_counter("treemem_factor_cache_evictions_total", "",
                                num.evictions);
    text += obs::format_gauge("treemem_factor_cache_entries", "",
                              static_cast<double>(num.entries));
    text += obs::format_gauge("treemem_factor_cache_resident_charge", "",
                              static_cast<double>(num.resident_charge));
    const SolverStats total = aggregated_stats();
    obs::for_each_stat_field([&](const char* name, obs::StatMerge,
                                 auto member) {
      const auto value = total.*member;
      const std::string metric = std::string("treemem_solver_") + name;
      if constexpr (std::is_floating_point_v<
                        std::decay_t<decltype(value)>>) {
        text += obs::format_gauge(metric, "", value);
      } else {
        text += obs::format_counter(metric, "",
                                    static_cast<long long>(value));
      }
    });
    return text;
  });
}

SolverPool::~SolverPool() {
  obs::MetricsRegistry::instance().remove_exporter(metrics_token_);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& thread : threads_) {
    thread.join();
  }
}

std::future<SolveOutcome> SolverPool::submit(SolveRequest request) {
  Job job;
  job.request = std::move(request);
  std::future<SolveOutcome> future = job.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    TM_CHECK(!stopping_, "SolverPool::submit: pool is shutting down");
    queue_.push_back(std::move(job));
  }
  queue_cv_.notify_one();
  return future;
}

SolveOutcome SolverPool::solve(SolveRequest request) {
  return submit(std::move(request)).get();
}

void SolverPool::worker_loop(int id) {
  Solver& solver = *solvers_[static_cast<std::size_t>(id)];
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping, and every queued job has been drained
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_jobs_;  // counted until the job finishes, so a lone job
                       // can tell no sibling is mid-factorize
    }
    try {
      SolveOutcome outcome = run_job(solver, job.request);
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        worker_stats_[static_cast<std::size_t>(id)] = solver.stats();
      }
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        --active_jobs_;
      }
      job.promise.set_value(std::move(outcome));
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        worker_stats_[static_cast<std::size_t>(id)] = solver.stats();
      }
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        --active_jobs_;
      }
      job.promise.set_exception(std::current_exception());
    }
  }
}

Weight SolverPool::admission_charge(Weight planned_peak) const {
  // Clamp to the budget so one oversized job runs alone (serialized by the
  // gate) instead of waiting forever for room that can never exist.
  return std::min(planned_peak, options_.memory_budget);
}

void SolverPool::acquire_memory(Weight charge) {
  std::unique_lock<std::mutex> lock(memory_mutex_);
  memory_cv_.wait(lock, [&] {
    // Under pressure, drop cached factors before waiting: they hold real
    // charge and can always be recomputed, so a job never queues behind
    // memory that is merely a cache.
    while (!accountant_.try_acquire(charge)) {
      const Weight freed = factor_cache_.evict_lru();
      if (freed == 0) {
        return false;  // nothing evictable left — wait for a release
      }
      accountant_.adjust(-freed);
    }
    return true;
  });
}

void SolverPool::release_memory(Weight charge) {
  // Releases take the mutex so a waiter cannot miss the wakeup between
  // its failed predicate check and blocking.
  {
    std::lock_guard<std::mutex> lock(memory_mutex_);
    accountant_.adjust(-charge);
  }
  memory_cv_.notify_all();
}

bool SolverPool::try_acquire_for_cache(Weight charge) {
  std::lock_guard<std::mutex> lock(memory_mutex_);
  while (!accountant_.try_acquire(charge)) {
    const Weight freed = factor_cache_.evict_lru();
    if (freed == 0) {
      return false;  // caching this factor would starve real jobs
    }
    accountant_.adjust(-freed);
  }
  return true;
}

SolveOutcome SolverPool::run_job(Solver& solver, SolveRequest& request) {
  Timer timer;
  SolveOutcome outcome;

  const SparsePattern& pattern = request.matrix.pattern();
  if (options_.use_cache) {
    SymbolicCache::LookupResult looked = cache_.lookup(pattern);
    outcome.cache_hit = looked.hit;
    solver.adopt(std::move(looked.symbolic));
  } else {
    // Cold-analyze baseline: redo the full symbolic phase per request.
    // Built in a scratch solver and adopt()ed so the worker solver's
    // cumulative counters survive (analyze() on it would reset them).
    Solver scratch;
    scratch.analyze(pattern, options_.solver.analyze)
        .plan(options_.solver.plan);
    solver.adopt(scratch.symbolic());
  }

  // Numeric fast path: pattern AND values seen before — adopt the cached
  // factor and go straight to solves. No admission gate: the resident
  // factor is already charged, and no new memory is allocated.
  const std::uint64_t pattern_key =
      factor_cache_.enabled() ? pattern_fingerprint(pattern) : 0;
  if (factor_cache_.enabled()) {
    if (std::shared_ptr<const CholeskyFactor> cached =
            factor_cache_.lookup(pattern_key, request.matrix.values())) {
      solver.adopt_factor(std::move(cached));
      outcome.factor_hit = true;
      outcome.solutions = solver.solve(request.rhs);
      outcome.seconds = timer.elapsed_s();
      solve_latency_.observe(outcome.seconds);
      return outcome;
    }
  }

  FactorizeOptions factorize = options_.solver.factorize;
  if (factorize.engine == FactorizeEngine::kAuto) {
    bool promote = false;
    if (options_.promote_lone_jobs && workers() > 1) {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      promote = queue_.empty() && active_jobs_ == 1;
    }
    if (promote) {
      // A lone job with idle siblings: keep kAuto with the pool's worker
      // count, so Solver's own engine choice applies (parallel for
      // in-core plans, serial for out-of-core ones).
      factorize.workers = workers();
    } else {
      // Request-level parallelism is the pool's: demote kAuto to one
      // serial worker per job (see the header).
      factorize.engine = FactorizeEngine::kSerial;
      factorize.workers = 1;
    }
  }

  const Weight charge = admission_charge(solver.stats().planned_peak_entries);
  acquire_memory(charge);
  try {
    solver.factorize(request.matrix, factorize);
    outcome.solutions = solver.solve(request.rhs);
  } catch (...) {
    release_memory(charge);
    throw;
  }
  release_memory(charge);

  // Cache the fresh factor for future (pattern, values) repeats, charged
  // like any resident memory. Non-blocking: when even evicting every
  // older cached factor cannot make room, skip caching rather than
  // stalling the job (its result is already computed).
  if (factor_cache_.enabled()) {
    std::shared_ptr<const CholeskyFactor> factor = solver.shared_factor();
    const Weight residency = admission_charge(
        static_cast<Weight>(factor->values.size()));
    if (try_acquire_for_cache(residency)) {
      const bool inserted = factor_cache_.insert(
          pattern_key, request.matrix.values(), std::move(factor), residency);
      // insert() may itself have evicted (max_entries); and a racing
      // duplicate insert returns false — either way, hand the freed
      // charge back to the accountant.
      Weight freed = factor_cache_.take_freed_charge();
      if (!inserted) {
        freed += residency;
      }
      if (freed > 0) {
        release_memory(freed);
      }
    }
  }

  outcome.seconds = timer.elapsed_s();
  solve_latency_.observe(outcome.seconds);
  return outcome;
}

std::vector<SolverStats> SolverPool::solver_stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return worker_stats_;
}

SolverStats SolverPool::aggregated_stats() const {
  return aggregate_solver_stats(solver_stats());
}

}  // namespace treemem
