// SymbolicCache — analyze+plan once per sparsity pattern, share forever.
//
// The expensive half of a sparse direct solve is symbolic: ordering,
// elimination tree, amalgamation, traversal planning. In a solver service
// the same pattern arrives over and over with different numeric values
// (time steps, Newton iterations, tenants simulating the same mesh), and
// production codes amortize by splitting the symbolic handle from the
// numeric one (the UMFPACK symbolic/numeric object split). SymbolicCache
// is that amortization for the Solver facade: a concurrent map from
// sparsity pattern to the immutable SolverSymbolic state (analysis +
// plan), built on first sight and adopted by every later tenant.
//
// Keying: a 64-bit FNV-1a fingerprint over the pattern's dimensions and
// CSC arrays selects a bucket; the bucket stores the full pattern and
// every lookup verifies structural equality, so hash collisions can never
// alias two patterns (they only cost a scan of the few colliding
// entries). Distinct patterns build concurrently — only the map itself is
// briefly locked — while two threads racing on the *same* new pattern
// serialize on a per-entry mutex and share one build.
//
// Hits are exact, not approximate: adopting cached symbolic state yields
// factors bit-identical to a cold analyze+plan+factorize run with the
// same options, because the engine's factor depends only on the (shared)
// plan and the values.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "solver/solver.hpp"
#include "sparse/pattern.hpp"

namespace treemem {

/// 64-bit FNV-1a fingerprint of the pattern's structure (dimensions +
/// col_ptr + row_idx). Stable across runs and platforms; used by the
/// cache as the bucket key (equality is always re-verified on the full
/// pattern).
std::uint64_t pattern_fingerprint(const SparsePattern& pattern);

struct SymbolicCacheOptions {
  /// The analyze/plan options every cached build uses. One cache = one
  /// (ordering, amalgamation, traversal policy, budget) configuration;
  /// run several caches for several configurations.
  AnalyzeOptions analyze;
  PlanOptions plan;
};

class SymbolicCache {
 public:
  SymbolicCache() = default;
  explicit SymbolicCache(SymbolicCacheOptions options)
      : options_(std::move(options)) {}

  SymbolicCache(const SymbolicCache&) = delete;
  SymbolicCache& operator=(const SymbolicCache&) = delete;

  struct LookupResult {
    SolverSymbolic symbolic;
    bool hit = false;  ///< true when the pattern had been built before
  };

  /// The symbolic state for `pattern`: returned from the cache when the
  /// pattern was seen before, analyzed+planned (and cached) otherwise.
  /// Thread-safe; concurrent lookups of the same new pattern build once.
  /// Propagates the build's exception (e.g. a non-symmetric pattern)
  /// without poisoning the cache.
  LookupResult lookup(const SparsePattern& pattern);

  /// Convenience: a Solver already in the planned phase for `pattern`,
  /// configured with the cache's analyze/plan options plus `factorize` —
  /// call factorize()/solve() on it directly.
  Solver acquire(const SparsePattern& pattern,
                 const FactorizeOptions& factorize = {});

  struct Stats {
    long long hits = 0;
    long long misses = 0;
    std::size_t entries = 0;  ///< distinct patterns currently cached
  };
  Stats stats() const;

  const SymbolicCacheOptions& options() const { return options_; }

  /// Drops every entry (in-flight LookupResults keep their shared state
  /// alive; only the cache forgets).
  void clear();

 private:
  struct Entry {
    SparsePattern pattern;    ///< full key — collision-proof equality
    std::mutex build_mutex;   ///< serializes building (and reading) symbolic
    SolverSymbolic symbolic;  ///< empty until the first build succeeds
  };

  SymbolicCacheOptions options_;
  mutable std::mutex map_mutex_;
  std::unordered_map<std::uint64_t, std::vector<std::shared_ptr<Entry>>>
      entries_;
  std::size_t entry_count_ = 0;
  std::atomic<long long> hits_{0};
  std::atomic<long long> misses_{0};
};

}  // namespace treemem
