// SymbolicCache — analyze+plan once per sparsity pattern, share forever.
//
// The expensive half of a sparse direct solve is symbolic: ordering,
// elimination tree, amalgamation, traversal planning. In a solver service
// the same pattern arrives over and over with different numeric values
// (time steps, Newton iterations, tenants simulating the same mesh), and
// production codes amortize by splitting the symbolic handle from the
// numeric one (the UMFPACK symbolic/numeric object split). SymbolicCache
// is that amortization for the Solver facade: a concurrent map from
// sparsity pattern to the immutable SolverSymbolic state (analysis +
// plan), built on first sight and adopted by every later tenant.
//
// Keying: a 64-bit FNV-1a fingerprint over the pattern's dimensions and
// CSC arrays selects a bucket; the bucket stores the full pattern and
// every lookup verifies structural equality, so hash collisions can never
// alias two patterns (they only cost a scan of the few colliding
// entries). Distinct patterns build concurrently — only the map itself is
// briefly locked — while two threads racing on the *same* new pattern
// serialize on a per-entry mutex and share one build.
//
// Eviction: the cache is LRU + size-capped (max_entries / max_bytes, 0 =
// unbounded). A service under pattern churn would otherwise grow without
// bound — every one-off tenant pattern resident forever. Entries are held
// by shared_ptr, so eviction is always safe: an in-flight lookup (or an
// adopting Solver) keeps the analysis+plan alive after the cache forgets
// it; the only cost of evicting hot state is a rebuild on the next miss.
// Caps are enforced at insertion time, so the entry count never exceeds
// max_entries, not even transiently.
//
// Hits are exact, not approximate: adopting cached symbolic state yields
// factors bit-identical to a cold analyze+plan+factorize run with the
// same options, because the engine's factor depends only on the (shared)
// plan and the values. Hit/miss counters are exact too — a lookup counts
// as a miss iff an analyze+plan actually ran (including a failed one), so
// retries after a throwing build report misses, never hits.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "solver/solver.hpp"
#include "sparse/pattern.hpp"

namespace treemem {

/// 64-bit FNV-1a fingerprint of the pattern's structure (dimensions +
/// col_ptr + row_idx). Stable across runs and platforms; used by the
/// cache as the bucket key (equality is always re-verified on the full
/// pattern) and by the persistence layer to validate files on load.
std::uint64_t pattern_fingerprint(const SparsePattern& pattern);

struct SymbolicCacheOptions {
  /// The analyze/plan options every cached build uses. One cache = one
  /// (ordering, amalgamation, traversal policy, budget) configuration;
  /// run several caches for several configurations.
  AnalyzeOptions analyze;
  PlanOptions plan;
  /// LRU capacity caps; 0 = unbounded. `max_bytes` bounds the approximate
  /// resident size of the cached symbolic state (patterns, assembly
  /// trees, traversals — see approx_symbolic_bytes). When either cap is
  /// exceeded the least-recently-used entries are dropped; in-flight
  /// users keep their shared state alive.
  std::size_t max_entries = 0;
  std::size_t max_bytes = 0;
};

/// Approximate resident bytes of one SolverSymbolic (the eviction
/// currency of SymbolicCacheOptions::max_bytes).
std::size_t approx_symbolic_bytes(const SolverSymbolic& symbolic);

class SymbolicCache {
 public:
  SymbolicCache() = default;
  explicit SymbolicCache(SymbolicCacheOptions options)
      : options_(std::move(options)) {}

  SymbolicCache(const SymbolicCache&) = delete;
  SymbolicCache& operator=(const SymbolicCache&) = delete;

  struct LookupResult {
    SolverSymbolic symbolic;
    bool hit = false;  ///< true when no build ran (cached state returned)
  };

  /// The symbolic state for `pattern`: returned from the cache when the
  /// pattern was seen before, analyzed+planned (and cached) otherwise.
  /// Thread-safe; concurrent lookups of the same new pattern build once.
  /// Propagates the build's exception (e.g. a non-symmetric pattern)
  /// without poisoning the cache; the failed attempt counts as a miss.
  LookupResult lookup(const SparsePattern& pattern);

  /// Seeds the cache with externally built symbolic state (the warm-
  /// restart path: solver/symbolic_store.hpp). Counted neither as hit nor
  /// miss; a pattern already present keeps its existing entry. Returns
  /// true when the state was inserted. Throws when `symbolic` is empty.
  bool insert(SolverSymbolic symbolic);

  /// Every built symbolic state currently cached, most recently used
  /// first (entries still mid-build are skipped). The persistence layer
  /// (solver/symbolic_store.hpp) serializes this snapshot.
  std::vector<SolverSymbolic> snapshot() const;

  /// Convenience: a Solver already in the planned phase for `pattern`,
  /// configured with the cache's analyze/plan options plus `factorize` —
  /// call factorize()/solve() on it directly.
  Solver acquire(const SparsePattern& pattern,
                 const FactorizeOptions& factorize = {});

  struct Stats {
    long long hits = 0;       ///< lookups served without running a build
    long long misses = 0;     ///< lookups that ran analyze+plan (or tried)
    long long evictions = 0;  ///< entries dropped by the LRU caps
    std::size_t entries = 0;  ///< distinct patterns currently cached
    std::size_t resident_bytes = 0;  ///< approx bytes of cached state
  };
  Stats stats() const;

  const SymbolicCacheOptions& options() const { return options_; }

  /// Drops every entry AND resets the hit/miss/eviction counters: clear()
  /// starts a fresh epoch, so post-clear hit rates never mix epochs.
  /// (In-flight LookupResults keep their shared state alive; only the
  /// cache forgets.)
  void clear();

 private:
  struct Entry {
    SparsePattern pattern;  ///< full key — collision-proof equality
    std::uint64_t key = 0;  ///< fingerprint bucket this entry lives in
    std::mutex build_mutex;  ///< serializes building (and reading) symbolic
    SolverSymbolic symbolic;  ///< empty until the first build succeeds

    // Guarded by map_mutex_:
    bool in_map = true;        ///< false once evicted or cleared
    bool charged = false;      ///< bytes recorded in resident_bytes_
    std::size_t bytes = 0;     ///< approx_symbolic_bytes of the build
    std::list<std::shared_ptr<Entry>>::iterator lru_pos;
  };

  /// Drops the least-recently-used entry (the LRU list's back). Requires
  /// map_mutex_ held and a non-empty list.
  void evict_lru_locked();
  /// Evicts until both caps hold (or the cache is empty). Requires
  /// map_mutex_ held.
  void enforce_caps_locked();
  /// Records a finished build's bytes against the caps. No-op when the
  /// entry was evicted while building.
  void charge_entry(const std::shared_ptr<Entry>& entry, std::size_t bytes);
  /// Find-or-create under the map lock; touches LRU on find and enforces
  /// the entry cap on create.
  std::shared_ptr<Entry> find_or_create(const SparsePattern& pattern);

  SymbolicCacheOptions options_;
  mutable std::mutex map_mutex_;
  std::unordered_map<std::uint64_t, std::vector<std::shared_ptr<Entry>>>
      entries_;
  std::list<std::shared_ptr<Entry>> lru_;  ///< front = most recently used
  std::size_t entry_count_ = 0;
  std::size_t resident_bytes_ = 0;
  std::atomic<long long> hits_{0};
  std::atomic<long long> misses_{0};
  std::atomic<long long> evictions_{0};
};

}  // namespace treemem
