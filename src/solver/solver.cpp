#include "solver/solver.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "core/liu.hpp"
#include "core/minio.hpp"
#include "core/minmem.hpp"
#include "core/postorder.hpp"
#include "multifrontal/numeric_parallel.hpp"
#include "multifrontal/out_of_core.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_sim.hpp"
#include "order/ordering.hpp"
#include "support/env.hpp"
#include "support/parallel_for.hpp"
#include "support/timer.hpp"
#include "symbolic/symbolic.hpp"

namespace treemem {

const char* to_string(OrderingChoice choice) {
  switch (choice) {
    case OrderingChoice::kNatural:
      return "natural";
    case OrderingChoice::kRcm:
      return "rcm";
    case OrderingChoice::kMinDegree:
      return "mindeg";
    case OrderingChoice::kNestedDissection:
      return "nd";
  }
  return "?";
}

const char* to_string(TraversalPolicy policy) {
  switch (policy) {
    case TraversalPolicy::kAuto:
      return "auto";
    case TraversalPolicy::kPostorder:
      return "postorder";
    case TraversalPolicy::kLiu:
      return "liu";
    case TraversalPolicy::kMinMem:
      return "minmem";
  }
  return "?";
}

const char* to_string(FactorizeEngine engine) {
  switch (engine) {
    case FactorizeEngine::kAuto:
      return "auto";
    case FactorizeEngine::kSerial:
      return "serial";
    case FactorizeEngine::kParallel:
      return "parallel";
  }
  return "?";
}

SolverOptions solver_options_from_env(SolverOptions base) {
  // The enum values are declared in the same order as these spellings, so
  // the matched index casts straight to the enumerator.
  if (const auto ordering = env_choice("TREEMEM_ORDERING",
                                       {"natural", "rcm", "mindeg", "nd"})) {
    base.analyze.ordering = static_cast<OrderingChoice>(*ordering);
  }
  if (const auto policy = env_choice(
          "TREEMEM_TRAVERSAL", {"auto", "postorder", "liu", "minmem"})) {
    base.plan.policy = static_cast<TraversalPolicy>(*policy);
  }
  if (const auto budget = env_int("TREEMEM_BUDGET", 1, kInfiniteWeight)) {
    base.plan.memory_budget = static_cast<Weight>(*budget);
  }
  if (const auto workers = env_int("TREEMEM_WORKERS", 1, 1024)) {
    base.factorize.workers = static_cast<int>(*workers);
  }
  if (const auto admission = admission_policy_from_env()) {
    // One knob steers both consumers: the plan-phase co-search simulates
    // under the same policy the factorize-phase executor will run.
    base.plan.admission = *admission;
    base.factorize.admission = *admission;
  }
  base.factorize.kernel = kernel_config_from_env(base.factorize.kernel);
  return base;
}

void Solver::require_phase(Phase at_least, const char* verb,
                           const char* prerequisite) const {
  TM_CHECK(phase_ >= at_least,
           "Solver::" << verb << ": call " << prerequisite << " first");
}

// ---------------------------------------------------------------------------
// Phase 1: analyze
// ---------------------------------------------------------------------------

Solver& Solver::analyze(const SparsePattern& pattern) {
  return analyze(pattern, options_.analyze);
}

Solver& Solver::analyze(const SparsePattern& pattern,
                        const AnalyzeOptions& options) {
  TM_CHECK(pattern.is_square() && pattern.cols() > 0,
           "Solver::analyze: pattern must be square and non-empty");
  TM_CHECK(pattern.is_symmetric() && pattern.has_full_diagonal(),
           "Solver::analyze: pattern must be symmetric with a full diagonal "
           "(apply symmetrize() first)");
  Timer timer;
  obs::TraceSpan phase_span("analyze", "solver", obs::TraceRecorder::kNoLane,
                            "n", static_cast<long long>(pattern.cols()));

  auto analysis = std::make_shared<SolverAnalysis>();
  analysis->options = options;

  std::vector<Index> perm;
  switch (options.ordering) {
    case OrderingChoice::kNatural:
      perm = natural_order(pattern.cols());
      break;
    case OrderingChoice::kRcm:
      perm = rcm_order(pattern);
      break;
    case OrderingChoice::kMinDegree:
      perm = min_degree_order(pattern);
      break;
    case OrderingChoice::kNestedDissection:
      perm = nested_dissection_order(pattern);
      break;
  }
  SparsePattern permuted = permute_symmetric(pattern, perm);
  AssemblyTreeOptions tree_options;
  tree_options.relax = options.relax;
  tree_options.perfect = options.perfect;
  AssemblyTree assembly = build_assembly_tree(permuted, tree_options);

  // Gather map: permuted entry (r, j) holds the original value at
  // (perm[r], perm[j]). Resolving those offsets once here turns every
  // later factorize() into a single linear gather over the value array.
  std::vector<std::size_t> value_map(static_cast<std::size_t>(permuted.nnz()));
  {
    std::size_t offset = 0;
    for (Index j = 0; j < permuted.cols(); ++j) {
      const Index source_col = perm[static_cast<std::size_t>(j)];
      const auto source_rows = pattern.column(source_col);
      const std::size_t source_base = static_cast<std::size_t>(
          pattern.col_ptr()[static_cast<std::size_t>(source_col)]);
      for (const Index r : permuted.column(j)) {
        const Index source_row = perm[static_cast<std::size_t>(r)];
        const auto it = std::lower_bound(source_rows.begin(),
                                         source_rows.end(), source_row);
        TM_ASSERT(it != source_rows.end() && *it == source_row,
                  "permuted pattern entry missing from the source pattern");
        value_map[offset++] =
            source_base + static_cast<std::size_t>(it - source_rows.begin());
      }
    }
  }

  analysis->pattern = pattern;
  analysis->perm = std::move(perm);
  analysis->permuted_pattern = std::move(permuted);
  analysis->assembly = std::move(assembly);
  analysis->permuted_value_map = std::move(value_map);
  analysis->factor_nnz = factor_nnz(analysis->permuted_pattern);
  analysis->ordering_name = to_string(options.ordering);
  analysis->analyze_seconds = timer.elapsed_s();

  // Commit only after everything above succeeded, so a throwing analyze()
  // leaves a previously analyzed solver intact.
  analysis_ = std::move(analysis);
  plan_.reset();
  postorder_cache_.reset();
  liu_cache_.reset();
  minmem_cache_.reset();
  factor_.reset();
  phase_ = Phase::kAnalyzed;

  stats_ = SolverStats{};
  solve_counters_.reset();
  stats_.n = analysis_->pattern.cols();
  stats_.pattern_nnz = analysis_->pattern.nnz();
  stats_.factor_nnz = analysis_->factor_nnz;
  stats_.tree_nodes = analysis_->assembly.tree.size();
  stats_.ordering = analysis_->ordering_name;
  stats_.analyze_seconds = analysis_->analyze_seconds;
  return *this;
}

// ---------------------------------------------------------------------------
// Phase 2: plan
// ---------------------------------------------------------------------------

Solver& Solver::plan() { return plan(options_.plan); }

const TraversalResult& Solver::cached_postorder() const {
  if (!postorder_cache_) {
    postorder_cache_ = best_postorder(analysis_->assembly.tree);
  }
  return *postorder_cache_;
}

const TraversalResult& Solver::cached_liu() const {
  if (!liu_cache_) {
    liu_cache_ = liu_optimal(analysis_->assembly.tree);
  }
  return *liu_cache_;
}

const MinMemResult& Solver::cached_minmem() const {
  if (!minmem_cache_) {
    minmem_cache_ = minmem_optimal(analysis_->assembly.tree);
  }
  return *minmem_cache_;
}

Solver& Solver::plan(const PlanOptions& options) {
  require_phase(Phase::kAnalyzed, "plan", "analyze()");
  TM_CHECK(options.memory_budget > 0,
           "Solver::plan: memory budget must be positive");
  Timer timer;
  obs::TraceSpan phase_span("plan", "solver");
  const Tree& tree = analysis_->assembly.tree;
  const Weight budget = options.memory_budget;

  const TraversalResult& postorder = cached_postorder();
  const MinMemResult& optimal = cached_minmem();

  // The chosen out-tree traversal; the facade stores its reverse (the
  // bottom-up multifrontal direction).
  Traversal out_tree_order;
  Weight in_core_peak = 0;
  std::string strategy;
  bool out_of_core = false;
  IoSchedule schedule;
  Weight io_volume = 0;

  // Candidate traversals in the out-of-core regime: the explicit policy's
  // own order, or — under kAuto — postorder and Liu, the chain-building
  // orders Fig. 8 shows keep I/O low.
  std::vector<std::pair<std::string, Traversal>> ooc_candidates;

  switch (options.policy) {
    case TraversalPolicy::kAuto:
      if (budget >= postorder.peak) {
        out_tree_order = postorder.order;
        in_core_peak = postorder.peak;
        strategy = "postorder/in-core";
      } else if (budget >= optimal.peak) {
        out_tree_order = optimal.order;
        in_core_peak = optimal.peak;
        strategy = "minmem/in-core";
      } else {
        out_of_core = true;
        ooc_candidates.emplace_back("postorder", postorder.order);
        ooc_candidates.emplace_back("liu", cached_liu().order);
      }
      break;
    case TraversalPolicy::kPostorder:
      out_tree_order = postorder.order;
      in_core_peak = postorder.peak;
      strategy = "postorder/in-core";
      break;
    case TraversalPolicy::kLiu: {
      const TraversalResult& liu = cached_liu();
      out_tree_order = liu.order;
      in_core_peak = liu.peak;
      strategy = "liu/in-core";
      break;
    }
    case TraversalPolicy::kMinMem:
      out_tree_order = optimal.order;
      in_core_peak = optimal.peak;
      strategy = "minmem/in-core";
      break;
  }

  // An explicitly chosen traversal that misses the budget falls back to
  // MinIO eviction on that same traversal.
  if (!out_of_core && budget < in_core_peak) {
    out_of_core = true;
    ooc_candidates.emplace_back(to_string(options.policy),
                                std::move(out_tree_order));
  }

  // Traversal × schedule co-search (in-core plans under a finite budget):
  // rank every budget-feasible candidate traversal by the *parallel* peak
  // it produces as the serial witness of a simulated
  // co_search_workers-worker schedule under the chosen admission policy,
  // and adopt the winner. The serial decision above remains the fallback
  // when no candidate yields a feasible parallel schedule (e.g. greedy
  // admission deadlocks on all of them).
  Weight parallel_peak = 0;
  if (options.co_search_workers > 0 && !out_of_core &&
      budget < kInfiniteWeight) {
    struct Candidate {
      const char* name;
      const Traversal* order;  // out-tree direction
      Weight serial_peak;
    };
    const TraversalResult& liu = cached_liu();
    const Candidate candidates[] = {
        {"postorder", &postorder.order, postorder.peak},
        {"liu", &liu.order, liu.peak},
        {"minmem", &optimal.order, optimal.peak},
    };
    const Candidate* winner = nullptr;
    ParallelScheduleResult winner_run;
    for (const Candidate& candidate : candidates) {
      if (candidate.serial_peak > budget) {
        continue;  // cannot serve as a witness: its own serial run misses
      }
      ParallelOptions sim;
      sim.workers = options.co_search_workers;
      sim.memory_budget = budget;
      sim.admission = options.admission;
      sim.serial_witness = reverse_traversal(*candidate.order);
      const ParallelScheduleResult run =
          simulate_parallel_traversal(tree, sim);
      if (!run.feasible) {
        continue;
      }
      const bool better =
          winner == nullptr || run.peak_memory < winner_run.peak_memory ||
          (run.peak_memory == winner_run.peak_memory &&
           run.makespan < winner_run.makespan);
      if (better) {
        winner = &candidate;
        winner_run = run;
      }
    }
    if (winner != nullptr) {
      out_tree_order = *winner->order;
      in_core_peak = winner->serial_peak;
      parallel_peak = winner_run.peak_memory;
      strategy = std::string(winner->name) + "/in-core+cosearch(w" +
                 std::to_string(options.co_search_workers) + "," +
                 to_string(options.admission) + ")";
    }
  }

  if (out_of_core) {
    TM_CHECK(options.allow_out_of_core,
             "Solver::plan: budget " << budget
                                     << " is below the in-core peak and "
                                        "out-of-core execution is disabled");
    const Weight floor =
        std::max(tree.max_mem_req(), tree.file_size(tree.root()));
    TM_CHECK(budget >= floor,
             "Solver::plan: budget " << budget << " is below max MemReq "
                                     << floor
                                     << " — no schedule can help (Eq. 1)");
    Weight best_io = kInfiniteWeight;
    for (const auto& [name, order] : ooc_candidates) {
      for (const EvictionPolicy policy :
           {EvictionPolicy::kFirstFit, EvictionPolicy::kBestKCombination}) {
        const MinIoResult result =
            minio_heuristic(tree, order, budget, policy);
        TM_ASSERT(result.feasible, "budget above the floor must be feasible");
        if (result.io_volume < best_io) {
          best_io = result.io_volume;
          schedule = result.schedule;
          strategy = name + "+" + to_string(policy) + "/out-of-core";
        }
      }
    }
    out_tree_order = schedule.order;
    io_volume = best_io;
  }

  auto plan_state = std::make_shared<SolverPlan>();
  plan_state->options = options;
  plan_state->bottom_up_order = reverse_traversal(std::move(out_tree_order));
  plan_state->io_schedule = std::move(schedule);
  plan_state->out_of_core = out_of_core;
  plan_state->budget = budget;
  plan_state->strategy = std::move(strategy);
  plan_state->planned_peak_entries = out_of_core ? budget : in_core_peak;
  plan_state->in_core_optimum = optimal.peak;
  plan_state->best_postorder_peak = postorder.peak;
  plan_state->planned_io_volume = io_volume;
  plan_state->planned_parallel_peak = parallel_peak;
  plan_state->plan_seconds = timer.elapsed_s();

  plan_ = std::move(plan_state);
  factor_.reset();
  phase_ = Phase::kPlanned;

  stats_.strategy = plan_->strategy;
  stats_.memory_budget = budget;
  stats_.planned_peak_entries = plan_->planned_peak_entries;
  stats_.in_core_optimum = plan_->in_core_optimum;
  stats_.best_postorder_peak = plan_->best_postorder_peak;
  stats_.planned_io_volume = plan_->planned_io_volume;
  stats_.planned_parallel_peak = plan_->planned_parallel_peak;
  stats_.plan_seconds = plan_->plan_seconds;
  return *this;
}

// ---------------------------------------------------------------------------
// Shared symbolic state
// ---------------------------------------------------------------------------

SolverSymbolic Solver::symbolic() const {
  require_phase(Phase::kPlanned, "symbolic", "plan()");
  return SolverSymbolic{analysis_, plan_};
}

Solver& Solver::adopt(SolverSymbolic symbolic) {
  TM_CHECK(symbolic.analysis != nullptr && symbolic.plan != nullptr,
           "Solver::adopt: symbolic state must carry both an analysis and a "
           "plan (export it from a planned solver via symbolic())");
  analysis_ = std::move(symbolic.analysis);
  plan_ = std::move(symbolic.plan);
  postorder_cache_.reset();
  liu_cache_.reset();
  minmem_cache_.reset();
  factor_.reset();
  phase_ = Phase::kPlanned;

  // Rebuild the analyze/plan reporting fields from the adopted snapshots;
  // keep the cumulative service counters (factorizations + the atomic
  // solve counters) so a pooled solver accumulates lifetime totals.
  const int factorizations = stats_.factorizations;
  const long long leases_granted = stats_.leases_granted;
  const long long lease_denied = stats_.lease_denied;
  stats_ = SolverStats{};
  stats_.factorizations = factorizations;
  stats_.leases_granted = leases_granted;
  stats_.lease_denied = lease_denied;
  stats_.n = analysis_->pattern.cols();
  stats_.pattern_nnz = analysis_->pattern.nnz();
  stats_.factor_nnz = analysis_->factor_nnz;
  stats_.tree_nodes = analysis_->assembly.tree.size();
  stats_.ordering = analysis_->ordering_name;
  stats_.analyze_seconds = analysis_->analyze_seconds;
  stats_.strategy = plan_->strategy;
  stats_.memory_budget = plan_->budget;
  stats_.planned_peak_entries = plan_->planned_peak_entries;
  stats_.in_core_optimum = plan_->in_core_optimum;
  stats_.best_postorder_peak = plan_->best_postorder_peak;
  stats_.planned_io_volume = plan_->planned_io_volume;
  stats_.planned_parallel_peak = plan_->planned_parallel_peak;
  stats_.plan_seconds = plan_->plan_seconds;
  return *this;
}

// ---------------------------------------------------------------------------
// Phase 3: factorize
// ---------------------------------------------------------------------------

Solver& Solver::factorize(const SymmetricMatrix& matrix) {
  return factorize(matrix, options_.factorize);
}

Solver& Solver::factorize(const SymmetricMatrix& matrix,
                          const FactorizeOptions& options) {
  require_phase(Phase::kPlanned, "factorize", "plan()");
  TM_CHECK(matrix.pattern().col_ptr() == analysis_->pattern.col_ptr() &&
               matrix.pattern().row_idx() == analysis_->pattern.row_idx(),
           "Solver::factorize: matrix pattern differs from the analyzed "
           "pattern");
  return factorize_permuted(permute_values(matrix.values()), options);
}

Solver& Solver::factorize(std::vector<double> values) {
  return factorize(std::move(values), options_.factorize);
}

Solver& Solver::factorize(std::vector<double> values,
                          const FactorizeOptions& options) {
  require_phase(Phase::kPlanned, "factorize", "plan()");
  TM_CHECK(values.size() == static_cast<std::size_t>(analysis_->pattern.nnz()),
           "Solver::factorize: " << values.size()
                                 << " values for a pattern with "
                                 << analysis_->pattern.nnz() << " entries");
  return factorize_permuted(permute_values(values), options);
}

SymmetricMatrix Solver::permute_values(
    const std::vector<double>& values) const {
  // One linear gather over the analyze()-time map replaces a full
  // symbolic permutation per factorize; the SymmetricMatrix constructor
  // still validates value symmetry on the permuted system.
  const std::vector<std::size_t>& map = analysis_->permuted_value_map;
  std::vector<double> permuted_values(map.size());
  for (std::size_t o = 0; o < map.size(); ++o) {
    permuted_values[o] = values[map[o]];
  }
  return SymmetricMatrix(analysis_->permuted_pattern,
                         std::move(permuted_values));
}

Solver& Solver::factorize_permuted(const SymmetricMatrix& permuted,
                                   const FactorizeOptions& options) {
  TM_CHECK(options.workers >= 0,
           "Solver::factorize: workers must be >= 0 (0 = default)");
  const int workers = options.workers > 0
                          ? options.workers
                          : static_cast<int>(default_thread_count());

  FactorizeEngine engine = options.engine;
  if (engine == FactorizeEngine::kAuto) {
    engine = (!plan_->out_of_core && workers > 1) ? FactorizeEngine::kParallel
                                                  : FactorizeEngine::kSerial;
  }
  TM_CHECK(engine == FactorizeEngine::kSerial || !plan_->out_of_core,
           "Solver::factorize: the parallel engine cannot execute an "
           "out-of-core plan (spills are inherently serial here); use "
           "FactorizeEngine::kSerial or raise the memory budget");

  Timer timer;
  obs::TraceSpan phase_span("factorize", "solver", obs::TraceRecorder::kNoLane,
                            "workers", workers);
  bool stall_fallback = false;
  const char* engine_name = "serial";

  if (engine == FactorizeEngine::kParallel) {
    // Designated initialization on purpose: naming every member skips
    // ParallelFactorOptions' kernel_config_from_env() default, so the
    // facade stays insulated from the environment (options flow only
    // through SolverOptions / solver_options_from_env). The planned
    // traversal is the serial witness: plan() guaranteed its peak fits the
    // budget, so the non-greedy policies are stall-free here.
    const ParallelFactorOptions parallel{
        .workers = workers,
        .memory_budget = plan_->budget,
        .priority = options.priority,
        .admission = options.admission,
        .serial_witness = plan_->bottom_up_order,
        .kernel = options.kernel,
        .lease_idle_workers = options.lease_idle_workers};
    ParallelFactorResult run =
        factor_parallel(permuted, analysis_->assembly, parallel);
    if (run.feasible) {
      factor_ = std::make_shared<const CholeskyFactor>(std::move(run.factor));
      phase_ = Phase::kFactorized;
      stats_.engine = "parallel";
      stats_.kernel = to_string(options.kernel.kind);
      stats_.admission = to_string(options.admission);
      stats_.workers = workers;
      stats_.flops = run.flops;
      stats_.measured_peak_entries = run.measured_peak_entries;
      stats_.modeled_peak_entries = run.modeled_peak_entries;
      stats_.factorize_seconds = timer.elapsed_s();
      stats_.parallel_speedup = run.speedup;
      stats_.stall_fallback = false;
      stats_.leases_granted += run.leases_granted;
      stats_.lease_denied += run.lease_denied;
      ++stats_.factorizations;
      return *this;
    }
    // Greedy stall under a tight budget: the planned serial traversal is
    // guaranteed feasible, and the serial engine produces the identical
    // factor bit for bit — fall back unless the caller wants to see it.
    if (!options.allow_serial_fallback) {
      std::ostringstream message;
      message << "Solver::factorize: parallel schedule stalled under budget "
              << plan_->budget << " with " << workers << " workers ("
              << to_string(options.admission) << " admission deadlock)";
      throw SolverStallError(message.str());
    }
    stall_fallback = true;
  }

  Weight measured_peak = 0;
  long long flops = 0;
  if (plan_->out_of_core) {
    OutOfCoreRunResult run = multifrontal_cholesky_out_of_core(
        permuted, analysis_->assembly, plan_->io_schedule, plan_->budget);
    measured_peak = run.peak_live_entries;
    // The out-of-core engine does not count flops; the planned schedule
    // executes the same eliminations, so reuse the serial convention via
    // the factor itself (flops are reported as 0 when unknown).
    factor_ = std::make_shared<const CholeskyFactor>(std::move(run.factor));
    engine_name = "out-of-core";
  } else {
    MultifrontalResult run = multifrontal_cholesky(
        permuted, analysis_->assembly, plan_->bottom_up_order, options.kernel);
    measured_peak = run.peak_live_entries;
    flops = run.flops;
    factor_ = std::make_shared<const CholeskyFactor>(std::move(run.factor));
  }
  phase_ = Phase::kFactorized;
  stats_.engine = engine_name;
  stats_.kernel = to_string(options.kernel.kind);
  stats_.admission.clear();  // serial runs have no admission decisions
  stats_.workers = 1;
  stats_.flops = flops;
  stats_.measured_peak_entries = measured_peak;
  stats_.modeled_peak_entries = stats_.planned_peak_entries;
  stats_.factorize_seconds = timer.elapsed_s();
  stats_.parallel_speedup = 0.0;
  stats_.stall_fallback = stall_fallback;
  ++stats_.factorizations;
  return *this;
}

// ---------------------------------------------------------------------------
// Phase 4: solve
// ---------------------------------------------------------------------------

std::vector<double> Solver::solve(std::vector<double> rhs) const {
  require_phase(Phase::kFactorized, "solve", "factorize()");
  const std::size_t n = static_cast<std::size_t>(analysis_->pattern.cols());
  TM_CHECK(rhs.size() == n, "Solver::solve: rhs has " << rhs.size()
                                                      << " entries, expected "
                                                      << n);
  Timer timer;
  obs::TraceSpan phase_span("solve", "solver");
  const std::vector<Index>& perm = analysis_->perm;
  // Solve P A Pᵀ y = P b, then undo the permutation: x = Pᵀ y.
  std::vector<double> permuted_rhs(n);
  for (std::size_t k = 0; k < n; ++k) {
    permuted_rhs[k] = rhs[static_cast<std::size_t>(perm[k])];
  }
  const std::vector<double> y =
      solve_with_factor(*factor_, std::move(permuted_rhs));
  std::vector<double>& x = rhs;  // reuse the buffer
  for (std::size_t k = 0; k < n; ++k) {
    x[static_cast<std::size_t>(perm[k])] = y[k];
  }
  // Relaxed is enough: the counters are cumulative tallies read through
  // stats() snapshots, not synchronization edges.
  solve_counters_.nanos.fetch_add(
      static_cast<long long>(timer.elapsed_s() * 1e9),
      std::memory_order_relaxed);
  solve_counters_.rhs.fetch_add(1, std::memory_order_relaxed);
  return x;
}

std::vector<std::vector<double>> Solver::solve(
    const std::vector<std::vector<double>>& rhs) const {
  require_phase(Phase::kFactorized, "solve", "factorize()");
  std::vector<std::vector<double>> solutions;
  solutions.reserve(rhs.size());
  for (const std::vector<double>& column : rhs) {
    solutions.push_back(solve(column));
  }
  return solutions;
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

SolverStats Solver::stats() const {
  SolverStats snapshot = stats_;
  snapshot.rhs_solved = solve_counters_.rhs.load(std::memory_order_relaxed);
  snapshot.solve_seconds =
      static_cast<double>(
          solve_counters_.nanos.load(std::memory_order_relaxed)) *
      1e-9;
  return snapshot;
}

const std::vector<Index>& Solver::permutation() const {
  require_phase(Phase::kAnalyzed, "permutation", "analyze()");
  return analysis_->perm;
}

const AssemblyTree& Solver::assembly() const {
  require_phase(Phase::kAnalyzed, "assembly", "analyze()");
  return analysis_->assembly;
}

const Traversal& Solver::planned_traversal() const {
  require_phase(Phase::kPlanned, "planned_traversal", "plan()");
  return plan_->bottom_up_order;
}

const IoSchedule& Solver::planned_io_schedule() const {
  require_phase(Phase::kPlanned, "planned_io_schedule", "plan()");
  return plan_->io_schedule;
}

const CholeskyFactor& Solver::factor() const {
  require_phase(Phase::kFactorized, "factor", "factorize()");
  return *factor_;
}

std::shared_ptr<const CholeskyFactor> Solver::shared_factor() const {
  require_phase(Phase::kFactorized, "shared_factor", "factorize()");
  return factor_;
}

Solver& Solver::adopt_factor(std::shared_ptr<const CholeskyFactor> factor) {
  require_phase(Phase::kPlanned, "adopt_factor", "plan() (or adopt())");
  TM_CHECK(factor != nullptr,
           "Solver::adopt_factor: factor must be non-null (export it from a "
           "factorized solver via shared_factor())");
  TM_CHECK(factor->pattern.cols() == analysis_->permuted_pattern.cols(),
           "Solver::adopt_factor: factor dimension "
               << factor->pattern.cols() << " differs from the adopted "
               << "pattern's " << analysis_->permuted_pattern.cols());
  factor_ = std::move(factor);
  phase_ = Phase::kFactorized;
  // Reporting: no numeric work ran — engine "cached", zero time/flops.
  // factorizations is deliberately NOT incremented; it counts factors
  // actually computed, which is what the repeat-values bench compares.
  stats_.engine = "cached";
  stats_.admission.clear();
  stats_.workers = 0;
  stats_.flops = 0;
  stats_.measured_peak_entries = 0;
  stats_.modeled_peak_entries = 0;
  stats_.factorize_seconds = 0.0;
  stats_.parallel_speedup = 0.0;
  stats_.stall_fallback = false;
  return *this;
}

}  // namespace treemem
