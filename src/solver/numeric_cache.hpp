// NumericCache — skip factorize() when the *values* repeat too.
//
// The SymbolicCache amortizes the analyze+plan phase across requests that
// share a sparsity pattern; this cache amortizes the numeric phase across
// requests that share pattern AND values — time steps replayed after a
// rollback, identical tenant meshes with identical coefficients, retry
// storms. A hit hands back the shared, immutable CholeskyFactor and the
// request goes straight to triangular solves.
//
// Keying: (pattern fingerprint, value fingerprint), both 64-bit FNV-1a.
// Collisions cannot alias: every entry stores its defining value vector
// and a lookup verifies bitwise equality before reporting a hit (the
// comparison is one linear pass over nnz doubles — noise next to the
// factorization it saves). The stored factor is exactly the one a cold
// factorize would produce, so hits are bit-identical by construction.
//
// Memory: a resident factor is real memory, so each entry carries the
// accounting charge (in modeled entries — the pool's Eq. 1 currency) its
// owner acquired from the MemoryAccountant when inserting. The cache
// itself never touches the accountant; the owner (SolverPool) acquires
// before insert() and releases what evict_lru()/clear() report freed.
// That keeps the cache lock innermost and free of lock-order cycles.
// Entries are LRU-ordered and capped by max_entries; the pool also evicts
// on demand when admission needs head-room (a cached factor is the
// cheapest thing to drop — it can always be recomputed).
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "multifrontal/numeric.hpp"
#include "tree/tree.hpp"

namespace treemem {

/// 64-bit FNV-1a fingerprint over the values' IEEE-754 bit patterns (so
/// +0.0 / -0.0 and NaN payloads are distinguished — bitwise identity is
/// the only equality under which cached factors are exactly right).
std::uint64_t value_fingerprint(const std::vector<double>& values);

struct NumericCacheOptions {
  /// Maximum resident factors; 0 disables the cache entirely (every
  /// lookup misses, inserts are dropped).
  std::size_t max_entries = 0;
};

class NumericCache {
 public:
  NumericCache() = default;
  explicit NumericCache(NumericCacheOptions options) : options_(options) {}

  NumericCache(const NumericCache&) = delete;
  NumericCache& operator=(const NumericCache&) = delete;

  /// The cached factor for (pattern_key, values), or null on a miss.
  /// Verifies the defining values bitwise, so a fingerprint collision is
  /// a miss, never a wrong factor. Touches the entry's LRU position.
  std::shared_ptr<const CholeskyFactor> lookup(
      std::uint64_t pattern_key, const std::vector<double>& values);

  /// Caches `factor` under (pattern_key, values). `charge` is the
  /// accounting weight the caller already acquired for this residency;
  /// the cache stores it and reports it back when the entry is dropped.
  /// Returns false (caller must release `charge`) when the cache is
  /// disabled or the key is already present. May evict the LRU entry to
  /// respect max_entries — freed charges are reported via
  /// take_freed_charge() like any other eviction.
  bool insert(std::uint64_t pattern_key, std::vector<double> values,
              std::shared_ptr<const CholeskyFactor> factor, Weight charge);

  /// Drops the least-recently-used factor and returns its charge (0 when
  /// the cache is empty). The caller owns returning that charge to the
  /// accountant — this is the admission-pressure valve in SolverPool.
  Weight evict_lru();

  /// Sum of charges freed by cap-triggered evictions inside insert()
  /// since the last call (fetch-and-reset). Lets the owner return those
  /// charges to the accountant without holding its lock across insert().
  Weight take_freed_charge();

  /// Drops everything and returns the total charge freed.
  Weight clear();

  struct Stats {
    long long hits = 0;
    long long misses = 0;
    long long evictions = 0;
    std::size_t entries = 0;
    Weight resident_charge = 0;  ///< sum of live entries' charges
  };
  Stats stats() const;

  const NumericCacheOptions& options() const { return options_; }
  bool enabled() const { return options_.max_entries > 0; }

 private:
  struct Entry {
    std::uint64_t pattern_key = 0;
    std::uint64_t value_key = 0;
    std::vector<double> values;  ///< defining values — collision-proof
    std::shared_ptr<const CholeskyFactor> factor;
    Weight charge = 0;
    std::list<std::shared_ptr<Entry>>::iterator lru_pos;
  };

  static std::uint64_t bucket_key(std::uint64_t pattern_key,
                                  std::uint64_t value_key);
  /// Requires mutex_ held; returns the dropped entry's charge.
  Weight evict_lru_locked();

  NumericCacheOptions options_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::vector<std::shared_ptr<Entry>>>
      entries_;
  std::list<std::shared_ptr<Entry>> lru_;  ///< front = most recently used
  std::size_t entry_count_ = 0;
  Weight resident_charge_ = 0;
  Weight freed_charge_ = 0;  ///< insert()-eviction charges awaiting pickup
  std::atomic<long long> hits_{0};
  std::atomic<long long> misses_{0};
  std::atomic<long long> evictions_{0};
};

}  // namespace treemem
