// treemem::Solver — the phased facade over the whole library: the
// analyze / plan / factorize / solve pipeline of a production sparse
// direct solver, with the paper's traversal planning as the plan phase.
//
// Before this facade, running the system end to end meant hand-stitching
// five modules (order/ → symbolic/ → core/planner → multifrontal/numeric*
// → solve_with_factor) and threading configuration through three disjoint
// channels. The facade owns that choreography and exposes the standard
// production split:
//
//   Solver solver;
//   solver.analyze(a.pattern());   // ordering, amalgamation, symbolic
//   solver.plan();                 // traversal policy + memory budget
//   solver.factorize(a);           // numeric Cholesky, serial or threaded
//   std::vector<double> x = solver.solve(b);
//
// The phases form an explicit state machine: each call requires its
// predecessor (a clean treemem::Error otherwise), analyze() invalidates
// any previous plan and factor, plan() invalidates the factor, and
// factorize()/solve() may be repeated at will. The point of the split is
// amortization: the expensive symbolic phase (ordering, elimination tree,
// amalgamation, traversal planning) is computed once and reused across
// many numeric factorizations of matrices sharing the pattern — the
// analyze/factorize structure production codes (and the paper's
// experiments) presuppose. Repeat factorizations are bit-identical to a
// fresh end-to-end run: the engine's factor is schedule-exact, so cached
// symbolic state cannot change a single bit of the numbers.
//
// The analyze and plan products are *immutable once built* and live
// behind shared_ptr<const> handles (SolverSymbolic): a planned solver can
// export its symbolic state and any number of other Solver instances —
// other tenants of a service — can adopt() it, sharing one copy of the
// ordering, assembly tree and traversal across threads with no
// duplication and no synchronization. That handle is what the
// service layer (solver/symbolic_cache.hpp, solver/solver_pool.hpp)
// caches per sparsity pattern. solve() is const AND thread-safe: many
// threads may solve against one factorized Solver concurrently (the
// cumulative solve counters are atomic).
//
// Configuration flows through one aggregate (SolverOptions, one member
// per phase) with every TREEMEM_* environment override applied by
// solver_options_from_env() through the strictly-parsed support/env.hpp
// layer. The low-level entry points the facade wraps stay exported via
// treemem.hpp for the paper-reproduction benches.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/minmem.hpp"
#include "core/traversal.hpp"
#include "dense/front_kernel.hpp"
#include "multifrontal/numeric.hpp"
#include "parallel/schedule_core.hpp"
#include "sparse/pattern.hpp"
#include "symbolic/assembly_tree.hpp"

namespace treemem {

/// Fill-reducing ordering applied in analyze(). kNatural accepts the
/// pattern as-is — the choice for matrices permuted by an external
/// ordering (e.g. the perf corpus instances).
enum class OrderingChoice {
  kNatural,
  kRcm,
  kMinDegree,
  kNestedDissection,
};

const char* to_string(OrderingChoice choice);

/// Traversal policy of plan(). kAuto follows the decision procedure the
/// paper's experiments justify (core/planner.hpp): best postorder when it
/// fits the budget, MinMem when only the optimum fits, MinIO out-of-core
/// below that.
enum class TraversalPolicy {
  kAuto,
  kPostorder,
  kLiu,
  kMinMem,
};

const char* to_string(TraversalPolicy policy);

/// Numeric engine of factorize(). kAuto picks the threaded engine when the
/// plan is in-core and more than one worker is requested, the serial
/// engine otherwise (out-of-core plans always run serially).
enum class FactorizeEngine {
  kAuto,
  kSerial,
  kParallel,
};

const char* to_string(FactorizeEngine engine);

struct AnalyzeOptions {
  OrderingChoice ordering = OrderingChoice::kMinDegree;
  /// Relaxed amalgamations per supernode (assembly_tree.hpp; the paper
  /// uses 1, 2, 4 and 16). 0 keeps perfect supernodes: model == machine.
  Index relax = 1;
  /// Perform perfect (fundamental supernode) amalgamation first.
  bool perfect = true;
};

struct PlanOptions {
  TraversalPolicy policy = TraversalPolicy::kAuto;
  /// Budget on modeled live entries (Eq. 1 accounting over the assembly
  /// tree); kInfiniteWeight plans unconstrained.
  Weight memory_budget = kInfiniteWeight;
  /// When the budget is below the chosen traversal's in-core peak, fall
  /// back to a MinIO eviction schedule (out-of-core execution) instead of
  /// failing. Below max MemReq no schedule exists and plan() throws
  /// either way.
  bool allow_out_of_core = true;
  /// Admission policy assumed by the traversal × schedule co-search below
  /// (and the natural companion of FactorizeOptions::admission — the env
  /// layer sets both from TREEMEM_ADMISSION).
  AdmissionPolicy admission = AdmissionPolicy::kGreedy;
  /// > 0 enables the traversal × schedule co-search: every budget-feasible
  /// traversal candidate (postorder, Liu, MinMem — the searches plan()
  /// already memoizes) is simulated as the serial witness of a
  /// `co_search_workers`-worker schedule under `admission`, and the plan
  /// adopts the traversal minimizing the simulated *parallel* peak
  /// (tie-break: makespan, then candidate order) — the paper's MinMem
  /// machinery steering the parallel regime rather than the serial one.
  /// 0 (default) keeps the serial decision procedure untouched.
  int co_search_workers = 0;
};

struct FactorizeOptions {
  FactorizeEngine engine = FactorizeEngine::kAuto;
  /// Worker threads of the parallel engine; 0 defers to
  /// default_thread_count() (which honors TREEMEM_THREADS).
  int workers = 0;
  /// Dense front kernel (the block_size default is the measured-fastest
  /// 16; see dense/front_kernel.hpp for the bench data).
  KernelConfig kernel;
  /// Ready-task priority of the parallel engine's scheduler.
  ParallelPriority priority = ParallelPriority::kCriticalPath;
  /// How the parallel engine admits fronts against the plan's budget. The
  /// planned traversal serves as the serial witness, so kLookahead and
  /// kReservation can never stall (the plan guarantees the witness fits
  /// the budget) and the factor stays bit-identical across policies.
  AdmissionPolicy admission = AdmissionPolicy::kGreedy;
  /// A tight budget can stall the parallel engine's greedy schedule
  /// (started subtrees strand resident files; the non-greedy policies are
  /// stall-free by construction). When true, such a stall falls back to
  /// the serial engine along the planned traversal — which the plan
  /// guarantees feasible — and produces the identical factor (bit-exact
  /// across engines). When false, a stall throws, so benches can observe
  /// and report it.
  bool allow_serial_fallback = true;
  /// Elastic crewing of the parallel engine (see
  /// ParallelFactorOptions::lease_idle_workers): tree-level workers idle
  /// at the schedule frontier return to the persistent pool, where a
  /// large root front's trailing-update lease absorbs them. The factor is
  /// bit-identical either way; off reproduces the pre-pool held-crew
  /// behavior (the scaling sweep's comparison configuration).
  bool lease_idle_workers = true;
};

/// The one configuration aggregate: one member per phase. Construct a
/// Solver from it (or pass per-phase options to each call) instead of
/// threading KernelConfig / ParallelFactorOptions / env lookups by hand.
struct SolverOptions {
  AnalyzeOptions analyze;
  PlanOptions plan;
  FactorizeOptions factorize;
};

/// Thrown by factorize() when the parallel engine's greedy schedule
/// stalls under the memory budget and allow_serial_fallback is off —
/// typed so benches can chart the stall without string-matching the
/// message.
class SolverStallError : public Error {
 public:
  using Error::Error;
};

/// `base` with every TREEMEM_* override applied, through the strict
/// support/env.hpp parsers (malformed values throw):
///   TREEMEM_ORDERING  = natural | rcm | mindeg | nd
///   TREEMEM_TRAVERSAL = auto | postorder | liu | minmem
///   TREEMEM_BUDGET    = <positive entries>        (plan memory budget)
///   TREEMEM_WORKERS   = <positive thread count>   (tree-level workers)
///   TREEMEM_ADMISSION = greedy | lookahead | reservation
///                       (applied to plan *and* factorize admission)
///   TREEMEM_KERNEL    = scalar|blocked|parallel[:<block size>]
/// (TREEMEM_THREADS keeps steering intra-front workers and the
/// workers == 0 default — now resolved exactly once, when the process-wide
/// WorkerPool is constructed; TREEMEM_AFFINITY=1 pins pool workers to
/// cores, read once at pool construction too.)
SolverOptions solver_options_from_env(SolverOptions base = {});

/// Everything the run reported: modeled vs measured memory, flops, fill,
/// and per-phase wall time. Cumulative counters (factorizations, solves)
/// reset on analyze(); per-run fields describe the latest call.
struct SolverStats {
  // analyze
  Index n = 0;                       ///< matrix dimension
  std::int64_t pattern_nnz = 0;      ///< nnz of the (symmetric) pattern
  std::int64_t factor_nnz = 0;       ///< nnz(L) incl. diagonal — the fill
  NodeId tree_nodes = 0;             ///< assembly-tree supernodes
  std::string ordering;              ///< ordering actually applied
  double analyze_seconds = 0.0;

  // plan
  std::string strategy;              ///< e.g. "postorder/in-core"
  Weight memory_budget = kInfiniteWeight;
  Weight planned_peak_entries = 0;   ///< modeled Eq. 1 peak of the plan
  Weight in_core_optimum = 0;        ///< MinMem optimum (workspace floor)
  Weight best_postorder_peak = 0;    ///< what a postorder-only code needs
  Weight planned_io_volume = 0;      ///< entries written out-of-core (0 in-core)
  /// Simulated parallel peak of the co-searched schedule (0 when the
  /// co-search was off or found no feasible schedule).
  Weight planned_parallel_peak = 0;
  double plan_seconds = 0.0;

  // factorize (latest run; factorizations counts since analyze)
  std::string engine;                ///< "serial" | "parallel" | "out-of-core"
  std::string kernel;                ///< dense kernel name
  std::string admission;             ///< admission policy of parallel runs
  int workers = 0;
  long long flops = 0;
  Weight measured_peak_entries = 0;  ///< engine-metered live entries
  /// Modeled Eq. 1 peak governing the run: the executor's accounting on
  /// parallel runs, the planned traversal's peak on serial runs. Always
  /// >= measured_peak_entries and <= memory_budget.
  Weight modeled_peak_entries = 0;
  double factorize_seconds = 0.0;
  int factorizations = 0;
  /// Parallel runs only: sum of per-front busy seconds / makespan.
  double parallel_speedup = 0.0;
  /// True when a stalled parallel schedule fell back to the serial engine.
  bool stall_fallback = false;
  /// Parallel runs with the parallel-tiled kernel: trailing-update panels
  /// that cleared the volume gate and leased pool workers / found none
  /// idle and ran inline. Makes the volume gate's cost observable — a
  /// high denial rate means the tree level never leaves workers idle and
  /// intra-front parallelism is not paying. Cumulative since analyze(),
  /// like factorizations.
  long long leases_granted = 0;
  long long lease_denied = 0;

  // solve (cumulative since analyze)
  int rhs_solved = 0;
  double solve_seconds = 0.0;
};

/// Immutable product of analyze(): the ordering, the permuted pattern, the
/// amalgamated assembly tree and the value gather map — everything the
/// numeric phases read — plus the reporting fields describing how (and
/// how fast) it was built. Built once, then only ever read: safe to share
/// across Solver instances and threads via shared_ptr<const>.
struct SolverAnalysis {
  AnalyzeOptions options;          ///< what built it
  SparsePattern pattern;           ///< analyzed pattern, original ordering
  std::vector<Index> perm;         ///< elimination order (original indices)
  SparsePattern permuted_pattern;  ///< P A Pᵀ — what assembly was built on
  AssemblyTree assembly;
  /// Gather map for repeated factorizations: permuted value at offset o is
  /// the original value at permuted_value_map[o], so factorize() permutes
  /// values with one linear pass instead of a symbolic permutation per
  /// value set.
  std::vector<std::size_t> permuted_value_map;

  // Reporting snapshot (the analyze-phase SolverStats fields).
  std::int64_t factor_nnz = 0;
  std::string ordering_name;
  double analyze_seconds = 0.0;
};

/// Immutable product of plan(): the bottom-up traversal (and, for
/// out-of-core plans, the eviction schedule) plus the reporting fields.
/// Same sharing contract as SolverAnalysis.
struct SolverPlan {
  PlanOptions options;             ///< what built it
  Traversal bottom_up_order;
  IoSchedule io_schedule;          ///< out-tree order + writes (ooc plans)
  bool out_of_core = false;
  /// The budget factorize() runs under — a plan product, kept separate
  /// from the reporting-only SolverStats copy.
  Weight budget = kInfiniteWeight;

  // Reporting snapshot (the plan-phase SolverStats fields).
  std::string strategy;
  Weight planned_peak_entries = 0;
  Weight in_core_optimum = 0;
  Weight best_postorder_peak = 0;
  Weight planned_io_volume = 0;
  Weight planned_parallel_peak = 0;
  double plan_seconds = 0.0;
};

/// The shareable symbolic state of a planned Solver: one analysis handle +
/// one plan handle. This is the unit the SymbolicCache stores per sparsity
/// pattern and any number of tenant Solvers adopt().
struct SolverSymbolic {
  std::shared_ptr<const SolverAnalysis> analysis;
  std::shared_ptr<const SolverPlan> plan;

  explicit operator bool() const { return analysis != nullptr && plan != nullptr; }
};

class Solver {
 public:
  /// Phase defaults = `options`; per-phase overloads override per call.
  /// The default constructor uses compiled-in defaults only — call
  /// Solver(solver_options_from_env()) to honor the TREEMEM_* overrides.
  Solver() = default;
  explicit Solver(SolverOptions options) : options_(std::move(options)) {}

  // -- Phase 1: symbolic analysis -------------------------------------------
  /// Orders `pattern` (symmetric, full diagonal — apply symmetrize()
  /// first), builds the elimination tree and the amalgamated assembly
  /// tree, and computes the factor's fill. Invalidates any previous plan
  /// and factor. Returns *this for chaining.
  Solver& analyze(const SparsePattern& pattern);
  Solver& analyze(const SparsePattern& pattern, const AnalyzeOptions& options);

  // -- Phase 2: traversal planning ------------------------------------------
  /// Chooses the bottom-up traversal (and, under a tight budget, the MinIO
  /// eviction schedule) for the analyzed tree. Requires analyze();
  /// invalidates any previous factor. Throws when no schedule fits the
  /// budget (below max MemReq, or out-of-core disallowed).
  Solver& plan();
  Solver& plan(const PlanOptions& options);

  // -- Shared symbolic state (the service layer's handle) -------------------
  /// The immutable analysis+plan backing this solver. Valid after plan().
  /// Adopting solvers alias (not copy) the state.
  SolverSymbolic symbolic() const;
  /// Installs shared symbolic state built by another Solver (typically via
  /// SymbolicCache), jumping straight to the planned phase: factorize()
  /// may be called immediately, and the result is bit-identical to a cold
  /// analyze+plan+factorize run with the same options. Invalidates any
  /// previous factor and resets the analyze/plan reporting fields to the
  /// adopted snapshots. Unlike analyze(), the cumulative service counters
  /// (factorizations, rhs_solved, solve_seconds) are preserved — a pooled
  /// solver keeps its lifetime totals as it serves different patterns.
  Solver& adopt(SolverSymbolic symbolic);

  // -- Phase 3: numeric factorization ---------------------------------------
  /// Factors `matrix` (same pattern as analyze(); original, unpermuted
  /// ordering — the facade permutes internally). Requires plan(). May be
  /// called any number of times with different value sets; the symbolic
  /// state and the plan are reused, and each run's factor is bit-identical
  /// to a fresh end-to-end run on the same values.
  Solver& factorize(const SymmetricMatrix& matrix);
  Solver& factorize(const SymmetricMatrix& matrix,
                    const FactorizeOptions& options);
  /// Convenience for repeated value sets: `values` aligned with the
  /// analyzed pattern's row_idx() (symmetry validated).
  Solver& factorize(std::vector<double> values);
  Solver& factorize(std::vector<double> values,
                    const FactorizeOptions& options);

  // -- Phase 4: triangular solves -------------------------------------------
  /// Solves A x = b in the *original* ordering (permutation applied and
  /// undone internally). Requires factorize(). Thread-safe: concurrent
  /// solves against one factorized Solver are supported (the factor is
  /// read-only and the cumulative counters are atomic).
  std::vector<double> solve(std::vector<double> rhs) const;
  /// Multi-RHS: one forward/backward sweep per column, columns independent.
  /// Counts one rhs_solved per column, not per call.
  std::vector<std::vector<double>> solve(
      const std::vector<std::vector<double>>& rhs) const;

  // -- Introspection --------------------------------------------------------
  bool analyzed() const { return phase_ >= Phase::kAnalyzed; }
  bool planned() const { return phase_ >= Phase::kPlanned; }
  bool factorized() const { return phase_ == Phase::kFactorized; }

  /// Snapshot of the run statistics. Returned by value so concurrent
  /// solve() counter updates can stay race-free.
  SolverStats stats() const;
  const SolverOptions& options() const { return options_; }

  /// The fill-reducing permutation (perm[k] = original column eliminated
  /// k-th) and the assembly tree it induced. Valid after analyze().
  const std::vector<Index>& permutation() const;
  const AssemblyTree& assembly() const;

  /// The planned bottom-up traversal (leaves before roots) and, for
  /// out-of-core plans, the eviction schedule. Valid after plan().
  const Traversal& planned_traversal() const;
  const IoSchedule& planned_io_schedule() const;

  /// The factor of P A Pᵀ (permuted ordering). Valid after factorize().
  const CholeskyFactor& factor() const;

  // -- Shared numeric state (the factor cache's handle) ---------------------
  /// The immutable factor backing this solver, shareable the same way the
  /// symbolic state is: the NumericCache stores this handle per (pattern,
  /// values) key and other solvers adopt_factor() it. Valid after
  /// factorize().
  std::shared_ptr<const CholeskyFactor> shared_factor() const;
  /// Installs a factor computed elsewhere for this solver's symbolic
  /// state, jumping straight to the factorized phase — solve() may be
  /// called immediately, skipping factorize() entirely (the numeric-cache
  /// fast path). Requires plan() (or adopt()); the factor must belong to
  /// the adopted pattern — the cache guarantees that by keying on the
  /// (pattern, values) fingerprints and verifying the defining values.
  /// Reports engine "cached" and does not count a factorization.
  Solver& adopt_factor(std::shared_ptr<const CholeskyFactor> factor);

 private:
  enum class Phase { kCreated, kAnalyzed, kPlanned, kFactorized };

  void require_phase(Phase at_least, const char* verb,
                     const char* prerequisite) const;
  SymmetricMatrix permute_values(const std::vector<double>& values) const;
  Solver& factorize_permuted(const SymmetricMatrix& permuted,
                             const FactorizeOptions& options);

  /// Cumulative solve accounting. Atomic because solve() is const and may
  /// run concurrently on a shared Solver; copy/move load the counters so
  /// Solver keeps value semantics (moving a solver mid-solve is already
  /// outside the thread-safety contract).
  struct SolveCounters {
    std::atomic<int> rhs{0};
    std::atomic<long long> nanos{0};

    SolveCounters() = default;
    SolveCounters(const SolveCounters& other)
        : rhs(other.rhs.load()), nanos(other.nanos.load()) {}
    SolveCounters(SolveCounters&& other) noexcept
        : rhs(other.rhs.load()), nanos(other.nanos.load()) {}
    SolveCounters& operator=(const SolveCounters& other) {
      rhs = other.rhs.load();
      nanos = other.nanos.load();
      return *this;
    }
    SolveCounters& operator=(SolveCounters&& other) noexcept {
      rhs = other.rhs.load();
      nanos = other.nanos.load();
      return *this;
    }
    void reset() {
      rhs = 0;
      nanos = 0;
    }
  };

  SolverOptions options_;
  Phase phase_ = Phase::kCreated;

  // The shared immutable phase products (see SolverAnalysis/SolverPlan).
  std::shared_ptr<const SolverAnalysis> analysis_;
  std::shared_ptr<const SolverPlan> plan_;

  // Traversal results depend only on the analyzed tree; memoized so
  // re-planning (the bench's budget sweeps) does not redo the searches.
  // Per-solver (not part of the shared state): only plan() touches them.
  const TraversalResult& cached_postorder() const;
  const TraversalResult& cached_liu() const;
  const MinMemResult& cached_minmem() const;
  mutable std::optional<TraversalResult> postorder_cache_;
  mutable std::optional<TraversalResult> liu_cache_;
  mutable std::optional<MinMemResult> minmem_cache_;

  // factorize() products. Behind shared_ptr<const> so the numeric-factor
  // cache (solver/numeric_cache.hpp) can keep a factor alive after this
  // solver moves on — same sharing contract as the symbolic state.
  std::shared_ptr<const CholeskyFactor> factor_;

  SolverStats stats_;
  mutable SolveCounters solve_counters_;
};

}  // namespace treemem
