#include "solver/symbolic_cache.hpp"

#include <utility>

namespace treemem {

namespace {

inline void fnv_mix(std::uint64_t& h, std::uint64_t value) {
  // FNV-1a over the value's 8 bytes (little-endian order is irrelevant to
  // stability here: we always feed native integers the same way).
  for (int shift = 0; shift < 64; shift += 8) {
    h ^= (value >> shift) & 0xffULL;
    h *= 0x100000001b3ULL;
  }
}

bool same_pattern(const SparsePattern& a, const SparsePattern& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         a.col_ptr() == b.col_ptr() && a.row_idx() == b.row_idx();
}

}  // namespace

std::uint64_t pattern_fingerprint(const SparsePattern& pattern) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  fnv_mix(h, static_cast<std::uint64_t>(pattern.rows()));
  fnv_mix(h, static_cast<std::uint64_t>(pattern.cols()));
  for (const auto p : pattern.col_ptr()) {
    fnv_mix(h, static_cast<std::uint64_t>(p));
  }
  for (const auto r : pattern.row_idx()) {
    fnv_mix(h, static_cast<std::uint64_t>(r));
  }
  return h;
}

SymbolicCache::LookupResult SymbolicCache::lookup(
    const SparsePattern& pattern) {
  const std::uint64_t key = pattern_fingerprint(pattern);

  // Find-or-create the entry under the map lock (cheap: no symbolic work
  // happens here, so distinct patterns never wait on each other's builds).
  std::shared_ptr<Entry> entry;
  bool created = false;
  {
    std::lock_guard<std::mutex> lock(map_mutex_);
    std::vector<std::shared_ptr<Entry>>& bucket = entries_[key];
    for (const std::shared_ptr<Entry>& candidate : bucket) {
      if (same_pattern(candidate->pattern, pattern)) {
        entry = candidate;
        break;
      }
    }
    if (!entry) {
      entry = std::make_shared<Entry>();
      entry->pattern = pattern;
      bucket.push_back(entry);
      ++entry_count_;
      created = true;
    }
  }
  (created ? misses_ : hits_).fetch_add(1, std::memory_order_relaxed);

  // Build (or wait for the builder) under the entry's own mutex. A failed
  // build leaves `symbolic` empty, so the next lookup simply retries —
  // the cache is never poisoned by a throwing analyze/plan.
  std::lock_guard<std::mutex> lock(entry->build_mutex);
  if (!entry->symbolic) {
    Solver builder;
    builder.analyze(entry->pattern, options_.analyze).plan(options_.plan);
    entry->symbolic = builder.symbolic();
  }
  return LookupResult{entry->symbolic, !created};
}

Solver SymbolicCache::acquire(const SparsePattern& pattern,
                              const FactorizeOptions& factorize) {
  Solver solver(SolverOptions{options_.analyze, options_.plan, factorize});
  solver.adopt(lookup(pattern).symbolic);
  return solver;
}

SymbolicCache::Stats SymbolicCache::stats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(map_mutex_);
    stats.entries = entry_count_;
  }
  return stats;
}

void SymbolicCache::clear() {
  std::lock_guard<std::mutex> lock(map_mutex_);
  entries_.clear();
  entry_count_ = 0;
}

}  // namespace treemem
