#include "solver/symbolic_cache.hpp"

#include <algorithm>
#include <utility>

#include "obs/trace.hpp"

namespace treemem {

namespace {

inline void fnv_mix(std::uint64_t& h, std::uint64_t value) {
  // FNV-1a over the value's 8 bytes (little-endian order is irrelevant to
  // stability here: we always feed native integers the same way).
  for (int shift = 0; shift < 64; shift += 8) {
    h ^= (value >> shift) & 0xffULL;
    h *= 0x100000001b3ULL;
  }
}

bool same_pattern(const SparsePattern& a, const SparsePattern& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         a.col_ptr() == b.col_ptr() && a.row_idx() == b.row_idx();
}

std::size_t pattern_bytes(const SparsePattern& pattern) {
  return pattern.col_ptr().size() * sizeof(std::int64_t) +
         pattern.row_idx().size() * sizeof(Index);
}

}  // namespace

std::uint64_t pattern_fingerprint(const SparsePattern& pattern) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  fnv_mix(h, static_cast<std::uint64_t>(pattern.rows()));
  fnv_mix(h, static_cast<std::uint64_t>(pattern.cols()));
  for (const auto p : pattern.col_ptr()) {
    fnv_mix(h, static_cast<std::uint64_t>(p));
  }
  for (const auto r : pattern.row_idx()) {
    fnv_mix(h, static_cast<std::uint64_t>(r));
  }
  return h;
}

std::size_t approx_symbolic_bytes(const SolverSymbolic& symbolic) {
  if (!symbolic) {
    return 0;
  }
  const SolverAnalysis& a = *symbolic.analysis;
  const SolverPlan& p = *symbolic.plan;
  std::size_t bytes = sizeof(SolverAnalysis) + sizeof(SolverPlan);
  bytes += pattern_bytes(a.pattern) + pattern_bytes(a.permuted_pattern);
  bytes += a.perm.size() * sizeof(Index);
  bytes += a.permuted_value_map.size() * sizeof(std::size_t);
  const Tree& tree = a.assembly.tree;
  bytes += static_cast<std::size_t>(tree.size()) *
           (sizeof(NodeId) * 3 + sizeof(Weight) * 3);  // parent/child/bfs,
                                                       // file/work/child-sum
  bytes += a.assembly.supernode_of.size() * sizeof(NodeId);
  bytes += (a.assembly.eta.size() + a.assembly.mu.size()) * sizeof(Index);
  bytes += p.bottom_up_order.size() * sizeof(NodeId);
  bytes += p.io_schedule.order.size() * sizeof(NodeId);
  bytes += p.io_schedule.writes.size() * sizeof(IoWrite);
  return bytes;
}

void SymbolicCache::evict_lru_locked() {
  std::shared_ptr<Entry> victim = lru_.back();
  lru_.pop_back();
  std::vector<std::shared_ptr<Entry>>& bucket = entries_[victim->key];
  bucket.erase(std::find(bucket.begin(), bucket.end(), victim));
  if (bucket.empty()) {
    entries_.erase(victim->key);
  }
  victim->in_map = false;
  if (victim->charged) {
    resident_bytes_ -= victim->bytes;
  }
  --entry_count_;
  evictions_.fetch_add(1, std::memory_order_relaxed);
  obs::TraceRecorder& recorder = obs::TraceRecorder::instance();
  if (recorder.enabled()) {
    recorder.instant("symbolic_evict", "cache", obs::TraceRecorder::kNoLane,
                     "entries", static_cast<long long>(entry_count_));
  }
}

void SymbolicCache::enforce_caps_locked() {
  while (!lru_.empty() &&
         ((options_.max_entries > 0 && entry_count_ > options_.max_entries) ||
          (options_.max_bytes > 0 && resident_bytes_ > options_.max_bytes))) {
    evict_lru_locked();
  }
}

std::shared_ptr<SymbolicCache::Entry> SymbolicCache::find_or_create(
    const SparsePattern& pattern) {
  const std::uint64_t key = pattern_fingerprint(pattern);
  std::lock_guard<std::mutex> lock(map_mutex_);
  std::vector<std::shared_ptr<Entry>>& bucket = entries_[key];
  for (const std::shared_ptr<Entry>& candidate : bucket) {
    if (same_pattern(candidate->pattern, pattern)) {
      lru_.splice(lru_.begin(), lru_, candidate->lru_pos);  // touch
      return candidate;
    }
  }
  auto entry = std::make_shared<Entry>();
  entry->pattern = pattern;
  entry->key = key;
  bucket.push_back(entry);
  lru_.push_front(entry);
  entry->lru_pos = lru_.begin();
  ++entry_count_;
  // Enforce at insertion so the entry count never exceeds the cap, not
  // even while this entry's build is still in flight.
  enforce_caps_locked();
  return entry;
}

void SymbolicCache::charge_entry(const std::shared_ptr<Entry>& entry,
                                 std::size_t bytes) {
  std::lock_guard<std::mutex> lock(map_mutex_);
  if (!entry->in_map || entry->charged) {
    return;  // evicted while building, or another thread charged it
  }
  entry->charged = true;
  entry->bytes = bytes;
  resident_bytes_ += bytes;
  enforce_caps_locked();
}

SymbolicCache::LookupResult SymbolicCache::lookup(
    const SparsePattern& pattern) {
  std::shared_ptr<Entry> entry = find_or_create(pattern);

  // Build (or wait for the builder) under the entry's own mutex. A failed
  // build leaves `symbolic` empty, so the next lookup simply retries —
  // the cache is never poisoned by a throwing analyze/plan. Hit/miss is
  // decided HERE, by whether a build actually runs: an entry whose first
  // build threw is a miss again on retry (it rebuilds), never a hit.
  std::unique_lock<std::mutex> lock(entry->build_mutex);
  const bool need_build = !entry->symbolic;
  (need_build ? misses_ : hits_).fetch_add(1, std::memory_order_relaxed);
  obs::TraceRecorder& recorder = obs::TraceRecorder::instance();
  if (recorder.enabled()) {
    recorder.instant(need_build ? "symbolic_miss" : "symbolic_hit", "cache");
  }
  if (need_build) {
    Solver builder;
    builder.analyze(entry->pattern, options_.analyze).plan(options_.plan);
    entry->symbolic = builder.symbolic();
  }
  LookupResult result{entry->symbolic, !need_build};
  lock.unlock();
  if (need_build) {
    charge_entry(entry, approx_symbolic_bytes(result.symbolic));
  }
  return result;
}

bool SymbolicCache::insert(SolverSymbolic symbolic) {
  TM_CHECK(static_cast<bool>(symbolic),
           "SymbolicCache::insert: symbolic state must carry both an "
           "analysis and a plan");
  std::shared_ptr<Entry> entry = find_or_create(symbolic.analysis->pattern);
  std::size_t bytes = 0;
  {
    std::lock_guard<std::mutex> lock(entry->build_mutex);
    if (entry->symbolic) {
      return false;  // already built (first state wins)
    }
    entry->symbolic = std::move(symbolic);
    bytes = approx_symbolic_bytes(entry->symbolic);
  }
  charge_entry(entry, bytes);
  return true;
}

std::vector<SolverSymbolic> SymbolicCache::snapshot() const {
  // Collect the entries under the map lock, then read each `symbolic`
  // under its own build lock (never both at once — same discipline as
  // lookup(), so snapshotting cannot deadlock against builders).
  std::vector<std::shared_ptr<Entry>> entries;
  {
    std::lock_guard<std::mutex> lock(map_mutex_);
    entries.reserve(entry_count_);
    for (const std::shared_ptr<Entry>& entry : lru_) {
      entries.push_back(entry);
    }
  }
  std::vector<SolverSymbolic> result;
  result.reserve(entries.size());
  for (const std::shared_ptr<Entry>& entry : entries) {
    std::lock_guard<std::mutex> lock(entry->build_mutex);
    if (entry->symbolic) {
      result.push_back(entry->symbolic);
    }
  }
  return result;
}

Solver SymbolicCache::acquire(const SparsePattern& pattern,
                              const FactorizeOptions& factorize) {
  Solver solver(SolverOptions{options_.analyze, options_.plan, factorize});
  solver.adopt(lookup(pattern).symbolic);
  return solver;
}

SymbolicCache::Stats SymbolicCache::stats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(map_mutex_);
    stats.entries = entry_count_;
    stats.resident_bytes = resident_bytes_;
  }
  return stats;
}

void SymbolicCache::clear() {
  std::lock_guard<std::mutex> lock(map_mutex_);
  for (const std::shared_ptr<Entry>& entry : lru_) {
    entry->in_map = false;
  }
  entries_.clear();
  lru_.clear();
  entry_count_ = 0;
  resident_bytes_ = 0;
  // One epoch per clear(): post-clear hit rates must not mix with the
  // pre-clear counters (the satellite bugfix this PR pins with a test).
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

}  // namespace treemem
