#include "solver/numeric_cache.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "obs/trace.hpp"
#include "support/check.hpp"

namespace treemem {

std::uint64_t value_fingerprint(const std::vector<double>& values) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (const double value : values) {
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (bits >> shift) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

std::uint64_t NumericCache::bucket_key(std::uint64_t pattern_key,
                                       std::uint64_t value_key) {
  // Mix rather than xor so (a, b) and (b, a) land in different buckets.
  return pattern_key * 0x9e3779b97f4a7c15ULL + value_key;
}

Weight NumericCache::evict_lru_locked() {
  std::shared_ptr<Entry> victim = lru_.back();
  lru_.pop_back();
  const std::uint64_t key =
      bucket_key(victim->pattern_key, victim->value_key);
  std::vector<std::shared_ptr<Entry>>& bucket = entries_[key];
  bucket.erase(std::find(bucket.begin(), bucket.end(), victim));
  if (bucket.empty()) {
    entries_.erase(key);
  }
  --entry_count_;
  resident_charge_ -= victim->charge;
  evictions_.fetch_add(1, std::memory_order_relaxed);
  obs::TraceRecorder& recorder = obs::TraceRecorder::instance();
  if (recorder.enabled()) {
    recorder.instant("factor_evict", "cache", obs::TraceRecorder::kNoLane,
                     "freed_charge", static_cast<long long>(victim->charge));
  }
  return victim->charge;
}

std::shared_ptr<const CholeskyFactor> NumericCache::lookup(
    std::uint64_t pattern_key, const std::vector<double>& values) {
  if (!enabled()) {
    return nullptr;
  }
  const std::uint64_t value_key = value_fingerprint(values);
  const std::uint64_t key = bucket_key(pattern_key, value_key);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto bucket = entries_.find(key);
  if (bucket != entries_.end()) {
    for (const std::shared_ptr<Entry>& entry : bucket->second) {
      if (entry->pattern_key == pattern_key &&
          entry->value_key == value_key && entry->values == values) {
        lru_.splice(lru_.begin(), lru_, entry->lru_pos);  // touch
        hits_.fetch_add(1, std::memory_order_relaxed);
        obs::TraceRecorder& recorder = obs::TraceRecorder::instance();
        if (recorder.enabled()) {
          recorder.instant("factor_hit", "cache");
        }
        return entry->factor;
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  obs::TraceRecorder& recorder = obs::TraceRecorder::instance();
  if (recorder.enabled()) {
    recorder.instant("factor_miss", "cache");
  }
  return nullptr;
}

bool NumericCache::insert(std::uint64_t pattern_key,
                          std::vector<double> values,
                          std::shared_ptr<const CholeskyFactor> factor,
                          Weight charge) {
  TM_CHECK(factor != nullptr, "NumericCache::insert: factor must be non-null");
  TM_CHECK(charge >= 0, "NumericCache::insert: charge must be >= 0");
  if (!enabled()) {
    return false;
  }
  const std::uint64_t value_key = value_fingerprint(values);
  const std::uint64_t key = bucket_key(pattern_key, value_key);
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<Entry>>& bucket = entries_[key];
  for (const std::shared_ptr<Entry>& entry : bucket) {
    if (entry->pattern_key == pattern_key && entry->value_key == value_key &&
        entry->values == values) {
      return false;  // already cached (first factor wins; they are equal)
    }
  }
  auto entry = std::make_shared<Entry>();
  entry->pattern_key = pattern_key;
  entry->value_key = value_key;
  entry->values = std::move(values);
  entry->factor = std::move(factor);
  entry->charge = charge;
  bucket.push_back(entry);
  lru_.push_front(entry);
  entry->lru_pos = lru_.begin();
  ++entry_count_;
  resident_charge_ += charge;
  while (entry_count_ > options_.max_entries) {
    freed_charge_ += evict_lru_locked();
  }
  return true;
}

Weight NumericCache::evict_lru() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (lru_.empty()) {
    return 0;
  }
  return evict_lru_locked();
}

Weight NumericCache::take_freed_charge() {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::exchange(freed_charge_, 0);
}

Weight NumericCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  Weight freed = resident_charge_ + freed_charge_;
  entries_.clear();
  lru_.clear();
  entry_count_ = 0;
  resident_charge_ = 0;
  freed_charge_ = 0;
  return freed;
}

NumericCache::Stats NumericCache::stats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.entries = entry_count_;
    stats.resident_charge = resident_charge_;
  }
  return stats;
}

}  // namespace treemem
