#include "parallel/schedule_core.hpp"

#include <algorithm>

#include "core/postorder.hpp"

namespace treemem {

const char* to_string(ParallelPriority priority) {
  switch (priority) {
    case ParallelPriority::kCriticalPath:
      return "critical-path";
    case ParallelPriority::kPostorder:
      return "postorder";
    case ParallelPriority::kSmallestWork:
      return "smallest-work";
  }
  return "?";
}

std::vector<double> default_task_durations(const Tree& tree) {
  std::vector<double> durations(static_cast<std::size_t>(tree.size()));
  for (NodeId i = 0; i < tree.size(); ++i) {
    durations[static_cast<std::size_t>(i)] = static_cast<double>(
        std::max<Weight>(1, tree.work_size(i) + tree.file_size(i)));
  }
  return durations;
}

std::vector<double> compute_priority_ranks(
    const Tree& tree, ParallelPriority priority,
    const std::vector<double>& durations) {
  const auto p = static_cast<std::size_t>(tree.size());
  TM_CHECK(durations.size() == p, "durations size mismatch");
  std::vector<double> rank(p, 0.0);
  switch (priority) {
    case ParallelPriority::kCriticalPath: {
      // Bottom level: duration of the path from the node to the root.
      for (const NodeId u : tree.top_down_order()) {
        rank[static_cast<std::size_t>(u)] =
            durations[static_cast<std::size_t>(u)] +
            (u == tree.root()
                 ? 0.0
                 : rank[static_cast<std::size_t>(tree.parent(u))]);
      }
      break;
    }
    case ParallelPriority::kPostorder: {
      // Earlier in the (bottom-up) best postorder = higher priority.
      const Traversal po = reverse_traversal(best_postorder(tree).order);
      for (std::size_t t = 0; t < po.size(); ++t) {
        rank[static_cast<std::size_t>(po[t])] = static_cast<double>(p - t);
      }
      break;
    }
    case ParallelPriority::kSmallestWork: {
      for (std::size_t i = 0; i < p; ++i) {
        rank[i] = -durations[i];
      }
      break;
    }
  }
  return rank;
}

bool MemoryAccountant::try_acquire(Weight delta) {
  Weight observed = current_.load(std::memory_order_relaxed);
  while (true) {
    if (budget_ < kInfiniteWeight && observed + delta > budget_) {
      return false;
    }
    if (current_.compare_exchange_weak(observed, observed + delta,
                                       std::memory_order_relaxed)) {
      raise_peak(observed + delta);
      return true;
    }
  }
}

void MemoryAccountant::raise_peak(Weight observed) {
  Weight peak = peak_.load(std::memory_order_relaxed);
  while (observed > peak &&
         !peak_.compare_exchange_weak(peak, observed,
                                      std::memory_order_relaxed)) {
  }
}

ScheduleCore::ScheduleCore(const Tree& tree, ParallelPriority priority,
                           Weight memory_budget,
                           const std::vector<double>& durations)
    : tree_(&tree),
      rank_(compute_priority_ranks(tree, priority, durations)),
      missing_children_(static_cast<std::size_t>(tree.size())),
      memory_(memory_budget) {
  for (NodeId i = 0; i < tree.size(); ++i) {
    missing_children_[static_cast<std::size_t>(i)] = tree.num_children(i);
    if (tree.is_leaf(i)) {
      ready_.push_back(i);
    }
  }
  std::sort(ready_.begin(), ready_.end(),
            [this](NodeId a, NodeId b) { return before(a, b); });
}

bool ScheduleCore::all_tasks_fit() const {
  if (memory_.budget() >= kInfiniteWeight) {
    return true;
  }
  for (NodeId i = 0; i < tree_->size(); ++i) {
    if (transient(i) > memory_.budget()) {
      return false;
    }
  }
  return true;
}

NodeId ScheduleCore::try_start() {
  for (std::size_t k = 0; k < ready_.size(); ++k) {
    const NodeId i = ready_[k];
    // Starting i converts its children files from resident storage into
    // part of its transient; the admission delta is n_i + f_i.
    const Weight delta = tree_->work_size(i) + tree_->file_size(i);
    if (!memory_.try_acquire(delta)) {
      continue;  // does not fit now; try a lower-priority ready task
    }
    ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(k));
    return i;
  }
  return kNoNode;
}

void ScheduleCore::finish(NodeId i) {
  // Free the transient, keep the output file resident.
  memory_.adjust(tree_->file_size(i) - transient(i));
  ++finished_;
  const NodeId parent = tree_->parent(i);
  if (parent != kNoNode &&
      --missing_children_[static_cast<std::size_t>(parent)] == 0) {
    ready_.insert(
        std::upper_bound(ready_.begin(), ready_.end(), parent,
                         [this](NodeId a, NodeId b) { return before(a, b); }),
        parent);
  }
}

}  // namespace treemem
