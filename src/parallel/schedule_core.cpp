#include "parallel/schedule_core.hpp"

#include <algorithm>
#include <utility>

#include "core/check.hpp"
#include "core/minmem.hpp"
#include "core/postorder.hpp"
#include "support/env.hpp"

namespace treemem {

const char* to_string(ParallelPriority priority) {
  switch (priority) {
    case ParallelPriority::kCriticalPath:
      return "critical-path";
    case ParallelPriority::kPostorder:
      return "postorder";
    case ParallelPriority::kSmallestWork:
      return "smallest-work";
  }
  return "?";
}

const char* to_string(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kGreedy:
      return "greedy";
    case AdmissionPolicy::kLookahead:
      return "lookahead";
    case AdmissionPolicy::kReservation:
      return "reservation";
  }
  return "?";
}

std::optional<AdmissionPolicy> admission_policy_from_env() {
  const auto index =
      env_choice("TREEMEM_ADMISSION", {"greedy", "lookahead", "reservation"});
  if (!index) {
    return std::nullopt;
  }
  return static_cast<AdmissionPolicy>(*index);
}

std::vector<double> default_task_durations(const Tree& tree) {
  std::vector<double> durations(static_cast<std::size_t>(tree.size()));
  for (NodeId i = 0; i < tree.size(); ++i) {
    durations[static_cast<std::size_t>(i)] = static_cast<double>(
        std::max<Weight>(1, tree.work_size(i) + tree.file_size(i)));
  }
  return durations;
}

std::vector<double> compute_priority_ranks(
    const Tree& tree, ParallelPriority priority,
    const std::vector<double>& durations) {
  const auto p = static_cast<std::size_t>(tree.size());
  TM_CHECK(durations.size() == p, "durations size mismatch");
  std::vector<double> rank(p, 0.0);
  switch (priority) {
    case ParallelPriority::kCriticalPath: {
      // Bottom level: duration of the path from the node to the root.
      for (const NodeId u : tree.top_down_order()) {
        rank[static_cast<std::size_t>(u)] =
            durations[static_cast<std::size_t>(u)] +
            (u == tree.root()
                 ? 0.0
                 : rank[static_cast<std::size_t>(tree.parent(u))]);
      }
      break;
    }
    case ParallelPriority::kPostorder: {
      // Earlier in the (bottom-up) best postorder = higher priority.
      const Traversal po = reverse_traversal(best_postorder(tree).order);
      for (std::size_t t = 0; t < po.size(); ++t) {
        rank[static_cast<std::size_t>(po[t])] = static_cast<double>(p - t);
      }
      break;
    }
    case ParallelPriority::kSmallestWork: {
      for (std::size_t i = 0; i < p; ++i) {
        rank[i] = -durations[i];
      }
      break;
    }
  }
  return rank;
}

bool MemoryAccountant::try_acquire(Weight delta) {
  Weight observed = current_.load(std::memory_order_relaxed);
  while (true) {
    if (budget_ < kInfiniteWeight && observed + delta > budget_) {
      return false;
    }
    if (current_.compare_exchange_weak(observed, observed + delta,
                                       std::memory_order_relaxed)) {
      raise_peak(observed + delta);
      return true;
    }
  }
}

void MemoryAccountant::raise_peak(Weight observed) {
  Weight peak = peak_.load(std::memory_order_relaxed);
  while (observed > peak &&
         !peak_.compare_exchange_weak(peak, observed,
                                      std::memory_order_relaxed)) {
  }
}

ScheduleCore::ScheduleCore(const Tree& tree, ParallelPriority priority,
                           Weight memory_budget,
                           const std::vector<double>& durations,
                           AdmissionPolicy admission, Traversal serial_witness)
    : tree_(&tree),
      admission_(admission),
      rank_(compute_priority_ranks(tree, priority, durations)),
      missing_children_(static_cast<std::size_t>(tree.size())),
      memory_(memory_budget) {
  for (NodeId i = 0; i < tree.size(); ++i) {
    missing_children_[static_cast<std::size_t>(i)] = tree.num_children(i);
    if (tree.is_leaf(i)) {
      ready_.push_back(i);
    }
  }
  std::sort(ready_.begin(), ready_.end(),
            [this](NodeId a, NodeId b) { return before(a, b); });

  // With an infinite budget every admission test is vacuously true; skip the
  // witness machinery entirely so the front-ends pay nothing for the
  // default uncapped runs.
  if (memory_budget >= kInfiniteWeight || tree.size() == 0) {
    admission_ = AdmissionPolicy::kGreedy;
  }
  if (admission_ == AdmissionPolicy::kGreedy) {
    return;
  }
  witness_ = serial_witness.empty()
                 ? reverse_traversal(minmem_optimal(tree).order)
                 : std::move(serial_witness);
  // Validates the witness structurally (bottom-up permutation) and yields
  // its serial Eq. 1 peak — the budget floor below which no admission
  // policy can promise progress.
  witness_peak_ = in_tree_traversal_peak(tree, witness_);
  const auto p = static_cast<std::size_t>(tree.size());
  started_.assign(p, 0);
  finished_flag_.assign(p, 0);
  if (admission_ == AdmissionPolicy::kReservation) {
    spec_running_.assign(p, 0);
    spec_file_charged_.assign(p, 0);
  }
}

bool ScheduleCore::all_tasks_fit() const {
  if (memory_.budget() >= kInfiniteWeight) {
    return true;
  }
  for (NodeId i = 0; i < tree_->size(); ++i) {
    if (transient(i) > memory_.budget()) {
      return false;
    }
  }
  return true;
}

bool ScheduleCore::schedule_feasible() const {
  if (!all_tasks_fit()) {
    return false;
  }
  if (admission_ == AdmissionPolicy::kGreedy) {
    return true;
  }
  return witness_peak_ <= memory_.budget();
}

bool ScheduleCore::lookahead_admits(NodeId candidate, Weight delta) const {
  // Hypothetical occupancy once the candidate has started and every running
  // task (candidate included) has drained to its output file: the resident
  // set the serial continuation below would run on top of.
  Weight mem = memory_.current() + delta + drain_sum_ +
               (tree_->file_size(candidate) - transient(candidate));
  const Weight budget = memory_.budget();
  // Replay the unfinished remainder serially in witness order. Children of
  // each replayed node are resident by then: finished children's files are
  // in memory_.current(), running children's arrive via the drain terms,
  // and unstarted children replay first (the witness is bottom-up). Only
  // starts are gated — between-step residents are not budget-checked,
  // matching the at-dispatch accounting of the real scheduler.
  for (std::size_t k = frontier_; k < witness_.size(); ++k) {
    const NodeId u = witness_[k];
    const auto ui = static_cast<std::size_t>(u);
    if (finished_flag_[ui] || started_[ui] || u == candidate) {
      continue;
    }
    const Weight start_occ =
        mem + tree_->work_size(u) + tree_->file_size(u);
    if (start_occ > budget) {
      return false;
    }
    mem = start_occ - tree_->work_size(u) - tree_->child_file_sum(u);
  }
  return true;
}

bool ScheduleCore::admission_allows(NodeId i, Weight delta) const {
  switch (admission_) {
    case AdmissionPolicy::kGreedy:
      return true;
    case AdmissionPolicy::kLookahead:
      return lookahead_admits(i, delta);
    case AdmissionPolicy::kReservation:
      // The serial lane (the witness frontier's own task) is pre-booked:
      // by the spec_occ_ invariant it always fits, so it is always
      // admitted. Everything else runs speculatively against the slack
      // budget − witness peak.
      return is_serial_lane(i) ||
             spec_occ_ + delta <= memory_.budget() - witness_peak_;
  }
  return true;
}

void ScheduleCore::commit_start(NodeId i, Weight delta) {
  if (admission_ == AdmissionPolicy::kGreedy) {
    return;
  }
  const auto ii = static_cast<std::size_t>(i);
  started_[ii] = 1;
  drain_sum_ += tree_->file_size(i) - transient(i);
  if (admission_ == AdmissionPolicy::kReservation && !is_serial_lane(i)) {
    spec_occ_ += delta;
    spec_running_[ii] = 1;
  }
}

NodeId ScheduleCore::try_start() {
  for (std::size_t k = 0; k < ready_.size(); ++k) {
    const NodeId i = ready_[k];
    // Starting i converts its children files from resident storage into
    // part of its transient; the admission delta is n_i + f_i.
    const Weight delta = tree_->work_size(i) + tree_->file_size(i);
    // The policy check is pure, so a refusal leaves no state to unwind;
    // only then is the budget actually committed.
    if (!admission_allows(i, delta) || !memory_.try_acquire(delta)) {
      continue;  // inadmissible now; try a lower-priority ready task
    }
    commit_start(i, delta);
    ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(k));
    return i;
  }
  return kNoNode;
}

void ScheduleCore::finish(NodeId i) {
  // Free the transient, keep the output file resident.
  memory_.adjust(tree_->file_size(i) - transient(i));
  ++finished_;
  if (admission_ != AdmissionPolicy::kGreedy) {
    const auto ii = static_cast<std::size_t>(i);
    drain_sum_ -= tree_->file_size(i) - transient(i);
    finished_flag_[ii] = 1;
    if (admission_ == AdmissionPolicy::kReservation) {
      if (spec_running_[ii]) {
        // The speculative task drained to its file; keep charging the file
        // until the witness frontier passes it or the parent consumes it.
        spec_occ_ -= tree_->work_size(i);
        spec_running_[ii] = 0;
        spec_file_charged_[ii] = 1;
      }
      // The finished parent absorbed and freed its children files — release
      // any that were still charged to the speculative pool.
      for (const NodeId c : tree_->children(i)) {
        const auto ci = static_cast<std::size_t>(c);
        if (spec_file_charged_[ci]) {
          spec_occ_ -= tree_->file_size(c);
          spec_file_charged_[ci] = 0;
        }
      }
    }
    // Advance the witness frontier past everything finished. A file whose
    // node the frontier passes becomes part of the witness's own resident
    // profile (already accounted in witness_peak_), so its speculative
    // charge is released.
    while (frontier_ < witness_.size()) {
      const auto ui = static_cast<std::size_t>(witness_[frontier_]);
      if (!finished_flag_[ui]) {
        break;
      }
      if (admission_ == AdmissionPolicy::kReservation &&
          spec_file_charged_[ui]) {
        spec_occ_ -= tree_->file_size(witness_[frontier_]);
        spec_file_charged_[ui] = 0;
      }
      ++frontier_;
    }
  }
  const NodeId parent = tree_->parent(i);
  if (parent != kNoNode &&
      --missing_children_[static_cast<std::size_t>(parent)] == 0) {
    ready_.insert(
        std::upper_bound(ready_.begin(), ready_.end(), parent,
                         [this](NodeId a, NodeId b) { return before(a, b); }),
        parent);
  }
}

}  // namespace treemem
