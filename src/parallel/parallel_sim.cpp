#include "parallel/parallel_sim.hpp"

#include <algorithm>
#include <queue>

#include "core/postorder.hpp"

namespace treemem {

const char* to_string(ParallelPriority priority) {
  switch (priority) {
    case ParallelPriority::kCriticalPath:
      return "critical-path";
    case ParallelPriority::kPostorder:
      return "postorder";
    case ParallelPriority::kSmallestWork:
      return "smallest-work";
  }
  return "?";
}

ParallelScheduleResult simulate_parallel_traversal(
    const Tree& tree, const ParallelOptions& options) {
  std::vector<double> durations(static_cast<std::size_t>(tree.size()));
  for (NodeId i = 0; i < tree.size(); ++i) {
    durations[static_cast<std::size_t>(i)] = static_cast<double>(
        std::max<Weight>(1, tree.work_size(i) + tree.file_size(i)));
  }
  return simulate_parallel_traversal(tree, options, durations);
}

ParallelScheduleResult simulate_parallel_traversal(
    const Tree& tree, const ParallelOptions& options,
    const std::vector<double>& durations) {
  const auto p = static_cast<std::size_t>(tree.size());
  TM_CHECK(options.workers >= 1, "need at least one worker");
  TM_CHECK(durations.size() == p, "durations size mismatch");
  for (const double d : durations) {
    TM_CHECK(d > 0.0, "durations must be positive");
  }

  // Priority keys (higher = scheduled first).
  std::vector<double> rank(p, 0.0);
  switch (options.priority) {
    case ParallelPriority::kCriticalPath: {
      // Bottom level: duration of the path from the node to the root.
      const auto& order = tree.top_down_order();
      for (const NodeId u : order) {
        rank[static_cast<std::size_t>(u)] =
            durations[static_cast<std::size_t>(u)] +
            (u == tree.root()
                 ? 0.0
                 : rank[static_cast<std::size_t>(tree.parent(u))]);
      }
      break;
    }
    case ParallelPriority::kPostorder: {
      // Earlier in the (bottom-up) best postorder = higher priority.
      const Traversal po = reverse_traversal(best_postorder(tree).order);
      for (std::size_t t = 0; t < po.size(); ++t) {
        rank[static_cast<std::size_t>(po[t])] =
            static_cast<double>(p - t);
      }
      break;
    }
    case ParallelPriority::kSmallestWork: {
      for (std::size_t i = 0; i < p; ++i) {
        rank[i] = -durations[i];
      }
      break;
    }
  }

  // In-tree transient of task i while it runs: children files + n_i + f_i.
  auto transient = [&](NodeId i) {
    return tree.child_file_sum(i) + tree.work_size(i) + tree.file_size(i);
  };

  ParallelScheduleResult result;
  // Quick infeasibility check: every task must fit by itself (with its
  // children files, which are unavoidable at that moment).
  if (options.memory_budget < kInfiniteWeight) {
    for (NodeId i = 0; i < tree.size(); ++i) {
      if (transient(i) > options.memory_budget) {
        return result;  // feasible = false
      }
    }
  }

  std::vector<NodeId> missing_children(p);
  for (NodeId i = 0; i < tree.size(); ++i) {
    missing_children[static_cast<std::size_t>(i)] = tree.num_children(i);
  }

  // Ready pool ordered by rank (descending), deterministic tie-break.
  auto readier = [&](NodeId a, NodeId b) {
    const double ra = rank[static_cast<std::size_t>(a)];
    const double rb = rank[static_cast<std::size_t>(b)];
    return ra != rb ? ra > rb : a < b;
  };
  std::vector<NodeId> ready;
  for (NodeId i = 0; i < tree.size(); ++i) {
    if (tree.is_leaf(i)) {
      ready.push_back(i);
    }
  }
  std::sort(ready.begin(), ready.end(), readier);

  struct Running {
    double finish;
    NodeId node;
    int worker;
    bool operator>(const Running& other) const {
      return finish != other.finish ? finish > other.finish
                                    : node > other.node;
    }
  };
  std::priority_queue<Running, std::vector<Running>, std::greater<>> running;
  std::vector<int> free_workers;
  for (int w = options.workers; w-- > 0;) {
    free_workers.push_back(w);
  }

  double now = 0.0;
  double total_work = 0.0;
  // memory = resident output files of finished-but-unconsumed tasks plus
  // the transient of every running task (children files are attributed to
  // the running parent once it starts, so they are moved out of `resident`
  // for the duration).
  Weight resident = 0;
  Weight memory = 0;
  std::size_t finished = 0;

  auto try_dispatch = [&]() {
    bool dispatched = true;
    while (dispatched && !free_workers.empty()) {
      dispatched = false;
      for (std::size_t k = 0; k < ready.size(); ++k) {
        const NodeId i = ready[k];
        // Starting i converts its children files from resident storage into
        // part of its transient; the memory delta is n_i + f_i.
        const Weight delta = tree.work_size(i) + tree.file_size(i);
        if (options.memory_budget < kInfiniteWeight &&
            memory + delta > options.memory_budget) {
          continue;  // does not fit now; try a lower-priority ready task
        }
        const int worker = free_workers.back();
        free_workers.pop_back();
        ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(k));
        memory += delta;
        resident -= tree.child_file_sum(i);
        running.push({now + durations[static_cast<std::size_t>(i)], i, worker});
        total_work += durations[static_cast<std::size_t>(i)];
        result.peak_memory = std::max(result.peak_memory, memory);
        dispatched = true;
        break;
      }
    }
  };

  try_dispatch();
  while (!running.empty()) {
    const Running done = running.top();
    running.pop();
    now = done.finish;
    result.gantt.push_back({done.node, done.worker,
                            now - durations[static_cast<std::size_t>(done.node)],
                            now});
    ++finished;
    // Free the transient, keep the output file resident.
    memory -= transient(done.node);
    memory += tree.file_size(done.node);
    resident += tree.file_size(done.node);
    free_workers.push_back(done.worker);
    const NodeId parent = tree.parent(done.node);
    if (parent != kNoNode &&
        --missing_children[static_cast<std::size_t>(parent)] == 0) {
      ready.insert(std::upper_bound(ready.begin(), ready.end(), parent, readier),
                   parent);
    }
    try_dispatch();
  }

  if (finished != p) {
    // Memory deadlock: tasks remain but none could ever start.
    result.feasible = false;
    return result;
  }
  TM_ASSERT(memory == tree.file_size(tree.root()),
            "simulation must end holding exactly the root file");
  result.feasible = true;
  result.makespan = now;
  result.speedup = total_work / std::max(now, 1e-300);
  return result;
}

}  // namespace treemem
