#include "parallel/parallel_sim.hpp"

#include <algorithm>
#include <queue>

namespace treemem {

ParallelScheduleResult simulate_parallel_traversal(
    const Tree& tree, const ParallelOptions& options) {
  return simulate_parallel_traversal(tree, options,
                                     default_task_durations(tree));
}

ParallelScheduleResult simulate_parallel_traversal(
    const Tree& tree, const ParallelOptions& options,
    const std::vector<double>& durations) {
  const auto p = static_cast<std::size_t>(tree.size());
  TM_CHECK(options.workers >= 1, "need at least one worker");
  TM_CHECK(durations.size() == p, "durations size mismatch");
  for (const double d : durations) {
    TM_CHECK(d > 0.0, "durations must be positive");
  }

  ParallelScheduleResult result;
  ScheduleCore core(tree, options.priority, options.memory_budget, durations,
                    options.admission, options.serial_witness);
  if (!core.schedule_feasible()) {
    return result;  // feasible = false
  }

  struct Running {
    double finish;
    NodeId node;
    int worker;
    bool operator>(const Running& other) const {
      return finish != other.finish ? finish > other.finish
                                    : node > other.node;
    }
  };
  std::priority_queue<Running, std::vector<Running>, std::greater<>> running;
  std::vector<int> free_workers;
  for (int w = options.workers; w-- > 0;) {
    free_workers.push_back(w);
  }

  double now = 0.0;
  double total_work = 0.0;

  auto try_dispatch = [&]() {
    while (!free_workers.empty()) {
      const NodeId i = core.try_start();
      if (i == kNoNode) {
        break;
      }
      const int worker = free_workers.back();
      free_workers.pop_back();
      running.push({now + durations[static_cast<std::size_t>(i)], i, worker});
      total_work += durations[static_cast<std::size_t>(i)];
    }
  };

  try_dispatch();
  while (!running.empty()) {
    const Running done = running.top();
    running.pop();
    now = done.finish;
    result.gantt.push_back({done.node, done.worker,
                            now - durations[static_cast<std::size_t>(done.node)],
                            now});
    core.finish(done.node);
    free_workers.push_back(done.worker);
    try_dispatch();
  }

  result.peak_memory = core.peak_memory();
  if (!core.done()) {
    // Memory deadlock: tasks remain but none could ever start.
    result.feasible = false;
    return result;
  }
  TM_ASSERT(p == 0 || core.current_memory() == tree.file_size(tree.root()),
            "simulation must end holding exactly the root file");
  result.feasible = true;
  result.makespan = now;
  result.speedup = total_work / std::max(now, 1e-300);
  return result;
}

}  // namespace treemem
