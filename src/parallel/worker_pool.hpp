// The persistent two-level worker runtime: one process-wide pool that both
// levels of parallelism draw from.
//
// Before this pool, the runtime was split: tree-level tasks ran on threads
// the executor spawned per factorization, while intra-front trailing
// updates forked fresh std::threads per panel through parallel_for — a
// thread birth every few hundred microseconds of dense work, and two
// worker sets that could not trade capacity (a large root front could not
// absorb the tree-level workers idling beside it). The A64FX multithreaded
// Cholesky line (arXiv:2202.09288) shows tree × node parallelism paying
// off exactly when both levels share one worker set; this pool is that
// substrate.
//
// Model: `size()` workers are spawned once (at pool construction) and park
// on per-slot condvars. Nobody ever spawns a thread afterwards — the
// steady-state hot path performs zero std::thread constructions, a
// property CI pins with the deterministic `threads_spawned` counter.
// Capacity moves between the levels by **leasing**:
//
//   * the tree-level executor recruits workers for whole-task stints via
//     try_dispatch() (and, under ExecutorOptions::lease_idle_workers,
//     returns them to the pool whenever the schedule has no ready front);
//   * a front whose trailing update clears the volume gate leases k idle
//     workers via try_lease() for the duration of one panel and returns
//     them at panel end (WorkerLease is RAII — returning is automatic).
//
// Leasing is strictly non-blocking: try_lease()/try_dispatch() claim only
// workers that are idle *right now* and may come back empty-handed, in
// which case the caller runs inline on its own thread. A panel can
// therefore never deadlock waiting for capacity the tree level holds, and
// vice versa — the calling thread is always its own guaranteed worker.
//
// Affinity: TREEMEM_AFFINITY=1 pins worker i to cpu (i mod ncpu) via
// pthread_setaffinity_np at thread start (Linux only; elsewhere the knob
// parses but is a no-op). Off by default — pinning helps dedicated boxes
// and hurts oversubscribed CI runners. Parsed strictly through
// support/env.hpp: a malformed value throws at pool construction.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace treemem {

class WorkerPool;

/// Deterministic pool counters (cumulative since pool construction).
/// threads_spawned is exactly size() forever — the "no thread births on
/// the hot path" contract, gated exactly in bench/check_regression.py.
struct WorkerPoolStats {
  long long threads_spawned = 0;   ///< == size(); never grows afterwards
  long long leases_granted = 0;    ///< try_lease() calls that got >= 1 worker
  long long leases_denied = 0;     ///< try_lease() calls that found none idle
  long long workers_leased = 0;    ///< Σ workers handed out across leases
  long long workers_dispatched = 0;///< Σ workers claimed by try_dispatch()
};

/// RAII handle over k >= 0 leased workers. Move-only; destroying (or
/// run()-ing) the lease returns the workers to the pool. A lease is
/// single-shot: run() consumes the workers.
class WorkerLease {
 public:
  WorkerLease() = default;
  WorkerLease(WorkerLease&& other) noexcept;
  WorkerLease& operator=(WorkerLease&& other) noexcept;
  WorkerLease(const WorkerLease&) = delete;
  WorkerLease& operator=(const WorkerLease&) = delete;
  /// Returns any still-reserved workers to the pool.
  ~WorkerLease();

  /// Leased workers (0 for an empty lease). The effective parallel width
  /// of run() is size() + 1: the calling thread always participates.
  std::size_t size() const { return slots_.size(); }
  bool empty() const { return slots_.empty(); }

  /// parallel_for over [0, count) on the leased workers *plus the calling
  /// thread*, with dynamic (atomic counter) index scheduling. Same
  /// contract as support/parallel_for: every index executes exactly once
  /// even if bodies throw, and the first exception is rethrown after all
  /// participants drained. An empty lease degrades to the inline loop on
  /// the calling thread (same contract). Consumes the lease: the workers
  /// return to the pool as they finish, and size() is 0 afterwards.
  void run(std::size_t count, const std::function<void(std::size_t)>& body);

  /// Returns the workers without running anything (idempotent).
  void release();

 private:
  friend class WorkerPool;
  WorkerLease(WorkerPool* pool, std::vector<unsigned> slots);

  WorkerPool* pool_ = nullptr;
  std::vector<unsigned> slots_;  ///< reserved slot indices
};

class WorkerPool {
 public:
  /// Spawns exactly `size` persistent workers (clamped to >= 1). Reads
  /// TREEMEM_AFFINITY once, here — never on a lease path.
  explicit WorkerPool(unsigned size);

  /// The process-wide pool. Sized once, at first use, from
  /// default_thread_count() — which resolves TREEMEM_THREADS /
  /// hardware_concurrency() exactly once instead of per parallel_for call
  /// (the pre-pool facade re-read the environment on every invocation).
  static WorkerPool& instance();

  /// Worker count, fixed at construction.
  unsigned size() const { return static_cast<unsigned>(slots_.size()); }

  /// Workers currently parked (momentary; for observability/tests).
  unsigned idle_workers() const;

  /// True when TREEMEM_AFFINITY=1 resolved at construction (the pinning
  /// itself is Linux-only).
  bool affinity() const { return affinity_; }

  /// Claims up to max_workers idle workers, never blocking: returns an
  /// empty lease (and counts leases_denied) when none are idle. The
  /// intra-front path: the caller runs the panel inline on an empty lease.
  WorkerLease try_lease(unsigned max_workers);

  /// Claims up to max_workers idle workers and hands each one `job` to run
  /// once, asynchronously; each worker returns itself to the pool when the
  /// job returns. Returns the number claimed (possibly 0), never blocks.
  /// The tree-level executor's recruitment primitive: `job` is a whole
  /// scheduling stint, not one loop index. `job` must not throw — stints
  /// route errors through their own channel (an escaped exception
  /// terminates, as from any thread main).
  unsigned try_dispatch(unsigned max_workers,
                        const std::function<void()>& job);

  WorkerPoolStats stats() const;

  /// Stops and joins all workers. Throws treemem::Error if any worker is
  /// still leased or running — tearing down under an active lease is a
  /// caller bug (the clean-error contract pinned by
  /// tests/parallel/worker_pool_test.cpp). Idempotent once it succeeds.
  void shutdown();

  /// Waits for every outstanding lease/dispatch to drain, then stops and
  /// joins. Never throws — but it *waits*, so release leases before
  /// destroying their pool (RAII makes that the natural order).
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

 private:
  friend class WorkerLease;

  enum class SlotState { kIdle, kReserved, kRunning };

  /// One parked worker. The job is a one-shot handoff cell: the owner (a
  /// lease or try_dispatch) stores it and signals; the worker runs it and
  /// re-idles itself.
  struct Slot {
    std::thread thread;
    std::condition_variable cv;
    SlotState state = SlotState::kIdle;
    std::function<void()> job;
  };

  void worker_main(unsigned slot_index);
  /// Under mutex_: moves `slot` back to the idle stack.
  void park_locked(unsigned slot_index);
  /// Returns reserved-but-unused slots (lease release / destructor path).
  void release_reserved(const std::vector<unsigned>& slots);
  /// Arms `slot` with `job` and wakes it. Caller holds mutex_; the slot
  /// must be kReserved (lease) or freshly claimed (dispatch).
  void arm_locked(unsigned slot_index, std::function<void()> job);

  mutable std::mutex mutex_;
  std::condition_variable all_idle_cv_;  ///< destructor's drain signal
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<unsigned> idle_;  ///< stack of idle slot indices
  bool stopping_ = false;
  bool affinity_ = false;

  // Counters are written under mutex_ but read lock-free by stats().
  std::atomic<long long> threads_spawned_{0};
  std::atomic<long long> leases_granted_{0};
  std::atomic<long long> leases_denied_{0};
  std::atomic<long long> workers_leased_{0};
  std::atomic<long long> workers_dispatched_{0};
};

}  // namespace treemem
