// A real thread-pool executor for memory-bounded multifrontal task trees —
// the promotion of parallel_sim from model to machine.
//
// Semantics mirror the simulator exactly (both drive the same ScheduleCore):
// a task is ready when all its children finished; while it runs it holds the
// Eq. 1 transient (children files + n_i + f_i); admission is gated on the
// shared budget M; ready tasks are tried in priority order, skipping those
// that do not currently fit. The difference is the clock: up to `w` workers
// pull tasks from a condvar-guarded ready queue and run real payloads, so
// makespan/speedup are *measured*, not modeled, while the memory accounting
// stays exact (an atomic accountant of modeled bytes).
//
// Since the persistent runtime (parallel/worker_pool.hpp) the executor
// spawns no threads: the calling thread anchors the run and the rest of
// the crew is recruited from the process-wide WorkerPool for whole
// scheduling stints. Under ExecutorOptions::lease_idle_workers (default) a
// recruited worker whose try_start finds nothing ready returns to the pool
// mid-run instead of parking — so a large root front's trailing-update
// lease can absorb exactly the workers tree-level scheduling has left
// idle — and is re-recruited when a completion readies new work.
//
// The primary mode is a real TaskBody payload: the flagship is the
// parallel numeric multifrontal engine (factor_parallel in
// multifrontal/numeric_parallel.hpp dispatches FrontalEngine::process_front
// per assembly-tree task, so the executor schedules actual frontal-matrix
// kernels); bench/parallel_tradeoff passes a calibrated arithmetic burner
// so measured speedups reflect core throughput. As fallbacks for
// validation without a payload, callers can instead use synthetic
// spin-work via ExecutorOptions::spin_seconds_per_unit, which busy-waits
// `duration(i) * spin_seconds_per_unit` wall-clock seconds per task (a
// quick way to make measured makespans comparable to the simulator's
// modeled ones when workers don't exceed physical cores), or neither, in
// which case tasks complete instantly and only the scheduling machinery is
// exercised.
//
// Determinism: with w = 1 the executor takes exactly the simulator's
// scheduling decisions (same greedy rule, same tie-breaks), so its
// completion order, feasibility and peak match the w = 1 simulation — and
// the peak equals the serial in-tree checker's Eq. 1 peak of that order.
// With w > 1 the interleaving (and hence gantt and peak) may vary run to
// run, but schedule-independent outputs — the set of executed tasks, the
// per-task payload results, precedence, the budget bound on the peak, and
// the final resident memory (the root file) — are invariant.
#pragma once

#include <functional>
#include <vector>

#include "parallel/schedule_core.hpp"
#include "tree/tree.hpp"

namespace treemem {

class WorkerPool;

/// Per-task payload, invoked on a worker thread. Must be thread-safe across
/// distinct nodes (two bodies never run concurrently for the same node; a
/// node's body runs strictly after all its children's bodies returned).
/// Exceptions thrown by a body abort the run and are rethrown to the caller
/// after all workers joined.
using TaskBody = std::function<void(NodeId)>;

struct ExecutorOptions {
  int workers = 4;
  /// Shared memory bound; kInfiniteWeight disables the constraint.
  Weight memory_budget = kInfiniteWeight;
  ParallelPriority priority = ParallelPriority::kCriticalPath;
  /// How ready tasks are admitted against the budget; lookahead and
  /// reservation consult `serial_witness` (see ScheduleCore) and never
  /// stall when the budget covers its serial peak.
  AdmissionPolicy admission = AdmissionPolicy::kGreedy;
  /// Optional bottom-up witness traversal for the non-greedy policies;
  /// empty = the MinMem optimum.
  Traversal serial_witness = {};
  /// Fallback when no TaskBody payload is supplied: synthetic busy-wait per
  /// duration unit (seconds); zero = tasks complete instantly. Real runs
  /// (factor_parallel, bench payloads) pass a TaskBody and leave this 0.
  double spin_seconds_per_unit = 0.0;
  /// Elastic crewing (default): a recruited worker that finds no ready
  /// task ends its stint and returns to the worker pool — where an
  /// intra-front lease (a large root front's trailing update) can pick it
  /// up — and is re-recruited the moment scheduling frees new ready work.
  /// When false the executor claims its full crew up front and parks idle
  /// workers on its own condvar for the whole run (the pre-pool behavior,
  /// kept as the scaling sweep's comparison configuration).
  bool lease_idle_workers = true;
  /// Worker source; nullptr = the process-wide WorkerPool::instance().
  /// The calling thread always anchors the run (guaranteed progress even
  /// when the pool has nothing idle), so a run needs zero pool workers to
  /// complete — it just runs serially.
  WorkerPool* pool = nullptr;
};

struct ExecutorResult {
  /// False iff the run could not complete under the memory bound: either
  /// some task's transient exceeds M outright, or the greedy schedule
  /// stalled with stranded resident files (matching the simulator's notion
  /// of a memory deadlock).
  bool feasible = false;
  /// Measured wall-clock seconds from run start to the last completion.
  double makespan = 0.0;
  /// Peak of the accounted shared-memory occupancy; never exceeds the
  /// budget on feasible runs.
  Weight peak_memory = 0;
  /// Σ measured task seconds / makespan — the achieved parallel speedup.
  double speedup = 0.0;
  /// Measured intervals (seconds since run start), in node order.
  std::vector<TaskInterval> gantt;
  /// Tasks in completion order — a valid bottom-up (in-tree) traversal.
  Traversal completion_order;
};

/// Runs the task tree on options.workers threads with default durations
/// (see default_task_durations) and no payload beyond the optional
/// spin-work.
ExecutorResult execute_task_tree(const Tree& tree,
                                 const ExecutorOptions& options);

/// Full control: explicit durations (they drive priorities and spin-work)
/// and an optional real payload per task.
ExecutorResult execute_task_tree(const Tree& tree,
                                 const ExecutorOptions& options,
                                 const std::vector<double>& durations,
                                 const TaskBody& body = {});

}  // namespace treemem
