// Scheduling state shared by the parallel simulator and the threaded
// executor.
//
// Both front-ends run the same memory-bounded list scheduling of the
// multifrontal task tree: a task is ready when all its children finished;
// while it runs it holds the Eq. 1 transient (children files + n_i + f_i);
// admission is gated on a shared budget M; ready tasks are tried in priority
// order, skipping those that do not currently fit. The simulator advances a
// virtual clock over modeled durations, the executor runs real threads over
// real payloads — but every scheduling decision (ready-set maintenance,
// transient accounting, priority comparison, admission) lives here so the
// two cannot drift.
//
// Admission is pluggable (AdmissionPolicy). The greedy policy admits any
// ready task that currently fits — eager subtree starts can strand resident
// contribution files and deadlock the schedule under a tight budget. The
// lookahead and reservation policies both reason against a *serial witness*:
// a bottom-up traversal whose serial Eq. 1 peak fits the budget (the
// planner's traversal, or the MinMem optimum when none is supplied). They
// admit a task only when doing so provably cannot strand resident files, so
// with budget >= the witness peak neither policy can ever stall.
//
// ScheduleCore itself is NOT thread-safe: the simulator drives it from its
// event loop and the executor serializes all calls under its scheduler
// mutex. The MemoryAccountant inside is atomic so memory/peak can be read
// concurrently without that lock (monitoring, result collection).
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <vector>

#include "core/traversal.hpp"
#include "tree/tree.hpp"

namespace treemem {

enum class ParallelPriority {
  kCriticalPath,  ///< longest duration-weighted path to the root first
  kPostorder,     ///< follow the serial best-postorder order
  kSmallestWork,  ///< cheapest ready task first (greedy latency)
};

const char* to_string(ParallelPriority priority);

/// How the scheduler decides whether a fitting ready task may actually
/// start. All three policies share the same accounting and the same
/// measured <= modeled <= budget invariant; they differ only in which
/// admissions they refuse.
enum class AdmissionPolicy {
  /// Admit any ready task whose transient fits right now. Maximally eager;
  /// under a tight budget the eagerly started subtrees can strand resident
  /// files and deadlock the schedule (the stall the benches chart).
  kGreedy,
  /// Banker-style lookahead: before committing budget, simulate the serial
  /// completion of everything still pending (running tasks drain, then the
  /// unfinished remainder executes in witness order) and refuse the
  /// admission if that continuation would ever exceed the budget. Exact
  /// per-state safety; O(remaining nodes) per admission test. Never stalls
  /// when the budget covers the witness peak.
  kLookahead,
  /// Reservation: pre-book the witness tail (the "root path" of the serial
  /// plan). The next witness task always runs in the reserved serial lane —
  /// so large late fronts are guaranteed to land — while out-of-order tasks
  /// are admitted only against the slack (budget − witness peak) and
  /// charged there until the serial frontier passes them. O(1) amortized
  /// per admission test; more conservative than lookahead. Never stalls
  /// when the budget covers the witness peak.
  kReservation,
};

const char* to_string(AdmissionPolicy policy);

/// Strictly parsed TREEMEM_ADMISSION = greedy | lookahead | reservation
/// (support/env.hpp contract: nullopt when unset/empty, treemem::Error on
/// any other spelling).
std::optional<AdmissionPolicy> admission_policy_from_env();

/// One scheduled task instance. The simulator fills modeled times, the
/// executor measured wall-clock seconds since the start of the run.
struct TaskInterval {
  NodeId node = kNoNode;
  int worker = -1;
  double start = 0.0;
  double finish = 0.0;
};

/// Default task durations: proportional to the node's own footprint
/// (n_i + f_i, at least 1) — a flop-count proxy adequate for scheduling
/// studies.
std::vector<double> default_task_durations(const Tree& tree);

/// Priority keys for every node under `priority` (higher = scheduled
/// first); ties break toward the smaller node id.
std::vector<double> compute_priority_ranks(const Tree& tree,
                                           ParallelPriority priority,
                                           const std::vector<double>& durations);

/// Budget-gated memory accounting. Lock-free: `try_acquire` admits a task's
/// start delta only if it fits under the budget, `adjust` applies the
/// unconditional completion delta (transient freed, output file retained),
/// and `peak` tracks the largest admitted occupancy — the same
/// at-dispatch peak the paper's Eq. 1 checkers report.
class MemoryAccountant {
 public:
  explicit MemoryAccountant(Weight budget = kInfiniteWeight)
      : budget_(budget) {}

  Weight budget() const { return budget_; }

  /// Atomically adds `delta` iff the result stays within the budget.
  /// Updates the peak on success.
  bool try_acquire(Weight delta);

  /// Unconditional adjustment (task completion; may be negative or, for
  /// variant-model trees with n_i < 0, slightly positive — between-step
  /// residents are not budget-gated, exactly as in the serial model where
  /// peaks alone determine feasibility).
  void adjust(Weight delta) {
    current_.fetch_add(delta, std::memory_order_relaxed);
  }

  Weight current() const { return current_.load(std::memory_order_relaxed); }
  Weight peak() const { return peak_.load(std::memory_order_relaxed); }

 private:
  void raise_peak(Weight observed);

  Weight budget_;
  std::atomic<Weight> current_{0};
  std::atomic<Weight> peak_{0};
};

/// The shared scheduling state machine. Drive it with:
///   while (!done()) { id = try_start(); ... run the task ...; finish(id); }
/// interleaving starts and finishes as the front-end's clock (virtual or
/// real) dictates. `try_start() == kNoNode` with no task in flight means the
/// schedule is stuck: started subtrees stranded resident files and no ready
/// task is admissible — the instance is infeasible under this policy (the
/// lookahead/reservation policies never reach that state when
/// schedule_feasible() held at the start).
class ScheduleCore {
 public:
  /// `serial_witness`, consumed only by the lookahead/reservation policies,
  /// is a bottom-up traversal (children before parents, all p nodes) whose
  /// serial Eq. 1 peak should fit the budget — typically the planner's
  /// traversal. When empty, the MinMem optimum is computed internally, so
  /// any budget >= the serial optimal peak guarantees stall-freedom. With
  /// an infinite budget admission is vacuous and every policy degrades to
  /// greedy (no witness is computed).
  ScheduleCore(const Tree& tree, ParallelPriority priority,
               Weight memory_budget, const std::vector<double>& durations,
               AdmissionPolicy admission = AdmissionPolicy::kGreedy,
               Traversal serial_witness = {});

  /// The Eq. 1 transient of task i: children files + n_i + f_i.
  Weight transient(NodeId i) const {
    return tree_->child_file_sum(i) + tree_->work_size(i) +
           tree_->file_size(i);
  }

  /// False iff some task can never start: its own transient exceeds the
  /// budget, so the instance is infeasible outright.
  bool all_tasks_fit() const;

  /// The front-ends' pre-run gate. Greedy: all_tasks_fit(). Lookahead and
  /// reservation additionally require the witness's serial peak to fit the
  /// budget — below that no admission is ever safe (and the policies'
  /// zero-stall guarantee needs the witness as the fallback schedule).
  bool schedule_feasible() const;

  AdmissionPolicy admission() const { return admission_; }
  /// Serial Eq. 1 peak of the witness traversal (0 under greedy).
  Weight witness_peak() const { return witness_peak_; }

  bool has_ready() const { return !ready_.empty(); }
  std::size_t finished_count() const { return finished_; }
  bool done() const {
    return finished_ == static_cast<std::size_t>(tree_->size());
  }

  /// Pops the highest-priority ready task that fits the budget on top of
  /// the current occupancy AND passes the admission policy, and accounts
  /// its start (the delta is n_i + f_i: the children files it absorbs are
  /// already resident). Returns kNoNode when no ready task is admissible
  /// right now.
  NodeId try_start();

  /// Marks i finished: frees its transient, keeps f_i resident until the
  /// parent consumes it, and readies the parent once its last child is done.
  void finish(NodeId i);

  Weight current_memory() const { return memory_.current(); }
  Weight peak_memory() const { return memory_.peak(); }
  const std::vector<double>& ranks() const { return rank_; }

  /// True when a comes before b in priority order (higher rank first,
  /// smaller id on ties).
  bool before(NodeId a, NodeId b) const {
    const double ra = rank_[static_cast<std::size_t>(a)];
    const double rb = rank_[static_cast<std::size_t>(b)];
    return ra != rb ? ra > rb : a < b;
  }

 private:
  bool admission_allows(NodeId i, Weight delta) const;
  bool lookahead_admits(NodeId i, Weight delta) const;
  /// i is the serial lane's task: the first witness node not yet finished
  /// (and, the caller guarantees, not yet started).
  bool is_serial_lane(NodeId i) const {
    return frontier_ < witness_.size() &&
           witness_[frontier_] == i;
  }
  void commit_start(NodeId i, Weight delta);

  const Tree* tree_;
  AdmissionPolicy admission_;
  std::vector<double> rank_;
  std::vector<NodeId> missing_children_;
  std::vector<NodeId> ready_;  ///< sorted by priority (best first)
  MemoryAccountant memory_;
  std::size_t finished_ = 0;

  // Non-greedy machinery. The witness is stored bottom-up; frontier_ is the
  // first witness position whose node has not finished; drain_sum_ is
  // Σ over running tasks of (f_i − transient(i)) — what hypothetically
  // completing them all would add to the occupancy.
  Traversal witness_;
  Weight witness_peak_ = 0;
  std::size_t frontier_ = 0;
  Weight drain_sum_ = 0;
  std::vector<char> started_;
  std::vector<char> finished_flag_;
  // Reservation pools: spec_occ_ is the occupancy charged to the
  // speculative (out-of-witness-order) lane; a task's n+f is charged at
  // start, its n released at finish, and its file released when the serial
  // frontier passes it or its parent consumes it. The invariant
  // spec_occ_ <= budget − witness_peak keeps the serial lane's witness
  // replay admissible at all times — the zero-stall guarantee.
  Weight spec_occ_ = 0;
  std::vector<char> spec_running_;
  std::vector<char> spec_file_charged_;
};

}  // namespace treemem
