// Scheduling state shared by the parallel simulator and the threaded
// executor.
//
// Both front-ends run the same greedy, memory-bounded list scheduling of the
// multifrontal task tree: a task is ready when all its children finished;
// while it runs it holds the Eq. 1 transient (children files + n_i + f_i);
// admission is gated on a shared budget M; ready tasks are tried in priority
// order, skipping those that do not currently fit. The simulator advances a
// virtual clock over modeled durations, the executor runs real threads over
// real payloads — but every scheduling decision (ready-set maintenance,
// transient accounting, priority comparison, admission) lives here so the
// two cannot drift.
//
// ScheduleCore itself is NOT thread-safe: the simulator drives it from its
// event loop and the executor serializes all calls under its scheduler
// mutex. The MemoryAccountant inside is atomic so memory/peak can be read
// concurrently without that lock (monitoring, result collection).
#pragma once

#include <atomic>
#include <vector>

#include "core/traversal.hpp"
#include "tree/tree.hpp"

namespace treemem {

enum class ParallelPriority {
  kCriticalPath,  ///< longest duration-weighted path to the root first
  kPostorder,     ///< follow the serial best-postorder order
  kSmallestWork,  ///< cheapest ready task first (greedy latency)
};

const char* to_string(ParallelPriority priority);

/// One scheduled task instance. The simulator fills modeled times, the
/// executor measured wall-clock seconds since the start of the run.
struct TaskInterval {
  NodeId node = kNoNode;
  int worker = -1;
  double start = 0.0;
  double finish = 0.0;
};

/// Default task durations: proportional to the node's own footprint
/// (n_i + f_i, at least 1) — a flop-count proxy adequate for scheduling
/// studies.
std::vector<double> default_task_durations(const Tree& tree);

/// Priority keys for every node under `priority` (higher = scheduled
/// first); ties break toward the smaller node id.
std::vector<double> compute_priority_ranks(const Tree& tree,
                                           ParallelPriority priority,
                                           const std::vector<double>& durations);

/// Budget-gated memory accounting. Lock-free: `try_acquire` admits a task's
/// start delta only if it fits under the budget, `adjust` applies the
/// unconditional completion delta (transient freed, output file retained),
/// and `peak` tracks the largest admitted occupancy — the same
/// at-dispatch peak the paper's Eq. 1 checkers report.
class MemoryAccountant {
 public:
  explicit MemoryAccountant(Weight budget = kInfiniteWeight)
      : budget_(budget) {}

  Weight budget() const { return budget_; }

  /// Atomically adds `delta` iff the result stays within the budget.
  /// Updates the peak on success.
  bool try_acquire(Weight delta);

  /// Unconditional adjustment (task completion; may be negative or, for
  /// variant-model trees with n_i < 0, slightly positive — between-step
  /// residents are not budget-gated, exactly as in the serial model where
  /// peaks alone determine feasibility).
  void adjust(Weight delta) {
    current_.fetch_add(delta, std::memory_order_relaxed);
  }

  Weight current() const { return current_.load(std::memory_order_relaxed); }
  Weight peak() const { return peak_.load(std::memory_order_relaxed); }

 private:
  void raise_peak(Weight observed);

  Weight budget_;
  std::atomic<Weight> current_{0};
  std::atomic<Weight> peak_{0};
};

/// The shared greedy scheduling state machine. Drive it with:
///   while (!done()) { id = try_start(); ... run the task ...; finish(id); }
/// interleaving starts and finishes as the front-end's clock (virtual or
/// real) dictates. `try_start() == kNoNode` with no task in flight means the
/// greedy schedule is stuck: started subtrees stranded resident files and no
/// ready task fits — the instance is infeasible under this policy.
class ScheduleCore {
 public:
  ScheduleCore(const Tree& tree, ParallelPriority priority,
               Weight memory_budget, const std::vector<double>& durations);

  /// The Eq. 1 transient of task i: children files + n_i + f_i.
  Weight transient(NodeId i) const {
    return tree_->child_file_sum(i) + tree_->work_size(i) +
           tree_->file_size(i);
  }

  /// False iff some task can never start: its own transient exceeds the
  /// budget, so the instance is infeasible outright.
  bool all_tasks_fit() const;

  bool has_ready() const { return !ready_.empty(); }
  std::size_t finished_count() const { return finished_; }
  bool done() const {
    return finished_ == static_cast<std::size_t>(tree_->size());
  }

  /// Pops the highest-priority ready task whose start fits the budget on
  /// top of the current occupancy and accounts its admission (the delta is
  /// n_i + f_i: the children files it absorbs are already resident).
  /// Returns kNoNode when no ready task is admissible right now.
  NodeId try_start();

  /// Marks i finished: frees its transient, keeps f_i resident until the
  /// parent consumes it, and readies the parent once its last child is done.
  void finish(NodeId i);

  Weight current_memory() const { return memory_.current(); }
  Weight peak_memory() const { return memory_.peak(); }
  const std::vector<double>& ranks() const { return rank_; }

  /// True when a comes before b in priority order (higher rank first,
  /// smaller id on ties).
  bool before(NodeId a, NodeId b) const {
    const double ra = rank_[static_cast<std::size_t>(a)];
    const double rb = rank_[static_cast<std::size_t>(b)];
    return ra != rb ? ra > rb : a < b;
  }

 private:
  const Tree* tree_;
  std::vector<double> rank_;
  std::vector<NodeId> missing_children_;
  std::vector<NodeId> ready_;  ///< sorted by priority (best first)
  MemoryAccountant memory_;
  std::size_t finished_ = 0;
};

}  // namespace treemem
