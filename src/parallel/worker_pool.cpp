#include "parallel/worker_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/env.hpp"
#include "support/parallel_for.hpp"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace treemem {

namespace {

/// Pins the calling thread to one cpu. Best-effort: a failed affinity call
/// (cgroup mask, exotic topology) silently leaves the thread floating —
/// placement is a performance hint, never a correctness requirement.
void pin_to_cpu(unsigned cpu) {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)cpu;
#endif
}

}  // namespace

// ---------------------------------------------------------------------------
// WorkerLease
// ---------------------------------------------------------------------------

WorkerLease::WorkerLease(WorkerPool* pool, std::vector<unsigned> slots)
    : pool_(pool), slots_(std::move(slots)) {}

WorkerLease::WorkerLease(WorkerLease&& other) noexcept
    : pool_(other.pool_), slots_(std::move(other.slots_)) {
  other.pool_ = nullptr;
  other.slots_.clear();
}

WorkerLease& WorkerLease::operator=(WorkerLease&& other) noexcept {
  if (this != &other) {
    release();
    pool_ = other.pool_;
    slots_ = std::move(other.slots_);
    other.pool_ = nullptr;
    other.slots_.clear();
  }
  return *this;
}

WorkerLease::~WorkerLease() { release(); }

void WorkerLease::release() {
  if (pool_ != nullptr && !slots_.empty()) {
    pool_->release_reserved(slots_);
  }
  slots_.clear();
  pool_ = nullptr;
}

void WorkerLease::run(std::size_t count,
                      const std::function<void(std::size_t)>& body) {
  if (count == 0) {
    release();
    return;
  }
  if (slots_.empty()) {
    // Empty lease (none were idle, or the caller asked for 0): the inline
    // path, same contract — every index once, first exception rethrown.
    release();
    std::exception_ptr inline_error;
    for (std::size_t i = 0; i < count; ++i) {
      try {
        body(i);
      } catch (...) {
        if (!inline_error) {
          inline_error = std::current_exception();
        }
      }
    }
    if (inline_error) {
      std::rethrow_exception(inline_error);
    }
    return;
  }

  // Shared loop state. Heap-allocated via shared_ptr: a worker may still
  // be inside its drain wrapper (after its last fetch_add, before its
  // final deref) when the caller's wait is satisfied, so the state must
  // outlive this frame by reference count, not by scope.
  struct LoopState {
    std::atomic<std::size_t> next{0};
    std::size_t count = 0;
    const std::function<void(std::size_t)>* body = nullptr;
    std::mutex error_mutex;
    std::exception_ptr first_error;
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::size_t active = 0;  ///< leased workers still draining
  };
  auto state = std::make_shared<LoopState>();
  state->count = count;
  state->body = &body;
  state->active = slots_.size();

  auto drain = [](const std::shared_ptr<LoopState>& s) {
    while (true) {
      const std::size_t i = s->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s->count) {
        return;
      }
      try {
        (*s->body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(s->error_mutex);
        if (!s->first_error) {
          s->first_error = std::current_exception();
        }
      }
    }
  };

  WorkerPool& pool = *pool_;
  {
    std::lock_guard<std::mutex> lock(pool.mutex_);
    for (const unsigned slot : slots_) {
      pool.arm_locked(slot, [state, drain] {
        drain(state);
        std::lock_guard<std::mutex> done_lock(state->done_mutex);
        if (--state->active == 0) {
          state->done_cv.notify_all();
        }
      });
    }
  }
  // The workers self-return to the pool as their wrappers finish; this
  // lease no longer owns them.
  slots_.clear();
  pool_ = nullptr;

  drain(state);  // the calling thread is always a participant
  {
    std::unique_lock<std::mutex> lock(state->done_mutex);
    state->done_cv.wait(lock, [&] { return state->active == 0; });
  }
  if (state->first_error) {
    std::rethrow_exception(state->first_error);
  }
}

// ---------------------------------------------------------------------------
// WorkerPool
// ---------------------------------------------------------------------------

WorkerPool::WorkerPool(unsigned size) {
  // TREEMEM_AFFINITY resolves exactly once, here — never on a lease path.
  // Strict parse: only 0 or 1, anything else throws before any thread is
  // born.
  if (const std::optional<long long> env = env_int("TREEMEM_AFFINITY", 0, 1)) {
    affinity_ = (*env == 1);
  }
  const unsigned n = std::max(1u, size);
  slots_.reserve(n);
  idle_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
  // All slots exist before any thread starts: worker_main indexes slots_.
  for (unsigned i = 0; i < n; ++i) {
    slots_[i]->thread = std::thread([this, i] { worker_main(i); });
    idle_.push_back(i);
  }
  threads_spawned_.store(static_cast<long long>(n),
                         std::memory_order_relaxed);
}

WorkerPool& WorkerPool::instance() {
  // Meyers singleton: sized on first use from the resolved-once thread
  // count (TREEMEM_THREADS / hardware_concurrency, capped at 1024 by
  // default_thread_count), torn down at static destruction — after which
  // no treemem code runs, so the destructor's drain-and-join is safe.
  static WorkerPool pool(default_thread_count());
  // The process pool's counters in the metrics exposition. Registered
  // after `pool`, so the registry outlives nothing that dumps it: it is
  // destroyed first at teardown, taking the exporter (and its pool
  // reference) with it. Private pools (tests, benches) stay unregistered
  // — process metrics describe the process pool.
  static const bool exporter_registered = [] {
    obs::MetricsRegistry::instance().add_exporter([] {
      const WorkerPoolStats s = pool.stats();
      std::string text;
      text += obs::format_gauge("treemem_pool_threads_spawned", "",
                                static_cast<double>(s.threads_spawned));
      text += obs::format_counter("treemem_pool_leases_granted_total", "",
                                  s.leases_granted);
      text += obs::format_counter("treemem_pool_leases_denied_total", "",
                                  s.leases_denied);
      text += obs::format_counter("treemem_pool_workers_leased_total", "",
                                  s.workers_leased);
      text += obs::format_counter("treemem_pool_workers_dispatched_total", "",
                                  s.workers_dispatched);
      return text;
    });
    return true;
  }();
  (void)exporter_registered;
  return pool;
}

unsigned WorkerPool::idle_workers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<unsigned>(idle_.size());
}

void WorkerPool::worker_main(unsigned slot_index) {
  if (affinity_) {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    pin_to_cpu(slot_index % hw);
  }
  Slot& slot = *slots_[slot_index];
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    slot.cv.wait(lock, [&] { return stopping_ || slot.job != nullptr; });
    if (slot.job) {
      std::function<void()> job = std::move(slot.job);
      slot.job = nullptr;
      lock.unlock();
      {
        obs::TraceSpan stint("stint", "pool", obs::TraceRecorder::kNoLane,
                             "slot", static_cast<long long>(slot_index));
        job();  // must not throw (documented contract of dispatch/lease jobs)
      }
      lock.lock();
      park_locked(slot_index);
      continue;  // re-check: a stop may have been requested meanwhile
    }
    return;  // stopping_ with no job
  }
}

void WorkerPool::park_locked(unsigned slot_index) {
  slots_[slot_index]->state = SlotState::kIdle;
  idle_.push_back(slot_index);
  if (idle_.size() == slots_.size()) {
    all_idle_cv_.notify_all();
  }
}

WorkerLease WorkerPool::try_lease(unsigned max_workers) {
  std::vector<unsigned> claimed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!stopping_) {
      while (claimed.size() < max_workers && !idle_.empty()) {
        const unsigned slot = idle_.back();
        idle_.pop_back();
        slots_[slot]->state = SlotState::kReserved;
        claimed.push_back(slot);
      }
    }
    if (claimed.empty()) {
      if (max_workers > 0) {
        leases_denied_.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      leases_granted_.fetch_add(1, std::memory_order_relaxed);
      workers_leased_.fetch_add(static_cast<long long>(claimed.size()),
                                std::memory_order_relaxed);
    }
  }
  // Emitted outside the pool lock; denied leases are the instants that
  // explain an inline panel on the timeline.
  if (max_workers > 0) {
    obs::TraceRecorder& recorder = obs::TraceRecorder::instance();
    if (recorder.enabled()) {
      recorder.instant(claimed.empty() ? "lease_deny" : "lease_grant", "pool",
                       obs::TraceRecorder::kNoLane, "requested",
                       static_cast<long long>(max_workers), "granted",
                       static_cast<long long>(claimed.size()));
    }
  }
  return WorkerLease(this, std::move(claimed));
}

void WorkerPool::arm_locked(unsigned slot_index, std::function<void()> job) {
  Slot& slot = *slots_[slot_index];
  slot.state = SlotState::kRunning;
  slot.job = std::move(job);
  slot.cv.notify_one();
}

unsigned WorkerPool::try_dispatch(unsigned max_workers,
                                  const std::function<void()>& job) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) {
    return 0;
  }
  unsigned claimed = 0;
  while (claimed < max_workers && !idle_.empty()) {
    const unsigned slot = idle_.back();
    idle_.pop_back();
    arm_locked(slot, job);
    ++claimed;
  }
  workers_dispatched_.fetch_add(static_cast<long long>(claimed),
                                std::memory_order_relaxed);
  return claimed;
}

void WorkerPool::release_reserved(const std::vector<unsigned>& slots) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const unsigned slot : slots) {
    TM_ASSERT(slots_[slot]->state == SlotState::kReserved,
              "releasing a worker that is not reserved");
    park_locked(slot);
  }
}

WorkerPoolStats WorkerPool::stats() const {
  WorkerPoolStats s;
  s.threads_spawned = threads_spawned_.load(std::memory_order_relaxed);
  s.leases_granted = leases_granted_.load(std::memory_order_relaxed);
  s.leases_denied = leases_denied_.load(std::memory_order_relaxed);
  s.workers_leased = workers_leased_.load(std::memory_order_relaxed);
  s.workers_dispatched = workers_dispatched_.load(std::memory_order_relaxed);
  return s;
}

void WorkerPool::shutdown() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (slots_.empty()) {
    return;  // already shut down
  }
  TM_CHECK(idle_.size() == slots_.size(),
           "WorkerPool::shutdown: " << slots_.size() - idle_.size()
                                    << " of " << slots_.size()
                                    << " workers still leased or running — "
                                       "release all leases before tearing "
                                       "the pool down");
  stopping_ = true;
  for (const std::unique_ptr<Slot>& slot : slots_) {
    slot->cv.notify_all();
  }
  // Workers need mutex_ to observe stopping_ — join unlocked.
  lock.unlock();
  for (const std::unique_ptr<Slot>& slot : slots_) {
    if (slot->thread.joinable()) {
      slot->thread.join();
    }
  }
  lock.lock();
  slots_.clear();
  idle_.clear();
}

WorkerPool::~WorkerPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (slots_.empty()) {
      return;  // shutdown() already ran
    }
    // Outstanding dispatches self-park when their jobs return; reserved
    // (leased) workers park when their lease releases. Waiting here is the
    // no-throw destructor's only option — callers should release leases
    // first (RAII ordering does this naturally).
    all_idle_cv_.wait(lock, [&] { return idle_.size() == slots_.size(); });
    stopping_ = true;
    for (const std::unique_ptr<Slot>& slot : slots_) {
      slot->cv.notify_all();
    }
  }
  for (const std::unique_ptr<Slot>& slot : slots_) {
    if (slot->thread.joinable()) {
      slot->thread.join();
    }
  }
}

}  // namespace treemem
