// Memory-bounded parallel tree traversal — the direction the paper's
// conclusion points to ("multi-core platforms ... call for re-designing the
// whole computational chain ... memory-aware computational kernels at every
// level").
//
// An event-driven simulator of the multifrontal task tree on `w` workers
// sharing one memory of size M. Task i (in-tree direction) becomes ready
// when all children finished; while it runs it holds its children's files,
// its execution file and its output (the Eq. 1 transient); on completion
// the children files and n_i are freed and f_i stays resident until the
// parent consumes it. A ready task may start only if the memory bound
// admits its transient on top of everything currently held.
//
// The simulator exposes the fundamental tension this creates: more workers
// mean more concurrent fronts and thus more memory — with a tight budget
// the scheduler serializes (or, if even one task cannot fit, fails), so
// speedup is bought with memory. bench/parallel_tradeoff quantifies it.
//
// All scheduling decisions are shared with the real threaded executor
// (parallel/executor.hpp) through parallel/schedule_core.hpp; this header
// only adds the virtual-clock front-end.
#pragma once

#include <vector>

#include "parallel/schedule_core.hpp"
#include "tree/tree.hpp"

namespace treemem {

struct ParallelOptions {
  int workers = 4;
  /// Shared memory bound; kInfiniteWeight disables the constraint.
  Weight memory_budget = kInfiniteWeight;
  ParallelPriority priority = ParallelPriority::kCriticalPath;
  /// How ready tasks are admitted against the budget; lookahead and
  /// reservation consult `serial_witness` (see ScheduleCore) and never
  /// stall when the budget covers its serial peak.
  AdmissionPolicy admission = AdmissionPolicy::kGreedy;
  /// Optional bottom-up witness traversal for the non-greedy policies;
  /// empty = the MinMem optimum.
  Traversal serial_witness = {};
};

struct ParallelScheduleResult {
  /// False iff the schedule could not run to completion under the memory
  /// bound: some task can never start, the non-greedy witness peak exceeds
  /// the budget, or the (greedy) schedule deadlocked mid-run.
  bool feasible = false;
  double makespan = 0.0;
  /// Peak of the simulated shared-memory occupancy.
  Weight peak_memory = 0;
  /// Σ durations / makespan — the achieved parallel speedup.
  double speedup = 0.0;
  std::vector<TaskInterval> gantt;
};

/// Task durations default to the node's transient footprint (n_i + f_i, at
/// least 1) — see default_task_durations(). Use the explicit overload for
/// custom durations.
ParallelScheduleResult simulate_parallel_traversal(const Tree& tree,
                                                   const ParallelOptions& options);

ParallelScheduleResult simulate_parallel_traversal(
    const Tree& tree, const ParallelOptions& options,
    const std::vector<double>& durations);

}  // namespace treemem
