#include "parallel/executor.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

#include "support/timer.hpp"

namespace treemem {

namespace {

/// Busy-waits for `seconds` of wall-clock time. A spin (not a sleep) so the
/// worker genuinely occupies its core, like a real factorization kernel
/// would — sleeps would let the OS oversubscribe and flatter the speedup.
void spin_for(double seconds) {
  if (seconds <= 0.0) {
    return;
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(seconds));
  while (std::chrono::steady_clock::now() < deadline) {
  }
}

}  // namespace

ExecutorResult execute_task_tree(const Tree& tree,
                                 const ExecutorOptions& options) {
  return execute_task_tree(tree, options, default_task_durations(tree));
}

ExecutorResult execute_task_tree(const Tree& tree,
                                 const ExecutorOptions& options,
                                 const std::vector<double>& durations,
                                 const TaskBody& body) {
  const auto p = static_cast<std::size_t>(tree.size());
  TM_CHECK(options.workers >= 1, "need at least one worker");
  TM_CHECK(durations.size() == p, "durations size mismatch");
  for (const double d : durations) {
    TM_CHECK(d > 0.0, "durations must be positive");
  }

  ExecutorResult result;
  ScheduleCore core(tree, options.priority, options.memory_budget, durations,
                    options.admission, options.serial_witness);
  if (!core.schedule_feasible()) {
    return result;  // feasible = false: a transient or the witness peak
                    // exceeds the budget
  }
  if (p == 0) {
    result.feasible = true;
    return result;
  }

  // Scheduler state. Every ScheduleCore call happens under `mutex`; workers
  // drop it only while a payload runs.
  std::mutex mutex;
  std::condition_variable ready_cv;
  int in_flight = 0;     ///< tasks between try_start() and finish()
  bool aborted = false;  ///< stall detected or a payload threw
  std::exception_ptr first_error;
  std::vector<TaskInterval> gantt(p);
  Traversal completion_order;
  completion_order.reserve(p);
  double total_busy = 0.0;
  Timer run_timer;

  auto worker_loop = [&](int worker_id) {
    std::unique_lock<std::mutex> lock(mutex);
    while (true) {
      if (aborted || core.done()) {
        return;
      }
      const NodeId node = core.try_start();
      if (node == kNoNode) {
        if (in_flight == 0) {
          // Nothing running, nothing admissible: started subtrees stranded
          // resident files and no completion will ever free memory — the
          // greedy schedule is stuck (the simulator's memory deadlock).
          aborted = true;
          ready_cv.notify_all();
          return;
        }
        ready_cv.wait(lock);
        continue;
      }
      ++in_flight;
      lock.unlock();
      const double start_s = run_timer.elapsed_s();
      try {
        if (body) {
          body(node);
        } else {
          spin_for(durations[static_cast<std::size_t>(node)] *
                   options.spin_seconds_per_unit);
        }
      } catch (...) {
        lock.lock();
        if (!first_error) {
          first_error = std::current_exception();
        }
        aborted = true;
        --in_flight;
        ready_cv.notify_all();
        return;
      }
      const double finish_s = run_timer.elapsed_s();
      lock.lock();
      core.finish(node);  // may ready the parent
      --in_flight;
      gantt[static_cast<std::size_t>(node)] = {node, worker_id, start_s,
                                               finish_s};
      completion_order.push_back(node);
      total_busy += finish_s - start_s;
      // Wake everyone: the freed memory / new ready parent may unblock any
      // subset of the waiters.
      ready_cv.notify_all();
    }
  };

  // More workers than tasks would only park idle threads on the condvar.
  const int workers = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(options.workers), p));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back(worker_loop, w);
  }
  for (auto& thread : threads) {
    thread.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }

  result.peak_memory = core.peak_memory();
  if (!core.done()) {
    return result;  // feasible = false: the schedule stalled
  }
  TM_ASSERT(core.current_memory() == tree.file_size(tree.root()),
            "execution must end holding exactly the root file");
  result.feasible = true;
  double makespan = 0.0;
  for (const TaskInterval& task : gantt) {
    makespan = std::max(makespan, task.finish);
  }
  result.makespan = makespan;
  result.speedup = total_busy / std::max(makespan, 1e-300);
  result.gantt = std::move(gantt);
  result.completion_order = std::move(completion_order);
  return result;
}

}  // namespace treemem
