#include "parallel/executor.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>

#include "obs/trace.hpp"
#include "parallel/worker_pool.hpp"
#include "support/timer.hpp"

namespace treemem {

namespace {

/// Static-literal trace names (TraceEvent stores pointers, not copies).
const char* admission_trace_name(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kGreedy:
      return "admission:greedy";
    case AdmissionPolicy::kLookahead:
      return "admission:lookahead";
    case AdmissionPolicy::kReservation:
      return "admission:reservation";
  }
  return "admission:?";
}

/// Busy-waits for `seconds` of wall-clock time. A spin (not a sleep) so the
/// worker genuinely occupies its core, like a real factorization kernel
/// would — sleeps would let the OS oversubscribe and flatter the speedup.
void spin_for(double seconds) {
  if (seconds <= 0.0) {
    return;
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(seconds));
  while (std::chrono::steady_clock::now() < deadline) {
  }
}

}  // namespace

ExecutorResult execute_task_tree(const Tree& tree,
                                 const ExecutorOptions& options) {
  return execute_task_tree(tree, options, default_task_durations(tree));
}

ExecutorResult execute_task_tree(const Tree& tree,
                                 const ExecutorOptions& options,
                                 const std::vector<double>& durations,
                                 const TaskBody& body) {
  const auto p = static_cast<std::size_t>(tree.size());
  TM_CHECK(options.workers >= 1, "need at least one worker");
  TM_CHECK(durations.size() == p, "durations size mismatch");
  for (const double d : durations) {
    TM_CHECK(d > 0.0, "durations must be positive");
  }

  ExecutorResult result;
  ScheduleCore core(tree, options.priority, options.memory_budget, durations,
                    options.admission, options.serial_witness);
  if (!core.schedule_feasible()) {
    return result;  // feasible = false: a transient or the witness peak
                    // exceeds the budget
  }
  if (p == 0) {
    result.feasible = true;
    return result;
  }

  WorkerPool& pool = options.pool != nullptr ? *options.pool
                                             : WorkerPool::instance();
  // More workers than tasks would only park idle threads; the calling
  // thread (the anchor, worker id 0) is part of the crew, so at most
  // target-1 pool workers are ever recruited.
  const int target = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(options.workers), p));

  // Scheduler state. Every ScheduleCore call happens under `mutex`; workers
  // drop it only while a payload runs.
  std::mutex mutex;
  std::condition_variable ready_cv;
  std::condition_variable helpers_cv;  ///< anchor waits for stints to drain
  int in_flight = 0;     ///< tasks between try_start() and finish()
  int helpers = 0;       ///< recruited stints currently active
  bool aborted = false;  ///< stall detected or a payload threw
  std::exception_ptr first_error;
  std::vector<TaskInterval> gantt(p);
  Traversal completion_order;
  completion_order.reserve(p);
  double total_busy = 0.0;
  // Gantt worker ids for recruited stints: 1..target-1, reused as stints
  // end and new ones are recruited (the anchor is always id 0).
  std::vector<int> free_ids;
  free_ids.reserve(static_cast<std::size_t>(target > 0 ? target - 1 : 0));
  for (int id = target - 1; id >= 1; --id) {
    free_ids.push_back(id);
  }
  Timer run_timer;

  obs::TraceRecorder& recorder = obs::TraceRecorder::instance();
  if (recorder.enabled()) {
    // One instant names the policy for the whole run; the counter track
    // starts at the initial accountant level (the leaves' inputs).
    recorder.instant(admission_trace_name(options.admission), "admission", 0,
                     "budget",
                     options.memory_budget == kInfiniteWeight
                         ? -1
                         : static_cast<long long>(options.memory_budget));
    recorder.counter("memory_entries", "entries",
                     static_cast<long long>(core.current_memory()));
  }

  // Declared as std::function so maybe_recruit (below) can hand the stint
  // to the pool from inside worker_loop (mutual reference).
  std::function<void()> stint;

  auto worker_loop = [&](bool anchor, std::unique_lock<std::mutex>& lock) {
    TM_ASSERT(anchor || !free_ids.empty(),
              "more concurrent stints than crew ids");
    const int worker_id = anchor ? 0 : free_ids.back();
    if (!anchor) {
      free_ids.pop_back();
    }

    // Elastic mode only: recruit pool workers while the schedule shows
    // admissible ready work this stint cannot absorb alone. Called under
    // `lock` at every point new ready work may have appeared.
    auto maybe_recruit = [&] {
      if (!options.lease_idle_workers) {
        return;
      }
      while (!aborted && !core.done() && helpers + 1 < target &&
             core.has_ready()) {
        if (pool.try_dispatch(1, stint) == 0) {
          break;  // nobody idle — the tree makes do with its current crew
        }
        ++helpers;
      }
    };

    while (!aborted && !core.done()) {
      const NodeId node = core.try_start();
      if (node == kNoNode) {
        if (in_flight == 0) {
          // Nothing running, nothing admissible: started subtrees stranded
          // resident files and no completion will ever free memory — the
          // greedy schedule is stuck (the simulator's memory deadlock).
          aborted = true;
          if (recorder.enabled()) {
            recorder.instant("stall", "admission", worker_id, "resident",
                             static_cast<long long>(core.current_memory()));
          }
          ready_cv.notify_all();
          break;
        }
        if (!anchor && options.lease_idle_workers) {
          // Elastic stint end: return to the pool instead of parking —
          // an intra-front lease may have better use for this worker.
          // maybe_recruit() re-recruits when new work readies.
          break;
        }
        if (recorder.enabled()) {
          // Deferred: ready work exists (or will) but nothing admissible
          // under the budget right now — the lane goes idle on purpose.
          recorder.instant("defer", "admission", worker_id, "in_flight",
                           in_flight, "resident",
                           static_cast<long long>(core.current_memory()));
        }
        ready_cv.wait(lock);
        continue;
      }
      ++in_flight;
      if (recorder.enabled()) {
        recorder.counter("memory_entries", "entries",
                         static_cast<long long>(core.current_memory()));
      }
      maybe_recruit();  // more admissible tasks may still be ready
      lock.unlock();
      if (recorder.enabled()) {
        recorder.begin("front", "exec", worker_id, "node",
                       static_cast<long long>(node));
      }
      const double start_s = run_timer.elapsed_s();
      bool threw = false;
      try {
        if (body) {
          body(node);
        } else {
          spin_for(durations[static_cast<std::size_t>(node)] *
                   options.spin_seconds_per_unit);
        }
      } catch (...) {
        if (recorder.enabled()) {
          recorder.end("front", "exec", worker_id);
        }
        lock.lock();
        if (!first_error) {
          first_error = std::current_exception();
        }
        aborted = true;
        --in_flight;
        ready_cv.notify_all();
        threw = true;
      }
      if (threw) {
        break;
      }
      const double finish_s = run_timer.elapsed_s();
      if (recorder.enabled()) {
        recorder.end("front", "exec", worker_id);
      }
      lock.lock();
      core.finish(node);  // may ready the parent
      if (recorder.enabled()) {
        recorder.counter("memory_entries", "entries",
                         static_cast<long long>(core.current_memory()));
      }
      --in_flight;
      gantt[static_cast<std::size_t>(node)] = {node, worker_id, start_s,
                                               finish_s};
      completion_order.push_back(node);
      total_busy += finish_s - start_s;
      // Wake everyone: the freed memory / new ready parent may unblock any
      // subset of the waiters.
      ready_cv.notify_all();
      maybe_recruit();
    }

    if (!anchor) {
      free_ids.push_back(worker_id);
      if (--helpers == 0) {
        helpers_cv.notify_all();
      }
    }
  };

  stint = [&] {
    std::unique_lock<std::mutex> lock(mutex);
    worker_loop(false, lock);
  };

  {
    std::unique_lock<std::mutex> lock(mutex);
    if (options.lease_idle_workers) {
      // Elastic: recruit for the initially-ready leaves; completions
      // re-recruit as the frontier widens.
      while (helpers + 1 < target && core.has_ready() &&
             pool.try_dispatch(1, stint) == 1) {
        ++helpers;
      }
    } else if (target > 1) {
      // Fixed crew: claim the whole complement up front; idle members park
      // on ready_cv until the run ends. A busy pool may yield fewer — the
      // run still completes (the anchor guarantees progress).
      helpers = static_cast<int>(
          pool.try_dispatch(static_cast<unsigned>(target - 1), stint));
    }
    // The calling thread anchors the run: worker id 0, never leaves, so
    // the executor completes even with zero pool workers available.
    worker_loop(true, lock);
    helpers_cv.wait(lock, [&] { return helpers == 0; });
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }

  result.peak_memory = core.peak_memory();
  if (!core.done()) {
    return result;  // feasible = false: the schedule stalled
  }
  TM_ASSERT(core.current_memory() == tree.file_size(tree.root()),
            "execution must end holding exactly the root file");
  result.feasible = true;
  double makespan = 0.0;
  for (const TaskInterval& task : gantt) {
    makespan = std::max(makespan, task.finish);
  }
  result.makespan = makespan;
  result.speedup = total_busy / std::max(makespan, 1e-300);
  result.gantt = std::move(gantt);
  result.completion_order = std::move(completion_order);
  return result;
}

}  // namespace treemem
