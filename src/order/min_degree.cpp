// Quotient-graph minimum-degree ordering (AMD-class).
//
// The quotient graph represents the partially eliminated matrix implicitly:
// eliminated pivots become *elements* whose variable lists stand for the
// cliques their elimination created. Each surviving (super)variable i keeps
//   * adj_var[i]  — adjacent supervariables via original entries,
//   * adj_elem[i] — adjacent elements,
// and the fill neighbourhood of i is adj_var[i] ∪ ⋃_{e∈adj_elem[i]} vars(e).
//
// Per pivot p: form the new element L_p, absorb the elements adjacent to p,
// prune covered variable-variable edges, update degrees (either AMD's
// approximate external degree, computed with the one-pass |L_e \ L_p|
// trick, or the exact degree for validation), and merge indistinguishable
// supervariables found by adjacency hashing. Ties break toward the smaller
// vertex id, making the ordering deterministic.
#include <algorithm>
#include <queue>

#include "order/ordering.hpp"

namespace treemem {
namespace {
using Weight = std::int64_t;
}  // namespace
}  // namespace treemem

namespace treemem {

namespace {

class MinDegreeSolver {
 public:
  MinDegreeSolver(const SparsePattern& a, const MinDegreeOptions& options)
      : n_(a.cols()), options_(options) {
    adj_var_.resize(static_cast<std::size_t>(n_));
    adj_elem_.resize(static_cast<std::size_t>(n_));
    elem_vars_.resize(static_cast<std::size_t>(n_));
    weight_.assign(static_cast<std::size_t>(n_), 1);
    degree_.assign(static_cast<std::size_t>(n_), 0);
    state_.assign(static_cast<std::size_t>(n_), State::kAlive);
    members_.resize(static_cast<std::size_t>(n_));
    mark_.assign(static_cast<std::size_t>(n_), 0);
    scratch_weight_.assign(static_cast<std::size_t>(n_), -1);

    for (Index j = 0; j < n_; ++j) {
      members_[static_cast<std::size_t>(j)] = {j};
      auto& adj = adj_var_[static_cast<std::size_t>(j)];
      for (const Index r : a.column(j)) {
        if (r != j) {
          adj.push_back(r);
        }
      }
      degree_[static_cast<std::size_t>(j)] =
          static_cast<Index>(adj.size());
      heap_.push({degree_[static_cast<std::size_t>(j)], j});
    }
  }

  std::vector<Index> solve() {
    std::vector<Index> perm;
    perm.reserve(static_cast<std::size_t>(n_));
    Index eliminated = 0;
    while (eliminated < n_) {
      const Index p = pop_min_degree();
      eliminate(p, perm);
      eliminated += weight_[static_cast<std::size_t>(p)];
    }
    check_permutation(perm, n_);
    return perm;
  }

 private:
  enum class State : char { kAlive, kElement, kMerged, kDead };

  Index pop_min_degree() {
    while (true) {
      TM_ASSERT(!heap_.empty(), "min-degree heap exhausted early");
      const auto [deg, v] = heap_.top();
      heap_.pop();
      if (state_[static_cast<std::size_t>(v)] == State::kAlive &&
          degree_[static_cast<std::size_t>(v)] == deg) {
        return v;
      }
    }
  }

  /// Current fill neighbourhood of p (supervariables, excluding p),
  /// using the marker array; also purges dead entries from p's lists.
  std::vector<Index> neighbourhood(Index p) {
    ++stamp_;
    mark_[static_cast<std::size_t>(p)] = stamp_;
    std::vector<Index> out;
    auto visit = [&](Index v) {
      if (state_[static_cast<std::size_t>(v)] == State::kAlive &&
          mark_[static_cast<std::size_t>(v)] != stamp_) {
        mark_[static_cast<std::size_t>(v)] = stamp_;
        out.push_back(v);
      }
    };
    for (const Index v : adj_var_[static_cast<std::size_t>(p)]) {
      visit(v);
    }
    for (const Index e : adj_elem_[static_cast<std::size_t>(p)]) {
      if (state_[static_cast<std::size_t>(e)] == State::kElement) {
        for (const Index v : elem_vars_[static_cast<std::size_t>(e)]) {
          visit(v);
        }
      }
    }
    return out;
  }

  void eliminate(Index p, std::vector<Index>& perm) {
    // Emit all original columns merged into supervariable p.
    for (const Index original : members_[static_cast<std::size_t>(p)]) {
      perm.push_back(original);
    }

    std::vector<Index> lp = neighbourhood(p);

    // Absorb the elements adjacent to p: their cliques are subsets of L_p.
    std::vector<Index> absorbed;
    for (const Index e : adj_elem_[static_cast<std::size_t>(p)]) {
      if (state_[static_cast<std::size_t>(e)] == State::kElement) {
        state_[static_cast<std::size_t>(e)] = State::kDead;
        absorbed.push_back(e);
        elem_vars_[static_cast<std::size_t>(e)].clear();
        elem_vars_[static_cast<std::size_t>(e)].shrink_to_fit();
      }
    }

    // p becomes an element.
    state_[static_cast<std::size_t>(p)] = State::kElement;
    elem_vars_[static_cast<std::size_t>(p)] = lp;
    adj_var_[static_cast<std::size_t>(p)].clear();
    adj_var_[static_cast<std::size_t>(p)].shrink_to_fit();
    adj_elem_[static_cast<std::size_t>(p)].clear();
    adj_elem_[static_cast<std::size_t>(p)].shrink_to_fit();

    // Weight of L_p (sum of supervariable sizes), for degree updates.
    Weight lp_weight = 0;
    for (const Index i : lp) {
      lp_weight += weight_[static_cast<std::size_t>(i)];
    }

    // One-pass |L_e \ L_p| computation (Amestoy–Davis–Duff): initialize
    // w[e] = |L_e| and subtract the weights of members also in L_p.
    std::vector<Index> touched_elems;
    if (options_.approximate_degree) {
      for (const Index i : lp) {
        for (const Index e : adj_elem_[static_cast<std::size_t>(i)]) {
          if (state_[static_cast<std::size_t>(e)] != State::kElement) {
            continue;
          }
          if (scratch_weight_[static_cast<std::size_t>(e)] < 0) {
            Weight total = 0;
            for (const Index v : elem_vars_[static_cast<std::size_t>(e)]) {
              if (state_[static_cast<std::size_t>(v)] == State::kAlive) {
                total += weight_[static_cast<std::size_t>(v)];
              }
            }
            scratch_weight_[static_cast<std::size_t>(e)] = total;
            touched_elems.push_back(e);
          }
          scratch_weight_[static_cast<std::size_t>(e)] -=
              weight_[static_cast<std::size_t>(i)];
        }
      }
    }

    // Pass 1: prune the lists of every member of L_p. The stamp marks L_p
    // membership; keep this pass free of neighbourhood() calls, which would
    // reuse the same marker array.
    ++stamp_;
    for (const Index i : lp) {
      mark_[static_cast<std::size_t>(i)] = stamp_;  // "in L_p"
    }
    for (const Index i : lp) {
      auto& vars = adj_var_[static_cast<std::size_t>(i)];
      // Drop dead/merged entries, p itself, and variable edges covered by
      // the new element (both endpoints in L_p).
      vars.erase(std::remove_if(vars.begin(), vars.end(),
                                [&](Index v) {
                                  return v == p ||
                                         state_[static_cast<std::size_t>(v)] !=
                                             State::kAlive ||
                                         mark_[static_cast<std::size_t>(v)] ==
                                             stamp_;
                                }),
                 vars.end());
      auto& elems = adj_elem_[static_cast<std::size_t>(i)];
      elems.erase(std::remove_if(elems.begin(), elems.end(),
                                 [&](Index e) {
                                   return state_[static_cast<std::size_t>(e)] !=
                                          State::kElement;
                                 }),
                  elems.end());
      elems.push_back(p);
    }

    // Pass 2: recompute degrees.
    for (const Index i : lp) {
      auto& vars = adj_var_[static_cast<std::size_t>(i)];
      auto& elems = adj_elem_[static_cast<std::size_t>(i)];
      if (options_.approximate_degree) {
        // d_i ≈ |L_p \ i| + Σ_e |L_e \ L_p| + |alive adj vars|, capped by
        // both n - eliminated and the exact-fill upper bound d_old + |L_p\i|.
        Weight d = lp_weight - weight_[static_cast<std::size_t>(i)];
        for (const Index v : vars) {
          d += weight_[static_cast<std::size_t>(v)];
        }
        for (const Index e : elems) {
          if (e != p && scratch_weight_[static_cast<std::size_t>(e)] > 0) {
            d += scratch_weight_[static_cast<std::size_t>(e)];
          }
        }
        const Weight cap = degree_[static_cast<std::size_t>(i)] + lp_weight -
                           weight_[static_cast<std::size_t>(i)];
        d = std::min(d, cap);
        set_degree(i, static_cast<Index>(std::min<Weight>(d, n_)));
      } else {
        // Exact degree: weight of the full fill neighbourhood.
        const std::vector<Index> nb = neighbourhood(i);
        Weight d = 0;
        for (const Index v : nb) {
          d += weight_[static_cast<std::size_t>(v)];
        }
        set_degree(i, static_cast<Index>(std::min<Weight>(d, n_)));
      }
    }

    for (const Index e : touched_elems) {
      scratch_weight_[static_cast<std::size_t>(e)] = -1;
    }

    if (options_.supervariables) {
      merge_indistinguishable(lp);
    }
  }

  void set_degree(Index v, Index d) {
    degree_[static_cast<std::size_t>(v)] = d;
    heap_.push({d, v});
  }

  /// Detects pairs in L_p with identical quotient-graph adjacency (they are
  /// indistinguishable and will be eliminated together) and merges them.
  void merge_indistinguishable(const std::vector<Index>& lp) {
    // Bucket by a cheap adjacency hash.
    std::vector<std::pair<std::uint64_t, Index>> buckets;
    buckets.reserve(lp.size());
    for (const Index i : lp) {
      if (state_[static_cast<std::size_t>(i)] != State::kAlive) {
        continue;
      }
      std::uint64_t h = 0;
      for (const Index v : adj_var_[static_cast<std::size_t>(i)]) {
        h += static_cast<std::uint64_t>(v) * 0x9e3779b97f4a7c15ULL;
      }
      for (const Index e : adj_elem_[static_cast<std::size_t>(i)]) {
        h += static_cast<std::uint64_t>(e) * 0xbf58476d1ce4e5b9ULL;
      }
      buckets.emplace_back(h, i);
    }
    std::sort(buckets.begin(), buckets.end());
    for (std::size_t b = 0; b < buckets.size();) {
      std::size_t e = b + 1;
      while (e < buckets.size() && buckets[e].first == buckets[b].first) {
        ++e;
      }
      // Pairwise-compare within a bucket (buckets are tiny in practice).
      for (std::size_t x = b; x < e; ++x) {
        const Index i = buckets[x].second;
        if (state_[static_cast<std::size_t>(i)] != State::kAlive) {
          continue;
        }
        for (std::size_t y = x + 1; y < e; ++y) {
          const Index j = buckets[y].second;
          if (state_[static_cast<std::size_t>(j)] != State::kAlive) {
            continue;
          }
          if (same_adjacency(i, j)) {
            absorb(i, j);
          }
        }
      }
      b = e;
    }
  }

  bool same_adjacency(Index i, Index j) {
    // Compare alive adjacency sets, ignoring the i-j edge itself.
    auto canon = [&](Index v, Index other) {
      std::vector<Index> vars;
      for (const Index w : adj_var_[static_cast<std::size_t>(v)]) {
        if (w != other && state_[static_cast<std::size_t>(w)] == State::kAlive) {
          vars.push_back(w);
        }
      }
      std::vector<Index> elems;
      for (const Index e : adj_elem_[static_cast<std::size_t>(v)]) {
        if (state_[static_cast<std::size_t>(e)] == State::kElement) {
          elems.push_back(e);
        }
      }
      std::sort(vars.begin(), vars.end());
      vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
      std::sort(elems.begin(), elems.end());
      elems.erase(std::unique(elems.begin(), elems.end()), elems.end());
      return std::make_pair(std::move(vars), std::move(elems));
    };
    return canon(i, j) == canon(j, i);
  }

  /// Merges supervariable j into i.
  void absorb(Index i, Index j) {
    state_[static_cast<std::size_t>(j)] = State::kMerged;
    weight_[static_cast<std::size_t>(i)] += weight_[static_cast<std::size_t>(j)];
    auto& mi = members_[static_cast<std::size_t>(i)];
    auto& mj = members_[static_cast<std::size_t>(j)];
    mi.insert(mi.end(), mj.begin(), mj.end());
    mj.clear();
    mj.shrink_to_fit();
    adj_var_[static_cast<std::size_t>(j)].clear();
    adj_elem_[static_cast<std::size_t>(j)].clear();
  }

  Index n_;
  MinDegreeOptions options_;
  std::vector<std::vector<Index>> adj_var_;
  std::vector<std::vector<Index>> adj_elem_;
  std::vector<std::vector<Index>> elem_vars_;
  std::vector<std::vector<Index>> members_;
  std::vector<Weight> weight_;
  std::vector<Index> degree_;
  std::vector<State> state_;
  std::vector<Index> mark_;
  Index stamp_ = 0;
  std::vector<Weight> scratch_weight_;

  struct HeapEntry {
    Index degree;
    Index node;
    bool operator>(const HeapEntry& other) const {
      return degree != other.degree ? degree > other.degree
                                    : node > other.node;
    }
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
};

}  // namespace

std::vector<Index> min_degree_order(const SparsePattern& a,
                                    const MinDegreeOptions& options) {
  TM_CHECK(a.is_square(), "min_degree_order: pattern must be square");
  if (a.cols() == 0) {
    return {};
  }
  MinDegreeSolver solver(a, options);
  return solver.solve();
}

}  // namespace treemem
