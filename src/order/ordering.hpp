// Fill-reducing orderings.
//
// The paper orders every matrix with MeTiS (nested dissection) and with
// Matlab's amd (minimum degree) before building elimination trees
// (Section VI-B). This module provides both families from scratch:
//   * min_degree_order  — quotient-graph minimum degree with element
//     absorption, supervariable merging and AMD-style approximate external
//     degrees (an AMD-class code);
//   * nested_dissection_order — recursive level-set bisection with
//     minimum-degree leaf ordering (a MeTiS-class morphology);
//   * rcm_order / natural_order / random_order — profile-style baselines.
//
// Convention: an ordering `perm` lists original indices in elimination
// order — perm[k] is the original column eliminated k-th (Matlab's
// A(p,p)). Use invert_permutation for old→new maps.
#pragma once

#include "sparse/pattern.hpp"
#include "support/prng.hpp"

namespace treemem {

/// Identity ordering.
std::vector<Index> natural_order(Index n);

/// Uniformly random ordering (baseline for fill studies).
std::vector<Index> random_order(Index n, Prng& prng);

/// Reverse Cuthill–McKee: BFS from a pseudo-peripheral vertex with
/// degree-sorted neighbour visits, reversed. Bandwidth/profile reducer.
/// `pattern` must be symmetric with full diagonal.
std::vector<Index> rcm_order(const SparsePattern& pattern);

/// Options for the minimum-degree ordering.
struct MinDegreeOptions {
  /// Detect indistinguishable supervariables by adjacency hashing.
  bool supervariables = true;
  /// Use AMD's approximate external degree (true) or exact recomputation
  /// from the quotient graph (false; slower, used for validation).
  bool approximate_degree = true;
};

/// Quotient-graph minimum-degree ordering (AMD-class).
std::vector<Index> min_degree_order(const SparsePattern& pattern,
                                    const MinDegreeOptions& options = {});

/// Options for nested dissection.
struct NestedDissectionOptions {
  /// Subgraphs at or below this size are ordered by minimum degree.
  Index leaf_size = 64;
};

/// Recursive bisection by BFS level-structure separators.
std::vector<Index> nested_dissection_order(
    const SparsePattern& pattern, const NestedDissectionOptions& options = {});

}  // namespace treemem
