#include <algorithm>
#include <numeric>

#include "order/ordering.hpp"

namespace treemem {

std::vector<Index> natural_order(Index n) {
  std::vector<Index> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), Index{0});
  return perm;
}

std::vector<Index> random_order(Index n, Prng& prng) {
  std::vector<Index> perm = natural_order(n);
  prng.shuffle(perm);
  return perm;
}

namespace {

/// Vertex degree excluding the diagonal.
Index off_degree(const SparsePattern& a, Index v) {
  Index d = static_cast<Index>(a.column(v).size());
  if (a.has_entry(v, v)) {
    --d;
  }
  return d;
}

/// BFS from `start` over unvisited vertices; returns vertices level by
/// level (appended to `out`) and the index of the last level's start.
struct LevelStructure {
  std::vector<Index> vertices;       // concatenated levels
  std::vector<std::size_t> level_ptr;  // offsets per level
};

LevelStructure bfs_levels(const SparsePattern& a, Index start,
                          const std::vector<char>& blocked) {
  LevelStructure ls;
  std::vector<char> seen(blocked.begin(), blocked.end());
  ls.vertices.push_back(start);
  seen[static_cast<std::size_t>(start)] = 1;
  ls.level_ptr.push_back(0);
  std::size_t level_begin = 0;
  while (level_begin < ls.vertices.size()) {
    const std::size_t level_end = ls.vertices.size();
    for (std::size_t k = level_begin; k < level_end; ++k) {
      for (const Index w : a.column(ls.vertices[k])) {
        if (!seen[static_cast<std::size_t>(w)]) {
          seen[static_cast<std::size_t>(w)] = 1;
          ls.vertices.push_back(w);
        }
      }
    }
    if (ls.vertices.size() == level_end) {
      break;  // no new level
    }
    ls.level_ptr.push_back(level_end);
    level_begin = level_end;
  }
  ls.level_ptr.push_back(ls.vertices.size());
  return ls;
}

/// A vertex of (approximately) maximal eccentricity in the component of
/// `start`: repeat BFS from the last level's min-degree vertex until the
/// eccentricity stops growing (George–Liu).
Index pseudo_peripheral(const SparsePattern& a, Index start,
                        const std::vector<char>& blocked) {
  Index v = start;
  std::size_t depth = 0;
  for (int round = 0; round < 8; ++round) {
    const LevelStructure ls = bfs_levels(a, v, blocked);
    const std::size_t levels = ls.level_ptr.size() - 1;
    if (levels <= depth) {
      break;
    }
    depth = levels;
    // Min-degree vertex of the last level.
    Index best = ls.vertices[ls.level_ptr[levels - 1]];
    for (std::size_t k = ls.level_ptr[levels - 1]; k < ls.level_ptr[levels]; ++k) {
      if (off_degree(a, ls.vertices[k]) < off_degree(a, best)) {
        best = ls.vertices[k];
      }
    }
    v = best;
  }
  return v;
}

}  // namespace

std::vector<Index> rcm_order(const SparsePattern& a) {
  TM_CHECK(a.is_square(), "rcm_order: pattern must be square");
  const Index n = a.cols();
  std::vector<Index> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  std::vector<Index> buffer;

  for (Index seed = 0; seed < n; ++seed) {
    if (visited[static_cast<std::size_t>(seed)]) {
      continue;
    }
    const std::vector<char> blocked(visited.begin(), visited.end());
    const Index start = pseudo_peripheral(a, seed, blocked);
    // Cuthill–McKee BFS with degree-sorted neighbour expansion.
    std::size_t head = order.size();
    order.push_back(start);
    visited[static_cast<std::size_t>(start)] = 1;
    while (head < order.size()) {
      const Index v = order[head++];
      buffer.clear();
      for (const Index w : a.column(v)) {
        if (!visited[static_cast<std::size_t>(w)]) {
          visited[static_cast<std::size_t>(w)] = 1;
          buffer.push_back(w);
        }
      }
      std::sort(buffer.begin(), buffer.end(), [&](Index x, Index y) {
        const Index dx = off_degree(a, x);
        const Index dy = off_degree(a, y);
        return dx != dy ? dx < dy : x < y;
      });
      order.insert(order.end(), buffer.begin(), buffer.end());
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<Index> nested_dissection_order(
    const SparsePattern& a, const NestedDissectionOptions& options) {
  TM_CHECK(a.is_square(), "nested_dissection_order: pattern must be square");
  TM_CHECK(options.leaf_size >= 1, "nested_dissection_order: bad leaf size");
  const Index n = a.cols();
  std::vector<Index> perm;
  perm.reserve(static_cast<std::size_t>(n));

  // `assigned` marks vertices already placed in the output (or pending in a
  // separator of an enclosing level — those are blocked for the recursion).
  std::vector<char> blocked(static_cast<std::size_t>(n), 0);

  // Explicit recursion: each frame owns a vertex subset. Separator vertices
  // are emitted after both halves, giving elimination order part,part,sep.
  struct Frame {
    std::vector<Index> vertices;
    std::vector<Index> separator;  // emitted when the frame finishes
    bool expanded = false;
  };
  std::vector<Frame> stack;

  // Seed one frame per connected component-ish region: just one frame with
  // all vertices; BFS inside handles disconnection.
  {
    Frame top;
    top.vertices.resize(static_cast<std::size_t>(n));
    std::iota(top.vertices.begin(), top.vertices.end(), Index{0});
    stack.push_back(std::move(top));
  }

  std::vector<char> in_subset(static_cast<std::size_t>(n), 0);

  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.expanded) {
      // Children done; emit the separator (min-degree order within it would
      // need a quotient graph — natural order is standard for level-set ND).
      perm.insert(perm.end(), frame.separator.begin(), frame.separator.end());
      stack.pop_back();
      continue;
    }
    frame.expanded = true;

    if (frame.vertices.empty()) {
      stack.pop_back();
      continue;
    }
    if (static_cast<Index>(frame.vertices.size()) <= options.leaf_size) {
      // Order the leaf subgraph by minimum degree for quality.
      // Build the induced subpattern.
      std::vector<Index> local_of(static_cast<std::size_t>(n), -1);
      for (std::size_t k = 0; k < frame.vertices.size(); ++k) {
        local_of[static_cast<std::size_t>(frame.vertices[k])] =
            static_cast<Index>(k);
      }
      std::vector<std::pair<Index, Index>> entries;
      for (const Index v : frame.vertices) {
        const Index lv = local_of[static_cast<std::size_t>(v)];
        entries.emplace_back(lv, lv);
        for (const Index w : a.column(v)) {
          const Index lw = local_of[static_cast<std::size_t>(w)];
          if (lw >= 0) {
            entries.emplace_back(lw, lv);
          }
        }
      }
      const SparsePattern sub = SparsePattern::from_coo(
          static_cast<Index>(frame.vertices.size()),
          static_cast<Index>(frame.vertices.size()), std::move(entries));
      const std::vector<Index> local = min_degree_order(sub);
      const std::vector<Index> vertices = frame.vertices;  // frame may move
      for (const Index lk : local) {
        perm.push_back(vertices[static_cast<std::size_t>(lk)]);
      }
      stack.pop_back();
      continue;
    }

    // Find a separator: BFS level structure from a pseudo-peripheral vertex
    // of the (largest piece of the) subset, cut at the median level.
    for (const Index v : frame.vertices) {
      in_subset[static_cast<std::size_t>(v)] = 1;
    }
    std::vector<char> sub_blocked(static_cast<std::size_t>(n), 1);
    for (const Index v : frame.vertices) {
      sub_blocked[static_cast<std::size_t>(v)] = 0;
    }
    const Index start = pseudo_peripheral(a, frame.vertices.front(), sub_blocked);
    const LevelStructure ls = bfs_levels(a, start, sub_blocked);
    const std::size_t levels = ls.level_ptr.size() - 1;

    std::vector<Index> separator;
    std::vector<Index> below;
    std::vector<Index> above;
    if (levels <= 2 || ls.vertices.size() < frame.vertices.size()) {
      // Disconnected subset or too-shallow structure: peel the reached
      // piece off as "below", the rest as "above", no separator.
      std::vector<char> reached(static_cast<std::size_t>(n), 0);
      for (const Index v : ls.vertices) {
        reached[static_cast<std::size_t>(v)] = 1;
      }
      if (ls.vertices.size() < frame.vertices.size()) {
        below = ls.vertices;
        for (const Index v : frame.vertices) {
          if (!reached[static_cast<std::size_t>(v)]) {
            above.push_back(v);
          }
        }
      } else {
        // Connected but shallow: fall back to min-degree on the whole
        // subset by shrinking the leaf threshold locally.
        std::vector<Index> local_of(static_cast<std::size_t>(n), -1);
        for (std::size_t k = 0; k < frame.vertices.size(); ++k) {
          local_of[static_cast<std::size_t>(frame.vertices[k])] =
              static_cast<Index>(k);
        }
        std::vector<std::pair<Index, Index>> entries;
        for (const Index v : frame.vertices) {
          const Index lv = local_of[static_cast<std::size_t>(v)];
          entries.emplace_back(lv, lv);
          for (const Index w : a.column(v)) {
            const Index lw = local_of[static_cast<std::size_t>(w)];
            if (lw >= 0) {
              entries.emplace_back(lw, lv);
            }
          }
        }
        const SparsePattern sub = SparsePattern::from_coo(
            static_cast<Index>(frame.vertices.size()),
            static_cast<Index>(frame.vertices.size()), std::move(entries));
        const std::vector<Index> local = min_degree_order(sub);
        const std::vector<Index> vertices = frame.vertices;
        for (const Index lk : local) {
          perm.push_back(vertices[static_cast<std::size_t>(lk)]);
        }
        for (const Index v : vertices) {
          in_subset[static_cast<std::size_t>(v)] = 0;
        }
        stack.pop_back();
        continue;
      }
    } else {
      // Median level becomes the separator.
      std::size_t mid = 1;
      const std::size_t half = ls.vertices.size() / 2;
      while (mid + 1 < levels && ls.level_ptr[mid + 1] < half) {
        ++mid;
      }
      std::vector<char> role(static_cast<std::size_t>(n), 0);  // 1=sep
      for (std::size_t k = ls.level_ptr[mid]; k < ls.level_ptr[mid + 1]; ++k) {
        role[static_cast<std::size_t>(ls.vertices[k])] = 1;
        separator.push_back(ls.vertices[k]);
      }
      for (std::size_t k = 0; k < ls.level_ptr[mid]; ++k) {
        below.push_back(ls.vertices[k]);
      }
      for (std::size_t k = ls.level_ptr[mid + 1]; k < ls.vertices.size(); ++k) {
        above.push_back(ls.vertices[k]);
      }
    }

    for (const Index v : frame.vertices) {
      in_subset[static_cast<std::size_t>(v)] = 0;
    }
    frame.separator = std::move(separator);
    // Push halves; they complete before the separator is emitted.
    Frame lo;
    lo.vertices = std::move(below);
    Frame hi;
    hi.vertices = std::move(above);
    stack.push_back(std::move(lo));
    stack.push_back(std::move(hi));
  }

  check_permutation(perm, n);
  return perm;
}

}  // namespace treemem
