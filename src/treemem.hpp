// Umbrella header: the whole treemem public API.
//
// treemem reproduces "On Optimal Tree Traversals for Sparse Matrix
// Factorization" (Jacquelin, Marchal, Robert, Uçar; IPDPS 2011): memory-
// optimal traversals of task trees (MinMemory), I/O-minimizing out-of-core
// schedules (MinIO), and the complete sparse-factorization substrate the
// paper's evaluation rests on. See README.md for a guided tour.
#pragma once

// The task-tree model and generators.
#include "tree/generators.hpp"
#include "tree/tree.hpp"
#include "tree/tree_io.hpp"

// The paper's algorithms.
#include "core/brute_force.hpp"
#include "core/check.hpp"
#include "core/liu.hpp"
#include "core/minio.hpp"
#include "core/minio_exact.hpp"
#include "core/minmem.hpp"
#include "core/in_tree.hpp"
#include "core/pebble.hpp"
#include "core/planner.hpp"
#include "core/postorder.hpp"
#include "core/trace.hpp"
#include "core/traversal.hpp"
#include "core/variants.hpp"

// Sparse-matrix substrate.
#include "order/ordering.hpp"
#include "sparse/generators.hpp"
#include "sparse/matrix.hpp"
#include "sparse/mm_io.hpp"
#include "sparse/pattern.hpp"
#include "symbolic/assembly_tree.hpp"
#include "symbolic/symbolic.hpp"

// Dense front kernels behind the numeric engine.
#include "dense/front_kernel.hpp"

// Numerical multifrontal engine.
#include "multifrontal/disk_model.hpp"
#include "multifrontal/numeric.hpp"
#include "multifrontal/numeric_parallel.hpp"
#include "multifrontal/out_of_core.hpp"

// Parallel scheduling and execution (future-work direction of the paper).
#include "parallel/executor.hpp"
#include "parallel/parallel_sim.hpp"
#include "parallel/schedule_core.hpp"
#include "parallel/worker_pool.hpp"

// The phased solver facade (analyze → plan → factorize → solve) — the
// recommended entry point; everything below it stays exported for the
// paper-reproduction benches. The service layer on top shares symbolic
// state across tenants (symbolic_cache) and serves concurrent requests
// from a worker pool (solver_pool).
#include "solver/numeric_cache.hpp"
#include "solver/solver.hpp"
#include "solver/solver_pool.hpp"
#include "solver/symbolic_cache.hpp"
#include "solver/symbolic_store.hpp"

// Observability: low-overhead tracing (Chrome trace_event timelines) and
// the process-wide metrics registry (Prometheus-style exposition).
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

// Experiment layer.
#include "perf/corpus.hpp"
#include "perf/profile.hpp"
#include "perf/traffic.hpp"

// Support layer: strictly-parsed TREEMEM_* environment overrides, seeded
// PRNG, CSV/table reporting, wall-clock timing, parallel loops.
#include "support/csv.hpp"
#include "support/env.hpp"
#include "support/parallel_for.hpp"
#include "support/prng.hpp"
#include "support/text_table.hpp"
#include "support/timer.hpp"
