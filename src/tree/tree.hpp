// The task-tree model of Section III of the paper.
//
// A Tree is a rooted out-tree of p tasks. Task i carries
//   * an input file of size  f_i  — produced by its parent (or fed from the
//     outside world for the root),
//   * an execution file of size n_i — resident only while i executes.
// Executing i consumes f_i and n_i and materializes the input files of all
// children of i, so the transient memory demand of i alone is
//   MemReq(i) = f_i + n_i + sum_{j in children(i)} f_j.          (Eq. 1)
//
// The same object doubles as an in-tree (leaves-to-root processing, the
// multifrontal direction): f_i is then the file i sends *to* its parent.
// Section III-C of the paper shows a traversal is valid for the in-tree
// reading iff its reverse is valid for the out-tree reading, with identical
// memory peaks; core/variants.hpp exposes that duality.
//
// n_i may be negative: the transforms of Figs. 1 and 2 (replacement model,
// Liu's model) map onto this representation with negative execution files.
// The library enforces the invariant f_i + n_i >= 0, which both transforms
// satisfy and which guarantees that between-step resident memory never
// exceeds the adjacent transient peaks (so peaks alone determine
// feasibility).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "support/check.hpp"

namespace treemem {

/// Node identifier; nodes are numbered 0..p-1.
using NodeId = std::int32_t;

/// File / memory sizes. Signed 64-bit: transformed models use negative n_i,
/// and corpus instances reach sums around 1e13 — far from overflow.
using Weight = std::int64_t;

/// Sentinel for "no node" (the root's parent).
inline constexpr NodeId kNoNode = -1;

/// "Infinite" weight: large enough to dominate any real memory value, small
/// enough that a few additions cannot overflow.
inline constexpr Weight kInfiniteWeight = std::numeric_limits<Weight>::max() / 4;

class Tree {
 public:
  Tree() = default;

  /// Builds a tree from a parent array. Exactly one entry must be kNoNode
  /// (the root); all others must reference valid nodes and form no cycle.
  /// `file` holds f_i, `work` holds n_i. Throws treemem::Error on malformed
  /// input (including f_i < 0 or f_i + n_i < 0).
  Tree(std::vector<NodeId> parent, std::vector<Weight> file,
       std::vector<Weight> work);

  /// Number of nodes p.
  NodeId size() const { return static_cast<NodeId>(parent_.size()); }
  bool empty() const { return parent_.empty(); }

  NodeId root() const { return root_; }
  NodeId parent(NodeId i) const { return parent_[check_id(i)]; }
  bool is_leaf(NodeId i) const { return num_children(i) == 0; }

  /// f_i: size of the input file of node i.
  Weight file_size(NodeId i) const { return file_[check_id(i)]; }
  /// n_i: size of the execution file of node i (may be negative, see above).
  Weight work_size(NodeId i) const { return work_[check_id(i)]; }

  /// Children of i, in insertion (construction) order.
  std::span<const NodeId> children(NodeId i) const {
    const auto id = check_id(i);
    return {child_list_.data() + child_ptr_[id],
            child_list_.data() + child_ptr_[id + 1]};
  }
  NodeId num_children(NodeId i) const {
    const auto id = check_id(i);
    return static_cast<NodeId>(child_ptr_[id + 1] - child_ptr_[id]);
  }

  /// Sum of the children input files of i.
  Weight child_file_sum(NodeId i) const { return child_file_sum_[check_id(i)]; }

  /// MemReq(i) = f_i + n_i + sum of children files (Equation 1).
  Weight mem_req(NodeId i) const {
    const auto id = check_id(i);
    return file_[id] + work_[id] + child_file_sum_[id];
  }

  /// max_i MemReq(i): the trivial lower bound on any in-core memory budget.
  Weight max_mem_req() const { return max_mem_req_; }

  /// Nodes in breadth-first order from the root; every parent precedes its
  /// children. The reverse is a valid bottom-up order. Computed once at
  /// construction, used by all iterative (non-recursive) tree algorithms.
  const std::vector<NodeId>& top_down_order() const { return bfs_order_; }

  /// Direct access to the underlying arrays (bulk consumers: serialization,
  /// transforms, benchmarks).
  const std::vector<NodeId>& parents() const { return parent_; }
  const std::vector<Weight>& files() const { return file_; }
  const std::vector<Weight>& works() const { return work_; }

 private:
  NodeId check_id(NodeId i) const {
    TM_CHECK(i >= 0 && i < size(), "node id " << i << " out of range [0,"
                                              << size() << ")");
    return i;
  }

  std::vector<NodeId> parent_;
  std::vector<Weight> file_;
  std::vector<Weight> work_;
  std::vector<std::int64_t> child_ptr_;  // size p+1, CSR offsets
  std::vector<NodeId> child_list_;       // size p-1
  std::vector<Weight> child_file_sum_;
  std::vector<NodeId> bfs_order_;
  NodeId root_ = kNoNode;
  Weight max_mem_req_ = 0;
};

/// Incremental tree construction: add the root first, then children in any
/// order consistent with "parent exists before child".
class TreeBuilder {
 public:
  /// Adds the root; must be called exactly once, first. Returns its id (0).
  NodeId add_root(Weight file, Weight work);

  /// Adds a child of `parent`; returns the new node id.
  NodeId add_child(NodeId parent, Weight file, Weight work);

  /// Re-weights an already added node (used by generators that fix up
  /// weights after shaping the structure).
  void set_weights(NodeId node, Weight file, Weight work);

  NodeId size() const { return static_cast<NodeId>(parent_.size()); }

  /// Finalizes into an immutable Tree (validates everything).
  Tree build() &&;

 private:
  std::vector<NodeId> parent_;
  std::vector<Weight> file_;
  std::vector<Weight> work_;
};

/// Structural + weight statistics used by experiment reports.
struct TreeStats {
  NodeId nodes = 0;
  NodeId leaves = 0;
  NodeId height = 0;        ///< edges on the longest root-to-leaf path
  NodeId max_degree = 0;    ///< maximum child count
  Weight max_mem_req = 0;
  Weight total_file = 0;
  Weight total_work = 0;
};

TreeStats compute_stats(const Tree& tree);

/// Depth of every node (root = 0), computed iteratively.
std::vector<NodeId> node_depths(const Tree& tree);

/// Size of the subtree rooted at every node (node itself included).
std::vector<NodeId> subtree_sizes(const Tree& tree);

/// All leaves, in node-id order.
std::vector<NodeId> leaf_nodes(const Tree& tree);

}  // namespace treemem
