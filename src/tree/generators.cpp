#include "tree/generators.hpp"

#include <algorithm>
#include <numeric>

namespace treemem::gen {

Tree chain(NodeId p, Weight file, Weight work) {
  TM_CHECK(p >= 1, "chain: need at least one node");
  TreeBuilder builder;
  NodeId prev = builder.add_root(file, work);
  for (NodeId i = 1; i < p; ++i) {
    prev = builder.add_child(prev, file, work);
  }
  return std::move(builder).build();
}

Tree star(NodeId branches, Weight leaf_file, Weight work) {
  TM_CHECK(branches >= 0, "star: negative branch count");
  TreeBuilder builder;
  const NodeId root = builder.add_root(0, work);
  for (NodeId b = 0; b < branches; ++b) {
    builder.add_child(root, leaf_file, work);
  }
  return std::move(builder).build();
}

Tree complete_kary(NodeId arity, NodeId levels, Weight file, Weight work) {
  TM_CHECK(arity >= 1, "complete_kary: arity must be >= 1");
  TM_CHECK(levels >= 1, "complete_kary: need at least one level");
  TreeBuilder builder;
  std::vector<NodeId> frontier{builder.add_root(file, work)};
  for (NodeId level = 1; level < levels; ++level) {
    std::vector<NodeId> next;
    next.reserve(frontier.size() * static_cast<std::size_t>(arity));
    for (const NodeId u : frontier) {
      for (NodeId k = 0; k < arity; ++k) {
        next.push_back(builder.add_child(u, file, work));
      }
    }
    frontier = std::move(next);
  }
  return std::move(builder).build();
}

Tree caterpillar(NodeId spine, NodeId legs, Weight spine_file,
                 Weight leg_file, Weight work) {
  TM_CHECK(spine >= 1, "caterpillar: need at least one spine node");
  TM_CHECK(legs >= 0, "caterpillar: negative leg count");
  TreeBuilder builder;
  NodeId prev = builder.add_root(spine_file, work);
  for (NodeId s = 0; s < spine; ++s) {
    for (NodeId l = 0; l < legs; ++l) {
      builder.add_child(prev, leg_file, work);
    }
    if (s + 1 < spine) {
      prev = builder.add_child(prev, spine_file, work);
    }
  }
  return std::move(builder).build();
}

Tree harpoon(NodeId branches, Weight big, Weight eps) {
  return iterated_harpoon(branches, 1, big, eps);
}

Tree iterated_harpoon(NodeId branches, NodeId levels, Weight big, Weight eps) {
  TM_CHECK(branches >= 2, "harpoon: need at least two branches");
  TM_CHECK(levels >= 1, "harpoon: need at least one level");
  TM_CHECK(big > 0 && eps > 0, "harpoon: sizes must be positive");
  TM_CHECK(big % branches == 0,
           "harpoon: big=" << big << " must be divisible by branches="
                           << branches);
  // Each level grows, below every attachment point, b branches
  //   u (f = big/b)  ->  v (f = eps)  ->  { w (f = big, leaf),
  //                                         next-level root (f = eps) }.
  // Keeping the heavy leaf w as a *sibling* of the nested copy is what
  // makes the construction work: a postorder descending into a branch must
  // hold the other (b-1) files of size big/b across every level, while the
  // optimal traversal first drains all u's of a level (holding only eps
  // files) and consumes each heavy leaf immediately after its v. The
  // next-level link file must itself cost eps — a free link would let the
  // optimal traversal defer whole sub-harpoons at no cost and the per-level
  // (b-1)*eps term of Theorem 1 would vanish.
  TreeBuilder builder;
  std::vector<NodeId> frontier{builder.add_root(0, 0)};
  const Weight slice = big / branches;
  for (NodeId level = 1; level <= levels; ++level) {
    std::vector<NodeId> next_frontier;
    for (const NodeId attach : frontier) {
      for (NodeId b = 0; b < branches; ++b) {
        const NodeId u = builder.add_child(attach, slice, 0);
        const NodeId v = builder.add_child(u, eps, 0);
        builder.add_child(v, big, 0);  // heavy leaf w
        if (level < levels) {
          next_frontier.push_back(builder.add_child(v, eps, 0));
        }
      }
    }
    frontier = std::move(next_frontier);
  }
  return std::move(builder).build();
}

Tree two_partition_gadget(const std::vector<Weight>& values) {
  TM_CHECK(!values.empty(), "2-partition gadget: empty instance");
  Weight sum = 0;
  for (const Weight a : values) {
    TM_CHECK(a > 0, "2-partition gadget: values must be positive, got " << a);
    sum += a;
  }
  TM_CHECK(sum % 2 == 0,
           "2-partition gadget: sum " << sum << " must be even");

  TreeBuilder builder;
  const NodeId root = builder.add_root(0, 0);  // T_in
  for (const Weight a : values) {
    const NodeId ti = builder.add_child(root, a, 0);  // T_i
    builder.add_child(ti, sum, 0);                    // Tout_i
  }
  const NodeId tbig = builder.add_child(root, sum, 0);  // T_big
  builder.add_child(tbig, sum / 2, 0);                  // Tout_big
  return std::move(builder).build();
}

Weight two_partition_gadget_memory(const std::vector<Weight>& values) {
  const Weight sum = std::accumulate(values.begin(), values.end(), Weight{0});
  return 2 * sum;
}

Weight two_partition_gadget_io_bound(const std::vector<Weight>& values) {
  const Weight sum = std::accumulate(values.begin(), values.end(), Weight{0});
  return sum / 2;
}

Tree random_tree(NodeId p, const RandomTreeOptions& options, Prng& prng) {
  TM_CHECK(p >= 1, "random_tree: need at least one node");
  TM_CHECK(options.min_file >= 0 && options.min_file <= options.max_file,
           "random_tree: bad file range");
  TM_CHECK(options.min_work <= options.max_work, "random_tree: bad work range");
  TM_CHECK(options.chain_bias >= 0.0 && options.chain_bias <= 1.0,
           "random_tree: chain_bias must be in [0,1]");

  std::vector<NodeId> parent(static_cast<std::size_t>(p), kNoNode);
  std::vector<Weight> file(static_cast<std::size_t>(p), 0);
  std::vector<Weight> work(static_cast<std::size_t>(p), 0);
  for (NodeId i = 1; i < p; ++i) {
    NodeId par;
    if (prng.bernoulli(options.chain_bias)) {
      par = i - 1;
    } else {
      par = static_cast<NodeId>(prng.uniform_int(0, i - 1));
    }
    parent[static_cast<std::size_t>(i)] = par;
    file[static_cast<std::size_t>(i)] =
        prng.uniform_int(options.min_file, options.max_file);
  }
  for (NodeId i = 0; i < p; ++i) {
    work[static_cast<std::size_t>(i)] =
        prng.uniform_int(options.min_work, options.max_work);
  }
  return Tree(std::move(parent), std::move(file), std::move(work));
}

Tree with_random_weights(const Tree& tree, Weight min_file, Weight max_file,
                         Weight min_work, Weight max_work, Prng& prng) {
  TM_CHECK(min_file >= 0 && min_file <= max_file,
           "with_random_weights: bad file range");
  TM_CHECK(min_work <= max_work, "with_random_weights: bad work range");
  std::vector<NodeId> parent = tree.parents();
  std::vector<Weight> file(parent.size(), 0);
  std::vector<Weight> work(parent.size(), 0);
  for (std::size_t i = 0; i < parent.size(); ++i) {
    if (static_cast<NodeId>(i) != tree.root()) {
      file[i] = prng.uniform_int(min_file, max_file);
    }
    work[i] = prng.uniform_int(min_work, max_work);
  }
  return Tree(std::move(parent), std::move(file), std::move(work));
}

Tree with_random_paper_weights(const Tree& tree, Prng& prng) {
  const Weight p = tree.size();
  const Weight max_work = std::max<Weight>(1, p / 500);
  return with_random_weights(tree, 1, std::max<Weight>(1, p), 1, max_work,
                             prng);
}

}  // namespace treemem::gen
