#include "tree/tree.hpp"

#include <algorithm>
#include <numeric>

namespace treemem {

Tree::Tree(std::vector<NodeId> parent, std::vector<Weight> file,
           std::vector<Weight> work)
    : parent_(std::move(parent)),
      file_(std::move(file)),
      work_(std::move(work)) {
  const std::size_t p = parent_.size();
  TM_CHECK(p > 0, "tree must have at least one node");
  TM_CHECK(file_.size() == p && work_.size() == p,
           "array sizes disagree: parent=" << p << " file=" << file_.size()
                                           << " work=" << work_.size());
  TM_CHECK(p <= static_cast<std::size_t>(std::numeric_limits<NodeId>::max()),
           "tree too large for 32-bit node ids: " << p);

  // Locate the root and validate parent references.
  root_ = kNoNode;
  for (std::size_t i = 0; i < p; ++i) {
    const NodeId par = parent_[i];
    if (par == kNoNode) {
      TM_CHECK(root_ == kNoNode,
               "multiple roots: nodes " << root_ << " and " << i);
      root_ = static_cast<NodeId>(i);
    } else {
      TM_CHECK(par >= 0 && static_cast<std::size_t>(par) < p,
               "node " << i << " has out-of-range parent " << par);
      TM_CHECK(par != static_cast<NodeId>(i), "node " << i << " is its own parent");
    }
  }
  TM_CHECK(root_ != kNoNode, "tree has no root (no kNoNode parent entry)");

  // Validate weights.
  for (std::size_t i = 0; i < p; ++i) {
    TM_CHECK(file_[i] >= 0,
             "node " << i << " has negative input file size " << file_[i]);
    TM_CHECK(file_[i] + work_[i] >= 0,
             "node " << i << " violates f+n >= 0: f=" << file_[i]
                     << " n=" << work_[i]);
  }

  // Children CSR.
  child_ptr_.assign(p + 1, 0);
  for (std::size_t i = 0; i < p; ++i) {
    if (parent_[i] != kNoNode) {
      ++child_ptr_[static_cast<std::size_t>(parent_[i]) + 1];
    }
  }
  std::partial_sum(child_ptr_.begin(), child_ptr_.end(), child_ptr_.begin());
  child_list_.resize(p - 1);
  {
    std::vector<std::int64_t> cursor(child_ptr_.begin(), child_ptr_.end() - 1);
    for (std::size_t i = 0; i < p; ++i) {
      const NodeId par = parent_[i];
      if (par != kNoNode) {
        child_list_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(par)]++)] =
            static_cast<NodeId>(i);
      }
    }
  }

  // BFS from the root; also detects disconnected components / cycles
  // (any node not reached from the root).
  bfs_order_.clear();
  bfs_order_.reserve(p);
  bfs_order_.push_back(root_);
  for (std::size_t head = 0; head < bfs_order_.size(); ++head) {
    const NodeId u = bfs_order_[head];
    const auto begin = child_ptr_[static_cast<std::size_t>(u)];
    const auto end = child_ptr_[static_cast<std::size_t>(u) + 1];
    for (std::int64_t k = begin; k < end; ++k) {
      bfs_order_.push_back(child_list_[static_cast<std::size_t>(k)]);
    }
  }
  TM_CHECK(bfs_order_.size() == p,
           "tree is not connected: reached " << bfs_order_.size() << " of "
                                             << p << " nodes from the root");

  // Derived quantities.
  child_file_sum_.assign(p, 0);
  for (std::size_t i = 0; i < p; ++i) {
    const NodeId par = parent_[i];
    if (par != kNoNode) {
      child_file_sum_[static_cast<std::size_t>(par)] += file_[i];
    }
  }
  max_mem_req_ = std::numeric_limits<Weight>::min();
  for (NodeId i = 0; i < static_cast<NodeId>(p); ++i) {
    max_mem_req_ = std::max(max_mem_req_, mem_req(i));
  }
}

NodeId TreeBuilder::add_root(Weight file, Weight work) {
  TM_CHECK(parent_.empty(), "add_root must be the first node added");
  parent_.push_back(kNoNode);
  file_.push_back(file);
  work_.push_back(work);
  return 0;
}

NodeId TreeBuilder::add_child(NodeId parent, Weight file, Weight work) {
  TM_CHECK(!parent_.empty(), "add the root before adding children");
  TM_CHECK(parent >= 0 && parent < size(),
           "add_child: parent " << parent << " does not exist yet");
  parent_.push_back(parent);
  file_.push_back(file);
  work_.push_back(work);
  return static_cast<NodeId>(parent_.size() - 1);
}

void TreeBuilder::set_weights(NodeId node, Weight file, Weight work) {
  TM_CHECK(node >= 0 && node < size(), "set_weights: bad node " << node);
  file_[static_cast<std::size_t>(node)] = file;
  work_[static_cast<std::size_t>(node)] = work;
}

Tree TreeBuilder::build() && {
  return Tree(std::move(parent_), std::move(file_), std::move(work_));
}

TreeStats compute_stats(const Tree& tree) {
  TreeStats stats;
  stats.nodes = tree.size();
  stats.max_mem_req = tree.max_mem_req();
  const auto depths = node_depths(tree);
  for (NodeId i = 0; i < tree.size(); ++i) {
    if (tree.is_leaf(i)) {
      ++stats.leaves;
    }
    stats.height = std::max(stats.height, depths[static_cast<std::size_t>(i)]);
    stats.max_degree = std::max(stats.max_degree, tree.num_children(i));
    stats.total_file += tree.file_size(i);
    stats.total_work += tree.work_size(i);
  }
  return stats;
}

std::vector<NodeId> node_depths(const Tree& tree) {
  std::vector<NodeId> depth(static_cast<std::size_t>(tree.size()), 0);
  for (const NodeId u : tree.top_down_order()) {
    if (u != tree.root()) {
      depth[static_cast<std::size_t>(u)] =
          depth[static_cast<std::size_t>(tree.parent(u))] + 1;
    }
  }
  return depth;
}

std::vector<NodeId> subtree_sizes(const Tree& tree) {
  std::vector<NodeId> size(static_cast<std::size_t>(tree.size()), 1);
  const auto& order = tree.top_down_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId u = *it;
    if (u != tree.root()) {
      size[static_cast<std::size_t>(tree.parent(u))] +=
          size[static_cast<std::size_t>(u)];
    }
  }
  return size;
}

std::vector<NodeId> leaf_nodes(const Tree& tree) {
  std::vector<NodeId> leaves;
  for (NodeId i = 0; i < tree.size(); ++i) {
    if (tree.is_leaf(i)) {
      leaves.push_back(i);
    }
  }
  return leaves;
}

}  // namespace treemem
