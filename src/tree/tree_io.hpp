// Text serialization of task trees.
//
// Format (one tree per stream):
//   # comment lines allowed anywhere before the header
//   treemem-tree 1 <p>
//   <parent_0> <f_0> <n_0>
//   ...                        (p lines; parent of the root is -1)
//
// A DOT exporter is provided for visual inspection of small instances.
#pragma once

#include <iosfwd>
#include <string>

#include "tree/tree.hpp"

namespace treemem {

/// Writes `tree` in the treemem-tree text format.
void write_tree(std::ostream& out, const Tree& tree);
std::string tree_to_string(const Tree& tree);

/// Parses a tree; throws treemem::Error on malformed input.
Tree read_tree(std::istream& in);
Tree tree_from_string(const std::string& text);

/// Saves / loads a tree to a file path.
void save_tree(const std::string& path, const Tree& tree);
Tree load_tree(const std::string& path);

/// Graphviz DOT rendering; node labels show "id\nf=..,n=..".
std::string tree_to_dot(const Tree& tree);

}  // namespace treemem
