#include "tree/tree_io.hpp"

#include <fstream>
#include <sstream>

#include "support/check.hpp"

namespace treemem {

void write_tree(std::ostream& out, const Tree& tree) {
  out << "treemem-tree 1 " << tree.size() << "\n";
  for (NodeId i = 0; i < tree.size(); ++i) {
    out << tree.parent(i) << ' ' << tree.file_size(i) << ' '
        << tree.work_size(i) << "\n";
  }
}

std::string tree_to_string(const Tree& tree) {
  std::ostringstream oss;
  write_tree(oss, tree);
  return oss.str();
}

Tree read_tree(std::istream& in) {
  std::string token;
  // Skip comment lines.
  while (in >> token) {
    if (token.size() >= 1 && token[0] == '#') {
      std::string rest;
      std::getline(in, rest);
      continue;
    }
    break;
  }
  TM_CHECK(token == "treemem-tree",
           "bad tree header token: '" << token << "'");
  int version = 0;
  std::int64_t p = 0;
  TM_CHECK(static_cast<bool>(in >> version >> p), "truncated tree header");
  TM_CHECK(version == 1, "unsupported tree format version " << version);
  TM_CHECK(p >= 1, "tree node count must be positive, got " << p);

  std::vector<NodeId> parent(static_cast<std::size_t>(p));
  std::vector<Weight> file(static_cast<std::size_t>(p));
  std::vector<Weight> work(static_cast<std::size_t>(p));
  for (std::int64_t i = 0; i < p; ++i) {
    std::int64_t par = 0;
    TM_CHECK(static_cast<bool>(in >> par >> file[static_cast<std::size_t>(i)] >>
                               work[static_cast<std::size_t>(i)]),
             "truncated tree body at node " << i);
    parent[static_cast<std::size_t>(i)] = static_cast<NodeId>(par);
  }
  return Tree(std::move(parent), std::move(file), std::move(work));
}

Tree tree_from_string(const std::string& text) {
  std::istringstream iss(text);
  return read_tree(iss);
}

void save_tree(const std::string& path, const Tree& tree) {
  std::ofstream out(path);
  TM_CHECK(out.good(), "cannot open " << path << " for writing");
  write_tree(out, tree);
  TM_CHECK(out.good(), "write to " << path << " failed");
}

Tree load_tree(const std::string& path) {
  std::ifstream in(path);
  TM_CHECK(in.good(), "cannot open " << path << " for reading");
  return read_tree(in);
}

std::string tree_to_dot(const Tree& tree) {
  std::ostringstream oss;
  oss << "digraph tree {\n  node [shape=box];\n";
  for (NodeId i = 0; i < tree.size(); ++i) {
    oss << "  n" << i << " [label=\"" << i << "\\nf=" << tree.file_size(i)
        << " n=" << tree.work_size(i) << "\"];\n";
  }
  for (NodeId i = 0; i < tree.size(); ++i) {
    if (tree.parent(i) != kNoNode) {
      oss << "  n" << tree.parent(i) << " -> n" << i << ";\n";
    }
  }
  oss << "}\n";
  return oss.str();
}

}  // namespace treemem
