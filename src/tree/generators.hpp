// Synthetic tree families.
//
// These cover (a) the adversarial constructions of the paper — the harpoon
// graph of Fig. 3 / Theorem 1 and the 2-Partition gadget of Fig. 4 /
// Theorem 2 — and (b) generic random/structured families used by tests and
// by the random-weight experiment of Section VI-E.
#pragma once

#include <cstdint>
#include <vector>

#include "support/prng.hpp"
#include "tree/tree.hpp"

namespace treemem::gen {

/// A chain of `p` nodes rooted at node 0; every node has input file `file`
/// and execution file `work`.
Tree chain(NodeId p, Weight file, Weight work);

/// A root with `branches` leaf children (out-tree star).
Tree star(NodeId branches, Weight leaf_file, Weight work);

/// Complete k-ary tree with `levels` levels (levels >= 1; one node when 1).
Tree complete_kary(NodeId arity, NodeId levels, Weight file, Weight work);

/// A caterpillar: a spine chain of `spine` nodes, each spine node also
/// carrying `legs` leaf children.
Tree caterpillar(NodeId spine, NodeId legs, Weight spine_file,
                 Weight leg_file, Weight work);

/// The one-level harpoon graph of Fig. 3(a): a zero-file root with
/// `branches` identical branches u -> v -> w, where f_u = big/branches,
/// f_v = eps, f_w = big; all execution files are zero.
/// `big` must be divisible by `branches`.
///
/// Best postorder memory: big + eps + (branches-1)*big/branches.
/// Optimal memory:        big + branches*eps.
Tree harpoon(NodeId branches, Weight big, Weight eps);

/// The iterated harpoon of Theorem 1: `levels` nested harpoons, the next
/// level hanging (with a zero-size link file) beside each heavy leaf. With
/// L = levels, provided eps <= (branches-1)*big/branches:
///   best postorder memory: big + eps + L*(branches-1)*big/branches
///   optimal memory:        big + eps + L*(branches-1)*eps
/// so the postorder/optimal ratio grows without bound as L grows.
Tree iterated_harpoon(NodeId branches, NodeId levels, Weight big, Weight eps);

/// The NP-completeness gadget of Theorem 2 (Fig. 4) for a 2-Partition
/// instance {a_1..a_n} with S = sum a_i (S must be even):
///   root T_in (f=0) with children T_1..T_n (f = a_i) and T_big (f = S);
///   each T_i has one leaf child Tout_i (f = S);
///   T_big has one leaf child Tout_big (f = S/2). All n_i = 0.
/// With memory M = 2S (the root's MemReq), an out-of-core traversal with
/// I/O volume exactly S/2 exists iff the 2-Partition instance is a yes
/// instance.
Tree two_partition_gadget(const std::vector<Weight>& values);

/// Memory budget (M = 2S) for the gadget built from `values`.
Weight two_partition_gadget_memory(const std::vector<Weight>& values);

/// Target I/O bound (S/2) for the gadget built from `values`.
Weight two_partition_gadget_io_bound(const std::vector<Weight>& values);

/// Options for random tree structures.
struct RandomTreeOptions {
  /// Probability that node i attaches to node i-1 rather than to a uniformly
  /// random earlier node: 0 gives wide/shallow recursive trees, values close
  /// to 1 give deep chain-like trees.
  double chain_bias = 0.3;
  /// Inclusive bounds for input-file sizes (root always gets f = 0 so the
  /// instance matches the assembly-tree convention).
  Weight min_file = 1;
  Weight max_file = 100;
  /// Inclusive bounds for execution-file sizes.
  Weight min_work = 0;
  Weight max_work = 20;
};

/// Random attachment tree with `p` nodes.
Tree random_tree(NodeId p, const RandomTreeOptions& options, Prng& prng);

/// The random re-weighting of Section VI-E: keeps the structure of `tree`
/// and draws n_i uniformly from [1, max(1, p/500)] and f_i from [1, p]
/// (f_root = 0), with p the node count.
Tree with_random_paper_weights(const Tree& tree, Prng& prng);

/// Keeps the structure of `tree`, drawing f_i in [min_file, max_file]
/// (f_root = 0) and n_i in [min_work, max_work].
Tree with_random_weights(const Tree& tree, Weight min_file, Weight max_file,
                         Weight min_work, Weight max_work, Prng& prng);

}  // namespace treemem::gen
