// The one table of SolverStats merge semantics.
//
// Aggregating per-worker SolverStats snapshots into a fleet view needs
// two parallel field lists — the counters/times that add across workers
// and the peaks that max. Hand-maintained copies of those lists have
// already drifted twice (PR 8 restored two silently dropped fields), so
// this header is now the single source of truth: `for_each_stat_field`
// visits every mergeable numeric field with its name and merge kind, and
// everything that folds stats — `aggregate_solver_stats`, the metrics
// exporter in SolverPool — is generated from the same visitation. Adding
// a numeric field to SolverStats means adding one line here; every merge
// and every exposition picks it up together.
//
// Non-numeric fields (ordering/strategy/engine names, per-run
// configuration like `workers` and `memory_budget`) have no meaningful
// cross-worker fold and stay out of the table on purpose.
#pragma once

#include <algorithm>

#include "solver/solver.hpp"

namespace treemem::obs {

enum class StatMerge {
  kSum,  ///< totals: times, counts, flops, lease tallies
  kMax   ///< peaks: high-water marks are a max across workers
};

/// Visits (name, merge kind, pointer-to-member) for every mergeable
/// numeric SolverStats field. Names are the exposition suffixes
/// (`treemem_solver_<name>` in the metrics dump).
template <typename Fn>
void for_each_stat_field(Fn&& fn) {
  using S = SolverStats;
  fn("analyze_seconds", StatMerge::kSum, &S::analyze_seconds);
  fn("plan_seconds", StatMerge::kSum, &S::plan_seconds);
  fn("factorize_seconds", StatMerge::kSum, &S::factorize_seconds);
  fn("solve_seconds", StatMerge::kSum, &S::solve_seconds);
  fn("factorizations", StatMerge::kSum, &S::factorizations);
  fn("rhs_solved", StatMerge::kSum, &S::rhs_solved);
  fn("flops", StatMerge::kSum, &S::flops);
  fn("leases_granted", StatMerge::kSum, &S::leases_granted);
  fn("lease_denied", StatMerge::kSum, &S::lease_denied);
  fn("measured_peak_entries", StatMerge::kMax, &S::measured_peak_entries);
  fn("modeled_peak_entries", StatMerge::kMax, &S::modeled_peak_entries);
  fn("planned_peak_entries", StatMerge::kMax, &S::planned_peak_entries);
  fn("planned_parallel_peak", StatMerge::kMax, &S::planned_parallel_peak);
  fn("in_core_optimum", StatMerge::kMax, &S::in_core_optimum);
  fn("best_postorder_peak", StatMerge::kMax, &S::best_postorder_peak);
  fn("planned_io_volume", StatMerge::kMax, &S::planned_io_volume);
}

/// Folds `snapshot` into `total` field by field per the table.
inline void merge_solver_stats(SolverStats& total,
                               const SolverStats& snapshot) {
  for_each_stat_field([&](const char*, StatMerge merge, auto member) {
    if (merge == StatMerge::kSum) {
      total.*member += snapshot.*member;
    } else {
      total.*member = std::max(total.*member, snapshot.*member);
    }
  });
}

}  // namespace treemem::obs
