#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <set>
#include <thread>
#include <utility>

#include "support/check.hpp"
#include "support/env.hpp"

namespace treemem::obs {

// One writer (the owning thread) appends at head; `active` is the drain
// handshake; `aborted` counts emits that lost the race against a drain.
struct TraceRecorder::ThreadBuffer {
  ThreadBuffer(std::size_t capacity, int tid_in)
      : slots(capacity), tid(tid_in) {}

  std::vector<TraceEvent> slots;
  std::uint64_t head = 0;  ///< total events ever written (owner-only)
  std::atomic<int> active{0};
  std::atomic<std::uint64_t> aborted{0};
  int tid = 0;
};

namespace {

std::atomic<std::uint64_t> next_recorder_id{1};

// Thread-local map from recorder id to that thread's buffer. A tiny
// linear-scanned vector: a thread touches one recorder in production
// (the process instance) and a handful in tests.
struct TlsRef {
  std::uint64_t recorder_id = 0;
  void* buffer = nullptr;
};
thread_local std::vector<TlsRef> tls_buffers;

void write_escaped(std::ostream& os, const char* text) {
  os << '"';
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
         << "0123456789abcdef"[c & 0xf];
    } else {
      os << c;
    }
  }
  os << '"';
}

}  // namespace

TraceRecorder::TraceRecorder(TraceRecorderOptions options)
    : options_(options),
      id_(next_recorder_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {
  TM_CHECK(options_.buffer_capacity > 0,
           "TraceRecorder buffer_capacity must be positive");
}

TraceRecorder::~TraceRecorder() = default;

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder recorder;
  return recorder;
}

TraceRecorder::ThreadBuffer& TraceRecorder::local_buffer() {
  for (const TlsRef& ref : tls_buffers) {
    if (ref.recorder_id == id_) {
      return *static_cast<ThreadBuffer*>(ref.buffer);
    }
  }
  std::lock_guard<std::mutex> lock(registry_mutex_);
  buffers_.push_back(std::make_unique<ThreadBuffer>(
      options_.buffer_capacity, static_cast<int>(buffers_.size())));
  ThreadBuffer* buffer = buffers_.back().get();
  tls_buffers.push_back({id_, buffer});
  return *buffer;
}

void TraceRecorder::emit(char phase, const char* name, const char* cat,
                         int lane, const char* key0, long long val0,
                         const char* key1, long long val1) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  ThreadBuffer& buffer = local_buffer();
  // Dekker handshake with pause(): raise `active`, then re-check the
  // enabled flag. Both seq_cst, so either this emit aborts or the drain
  // observes `active` and waits for the release store below.
  buffer.active.exchange(1, std::memory_order_seq_cst);
  if (!enabled_.load(std::memory_order_seq_cst)) {
    buffer.aborted.fetch_add(1, std::memory_order_relaxed);
    buffer.active.store(0, std::memory_order_release);
    return;
  }
  TraceEvent& event = buffer.slots[buffer.head % buffer.slots.size()];
  event.name = name;
  event.cat = cat;
  event.key0 = key0;
  event.key1 = key1;
  event.val0 = val0;
  event.val1 = val1;
  event.ts_us = std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - epoch_)
                    .count();
  event.lane = lane;
  event.tid = buffer.tid;
  event.phase = phase;
  ++buffer.head;
  buffer.active.store(0, std::memory_order_release);
}

bool TraceRecorder::pause() {
  const bool was_enabled = enabled_.exchange(false, std::memory_order_seq_cst);
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const auto& buffer : buffers_) {
    while (buffer->active.load(std::memory_order_seq_cst) != 0) {
      std::this_thread::yield();
    }
  }
  return was_enabled;
}

void TraceRecorder::collect_locked(std::vector<TraceEvent>& out) const {
  for (const auto& buffer : buffers_) {
    const std::uint64_t cap = buffer->slots.size();
    const std::uint64_t retained = std::min<std::uint64_t>(buffer->head, cap);
    for (std::uint64_t i = 0; i < retained; ++i) {
      out.push_back(buffer->slots[(buffer->head - retained + i) % cap]);
    }
  }
}

TraceRecorder::Stats TraceRecorder::stats() {
  const bool was_enabled = pause();
  Stats stats;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    stats.threads = buffers_.size();
    for (const auto& buffer : buffers_) {
      const std::uint64_t cap = buffer->slots.size();
      stats.retained += std::min<std::uint64_t>(buffer->head, cap);
      stats.dropped += (buffer->head > cap ? buffer->head - cap : 0) +
                       buffer->aborted.load(std::memory_order_relaxed);
    }
  }
  resume(was_enabled);
  return stats;
}

std::vector<TraceEvent> TraceRecorder::snapshot() {
  const bool was_enabled = pause();
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    collect_locked(events);
  }
  resume(was_enabled);
  return events;
}

void TraceRecorder::clear() {
  const bool was_enabled = pause();
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    for (const auto& buffer : buffers_) {
      buffer->head = 0;
      buffer->aborted.store(0, std::memory_order_relaxed);
    }
  }
  resume(was_enabled);
}

void TraceRecorder::write_chrome_json(std::ostream& os) {
  const bool was_enabled = pause();
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    collect_locked(events);
  }
  resume(was_enabled);

  // Two Perfetto process groups: pid 1 carries the scheduler view (one
  // track per executor lane plus the counter tracks), pid 2 the raw
  // emitting threads. Counter samples always land on pid 1 so the
  // accountant track sits next to the worker lanes it explains.
  constexpr int kSchedulerPid = 1;
  constexpr int kThreadsPid = 2;
  std::set<int> lanes;
  std::set<int> tids;
  for (const TraceEvent& event : events) {
    if (event.phase == 'C') continue;
    if (event.lane >= 0) {
      lanes.insert(event.lane);
    } else {
      tids.insert(event.tid);
    }
  }

  os << std::setprecision(15);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto separator = [&] {
    if (!first) os << ',';
    first = false;
    os << '\n';
  };
  const auto metadata = [&](const char* name, int pid, int tid,
                            const std::string& value) {
    separator();
    os << "{\"name\":\"" << name << "\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":" << tid << ",\"args\":{\"name\":";
    write_escaped(os, value.c_str());
    os << "}}";
  };
  metadata("process_name", kSchedulerPid, 0, "treemem scheduler");
  metadata("process_name", kThreadsPid, 0, "treemem threads");
  for (const int lane : lanes) {
    metadata("thread_name", kSchedulerPid, lane,
             "worker " + std::to_string(lane));
  }
  for (const int tid : tids) {
    metadata("thread_name", kThreadsPid, tid,
             "thread " + std::to_string(tid));
  }

  for (const TraceEvent& event : events) {
    separator();
    const bool on_scheduler = event.phase == 'C' || event.lane >= 0;
    const int pid = on_scheduler ? kSchedulerPid : kThreadsPid;
    const int tid = event.phase == 'C' ? 0
                    : event.lane >= 0  ? event.lane
                                       : event.tid;
    os << "{\"name\":";
    write_escaped(os, event.name);
    os << ",\"cat\":";
    write_escaped(os, event.cat);
    os << ",\"ph\":\"" << event.phase << "\",\"ts\":" << event.ts_us
       << ",\"pid\":" << pid << ",\"tid\":" << tid;
    if (event.phase == 'i') os << ",\"s\":\"t\"";
    if (event.key0 != nullptr || event.key1 != nullptr) {
      os << ",\"args\":{";
      if (event.key0 != nullptr) {
        write_escaped(os, event.key0);
        os << ':' << event.val0;
      }
      if (event.key1 != nullptr) {
        if (event.key0 != nullptr) os << ',';
        write_escaped(os, event.key1);
        os << ':' << event.val1;
      }
      os << '}';
    }
    os << '}';
  }
  os << "\n]}\n";
}

void TraceRecorder::write_chrome_json(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  TM_CHECK(out.good(),
           "cannot open trace output file: " << path);
  write_chrome_json(out);
  TM_CHECK(out.good(),
           "failed writing trace output file: " << path);
}

std::optional<std::string> trace_path_from_env() {
  return env_string("TREEMEM_TRACE");
}

TraceSession::TraceSession(std::string path) : path_(std::move(path)) {
  if (path_.empty()) path_ = trace_path_from_env().value_or("");
  if (!path_.empty()) {
    TraceRecorder::instance().start();
  }
}

TraceSession::~TraceSession() {
  if (path_.empty()) return;
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.stop();
  recorder.write_chrome_json(path_);
}

}  // namespace treemem::obs
