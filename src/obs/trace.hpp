// Low-overhead tracing: per-thread ring buffers + Chrome trace_event JSON.
//
// The paper's whole contribution is a *schedule* — which front runs when,
// under what Eq. 1 transient — yet scalar aftermaths (SolverStats, cache
// counters) cannot show where workers idled, when leases were denied, or
// when the accountant's high-water mark occurred. TraceRecorder captures
// that timeline: every instrumented layer emits begin/end/instant/counter
// events into a fixed-capacity ring buffer owned by the emitting thread,
// and the recorder exports the union as Chrome `trace_event` JSON that
// chrome://tracing and Perfetto load directly — executor worker lanes as
// tracks, fronts as spans, the memory accountant as a counter track.
//
// Cost model. Recording is **off by default**; the disabled emit path is
// one relaxed atomic load and an early return, so instrumentation can sit
// on hot paths (per-panel, per-lease) permanently. When enabled, an emit
// is two uncontended atomics plus a struct store into the calling
// thread's own buffer — no locks, no allocation, no cross-thread traffic.
// Buffers are fixed-capacity and **drop oldest** on overflow (the tail of
// a run is what you want to see); every dropped or aborted event is
// counted, so a truncated trace is always labelled as such.
//
// Concurrency. One writer per buffer (the owning thread); drains exclude
// writers with a Dekker-style handshake: the drain disables recording
// (seq_cst) and waits for each buffer's `active` flag, while a writer
// re-checks the enabled flag (seq_cst) *after* raising `active` — so
// either the writer sees the disable and aborts (counted), or the drain
// sees `active` and waits. No fences (TSan models plain seq_cst atomics
// exactly); the buffer slots themselves are plain stores ordered by the
// release/acquire pair on `active`.
//
// Names and categories must be string literals (or otherwise outlive the
// recorder): events store the pointers, not copies.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace treemem::obs {

/// One recorded event. `lane >= 0` pins the event to an executor worker
/// lane (exported as pid 1 "scheduler", tid = lane); `lane < 0` leaves it
/// on the emitting thread's own track (pid 2 "threads"). Counter events
/// ('C') always render on the scheduler process so the accountant track
/// sits next to the worker lanes.
struct TraceEvent {
  const char* name = nullptr;  ///< static string literal
  const char* cat = nullptr;   ///< static string literal
  const char* key0 = nullptr;  ///< first numeric arg name (nullptr = none)
  const char* key1 = nullptr;  ///< second numeric arg name
  long long val0 = 0;
  long long val1 = 0;
  double ts_us = 0.0;  ///< microseconds since the recorder's epoch
  int lane = -1;       ///< executor lane, or -1 for the thread's own track
  int tid = 0;         ///< emitting thread's registration index
  char phase = 'i';    ///< 'B' begin, 'E' end, 'i' instant, 'C' counter
};

struct TraceRecorderOptions {
  /// Events retained per emitting thread; older events are overwritten
  /// (and counted dropped) once a thread exceeds this.
  std::size_t buffer_capacity = 1u << 15;
};

class TraceRecorder {
 public:
  static constexpr int kNoLane = -1;

  explicit TraceRecorder(TraceRecorderOptions options = {});
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// The process-wide recorder every instrumentation site emits into.
  /// Constructed on first use, disabled until start().
  static TraceRecorder& instance();

  /// True while events are being recorded (relaxed — the emit fast path).
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void start() { enabled_.store(true, std::memory_order_seq_cst); }
  void stop() { enabled_.store(false, std::memory_order_seq_cst); }

  void begin(const char* name, const char* cat, int lane = kNoLane,
             const char* key0 = nullptr, long long val0 = 0,
             const char* key1 = nullptr, long long val1 = 0) {
    emit('B', name, cat, lane, key0, val0, key1, val1);
  }
  void end(const char* name, const char* cat, int lane = kNoLane) {
    emit('E', name, cat, lane, nullptr, 0, nullptr, 0);
  }
  void instant(const char* name, const char* cat, int lane = kNoLane,
               const char* key0 = nullptr, long long val0 = 0,
               const char* key1 = nullptr, long long val1 = 0) {
    emit('i', name, cat, lane, key0, val0, key1, val1);
  }
  /// A counter-track sample: `name` is the track, `key` the series.
  void counter(const char* name, const char* key, long long value) {
    emit('C', name, "counter", kNoLane, key, value, nullptr, 0);
  }

  struct Stats {
    std::uint64_t retained = 0;  ///< events currently held in buffers
    std::uint64_t dropped = 0;   ///< overwritten (overflow) + aborted (drain)
    std::size_t threads = 0;     ///< threads that have emitted at least once
  };
  /// Exact counts: momentarily pauses recording to exclude writers.
  Stats stats();

  /// Every retained event, oldest-first per thread (pauses recording).
  std::vector<TraceEvent> snapshot();

  /// Drops all retained events and resets the drop counters; thread
  /// registrations (and lane/tid assignments) survive.
  void clear();

  /// Writes the Chrome trace_event JSON for everything retained. Pauses
  /// recording for the drain and restores it afterwards, so a long-lived
  /// service can flush on demand. The file form overwrites `path`.
  void write_chrome_json(std::ostream& os);
  void write_chrome_json(const std::string& path);

 private:
  struct ThreadBuffer;

  void emit(char phase, const char* name, const char* cat, int lane,
            const char* key0, long long val0, const char* key1,
            long long val1);
  ThreadBuffer& local_buffer();
  /// Disables recording and waits until no writer is mid-emit. Returns
  /// whether recording was enabled (pass to resume()).
  bool pause();
  void resume(bool was_enabled) {
    if (was_enabled) enabled_.store(true, std::memory_order_seq_cst);
  }
  /// Requires paused; appends every retained event, oldest-first.
  void collect_locked(std::vector<TraceEvent>& out) const;

  const TraceRecorderOptions options_;
  const std::uint64_t id_;  ///< process-unique — keys the thread-local cache
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex registry_mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII begin/end pair on `TraceRecorder::instance()` (or an explicit
/// recorder). The end event is emitted iff the begin was — a recorder
/// started mid-span cannot see an orphan 'E'.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* cat,
            int lane = TraceRecorder::kNoLane, const char* key0 = nullptr,
            long long val0 = 0, const char* key1 = nullptr,
            long long val1 = 0)
      : TraceSpan(TraceRecorder::instance(), name, cat, lane, key0, val0,
                  key1, val1) {}
  TraceSpan(TraceRecorder& recorder, const char* name, const char* cat,
            int lane = TraceRecorder::kNoLane, const char* key0 = nullptr,
            long long val0 = 0, const char* key1 = nullptr,
            long long val1 = 0)
      : recorder_(recorder), name_(name), cat_(cat), lane_(lane),
        armed_(recorder.enabled()) {
    if (armed_) recorder_.begin(name_, cat_, lane_, key0, val0, key1, val1);
  }
  ~TraceSpan() {
    if (armed_) recorder_.end(name_, cat_, lane_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceRecorder& recorder_;
  const char* name_;
  const char* cat_;
  int lane_;
  bool armed_;
};

/// The `TREEMEM_TRACE` output path (strictly parsed: unset/empty = none).
std::optional<std::string> trace_path_from_env();

/// Scoped recording session for CLI/bench entry points: an empty path is
/// a no-op; otherwise start()s the process recorder on construction and
/// stop()s + writes the Chrome JSON to the path on destruction (the
/// flush-on-shutdown contract). `TREEMEM_TRACE` wins over an empty
/// constructor argument, so `TREEMEM_TRACE=run.json treemem_cli solve …`
/// traces without any flag.
class TraceSession {
 public:
  explicit TraceSession(std::string path);
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  bool active() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace treemem::obs
