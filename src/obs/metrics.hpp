// MetricsRegistry — one process-wide namespace of counters, gauges and
// fixed-bucket histograms, with Prometheus-style text exposition.
//
// The repo accumulated one ad-hoc stats struct per subsystem
// (SolverStats, WorkerPool counters, two cache Stats); each is still the
// source of truth for its subsystem, but a service needs them in one
// scrapeable place. The registry holds named metrics for code that wants
// a shared counter, and **exporters** — callbacks that render an existing
// stats struct into exposition lines at dump time — for subsystems that
// already keep their own atomics (register into, rather than replace).
//
// Hot-path cost: Counter::add and Histogram::observe are one relaxed
// fetch_add (observe adds a branchless upper_bound over ≤ a few dozen
// bucket bounds); Gauge::set is one relaxed store. Registration
// (find-or-create by name+labels) takes a mutex and is meant for startup,
// not per-event — cache the returned reference, which stays valid for the
// registry's lifetime.
//
// Exposition: `dump()` renders owned metrics sorted by name, then every
// exporter in registration order, in the Prometheus text format
// (`name{labels} value`, histograms as cumulative `_bucket{le="…"}` lines
// plus `_sum`/`_count`). Metric naming scheme used across the repo:
// `treemem_<subsystem>_<what>[_<unit>][_total]` — e.g.
// `treemem_solve_latency_seconds`, `treemem_symbolic_cache_hits_total`,
// `treemem_pool_leases_denied_total`.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace treemem::obs {

class Counter {
 public:
  void add(long long delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void set(long long value) {
    value_.store(value, std::memory_order_relaxed);
  }
  long long value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<long long> value_{0};
};

class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram for non-negative observations (latencies,
/// sizes). Buckets are defined by ascending finite upper bounds plus an
/// implicit +Inf overflow bucket; observe() is a lock-free fetch_add.
/// Quantiles interpolate linearly inside the selected bucket (the first
/// bucket's lower edge is 0; a quantile landing in the overflow bucket
/// reports the largest finite bound), which is exact enough for p50/p99
/// dashboards and — unlike sorted-vector index math — has no off-by-one
/// cliff at small sample counts.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double value);

  long long count() const;
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// The q-quantile (q in [0, 1]) of the observations so far; 0 when
  /// empty.
  double quantile(double q) const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts, bounds().size() + 1 entries (last = overflow).
  std::vector<long long> bucket_counts() const;
  void reset();

  /// A 1–2–5 series covering [lo, hi] (both positive, lo < hi) — the
  /// default latency ladder: exponential_bounds(1e-6, 10.0) spans 1 µs to
  /// 10 s in 22 buckets.
  static std::vector<double> exponential_bounds(double lo, double hi);

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<long long>[]> counts_;  ///< bounds_+1 slots
  std::atomic<double> sum_{0.0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (what dump_metrics() renders).
  static MetricsRegistry& instance();

  /// Find-or-create; the reference stays valid for the registry's
  /// lifetime. `labels` is the exposition label set without braces, e.g.
  /// `cache="symbolic"` (empty = no labels). Re-registering an existing
  /// name+labels returns the same object; a histogram re-registered with
  /// different bounds keeps the original bounds.
  Counter& counter(const std::string& name, const std::string& labels = "");
  Gauge& gauge(const std::string& name, const std::string& labels = "");
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& labels = "");

  /// Exporters render subsystem-owned stats at dump time; they return
  /// ready-made exposition lines (use the format_* helpers). Remove
  /// before the subsystem dies — the token identifies the registration.
  using Exporter = std::function<std::string()>;
  std::uint64_t add_exporter(Exporter exporter);
  void remove_exporter(std::uint64_t token);

  /// The full text exposition: owned metrics sorted by name, then
  /// exporters in registration order.
  std::string dump() const;

  /// Zeroes every owned metric's value (identities and exporters
  /// survive; references stay valid). Test isolation, not production.
  void reset_values();

 private:
  struct OwnedMetric {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mutex_;
  std::map<std::pair<std::string, std::string>, OwnedMetric> metrics_;
  std::vector<std::pair<std::uint64_t, Exporter>> exporters_;
  std::uint64_t next_token_ = 1;
};

/// The process registry's text exposition (the `--metrics-out` payload).
std::string dump_metrics();

// Exposition formatting helpers (shared by the registry and exporters).
std::string format_counter(const std::string& name,
                           const std::string& labels, long long value);
std::string format_gauge(const std::string& name, const std::string& labels,
                         double value);
std::string format_histogram(const std::string& name,
                             const std::string& labels,
                             const Histogram& histogram);

}  // namespace treemem::obs
