#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "support/check.hpp"

namespace treemem::obs {

namespace {

void append_value(std::ostringstream& os, double value) {
  if (value == static_cast<long long>(value) && std::abs(value) < 1e15) {
    os << static_cast<long long>(value);
  } else {
    os << value;
  }
}

std::string render_name(const std::string& name, const std::string& labels) {
  if (labels.empty()) return name;
  return name + "{" + labels + "}";
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<long long>[bounds_.size() + 1]) {
  TM_CHECK(!bounds_.empty(),
           "Histogram needs at least one bucket bound");
  for (std::size_t i = 0; i + 1 < bounds_.size(); ++i) {
    TM_CHECK(bounds_[i] < bounds_[i + 1],
           "Histogram bounds must be strictly ascending");
  }
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::observe(double value) {
  // bucket i holds observations in (bounds[i-1], bounds[i]]; the implicit
  // last bucket takes everything above the largest finite bound.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

long long Histogram::count() const {
  long long total = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    total += counts_[i].load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<long long> Histogram::bucket_counts() const {
  std::vector<long long> counts(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double Histogram::quantile(double q) const {
  TM_CHECK(q >= 0.0 && q <= 1.0,
           "quantile q out of [0, 1]: " << q);
  const std::vector<long long> counts = bucket_counts();
  long long total = 0;
  for (const long long c : counts) total += c;
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  long long cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const long long before = cumulative;
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < target) continue;
    if (i == bounds_.size()) return bounds_.back();  // overflow bucket
    const double lower = i == 0 ? 0.0 : bounds_[i - 1];
    const double upper = bounds_[i];
    const double within =
        (target - static_cast<double>(before)) / static_cast<double>(counts[i]);
    return lower + (upper - lower) * std::clamp(within, 0.0, 1.0);
  }
  return bounds_.back();
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> Histogram::exponential_bounds(double lo, double hi) {
  TM_CHECK(lo > 0.0 && hi > lo,
           "exponential_bounds needs 0 < lo < hi");
  static constexpr double kSeries[] = {1.0, 2.0, 5.0};
  std::vector<double> bounds;
  double decade = std::pow(10.0, std::floor(std::log10(lo)));
  for (; decade <= hi; decade *= 10.0) {
    for (const double s : kSeries) {
      const double bound = decade * s;
      if (bound < lo * (1.0 - 1e-12) || bound > hi * (1.0 + 1e-12)) continue;
      bounds.push_back(bound);
    }
  }
  TM_CHECK(!bounds.empty(),
           "exponential_bounds produced no buckets");
  return bounds;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  OwnedMetric& metric = metrics_[{name, labels}];
  TM_CHECK(!metric.gauge && !metric.histogram,
           "metric already registered with a different type: " << name);
  if (!metric.counter) metric.counter = std::make_unique<Counter>();
  return *metric.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  OwnedMetric& metric = metrics_[{name, labels}];
  TM_CHECK(!metric.counter && !metric.histogram,
           "metric already registered with a different type: " << name);
  if (!metric.gauge) metric.gauge = std::make_unique<Gauge>();
  return *metric.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  OwnedMetric& metric = metrics_[{name, labels}];
  TM_CHECK(!metric.counter && !metric.gauge,
           "metric already registered with a different type: " << name);
  if (!metric.histogram) {
    metric.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return *metric.histogram;
}

std::uint64_t MetricsRegistry::add_exporter(Exporter exporter) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t token = next_token_++;
  exporters_.emplace_back(token, std::move(exporter));
  return token;
}

void MetricsRegistry::remove_exporter(std::uint64_t token) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::erase_if(exporters_,
                [token](const auto& entry) { return entry.first == token; });
}

std::string MetricsRegistry::dump() const {
  // Copy the exporter list out so a long-running exporter cannot hold the
  // registry lock (exporters may touch subsystem locks of their own).
  std::vector<Exporter> exporters;
  std::string owned;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [key, metric] : metrics_) {
      if (metric.counter) {
        owned += format_counter(key.first, key.second,
                                metric.counter->value());
      } else if (metric.gauge) {
        owned += format_gauge(key.first, key.second, metric.gauge->value());
      } else if (metric.histogram) {
        owned += format_histogram(key.first, key.second, *metric.histogram);
      }
    }
    exporters.reserve(exporters_.size());
    for (const auto& [token, exporter] : exporters_) {
      exporters.push_back(exporter);
    }
  }
  std::string text = std::move(owned);
  for (const Exporter& exporter : exporters) text += exporter();
  return text;
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, metric] : metrics_) {
    if (metric.counter) metric.counter->reset();
    if (metric.gauge) metric.gauge->reset();
    if (metric.histogram) metric.histogram->reset();
  }
}

std::string dump_metrics() { return MetricsRegistry::instance().dump(); }

std::string format_counter(const std::string& name,
                           const std::string& labels, long long value) {
  std::ostringstream os;
  os << "# TYPE " << name << " counter\n"
     << render_name(name, labels) << ' ' << value << '\n';
  return os.str();
}

std::string format_gauge(const std::string& name, const std::string& labels,
                         double value) {
  std::ostringstream os;
  os << "# TYPE " << name << " gauge\n" << render_name(name, labels) << ' ';
  append_value(os, value);
  os << '\n';
  return os.str();
}

std::string format_histogram(const std::string& name,
                             const std::string& labels,
                             const Histogram& histogram) {
  std::ostringstream os;
  os << "# TYPE " << name << " histogram\n";
  const std::string prefix = labels.empty() ? "" : labels + ",";
  const std::vector<long long> counts = histogram.bucket_counts();
  const std::vector<double>& bounds = histogram.bounds();
  long long cumulative = 0;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    cumulative += counts[i];
    os << name << "_bucket{" << prefix << "le=\"";
    append_value(os, bounds[i]);
    os << "\"} " << cumulative << '\n';
  }
  cumulative += counts[bounds.size()];
  os << name << "_bucket{" << prefix << "le=\"+Inf\"} " << cumulative << '\n';
  os << name << "_sum" << (labels.empty() ? "" : "{" + labels + "}") << ' ';
  append_value(os, histogram.sum());
  os << '\n'
     << name << "_count" << (labels.empty() ? "" : "{" + labels + "}") << ' '
     << cumulative << '\n';
  return os.str();
}

}  // namespace treemem::obs
