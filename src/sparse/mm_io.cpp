#include "sparse/mm_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace treemem {

namespace {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

SparsePattern read_matrix_market(std::istream& in) {
  std::string line;
  TM_CHECK(static_cast<bool>(std::getline(in, line)), "empty Matrix Market stream");

  // Banner: %%MatrixMarket matrix coordinate <field> <symmetry>
  std::istringstream banner(line);
  std::string tag;
  std::string object;
  std::string format;
  std::string field;
  std::string symmetry;
  banner >> tag >> object >> format >> field >> symmetry;
  TM_CHECK(to_lower(tag) == "%%matrixmarket",
           "not a Matrix Market file (banner: '" << tag << "')");
  TM_CHECK(to_lower(object) == "matrix", "unsupported object '" << object << "'");
  TM_CHECK(to_lower(format) == "coordinate",
           "only coordinate format is supported, got '" << format << "'");
  field = to_lower(field);
  symmetry = to_lower(symmetry);
  TM_CHECK(field == "real" || field == "integer" || field == "pattern" ||
               field == "complex",
           "unsupported field '" << field << "'");
  TM_CHECK(symmetry == "general" || symmetry == "symmetric" ||
               symmetry == "skew-symmetric" || symmetry == "hermitian",
           "unsupported symmetry '" << symmetry << "'");

  // Skip comments and blank lines, then read the size line.
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '%') {
      continue;
    }
    break;
  }
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int64_t entries = 0;
  {
    std::istringstream size_line(line);
    TM_CHECK(static_cast<bool>(size_line >> rows >> cols >> entries),
             "malformed size line: '" << line << "'");
  }
  TM_CHECK(rows >= 0 && cols >= 0 && entries >= 0,
           "negative sizes in Matrix Market header");

  const bool expand = symmetry != "general";
  std::vector<std::pair<Index, Index>> coo;
  coo.reserve(static_cast<std::size_t>(expand ? 2 * entries : entries));
  for (std::int64_t k = 0; k < entries; ++k) {
    std::int64_t r = 0;
    std::int64_t c = 0;
    TM_CHECK(static_cast<bool>(in >> r >> c), "truncated entry " << k);
    if (field != "pattern") {
      double value = 0;
      TM_CHECK(static_cast<bool>(in >> value), "truncated value at entry " << k);
      if (field == "complex") {
        TM_CHECK(static_cast<bool>(in >> value),
                 "truncated imaginary part at entry " << k);
      }
    }
    TM_CHECK(r >= 1 && r <= rows && c >= 1 && c <= cols,
             "entry (" << r << "," << c << ") outside " << rows << "x" << cols);
    coo.emplace_back(static_cast<Index>(r - 1), static_cast<Index>(c - 1));
    if (expand && r != c) {
      coo.emplace_back(static_cast<Index>(c - 1), static_cast<Index>(r - 1));
    }
  }
  return SparsePattern::from_coo(static_cast<Index>(rows),
                                 static_cast<Index>(cols), std::move(coo));
}

SparsePattern read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  TM_CHECK(in.good(), "cannot open " << path);
  return read_matrix_market(in);
}

SparsePattern read_matrix_market_string(const std::string& text) {
  std::istringstream iss(text);
  return read_matrix_market(iss);
}

void write_matrix_market(std::ostream& out, const SparsePattern& pattern,
                         bool symmetric_lower) {
  if (symmetric_lower) {
    TM_CHECK(pattern.is_symmetric(),
             "symmetric output requested for a non-symmetric pattern");
  }
  out << "%%MatrixMarket matrix coordinate pattern "
      << (symmetric_lower ? "symmetric" : "general") << "\n";
  out << "% written by treemem\n";

  std::int64_t count = 0;
  for (Index j = 0; j < pattern.cols(); ++j) {
    for (const Index r : pattern.column(j)) {
      if (!symmetric_lower || r >= j) {
        ++count;
      }
    }
  }
  out << pattern.rows() << ' ' << pattern.cols() << ' ' << count << "\n";
  for (Index j = 0; j < pattern.cols(); ++j) {
    for (const Index r : pattern.column(j)) {
      if (!symmetric_lower || r >= j) {
        out << (r + 1) << ' ' << (j + 1) << "\n";
      }
    }
  }
}

void write_matrix_market_file(const std::string& path,
                              const SparsePattern& pattern,
                              bool symmetric_lower) {
  std::ofstream out(path);
  TM_CHECK(out.good(), "cannot open " << path << " for writing");
  write_matrix_market(out, pattern, symmetric_lower);
  TM_CHECK(out.good(), "write to " << path << " failed");
}

}  // namespace treemem
