#include "sparse/mm_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>
#include <tuple>

namespace treemem {

namespace {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

/// One coordinate triplet before deduplication (0-based indices).
struct Triplet {
  Index row = 0;
  Index col = 0;
  double value = 0.0;
};

/// The shared coordinate parser behind every reader: banner, size line,
/// entries (with values unless the field is `pattern`), symmetry
/// expansion. Duplicate handling is left to the callers — the pattern
/// reader lets from_coo dedup, the data reader sums.
MatrixMarketData parse_coordinate(std::istream& in) {
  std::string line;
  TM_CHECK(static_cast<bool>(std::getline(in, line)), "empty Matrix Market stream");

  // Banner: %%MatrixMarket matrix coordinate <field> <symmetry>
  std::istringstream banner(line);
  std::string tag;
  std::string object;
  std::string format;
  MatrixMarketData data;
  banner >> tag >> object >> format >> data.field >> data.symmetry;
  TM_CHECK(to_lower(tag) == "%%matrixmarket",
           "not a Matrix Market file (banner: '" << tag << "')");
  TM_CHECK(to_lower(object) == "matrix", "unsupported object '" << object << "'");
  TM_CHECK(to_lower(format) == "coordinate",
           "only coordinate format is supported, got '" << format << "'");
  data.field = to_lower(data.field);
  data.symmetry = to_lower(data.symmetry);
  TM_CHECK(data.field == "real" || data.field == "integer" ||
               data.field == "pattern" || data.field == "complex",
           "unsupported field '" << data.field << "'");
  TM_CHECK(data.symmetry == "general" || data.symmetry == "symmetric" ||
               data.symmetry == "skew-symmetric" ||
               data.symmetry == "hermitian",
           "unsupported symmetry '" << data.symmetry << "'");

  // Skip comments and blank lines, then read the size line.
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '%') {
      continue;
    }
    break;
  }
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int64_t entries = 0;
  {
    std::istringstream size_line(line);
    TM_CHECK(static_cast<bool>(size_line >> rows >> cols >> entries),
             "malformed size line: '" << line << "'");
  }
  TM_CHECK(rows >= 0 && cols >= 0 && entries >= 0,
           "negative sizes in Matrix Market header");
  data.rows = static_cast<Index>(rows);
  data.cols = static_cast<Index>(cols);

  const bool expand = data.symmetry != "general";
  const bool has_values = data.field != "pattern";
  std::vector<Triplet> coo;
  coo.reserve(static_cast<std::size_t>(expand ? 2 * entries : entries));
  for (std::int64_t k = 0; k < entries; ++k) {
    std::int64_t r = 0;
    std::int64_t c = 0;
    double value = has_values ? 0.0 : 1.0;
    TM_CHECK(static_cast<bool>(in >> r >> c), "truncated entry " << k);
    if (has_values) {
      TM_CHECK(static_cast<bool>(in >> value), "truncated value at entry " << k);
      if (data.field == "complex") {
        // The imaginary part is parsed and dropped: this library factors
        // real symmetric systems, and hermitian storage keeps exactly the
        // real part under the mirror below.
        double imaginary = 0.0;
        TM_CHECK(static_cast<bool>(in >> imaginary),
                 "truncated imaginary part at entry " << k);
      }
    }
    TM_CHECK(r >= 1 && r <= rows && c >= 1 && c <= cols,
             "entry (" << r << "," << c << ") outside " << rows << "x" << cols);
    coo.push_back({static_cast<Index>(r - 1), static_cast<Index>(c - 1), value});
    if (expand && r != c) {
      const double mirrored =
          data.symmetry == "skew-symmetric" ? -value : value;
      coo.push_back(
          {static_cast<Index>(c - 1), static_cast<Index>(r - 1), mirrored});
    }
  }

  // Sort by (col, row) — CSC order — and sum duplicates (the Matrix Market
  // convention for assembled input).
  std::sort(coo.begin(), coo.end(), [](const Triplet& a, const Triplet& b) {
    return std::tie(a.col, a.row) < std::tie(b.col, b.row);
  });
  std::vector<std::int64_t> col_ptr(static_cast<std::size_t>(cols) + 1, 0);
  std::vector<Index> row_idx;
  std::vector<double> values;
  row_idx.reserve(coo.size());
  if (has_values) {
    values.reserve(coo.size());
  }
  for (std::size_t i = 0; i < coo.size(); ++i) {
    if (i > 0 && coo[i].row == coo[i - 1].row && coo[i].col == coo[i - 1].col) {
      if (has_values) {
        values.back() += coo[i].value;
      }
      continue;
    }
    ++col_ptr[static_cast<std::size_t>(coo[i].col) + 1];
    row_idx.push_back(coo[i].row);
    if (has_values) {
      values.push_back(coo[i].value);
    }
  }
  for (std::size_t j = 0; j < static_cast<std::size_t>(cols); ++j) {
    col_ptr[j + 1] += col_ptr[j];
  }
  data.pattern = SparsePattern(data.rows, data.cols, std::move(col_ptr),
                               std::move(row_idx));
  data.values = std::move(values);
  return data;
}

/// Round-trip double formatting for the valued writer.
std::string value_text(double value) {
  std::ostringstream oss;
  oss.precision(std::numeric_limits<double>::max_digits10);
  oss << value;
  return oss.str();
}

}  // namespace

SparsePattern read_matrix_market(std::istream& in) {
  return parse_coordinate(in).pattern;
}

SparsePattern read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  TM_CHECK(in.good(), "cannot open " << path);
  return read_matrix_market(in);
}

SparsePattern read_matrix_market_string(const std::string& text) {
  std::istringstream iss(text);
  return read_matrix_market(iss);
}

MatrixMarketData read_matrix_market_data(std::istream& in) {
  return parse_coordinate(in);
}

MatrixMarketData read_matrix_market_data_file(const std::string& path) {
  std::ifstream in(path);
  TM_CHECK(in.good(), "cannot open " << path);
  return parse_coordinate(in);
}

MatrixMarketData read_matrix_market_data_string(const std::string& text) {
  std::istringstream iss(text);
  return parse_coordinate(iss);
}

SymmetricMatrix matrix_from_matrix_market(MatrixMarketData data) {
  TM_CHECK(data.has_values(),
           "matrix has field 'pattern' — no values to solve (generate "
           "synthetic values instead, e.g. treemem_cli solve --synthetic)");
  TM_CHECK(data.symmetry != "skew-symmetric",
           "skew-symmetric matrices have no symmetric value set and cannot "
           "be factored by this (Cholesky) solver");
  TM_CHECK(data.pattern.is_square(),
           "matrix is " << data.rows << "x" << data.cols
                        << " — the solver needs a square system");
  TM_CHECK(data.pattern.is_symmetric(),
           "matrix stored as '" << data.symmetry
                                << "' has an unsymmetric pattern — "
                                   "symmetrize it or solve --synthetic");

  if (!data.pattern.has_full_diagonal()) {
    // Pad the missing diagonal entries with explicit zeros: the matrix is
    // unchanged, and the result satisfies Solver::analyze's full-diagonal
    // requirement (a genuinely zero pivot still fails factorization with
    // the not-positive-definite error, as it must).
    const Index n = data.pattern.cols();
    const auto& old_ptr = data.pattern.col_ptr();
    const auto& old_rows = data.pattern.row_idx();
    std::vector<std::int64_t> col_ptr(static_cast<std::size_t>(n) + 1, 0);
    std::vector<Index> row_idx;
    std::vector<double> values;
    row_idx.reserve(old_rows.size() + static_cast<std::size_t>(n));
    values.reserve(old_rows.size() + static_cast<std::size_t>(n));
    for (Index j = 0; j < n; ++j) {
      bool saw_diagonal = false;
      for (std::int64_t o = old_ptr[static_cast<std::size_t>(j)];
           o < old_ptr[static_cast<std::size_t>(j) + 1]; ++o) {
        const Index r = old_rows[static_cast<std::size_t>(o)];
        if (r > j && !saw_diagonal) {
          row_idx.push_back(j);
          values.push_back(0.0);
          saw_diagonal = true;
        }
        saw_diagonal = saw_diagonal || r == j;
        row_idx.push_back(r);
        values.push_back(data.values[static_cast<std::size_t>(o)]);
      }
      if (!saw_diagonal) {
        row_idx.push_back(j);
        values.push_back(0.0);
      }
      col_ptr[static_cast<std::size_t>(j) + 1] =
          static_cast<std::int64_t>(row_idx.size());
    }
    data.pattern = SparsePattern(n, n, std::move(col_ptr), std::move(row_idx));
    data.values = std::move(values);
  }
  // The SymmetricMatrix constructor validates value symmetry, catching
  // numerically unsymmetric `general` files with a clean error.
  return SymmetricMatrix(std::move(data.pattern), std::move(data.values));
}

SymmetricMatrix read_matrix_market_matrix(std::istream& in) {
  return matrix_from_matrix_market(parse_coordinate(in));
}

SymmetricMatrix read_matrix_market_matrix_file(const std::string& path) {
  std::ifstream in(path);
  TM_CHECK(in.good(), "cannot open " << path);
  return read_matrix_market_matrix(in);
}

SymmetricMatrix read_matrix_market_matrix_string(const std::string& text) {
  std::istringstream iss(text);
  return read_matrix_market_matrix(iss);
}

void write_matrix_market(std::ostream& out, const SparsePattern& pattern,
                         bool symmetric_lower) {
  if (symmetric_lower) {
    TM_CHECK(pattern.is_symmetric(),
             "symmetric output requested for a non-symmetric pattern");
  }
  out << "%%MatrixMarket matrix coordinate pattern "
      << (symmetric_lower ? "symmetric" : "general") << "\n";
  out << "% written by treemem\n";

  std::int64_t count = 0;
  for (Index j = 0; j < pattern.cols(); ++j) {
    for (const Index r : pattern.column(j)) {
      if (!symmetric_lower || r >= j) {
        ++count;
      }
    }
  }
  out << pattern.rows() << ' ' << pattern.cols() << ' ' << count << "\n";
  for (Index j = 0; j < pattern.cols(); ++j) {
    for (const Index r : pattern.column(j)) {
      if (!symmetric_lower || r >= j) {
        out << (r + 1) << ' ' << (j + 1) << "\n";
      }
    }
  }
}

void write_matrix_market_file(const std::string& path,
                              const SparsePattern& pattern,
                              bool symmetric_lower) {
  std::ofstream out(path);
  TM_CHECK(out.good(), "cannot open " << path << " for writing");
  write_matrix_market(out, pattern, symmetric_lower);
  TM_CHECK(out.good(), "write to " << path << " failed");
}

void write_matrix_market(std::ostream& out, const SymmetricMatrix& matrix,
                         bool symmetric_lower) {
  const SparsePattern& pattern = matrix.pattern();
  out << "%%MatrixMarket matrix coordinate real "
      << (symmetric_lower ? "symmetric" : "general") << "\n";
  out << "% written by treemem\n";

  std::int64_t count = 0;
  for_each_entry(pattern, [&](Index r, Index j, std::size_t) {
    if (!symmetric_lower || r >= j) {
      ++count;
    }
  });
  out << pattern.rows() << ' ' << pattern.cols() << ' ' << count << "\n";
  for_each_entry(pattern, [&](Index r, Index j, std::size_t offset) {
    if (!symmetric_lower || r >= j) {
      out << (r + 1) << ' ' << (j + 1) << ' '
          << value_text(matrix.values()[offset]) << "\n";
    }
  });
}

void write_matrix_market_file(const std::string& path,
                              const SymmetricMatrix& matrix,
                              bool symmetric_lower) {
  std::ofstream out(path);
  TM_CHECK(out.good(), "cannot open " << path << " for writing");
  write_matrix_market(out, matrix, symmetric_lower);
  TM_CHECK(out.good(), "write to " << path << " failed");
}

}  // namespace treemem
