#include "sparse/generators.hpp"

#include <algorithm>
#include <cmath>

namespace treemem::gen {

namespace {

/// Collects symmetric COO entries (both triangles) plus the diagonal.
class SymmetricCooBuilder {
 public:
  explicit SymmetricCooBuilder(Index n) : n_(n) {
    for (Index i = 0; i < n; ++i) {
      entries_.emplace_back(i, i);
    }
  }

  void add(Index i, Index j) {
    if (i == j) {
      return;  // diagonal already present
    }
    entries_.emplace_back(i, j);
    entries_.emplace_back(j, i);
  }

  SparsePattern build() {
    return SparsePattern::from_coo(n_, n_, std::move(entries_));
  }

 private:
  Index n_;
  std::vector<std::pair<Index, Index>> entries_;
};

}  // namespace

SparsePattern grid2d(Index nx, Index ny, bool nine_point) {
  TM_CHECK(nx >= 1 && ny >= 1, "grid2d: need positive dimensions");
  const Index n = nx * ny;
  SymmetricCooBuilder coo(n);
  auto id = [&](Index x, Index y) { return y * nx + x; };
  for (Index y = 0; y < ny; ++y) {
    for (Index x = 0; x < nx; ++x) {
      if (x + 1 < nx) {
        coo.add(id(x, y), id(x + 1, y));
      }
      if (y + 1 < ny) {
        coo.add(id(x, y), id(x, y + 1));
      }
      if (nine_point && x + 1 < nx && y + 1 < ny) {
        coo.add(id(x, y), id(x + 1, y + 1));
        coo.add(id(x + 1, y), id(x, y + 1));
      }
    }
  }
  return coo.build();
}

SparsePattern grid3d(Index nx, Index ny, Index nz, bool twentyseven_point) {
  TM_CHECK(nx >= 1 && ny >= 1 && nz >= 1, "grid3d: need positive dimensions");
  const Index n = nx * ny * nz;
  SymmetricCooBuilder coo(n);
  auto id = [&](Index x, Index y, Index z) { return (z * ny + y) * nx + x; };
  for (Index z = 0; z < nz; ++z) {
    for (Index y = 0; y < ny; ++y) {
      for (Index x = 0; x < nx; ++x) {
        if (!twentyseven_point) {
          if (x + 1 < nx) coo.add(id(x, y, z), id(x + 1, y, z));
          if (y + 1 < ny) coo.add(id(x, y, z), id(x, y + 1, z));
          if (z + 1 < nz) coo.add(id(x, y, z), id(x, y, z + 1));
        } else {
          // All neighbours within the unit cube around (x,y,z); adding the
          // lexicographically forward half covers each pair once.
          for (Index dz = -1; dz <= 1; ++dz) {
            for (Index dy = -1; dy <= 1; ++dy) {
              for (Index dx = -1; dx <= 1; ++dx) {
                if (dz < 0 || (dz == 0 && (dy < 0 || (dy == 0 && dx <= 0)))) {
                  continue;  // backward or self
                }
                const Index x2 = x + dx;
                const Index y2 = y + dy;
                const Index z2 = z + dz;
                if (x2 >= 0 && x2 < nx && y2 >= 0 && y2 < ny && z2 < nz) {
                  coo.add(id(x, y, z), id(x2, y2, z2));
                }
              }
            }
          }
        }
      }
    }
  }
  return coo.build();
}

SparsePattern grid2d_with_holes(Index nx, Index ny, double hole_fraction,
                                Prng& prng) {
  TM_CHECK(nx >= 1 && ny >= 1, "grid2d_with_holes: need positive dimensions");
  TM_CHECK(hole_fraction >= 0.0 && hole_fraction < 1.0,
           "hole_fraction must be in [0,1)");
  // Keep-mask over grid vertices; removed vertices keep their index (their
  // row is just the diagonal) so the matrix dimension stays nx*ny — this
  // mimics boundary-condition rows in FEM assembly.
  const Index n = nx * ny;
  std::vector<char> alive(static_cast<std::size_t>(n), 1);
  for (Index i = 0; i < n; ++i) {
    if (prng.bernoulli(hole_fraction)) {
      alive[static_cast<std::size_t>(i)] = 0;
    }
  }
  SymmetricCooBuilder coo(n);
  auto id = [&](Index x, Index y) { return y * nx + x; };
  auto ok = [&](Index v) { return alive[static_cast<std::size_t>(v)] == 1; };
  for (Index y = 0; y < ny; ++y) {
    for (Index x = 0; x < nx; ++x) {
      const Index v = id(x, y);
      if (!ok(v)) {
        continue;
      }
      if (x + 1 < nx && ok(id(x + 1, y))) {
        coo.add(v, id(x + 1, y));
      }
      if (y + 1 < ny && ok(id(x, y + 1))) {
        coo.add(v, id(x, y + 1));
      }
    }
  }
  return coo.build();
}

SparsePattern random_symmetric(Index n, double avg_row_nnz, Prng& prng) {
  TM_CHECK(n >= 1, "random_symmetric: need n >= 1");
  TM_CHECK(avg_row_nnz >= 0.0, "random_symmetric: negative density");
  SymmetricCooBuilder coo(n);
  // Each undirected edge contributes 2 off-diagonal entries; to average
  // `avg_row_nnz` off-diagonals per row we need n*avg/2 edges.
  const auto edges =
      static_cast<std::int64_t>(std::llround(n * avg_row_nnz / 2.0));
  for (std::int64_t e = 0; e < edges; ++e) {
    const Index i = static_cast<Index>(prng.uniform_int(0, n - 1));
    const Index j = static_cast<Index>(prng.uniform_int(0, n - 1));
    coo.add(i, j);  // self-pairs are dropped, duplicates merged later
  }
  return coo.build();
}

SparsePattern banded(Index n, Index bandwidth, double keep_probability,
                     Prng& prng) {
  TM_CHECK(n >= 1 && bandwidth >= 0, "banded: bad sizes");
  TM_CHECK(keep_probability > 0.0 && keep_probability <= 1.0,
           "banded: keep probability must be in (0,1]");
  SymmetricCooBuilder coo(n);
  for (Index i = 0; i < n; ++i) {
    for (Index d = 1; d <= bandwidth && i + d < n; ++d) {
      if (keep_probability >= 1.0 || prng.bernoulli(keep_probability)) {
        coo.add(i, i + d);
      }
    }
  }
  return coo.build();
}

SparsePattern arrowhead(Index n, Index width) {
  TM_CHECK(n >= 1 && width >= 1 && width <= n, "arrowhead: bad sizes");
  SymmetricCooBuilder coo(n);
  for (Index i = 0; i < width; ++i) {
    for (Index j = i + 1; j < n; ++j) {
      coo.add(i, j);
    }
  }
  return coo.build();
}

SparsePattern block_tridiagonal(Index blocks, Index block_size,
                                double coupling_density, Prng& prng) {
  TM_CHECK(blocks >= 1 && block_size >= 1, "block_tridiagonal: bad sizes");
  TM_CHECK(coupling_density >= 0.0 && coupling_density <= 1.0,
           "block_tridiagonal: density must be in [0,1]");
  const Index n = blocks * block_size;
  SymmetricCooBuilder coo(n);
  for (Index b = 0; b < blocks; ++b) {
    const Index base = b * block_size;
    // Dense diagonal block.
    for (Index i = 0; i < block_size; ++i) {
      for (Index j = i + 1; j < block_size; ++j) {
        coo.add(base + i, base + j);
      }
    }
    // Random coupling to the next block.
    if (b + 1 < blocks) {
      const Index next = base + block_size;
      for (Index i = 0; i < block_size; ++i) {
        for (Index j = 0; j < block_size; ++j) {
          if (prng.bernoulli(coupling_density)) {
            coo.add(base + i, next + j);
          }
        }
      }
    }
  }
  return coo.build();
}

}  // namespace treemem::gen
