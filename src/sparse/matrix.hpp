// Sparse symmetric matrices *with values* — the numeric companion of the
// pattern substrate in sparse/pattern.hpp.
//
// SymmetricMatrix lived inside the multifrontal engine for the first
// numeric PRs; it moved down into sparse/ so the I/O layer (mm_io) can
// return real-valued matrices without the sparse module depending on the
// factorization engine. multifrontal/numeric.hpp re-exports everything
// here, so existing includes keep working.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/pattern.hpp"

namespace treemem {

/// Visits every stored entry of `pattern` in CSC order as
/// fn(row, col, value_offset) — the one traversal all value-array builders
/// and validators share.
template <typename Fn>
void for_each_entry(const SparsePattern& pattern, Fn&& fn) {
  std::size_t offset = 0;
  for (Index j = 0; j < pattern.cols(); ++j) {
    for (const Index r : pattern.column(j)) {
      fn(r, j, offset++);
    }
  }
}

/// A symmetric matrix with values: `pattern` holds the full symmetric
/// pattern (both triangles + diagonal); `value_of(r, c)` is defined for
/// every stored entry, with value(r,c) == value(c,r).
class SymmetricMatrix {
 public:
  SymmetricMatrix() = default;

  /// `values` aligned with pattern.row_idx(). The symmetry of the values is
  /// validated on construction.
  SymmetricMatrix(SparsePattern pattern, std::vector<double> values);

  const SparsePattern& pattern() const { return pattern_; }
  Index size() const { return pattern_.cols(); }

  /// Raw values, aligned with pattern().row_idx().
  const std::vector<double>& values() const { return values_; }

  /// Value at (row, col); zero if the entry is not stored.
  double value_of(Index row, Index col) const;

  /// A·x over the stored entries — the residual metric's matvec.
  std::vector<double> multiply(const std::vector<double>& x) const;

  /// P A Pᵀ with the same convention as permute_symmetric.
  SymmetricMatrix permuted(const std::vector<Index>& perm) const;

 private:
  SparsePattern pattern_;
  std::vector<double> values_;
};

/// A strictly diagonally dominant (hence SPD) matrix on the given symmetric
/// pattern: off-diagonals drawn in [-1, -1/4] ∪ [1/4, 1], diagonal set to
/// 1 + Σ|row off-diagonals|. Deterministic in `seed`.
SymmetricMatrix make_spd_matrix(const SparsePattern& pattern,
                                std::uint64_t seed);

}  // namespace treemem
