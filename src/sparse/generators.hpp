// Synthetic sparse matrix generators — the corpus substrate standing in for
// the University of Florida collection (see DESIGN.md §4). All generators
// produce symmetric patterns with a full diagonal, ready for the
// ordering → elimination tree → assembly tree pipeline.
#pragma once

#include "sparse/pattern.hpp"
#include "support/prng.hpp"

namespace treemem::gen {

/// 5-point (stencil=false) or 9-point (stencil=true) 2-D grid Laplacian on
/// an nx-by-ny grid; n = nx*ny.
SparsePattern grid2d(Index nx, Index ny, bool nine_point = false);

/// 7-point (false) or 27-point (true) 3-D grid Laplacian; n = nx*ny*nz.
SparsePattern grid3d(Index nx, Index ny, Index nz, bool twentyseven_point = false);

/// 2-D grid with a fraction of vertices deleted (random holes) — produces
/// irregular, possibly disconnected problems like cut-out FEM domains.
SparsePattern grid2d_with_holes(Index nx, Index ny, double hole_fraction,
                                Prng& prng);

/// Random symmetric pattern with ~`avg_row_nnz` off-diagonal entries per
/// row (Erdős–Rényi style), plus the diagonal.
SparsePattern random_symmetric(Index n, double avg_row_nnz, Prng& prng);

/// Symmetric band matrix: |i-j| <= bandwidth entries present, with an
/// optional keep probability (< 1 thins the band randomly).
SparsePattern banded(Index n, Index bandwidth, double keep_probability,
                     Prng& prng);

/// Arrowhead: dense first `width` rows/columns plus a diagonal — elimination
/// trees degenerate to near-chains under natural order.
SparsePattern arrowhead(Index n, Index width);

/// Block-tridiagonal pattern with `blocks` dense-ish diagonal blocks of size
/// `block_size` and random coupling between neighbouring blocks.
SparsePattern block_tridiagonal(Index blocks, Index block_size,
                                double coupling_density, Prng& prng);

}  // namespace treemem::gen
