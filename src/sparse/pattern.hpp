// Sparse matrix *patterns* in compressed sparse column form.
//
// The traversal algorithms of this library consume only symbolic structure
// (elimination trees, column counts), so the sparse substrate stores
// patterns — sorted, duplicate-free row indices per column — and no
// numerical values. This is exactly what Matlab's symbfact consumed in the
// paper's pipeline.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace treemem {

/// Row/column index type (shared with tree NodeId on purpose: column i of
/// the factor maps to node i of the elimination tree).
using Index = std::int32_t;

class SparsePattern {
 public:
  SparsePattern() = default;

  /// Builds from CSC arrays. Row indices must be in range; they are sorted
  /// and deduplicated per column.
  SparsePattern(Index rows, Index cols, std::vector<std::int64_t> col_ptr,
                std::vector<Index> row_idx);

  /// Builds from coordinate (row, col) entries; duplicates are merged.
  static SparsePattern from_coo(Index rows, Index cols,
                                std::vector<std::pair<Index, Index>> entries);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  std::int64_t nnz() const { return static_cast<std::int64_t>(row_idx_.size()); }

  /// Row indices of column j, sorted ascending.
  std::span<const Index> column(Index j) const {
    TM_CHECK(j >= 0 && j < cols_, "column " << j << " out of range");
    return {row_idx_.data() + col_ptr_[static_cast<std::size_t>(j)],
            row_idx_.data() + col_ptr_[static_cast<std::size_t>(j) + 1]};
  }

  const std::vector<std::int64_t>& col_ptr() const { return col_ptr_; }
  const std::vector<Index>& row_idx() const { return row_idx_; }

  bool has_entry(Index row, Index col) const;

  SparsePattern transposed() const;
  bool is_square() const { return rows_ == cols_; }
  bool is_symmetric() const;

  /// Whether every diagonal entry is present (square patterns only).
  bool has_full_diagonal() const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<std::int64_t> col_ptr_;  // size cols+1
  std::vector<Index> row_idx_;
};

/// Pattern of |A| + |Aᵀ| + I — the symmetrization the paper applies to
/// every input matrix before ordering (Section VI-B). Requires square A.
SparsePattern symmetrize(const SparsePattern& a);

/// Symmetric permutation P A Pᵀ. `perm[k]` is the original index placed at
/// position k (so column k of the result is column perm[k] of A, with row
/// indices relabelled by the inverse permutation).
SparsePattern permute_symmetric(const SparsePattern& a,
                                const std::vector<Index>& perm);

/// Validates that `perm` is a permutation of 0..n-1.
void check_permutation(const std::vector<Index>& perm, Index n);

/// Inverse permutation: result[perm[k]] = k.
std::vector<Index> invert_permutation(const std::vector<Index>& perm);

}  // namespace treemem
