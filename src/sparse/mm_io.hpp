// Matrix Market I/O for sparse patterns.
//
// The paper's data set is the University of Florida (SuiteSparse) matrix
// collection, distributed in Matrix Market coordinate format. The reader
// accepts real / integer / complex / pattern fields (values are discarded —
// only the structure matters here) and expands symmetric / skew-symmetric /
// hermitian storage. The writer emits `pattern general` or
// `pattern symmetric` coordinate files, so a corpus can be exported and
// re-read.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/pattern.hpp"

namespace treemem {

/// Parses a Matrix Market stream. Throws treemem::Error on malformed input.
SparsePattern read_matrix_market(std::istream& in);
SparsePattern read_matrix_market_file(const std::string& path);
SparsePattern read_matrix_market_string(const std::string& text);

/// Writes the pattern in coordinate format. When `symmetric_lower` is true
/// the pattern must be symmetric and only the lower triangle is stored.
void write_matrix_market(std::ostream& out, const SparsePattern& pattern,
                         bool symmetric_lower = false);
void write_matrix_market_file(const std::string& path,
                              const SparsePattern& pattern,
                              bool symmetric_lower = false);

}  // namespace treemem
