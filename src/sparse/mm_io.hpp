// Matrix Market I/O for sparse patterns and real-valued matrices.
//
// The paper's data set is the University of Florida (SuiteSparse) matrix
// collection, distributed in Matrix Market coordinate format. Two readers
// share one parser:
//
//   * read_matrix_market — structure only (what the traversal algorithms
//     consume): accepts real / integer / complex / pattern fields and
//     expands symmetric / skew-symmetric / hermitian storage.
//   * read_matrix_market_data / read_matrix_market_matrix — structure AND
//     numeric values, so the solve pipeline factorizes the file's actual
//     matrix instead of a synthetic stand-in. Duplicate coordinate entries
//     are summed (the Matrix Market convention for assembled FEM input),
//     symmetric storage is expanded (skew-symmetric with negated values,
//     hermitian/complex keeping the real part), and `read_matrix_market_matrix`
//     pads absent diagonal entries with explicit zeros so the result is
//     ready for Solver::analyze (which requires a full diagonal).
//
// The writer emits coordinate files: `pattern general`/`pattern symmetric`
// for bare patterns, `real general`/`real symmetric` for valued matrices,
// so a corpus (or a generated SPD system) can be exported and re-read
// bit-exactly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sparse/matrix.hpp"
#include "sparse/pattern.hpp"

namespace treemem {

/// Parses a Matrix Market stream, structure only (values, when present,
/// are skipped). Throws treemem::Error on malformed input.
SparsePattern read_matrix_market(std::istream& in);
SparsePattern read_matrix_market_file(const std::string& path);
SparsePattern read_matrix_market_string(const std::string& text);

/// Everything a Matrix Market coordinate file says: the expanded pattern
/// plus (for non-pattern fields) the values aligned with
/// pattern.row_idx(). Duplicates are summed; symmetry is expanded
/// (skew-symmetric negates the mirrored value; complex/hermitian keep the
/// real part).
struct MatrixMarketData {
  Index rows = 0;
  Index cols = 0;
  std::string field;     ///< real | integer | complex | pattern (lower-case)
  std::string symmetry;  ///< general | symmetric | skew-symmetric | hermitian
  SparsePattern pattern;
  std::vector<double> values;  ///< empty iff field == "pattern"

  bool has_values() const { return !values.empty(); }
};

MatrixMarketData read_matrix_market_data(std::istream& in);
MatrixMarketData read_matrix_market_data_file(const std::string& path);
MatrixMarketData read_matrix_market_data_string(const std::string& text);

/// The value-carrying reader of the solve pipeline: a square matrix with
/// numeric values, returned as a SymmetricMatrix (both triangles stored,
/// full diagonal — absent diagonal entries are padded with explicit
/// zeros, which leaves the matrix unchanged). Throws a clean error when
/// the field is `pattern` (no values to solve — generate synthetic ones),
/// when the symmetry is `skew-symmetric` (no symmetric value set exists),
/// or when a `general` file is structurally or numerically unsymmetric.
SymmetricMatrix read_matrix_market_matrix(std::istream& in);
SymmetricMatrix read_matrix_market_matrix_file(const std::string& path);
SymmetricMatrix read_matrix_market_matrix_string(const std::string& text);

/// The conversion behind read_matrix_market_matrix, for callers that
/// already hold the parsed data (e.g. a CLI that probed the field first).
SymmetricMatrix matrix_from_matrix_market(MatrixMarketData data);

/// Writes the pattern in coordinate format. When `symmetric_lower` is true
/// the pattern must be symmetric and only the lower triangle is stored.
void write_matrix_market(std::ostream& out, const SparsePattern& pattern,
                         bool symmetric_lower = false);
void write_matrix_market_file(const std::string& path,
                              const SparsePattern& pattern,
                              bool symmetric_lower = false);

/// Writes a valued matrix as `real general` (or, with `symmetric_lower`,
/// `real symmetric` storing the lower triangle) with round-trip precision.
void write_matrix_market(std::ostream& out, const SymmetricMatrix& matrix,
                         bool symmetric_lower = true);
void write_matrix_market_file(const std::string& path,
                              const SymmetricMatrix& matrix,
                              bool symmetric_lower = true);

}  // namespace treemem
