#include "sparse/pattern.hpp"

#include <algorithm>
#include <numeric>

namespace treemem {

SparsePattern::SparsePattern(Index rows, Index cols,
                             std::vector<std::int64_t> col_ptr,
                             std::vector<Index> row_idx)
    : rows_(rows), cols_(cols), col_ptr_(std::move(col_ptr)),
      row_idx_(std::move(row_idx)) {
  TM_CHECK(rows_ >= 0 && cols_ >= 0, "negative dimensions");
  TM_CHECK(col_ptr_.size() == static_cast<std::size_t>(cols_) + 1,
           "col_ptr size " << col_ptr_.size() << " != cols+1");
  TM_CHECK(col_ptr_.front() == 0, "col_ptr must start at 0");
  TM_CHECK(col_ptr_.back() == static_cast<std::int64_t>(row_idx_.size()),
           "col_ptr end " << col_ptr_.back() << " != nnz "
                          << row_idx_.size());

  // Sort and deduplicate each column in place.
  std::vector<Index> scratch;
  std::vector<std::int64_t> new_ptr(col_ptr_.size(), 0);
  std::vector<Index> new_idx;
  new_idx.reserve(row_idx_.size());
  for (Index j = 0; j < cols_; ++j) {
    TM_CHECK(col_ptr_[static_cast<std::size_t>(j)] <=
                 col_ptr_[static_cast<std::size_t>(j) + 1],
             "col_ptr not monotone at column " << j);
    scratch.assign(
        row_idx_.begin() + col_ptr_[static_cast<std::size_t>(j)],
        row_idx_.begin() + col_ptr_[static_cast<std::size_t>(j) + 1]);
    for (const Index r : scratch) {
      TM_CHECK(r >= 0 && r < rows_,
               "row index " << r << " out of range in column " << j);
    }
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    new_idx.insert(new_idx.end(), scratch.begin(), scratch.end());
    new_ptr[static_cast<std::size_t>(j) + 1] =
        static_cast<std::int64_t>(new_idx.size());
  }
  col_ptr_ = std::move(new_ptr);
  row_idx_ = std::move(new_idx);
}

SparsePattern SparsePattern::from_coo(
    Index rows, Index cols, std::vector<std::pair<Index, Index>> entries) {
  std::vector<std::int64_t> col_ptr(static_cast<std::size_t>(cols) + 1, 0);
  for (const auto& [r, c] : entries) {
    TM_CHECK(r >= 0 && r < rows && c >= 0 && c < cols,
             "COO entry (" << r << "," << c << ") out of range " << rows
                           << "x" << cols);
    ++col_ptr[static_cast<std::size_t>(c) + 1];
  }
  std::partial_sum(col_ptr.begin(), col_ptr.end(), col_ptr.begin());
  std::vector<Index> row_idx(entries.size());
  std::vector<std::int64_t> cursor(col_ptr.begin(), col_ptr.end() - 1);
  for (const auto& [r, c] : entries) {
    row_idx[static_cast<std::size_t>(cursor[static_cast<std::size_t>(c)]++)] = r;
  }
  return SparsePattern(rows, cols, std::move(col_ptr), std::move(row_idx));
}

bool SparsePattern::has_entry(Index row, Index col) const {
  const auto c = column(col);
  return std::binary_search(c.begin(), c.end(), row);
}

SparsePattern SparsePattern::transposed() const {
  std::vector<std::int64_t> col_ptr(static_cast<std::size_t>(rows_) + 1, 0);
  for (const Index r : row_idx_) {
    ++col_ptr[static_cast<std::size_t>(r) + 1];
  }
  std::partial_sum(col_ptr.begin(), col_ptr.end(), col_ptr.begin());
  std::vector<Index> row_idx(row_idx_.size());
  std::vector<std::int64_t> cursor(col_ptr.begin(), col_ptr.end() - 1);
  for (Index j = 0; j < cols_; ++j) {
    for (const Index r : column(j)) {
      row_idx[static_cast<std::size_t>(cursor[static_cast<std::size_t>(r)]++)] = j;
    }
  }
  return SparsePattern(cols_, rows_, std::move(col_ptr), std::move(row_idx));
}

bool SparsePattern::is_symmetric() const {
  if (!is_square()) {
    return false;
  }
  const SparsePattern t = transposed();
  return col_ptr_ == t.col_ptr() && row_idx_ == t.row_idx();
}

bool SparsePattern::has_full_diagonal() const {
  TM_CHECK(is_square(), "diagonal check needs a square pattern");
  for (Index j = 0; j < cols_; ++j) {
    if (!has_entry(j, j)) {
      return false;
    }
  }
  return true;
}

SparsePattern symmetrize(const SparsePattern& a) {
  TM_CHECK(a.is_square(), "symmetrize needs a square pattern, got "
                              << a.rows() << "x" << a.cols());
  const SparsePattern t = a.transposed();
  std::vector<std::int64_t> col_ptr(static_cast<std::size_t>(a.cols()) + 1, 0);
  std::vector<Index> row_idx;
  row_idx.reserve(static_cast<std::size_t>(2 * a.nnz() + a.cols()));
  std::vector<Index> merged;
  for (Index j = 0; j < a.cols(); ++j) {
    const auto ca = a.column(j);
    const auto cb = t.column(j);
    merged.clear();
    std::set_union(ca.begin(), ca.end(), cb.begin(), cb.end(),
                   std::back_inserter(merged));
    // Insert the diagonal (the +I term).
    if (!std::binary_search(merged.begin(), merged.end(), j)) {
      merged.insert(std::lower_bound(merged.begin(), merged.end(), j), j);
    }
    row_idx.insert(row_idx.end(), merged.begin(), merged.end());
    col_ptr[static_cast<std::size_t>(j) + 1] =
        static_cast<std::int64_t>(row_idx.size());
  }
  return SparsePattern(a.rows(), a.cols(), std::move(col_ptr),
                       std::move(row_idx));
}

void check_permutation(const std::vector<Index>& perm, Index n) {
  TM_CHECK(perm.size() == static_cast<std::size_t>(n),
           "permutation size " << perm.size() << " != " << n);
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  for (const Index v : perm) {
    TM_CHECK(v >= 0 && v < n && !seen[static_cast<std::size_t>(v)],
             "not a permutation: bad entry " << v);
    seen[static_cast<std::size_t>(v)] = 1;
  }
}

std::vector<Index> invert_permutation(const std::vector<Index>& perm) {
  std::vector<Index> inverse(perm.size());
  for (std::size_t k = 0; k < perm.size(); ++k) {
    inverse[static_cast<std::size_t>(perm[k])] = static_cast<Index>(k);
  }
  return inverse;
}

SparsePattern permute_symmetric(const SparsePattern& a,
                                const std::vector<Index>& perm) {
  TM_CHECK(a.is_square(), "permute_symmetric needs a square pattern");
  check_permutation(perm, a.cols());
  const std::vector<Index> inverse = invert_permutation(perm);
  std::vector<std::pair<Index, Index>> entries;
  entries.reserve(static_cast<std::size_t>(a.nnz()));
  for (Index j = 0; j < a.cols(); ++j) {
    for (const Index r : a.column(j)) {
      entries.emplace_back(inverse[static_cast<std::size_t>(r)],
                           inverse[static_cast<std::size_t>(j)]);
    }
  }
  return SparsePattern::from_coo(a.rows(), a.cols(), std::move(entries));
}

}  // namespace treemem
