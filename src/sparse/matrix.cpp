#include "sparse/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "support/prng.hpp"

namespace treemem {

SymmetricMatrix::SymmetricMatrix(SparsePattern pattern,
                                 std::vector<double> values)
    : pattern_(std::move(pattern)), values_(std::move(values)) {
  TM_CHECK(pattern_.is_square(), "SymmetricMatrix: pattern must be square");
  TM_CHECK(values_.size() == static_cast<std::size_t>(pattern_.nnz()),
           "SymmetricMatrix: " << values_.size() << " values for "
                               << pattern_.nnz() << " entries");
  TM_CHECK(pattern_.is_symmetric(), "SymmetricMatrix: pattern not symmetric");
  for_each_entry(pattern_, [&](Index r, Index j, std::size_t) {
    TM_CHECK(value_of(r, j) == value_of(j, r),
             "SymmetricMatrix: asymmetric values at (" << r << "," << j << ")");
  });
}

double SymmetricMatrix::value_of(Index row, Index col) const {
  const auto c = pattern_.column(col);
  const auto it = std::lower_bound(c.begin(), c.end(), row);
  if (it == c.end() || *it != row) {
    return 0.0;
  }
  const std::size_t offset =
      static_cast<std::size_t>(pattern_.col_ptr()[static_cast<std::size_t>(col)]) +
      static_cast<std::size_t>(it - c.begin());
  return values_[offset];
}

std::vector<double> SymmetricMatrix::multiply(
    const std::vector<double>& x) const {
  TM_CHECK(x.size() == static_cast<std::size_t>(pattern_.cols()),
           "multiply: x has " << x.size() << " entries, expected "
                              << pattern_.cols());
  std::vector<double> y(x.size(), 0.0);
  // Both triangles are stored, so one pass over the entries is A·x.
  for_each_entry(pattern_, [&](Index r, Index j, std::size_t offset) {
    y[static_cast<std::size_t>(r)] +=
        values_[offset] * x[static_cast<std::size_t>(j)];
  });
  return y;
}

SymmetricMatrix SymmetricMatrix::permuted(const std::vector<Index>& perm) const {
  const SparsePattern permuted_pattern = permute_symmetric(pattern_, perm);
  std::vector<double> permuted_values(
      static_cast<std::size_t>(permuted_pattern.nnz()));
  for_each_entry(permuted_pattern, [&](Index r, Index j, std::size_t offset) {
    permuted_values[offset] = value_of(perm[static_cast<std::size_t>(r)],
                                       perm[static_cast<std::size_t>(j)]);
  });
  return SymmetricMatrix(permuted_pattern, std::move(permuted_values));
}

SymmetricMatrix make_spd_matrix(const SparsePattern& pattern,
                                std::uint64_t seed) {
  TM_CHECK(pattern.is_symmetric() && pattern.has_full_diagonal(),
           "make_spd_matrix: need a symmetric pattern with full diagonal");
  const Index n = pattern.cols();

  // Deterministic symmetric off-diagonal values: a hash of the unordered
  // index pair, mapped to [-1, -1/4] ∪ [1/4, 1].
  auto pair_value = [&](Index a, Index b) {
    const std::uint64_t lo = static_cast<std::uint64_t>(std::min(a, b));
    const std::uint64_t hi = static_cast<std::uint64_t>(std::max(a, b));
    Prng prng(seed ^ (lo * 0x9e3779b97f4a7c15ULL + hi + 0x1234567ULL));
    const double magnitude = 0.25 + 0.75 * prng.uniform_real();
    return prng.bernoulli(0.5) ? magnitude : -magnitude;
  };

  // Row sums of absolute off-diagonals for the dominant diagonal.
  std::vector<double> row_abs(static_cast<std::size_t>(n), 0.0);
  for_each_entry(pattern, [&](Index r, Index j, std::size_t) {
    if (r != j) {
      row_abs[static_cast<std::size_t>(r)] += std::abs(pair_value(r, j));
    }
  });

  std::vector<double> values(static_cast<std::size_t>(pattern.nnz()));
  for_each_entry(pattern, [&](Index r, Index j, std::size_t offset) {
    values[offset] = (r == j) ? 1.0 + row_abs[static_cast<std::size_t>(r)]
                              : pair_value(r, j);
  });
  return SymmetricMatrix(pattern, std::move(values));
}

}  // namespace treemem
