// Blocked dense front kernels — the dense math of the multifrontal engine,
// extracted behind a pluggable interface.
//
// FrontalEngine (multifrontal/numeric.hpp) owns the sparse choreography of
// a front (row-set union, original-entry assembly, contribution-block slot
// protocol, live-entry metering); everything dense — the partial Cholesky
// of the leading η pivots and the scatter-add of a child's contribution
// block — goes through a FrontKernel. Three implementations:
//
//   * scalar        — the original right-looking scalar loop (panel width
//                     1), the bit-exactness reference;
//   * blocked       — cache-blocked right-looking: panels of `block_size`
//                     columns are factored, then the trailing columns
//                     receive all panel updates in one pass, so the
//                     trailing matrix is streamed once per panel instead of
//                     once per pivot;
//   * parallel      — the blocked kernel with the trailing update split
//                     into column tiles run on workers *leased* from the
//                     persistent pool (parallel/worker_pool.hpp): a panel
//                     that clears the volume gate claims whatever workers
//                     are idle right now — typically the tree-level
//                     executor's, near the root where its frontier has
//                     collapsed — and returns them at panel end. The lease
//                     never blocks and never spawns a thread; when nobody
//                     is idle the panel runs inline and the denial is
//                     counted (lease_stats / SolverStats::lease_denied).
//
// Exactness contract: every kernel applies, to every entry, exactly the
// scalar reference's update sequence — per entry (r, c) the pivot updates
// arrive in ascending k with one subtraction each, and the zero-multiplier
// skip is shared — so `scalar` and `blocked` produce bit-identical factors
// (pinned per-run by tests/dense and across the 56-instance corpus by
// tests/multifrontal/numeric_parallel_test.cpp). The `parallel` kernel's
// *contract* is only a small relative residual (room for future
// reassociating/FMA variants), but the current implementation tiles over
// disjoint columns without reassociating, so it too is bit-identical today
// — tests pin the contract and, separately, the present stronger property.
//
// Flop accounting is identical across kernels (same counting convention,
// same zero skips), so serial-vs-parallel flop equality tests hold under
// any kernel.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "sparse/pattern.hpp"  // Index

namespace treemem {

class WorkerPool;

enum class KernelKind {
  kScalar,        ///< right-looking scalar reference (panel width 1)
  kBlocked,       ///< cache-blocked panels, serial trailing update
  kParallelTiled, ///< blocked + parallel_for over trailing column tiles
};

const char* to_string(KernelKind kind);

/// Selection + tuning knobs for make_front_kernel, threaded through
/// multifrontal_cholesky and factor_parallel.
struct KernelConfig {
  KernelKind kind = KernelKind::kScalar;
  /// Panel width and trailing-update tile width of the blocked kernels
  /// (clamped to >= 1; the scalar reference ignores it). Default 16,
  /// measured with bench/front_kernels on the small-L2 CI-class box:
  /// across the 64–1024-row front sweep, block 16 beats the previous
  /// default 48 in 10 of 12 blocked cells — by up to 1.18× GFLOP/s, and
  /// within 4% in the two cells 48 wins — because a 48-wide panel of a
  /// large front overflows the small L2. On a large-L2 part, rerun the
  /// sweep (front_kernels.csv) and raise this per run via
  /// SolverOptions::factorize.kernel or TREEMEM_KERNEL=blocked:<nb>.
  std::size_t block_size = 16;
  /// Maximum parallel width (calling thread included) of the parallel
  /// kernel's trailing updates; 0 defers to the pool's size (which
  /// resolved TREEMEM_THREADS once, at pool construction).
  unsigned workers = 0;
  /// Minimum trailing-update volume (multiply-subtract pairs) before the
  /// parallel kernel requests a lease; below it the update runs on the
  /// serial core. Leasing costs a mutex claim + condvar wake (~µs), not a
  /// thread spawn (~100 µs), so the gate sits at 2^19 pairs (~1 Mflop) —
  /// 8× below the fork/join era's ~8 Mflop — letting mid-tree fronts
  /// parallelize too. The gate is no longer the only guard: a lease that
  /// finds zero idle workers runs the panel inline (never blocks) and counts
  /// lease_denied in lease_stats()/SolverStats. 0 forces a lease request
  /// on every panel (tests/TSan coverage of the leased path on small
  /// fronts).
  std::size_t min_parallel_volume = 1u << 19;
  /// Worker source for the parallel kernel's leases; nullptr = the
  /// process-wide WorkerPool::instance(). Tests and the bench microbench
  /// pass private pools for deterministic counters.
  WorkerPool* pool = nullptr;
  /// Legacy dispatch: fork/join fresh std::threads per panel
  /// (forkjoin_parallel_for) instead of leasing — the pre-pool behavior,
  /// kept ONLY so bench/front_kernels and the scaling sweep can measure
  /// leased-vs-fork/join on identical tile math. Never enable on a
  /// production path.
  bool fork_join = false;
};

/// Parses a kernel spec — `scalar`, `blocked` or `parallel`, optionally
/// suffixed with `:<block_size>` (a positive integer <= 4096) — onto
/// `base`. Throws treemem::Error on any malformed value: unknown name,
/// empty/garbage/zero block size, trailing characters. Shared by the
/// TREEMEM_KERNEL override and the CLI's --kernel flag.
KernelConfig parse_kernel_spec(const std::string& spec, KernelConfig base = {});

/// `base` overridden by the TREEMEM_KERNEL environment variable. Parsed
/// strictly through support/env.hpp, like TREEMEM_THREADS: a malformed
/// value throws instead of silently switching kernels mid-experiment. Lets
/// benches and tests select kernels without recompiling.
KernelConfig kernel_config_from_env(KernelConfig base = {});

/// Per-kernel lease observability: how often trailing updates that cleared
/// the volume gate actually got pool workers, and how often they found
/// none idle and ran inline. One kernel instance serves one factorization
/// (FrontalEngine owns it), so these counters are per-run.
struct KernelLeaseStats {
  long long leases_granted = 0;
  long long leases_denied = 0;
};

/// The pluggable dense kernel. Instances are immutable and thread-safe:
/// one kernel is shared by every worker of a parallel factorization, and
/// all numeric state lives in the caller's front buffer (the parallel
/// kernel keeps only atomic lease tallies).
///
/// The front is a dense column-major m×m buffer (leading dimension m); only
/// the lower triangle is read or written.
class FrontKernel {
 public:
  virtual ~FrontKernel() = default;

  virtual const char* name() const = 0;
  virtual KernelKind kind() const = 0;

  /// Dense partial Cholesky of the leading `eta` pivots of the m×m front:
  /// loops panels of panel_width() columns through factor_panel +
  /// trailing_update. Returns the flop count (the scalar reference's
  /// convention: 1 per sqrt, 1 per division, 2(m−c) per applied pivot
  /// update of column c). Throws treemem::Error on a non-positive pivot;
  /// `member_columns` (length eta, may be nullptr) names the original
  /// matrix column in that error.
  long long partial_factor(double* front, std::size_t m, std::size_t eta,
                           const Index* member_columns) const;

  /// Factors panel columns [k0, k0+nb): per pivot k ascending, sqrt the
  /// diagonal, scale rows k+1..m of column k, and update the *panel*
  /// columns right of k. Columns >= k0+nb are untouched. The shared base
  /// implementation is the reference order every kernel must preserve.
  virtual long long factor_panel(double* front, std::size_t m,
                                 std::size_t k0, std::size_t nb,
                                 const Index* member_columns) const;

  /// Applies panel [k0, k0+nb)'s updates to the trailing columns
  /// [k0+nb, m): for each trailing entry the nb subtractions land in
  /// ascending k, one at a time — the bit-exactness invariant.
  virtual long long trailing_update(double* front, std::size_t m,
                                    std::size_t k0, std::size_t nb) const = 0;

  /// Scatter-adds a child's cm×cm lower-triangular contribution block into
  /// the front: CB entry (cr, cc) lands at front position
  /// (front_pos[cb_rows[cr]], front_pos[cb_rows[cc]]).
  virtual void extend_add(double* front, std::size_t m,
                          const Index* front_pos, const Index* cb_rows,
                          std::size_t cm, const double* cb_values) const;

  /// Lease grant/denial tallies of this kernel instance; all zeros for the
  /// serial kernels (only the parallel kernel leases).
  virtual KernelLeaseStats lease_stats() const { return {}; }

 protected:
  /// Panel width the partial_factor driver steps by (>= 1).
  virtual std::size_t panel_width() const = 0;
};

/// Builds the configured kernel. The returned kernel is stateless; it may
/// be shared across threads and reused for any number of fronts.
std::unique_ptr<const FrontKernel> make_front_kernel(
    const KernelConfig& config);

}  // namespace treemem
