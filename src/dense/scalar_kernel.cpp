#include "dense/kernel_detail.hpp"

namespace treemem::detail {

namespace {

/// The original right-looking scalar loop, expressed as a panel width of 1:
/// factor_panel does the sqrt + column scale, trailing_update is the rank-1
/// update of every trailing column. This is the exactness reference the
/// other kernels are pinned against.
class ScalarKernel final : public FrontKernel {
 public:
  const char* name() const override { return "scalar"; }
  KernelKind kind() const override { return KernelKind::kScalar; }

  long long trailing_update(double* front, std::size_t m, std::size_t k0,
                            std::size_t nb) const override {
    return update_column_range(front, m, k0, nb, k0 + nb, m);
  }

 protected:
  std::size_t panel_width() const override { return 1; }
};

}  // namespace

std::unique_ptr<const FrontKernel> make_scalar_kernel() {
  return std::make_unique<ScalarKernel>();
}

}  // namespace treemem::detail
