#include <algorithm>
#include <vector>

#include "dense/kernel_detail.hpp"
#include "support/parallel_for.hpp"

namespace treemem::detail {

namespace {

/// The blocked kernel with the trailing update fanned out over column
/// tiles via parallel_for — intra-front parallelism for the large root
/// fronts whose serial elimination caps tree-level speedup. Tiles write
/// disjoint column ranges and read only the (finalized, pre-fork) panel
/// columns, so the update is race-free, and each tile runs the same serial
/// core in the same order, so the result is independent of the tile
/// schedule (and today bit-identical to the scalar reference; the
/// documented contract is only residual-bounded, leaving room for
/// reassociating variants).
class ParallelTiledKernel final : public FrontKernel {
 public:
  ParallelTiledKernel(std::size_t block_size, unsigned workers,
                      std::size_t min_parallel_volume)
      // Resolve the TREEMEM_THREADS/hardware default once: trailing_update
      // runs per panel, and a getenv + sched_getaffinity syscall there is
      // measurable across the thousands of small fronts of a sparse tree.
      : block_size_(block_size),
        workers_(workers == 0 ? default_thread_count() : workers),
        min_parallel_volume_(min_parallel_volume) {}

  const char* name() const override { return "parallel"; }
  KernelKind kind() const override { return KernelKind::kParallelTiled; }

  long long trailing_update(double* front, std::size_t m, std::size_t k0,
                            std::size_t nb) const override {
    const std::size_t c_begin = k0 + nb;
    const std::size_t cols = m - c_begin;
    const std::size_t tiles = (cols + block_size_ - 1) / block_size_;
    // Fork/join costs a few thread spawns per panel; only pay it when the
    // update is big enough to amortize them. The triangular trailing block
    // holds cols·(cols+1)/2 entries, each receiving up to nb
    // multiply-subtract pairs — the unit min_parallel_volume is counted in.
    const bool too_small =
        nb * (cols * (cols + 1) / 2) < min_parallel_volume_;
    if (workers_ <= 1 || tiles < 2 || too_small) {
      return update_column_range(front, m, k0, nb, c_begin, m);
    }
    // Per-tile flop slots instead of an atomic: deterministic and
    // contention-free.
    std::vector<long long> tile_flops(tiles, 0);
    parallel_for(
        tiles,
        [&](std::size_t t) {
          const std::size_t c0 = c_begin + t * block_size_;
          const std::size_t c1 = std::min(m, c0 + block_size_);
          tile_flops[t] = update_column_range(front, m, k0, nb, c0, c1);
        },
        std::min<unsigned>(workers_, static_cast<unsigned>(tiles)));
    long long flops = 0;
    for (const long long f : tile_flops) {
      flops += f;
    }
    return flops;
  }

 protected:
  std::size_t panel_width() const override { return block_size_; }

 private:
  std::size_t block_size_;
  unsigned workers_;
  std::size_t min_parallel_volume_;
};

}  // namespace

std::unique_ptr<const FrontKernel> make_parallel_tiled_kernel(
    std::size_t block_size, unsigned workers,
    std::size_t min_parallel_volume) {
  return std::make_unique<ParallelTiledKernel>(block_size, workers,
                                               min_parallel_volume);
}

}  // namespace treemem::detail
