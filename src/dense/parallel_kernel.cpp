#include <algorithm>
#include <atomic>
#include <vector>

#include "dense/kernel_detail.hpp"
#include "parallel/worker_pool.hpp"
#include "support/parallel_for.hpp"

namespace treemem::detail {

namespace {

/// The blocked kernel with the trailing update fanned out over column
/// tiles on workers leased from the persistent pool — intra-front
/// parallelism for the large root fronts whose serial elimination caps
/// tree-level speedup. Tiles write disjoint column ranges and read only
/// the (finalized, pre-lease) panel columns, so the update is race-free,
/// and each tile runs the same serial core in the same order, so the
/// result is independent of the tile schedule — and of how many workers
/// the lease actually got, including zero (and today bit-identical to the
/// scalar reference; the documented contract is only residual-bounded,
/// leaving room for reassociating variants).
///
/// Leasing is non-blocking by design: a panel that clears the volume gate
/// asks the pool for idle workers and simply runs inline when there are
/// none (counted in lease_stats().leases_denied) — a front can never
/// deadlock against the tree-level executor that owns the workers.
class ParallelTiledKernel final : public FrontKernel {
 public:
  explicit ParallelTiledKernel(const KernelConfig& config)
      // Resolve every knob once at construction: trailing_update runs per
      // panel, and the pool lookup / environment resolution do not belong
      // on that path (the pool itself resolved TREEMEM_THREADS once).
      : block_size_(config.block_size),
        pool_(config.pool != nullptr ? config.pool : &WorkerPool::instance()),
        workers_(config.workers == 0 ? pool_->size() : config.workers),
        min_parallel_volume_(config.min_parallel_volume),
        fork_join_(config.fork_join) {}

  const char* name() const override { return "parallel"; }
  KernelKind kind() const override { return KernelKind::kParallelTiled; }

  long long trailing_update(double* front, std::size_t m, std::size_t k0,
                            std::size_t nb) const override {
    const std::size_t c_begin = k0 + nb;
    const std::size_t cols = m - c_begin;
    const std::size_t tiles = (cols + block_size_ - 1) / block_size_;
    // Even a lease costs a mutex claim and a few condvar wakes per panel;
    // only pay when the update amortizes them. The triangular trailing
    // block holds cols·(cols+1)/2 entries, each receiving up to nb
    // multiply-subtract pairs — the unit min_parallel_volume is counted
    // in.
    const bool too_small =
        nb * (cols * (cols + 1) / 2) < min_parallel_volume_;
    if (workers_ <= 1 || tiles < 2 || too_small) {
      return update_column_range(front, m, k0, nb, c_begin, m);
    }
    // Per-tile flop slots instead of an atomic: deterministic and
    // contention-free.
    std::vector<long long> tile_flops(tiles, 0);
    const auto tile_body = [&](std::size_t t) {
      const std::size_t c0 = c_begin + t * block_size_;
      const std::size_t c1 = std::min(m, c0 + block_size_);
      tile_flops[t] = update_column_range(front, m, k0, nb, c0, c1);
    };
    if (fork_join_) {
      // Legacy dispatch, kept for the leased-vs-fork/join benches: fresh
      // std::threads per panel (the calling thread does not participate).
      forkjoin_parallel_for(
          tiles, tile_body,
          std::min<unsigned>(workers_, static_cast<unsigned>(tiles)));
    } else {
      // The calling thread is always one participant, so a width-w update
      // needs w-1 leased helpers; tiles-1 caps the useful lease size. An
      // empty lease (nobody idle right now — the tree level is using
      // them) runs the panel inline via the same run() contract.
      const unsigned max_helpers = std::min<unsigned>(
          workers_ - 1, static_cast<unsigned>(tiles - 1));
      WorkerLease lease = pool_->try_lease(max_helpers);
      if (lease.empty()) {
        leases_denied_.fetch_add(1, std::memory_order_relaxed);
      } else {
        leases_granted_.fetch_add(1, std::memory_order_relaxed);
      }
      lease.run(tiles, tile_body);
    }
    long long flops = 0;
    for (const long long f : tile_flops) {
      flops += f;
    }
    return flops;
  }

  KernelLeaseStats lease_stats() const override {
    KernelLeaseStats stats;
    stats.leases_granted = leases_granted_.load(std::memory_order_relaxed);
    stats.leases_denied = leases_denied_.load(std::memory_order_relaxed);
    return stats;
  }

 protected:
  std::size_t panel_width() const override { return block_size_; }

 private:
  std::size_t block_size_;
  WorkerPool* pool_;
  unsigned workers_;
  std::size_t min_parallel_volume_;
  bool fork_join_;
  // Tallies, not synchronization: mutable because trailing_update is
  // const (the kernel is numerically stateless and stays shareable).
  mutable std::atomic<long long> leases_granted_{0};
  mutable std::atomic<long long> leases_denied_{0};
};

}  // namespace

std::unique_ptr<const FrontKernel> make_parallel_tiled_kernel(
    const KernelConfig& config) {
  return std::make_unique<ParallelTiledKernel>(config);
}

}  // namespace treemem::detail
