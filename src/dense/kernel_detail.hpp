// Internal plumbing shared by the front-kernel implementations. Not part
// of the public API — include only from src/dense/*.cpp.
#pragma once

#include <cstddef>
#include <memory>

#include "dense/front_kernel.hpp"

namespace treemem::detail {

/// The serial trailing-update core every kernel variant reduces to:
/// applies panel pivots [k0, k0+nb) to columns [c_begin, c_end) of the
/// column-major m×m front, per column in ascending k with one subtraction
/// per entry and the reference's zero-multiplier skip. Returns flops
/// (2(m−c) per applied (k, c) pair). Thread-safe for disjoint column
/// ranges: writes touch only columns [c_begin, c_end), reads outside them
/// touch only the (already finalized) panel columns.
long long update_column_range(double* front, std::size_t m, std::size_t k0,
                              std::size_t nb, std::size_t c_begin,
                              std::size_t c_end);

std::unique_ptr<const FrontKernel> make_scalar_kernel();
std::unique_ptr<const FrontKernel> make_blocked_kernel(std::size_t block_size);
/// Takes the full config: beyond block_size/workers/min_parallel_volume it
/// reads the lease source (config.pool) and the legacy fork_join toggle.
std::unique_ptr<const FrontKernel> make_parallel_tiled_kernel(
    const KernelConfig& config);

}  // namespace treemem::detail
