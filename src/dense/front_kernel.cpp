#include "dense/front_kernel.hpp"

#include <algorithm>
#include <cmath>

#include "dense/kernel_detail.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/env.hpp"

namespace treemem {

const char* to_string(KernelKind kind) {
  switch (kind) {
    case KernelKind::kScalar:
      return "scalar";
    case KernelKind::kBlocked:
      return "blocked";
    case KernelKind::kParallelTiled:
      return "parallel";
  }
  return "?";
}

KernelConfig parse_kernel_spec(const std::string& spec, KernelConfig base) {
  const std::size_t colon = spec.find(':');
  const std::string name = spec.substr(0, colon);
  if (name == "scalar") {
    base.kind = KernelKind::kScalar;
  } else if (name == "blocked") {
    base.kind = KernelKind::kBlocked;
  } else if (name == "parallel") {
    base.kind = KernelKind::kParallelTiled;
  } else {
    TM_CHECK(false, "kernel spec: unknown kernel '"
                        << name << "' in '" << spec
                        << "' (expected scalar | blocked | parallel, "
                           "optionally :<block size>)");
  }
  if (colon != std::string::npos) {
    base.block_size = static_cast<std::size_t>(parse_int_strict(
        spec.substr(colon + 1), 1, 4096, "kernel spec block size"));
  }
  return base;
}

KernelConfig kernel_config_from_env(KernelConfig base) {
  // Strict parse through support/env.hpp: a malformed TREEMEM_KERNEL
  // throws instead of silently running a different kernel mid-experiment.
  if (const std::optional<std::string> env = env_string("TREEMEM_KERNEL")) {
    return parse_kernel_spec(*env, base);
  }
  return base;
}

namespace detail {

long long update_column_range(double* front, std::size_t m, std::size_t k0,
                              std::size_t nb, std::size_t c_begin,
                              std::size_t c_end) {
  // Per trailing column: gather the panel pivots with a nonzero
  // multiplier (the zero skip is shared with the scalar reference — skips
  // must match for bit-identical signed zeros and flop counts), then apply
  // them four at a time in one pass over the column. The chained
  // subtractions keep every entry's update sequence exactly the
  // reference's ascending-k order — bit-identical results — while cutting
  // the passes over the (write-hot) trailing column four-fold.
  constexpr std::size_t kChunk = 64;
  const double* panel_col[kChunk];
  double mult[kChunk];
  long long flops = 0;
  for (std::size_t c = c_begin; c < c_end; ++c) {
    double* const colc = front + c * m;
    for (std::size_t kc = k0; kc < k0 + nb; kc += kChunk) {
      const std::size_t k_hi = std::min(k0 + nb, kc + kChunk);
      std::size_t count = 0;
      for (std::size_t k = kc; k < k_hi; ++k) {
        const double lck = front[k * m + c];  // at(c, k)
        if (lck != 0.0) {
          panel_col[count] = front + k * m;
          mult[count] = lck;
          ++count;
        }
      }
      flops +=
          2 * static_cast<long long>(m - c) * static_cast<long long>(count);
      std::size_t i = 0;
      for (; i + 4 <= count; i += 4) {
        const double* const p0 = panel_col[i];
        const double* const p1 = panel_col[i + 1];
        const double* const p2 = panel_col[i + 2];
        const double* const p3 = panel_col[i + 3];
        const double l0 = mult[i];
        const double l1 = mult[i + 1];
        const double l2 = mult[i + 2];
        const double l3 = mult[i + 3];
        for (std::size_t r = c; r < m; ++r) {
          colc[r] = (((colc[r] - p0[r] * l0) - p1[r] * l1) - p2[r] * l2) -
                    p3[r] * l3;
        }
      }
      for (; i < count; ++i) {
        const double* const colk = panel_col[i];
        const double lck = mult[i];
        for (std::size_t r = c; r < m; ++r) {
          colc[r] -= colk[r] * lck;
        }
      }
    }
  }
  return flops;
}

}  // namespace detail

long long FrontKernel::partial_factor(double* front, std::size_t m,
                                      std::size_t eta,
                                      const Index* member_columns) const {
  TM_CHECK(eta <= m, "partial_factor: eta " << eta << " exceeds front size "
                                            << m);
  const std::size_t nb = std::max<std::size_t>(1, panel_width());
  long long flops = 0;
  for (std::size_t k0 = 0; k0 < eta; k0 += nb) {
    const std::size_t width = std::min(nb, eta - k0);
    {
      obs::TraceSpan span("panel", "dense", obs::TraceRecorder::kNoLane,
                          "k0", static_cast<long long>(k0), "width",
                          static_cast<long long>(width));
      flops += factor_panel(front, m, k0, width, member_columns);
    }
    if (k0 + width < m) {
      // The parallel kernel's lease grant/deny instants (from the pool)
      // land inside this span, tying an inline panel to its denial.
      obs::TraceSpan span("trailing_update", "dense",
                          obs::TraceRecorder::kNoLane, "k0",
                          static_cast<long long>(k0), "cols",
                          static_cast<long long>(m - k0 - width));
      flops += trailing_update(front, m, k0, width);
    }
  }
  return flops;
}

long long FrontKernel::factor_panel(double* front, std::size_t m,
                                    std::size_t k0, std::size_t nb,
                                    const Index* member_columns) const {
  long long flops = 0;
  auto at = [&](std::size_t r, std::size_t c) -> double& {
    return front[c * m + r];
  };
  for (std::size_t k = k0; k < k0 + nb; ++k) {
    const double pivot = at(k, k);
    TM_CHECK(pivot > 0.0,
             "matrix is not positive definite at column "
                 << (member_columns ? member_columns[k]
                                    : static_cast<Index>(k))
                 << " (pivot " << pivot << ")");
    const double lkk = std::sqrt(pivot);
    at(k, k) = lkk;
    ++flops;
    for (std::size_t r = k + 1; r < m; ++r) {
      at(r, k) /= lkk;
      ++flops;
    }
    // Right-looking update of the rest of the panel only; trailing columns
    // get this pivot later, in the same ascending-k order, via
    // trailing_update.
    flops += detail::update_column_range(front, m, k, 1, k + 1, k0 + nb);
  }
  return flops;
}

void FrontKernel::extend_add(double* front, std::size_t m,
                             const Index* front_pos, const Index* cb_rows,
                             std::size_t cm, const double* cb_values) const {
  for (std::size_t cc = 0; cc < cm; ++cc) {
    const Index gcol = cb_rows[cc];
    TM_ASSERT(front_pos[static_cast<std::size_t>(gcol)] >= 0,
              "child CB column outside the parent front");
    const std::size_t fc =
        static_cast<std::size_t>(front_pos[static_cast<std::size_t>(gcol)]);
    double* const colf = front + fc * m;
    for (std::size_t cr = cc; cr < cm; ++cr) {
      const Index grow = cb_rows[cr];
      const std::size_t fr =
          static_cast<std::size_t>(front_pos[static_cast<std::size_t>(grow)]);
      colf[fr] += cb_values[cc * cm + cr];
    }
  }
}

std::unique_ptr<const FrontKernel> make_front_kernel(
    const KernelConfig& config) {
  const std::size_t nb = std::max<std::size_t>(1, config.block_size);
  switch (config.kind) {
    case KernelKind::kScalar:
      return detail::make_scalar_kernel();
    case KernelKind::kBlocked:
      return detail::make_blocked_kernel(nb);
    case KernelKind::kParallelTiled: {
      KernelConfig clamped = config;
      clamped.block_size = nb;
      return detail::make_parallel_tiled_kernel(clamped);
    }
  }
  TM_CHECK(false, "make_front_kernel: unknown kernel kind");
  return nullptr;  // unreachable
}

}  // namespace treemem
