#include "dense/kernel_detail.hpp"

namespace treemem::detail {

namespace {

/// Cache-blocked right-looking kernel: panels of `block_size` pivots are
/// factored in place, then the whole panel is applied to the trailing
/// columns in one pass. The trailing matrix is streamed once per panel
/// instead of once per pivot — a block_size-fold cut in memory traffic —
/// while each trailing column stays register/L1-hot across the panel's
/// pivots. Per-entry update order is unchanged from the scalar reference,
/// so the factor is bit-identical.
class BlockedKernel final : public FrontKernel {
 public:
  explicit BlockedKernel(std::size_t block_size) : block_size_(block_size) {}

  const char* name() const override { return "blocked"; }
  KernelKind kind() const override { return KernelKind::kBlocked; }

  long long trailing_update(double* front, std::size_t m, std::size_t k0,
                            std::size_t nb) const override {
    return update_column_range(front, m, k0, nb, k0 + nb, m);
  }

 protected:
  std::size_t panel_width() const override { return block_size_; }

 private:
  std::size_t block_size_;
};

}  // namespace

std::unique_ptr<const FrontKernel> make_blocked_kernel(
    std::size_t block_size) {
  return std::make_unique<BlockedKernel>(block_size);
}

}  // namespace treemem::detail
