// Shared support for exercising the dense front kernels: deterministic
// dense SPD front synthesis and the residual-contract metric. Used by the
// tests/dense suite and the front-kernel benches so the generator recipe
// and the contract threshold cannot drift between the two.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "support/prng.hpp"

namespace treemem {

/// A dense SPD front (column-major m×m, lower triangle filled, upper part
/// zero — the storage FrontKernel::partial_factor consumes): off-diagonals
/// in [-0.75, 0.75] with `zero_fraction` exact zeros planted below the
/// diagonal (the kernels' shared zero-multiplier skip is part of what gets
/// exercised), diagonal made dominant. Deterministic in `seed`.
inline std::vector<double> make_dense_spd_front(std::size_t m,
                                                std::uint64_t seed,
                                                double zero_fraction = 0.2) {
  Prng prng(seed * 7919 + 1);
  std::vector<double> a(m * m, 0.0);
  std::vector<double> row_abs(m, 0.0);
  for (std::size_t c = 0; c < m; ++c) {
    for (std::size_t r = c + 1; r < m; ++r) {
      const double v = prng.bernoulli(zero_fraction)
                           ? 0.0
                           : 1.5 * prng.uniform_real() - 0.75;
      a[c * m + r] = v;
      row_abs[r] += std::abs(v);
      row_abs[c] += std::abs(v);
    }
  }
  for (std::size_t k = 0; k < m; ++k) {
    a[k * m + k] = 1.0 + row_abs[k];
  }
  return a;
}

/// ‖b − a‖_F / ‖a‖_F over same-layout value arrays — the metric of the
/// parallel-tiled kernel's residual contract (dense/front_kernel.hpp);
/// tests and benches compare it against 1e-12.
inline double relative_frobenius_distance(const std::vector<double>& a,
                                          const std::vector<double>& b) {
  double norm = 0.0, diff = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    norm += a[i] * a[i];
    const double d = b[i] - a[i];
    diff += d * d;
  }
  return std::sqrt(diff) / std::max(std::sqrt(norm), 1e-300);
}

}  // namespace treemem
