#include "core/trace.hpp"

#include <algorithm>
#include <sstream>

#include "core/check.hpp"
#include "support/ascii_plot.hpp"

namespace treemem {

ExecutionTrace trace_execution(const Tree& tree, const Traversal& order) {
  IoSchedule schedule;
  schedule.order = order;
  return trace_execution(tree, schedule);
}

ExecutionTrace trace_execution(const Tree& tree, const IoSchedule& schedule) {
  const auto p = static_cast<std::size_t>(tree.size());
  const auto& order = schedule.order;

  // Validate once with the reference checker (large budget: traces are
  // about recording, not enforcing, a budget).
  {
    const CheckResult check =
        check_out_of_core(tree, schedule, kInfiniteWeight / 2);
    TM_CHECK(check.feasible, "trace_execution: invalid schedule: " << check.reason);
  }

  std::vector<std::vector<NodeId>> writes_at(p);
  for (const IoWrite& w : schedule.writes) {
    writes_at[static_cast<std::size_t>(w.step)].push_back(w.node);
  }

  ExecutionTrace trace;
  trace.steps.reserve(p);
  std::vector<char> evicted(p, 0);
  Weight resident = tree.file_size(tree.root());
  trace.peak = resident;

  for (std::size_t t = 0; t < p; ++t) {
    TraceStep step;
    step.node = order[t];
    for (const NodeId w : writes_at[t]) {
      const Weight size = tree.file_size(w);
      evicted[static_cast<std::size_t>(w)] = 1;
      resident -= size;
      step.written += size;
      trace.io_volume += size;
    }
    if (evicted[static_cast<std::size_t>(step.node)]) {
      step.read_back = tree.file_size(step.node);
      resident += step.read_back;
      evicted[static_cast<std::size_t>(step.node)] = 0;
    }
    step.resident_before = resident;
    step.transient = resident + tree.work_size(step.node) +
                     tree.child_file_sum(step.node);
    resident += tree.child_file_sum(step.node) - tree.file_size(step.node);
    step.resident_after = resident;
    trace.peak = std::max(trace.peak, step.transient);
    trace.steps.push_back(step);
  }
  TM_ASSERT(resident == 0, "trace must drain to zero, got " << resident);
  return trace;
}

std::string render_memory_profile(const ExecutionTrace& trace, int width,
                                  int height) {
  PlotSeries transient;
  transient.label = "transient memory";
  PlotSeries resident;
  resident.label = "resident files";
  for (std::size_t t = 0; t < trace.steps.size(); ++t) {
    transient.x.push_back(static_cast<double>(t));
    transient.y.push_back(static_cast<double>(trace.steps[t].transient));
    resident.x.push_back(static_cast<double>(t));
    resident.y.push_back(static_cast<double>(trace.steps[t].resident_after));
  }
  PlotOptions options;
  options.width = width;
  options.height = height;
  options.x_label = "step";
  options.y_label = "memory";
  std::ostringstream oss;
  oss << render_ascii_plot({transient, resident}, options);
  const auto peak_step = std::max_element(
      trace.steps.begin(), trace.steps.end(),
      [](const TraceStep& a, const TraceStep& b) {
        return a.transient < b.transient;
      });
  if (peak_step != trace.steps.end()) {
    oss << "  peak " << trace.peak << " at step "
        << (peak_step - trace.steps.begin()) << " (node " << peak_step->node
        << ")";
    if (trace.io_volume > 0) {
      oss << ", I/O volume " << trace.io_volume;
    }
    oss << "\n";
  }
  return oss.str();
}

}  // namespace treemem
