// Traversal types shared by all algorithms of the paper.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "tree/tree.hpp"

namespace treemem {

/// An execution order σ: order[t] is the node executed at step t.
/// Out-tree semantics: the root comes first and every node appears after its
/// parent. (For in-tree / multifrontal bottom-up semantics, use the reverse;
/// see core/variants.hpp.)
using Traversal = std::vector<NodeId>;

/// Result of a MinMemory algorithm: the traversal and its memory peak
/// (the smallest M for which Algorithm 1 accepts `order`).
struct TraversalResult {
  Weight peak = 0;
  Traversal order;
};

/// One secondary-memory write: just before executing step `step`, the input
/// file of `node` is written out (τ(node) = step in the paper's notation).
/// The file is read back right before `node` itself executes.
struct IoWrite {
  NodeId step = 0;
  NodeId node = kNoNode;
};

/// A full out-of-core schedule: execution order plus write events.
struct IoSchedule {
  Traversal order;
  std::vector<IoWrite> writes;

  /// Total volume written to secondary memory (the paper's IO objective;
  /// the same volume is read back, so total traffic is twice this).
  Weight io_volume(const Tree& tree) const {
    Weight total = 0;
    for (const IoWrite& w : writes) {
      total += tree.file_size(w.node);
    }
    return total;
  }
};

/// σ reversed — converts between out-tree (top-down) and in-tree
/// (bottom-up) readings of the same schedule (Section III-C of the paper).
inline Traversal reverse_traversal(Traversal order) {
  std::reverse(order.begin(), order.end());
  return order;
}

}  // namespace treemem
