// Model variants of Section III-C, with both directions of each reduction:
// a transform producing an equivalent instance of the base model, and a
// direct simulator of the variant model so the equivalence itself is
// testable rather than assumed.
#pragma once

#include "core/traversal.hpp"
#include "tree/tree.hpp"

namespace treemem {

// ---------------------------------------------------------------------------
// Pebble game "with replacement" (Fig. 1): executing i needs
// max(f_i, sum of children files) — the input pebbles are reused for the
// outputs. Simulated in the base model by n_i = −min(f_i, Σ_c f_c).
// ---------------------------------------------------------------------------

/// Builds the base-model instance equivalent to the replacement-model
/// reading of `tree`'s files (the original n_i are ignored, as the
/// replacement game has no execution files).
Tree replacement_transform(const Tree& tree);

/// Peak of a traversal under the replacement model directly:
/// transient(i) = resident − f_i + max(f_i, Σ_c f_c).
Weight replacement_model_peak(const Tree& tree, const Traversal& order);

// ---------------------------------------------------------------------------
// Liu's (x⁺, x⁻) model (Fig. 2): node x has a processing cost n⁺_x (peak
// number of L-nonzeros alive while eliminating column x) and a storage cost
// n⁻_x (nonzeros of the subtree still needed afterwards). Mapped onto the
// base model by f_x = n⁻_x and n_x = n⁺_x − n⁻_x − Σ_{c} n⁻_c.
// ---------------------------------------------------------------------------

struct LiuModelInstance {
  std::vector<NodeId> parent;   ///< tree structure (kNoNode for the root)
  std::vector<Weight> n_plus;   ///< processing peaks
  std::vector<Weight> n_minus;  ///< subtree storage after processing
};

/// Builds the equivalent base-model tree. Requires, for every node,
/// n⁺_x ≥ Σ_{children} n⁻_c (the processing peak includes the children
/// subtrees' storage), which real factorizations satisfy.
Tree from_liu_model(const LiuModelInstance& instance);

/// Peak of a *bottom-up* order under Liu's model directly: executing x
/// costs (Σ storage of completed subtrees other than x's children) + n⁺_x,
/// and leaves n⁻_x stored.
Weight liu_model_peak(const LiuModelInstance& instance, const Traversal& order);

}  // namespace treemem
