#include "core/brute_force.hpp"

#include <algorithm>
#include <vector>

namespace treemem {

namespace {

struct MaskDp {
  const Tree& tree;
  std::vector<Weight> memo;       // min peak from this executed-set onward
  std::vector<char> known;
  std::uint32_t full;

  explicit MaskDp(const Tree& t)
      : tree(t),
        memo(std::size_t{1} << t.size(), 0),
        known(std::size_t{1} << t.size(), 0),
        full((t.size() == 32 ? 0xffffffffu
                             : ((std::uint32_t{1} << t.size()) - 1))) {}

  bool executed(std::uint32_t mask, NodeId u) const {
    return (mask >> u) & 1u;
  }

  bool ready(std::uint32_t mask, NodeId u) const {
    if (executed(mask, u)) {
      return false;
    }
    const NodeId par = tree.parent(u);
    return par == kNoNode || executed(mask, par);
  }

  Weight resident(std::uint32_t mask) const {
    Weight total = 0;
    for (NodeId u = 0; u < tree.size(); ++u) {
      if (ready(mask, u)) {
        total += tree.file_size(u);
      }
    }
    return total;
  }

  Weight solve(std::uint32_t mask) {
    if (mask == full) {
      return 0;
    }
    if (known[mask]) {
      return memo[mask];
    }
    known[mask] = 1;
    memo[mask] = kInfiniteWeight;  // breaks cycles; trees have none
    const Weight res = resident(mask);
    Weight best = kInfiniteWeight;
    for (NodeId u = 0; u < tree.size(); ++u) {
      if (!ready(mask, u)) {
        continue;
      }
      const Weight transient = res + tree.work_size(u) + tree.child_file_sum(u);
      const Weight rest = solve(mask | (std::uint32_t{1} << u));
      best = std::min(best, std::max(transient, rest));
    }
    memo[mask] = best;
    return best;
  }
};

}  // namespace

Weight brute_force_min_memory(const Tree& tree) {
  TM_CHECK(tree.size() <= 22,
           "brute_force_min_memory: tree too large (" << tree.size() << ")");
  MaskDp dp(tree);
  return std::max(tree.file_size(tree.root()), dp.solve(0));
}

namespace {

Weight postorder_peak_rec(const Tree& tree, NodeId u) {
  const auto kids = tree.children(u);
  const Weight floor =
      std::max(tree.file_size(u), tree.mem_req(u));
  if (kids.empty()) {
    return floor;
  }
  TM_CHECK(kids.size() <= 8,
           "brute_force_best_postorder: node " << u << " has " << kids.size()
                                               << " children (max 8)");
  std::vector<Weight> peak(kids.size());
  std::vector<std::size_t> perm(kids.size());
  for (std::size_t t = 0; t < kids.size(); ++t) {
    peak[t] = postorder_peak_rec(tree, kids[t]);
    perm[t] = t;
  }
  Weight best = kInfiniteWeight;
  std::sort(perm.begin(), perm.end());
  do {
    Weight suffix = 0;
    Weight cost = floor;
    for (std::size_t t = perm.size(); t-- > 0;) {
      const std::size_t c = perm[t];
      cost = std::max(cost, peak[c] + suffix);
      suffix += tree.file_size(kids[c]);
    }
    best = std::min(best, cost);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

void enumerate_orders(const Tree& tree, std::vector<NodeId>& ready,
                      Traversal& prefix, std::vector<Traversal>& out) {
  if (prefix.size() == static_cast<std::size_t>(tree.size())) {
    out.push_back(prefix);
    return;
  }
  // Choose each ready node in turn.
  for (std::size_t i = 0; i < ready.size(); ++i) {
    const NodeId u = ready[i];
    std::vector<NodeId> next_ready = ready;
    next_ready.erase(next_ready.begin() + static_cast<std::ptrdiff_t>(i));
    for (const NodeId c : tree.children(u)) {
      next_ready.push_back(c);
    }
    prefix.push_back(u);
    enumerate_orders(tree, next_ready, prefix, out);
    prefix.pop_back();
  }
}

}  // namespace

Weight brute_force_best_postorder(const Tree& tree) {
  return postorder_peak_rec(tree, tree.root());
}

std::vector<Traversal> all_traversals(const Tree& tree) {
  TM_CHECK(tree.size() <= 9,
           "all_traversals: tree too large (" << tree.size() << ")");
  std::vector<Traversal> out;
  std::vector<NodeId> ready{tree.root()};
  Traversal prefix;
  enumerate_orders(tree, ready, prefix, out);
  return out;
}

}  // namespace treemem
