// The MinIO problem (Section V): given a traversal and a memory budget M,
// schedule file evictions to secondary memory minimizing the written
// volume. Theorem 2 shows even this fixed-traversal sub-problem is
// NP-complete, so the paper proposes six greedy eviction policies
// (Section V-B); all six are implemented here on a shared simulator.
//
// At each step, S is the list of produced-and-resident input files ordered
// by *latest next use first* (descending σ-position), and
//   IOReq(j) = (MemReq(j) − f_j) − M_avail
// is the volume that must leave memory before node j can execute.
#pragma once

#include "core/traversal.hpp"
#include "tree/tree.hpp"

namespace treemem {

enum class EvictionPolicy {
  kLsnf,        ///< Last Scheduled Node First: evict farthest-use files
  kFirstFit,    ///< first single file covering IOReq; LSNF fallback
  kBestFit,     ///< repeatedly the file whose size is closest to IOReq
  kFirstFill,   ///< repeatedly the first file smaller than IOReq; LSNF fallback
  kBestFill,    ///< repeatedly the largest file smaller than IOReq; LSNF fallback
  kBestKCombination,  ///< best subset of the first K files (K = 5 by default)
};

const char* to_string(EvictionPolicy policy);
const std::vector<EvictionPolicy>& all_eviction_policies();

struct MinIoOptions {
  int best_k = 5;  ///< window size for kBestKCombination (the paper uses 5)
};

struct MinIoResult {
  /// False iff no eviction schedule can make the traversal fit, i.e.
  /// M < max_t MemReq(σ(t)).
  bool feasible = false;
  /// Total volume written to secondary memory (the MinIO objective).
  Weight io_volume = 0;
  /// Number of files written.
  int files_written = 0;
  /// The full schedule (passes check_out_of_core with the same volume).
  IoSchedule schedule;
};

/// Simulates `order` under budget `memory`, evicting with `policy`.
MinIoResult minio_heuristic(const Tree& tree, const Traversal& order,
                            Weight memory, EvictionPolicy policy,
                            const MinIoOptions& options = {});

/// Optimal I/O volume of the *divisible* relaxation for this traversal,
/// where fractions of files may be evicted (fractional LSNF, optimal for
/// the divisible problem per Section II-B discussion). This is a lower
/// bound on every integral eviction schedule for the same traversal — the
/// "future work" bound the paper asks for, scoped per-traversal. Returns
/// kInfiniteWeight when the traversal cannot fit at all.
Weight divisible_io_lower_bound(const Tree& tree, const Traversal& order,
                                Weight memory);

}  // namespace treemem
