#include "core/liu.hpp"

#include <algorithm>
#include <queue>
#include <utility>

namespace treemem {

namespace {

/// One hill–valley segment. Levels are relative to the owning subtree's
/// start; `seq` is the bottom-up execution sequence realizing the segment
/// (empty when only peaks are requested).
struct Segment {
  Weight hill = 0;
  Weight valley = 0;
  std::vector<NodeId> seq;
};

using Chain = std::vector<Segment>;

/// Appends `s` to the normalized chain `chain`, restoring the invariant
/// hills strictly decreasing / valleys strictly increasing by absorbing
/// dominated predecessors (their execution sequences are spliced in front).
void push_normalized(Chain& chain, Segment s) {
  while (!chain.empty()) {
    Segment& back = chain.back();
    if (back.hill <= s.hill) {
      // The earlier hill is dominated by this later, higher hill; its valley
      // lies before the new maximum and disappears from the canonical form.
      if (!back.seq.empty() || !s.seq.empty()) {
        std::vector<NodeId> merged = std::move(back.seq);
        merged.insert(merged.end(), s.seq.begin(), s.seq.end());
        s.seq = std::move(merged);
      }
      chain.pop_back();
    } else if (back.valley >= s.valley) {
      // The later valley is at least as deep: the earlier one is not a true
      // valley of the canonical decomposition.
      s.hill = back.hill;
      if (!back.seq.empty() || !s.seq.empty()) {
        std::vector<NodeId> merged = std::move(back.seq);
        merged.insert(merged.end(), s.seq.begin(), s.seq.end());
        s.seq = std::move(merged);
      }
      chain.pop_back();
    } else {
      break;
    }
  }
  chain.push_back(std::move(s));
}

/// Merges the children chains of one node in non-increasing h−v order and
/// appends the node's own execution event; returns the normalized chain.
/// `track_order` controls whether execution sequences are carried along.
Chain combine_at_node(const Tree& tree, NodeId x, std::vector<Chain> kids,
                      bool track_order, LiuMergeStrategy strategy) {
  Chain out;

  // Current resident level contributed by each child chain, and the total.
  std::vector<Weight> level(kids.size(), 0);
  Weight total = 0;

  auto emit = [&](std::size_t chain_idx, Segment& seg) {
    const Weight abs_hill = total - level[chain_idx] + seg.hill;
    total += seg.valley - level[chain_idx];
    level[chain_idx] = seg.valley;
    Segment abs_seg;
    abs_seg.hill = abs_hill;
    abs_seg.valley = total;
    abs_seg.seq = std::move(seg.seq);
    push_normalized(out, std::move(abs_seg));
  };

  if (strategy == LiuMergeStrategy::kHeap) {
    // Max-heap on h−v over the front segments of all chains.
    struct HeapEntry {
      Weight key;
      std::size_t chain;
      std::size_t seg;
    };
    auto cmp = [](const HeapEntry& a, const HeapEntry& b) {
      if (a.key != b.key) {
        return a.key < b.key;  // max-heap
      }
      return a.chain > b.chain;  // deterministic tie-break
    };
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, decltype(cmp)> heap(cmp);
    for (std::size_t c = 0; c < kids.size(); ++c) {
      if (!kids[c].empty()) {
        heap.push({kids[c][0].hill - kids[c][0].valley, c, 0});
      }
    }
    while (!heap.empty()) {
      const HeapEntry top = heap.top();
      heap.pop();
      emit(top.chain, kids[top.chain][top.seg]);
      const std::size_t next = top.seg + 1;
      if (next < kids[top.chain].size()) {
        heap.push({kids[top.chain][next].hill - kids[top.chain][next].valley,
                   top.chain, next});
      }
    }
  } else {
    // Flatten and stable-sort by h−v descending. Within a chain h−v is
    // strictly decreasing, so a stable sort preserves chain order.
    std::vector<std::pair<std::size_t, std::size_t>> flat;
    for (std::size_t c = 0; c < kids.size(); ++c) {
      for (std::size_t s = 0; s < kids[c].size(); ++s) {
        flat.emplace_back(c, s);
      }
    }
    std::stable_sort(flat.begin(), flat.end(), [&](const auto& a, const auto& b) {
      const Weight ka = kids[a.first][a.second].hill - kids[a.first][a.second].valley;
      const Weight kb = kids[b.first][b.second].hill - kids[b.first][b.second].valley;
      return ka > kb;
    });
    for (const auto& [c, s] : flat) {
      emit(c, kids[c][s]);
    }
  }

  // The node's own execution: all children files (= total) are resident,
  // n_x and f_x live on top, and afterwards only f_x remains.
  Segment self;
  self.hill = total + tree.work_size(x) + tree.file_size(x);
  self.valley = tree.file_size(x);
  if (track_order) {
    self.seq.push_back(x);
  }
  push_normalized(out, std::move(self));
  return out;
}

/// Bottom-up driver shared by both public entry points.
Chain build_root_chain(const Tree& tree, bool track_order,
                       LiuMergeStrategy strategy) {
  const auto p = static_cast<std::size_t>(tree.size());
  std::vector<Chain> chain(p);
  const auto& order = tree.top_down_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId x = *it;
    std::vector<Chain> kids;
    kids.reserve(static_cast<std::size_t>(tree.num_children(x)));
    for (const NodeId c : tree.children(x)) {
      kids.push_back(std::move(chain[static_cast<std::size_t>(c)]));
      chain[static_cast<std::size_t>(c)].clear();
    }
    chain[static_cast<std::size_t>(x)] =
        combine_at_node(tree, x, std::move(kids), track_order, strategy);
  }
  return std::move(chain[static_cast<std::size_t>(tree.root())]);
}

Weight chain_peak(const Chain& chain) {
  TM_ASSERT(!chain.empty(), "Liu: empty root chain");
  // Hills are decreasing, valleys increasing: the peak is the first hill or
  // the final resident level, whichever is larger (the latter matters only
  // for variant models with negative execution files).
  return std::max(chain.front().hill, chain.back().valley);
}

}  // namespace

Weight liu_optimal_peak(const Tree& tree, LiuMergeStrategy strategy) {
  return chain_peak(build_root_chain(tree, /*track_order=*/false, strategy));
}

TraversalResult liu_optimal(const Tree& tree, LiuMergeStrategy strategy) {
  Chain root_chain = build_root_chain(tree, /*track_order=*/true, strategy);
  TraversalResult result;
  result.peak = chain_peak(root_chain);
  result.order.reserve(static_cast<std::size_t>(tree.size()));
  for (Segment& seg : root_chain) {
    result.order.insert(result.order.end(), seg.seq.begin(), seg.seq.end());
  }
  TM_ASSERT(result.order.size() == static_cast<std::size_t>(tree.size()),
            "Liu: traversal lost nodes: " << result.order.size() << " of "
                                          << tree.size());
  // Liu's construction is bottom-up (in-tree); report out-tree order.
  std::reverse(result.order.begin(), result.order.end());
  return result;
}

}  // namespace treemem
