#include "core/planner.hpp"

#include <algorithm>

#include "core/liu.hpp"
#include "core/minio.hpp"
#include "core/minmem.hpp"
#include "core/postorder.hpp"

namespace treemem {

ExecutionPlan plan_execution(const Tree& tree, Weight memory_budget,
                             const PlannerOptions& options) {
  ExecutionPlan plan;

  const TraversalResult postorder = best_postorder(tree);
  const MinMemResult optimal = minmem_optimal(tree);
  plan.in_core_optimum = optimal.peak;

  // Regime 1: the best postorder fits — maximal locality, zero I/O.
  if (memory_budget >= postorder.peak) {
    plan.feasible = true;
    plan.strategy = "postorder/in-core";
    plan.schedule.order = postorder.order;
    plan.peak = postorder.peak;
    return plan;
  }

  // Regime 2: only an optimal traversal fits.
  if (memory_budget >= optimal.peak) {
    plan.feasible = true;
    plan.strategy = "minmem/in-core";
    plan.schedule.order = optimal.order;
    plan.peak = optimal.peak;
    return plan;
  }

  // Regime 3: genuine out-of-core execution. Candidate traversals: the
  // postorder and Liu's optimal order (both build long dependence chains,
  // which Fig. 8 shows is what keeps I/O low); candidate policies per
  // Fig. 7.
  const Weight floor = std::max(tree.max_mem_req(), tree.file_size(tree.root()));
  if (memory_budget < floor) {
    plan.strategy = "infeasible: budget below max MemReq";
    plan.in_core_optimum = optimal.peak;
    return plan;
  }

  const TraversalResult liu = liu_optimal(tree);
  struct Candidate {
    const char* traversal_name;
    const Traversal* order;
  };
  const Candidate traversals[] = {{"postorder", &postorder.order},
                                  {"liu", &liu.order}};
  std::vector<EvictionPolicy> policies{EvictionPolicy::kFirstFit};
  if (options.try_best_k) {
    policies.push_back(EvictionPolicy::kBestKCombination);
  }
  if (options.try_lsnf) {
    policies.push_back(EvictionPolicy::kLsnf);
  }

  Weight best_io = kInfiniteWeight;
  for (const Candidate& candidate : traversals) {
    for (const EvictionPolicy policy : policies) {
      const MinIoResult result =
          minio_heuristic(tree, *candidate.order, memory_budget, policy);
      TM_ASSERT(result.feasible, "budget above the floor must be feasible");
      if (result.io_volume < best_io) {
        best_io = result.io_volume;
        plan.schedule = result.schedule;
        plan.strategy = std::string(candidate.traversal_name) + "+" +
                        to_string(policy) + "/out-of-core";
      }
    }
  }
  plan.feasible = true;
  plan.io_volume = best_io;
  plan.peak = memory_budget;
  return plan;
}

}  // namespace treemem
