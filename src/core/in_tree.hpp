// Bottom-up (in-tree) convenience wrappers.
//
// The paper's algorithms are stated on out-trees (root processed first);
// multifrontal codes think bottom-up (leaves first, contribution blocks
// flowing toward the root). Section III-C's reversal duality makes the two
// views interchangeable; these wrappers return in-tree orders directly so
// solver-side callers never touch reverse_traversal themselves. Peaks are
// identical by the duality (which the test suite verifies independently).
#pragma once

#include "core/liu.hpp"
#include "core/minmem.hpp"
#include "core/postorder.hpp"
#include "core/traversal.hpp"
#include "tree/tree.hpp"

namespace treemem {

/// Best postorder, as a leaves-to-root order.
inline TraversalResult in_tree_best_postorder(const Tree& tree) {
  TraversalResult result = best_postorder(tree);
  result.order = reverse_traversal(std::move(result.order));
  return result;
}

/// Liu's optimal traversal, as a leaves-to-root order (this is the
/// direction Liu's 1987 algorithm natively constructs).
inline TraversalResult in_tree_liu_optimal(
    const Tree& tree, LiuMergeStrategy strategy = LiuMergeStrategy::kHeap) {
  TraversalResult result = liu_optimal(tree, strategy);
  result.order = reverse_traversal(std::move(result.order));
  return result;
}

/// The paper's MinMem, as a leaves-to-root order.
inline MinMemResult in_tree_minmem_optimal(const Tree& tree,
                                           const MinMemOptions& options = {}) {
  MinMemResult result = minmem_optimal(tree, options);
  result.order = reverse_traversal(std::move(result.order));
  return result;
}

}  // namespace treemem
