#include "core/check.hpp"

#include <sstream>

namespace treemem {

namespace {

/// Validates that `order` is a permutation of 0..p-1; returns the inverse
/// permutation (position of each node).
std::vector<NodeId> positions_of(const Tree& tree, const Traversal& order) {
  const auto p = static_cast<std::size_t>(tree.size());
  TM_CHECK(order.size() == p, "traversal has " << order.size()
                                               << " entries for a tree of "
                                               << p << " nodes");
  std::vector<NodeId> pos(p, kNoNode);
  for (std::size_t t = 0; t < p; ++t) {
    const NodeId u = order[t];
    TM_CHECK(u >= 0 && static_cast<std::size_t>(u) < p,
             "traversal step " << t << " names invalid node " << u);
    TM_CHECK(pos[static_cast<std::size_t>(u)] == kNoNode,
             "node " << u << " appears twice in the traversal");
    pos[static_cast<std::size_t>(u)] = static_cast<NodeId>(t);
  }
  return pos;
}

}  // namespace

Weight traversal_peak(const Tree& tree, const Traversal& order) {
  const auto pos = positions_of(tree, order);
  for (NodeId u = 0; u < tree.size(); ++u) {
    const NodeId par = tree.parent(u);
    if (par != kNoNode) {
      TM_CHECK(pos[static_cast<std::size_t>(par)] < pos[static_cast<std::size_t>(u)],
               "out-tree precedence violated: node " << u
                   << " runs before its parent " << par);
    }
  }

  // resident = sum of input files of ready nodes (parent executed, node not).
  Weight resident = tree.file_size(tree.root());
  Weight peak = resident;
  for (const NodeId u : order) {
    const Weight transient = resident + tree.work_size(u) + tree.child_file_sum(u);
    peak = std::max(peak, transient);
    resident += tree.child_file_sum(u) - tree.file_size(u);
  }
  TM_ASSERT(resident == 0, "resident files must drain to zero, got " << resident);
  return peak;
}

Weight in_tree_traversal_peak(const Tree& tree, const Traversal& order) {
  const auto pos = positions_of(tree, order);
  for (NodeId u = 0; u < tree.size(); ++u) {
    const NodeId par = tree.parent(u);
    if (par != kNoNode) {
      TM_CHECK(pos[static_cast<std::size_t>(u)] < pos[static_cast<std::size_t>(par)],
               "in-tree precedence violated: node " << par
                   << " runs before its child " << u);
    }
  }

  // resident = sum of output files of executed nodes whose parent has not
  // executed yet (produced but unconsumed contribution blocks).
  Weight resident = 0;
  Weight peak = 0;
  for (const NodeId u : order) {
    // While x executes, its children files are still resident and n_x + f_x
    // are live on top of them.
    const Weight transient = resident + tree.work_size(u) + tree.file_size(u);
    peak = std::max(peak, transient);
    resident += tree.file_size(u) - tree.child_file_sum(u);
  }
  TM_ASSERT(resident == tree.file_size(tree.root()),
            "in-tree residency must end at f_root");
  peak = std::max(peak, resident);
  return peak;
}

CheckResult check_in_core(const Tree& tree, const Traversal& order,
                          Weight memory) {
  CheckResult result;
  const auto p = static_cast<std::size_t>(tree.size());
  if (order.size() != p) {
    result.reason = "traversal size mismatch";
    return result;
  }

  std::vector<char> executed(p, 0);
  std::vector<char> ready(p, 0);
  ready[static_cast<std::size_t>(tree.root())] = 1;
  Weight avail = memory - tree.file_size(tree.root());
  if (avail < 0) {
    result.reason = "root input file does not fit in memory";
    result.fail_step = 0;
    return result;
  }

  Weight peak = tree.file_size(tree.root());
  for (std::size_t t = 0; t < p; ++t) {
    const NodeId u = order[t];
    if (u < 0 || static_cast<std::size_t>(u) >= p ||
        executed[static_cast<std::size_t>(u)] ||
        !ready[static_cast<std::size_t>(u)]) {
      std::ostringstream oss;
      oss << "step " << t << ": node " << u << " is not ready";
      result.reason = oss.str();
      result.fail_step = static_cast<NodeId>(t);
      return result;
    }
    // MemReq(u) <= avail + f_u  <=>  n_u + children files fit in free space.
    if (tree.mem_req(u) > avail + tree.file_size(u)) {
      std::ostringstream oss;
      oss << "step " << t << ": node " << u << " needs " << tree.mem_req(u)
          << " but only " << avail + tree.file_size(u) << " available";
      result.reason = oss.str();
      result.fail_step = static_cast<NodeId>(t);
      return result;
    }
    peak = std::max(peak, (memory - avail) + tree.work_size(u) +
                              tree.child_file_sum(u));
    avail += tree.file_size(u) - tree.child_file_sum(u);
    executed[static_cast<std::size_t>(u)] = 1;
    ready[static_cast<std::size_t>(u)] = 0;
    for (const NodeId c : tree.children(u)) {
      ready[static_cast<std::size_t>(c)] = 1;
    }
  }

  result.feasible = true;
  result.peak = peak;
  return result;
}

CheckResult check_out_of_core(const Tree& tree, const IoSchedule& schedule,
                              Weight memory) {
  CheckResult result;
  const auto p = static_cast<std::size_t>(tree.size());
  const auto& order = schedule.order;
  if (order.size() != p) {
    result.reason = "traversal size mismatch";
    return result;
  }

  // Group write events by step.
  std::vector<std::vector<NodeId>> writes_at(p);
  for (const IoWrite& w : schedule.writes) {
    if (w.step < 0 || static_cast<std::size_t>(w.step) >= p || w.node < 0 ||
        static_cast<std::size_t>(w.node) >= p) {
      result.reason = "write event out of range";
      return result;
    }
    writes_at[static_cast<std::size_t>(w.step)].push_back(w.node);
  }

  std::vector<char> executed(p, 0);
  std::vector<char> ready(p, 0);
  std::vector<char> written(p, 0);
  ready[static_cast<std::size_t>(tree.root())] = 1;
  Weight avail = memory - tree.file_size(tree.root());
  Weight io = 0;
  Weight peak = tree.file_size(tree.root());

  if (avail < 0) {
    result.reason = "root input file does not fit in memory";
    result.fail_step = 0;
    return result;
  }

  for (std::size_t t = 0; t < p; ++t) {
    // τ events scheduled at this step: move files to secondary memory.
    for (const NodeId w : writes_at[t]) {
      // The file must already be produced (node ready, i.e. parent executed)
      // and not yet consumed or already written.
      if (!ready[static_cast<std::size_t>(w)] ||
          written[static_cast<std::size_t>(w)]) {
        std::ostringstream oss;
        oss << "step " << t << ": cannot write file of node " << w
            << " (not resident)";
        result.reason = oss.str();
        result.fail_step = static_cast<NodeId>(t);
        return result;
      }
      written[static_cast<std::size_t>(w)] = 1;
      avail += tree.file_size(w);
      io += tree.file_size(w);
    }

    const NodeId u = order[t];
    if (u < 0 || static_cast<std::size_t>(u) >= p ||
        executed[static_cast<std::size_t>(u)] ||
        !ready[static_cast<std::size_t>(u)]) {
      std::ostringstream oss;
      oss << "step " << t << ": node " << u << " is not ready";
      result.reason = oss.str();
      result.fail_step = static_cast<NodeId>(t);
      return result;
    }
    if (written[static_cast<std::size_t>(u)]) {
      // Read the input file back just before execution.
      written[static_cast<std::size_t>(u)] = 0;
      avail -= tree.file_size(u);
      if (avail < 0) {
        std::ostringstream oss;
        oss << "step " << t << ": no room to read back file of node " << u;
        result.reason = oss.str();
        result.fail_step = static_cast<NodeId>(t);
        return result;
      }
    }
    if (tree.mem_req(u) > avail + tree.file_size(u)) {
      std::ostringstream oss;
      oss << "step " << t << ": node " << u << " needs " << tree.mem_req(u)
          << " but only " << avail + tree.file_size(u) << " available";
      result.reason = oss.str();
      result.fail_step = static_cast<NodeId>(t);
      return result;
    }
    peak = std::max(peak, (memory - avail) + tree.work_size(u) +
                              tree.child_file_sum(u));
    avail += tree.file_size(u) - tree.child_file_sum(u);
    executed[static_cast<std::size_t>(u)] = 1;
    ready[static_cast<std::size_t>(u)] = 0;
    for (const NodeId c : tree.children(u)) {
      ready[static_cast<std::size_t>(c)] = 1;
    }
  }

  result.feasible = true;
  result.peak = peak;
  result.io_volume = io;
  return result;
}

}  // namespace treemem
