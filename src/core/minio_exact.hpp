// Exact MinIO solvers (exponential; test/verification use only).
//
// Theorem 2 of the paper shows MinIO is NP-complete even for a fixed
// postorder, so these solvers do shortest-path search (Dijkstra) over the
// state graph of (executed set, evicted set). Two optimality-preserving
// reductions keep the graph small:
//   * lazy eviction — an optimal schedule exists that only evicts when the
//     next execution does not fit (deferring a write never hurts);
//   * minimal victim sets — evicting a proper superset of a sufficient set
//     can be postponed file-by-file, so only inclusion-minimal covering
//     subsets are branched on.
#pragma once

#include "core/traversal.hpp"
#include "tree/tree.hpp"

namespace treemem {

/// Minimum I/O volume over *all* traversals and eviction schedules
/// (problem (iii) of Theorem 2). Returns kInfiniteWeight when even full
/// eviction cannot fit some node (M < max MemReq). Requires p <= 20.
Weight exact_minio(const Tree& tree, Weight memory);

/// Minimum I/O volume for the *given* traversal (problem (i) of Theorem 2).
Weight exact_minio_fixed_order(const Tree& tree, const Traversal& order,
                               Weight memory);

}  // namespace treemem
