// Feasibility checkers — Algorithms 1 and 2 of the paper.
//
// These are the ground truth for every traversal algorithm in the library:
// tests validate each produced traversal / I/O schedule against them, and
// peaks reported by the optimizers must match the simulated peaks exactly.
#pragma once

#include <string>

#include "core/traversal.hpp"
#include "tree/tree.hpp"

namespace treemem {

/// Outcome of simulating a traversal.
struct CheckResult {
  bool feasible = false;
  /// Largest transient memory demand over the whole traversal. Only
  /// meaningful when the order itself is structurally valid.
  Weight peak = 0;
  /// Total write volume (out-of-core checker only).
  Weight io_volume = 0;
  /// Step at which the check failed (kNoNode-sized sentinel -1 if none).
  NodeId fail_step = -1;
  /// Human-readable failure description.
  std::string reason;
};

/// Structural validation + peak computation, out-tree semantics: `order`
/// must be a permutation of all nodes in which every node appears after its
/// parent. Throws treemem::Error if those structural rules are violated;
/// returns the memory peak (the least M for which Algorithm 1 succeeds).
Weight traversal_peak(const Tree& tree, const Traversal& order);

/// In-tree (bottom-up, multifrontal) semantics: every node appears after all
/// its children; executing x holds its children files, n_x and f_x, and
/// leaves f_x resident. Returns the peak. Section III-C's duality says
/// in_tree_traversal_peak(t, σ) == traversal_peak(t, reverse(σ)); the test
/// suite asserts this rather than assuming it.
Weight in_tree_traversal_peak(const Tree& tree, const Traversal& order);

/// Algorithm 1: checks an in-core traversal against memory budget M.
/// Unlike traversal_peak, structural violations are reported in the result
/// rather than thrown (this mirrors the paper's FAILURE return).
CheckResult check_in_core(const Tree& tree, const Traversal& order, Weight memory);

/// Algorithm 2: checks an out-of-core traversal (order + write schedule)
/// against memory budget M and computes the I/O volume.
CheckResult check_out_of_core(const Tree& tree, const IoSchedule& schedule,
                              Weight memory);

}  // namespace treemem
