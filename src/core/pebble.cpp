#include "core/pebble.hpp"

#include <algorithm>
#include <vector>

namespace treemem {

Weight sethi_ullman_number(const Tree& tree) {
  std::vector<Weight> reg(static_cast<std::size_t>(tree.size()), 0);
  const auto& order = tree.top_down_order();
  std::vector<Weight> kids;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId u = *it;
    if (tree.is_leaf(u)) {
      reg[static_cast<std::size_t>(u)] = 1;
      continue;
    }
    kids.clear();
    for (const NodeId c : tree.children(u)) {
      kids.push_back(reg[static_cast<std::size_t>(c)]);
    }
    std::sort(kids.begin(), kids.end(), std::greater<>());
    Weight best = 0;
    for (std::size_t i = 0; i < kids.size(); ++i) {
      best = std::max(best, kids[i] + static_cast<Weight>(i));
    }
    reg[static_cast<std::size_t>(u)] = best;
  }
  return reg[static_cast<std::size_t>(tree.root())];
}

Tree make_unit_tree(const Tree& tree) {
  std::vector<NodeId> parent = tree.parents();
  std::vector<Weight> file(parent.size(), 1);
  std::vector<Weight> work(parent.size(), 0);
  return Tree(std::move(parent), std::move(file), std::move(work));
}

}  // namespace treemem
