#include "core/minmem.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "support/stack_runner.hpp"

namespace treemem {

namespace {

/// Keys below any real value mark cut nodes that have never been probed —
/// they always qualify as candidates and pop first.
constexpr Weight kUnknownKey = std::numeric_limits<Weight>::min() / 4;

/// A cut member in the candidate heap. `key` is M_peak(j) − f_j: node j can
/// be entered iff  budget − cut_weight ≥ key, so with a min-heap on `key`
/// the candidate set of Algorithm 3 line 19 is exactly the heap prefix
/// below `budget − cut_weight`, maintained in O(log p) per event instead of
/// rescanning the cut.
///
/// Peaks travel with the cut they describe: entries of discarded
/// (rejected) explorations vanish with them, so a stale peak can never
/// gate a live configuration — the flaw a global per-node memo would have,
/// since Explore results are only meaningful relative to a persisted state.
struct CutEntry {
  Weight key = kUnknownKey;
  NodeId node = kNoNode;
};

struct CutKeyGreater {
  bool operator()(const CutEntry& a, const CutEntry& b) const {
    return a.key != b.key ? a.key > b.key : a.node > b.node;
  }
};

/// Min-heap over cut entries (std::*_heap with inverted comparator).
class CutHeap {
 public:
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  const CutEntry& top() const { return entries_.front(); }

  void push(CutEntry entry) {
    entries_.push_back(entry);
    std::push_heap(entries_.begin(), entries_.end(), CutKeyGreater{});
  }

  CutEntry pop() {
    std::pop_heap(entries_.begin(), entries_.end(), CutKeyGreater{});
    const CutEntry entry = entries_.back();
    entries_.pop_back();
    return entry;
  }

  void splice(CutHeap&& other) {
    for (const CutEntry& entry : other.entries_) {
      push(entry);
    }
    other.entries_.clear();
  }

  const std::vector<CutEntry>& entries() const { return entries_; }

 private:
  std::vector<CutEntry> entries_;
};

class MinMemSolver {
 public:
  explicit MinMemSolver(const Tree& tree) : tree_(tree) {}

  /// Executions are appended to the shared `order_` buffer as they happen;
  /// a caller that rejects an exploration truncates the buffer back to its
  /// pre-call length. This keeps the hot path allocation-free.
  struct Outcome {
    Weight min_mem = kInfiniteWeight;  ///< footprint of the reachable cut
    Weight peak = kInfiniteWeight;     ///< least budget visiting a new node
    CutHeap cut;
  };

  MinMemResult solve(bool warm_start) {
    MinMemResult result;
    // Lower bound: every node must satisfy Eq. (1), and the root's input
    // file must fit before anything executes (relevant for variant models
    // with negative execution files).
    Weight avail =
        std::max(tree_.max_mem_req(), tree_.file_size(tree_.root()));

    ++result.iterations;
    order_.clear();
    order_.reserve(static_cast<std::size_t>(tree_.size()));
    Outcome top = explore(tree_.root(), avail);
    TM_ASSERT(top.min_mem < kInfiniteWeight,
              "root must be executable at the lower bound");
    CutHeap cut = std::move(top.cut);
    Weight cut_weight = top.min_mem;
    Weight next_peak = top.peak;

    while (!cut.empty()) {
      TM_ASSERT(next_peak > avail, "budget must strictly increase: "
                                       << next_peak << " <= " << avail);
      avail = next_peak;
      ++result.iterations;
      if (!warm_start) {
        // Ablation mode: rebuild the whole exploration at the new budget.
        order_.clear();
        Outcome redo = explore(tree_.root(), avail);
        cut = std::move(redo.cut);
        cut_weight = redo.min_mem;
        next_peak = redo.peak;
      } else {
        next_peak = improve(cut, cut_weight, avail);
      }
    }

    result.peak = avail;
    result.order = std::move(order_);
    result.explore_calls = explore_calls_;
    TM_ASSERT(result.order.size() == static_cast<std::size_t>(tree_.size()),
              "MinMem traversal incomplete: " << result.order.size() << " of "
                                              << tree_.size());
    return result;
  }

  /// Single-probe entry point for explore_subtree().
  Outcome explore_for_test(NodeId i, Weight budget, Traversal& order_out) {
    Outcome out = explore(i, budget);
    order_out = order_;
    return out;
  }

  /// Explore(T, i, budget) from scratch (Algorithm 3 with Linit = empty).
  Outcome explore(NodeId i, Weight budget) {
    ++explore_calls_;
    Outcome out;
    if (tree_.mem_req(i) > budget) {
      out.peak = tree_.mem_req(i);
      return out;  // min_mem = infinite: i itself cannot be executed
    }
    // Execute i: its input and execution files are dropped, the children
    // files materialize and form the initial cut (peaks unknown).
    order_.push_back(i);
    for (const NodeId c : tree_.children(i)) {
      out.cut.push(CutEntry{kUnknownKey, c});
    }
    Weight cut_weight = tree_.child_file_sum(i);
    out.peak = improve(out.cut, cut_weight, budget);
    out.min_mem = cut_weight;
    return out;
  }

 private:
  /// The improvement loop of Algorithm 3 (lines 12–21), shared between
  /// fresh explorations and the warm-started root cut. Pops candidates —
  /// cut nodes whose effective budget reaches their memoized peak — probes
  /// them, and splices in any subtree cut no larger than the node's own
  /// input file. Returns the configuration peak
  ///   min_j ( M_peak(j) + sum_{k in cut, k != j} f_k )
  ///   = (min_j key_j) + cut_weight,
  /// the least total budget under which this cut can be deepened.
  Weight improve(CutHeap& cut, Weight& cut_weight, Weight budget) {
    while (!cut.empty() && cut.top().key <= budget - cut_weight) {
      const CutEntry entry = cut.pop();
      const NodeId j = entry.node;
      const Weight local_budget = budget - cut_weight + tree_.file_size(j);
      const std::size_t order_mark = order_.size();
      Outcome sub = explore(j, local_budget);
      if (sub.min_mem <= tree_.file_size(j)) {
        // Accept: replace j by its reachable cut (with its peaks); the
        // executions already sit in order_.
        cut_weight += sub.min_mem - tree_.file_size(j);
        cut.splice(std::move(sub.cut));
      } else {
        // Reject: discard the probe's executions and keep j with its
        // refreshed peak. The new key exceeds budget − cut_weight by
        // construction, so j cannot pop again until an acceptance lowers
        // cut_weight enough to requalify it.
        order_.resize(order_mark);
        cut.push(CutEntry{sub.peak - tree_.file_size(j), j});
      }
    }
    return cut.empty() ? kInfiniteWeight : cut.top().key + cut_weight;
  }

  const Tree& tree_;
  Traversal order_;
  long long explore_calls_ = 0;
};

/// Explore's recursion depth equals the tree height. Up to this height the
/// caller's default stack (8 MiB on Linux, ~200 B per frame) is ample;
/// beyond it the work moves to a dedicated big-stack thread. The inline
/// fast path matters: spawning a thread costs more than solving a typical
/// amalgamated assembly tree outright.
constexpr NodeId kInlineHeightLimit = 10000;

NodeId tree_height(const Tree& tree) {
  const auto depths = node_depths(tree);
  return *std::max_element(depths.begin(), depths.end());
}

}  // namespace

MinMemResult minmem_optimal(const Tree& tree, const MinMemOptions& options) {
  MinMemResult result;
  if (tree_height(tree) <= kInlineHeightLimit) {
    MinMemSolver solver(tree);
    return solver.solve(options.warm_start);
  }
  const std::size_t stack_bytes =
      options.stack_bytes == 0 ? kBigStackBytes : options.stack_bytes;
  run_with_stack(stack_bytes, [&]() {
    MinMemSolver solver(tree);
    result = solver.solve(options.warm_start);
  });
  return result;
}

ExploreResult explore_subtree(const Tree& tree, NodeId start, Weight budget) {
  TM_CHECK(start >= 0 && start < tree.size(),
           "explore_subtree: bad start node " << start);
  ExploreResult result;
  auto body = [&]() {
    MinMemSolver solver(tree);
    auto out = solver.explore_for_test(start, budget, result.order);
    result.min_mem = out.min_mem;
    result.peak = out.peak;
    result.cut.reserve(out.cut.size());
    for (const auto& entry : out.cut.entries()) {
      result.cut.push_back(entry.node);
    }
  };
  if (tree_height(tree) <= kInlineHeightLimit) {
    body();
  } else {
    run_with_stack(kBigStackBytes, body);
  }
  return result;
}

}  // namespace treemem
