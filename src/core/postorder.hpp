// Liu (1986)'s best postorder traversal — the `PostOrder` algorithm of the
// paper (Section IV-A).
//
// A postorder traversal of the out-tree executes a node and then processes
// each child subtree to completion before starting the next one. For node i
// with children c_1..c_k processed in that order, the subtree peak is
//   P_i = max( MemReq(i), max_t ( P_{c_t} + sum_{u>t} f_{c_u} ) )
// because the input files of the not-yet-processed siblings stay resident.
// An adjacent-exchange argument shows the order minimizing P_i processes
// children by *increasing* P_c − f_c (the dual of Liu's decreasing rule for
// bottom-up in-trees). Total cost O(p log p).
//
// The best postorder is what production multifrontal codes (e.g. MUMPS)
// use; Theorem 1 of the paper shows it can be arbitrarily worse than the
// optimum, and the Fig. 5 / Fig. 9 experiments quantify the gap.
#pragma once

#include "core/traversal.hpp"
#include "tree/tree.hpp"

namespace treemem {

/// Computes the best postorder traversal and its exact memory peak.
TraversalResult best_postorder(const Tree& tree);

/// Peak of the best postorder only (identical value, skips materializing
/// the order — used by tight benchmarking loops).
Weight best_postorder_peak(const Tree& tree);

}  // namespace treemem
