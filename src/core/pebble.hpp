// Classical pebble-game specializations (Section II-B background).
//
// With unit input files and zero execution files the MinMemory problem in
// the *replacement* model collapses to Sethi–Ullman register allocation:
// the optimal pebble count of an expression tree. These helpers exist to
// connect the library to that classical theory, and the test suite checks
// that liu_optimal(replacement_transform(unit tree)) equals the
// Sethi–Ullman number computed independently here.
#pragma once

#include "tree/tree.hpp"

namespace treemem {

/// The Sethi–Ullman register number of the tree *structure* (weights are
/// ignored): reg(leaf) = 1 and, with children register numbers sorted in
/// non-increasing order r_0 >= r_1 >= ..., reg(x) = max_i (r_i + i).
Weight sethi_ullman_number(const Tree& tree);

/// Copy of the structure of `tree` with f_i = 1 and n_i = 0 — the classical
/// unit-cost pebble instance.
Tree make_unit_tree(const Tree& tree);

}  // namespace treemem
