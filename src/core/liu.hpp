// Liu (1987)'s exact MinMemory algorithm ("An application of generalized
// tree pebbling to sparse matrix factorization") — the `Liu` reference
// algorithm of the paper's Section IV-B and Fig. 6.
//
// The algorithm runs bottom-up (in-tree direction). The memory profile of a
// subtree traversal is normalized into *hill–valley segments*
//   (h_1, v_1), ..., (h_s, v_s)
// with hills strictly decreasing and valleys strictly increasing, levels
// measured relative to the subtree's start (nothing resident) and ending at
// f_x (the subtree's contribution block). At a node, the children's
// segment chains are k-way merged in non-increasing h−v order (within a
// chain h−v strictly decreases, so the merge preserves chain order), the
// node's own execution event (hill Σf_c + n_x + f_x, valley f_x) is
// appended, and the profile is renormalized. The first hill of the root's
// chain — max'ed with the final resident level — is the optimal peak over
// *all* traversals, not only postorders.
//
// The public entry point reports the traversal in out-tree order (root
// first) to match the rest of the library; internally it is the reverse of
// the bottom-up order Liu's algorithm constructs (the Section III-C
// duality, which the test suite verifies rather than assumes).
#pragma once

#include "core/traversal.hpp"
#include "tree/tree.hpp"

namespace treemem {

/// Strategy used to combine children chains (ablation knob; the heap merge
/// is the faithful O(S log k) construction, the sort is a simpler
/// alternative with identical output).
enum class LiuMergeStrategy {
  kHeap,       ///< k-way merge with a binary heap keyed on h−v
  kStableSort, ///< concatenate + stable sort on h−v (same order, simpler)
};

/// Computes an optimal traversal (out-tree order) and its exact peak.
TraversalResult liu_optimal(const Tree& tree,
                            LiuMergeStrategy strategy = LiuMergeStrategy::kHeap);

/// Peak only (skips carrying execution sequences through the merge —
/// noticeably faster, used by benchmarks that only need the value).
Weight liu_optimal_peak(const Tree& tree,
                        LiuMergeStrategy strategy = LiuMergeStrategy::kHeap);

}  // namespace treemem
