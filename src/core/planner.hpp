// Execution planner: the one-call answer to "I have this tree and M bytes
// of memory — how should I run it?".
//
// Encodes the decision procedure the paper's experiments justify:
//   * enough memory for the best postorder  -> run it in-core (postorders
//     maximize locality and are what production codes expect);
//   * enough for the optimal traversal only -> run MinMem's order in-core
//     (Fig. 5/9: the gap can be decisive);
//   * less than that but >= max MemReq      -> out-of-core; pick the
//     traversal × eviction-policy combination with the least I/O volume
//     (Figs. 7–8: PostOrder- or Liu-style orders with FirstFit win);
//   * below max MemReq                      -> infeasible, no schedule can
//     help (Eq. 1 must hold per node).
#pragma once

#include <string>

#include "core/traversal.hpp"
#include "tree/tree.hpp"

namespace treemem {

struct ExecutionPlan {
  bool feasible = false;
  /// Human-readable strategy tag, e.g. "postorder/in-core" or
  /// "liu+FirstFit/out-of-core".
  std::string strategy;
  /// Full schedule (order + writes; writes empty for in-core plans).
  IoSchedule schedule;
  /// Peak memory of the plan under the given budget.
  Weight peak = 0;
  /// Total volume written to secondary storage (0 for in-core plans).
  Weight io_volume = 0;
  /// The smallest budget that would run fully in-core (the MinMemory
  /// optimum) — reported so callers can size workspaces.
  Weight in_core_optimum = 0;
};

struct PlannerOptions {
  /// Candidate eviction policies tried in the out-of-core regime (default:
  /// the two front-runners of Fig. 7).
  bool try_best_k = true;
  bool try_lsnf = false;
};

/// Plans an execution of `tree` within `memory_budget`. The returned
/// schedule always passes check_out_of_core(tree, schedule, memory_budget)
/// when feasible.
ExecutionPlan plan_execution(const Tree& tree, Weight memory_budget,
                             const PlannerOptions& options = {});

}  // namespace treemem
