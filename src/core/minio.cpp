#include "core/minio.hpp"

#include <algorithm>
#include <set>

namespace treemem {

const char* to_string(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kLsnf:
      return "LSNF";
    case EvictionPolicy::kFirstFit:
      return "FirstFit";
    case EvictionPolicy::kBestFit:
      return "BestFit";
    case EvictionPolicy::kFirstFill:
      return "FirstFill";
    case EvictionPolicy::kBestFill:
      return "BestFill";
    case EvictionPolicy::kBestKCombination:
      return "BestKComb";
  }
  return "?";
}

const std::vector<EvictionPolicy>& all_eviction_policies() {
  static const std::vector<EvictionPolicy> kAll = {
      EvictionPolicy::kLsnf,      EvictionPolicy::kFirstFit,
      EvictionPolicy::kBestFit,   EvictionPolicy::kFirstFill,
      EvictionPolicy::kBestFill,  EvictionPolicy::kBestKCombination,
  };
  return kAll;
}

namespace {

/// Validates the order and returns per-node positions.
std::vector<NodeId> traversal_positions(const Tree& tree,
                                        const Traversal& order) {
  const auto p = static_cast<std::size_t>(tree.size());
  TM_CHECK(order.size() == p, "traversal size mismatch: " << order.size()
                                                          << " vs " << p);
  std::vector<NodeId> pos(p, kNoNode);
  for (std::size_t t = 0; t < p; ++t) {
    const NodeId u = order[t];
    TM_CHECK(u >= 0 && static_cast<std::size_t>(u) < p && pos[static_cast<std::size_t>(u)] == kNoNode,
             "invalid traversal at step " << t);
    pos[static_cast<std::size_t>(u)] = static_cast<NodeId>(t);
  }
  for (NodeId u = 0; u < tree.size(); ++u) {
    if (tree.parent(u) != kNoNode) {
      TM_CHECK(pos[static_cast<std::size_t>(tree.parent(u))] < pos[static_cast<std::size_t>(u)],
               "traversal violates precedence at node " << u);
    }
  }
  return pos;
}

/// Chooses victims from `s` (resident ready files, farthest next use first)
/// totalling at least `need`. Appends chosen indices *into s* to `chosen`.
/// Precondition: sum of file sizes in s >= need > 0.
void select_victims(const Tree& tree, const std::vector<NodeId>& s,
                    Weight need, EvictionPolicy policy, int best_k,
                    std::vector<std::size_t>& chosen) {
  const std::size_t m = s.size();
  std::vector<char> taken(m, 0);
  auto size_of = [&](std::size_t idx) { return tree.file_size(s[idx]); };

  auto lsnf_fill = [&](Weight remaining) {
    for (std::size_t i = 0; i < m && remaining > 0; ++i) {
      if (!taken[i]) {
        taken[i] = 1;
        chosen.push_back(i);
        remaining -= size_of(i);
      }
    }
    TM_ASSERT(remaining <= 0, "LSNF fallback could not cover the need");
  };

  switch (policy) {
    case EvictionPolicy::kLsnf: {
      lsnf_fill(need);
      break;
    }
    case EvictionPolicy::kFirstFit: {
      // First single file at least as large as the whole requirement.
      for (std::size_t i = 0; i < m; ++i) {
        if (size_of(i) >= need) {
          chosen.push_back(i);
          return;
        }
      }
      lsnf_fill(need);
      break;
    }
    case EvictionPolicy::kBestFit: {
      Weight remaining = need;
      while (remaining > 0) {
        std::size_t best = m;
        Weight best_gap = kInfiniteWeight;
        for (std::size_t i = 0; i < m; ++i) {
          if (taken[i]) {
            continue;
          }
          const Weight gap = remaining >= size_of(i) ? remaining - size_of(i)
                                                     : size_of(i) - remaining;
          if (gap < best_gap) {
            best_gap = gap;
            best = i;
          }
        }
        TM_ASSERT(best < m, "BestFit ran out of files");
        taken[best] = 1;
        chosen.push_back(best);
        remaining -= size_of(best);
      }
      break;
    }
    case EvictionPolicy::kFirstFill: {
      Weight remaining = need;
      bool found = true;
      while (remaining > 0 && found) {
        found = false;
        for (std::size_t i = 0; i < m; ++i) {
          if (!taken[i] && size_of(i) < remaining) {
            taken[i] = 1;
            chosen.push_back(i);
            remaining -= size_of(i);
            found = true;
            break;
          }
        }
      }
      if (remaining > 0) {
        lsnf_fill(remaining);
      }
      break;
    }
    case EvictionPolicy::kBestFill: {
      Weight remaining = need;
      bool found = true;
      while (remaining > 0 && found) {
        found = false;
        std::size_t best = m;
        Weight best_size = -1;
        for (std::size_t i = 0; i < m; ++i) {
          if (!taken[i] && size_of(i) < remaining && size_of(i) > best_size) {
            best_size = size_of(i);
            best = i;
          }
        }
        if (best < m) {
          taken[best] = 1;
          chosen.push_back(best);
          remaining -= best_size;
          found = true;
        }
      }
      if (remaining > 0) {
        lsnf_fill(remaining);
      }
      break;
    }
    case EvictionPolicy::kBestKCombination: {
      Weight remaining = need;
      while (remaining > 0) {
        // Window: the first K untaken files.
        std::vector<std::size_t> window;
        for (std::size_t i = 0; i < m && window.size() < static_cast<std::size_t>(best_k); ++i) {
          if (!taken[i]) {
            window.push_back(i);
          }
        }
        TM_ASSERT(!window.empty(), "BestK ran out of files");
        const unsigned masks = 1u << window.size();
        unsigned best_mask = 0;
        Weight best_gap = kInfiniteWeight;
        bool best_covers = false;
        std::size_t best_count = 0;
        for (unsigned mask = 1; mask < masks; ++mask) {
          Weight sum = 0;
          std::size_t count = 0;
          for (std::size_t b = 0; b < window.size(); ++b) {
            if (mask & (1u << b)) {
              sum += size_of(window[b]);
              ++count;
            }
          }
          const Weight gap = remaining >= sum ? remaining - sum : sum - remaining;
          const bool covers = sum >= remaining;
          // Prefer the closest total; break ties toward covering subsets
          // (finish now), then toward fewer files, then the smaller mask —
          // all deterministic.
          const bool better =
              gap < best_gap ||
              (gap == best_gap && covers && !best_covers) ||
              (gap == best_gap && covers == best_covers && count < best_count);
          if (best_mask == 0 || better) {
            best_mask = mask;
            best_gap = gap;
            best_covers = covers;
            best_count = count;
          }
        }
        for (std::size_t b = 0; b < window.size(); ++b) {
          if (best_mask & (1u << b)) {
            taken[window[b]] = 1;
            chosen.push_back(window[b]);
            remaining -= size_of(window[b]);
          }
        }
      }
      break;
    }
  }
}

}  // namespace

MinIoResult minio_heuristic(const Tree& tree, const Traversal& order,
                            Weight memory, EvictionPolicy policy,
                            const MinIoOptions& options) {
  TM_CHECK(options.best_k >= 1 && options.best_k <= 20,
           "best_k out of range: " << options.best_k);
  const auto pos = traversal_positions(tree, order);

  MinIoResult result;
  result.schedule.order = order;

  // Infeasible regardless of evictions iff some node's own requirement
  // exceeds M (everything else can always be evicted).
  if (memory < tree.max_mem_req() ||
      memory < tree.file_size(tree.root())) {
    result.feasible = false;
    return result;
  }

  // Resident ready files, ordered by next use descending (farthest first).
  // Key: position in σ; value recovered through order[].
  auto far_first = [](NodeId a, NodeId b) { return a > b; };
  std::set<NodeId, decltype(far_first)> resident(far_first);
  std::vector<char> evicted(static_cast<std::size_t>(tree.size()), 0);

  resident.insert(pos[static_cast<std::size_t>(tree.root())]);  // = 0
  Weight resident_sum = tree.file_size(tree.root());

  std::vector<NodeId> s_view;
  std::vector<std::size_t> chosen;

  for (std::size_t t = 0; t < order.size(); ++t) {
    const NodeId j = order[t];
    // j leaves the resident pool (it is consumed now); restore it first if
    // it had been evicted.
    if (evicted[static_cast<std::size_t>(j)]) {
      resident_sum += tree.file_size(j);  // read back
    } else {
      resident.erase(static_cast<NodeId>(t));
    }
    // Transient demand: resident files + f_j + n_j + children files.
    const Weight other_resident = resident_sum - tree.file_size(j);
    Weight need = other_resident + tree.mem_req(j) - memory;
    if (need > 0) {
      // Materialize S (farthest next use first) and pick victims.
      s_view.assign(resident.begin(), resident.end());
      for (NodeId& entry : s_view) {
        entry = order[static_cast<std::size_t>(entry)];
      }
      chosen.clear();
      select_victims(tree, s_view, need, policy, options.best_k, chosen);
      for (const std::size_t idx : chosen) {
        const NodeId victim = s_view[idx];
        evicted[static_cast<std::size_t>(victim)] = 1;
        resident.erase(pos[static_cast<std::size_t>(victim)]);
        resident_sum -= tree.file_size(victim);
        result.io_volume += tree.file_size(victim);
        ++result.files_written;
        result.schedule.writes.push_back(
            {static_cast<NodeId>(t), victim});
      }
      TM_ASSERT(resident_sum - tree.file_size(j) + tree.mem_req(j) <= memory,
                "eviction did not free enough memory at step " << t);
    }
    // Execute j.
    resident_sum -= tree.file_size(j);
    for (const NodeId c : tree.children(j)) {
      resident.insert(pos[static_cast<std::size_t>(c)]);
      resident_sum += tree.file_size(c);
    }
  }

  TM_ASSERT(resident.empty() && resident_sum == 0,
            "resident pool must drain at the end");
  result.feasible = true;
  return result;
}

Weight divisible_io_lower_bound(const Tree& tree, const Traversal& order,
                                Weight memory) {
  const auto pos = traversal_positions(tree, order);
  if (memory < tree.max_mem_req() || memory < tree.file_size(tree.root())) {
    return kInfiniteWeight;
  }

  // remaining[u]: the portion of f_u still resident (files may be evicted
  // fractionally; all quantities stay integral because evictions take
  // min(need, remaining)).
  std::vector<Weight> remaining(static_cast<std::size_t>(tree.size()), 0);
  auto far_first = [](NodeId a, NodeId b) { return a > b; };
  std::set<NodeId, decltype(far_first)> resident(far_first);

  remaining[static_cast<std::size_t>(tree.root())] =
      tree.file_size(tree.root());
  resident.insert(pos[static_cast<std::size_t>(tree.root())]);
  Weight resident_sum = tree.file_size(tree.root());
  Weight io = 0;

  for (std::size_t t = 0; t < order.size(); ++t) {
    const NodeId j = order[t];
    const Weight held = remaining[static_cast<std::size_t>(j)];
    resident.erase(static_cast<NodeId>(t));
    resident_sum -= held;
    // Full f_j must be resident during execution (evicted part read back).
    Weight need = resident_sum + tree.mem_req(j) - memory;
    while (need > 0) {
      TM_ASSERT(!resident.empty(), "divisible bound: nothing left to evict");
      const NodeId far_pos = *resident.begin();
      const NodeId victim = order[static_cast<std::size_t>(far_pos)];
      const Weight take =
          std::min(need, remaining[static_cast<std::size_t>(victim)]);
      remaining[static_cast<std::size_t>(victim)] -= take;
      resident_sum -= take;
      io += take;
      need -= take;
      if (remaining[static_cast<std::size_t>(victim)] == 0) {
        resident.erase(far_pos);
      }
    }
    for (const NodeId c : tree.children(j)) {
      remaining[static_cast<std::size_t>(c)] = tree.file_size(c);
      resident.insert(pos[static_cast<std::size_t>(c)]);
      resident_sum += tree.file_size(c);
    }
  }
  return io;
}

}  // namespace treemem
