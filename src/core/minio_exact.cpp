#include "core/minio_exact.hpp"

#include <queue>
#include <unordered_map>
#include <vector>

namespace treemem {

namespace {

using Mask = std::uint32_t;
using State = std::uint64_t;  // (executed << 22) | evicted

constexpr int kMaskBits = 22;

State pack(Mask executed, Mask evicted) {
  return (static_cast<State>(executed) << kMaskBits) | evicted;
}

struct SearchContext {
  const Tree& tree;
  Weight memory;
  const std::vector<NodeId>* forced_positions;  // nullptr = free order

  bool executed(Mask mask, NodeId u) const { return (mask >> u) & 1u; }
  bool ready(Mask mask, NodeId u) const {
    if (executed(mask, u)) {
      return false;
    }
    const NodeId par = tree.parent(u);
    return par == kNoNode || executed(mask, par);
  }
};

/// Enumerates the optimal-cost paths with Dijkstra. Each relaxation
/// executes one ready node, optionally preceded by a minimal eviction set.
Weight dijkstra(const SearchContext& ctx) {
  const Tree& tree = ctx.tree;
  const NodeId p = tree.size();
  TM_CHECK(p <= kMaskBits - 2, "exact MinIO: tree too large (" << p << ")");
  if (ctx.memory < tree.max_mem_req() ||
      ctx.memory < tree.file_size(tree.root())) {
    return kInfiniteWeight;
  }

  const Mask full = (Mask{1} << p) - 1;
  std::unordered_map<State, Weight> dist;
  using QEntry = std::pair<Weight, State>;
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> queue;

  const State start = pack(0, 0);
  dist[start] = 0;
  queue.push({0, start});

  std::vector<NodeId> ready_list;
  std::vector<NodeId> victims;

  while (!queue.empty()) {
    const auto [cost, state] = queue.top();
    queue.pop();
    const Mask executed = static_cast<Mask>(state >> kMaskBits);
    const Mask evicted = static_cast<Mask>(state & ((Mask{1} << kMaskBits) - 1));
    if (executed == full) {
      return cost;
    }
    auto it = dist.find(state);
    if (it != dist.end() && it->second < cost) {
      continue;  // stale queue entry
    }

    // Ready nodes and resident volume.
    ready_list.clear();
    Weight resident_sum = 0;
    for (NodeId u = 0; u < p; ++u) {
      if (ctx.ready(executed, u)) {
        ready_list.push_back(u);
        if (!((evicted >> u) & 1u)) {
          resident_sum += tree.file_size(u);
        }
      }
    }

    // How many nodes executed so far = position in a forced order.
    NodeId step = 0;
    if (ctx.forced_positions != nullptr) {
      for (NodeId u = 0; u < p; ++u) {
        if (ctx.executed(executed, u)) {
          ++step;
        }
      }
    }

    for (const NodeId j : ready_list) {
      if (ctx.forced_positions != nullptr &&
          (*ctx.forced_positions)[static_cast<std::size_t>(j)] != step) {
        continue;  // only the forced node may run next
      }
      // Resident volume of the *other* ready files; f_j counts fully
      // (read back if evicted).
      Weight others = resident_sum;
      if (!((evicted >> j) & 1u)) {
        others -= tree.file_size(j);
      }
      const Weight need = others + tree.mem_req(j) - ctx.memory;

      // Candidate victims: resident ready files other than j.
      victims.clear();
      for (const NodeId u : ready_list) {
        if (u != j && !((evicted >> u) & 1u)) {
          victims.push_back(u);
        }
      }

      auto relax = [&](Weight extra_cost, Mask evict_set) {
        const Mask executed2 = executed | (Mask{1} << j);
        Mask evicted2 = (evicted | evict_set) & ~(Mask{1} << j);
        const State next = pack(executed2, evicted2);
        const Weight next_cost = cost + extra_cost;
        auto found = dist.find(next);
        if (found == dist.end() || found->second > next_cost) {
          dist[next] = next_cost;
          queue.push({next_cost, next});
        }
      };

      if (need <= 0) {
        relax(0, 0);  // lazy eviction: never write when it already fits
        continue;
      }
      TM_CHECK(victims.size() <= 16,
               "exact MinIO: too many simultaneous victims ("
                   << victims.size() << ")");
      const unsigned subsets = 1u << victims.size();
      for (unsigned mask = 1; mask < subsets; ++mask) {
        Weight sum = 0;
        for (std::size_t b = 0; b < victims.size(); ++b) {
          if (mask & (1u << b)) {
            sum += tree.file_size(victims[b]);
          }
        }
        if (sum < need) {
          continue;
        }
        // Keep only inclusion-minimal covering subsets.
        bool minimal = true;
        for (std::size_t b = 0; b < victims.size() && minimal; ++b) {
          if ((mask & (1u << b)) &&
              sum - tree.file_size(victims[b]) >= need) {
            minimal = false;
          }
        }
        if (!minimal) {
          continue;
        }
        Mask evict_set = 0;
        for (std::size_t b = 0; b < victims.size(); ++b) {
          if (mask & (1u << b)) {
            evict_set |= Mask{1} << victims[b];
          }
        }
        relax(sum, evict_set);
      }
    }
  }
  return kInfiniteWeight;  // unreachable for feasible instances
}

}  // namespace

Weight exact_minio(const Tree& tree, Weight memory) {
  SearchContext ctx{tree, memory, nullptr};
  return dijkstra(ctx);
}

Weight exact_minio_fixed_order(const Tree& tree, const Traversal& order,
                               Weight memory) {
  TM_CHECK(order.size() == static_cast<std::size_t>(tree.size()),
           "exact MinIO: traversal size mismatch");
  std::vector<NodeId> pos(order.size());
  for (std::size_t t = 0; t < order.size(); ++t) {
    pos[static_cast<std::size_t>(order[t])] = static_cast<NodeId>(t);
  }
  SearchContext ctx{tree, memory, &pos};
  return dijkstra(ctx);
}

}  // namespace treemem
