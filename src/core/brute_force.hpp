// Exhaustive reference solvers for small trees.
//
// These are the ground truth the optimized algorithms are validated
// against in the test suite: a bitmask DP over all traversals for
// MinMemory, an exhaustive child-permutation search for the best postorder,
// and full topological-order enumeration for tiny instances.
#pragma once

#include "core/traversal.hpp"
#include "tree/tree.hpp"

namespace treemem {

/// Optimal MinMemory value over *all* traversals, by DP over the 2^p
/// downward-closed execution sets. Requires p <= 22.
Weight brute_force_min_memory(const Tree& tree);

/// Best postorder peak by enumerating all child permutations at every node.
/// Requires every node to have at most 8 children.
Weight brute_force_best_postorder(const Tree& tree);

/// All topological orders (out-tree traversals) of a tiny tree (p <= 9 —
/// the count explodes factorially).
std::vector<Traversal> all_traversals(const Tree& tree);

}  // namespace treemem
