// The paper's new exact MinMemory algorithm: MinMem (Algorithm 4) built on
// the Explore tree-exploration routine (Algorithm 3).
//
// Explore(i, M_avail) systematically descends the subtree of i with a fixed
// memory budget, greedily replacing a cut node j by the cut of its own
// subtree whenever that subtree can be reduced to a memory footprint of at
// most f_j. It returns
//   * the minimal-footprint reachable cut and a traversal reaching it, and
//   * the "peak": the least budget that would allow visiting one more node.
// MinMem starts from the trivial lower bound max_i MemReq(i) and repeatedly
// raises the budget to the reported peak, warm-starting from the saved cut,
// until the whole tree has been processed. The final budget is the optimal
// memory, and the accumulated traversal attains it.
//
// Worst-case complexity O(p²) like Liu's exact algorithm, but much faster
// on assembly trees in practice (Fig. 6 of the paper; reproduced by
// bench/fig6_runtime_profiles).
#pragma once

#include "core/traversal.hpp"
#include "tree/tree.hpp"

namespace treemem {

/// Result of MinMem, with instrumentation counters for the runtime study.
struct MinMemResult {
  Weight peak = 0;       ///< optimal in-core memory (MinMemory value)
  Traversal order;       ///< traversal attaining the optimum (out-tree order)
  int iterations = 0;    ///< budget-raising rounds of Algorithm 4
  long long explore_calls = 0;  ///< total Explore invocations
};

/// Options for ablation studies.
struct MinMemOptions {
  /// Keep the root cut/traversal between budget-raising rounds (the paper's
  /// Linit/Trinit warm start). Disabling re-explores from scratch each round.
  bool warm_start = true;
  /// Stack size for the exploration (recursion depth = tree height).
  std::size_t stack_bytes = 0;  ///< 0 = library default (512 MiB reserved)
};

/// Computes the optimal in-core memory and a traversal attaining it.
MinMemResult minmem_optimal(const Tree& tree, const MinMemOptions& options = {});

/// Result of one Explore probe (exposed for tests and for the MinIO
/// experiments that need reachable cuts).
struct ExploreResult {
  Weight min_mem = 0;          ///< footprint of the best reachable cut
  Weight peak = 0;             ///< least budget that visits one more node
  std::vector<NodeId> cut;     ///< the cut itself (input files resident)
  Traversal order;             ///< traversal from `start` to the cut
};

/// Runs a single Explore(start, budget) from scratch. If the node itself
/// cannot be executed within `budget`, min_mem is kInfiniteWeight and peak
/// is MemReq(start).
ExploreResult explore_subtree(const Tree& tree, NodeId start, Weight budget);

}  // namespace treemem
