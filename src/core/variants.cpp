#include "core/variants.hpp"

#include <algorithm>

namespace treemem {

Tree replacement_transform(const Tree& tree) {
  std::vector<NodeId> parent = tree.parents();
  std::vector<Weight> file = tree.files();
  std::vector<Weight> work(parent.size(), 0);
  for (NodeId u = 0; u < tree.size(); ++u) {
    work[static_cast<std::size_t>(u)] =
        -std::min(tree.file_size(u), tree.child_file_sum(u));
  }
  return Tree(std::move(parent), std::move(file), std::move(work));
}

Weight replacement_model_peak(const Tree& tree, const Traversal& order) {
  // Structural validation mirrors traversal_peak.
  const auto p = static_cast<std::size_t>(tree.size());
  TM_CHECK(order.size() == p, "replacement peak: traversal size mismatch");
  std::vector<NodeId> pos(p, kNoNode);
  for (std::size_t t = 0; t < p; ++t) {
    const NodeId u = order[t];
    TM_CHECK(u >= 0 && static_cast<std::size_t>(u) < p &&
                 pos[static_cast<std::size_t>(u)] == kNoNode,
             "replacement peak: invalid traversal");
    pos[static_cast<std::size_t>(u)] = static_cast<NodeId>(t);
  }
  for (NodeId u = 0; u < tree.size(); ++u) {
    if (tree.parent(u) != kNoNode) {
      TM_CHECK(pos[static_cast<std::size_t>(tree.parent(u))] <
                   pos[static_cast<std::size_t>(u)],
               "replacement peak: precedence violated at " << u);
    }
  }

  Weight resident = tree.file_size(tree.root());
  Weight peak = resident;
  for (const NodeId u : order) {
    const Weight transient =
        resident - tree.file_size(u) +
        std::max(tree.file_size(u), tree.child_file_sum(u));
    peak = std::max(peak, transient);
    resident += tree.child_file_sum(u) - tree.file_size(u);
  }
  return peak;
}

Tree from_liu_model(const LiuModelInstance& instance) {
  const std::size_t p = instance.parent.size();
  TM_CHECK(instance.n_plus.size() == p && instance.n_minus.size() == p,
           "Liu model: array sizes disagree");
  std::vector<Weight> child_storage(p, 0);
  for (std::size_t u = 0; u < p; ++u) {
    TM_CHECK(instance.n_minus[u] >= 0,
             "Liu model: n_minus must be non-negative at node " << u);
    const NodeId par = instance.parent[u];
    if (par != kNoNode) {
      child_storage[static_cast<std::size_t>(par)] += instance.n_minus[u];
    }
  }
  std::vector<Weight> file(p);
  std::vector<Weight> work(p);
  for (std::size_t u = 0; u < p; ++u) {
    TM_CHECK(instance.n_plus[u] >= child_storage[u],
             "Liu model: n_plus(" << u << ")=" << instance.n_plus[u]
                                  << " below its children's storage "
                                  << child_storage[u]);
    file[u] = instance.n_minus[u];
    work[u] = instance.n_plus[u] - instance.n_minus[u] - child_storage[u];
  }
  std::vector<NodeId> parent = instance.parent;
  return Tree(std::move(parent), std::move(file), std::move(work));
}

Weight liu_model_peak(const LiuModelInstance& instance,
                      const Traversal& order) {
  const std::size_t p = instance.parent.size();
  TM_CHECK(order.size() == p, "Liu model peak: traversal size mismatch");
  std::vector<char> done(p, 0);
  std::vector<Weight> child_storage(p, 0);
  for (std::size_t u = 0; u < p; ++u) {
    const NodeId par = instance.parent[u];
    if (par != kNoNode) {
      child_storage[static_cast<std::size_t>(par)] += instance.n_minus[u];
    }
  }

  Weight resident = 0;  // storage of completed, unconsumed subtrees
  Weight peak = 0;
  for (const NodeId x : order) {
    TM_CHECK(x >= 0 && static_cast<std::size_t>(x) < p && !done[static_cast<std::size_t>(x)],
             "Liu model peak: invalid order");
    // All children must be complete (bottom-up order).
    const Weight transient = resident - child_storage[static_cast<std::size_t>(x)] +
                             instance.n_plus[static_cast<std::size_t>(x)];
    peak = std::max(peak, transient);
    resident += instance.n_minus[static_cast<std::size_t>(x)] -
                child_storage[static_cast<std::size_t>(x)];
    done[static_cast<std::size_t>(x)] = 1;
  }
  peak = std::max(peak, resident);
  return peak;
}

}  // namespace treemem
