// Execution traces: the step-by-step memory timeline of a traversal,
// optionally with its I/O schedule. Where check.hpp answers "is it
// feasible and what is the peak", this module records *why* — which step
// holds what — for tooling, debugging and the examples' memory plots.
#pragma once

#include <string>
#include <vector>

#include "core/traversal.hpp"
#include "tree/tree.hpp"

namespace treemem {

struct TraceStep {
  NodeId node = kNoNode;       ///< task executed at this step
  Weight resident_before = 0;  ///< input files held just before execution
  Weight transient = 0;        ///< memory while the task runs
  Weight resident_after = 0;   ///< files held after execution
  Weight written = 0;          ///< volume evicted just before this step
  Weight read_back = 0;        ///< volume reloaded for this step (f of node)
};

struct ExecutionTrace {
  std::vector<TraceStep> steps;
  Weight peak = 0;       ///< max transient (== traversal_peak when no I/O)
  Weight io_volume = 0;  ///< total written volume
};

/// Traces an in-core traversal (out-tree order).
ExecutionTrace trace_execution(const Tree& tree, const Traversal& order);

/// Traces an out-of-core schedule; resident quantities account for the
/// evicted files (a written file stops counting until its read-back).
ExecutionTrace trace_execution(const Tree& tree, const IoSchedule& schedule);

/// ASCII memory-over-time profile (transient per step), with the peak step
/// marked — the classic multifrontal "memory mountain" picture.
std::string render_memory_profile(const ExecutionTrace& trace, int width = 72,
                                  int height = 16);

}  // namespace treemem
