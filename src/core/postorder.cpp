#include "core/postorder.hpp"

#include <algorithm>

namespace treemem {

namespace {

/// Computes per-node subtree peaks P_i and, if `child_order` is non-null,
/// the optimal processing order of each node's children (a CSR-like layout
/// aligned with Tree's child lists).
std::vector<Weight> subtree_peaks(const Tree& tree,
                                  std::vector<NodeId>* child_order) {
  const auto p = static_cast<std::size_t>(tree.size());
  std::vector<Weight> peak(p, 0);
  if (child_order != nullptr) {
    child_order->assign(p == 0 ? 0 : p - 1, kNoNode);
  }

  // scratch: children of the current node sorted by increasing P - f.
  std::vector<NodeId> sorted;
  const auto& order = tree.top_down_order();
  std::int64_t csr_end = static_cast<std::int64_t>(p) - 1;

  // Bottom-up sweep. To key the CSR slots for child_order we mirror the
  // Tree's own child layout: children(u) occupy a contiguous slice whose
  // offset we recover by walking the top-down order backwards and assigning
  // slices from the back — instead we simply reuse the child span indices.
  (void)csr_end;
  std::vector<std::int64_t> child_offset(p + 1, 0);
  {
    std::int64_t running = 0;
    for (std::size_t u = 0; u < p; ++u) {
      child_offset[u] = running;
      running += tree.num_children(static_cast<NodeId>(u));
    }
    child_offset[p] = running;
  }

  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId u = *it;
    const auto kids = tree.children(u);
    // A subtree's slot starts with its own input file resident, so the slot
    // maximum is at least f_u even when a negative n_u makes MemReq small.
    const Weight floor = std::max(tree.file_size(u), tree.mem_req(u));
    if (kids.empty()) {
      peak[static_cast<std::size_t>(u)] = floor;
      continue;
    }
    sorted.assign(kids.begin(), kids.end());
    std::stable_sort(sorted.begin(), sorted.end(),
                     [&](NodeId a, NodeId b) {
                       return peak[static_cast<std::size_t>(a)] - tree.file_size(a) <
                              peak[static_cast<std::size_t>(b)] - tree.file_size(b);
                     });
    // Peak of the sorted schedule: child t runs while the files of children
    // u > t are still resident.
    Weight suffix = 0;
    Weight best = floor;
    for (std::size_t t = sorted.size(); t-- > 0;) {
      const NodeId c = sorted[t];
      best = std::max(best, peak[static_cast<std::size_t>(c)] + suffix);
      suffix += tree.file_size(c);
    }
    peak[static_cast<std::size_t>(u)] = best;
    if (child_order != nullptr) {
      const std::int64_t off = child_offset[static_cast<std::size_t>(u)];
      for (std::size_t t = 0; t < sorted.size(); ++t) {
        (*child_order)[static_cast<std::size_t>(off) + t] = sorted[t];
      }
    }
  }
  return peak;
}

}  // namespace

Weight best_postorder_peak(const Tree& tree) {
  return subtree_peaks(tree, nullptr)[static_cast<std::size_t>(tree.root())];
}

TraversalResult best_postorder(const Tree& tree) {
  std::vector<NodeId> child_order;
  const auto peaks = subtree_peaks(tree, &child_order);

  std::vector<std::int64_t> child_offset(static_cast<std::size_t>(tree.size()) + 1, 0);
  {
    std::int64_t running = 0;
    for (NodeId u = 0; u < tree.size(); ++u) {
      child_offset[static_cast<std::size_t>(u)] = running;
      running += tree.num_children(u);
    }
    child_offset[static_cast<std::size_t>(tree.size())] = running;
  }

  TraversalResult result;
  result.peak = peaks[static_cast<std::size_t>(tree.root())];
  result.order.reserve(static_cast<std::size_t>(tree.size()));

  // Depth-first emission with the children of each node pushed in reverse
  // optimal order, so the first child's subtree is processed contiguously.
  std::vector<NodeId> stack{tree.root()};
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    result.order.push_back(u);
    const std::int64_t off = child_offset[static_cast<std::size_t>(u)];
    const NodeId k = tree.num_children(u);
    for (NodeId t = k; t-- > 0;) {
      stack.push_back(child_order[static_cast<std::size_t>(off + t)]);
    }
  }
  return result;
}

}  // namespace treemem
