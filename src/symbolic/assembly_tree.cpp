#include "symbolic/assembly_tree.hpp"

#include <algorithm>
#include <numeric>

#include "symbolic/symbolic.hpp"

namespace treemem {

namespace {

/// Union-find over etree columns; the representative carries the supernode
/// accumulators (η, and the top column whose count is µ).
class SupernodeForest {
 public:
  SupernodeForest(const std::vector<Index>& parent,
                  const std::vector<Index>& counts)
      : parent_(parent), counts_(counts),
        rep_(parent.size()), eta_(parent.size(), 1), top_(parent.size()) {
    std::iota(rep_.begin(), rep_.end(), Index{0});
    std::iota(top_.begin(), top_.end(), Index{0});
  }

  Index find(Index v) {
    Index root = v;
    while (rep_[static_cast<std::size_t>(root)] != root) {
      root = rep_[static_cast<std::size_t>(root)];
    }
    while (rep_[static_cast<std::size_t>(v)] != root) {
      const Index next = rep_[static_cast<std::size_t>(v)];
      rep_[static_cast<std::size_t>(v)] = root;
      v = next;
    }
    return root;
  }

  /// Merges the supernode of `child_col` into the supernode of `top_col`
  /// (which stays the representative top).
  void merge_into(Index top_col, Index child_col) {
    const Index a = find(top_col);
    const Index b = find(child_col);
    TM_ASSERT(a != b, "merging a supernode with itself");
    rep_[static_cast<std::size_t>(b)] = a;
    eta_[static_cast<std::size_t>(a)] += eta_[static_cast<std::size_t>(b)];
  }

  Index eta(Index v) { return eta_[static_cast<std::size_t>(find(v))]; }
  Index top(Index v) { return top_[static_cast<std::size_t>(find(v))]; }
  Index mu(Index v) {
    return counts_[static_cast<std::size_t>(top(v))];
  }

  /// Supernode parent column: etree parent of the top column.
  Index parent_col(Index v) {
    return parent_[static_cast<std::size_t>(top(v))];
  }

 private:
  const std::vector<Index>& parent_;
  const std::vector<Index>& counts_;
  std::vector<Index> rep_;
  std::vector<Index> eta_;
  std::vector<Index> top_;
};

}  // namespace

AssemblyTree amalgamate(const std::vector<Index>& parent,
                        const std::vector<Index>& counts,
                        const AssemblyTreeOptions& options) {
  const Index n = static_cast<Index>(parent.size());
  TM_CHECK(counts.size() == parent.size(),
           "amalgamate: counts/parent size mismatch");
  TM_CHECK(options.relax >= 0, "amalgamate: negative relax");
  TM_CHECK(n >= 1, "amalgamate: empty forest");
  for (Index j = 0; j < n; ++j) {
    TM_CHECK(counts[static_cast<std::size_t>(j)] >= 1,
             "amalgamate: column count below 1 at column " << j);
    const Index p = parent[static_cast<std::size_t>(j)];
    TM_CHECK(p == -1 || (p >= 0 && p < n && p != j),
             "amalgamate: bad parent " << p << " of " << j);
  }

  SupernodeForest forest(parent, counts);

  // Child lists of the elimination forest.
  std::vector<std::vector<Index>> children(static_cast<std::size_t>(n));
  std::vector<Index> roots;
  for (Index j = 0; j < n; ++j) {
    const Index p = parent[static_cast<std::size_t>(j)];
    if (p == -1) {
      roots.push_back(j);
    } else {
      children[static_cast<std::size_t>(p)].push_back(j);
    }
  }

  const std::vector<Index> post = etree_postorder(parent);

  // Perfect amalgamation: a node that is the only child of its parent and
  // whose parent's column has exactly one entry less is merged — these are
  // the fundamental supernodes the paper always realizes.
  if (options.perfect) {
    for (const Index j : post) {
      const Index p = parent[static_cast<std::size_t>(j)];
      if (p != -1 && children[static_cast<std::size_t>(p)].size() == 1 &&
          counts[static_cast<std::size_t>(p)] ==
              counts[static_cast<std::size_t>(j)] - 1) {
        forest.merge_into(p, j);
      }
    }
  }

  // Relaxed amalgamation, bottom-up: while the supernode holds no more than
  // `relax` amalgamated nodes (η ≤ relax), merge its densest child
  // supernode (largest µ; ties toward the smaller top column).
  if (options.relax > 0) {
    // Child supernodes of a supernode s = supernodes of etree children of
    // every member column... iterating over the top's subtree is enough if
    // we recompute lazily; we rebuild the candidate list on each merge.
    for (const Index j : post) {
      if (forest.top(j) != j) {
        continue;  // only process each supernode once, at its top column
      }
      while (forest.eta(j) <= options.relax) {
        // Collect current child supernodes of the supernode of j.
        Index best = -1;
        Index best_mu = -1;
        // Children of every member column are candidates; to stay O(subtree)
        // we scan the etree children of member columns. Members are exactly
        // the columns whose find() equals find(j); enumerating them all is
        // expensive, so we exploit that supernodes are connected: walk the
        // member set via a stack over etree children that are in-supernode.
        std::vector<Index> stack{j};
        while (!stack.empty()) {
          const Index m = stack.back();
          stack.pop_back();
          for (const Index c : children[static_cast<std::size_t>(m)]) {
            if (forest.find(c) == forest.find(j)) {
              stack.push_back(c);
            } else {
              const Index cmu = forest.mu(c);
              const Index ctop = forest.top(c);
              if (cmu > best_mu || (cmu == best_mu && ctop < best)) {
                best = ctop;
                best_mu = cmu;
              }
            }
          }
        }
        if (best == -1) {
          break;  // no child supernodes left
        }
        forest.merge_into(j, best);
      }
    }
  }

  // Materialize the supernode tree. The task Tree needs parents before
  // children, and in a postorder ancestors come last — so number the top
  // columns in *reverse* postorder.
  std::vector<Index> unique_tops;
  for (auto it = post.rbegin(); it != post.rend(); ++it) {
    if (forest.top(*it) == *it) {
      unique_tops.push_back(*it);
    }
  }

  AssemblyTree result;
  result.columns = n;
  result.has_virtual_root = roots.size() > 1;

  std::vector<NodeId> tree_id(static_cast<std::size_t>(n), kNoNode);
  std::vector<NodeId> tree_parent;
  std::vector<Weight> file;
  std::vector<Weight> work;

  if (result.has_virtual_root) {
    tree_parent.push_back(kNoNode);
    file.push_back(0);
    work.push_back(0);
    result.eta.push_back(0);
    result.mu.push_back(0);
  }

  for (const Index t : unique_tops) {
    const NodeId id = static_cast<NodeId>(tree_parent.size());
    tree_id[static_cast<std::size_t>(t)] = id;
    const Index parent_col = forest.parent_col(t);
    NodeId parent_id;
    if (parent_col == -1) {
      parent_id = result.has_virtual_root ? 0 : kNoNode;
    } else {
      parent_id = tree_id[static_cast<std::size_t>(forest.top(parent_col))];
      TM_ASSERT(parent_id != kNoNode,
                "assembly tree: parent supernode not yet numbered");
    }
    const Weight eta = forest.eta(t);
    const Weight mu = forest.mu(t);
    tree_parent.push_back(parent_id);
    file.push_back((mu - 1) * (mu - 1));
    work.push_back(eta * eta + 2 * eta * (mu - 1));
    result.eta.push_back(static_cast<Index>(eta));
    result.mu.push_back(static_cast<Index>(mu));
  }

  result.tree = Tree(std::move(tree_parent), std::move(file), std::move(work));
  result.supernode_of.assign(static_cast<std::size_t>(n), kNoNode);
  for (Index j = 0; j < n; ++j) {
    result.supernode_of[static_cast<std::size_t>(j)] =
        tree_id[static_cast<std::size_t>(forest.top(j))];
  }
  return result;
}

AssemblyTree build_assembly_tree(const SparsePattern& a,
                                 const AssemblyTreeOptions& options) {
  TM_CHECK(a.is_square(), "build_assembly_tree: pattern must be square");
  TM_CHECK(a.is_symmetric(),
           "build_assembly_tree: pattern must be symmetric (symmetrize first)");
  TM_CHECK(a.has_full_diagonal(),
           "build_assembly_tree: pattern must have a full diagonal");
  const std::vector<Index> parent = elimination_tree(a);
  const std::vector<Index> counts = column_counts(a, parent);
  return amalgamate(parent, counts, options);
}

}  // namespace treemem
