#include "symbolic/symbolic.hpp"

#include <algorithm>
#include <numeric>

namespace treemem {

std::vector<Index> elimination_tree(const SparsePattern& a) {
  TM_CHECK(a.is_square(), "elimination_tree: pattern must be square");
  const Index n = a.cols();
  std::vector<Index> parent(static_cast<std::size_t>(n), -1);
  std::vector<Index> ancestor(static_cast<std::size_t>(n), -1);

  for (Index j = 0; j < n; ++j) {
    for (const Index i : a.column(j)) {
      // Walk from each below-diagonal entry's row... in column terms: for
      // entry (i, j) with i < j (upper part = row i of the lower part),
      // climb from i toward j, compressing paths.
      Index k = i;
      if (k >= j) {
        continue;
      }
      while (k != -1 && k != j) {
        const Index next = ancestor[static_cast<std::size_t>(k)];
        ancestor[static_cast<std::size_t>(k)] = j;  // path compression
        if (next == -1) {
          parent[static_cast<std::size_t>(k)] = j;
        }
        k = next;
      }
    }
  }
  return parent;
}

std::vector<Index> etree_postorder(const std::vector<Index>& parent) {
  const Index n = static_cast<Index>(parent.size());
  // Build child lists (increasing index order for determinism).
  std::vector<Index> head(static_cast<std::size_t>(n), -1);
  std::vector<Index> next(static_cast<std::size_t>(n), -1);
  std::vector<Index> roots;
  for (Index v = n; v-- > 0;) {  // reverse so lists come out ascending
    const Index p = parent[static_cast<std::size_t>(v)];
    if (p == -1) {
      roots.push_back(v);
    } else {
      TM_CHECK(p >= 0 && p < n, "etree_postorder: bad parent " << p);
      next[static_cast<std::size_t>(v)] = head[static_cast<std::size_t>(p)];
      head[static_cast<std::size_t>(p)] = v;
    }
  }
  std::reverse(roots.begin(), roots.end());  // ascending root order

  std::vector<Index> post;
  post.reserve(static_cast<std::size_t>(n));
  std::vector<Index> stack;
  std::vector<Index> child_cursor(static_cast<std::size_t>(n));
  for (const Index r : roots) {
    stack.push_back(r);
    child_cursor[static_cast<std::size_t>(r)] = head[static_cast<std::size_t>(r)];
    while (!stack.empty()) {
      const Index v = stack.back();
      const Index c = child_cursor[static_cast<std::size_t>(v)];
      if (c == -1) {
        post.push_back(v);
        stack.pop_back();
      } else {
        child_cursor[static_cast<std::size_t>(v)] =
            next[static_cast<std::size_t>(c)];
        stack.push_back(c);
        child_cursor[static_cast<std::size_t>(c)] =
            head[static_cast<std::size_t>(c)];
      }
    }
  }
  TM_CHECK(post.size() == static_cast<std::size_t>(n),
           "etree_postorder: forest traversal lost nodes");
  return post;
}

std::vector<Index> column_counts(const SparsePattern& a,
                                 const std::vector<Index>& parent) {
  TM_CHECK(a.is_square(), "column_counts: pattern must be square");
  const Index n = a.cols();
  TM_CHECK(parent.size() == static_cast<std::size_t>(n),
           "column_counts: parent array size mismatch");
  std::vector<Index> counts(static_cast<std::size_t>(n), 1);  // diagonal
  std::vector<Index> mark(static_cast<std::size_t>(n), -1);

  // Row subtrees: nonzeros of row i of L are exactly the nodes on etree
  // paths from each j (A_ij != 0, j < i) up toward i. Each step of the walk
  // visits a distinct L-entry, so total work is O(nnz(L)).
  for (Index i = 0; i < n; ++i) {
    mark[static_cast<std::size_t>(i)] = i;
    for (const Index j : a.column(i)) {
      if (j >= i) {
        continue;
      }
      Index k = j;
      while (mark[static_cast<std::size_t>(k)] != i) {
        mark[static_cast<std::size_t>(k)] = i;
        ++counts[static_cast<std::size_t>(k)];  // L(i, k) != 0
        k = parent[static_cast<std::size_t>(k)];
        TM_ASSERT(k != -1, "row subtree escaped the forest at row " << i);
      }
    }
  }
  return counts;
}

SparsePattern symbolic_cholesky(const SparsePattern& a) {
  TM_CHECK(a.is_square(), "symbolic_cholesky: pattern must be square");
  const Index n = a.cols();
  const std::vector<Index> parent = elimination_tree(a);

  // L(:,j) = lower part of A(:,j)  ∪  ∪_{c : parent(c)=j} (L(:,c) \ {c}).
  std::vector<std::vector<Index>> cols(static_cast<std::size_t>(n));
  std::vector<std::vector<Index>> children(static_cast<std::size_t>(n));
  for (Index j = 0; j < n; ++j) {
    if (parent[static_cast<std::size_t>(j)] != -1) {
      children[static_cast<std::size_t>(parent[static_cast<std::size_t>(j)])]
          .push_back(j);
    }
  }
  std::vector<Index> merged;
  for (const Index j : etree_postorder(parent)) {
    auto& col = cols[static_cast<std::size_t>(j)];
    for (const Index i : a.column(j)) {
      if (i >= j) {
        col.push_back(i);
      }
    }
    std::sort(col.begin(), col.end());
    col.erase(std::unique(col.begin(), col.end()), col.end());
    for (const Index c : children[static_cast<std::size_t>(j)]) {
      const auto& child_col = cols[static_cast<std::size_t>(c)];
      merged.clear();
      // Child entries below its diagonal, minus the child itself.
      std::set_union(col.begin(), col.end(), child_col.begin() + 1,
                     child_col.end(), std::back_inserter(merged));
      col = merged;
    }
    TM_ASSERT(!col.empty() && col.front() == j,
              "column " << j << " must start at its diagonal");
  }

  std::vector<std::int64_t> col_ptr(static_cast<std::size_t>(n) + 1, 0);
  std::vector<Index> row_idx;
  for (Index j = 0; j < n; ++j) {
    row_idx.insert(row_idx.end(), cols[static_cast<std::size_t>(j)].begin(),
                   cols[static_cast<std::size_t>(j)].end());
    col_ptr[static_cast<std::size_t>(j) + 1] =
        static_cast<std::int64_t>(row_idx.size());
  }
  return SparsePattern(n, n, std::move(col_ptr), std::move(row_idx));
}

std::int64_t factor_nnz(const SparsePattern& a) {
  const std::vector<Index> parent = elimination_tree(a);
  const std::vector<Index> counts = column_counts(a, parent);
  return std::accumulate(counts.begin(), counts.end(), std::int64_t{0});
}

}  // namespace treemem
