// Assembly-tree construction: relaxed node amalgamation on the elimination
// tree and the paper's node/edge weight assignment (Section VI-B).
//
// Pipeline: symmetric pattern  →  elimination tree + column counts
//           →  perfect amalgamation (fundamental supernode chains)
//           →  relaxed amalgamation (up to `r` extra nodes per supernode,
//              densest child first)
//           →  task tree with
//                 n_i = η² + 2η(µ−1)   (frontal matrix minus the CB)
//                 f_i = (µ−1)²         (contribution block)
// where η is the number of eliminated variables in the supernode and µ the
// column count of its highest (closest-to-root) node. MemReq(i) is then the
// frontal matrix plus the children contribution blocks — the in-core
// multifrontal assembly requirement.
#pragma once

#include "sparse/pattern.hpp"
#include "tree/tree.hpp"

namespace treemem {

struct AssemblyTreeOptions {
  /// Allowed relaxed amalgamations per node (the paper uses 1, 2, 4 and 16).
  /// 0 performs only perfect amalgamation.
  Index relax = 1;
  /// Perform perfect (fundamental supernode) amalgamation first.
  bool perfect = true;
};

struct AssemblyTree {
  /// The task tree in the paper's model (out-tree; use in-tree reading for
  /// the multifrontal bottom-up direction).
  Tree tree;
  /// supernode_of[j]: tree node holding elimination-tree column j. The
  /// virtual root (present iff the elimination forest had several roots)
  /// holds no column.
  std::vector<NodeId> supernode_of;
  /// Eliminated variables per tree node (η); 0 for the virtual root.
  std::vector<Index> eta;
  /// Column count of the top variable per tree node (µ); 0 for the root.
  std::vector<Index> mu;
  /// Number of etree columns (original matrix dimension).
  Index columns = 0;
  bool has_virtual_root = false;
};

/// Builds the assembly tree of a symmetric pattern (apply symmetrize()
/// first; the pattern must have a full diagonal).
AssemblyTree build_assembly_tree(const SparsePattern& a,
                                 const AssemblyTreeOptions& options = {});

/// Amalgamation on a precomputed elimination forest: exposed separately so
/// tests can drive it with handcrafted parents/counts.
AssemblyTree amalgamate(const std::vector<Index>& parent,
                        const std::vector<Index>& counts,
                        const AssemblyTreeOptions& options = {});

}  // namespace treemem
