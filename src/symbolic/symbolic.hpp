// Symbolic Cholesky factorization: elimination trees, postorderings and
// column counts of the factor L — the paper's `symbfact` substrate
// (Section VI-B).
//
// All routines take a *symmetric* pattern with a full diagonal (apply
// symmetrize() first) and treat it as the pattern of A in A = LLᵀ.
#pragma once

#include "sparse/pattern.hpp"

namespace treemem {

/// Elimination tree (Liu's algorithm with path compression): parent[j] is
/// the parent of column j, or -1 for roots. The result is a forest when the
/// graph of A is disconnected. O(nnz · α(n)).
std::vector<Index> elimination_tree(const SparsePattern& a);

/// A postorder of the forest `parent` (children before parents, each
/// subtree contiguous). Deterministic: children are visited in increasing
/// index order.
std::vector<Index> etree_postorder(const std::vector<Index>& parent);

/// Column counts of L: counts[j] = number of nonzeros in column j of L
/// *including* the diagonal — the µ of the paper's weight formulas.
/// Exact, via row-subtree traversals with marking; O(nnz(L)).
std::vector<Index> column_counts(const SparsePattern& a,
                                 const std::vector<Index>& parent);

/// Full symbolic factorization (pattern of L, including the diagonal),
/// by column merging. O(nnz(L) · height) — validation/small-n use.
SparsePattern symbolic_cholesky(const SparsePattern& a);

/// nnz(L) = sum of column counts (includes the diagonal).
std::int64_t factor_nnz(const SparsePattern& a);

}  // namespace treemem
