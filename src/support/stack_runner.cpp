#include "support/stack_runner.hpp"

#include <pthread.h>

#include <exception>
#include <system_error>

#include "support/check.hpp"

namespace treemem {

namespace {

struct ThreadContext {
  const std::function<void()>* body = nullptr;
  std::exception_ptr error;
};

extern "C" void* stack_runner_entry(void* arg) {
  auto* context = static_cast<ThreadContext*>(arg);
  try {
    (*context->body)();
  } catch (...) {
    context->error = std::current_exception();
  }
  return nullptr;
}

}  // namespace

void run_with_stack(std::size_t stack_bytes, const std::function<void()>& body) {
  TM_CHECK(stack_bytes >= static_cast<std::size_t>(PTHREAD_STACK_MIN),
           "stack size " << stack_bytes << " below PTHREAD_STACK_MIN");

  pthread_attr_t attr;
  int rc = pthread_attr_init(&attr);
  TM_CHECK(rc == 0, "pthread_attr_init failed: " << rc);
  rc = pthread_attr_setstacksize(&attr, stack_bytes);
  if (rc != 0) {
    pthread_attr_destroy(&attr);
    TM_CHECK(false, "pthread_attr_setstacksize(" << stack_bytes
                                                 << ") failed: " << rc);
  }

  ThreadContext context;
  context.body = &body;

  pthread_t thread;
  rc = pthread_create(&thread, &attr, stack_runner_entry, &context);
  pthread_attr_destroy(&attr);
  TM_CHECK(rc == 0, "pthread_create failed: " << rc);

  rc = pthread_join(thread, nullptr);
  TM_CHECK(rc == 0, "pthread_join failed: " << rc);

  if (context.error) {
    std::rethrow_exception(context.error);
  }
}

}  // namespace treemem
