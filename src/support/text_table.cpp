#include "support/text_table.hpp"

#include <algorithm>
#include <sstream>

#include "support/check.hpp"

namespace treemem {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  TM_CHECK(!header_.empty(), "TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> cells) {
  TM_CHECK(cells.size() == header_.size(),
           "TextTable: row arity " << cells.size() << " != header arity "
                                   << header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream oss;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      oss << (c == 0 ? "| " : " | ");
      oss << row[c] << std::string(width[c] - row[c].size(), ' ');
    }
    oss << " |\n";
  };

  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    oss << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
  }
  oss << "-|\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return oss.str();
}

}  // namespace treemem
