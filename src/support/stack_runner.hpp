// Runs a callable on a thread with an explicitly sized stack.
//
// Several algorithms in this library (MinMem's Explore, recursive tree
// constructions) recurse to a depth equal to the tree height. Assembly trees
// are shallow after amalgamation, but degenerate inputs (chains with 10^6
// nodes) are legal and must not crash. Rather than contorting every
// algorithm into an explicit-stack form, deep entry points run their body on
// a dedicated pthread whose stack is large enough for any input we accept.
#pragma once

#include <cstddef>
#include <functional>

namespace treemem {

/// Default stack size for deep recursions: 512 MiB of *reserved* address
/// space (committed lazily by the OS, so the cost is address space only).
inline constexpr std::size_t kBigStackBytes = std::size_t{512} << 20;

/// Executes `body` on a freshly created thread with `stack_bytes` of stack,
/// blocks until it finishes, and rethrows any exception it threw.
void run_with_stack(std::size_t stack_bytes, const std::function<void()>& body);

/// Convenience wrapper returning a value from the big-stack thread.
template <typename T>
T run_with_stack_result(std::size_t stack_bytes, const std::function<T()>& body) {
  T result{};
  run_with_stack(stack_bytes, [&]() { result = body(); });
  return result;
}

}  // namespace treemem
