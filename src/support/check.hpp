// Checked assertions and error reporting for the treemem library.
//
// TM_CHECK is used for public API precondition validation and stays enabled
// in all build types: the algorithms in this library are the product, so a
// silent precondition violation is never acceptable. TM_ASSERT guards
// internal invariants and also stays on; its cost is negligible next to the
// O(p log p)+ algorithms it protects.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace treemem {

/// Exception thrown when a TM_CHECK / TM_ASSERT condition fails.
class Error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& message);

}  // namespace detail

}  // namespace treemem

/// Validates a public-API precondition; throws treemem::Error on failure.
/// The second argument is a stream expression, e.g.
///   TM_CHECK(i < n, "node " << i << " out of range [0," << n << ")");
#define TM_CHECK(cond, msg)                                              \
  do {                                                                   \
    if (!(cond)) [[unlikely]] {                                          \
      std::ostringstream tm_oss_;                                        \
      tm_oss_ << msg; /* NOLINT */                                       \
      ::treemem::detail::throw_check_failure(#cond, __FILE__, __LINE__,  \
                                             tm_oss_.str());             \
    }                                                                    \
  } while (0)

/// Internal invariant check; same behaviour as TM_CHECK, kept separate so
/// call sites document intent (bug in the library vs. bug in the caller).
#define TM_ASSERT(cond, msg) TM_CHECK(cond, msg)
