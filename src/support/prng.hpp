// Deterministic pseudo-random number generation.
//
// All randomness in treemem (tree generators, matrix generators, experiment
// corpora) flows through this xoshiro256** generator so that tests and
// benchmarks are reproducible bit-for-bit across platforms. <random>
// distributions are deliberately avoided: their output is implementation
// defined, which would make golden tests non-portable.
#pragma once

#include <cstdint>
#include <vector>

#include "support/check.hpp"

namespace treemem {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm),
/// seeded through splitmix64. Fast, 256-bit state, passes BigCrush.
class Prng {
 public:
  explicit Prng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the four state words.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    TM_CHECK(lo <= hi, "uniform_int: empty range [" << lo << "," << hi << "]");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) {  // full 64-bit range
      return static_cast<std::int64_t>(next_u64());
    }
    // Debiased modulo (Lemire-style rejection kept simple: rejection loop).
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    std::uint64_t value = next_u64();
    while (value >= limit) {
      value = next_u64();
    }
    return lo + static_cast<std::int64_t>(value % span);
  }

  /// Uniform double in [0, 1).
  double uniform_real() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) {
    return lo + (hi - lo) * uniform_real();
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform_real() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    TM_CHECK(!items.empty(), "pick: empty vector");
    return items[static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace treemem
