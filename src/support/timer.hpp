// Monotonic wall-clock timer used by the runtime experiments (Fig. 6).
#pragma once

#include <chrono>

namespace treemem {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last restart().
  double elapsed_s() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_s() * 1e3; }
  double elapsed_us() const { return elapsed_s() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace treemem
