#include "support/csv.hpp"

#include <iomanip>
#include <sstream>

#include "support/check.hpp"

namespace treemem {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), out_(path), arity_(header.size()) {
  TM_CHECK(out_.good(), "cannot open CSV file for writing: " << path);
  TM_CHECK(!header.empty(), "CSV header must not be empty");
  write_row(header);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  TM_CHECK(cells.size() == arity_, "CSV row arity " << cells.size()
                                                    << " != header arity "
                                                    << arity_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) {
      out_ << ',';
    }
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  TM_CHECK(out_.good(), "CSV write failed: " << path_);
}

std::string CsvWriter::cell(double value, int precision) {
  std::ostringstream oss;
  oss << std::setprecision(precision) << value;
  return oss.str();
}

std::string CsvWriter::cell(long long value) { return std::to_string(value); }

std::string CsvWriter::cell(unsigned long long value) {
  return std::to_string(value);
}

std::string CsvWriter::escape(const std::string& raw) {
  if (raw.find_first_of(",\"\n") == std::string::npos) {
    return raw;
  }
  std::string quoted = "\"";
  for (char c : raw) {
    if (c == '"') {
      quoted += '"';
    }
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace treemem
