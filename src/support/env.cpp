#include "support/env.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "support/check.hpp"

namespace treemem {

std::optional<std::string> env_string(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return std::nullopt;
  }
  return std::string(value);
}

long long parse_int_strict(const std::string& text, long long min_value,
                           long long max_value, const std::string& what) {
  // Reject anything strtoll would quietly tolerate: leading whitespace,
  // '+' signs, hex prefixes, partial parses. Only [-]digits is an integer.
  std::size_t start = 0;
  if (!text.empty() && text[0] == '-') {
    start = 1;
  }
  bool all_digits = start < text.size();
  for (std::size_t i = start; i < text.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(text[i]))) {
      all_digits = false;
      break;
    }
  }
  TM_CHECK(all_digits,
           what << ": '" << text << "' is not an integer");
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(text.c_str(), &end, 10);
  TM_CHECK(errno != ERANGE && *end == '\0',
           what << ": '" << text << "' is not a representable integer");
  TM_CHECK(parsed >= min_value && parsed <= max_value,
           what << ": " << parsed << " is outside [" << min_value << ", "
                << max_value << "]");
  return parsed;
}

std::optional<long long> env_int(const char* name, long long min_value,
                                 long long max_value) {
  const std::optional<std::string> raw = env_string(name);
  if (!raw) {
    return std::nullopt;
  }
  return parse_int_strict(*raw, min_value, max_value, name);
}

std::optional<double> env_double(const char* name, double min_value,
                                 double max_value) {
  const std::optional<std::string> raw = env_string(name);
  if (!raw) {
    return std::nullopt;
  }
  // Same strictness as parse_int_strict: plain decimal forms only —
  // [-]digits[.digits][e±exp]. strtod alone would also take leading
  // whitespace, '+', hex floats and inf/nan; reject those up front so the
  // two parsers share one documented contract.
  const std::string& text = *raw;
  std::size_t i = text[0] == '-' ? 1 : 0;
  bool well_formed = i < text.size() &&
                     (std::isdigit(static_cast<unsigned char>(text[i])) ||
                      text[i] == '.');
  for (std::size_t k = i; well_formed && k < text.size(); ++k) {
    const char c = text[k];
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
        c != 'e' && c != 'E' && c != '-' && c != '+') {
      well_formed = false;
    }
  }
  TM_CHECK(well_formed, name << ": '" << text << "' is not a number");
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  TM_CHECK(errno != ERANGE && *end == '\0',
           name << ": '" << text << "' is not a number");
  TM_CHECK(parsed >= min_value && parsed <= max_value,
           name << ": " << parsed << " is outside [" << min_value << ", "
                << max_value << "]");
  return parsed;
}

std::optional<std::size_t> env_choice(
    const char* name, const std::vector<std::string>& choices) {
  const std::optional<std::string> raw = env_string(name);
  if (!raw) {
    return std::nullopt;
  }
  for (std::size_t i = 0; i < choices.size(); ++i) {
    if (*raw == choices[i]) {
      return i;
    }
  }
  std::string valid;
  for (const std::string& choice : choices) {
    valid += valid.empty() ? choice : " | " + choice;
  }
  TM_CHECK(false, name << ": unknown value '" << *raw << "' (expected "
                       << valid << ")");
  return std::nullopt;  // unreachable
}

}  // namespace treemem
