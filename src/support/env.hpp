// The one strictly-parsed TREEMEM_* environment layer.
//
// Every runtime knob of the library reads its override through this file:
// TREEMEM_THREADS (support/parallel_for.hpp), TREEMEM_KERNEL
// (dense/front_kernel.hpp), TREEMEM_ADMISSION
// (parallel/schedule_core.hpp), the solver facade's TREEMEM_ORDERING /
// TREEMEM_TRAVERSAL / TREEMEM_WORKERS / TREEMEM_BUDGET
// (solver/solver.hpp), and the bench harness's TREEMEM_SCALE / TREEMEM_OUT
// (bench/bench_common.hpp). Parsing is strict with *errors*: a malformed
// value throws treemem::Error naming the variable and the offending text,
// so a typo surfaces at startup instead of silently running the experiment
// with a different configuration — the failure mode the old per-module
// ignore-on-malformed copies merely softened. An unset or empty variable
// is simply "no override" (std::nullopt).
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace treemem {

/// Raw value of the variable; nullopt when unset or set to "".
std::optional<std::string> env_string(const char* name);

/// Parses `text` as a decimal integer in [min_value, max_value]. The whole
/// string must be consumed (no sign prefixes beyond '-', no trailing
/// characters, no leading whitespace). Throws Error mentioning `what` on
/// malformed or out-of-range input.
long long parse_int_strict(const std::string& text, long long min_value,
                           long long max_value, const std::string& what);

/// Integer environment variable in [min_value, max_value]; nullopt when
/// unset/empty, Error (naming the variable) when malformed or out of range.
std::optional<long long> env_int(const char* name, long long min_value,
                                 long long max_value);

/// Floating-point environment variable in [min_value, max_value]; same
/// unset/malformed contract as env_int.
std::optional<double> env_double(const char* name, double min_value,
                                 double max_value);

/// Enumerated environment variable: returns the index of the matching
/// choice (exact, case-sensitive — the library's spellings are all
/// lower-case). Nullopt when unset/empty; Error listing the valid
/// spellings when the value matches none of them.
std::optional<std::size_t> env_choice(const char* name,
                                      const std::vector<std::string>& choices);

}  // namespace treemem
