// Aligned plain-text tables for console output of the benchmark harness
// (Tables I & II of the paper, plus per-experiment summaries).
#pragma once

#include <string>
#include <vector>

namespace treemem {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Renders the table with a header underline and column padding.
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace treemem
