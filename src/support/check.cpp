#include "support/check.hpp"

namespace treemem::detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& message) {
  std::ostringstream oss;
  oss << "treemem check failed: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) {
    oss << " — " << message;
  }
  throw Error(oss.str());
}

}  // namespace treemem::detail
