#include "support/parallel_for.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "parallel/worker_pool.hpp"
#include "support/env.hpp"

namespace treemem {

namespace {

std::atomic<long long> forkjoin_births{0};

}  // namespace

unsigned default_thread_count() {
  // Strict parse through support/env.hpp: a malformed TREEMEM_THREADS
  // throws instead of silently running with a different thread count.
  // Values above 1024 are capped rather than rejected so "very many" keeps
  // meaning "all the parallelism there is" without exhausting thread
  // handles.
  if (const std::optional<long long> env =
          env_int("TREEMEM_THREADS", 1, std::numeric_limits<long long>::max() / 2)) {
    return static_cast<unsigned>(std::min<long long>(*env, 1024));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  unsigned num_threads) {
  if (count == 0) {
    return;
  }
  // The pool resolved TREEMEM_THREADS once at construction; num_threads==0
  // defers to that size instead of re-reading the environment per call.
  unsigned width = num_threads;
  if (width == 0) {
    width = WorkerPool::instance().size();
  }
  if (width > count) {
    width = static_cast<unsigned>(count);
  }
  if (width <= 1) {
    // Inline path: every index executes exactly once on the calling thread
    // and the first exception is rethrown at the end.
    std::exception_ptr inline_error;
    for (std::size_t i = 0; i < count; ++i) {
      try {
        body(i);
      } catch (...) {
        if (!inline_error) {
          inline_error = std::current_exception();
        }
      }
    }
    if (inline_error) {
      std::rethrow_exception(inline_error);
    }
    return;
  }
  // Lease (never spawn, never block): the calling thread participates, so
  // width w needs w-1 helpers. An empty lease — nobody idle — degrades to
  // the inline loop inside run(), same contract.
  WorkerPool::instance().try_lease(width - 1).run(count, body);
}

void forkjoin_parallel_for(std::size_t count,
                           const std::function<void(std::size_t)>& body,
                           unsigned num_threads) {
  if (count == 0) {
    return;
  }
  if (num_threads > count) {
    num_threads = static_cast<unsigned>(count);
  }
  if (num_threads <= 1) {
    std::exception_ptr inline_error;
    for (std::size_t i = 0; i < count; ++i) {
      try {
        body(i);
      } catch (...) {
        if (!inline_error) {
          inline_error = std::current_exception();
        }
      }
    }
    if (inline_error) {
      std::rethrow_exception(inline_error);
    }
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&]() {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) {
        return;
      }
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) {
    threads.emplace_back(worker);
  }
  forkjoin_births.fetch_add(static_cast<long long>(num_threads),
                            std::memory_order_relaxed);
  for (auto& thread : threads) {
    thread.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

long long forkjoin_threads_spawned() {
  return forkjoin_births.load(std::memory_order_relaxed);
}

}  // namespace treemem
