#include "support/parallel_for.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace treemem {

unsigned default_thread_count() {
  if (const char* env = std::getenv("TREEMEM_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) {
      return static_cast<unsigned>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  unsigned num_threads) {
  if (count == 0) {
    return;
  }
  if (num_threads == 0) {
    num_threads = default_thread_count();
  }
  if (num_threads > count) {
    num_threads = static_cast<unsigned>(count);
  }
  if (num_threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      body(i);
    }
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&]() {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) {
        return;
      }
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) {
    threads.emplace_back(worker);
  }
  for (auto& thread : threads) {
    thread.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace treemem
