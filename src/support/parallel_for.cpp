#include "support/parallel_for.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace treemem {

unsigned default_thread_count() {
  if (const char* env = std::getenv("TREEMEM_THREADS")) {
    // Strict parse: the whole value must be a positive integer, otherwise
    // the setting is ignored (a typo must not silently change the thread
    // count mid-experiment). Capped to keep absurd values from exhausting
    // thread handles.
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (std::isdigit(static_cast<unsigned char>(env[0])) && *end == '\0' &&
        parsed >= 1) {
      return static_cast<unsigned>(std::min(parsed, 1024UL));
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  unsigned num_threads) {
  if (count == 0) {
    return;
  }
  if (num_threads == 0) {
    num_threads = default_thread_count();
  }
  if (num_threads > count) {
    num_threads = static_cast<unsigned>(count);
  }
  if (num_threads <= 1) {
    // Same contract as the threaded path: every index executes exactly once
    // on the calling thread and the first exception is rethrown at the end.
    std::exception_ptr inline_error;
    for (std::size_t i = 0; i < count; ++i) {
      try {
        body(i);
      } catch (...) {
        if (!inline_error) {
          inline_error = std::current_exception();
        }
      }
    }
    if (inline_error) {
      std::rethrow_exception(inline_error);
    }
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&]() {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) {
        return;
      }
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) {
    threads.emplace_back(worker);
  }
  for (auto& thread : threads) {
    thread.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace treemem
