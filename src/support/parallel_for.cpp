#include "support/parallel_for.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "support/env.hpp"

namespace treemem {

unsigned default_thread_count() {
  // Strict parse through support/env.hpp: a malformed TREEMEM_THREADS
  // throws instead of silently running with a different thread count.
  // Values above 1024 are capped rather than rejected so "very many" keeps
  // meaning "all the parallelism there is" without exhausting thread
  // handles.
  if (const std::optional<long long> env =
          env_int("TREEMEM_THREADS", 1, std::numeric_limits<long long>::max() / 2)) {
    return static_cast<unsigned>(std::min<long long>(*env, 1024));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  unsigned num_threads) {
  if (count == 0) {
    return;
  }
  if (num_threads == 0) {
    num_threads = default_thread_count();
  }
  if (num_threads > count) {
    num_threads = static_cast<unsigned>(count);
  }
  if (num_threads <= 1) {
    // Same contract as the threaded path: every index executes exactly once
    // on the calling thread and the first exception is rethrown at the end.
    std::exception_ptr inline_error;
    for (std::size_t i = 0; i < count; ++i) {
      try {
        body(i);
      } catch (...) {
        if (!inline_error) {
          inline_error = std::current_exception();
        }
      }
    }
    if (inline_error) {
      std::rethrow_exception(inline_error);
    }
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&]() {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) {
        return;
      }
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) {
    threads.emplace_back(worker);
  }
  for (auto& thread : threads) {
    thread.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace treemem
