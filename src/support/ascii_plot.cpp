#include "support/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "support/check.hpp"

namespace treemem {

namespace {

constexpr char kMarkers[] = {'*', 'o', '+', 'x', '#', '@', '%', '&'};

struct Range {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();

  void include(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  bool valid() const { return lo <= hi; }
  double span() const { return hi > lo ? hi - lo : 1.0; }
};

}  // namespace

std::string render_ascii_plot(const std::vector<PlotSeries>& series,
                              const PlotOptions& options) {
  TM_CHECK(options.width >= 16 && options.height >= 4,
           "plot area too small: " << options.width << "x" << options.height);

  Range xr;
  Range yr;
  bool any = false;
  for (const auto& s : series) {
    TM_CHECK(s.x.size() == s.y.size(),
             "series '" << s.label << "' has mismatched x/y sizes");
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      xr.include(s.x[i]);
      yr.include(s.y[i]);
      any = true;
    }
  }
  if (!any) {
    return "(empty plot)\n";
  }

  const int w = options.width;
  const int h = options.height;
  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));

  auto to_col = [&](double x) {
    const double t = (x - xr.lo) / xr.span();
    return std::clamp(static_cast<int>(std::lround(t * (w - 1))), 0, w - 1);
  };
  auto to_row = [&](double y) {
    const double t = (y - yr.lo) / yr.span();
    // row 0 is the top of the plot
    return std::clamp(h - 1 - static_cast<int>(std::lround(t * (h - 1))), 0,
                      h - 1);
  };

  for (std::size_t si = 0; si < series.size(); ++si) {
    const auto& s = series[si];
    if (s.x.empty()) {
      continue;
    }
    const char marker = kMarkers[si % (sizeof(kMarkers) / sizeof(kMarkers[0]))];
    int prev_col = -1;
    int prev_row = -1;
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      const int col = to_col(s.x[i]);
      const int row = to_row(s.y[i]);
      if (prev_col >= 0) {
        if (options.step) {
          // horizontal run at the previous level, then a vertical jump
          for (int c = prev_col; c <= col; ++c) {
            grid[static_cast<std::size_t>(prev_row)][static_cast<std::size_t>(c)] = marker;
          }
          const int lo = std::min(prev_row, row);
          const int hi = std::max(prev_row, row);
          for (int r = lo; r <= hi; ++r) {
            grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(col)] = marker;
          }
        } else {
          // naive line rasterization
          const int steps = std::max(std::abs(col - prev_col),
                                     std::abs(row - prev_row));
          for (int k = 0; k <= steps; ++k) {
            const double t = steps == 0 ? 0.0 : static_cast<double>(k) / steps;
            const int c = prev_col + static_cast<int>(std::lround(t * (col - prev_col)));
            const int r = prev_row + static_cast<int>(std::lround(t * (row - prev_row)));
            grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = marker;
          }
        }
      } else {
        grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = marker;
      }
      prev_col = col;
      prev_row = row;
    }
  }

  std::ostringstream oss;
  oss << std::setprecision(4);
  oss << "  " << options.y_label << "\n";
  for (int r = 0; r < h; ++r) {
    if (r == 0) {
      oss << std::setw(8) << yr.hi << " |";
    } else if (r == h - 1) {
      oss << std::setw(8) << yr.lo << " |";
    } else {
      oss << std::string(8, ' ') << " |";
    }
    oss << grid[static_cast<std::size_t>(r)] << "\n";
  }
  oss << std::string(9, ' ') << '+' << std::string(static_cast<std::size_t>(w), '-') << "\n";
  {
    std::ostringstream lo_label;
    lo_label << std::setprecision(4) << xr.lo;
    std::ostringstream hi_label;
    hi_label << std::setprecision(4) << xr.hi;
    std::string axis(static_cast<std::size_t>(w) + 10, ' ');
    const std::string lo_str = lo_label.str();
    std::string hi_str = hi_label.str();
    axis.replace(10, lo_str.size(), lo_str);
    const std::size_t hi_pos =
        std::max<std::size_t>(10 + lo_str.size() + 2,
                              10 + static_cast<std::size_t>(w) - hi_str.size());
    axis.replace(hi_pos, hi_str.size(), hi_str);
    oss << axis << "   (" << options.x_label << ")\n";
  }
  oss << "  legend:";
  for (std::size_t si = 0; si < series.size(); ++si) {
    if (series[si].x.empty()) {
      continue;
    }
    oss << "  [" << kMarkers[si % (sizeof(kMarkers) / sizeof(kMarkers[0]))]
        << "] " << series[si].label;
  }
  oss << "\n";
  return oss.str();
}

}  // namespace treemem
