// Minimal work-stealing-free parallel loop for the experiment harness.
//
// The traversal algorithms themselves are inherently sequential (they build
// one global order), but the evaluation runs hundreds of independent
// (tree, algorithm, memory-budget) cases — an embarrassingly parallel outer
// loop. This helper distributes loop indices over a pool of std::threads
// with dynamic (atomic counter) scheduling, because per-case costs vary by
// orders of magnitude across the corpus.
//
// Determinism: the body must write its results into per-index slots
// (e.g. results[i]); the helper guarantees each index is executed exactly
// once but not in any particular order.
#pragma once

#include <cstddef>
#include <functional>

namespace treemem {

/// Executes body(i) for every i in [0, count). If num_threads <= 1 (or the
/// machine is single-core) the loop runs inline on the calling thread.
/// Both paths share one contract: every index executes exactly once even if
/// some bodies throw, and the first exception is rethrown at the end (after
/// all threads joined, in the threaded case).
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                  unsigned num_threads = 0);

/// Number of worker threads parallel_for would use for `num_threads == 0`:
/// the TREEMEM_THREADS environment variable (a positive integer, capped at
/// 1024; handy for reproducible timing runs) when set, otherwise the
/// hardware concurrency (at least 1). Parsed strictly through
/// support/env.hpp: a malformed value throws treemem::Error instead of
/// silently changing the thread count mid-experiment.
unsigned default_thread_count();

}  // namespace treemem
