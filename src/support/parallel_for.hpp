// Parallel loop facade over the persistent worker pool.
//
// parallel_for keeps its original contract — body(i) for every i in
// [0, count), every index exactly once even if bodies throw, first
// exception rethrown after all participants drained, no execution-order
// guarantee — but no longer creates threads: it leases idle workers from
// the process-wide WorkerPool (parallel/worker_pool.hpp), runs the loop
// with the calling thread participating, and returns the workers when the
// loop ends. When no worker is idle (or num_threads <= 1) the loop runs
// inline on the calling thread, same contract — parallel_for never blocks
// waiting for capacity.
//
// Migration note: before the pool, every call re-read TREEMEM_THREADS and
// hardware_concurrency() and spawned fresh std::threads (a fork/join per
// call). The environment is now resolved exactly once, when the pool is
// constructed, and the steady state performs zero thread births. The old
// fork/join loop survives only as forkjoin_parallel_for — the measured
// baseline for the fork-overhead microbench — and must not be used on any
// hot path.
//
// Determinism: the body must write its results into per-index slots
// (e.g. results[i]); each index executes exactly once but in no particular
// order.
#pragma once

#include <cstddef>
#include <functional>

namespace treemem {

/// Executes body(i) for every i in [0, count). num_threads is the desired
/// total parallel width (calling thread included); 0 means the pool's
/// size. If the width resolves to <= 1 — or no pool worker is idle — the
/// loop runs inline on the calling thread. Both paths share one contract:
/// every index executes exactly once even if some bodies throw, and the
/// first exception is rethrown at the end (after all leased workers
/// drained, in the leased case).
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                  unsigned num_threads = 0);

/// Number of workers parallel_for targets for `num_threads == 0`: the
/// TREEMEM_THREADS environment variable (a positive integer, capped at
/// 1024; handy for reproducible timing runs) when set, otherwise the
/// hardware concurrency (at least 1). Parsed strictly through
/// support/env.hpp: a malformed value throws treemem::Error instead of
/// silently changing the thread count mid-experiment. The process-wide
/// WorkerPool is sized by this value exactly once, at first use.
unsigned default_thread_count();

/// The pre-pool implementation: spawns min(num_threads, count) fresh
/// std::threads per call and joins them (the calling thread does not
/// participate). Same index/exception contract as parallel_for. Kept ONLY
/// as the comparison baseline for the fork-overhead microbench and the
/// front_kernels leased-vs-fork/join column — production code leases from
/// the pool instead. num_threads must be explicit here (no env default):
/// the legacy path takes no configuration shortcuts.
void forkjoin_parallel_for(std::size_t count,
                           const std::function<void(std::size_t)>& body,
                           unsigned num_threads);

/// Cumulative std::thread constructions performed by forkjoin_parallel_for
/// (process-wide, monotone). The microbench reports this against the
/// pool's threads_spawned to show the ~100× birth reduction; production
/// paths keep it frozen.
long long forkjoin_threads_spawned();

}  // namespace treemem
