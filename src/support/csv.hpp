// Tiny CSV writer used by the benchmark harness to persist raw experiment
// data next to the human-readable console output (one CSV per table/figure,
// so plots can be regenerated offline with any tool).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace treemem {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws on I/O error.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Writes one row; must have the same arity as the header.
  void write_row(const std::vector<std::string>& cells);

  /// Formats helpers for cells.
  static std::string cell(double value, int precision = 6);
  static std::string cell(long long value);
  static std::string cell(unsigned long long value);

  const std::string& path() const { return path_; }

 private:
  static std::string escape(const std::string& raw);

  std::string path_;
  std::ofstream out_;
  std::size_t arity_;
};

}  // namespace treemem
