// ASCII rendering of x/y series — used to print performance-profile figures
// (Figs. 5–9 of the paper) straight to the terminal so the benchmark
// binaries are self-contained. The raw data is also written to CSV by the
// harness for external plotting.
#pragma once

#include <string>
#include <vector>

namespace treemem {

struct PlotSeries {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;
};

struct PlotOptions {
  int width = 72;    ///< plot area width in characters
  int height = 20;   ///< plot area height in characters
  std::string x_label = "x";
  std::string y_label = "y";
  bool step = false;  ///< render as a step function (right-continuous)
};

/// Renders the series into a character grid with per-series markers and a
/// legend. Series with no points are skipped.
std::string render_ascii_plot(const std::vector<PlotSeries>& series,
                              const PlotOptions& options);

}  // namespace treemem
