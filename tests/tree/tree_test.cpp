// Tests for the Tree data structure, builder, statistics and serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "test_util.hpp"
#include "tree/generators.hpp"
#include "tree/tree.hpp"
#include "tree/tree_io.hpp"

namespace treemem {
namespace {

using testing::tiny_mixed;

TEST(Tree, BasicAccessors) {
  const Tree tree = tiny_mixed();
  EXPECT_EQ(tree.size(), 5);
  EXPECT_EQ(tree.root(), 0);
  EXPECT_EQ(tree.parent(0), kNoNode);
  EXPECT_EQ(tree.parent(3), 1);
  EXPECT_EQ(tree.num_children(0), 2);
  EXPECT_TRUE(tree.is_leaf(3));
  EXPECT_FALSE(tree.is_leaf(2));
  EXPECT_EQ(tree.child_file_sum(0), 10);
  EXPECT_EQ(tree.mem_req(0), 0 + 1 + 10);
  EXPECT_EQ(tree.mem_req(2), 6 + 2 + 3);
  EXPECT_EQ(tree.max_mem_req(), 11);
}

TEST(Tree, TopDownOrderIsParentFirst) {
  const Tree tree = gen::complete_kary(3, 4, 2, 1);
  const auto& order = tree.top_down_order();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(tree.size()));
  std::vector<int> seen(static_cast<std::size_t>(tree.size()), 0);
  for (const NodeId u : order) {
    if (u != tree.root()) {
      EXPECT_TRUE(seen[static_cast<std::size_t>(tree.parent(u))]);
    }
    seen[static_cast<std::size_t>(u)] = 1;
  }
}

TEST(Tree, RejectsMalformedInput) {
  // Two roots.
  EXPECT_THROW(Tree({kNoNode, kNoNode}, {0, 0}, {0, 0}), Error);
  // No root / cycle.
  EXPECT_THROW(Tree({1, 0}, {0, 0}, {0, 0}), Error);
  // Self-loop.
  EXPECT_THROW(Tree({kNoNode, 1}, {0, 0}, {0, 0}), Error);
  // Out-of-range parent.
  EXPECT_THROW(Tree({kNoNode, 7}, {0, 0}, {0, 0}), Error);
  // Negative file.
  EXPECT_THROW(Tree({kNoNode}, {-1}, {0}), Error);
  // f + n < 0.
  EXPECT_THROW(Tree({kNoNode}, {2}, {-3}), Error);
  // Size mismatch.
  EXPECT_THROW(Tree({kNoNode}, {0, 1}, {0}), Error);
  // Empty.
  EXPECT_THROW(Tree({}, {}, {}), Error);
  // Disconnected: 2-cycle beside the root.
  EXPECT_THROW(Tree({kNoNode, 2, 1}, {0, 0, 0}, {0, 0, 0}), Error);
}

TEST(Tree, BuilderEnforcesOrder) {
  TreeBuilder b;
  EXPECT_THROW(b.add_child(0, 1, 1), Error);  // no root yet
  b.add_root(0, 0);
  EXPECT_THROW(b.add_root(0, 0), Error);      // second root
  EXPECT_THROW(b.add_child(5, 1, 1), Error);  // nonexistent parent
  const NodeId c = b.add_child(0, 3, 1);
  b.set_weights(c, 7, 2);
  const Tree tree = std::move(b).build();
  EXPECT_EQ(tree.file_size(c), 7);
  EXPECT_EQ(tree.work_size(c), 2);
}

TEST(Tree, StatsOnKnownShapes) {
  const TreeStats chain = compute_stats(gen::chain(10, 2, 1));
  EXPECT_EQ(chain.nodes, 10);
  EXPECT_EQ(chain.leaves, 1);
  EXPECT_EQ(chain.height, 9);
  EXPECT_EQ(chain.max_degree, 1);

  const TreeStats star = compute_stats(gen::star(7, 3, 0));
  EXPECT_EQ(star.nodes, 8);
  EXPECT_EQ(star.leaves, 7);
  EXPECT_EQ(star.height, 1);
  EXPECT_EQ(star.max_degree, 7);
  EXPECT_EQ(star.total_file, 21);
}

TEST(Tree, DepthsAndSubtreeSizes) {
  const Tree tree = tiny_mixed();
  const auto depths = node_depths(tree);
  EXPECT_EQ(depths, (std::vector<NodeId>{0, 1, 1, 2, 2}));
  const auto sizes = subtree_sizes(tree);
  EXPECT_EQ(sizes, (std::vector<NodeId>{5, 2, 2, 1, 1}));
  EXPECT_EQ(leaf_nodes(tree), (std::vector<NodeId>{3, 4}));
}

TEST(TreeIo, RoundTripPreservesEverything) {
  const Tree tree = tiny_mixed();
  const std::string text = tree_to_string(tree);
  const Tree back = tree_from_string(text);
  ASSERT_EQ(back.size(), tree.size());
  for (NodeId u = 0; u < tree.size(); ++u) {
    EXPECT_EQ(back.parent(u), tree.parent(u));
    EXPECT_EQ(back.file_size(u), tree.file_size(u));
    EXPECT_EQ(back.work_size(u), tree.work_size(u));
  }
}

TEST(TreeIo, AcceptsCommentsAndRejectsGarbage) {
  const Tree tree = tree_from_string(
      "# a comment line\n# another\ntreemem-tree 1 2\n-1 0 0\n0 5 1\n");
  EXPECT_EQ(tree.size(), 2);
  EXPECT_EQ(tree.file_size(1), 5);

  EXPECT_THROW(tree_from_string("bogus 1 2\n-1 0 0\n0 5 1\n"), Error);
  EXPECT_THROW(tree_from_string("treemem-tree 2 1\n-1 0 0\n"), Error);
  EXPECT_THROW(tree_from_string("treemem-tree 1 3\n-1 0 0\n0 5 1\n"), Error);
}

TEST(TreeIo, DotOutputMentionsEveryEdge) {
  const Tree tree = tiny_mixed();
  const std::string dot = tree_to_dot(tree);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("n2 -> n4"), std::string::npos);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

TEST(Generators, ChainStarKaryCaterpillarShapes) {
  EXPECT_EQ(gen::chain(1, 5, 5).size(), 1);
  EXPECT_EQ(gen::complete_kary(3, 3, 1, 0).size(), 1 + 3 + 9);
  EXPECT_EQ(gen::caterpillar(5, 2, 3, 1, 0).size(), 5 + 10);
  EXPECT_THROW(gen::chain(0, 1, 1), Error);
  EXPECT_THROW(gen::iterated_harpoon(1, 1, 10, 1), Error);
  EXPECT_THROW(gen::iterated_harpoon(3, 1, 10, 1), Error);  // 10 % 3 != 0
  EXPECT_THROW(gen::two_partition_gadget({1, 2}), Error);   // odd sum
  EXPECT_THROW(gen::two_partition_gadget({}), Error);
}

TEST(Generators, HarpoonNodeCount) {
  // H_1 has 1 + 3b nodes; each extra level multiplies attachment points by b
  // and adds 4 nodes per branch (u, v, w, link).
  const Tree h1 = gen::harpoon(4, 1000, 1);
  EXPECT_EQ(h1.size(), 1 + 3 * 4);
  const Tree h2 = gen::iterated_harpoon(4, 2, 1000, 1);
  EXPECT_EQ(h2.size(), 1 + 4 * 4 + 4 * 3 * 4);
}

TEST(Generators, RandomTreeRespectsOptions) {
  Prng prng(42);
  gen::RandomTreeOptions options;
  options.chain_bias = 1.0;  // pure chain
  options.min_file = 2;
  options.max_file = 2;
  const Tree chain = gen::random_tree(50, options, prng);
  const TreeStats stats = compute_stats(chain);
  EXPECT_EQ(stats.height, 49);
  EXPECT_EQ(stats.max_degree, 1);

  options.chain_bias = 0.0;
  const Tree wide = gen::random_tree(200, options, prng);
  EXPECT_LT(compute_stats(wide).height, 60);  // w.h.p. much shallower
}

TEST(Generators, PaperRandomWeightsInRange) {
  Prng prng(7);
  const Tree shape = gen::complete_kary(2, 9, 1, 1);  // 511 nodes
  const Tree weighted = gen::with_random_paper_weights(shape, prng);
  const Weight p = weighted.size();
  for (NodeId u = 0; u < weighted.size(); ++u) {
    if (u == weighted.root()) {
      EXPECT_EQ(weighted.file_size(u), 0);
    } else {
      EXPECT_GE(weighted.file_size(u), 1);
      EXPECT_LE(weighted.file_size(u), p);
    }
    EXPECT_GE(weighted.work_size(u), 1);
    EXPECT_LE(weighted.work_size(u), std::max<Weight>(1, p / 500));
  }
}

}  // namespace
}  // namespace treemem
