// The service layer on the Solver facade (solver/symbolic_cache.hpp,
// solver/solver_pool.hpp) plus the concurrency contract of Solver itself.
//
// Pinned properties:
//   * cache hits are bit-exact: a solver adopting cached symbolic state
//     factorizes to the identical factor (every bit of every value) a
//     cold analyze+plan+factorize run produces, and the adopted state is
//     shared (same SolverAnalysis/SolverPlan objects), not copied;
//   * the cache keys on structure: same pattern → one entry regardless of
//     lookup count or thread count; different patterns → different
//     entries, even when built concurrently;
//   * Solver::solve is thread-safe on a shared factorized instance: the
//     cumulative counters come out exact under concurrent solves (this
//     binary runs under TSan in CI, so a data race on the counters —
//     the pre-service bug — fails the job);
//   * multi-RHS solve counts rhs_solved per column, not per call;
//   * SolverPool returns exactly what a lone Solver computes, its
//     aggregated stats equal aggregate_solver_stats(solver_stats()) with
//     the full request volume accounted, job errors propagate through the
//     future without killing the worker, and a budget-gated pool still
//     completes every request;
//   * adopt() preserves cumulative counters (a pooled solver's lifetime
//     totals survive pattern switches) while analyze() resets them.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "perf/traffic.hpp"
#include "solver/solver.hpp"
#include "solver/solver_pool.hpp"
#include "solver/symbolic_cache.hpp"
#include "sparse/generators.hpp"
#include "support/prng.hpp"

namespace treemem {
namespace {

std::vector<double> seeded_rhs(Index n, std::uint64_t seed) {
  Prng prng(seed);
  std::vector<double> rhs(static_cast<std::size_t>(n));
  for (double& v : rhs) {
    v = prng.uniform_real(-1.0, 1.0);
  }
  return rhs;
}

TEST(SymbolicCache, HitFactorizesBitIdenticalToColdRun) {
  const SparsePattern pattern = symmetrize(gen::grid2d(9, 9));
  const SymmetricMatrix matrix = make_spd_matrix(pattern, 77);

  SymbolicCache cache;
  ASSERT_FALSE(cache.lookup(pattern).hit);  // cold: builds the entry
  const SymbolicCache::LookupResult looked = cache.lookup(pattern);
  ASSERT_TRUE(looked.hit);

  Solver warm;
  warm.adopt(looked.symbolic);
  warm.factorize(matrix);

  Solver cold;
  cold.analyze(pattern).plan().factorize(matrix);

  ASSERT_EQ(warm.factor().values.size(), cold.factor().values.size());
  for (std::size_t i = 0; i < cold.factor().values.size(); ++i) {
    EXPECT_EQ(warm.factor().values[i], cold.factor().values[i]) << "at " << i;
  }
  EXPECT_EQ(warm.factor().pattern.row_idx(), cold.factor().pattern.row_idx());
}

TEST(SymbolicCache, SharesStateAndKeysOnStructure) {
  const SparsePattern a = symmetrize(gen::grid2d(7, 7));
  const SparsePattern b = symmetrize(gen::arrowhead(49, 5));

  SymbolicCache cache;
  const SolverSymbolic first = cache.lookup(a).symbolic;
  const SolverSymbolic again = cache.lookup(a).symbolic;
  // Shared, not rebuilt or copied: the same immutable objects.
  EXPECT_EQ(first.analysis.get(), again.analysis.get());
  EXPECT_EQ(first.plan.get(), again.plan.get());

  cache.lookup(b);
  const SymbolicCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 2);

  EXPECT_NE(pattern_fingerprint(a), pattern_fingerprint(b));
  EXPECT_EQ(pattern_fingerprint(a), pattern_fingerprint(a));
}

TEST(SymbolicCache, ConcurrentLookupsBuildOneEntryPerPattern) {
  const std::vector<SparsePattern> patterns = {
      symmetrize(gen::grid2d(6, 6)),
      symmetrize(gen::grid2d(7, 7)),
      symmetrize(gen::grid2d(8, 8)),
  };
  SymbolicCache cache;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t p = 0; p < patterns.size(); ++p) {
        const SolverSymbolic symbolic =
            cache.lookup(patterns[(p + static_cast<std::size_t>(t)) %
                                  patterns.size()])
                .symbolic;
        ASSERT_TRUE(static_cast<bool>(symbolic));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const SymbolicCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, patterns.size());
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<long long>(kThreads * patterns.size()));
}

TEST(SymbolicCache, AcquireYieldsPlannedSolver) {
  const SparsePattern pattern = symmetrize(gen::grid2d(6, 6));
  SymbolicCache cache;
  Solver solver = cache.acquire(pattern);
  EXPECT_TRUE(solver.planned());
  EXPECT_FALSE(solver.factorized());
  solver.factorize(make_spd_matrix(pattern, 3));
  const std::vector<double> rhs = seeded_rhs(pattern.cols(), 11);
  const std::vector<double> x = solver.solve(rhs);
  EXPECT_LT(relative_residual(make_spd_matrix(pattern, 3), x, rhs), 1e-12);
}

TEST(Solver, SymbolicRequiresPlanAndAdoptValidates) {
  Solver unplanned;
  EXPECT_THROW(unplanned.symbolic(), Error);
  unplanned.analyze(symmetrize(gen::grid2d(5, 5)));
  EXPECT_THROW(unplanned.symbolic(), Error);  // analyzed but not planned
  Solver other;
  EXPECT_THROW(other.adopt(SolverSymbolic{}), Error);
}

TEST(Solver, AdoptPreservesCumulativeCountersAnalyzeResets) {
  const SparsePattern a = symmetrize(gen::grid2d(6, 6));
  const SparsePattern b = symmetrize(gen::grid2d(7, 7));
  SymbolicCache cache;

  Solver solver = cache.acquire(a);
  solver.factorize(make_spd_matrix(a, 1));
  solver.solve(seeded_rhs(a.cols(), 1));
  EXPECT_EQ(solver.stats().rhs_solved, 1);
  EXPECT_EQ(solver.stats().factorizations, 1);

  // Switching patterns via adopt keeps the lifetime totals...
  solver.adopt(cache.lookup(b).symbolic);
  EXPECT_EQ(solver.stats().factorizations, 1);
  solver.factorize(make_spd_matrix(b, 2));
  solver.solve(seeded_rhs(b.cols(), 2));
  EXPECT_EQ(solver.stats().rhs_solved, 2);
  EXPECT_EQ(solver.stats().factorizations, 2);
  EXPECT_EQ(solver.stats().n, b.cols());  // reporting follows the adoptee

  // ...while analyze() starts a fresh ledger (the documented contract).
  solver.analyze(a);
  EXPECT_EQ(solver.stats().rhs_solved, 0);
  EXPECT_EQ(solver.stats().factorizations, 0);
}

TEST(Solver, ConcurrentSolvesCountExactly) {
  const SparsePattern pattern = symmetrize(gen::grid2d(8, 8));
  const SymmetricMatrix matrix = make_spd_matrix(pattern, 5);
  Solver solver;
  solver.analyze(pattern).plan().factorize(matrix);

  constexpr int kThreads = 8;
  constexpr int kSolvesPerThread = 16;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int s = 0; s < kSolvesPerThread; ++s) {
        const std::vector<double> rhs =
            seeded_rhs(pattern.cols(),
                       static_cast<std::uint64_t>(t * 1000 + s + 1));
        const std::vector<double> x = solver.solve(rhs);
        if (relative_residual(matrix, x, rhs) > 1e-12) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  const SolverStats stats = solver.stats();
  EXPECT_EQ(stats.rhs_solved, kThreads * kSolvesPerThread);
  EXPECT_GE(stats.solve_seconds, 0.0);
}

TEST(Solver, MultiRhsCountsPerColumn) {
  const SparsePattern pattern = symmetrize(gen::grid2d(6, 6));
  Solver solver;
  solver.analyze(pattern).plan().factorize(make_spd_matrix(pattern, 9));
  const std::vector<std::vector<double>> rhs = {
      seeded_rhs(pattern.cols(), 1),
      seeded_rhs(pattern.cols(), 2),
      seeded_rhs(pattern.cols(), 3),
  };
  solver.solve(rhs);
  EXPECT_EQ(solver.stats().rhs_solved, 3);  // one per column, not per call
  solver.solve(rhs[0]);
  EXPECT_EQ(solver.stats().rhs_solved, 4);
}

TEST(SolverPool, MatchesLoneSolverAndAggregatesExactly) {
  const TrafficOptions traffic{.patterns = 3,
                               .requests = 24,
                               .grid_base = 6,
                               .max_rhs = 3,
                               .seed = 99};
  const ServiceTrace trace = build_service_trace(traffic);

  SolverPoolOptions options;
  options.workers = 4;
  SolverPool pool(options);

  std::vector<std::future<SolveOutcome>> futures;
  futures.reserve(trace.requests.size());
  for (const ServiceRequest& request : trace.requests) {
    futures.push_back(pool.submit(materialize_request(trace, request)));
  }

  long long columns = 0;
  for (std::size_t r = 0; r < trace.requests.size(); ++r) {
    SolveOutcome outcome = futures[r].get();
    const SolveRequest reference =
        materialize_request(trace, trace.requests[r]);
    ASSERT_EQ(outcome.solutions.size(), reference.rhs.size());
    columns += static_cast<long long>(outcome.solutions.size());

    // The pool's answer is the lone facade's answer, bit for bit.
    Solver lone;
    lone.analyze(reference.matrix.pattern()).plan().factorize(
        reference.matrix);
    for (std::size_t c = 0; c < reference.rhs.size(); ++c) {
      EXPECT_EQ(outcome.solutions[c], lone.solve(reference.rhs[c]))
          << "request " << r << " column " << c;
    }
  }

  const std::vector<SolverStats> per_solver = pool.solver_stats();
  const SolverStats aggregated = pool.aggregated_stats();
  const SolverStats expected = aggregate_solver_stats(per_solver);
  EXPECT_EQ(aggregated.rhs_solved, expected.rhs_solved);
  EXPECT_EQ(aggregated.factorizations, expected.factorizations);
  EXPECT_EQ(aggregated.flops, expected.flops);
  EXPECT_DOUBLE_EQ(aggregated.solve_seconds, expected.solve_seconds);

  // Nothing lost: the workers together served every request and column.
  EXPECT_EQ(aggregated.rhs_solved, columns);
  EXPECT_EQ(aggregated.factorizations,
            static_cast<int>(trace.requests.size()));

  // Reuse-heavy trace through one cache: misses == distinct patterns.
  const SymbolicCache::Stats cache = pool.cache_stats();
  EXPECT_EQ(cache.misses, traffic.patterns);
  EXPECT_EQ(cache.hits,
            static_cast<long long>(trace.requests.size()) - traffic.patterns);
}

TEST(SolverPool, ColdModeMatchesCachedResults) {
  const TrafficOptions traffic{
      .patterns = 2, .requests = 8, .grid_base = 6, .max_rhs = 2, .seed = 7};
  const ServiceTrace trace = build_service_trace(traffic);

  SolverPoolOptions cached_options;
  cached_options.workers = 2;
  SolverPoolOptions cold_options;
  cold_options.workers = 2;
  cold_options.use_cache = false;
  SolverPool cached(cached_options);
  SolverPool cold(cold_options);

  for (const ServiceRequest& request : trace.requests) {
    SolveOutcome a = cached.solve(materialize_request(trace, request));
    SolveOutcome b = cold.solve(materialize_request(trace, request));
    ASSERT_EQ(a.solutions.size(), b.solutions.size());
    for (std::size_t c = 0; c < a.solutions.size(); ++c) {
      EXPECT_EQ(a.solutions[c], b.solutions[c]);
    }
  }
  EXPECT_EQ(cold.cache_stats().hits + cold.cache_stats().misses, 0);
}

TEST(SolverPool, BudgetGateStillCompletesEveryRequest) {
  const SparsePattern pattern = symmetrize(gen::grid2d(8, 8));
  // Probe the plan's modeled peak, then give the pool barely one job's
  // worth: jobs must serialize through the gate yet all finish.
  Solver probe;
  probe.analyze(pattern).plan();
  const Weight peak = probe.stats().planned_peak_entries;

  SolverPoolOptions options;
  options.workers = 4;
  options.memory_budget = peak + peak / 2;  // < 2 concurrent jobs
  SolverPool pool(options);

  std::vector<std::future<SolveOutcome>> futures;
  for (int r = 0; r < 12; ++r) {
    SolveRequest request;
    request.matrix = make_spd_matrix(pattern, static_cast<std::uint64_t>(r));
    request.rhs = {seeded_rhs(pattern.cols(), static_cast<std::uint64_t>(r))};
    futures.push_back(pool.submit(std::move(request)));
  }
  for (std::future<SolveOutcome>& future : futures) {
    EXPECT_EQ(future.get().solutions.size(), 1u);
  }
  EXPECT_EQ(pool.aggregated_stats().factorizations, 12);
}

TEST(SolverPool, JobErrorsPropagateWithoutKillingWorkers) {
  const SparsePattern pattern = symmetrize(gen::grid2d(6, 6));
  SolverPoolOptions options;
  options.workers = 2;
  SolverPool pool(options);

  // An indefinite matrix (negated SPD) must fail factorization inside the
  // worker and surface here through the future.
  SymmetricMatrix spd = make_spd_matrix(pattern, 4);
  std::vector<double> negated = spd.values();
  for (double& v : negated) {
    v = -v;
  }
  SolveRequest bad;
  bad.matrix = SymmetricMatrix(pattern, std::move(negated));
  bad.rhs = {seeded_rhs(pattern.cols(), 1)};
  EXPECT_THROW(pool.solve(std::move(bad)), Error);

  // The pool still serves good requests afterwards.
  SolveRequest good;
  good.matrix = spd;
  good.rhs = {seeded_rhs(pattern.cols(), 2)};
  EXPECT_EQ(pool.solve(std::move(good)).solutions.size(), 1u);
}

TEST(SolverPool, ConcurrentSubmittersShareOnePool) {
  // Multiple tenant threads hammering submit() while workers serve — the
  // TSan job runs this binary, so any race in the queue, cache, counters
  // or stats snapshots fails CI.
  const TrafficOptions traffic{.patterns = 2,
                               .requests = 32,
                               .grid_base = 6,
                               .max_rhs = 2,
                               .seed = 31};
  const ServiceTrace trace = build_service_trace(traffic);

  SolverPoolOptions options;
  options.workers = 3;
  SolverPool pool(options);

  constexpr int kTenants = 4;
  std::atomic<long long> columns{0};
  std::vector<std::thread> tenants;
  tenants.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    tenants.emplace_back([&, t] {
      for (std::size_t r = static_cast<std::size_t>(t);
           r < trace.requests.size(); r += kTenants) {
        SolveOutcome outcome =
            pool.solve(materialize_request(trace, trace.requests[r]));
        columns.fetch_add(static_cast<long long>(outcome.solutions.size()));
      }
    });
  }
  for (std::thread& tenant : tenants) {
    tenant.join();
  }
  EXPECT_EQ(columns.load(), trace.total_rhs());
  EXPECT_EQ(pool.aggregated_stats().rhs_solved,
            static_cast<int>(trace.total_rhs()));
}

}  // namespace
}  // namespace treemem
