// Service layer round two: LRU/size-capped eviction in SymbolicCache,
// symbolic persistence (warm restarts), the numeric-factor cache, and
// queue-depth-gated engine promotion in SolverPool — plus the three
// cache-stats bugfix regressions this PR pins:
//
//   * lookup() counted a retry after a FAILED build as a hit (the entry
//     existed, so hits_ incremented and hit=true came back while the
//     build actually re-ran) — hits/misses now follow whether a build
//     ran under the entry's build_mutex;
//   * clear() zeroed the entry count but kept hits_/misses_ cumulative,
//     so post-clear hit rates mixed epochs — clear() now starts a fresh
//     epoch;
//   * aggregate_solver_stats dropped planned_peak_entries and
//     planned_parallel_peak (pool reports showed planned peak 0 while
//     admission charged real plans) — both now aggregate by max.
//
// The churn suite runs under TSan in CI (this binary is in the TSan
// target list): rotating lookups above the entry cap race against
// clear() with no lost builds and entries <= cap at every observation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "perf/traffic.hpp"
#include "solver/numeric_cache.hpp"
#include "solver/solver.hpp"
#include "solver/solver_pool.hpp"
#include "solver/symbolic_cache.hpp"
#include "solver/symbolic_store.hpp"
#include "sparse/generators.hpp"
#include "support/prng.hpp"

namespace treemem {
namespace {

std::vector<double> seeded_rhs(Index n, std::uint64_t seed) {
  Prng prng(seed);
  std::vector<double> rhs(static_cast<std::size_t>(n));
  for (double& v : rhs) {
    v = prng.uniform_real(-1.0, 1.0);
  }
  return rhs;
}

void expect_bit_identical_factor(const SolverSymbolic& symbolic,
                                 const SparsePattern& pattern,
                                 std::uint64_t value_seed) {
  const SymmetricMatrix matrix = make_spd_matrix(pattern, value_seed);
  Solver warm;
  warm.adopt(symbolic);
  warm.factorize(matrix);
  Solver cold;
  cold.analyze(pattern).plan().factorize(matrix);
  ASSERT_EQ(warm.factor().values, cold.factor().values);
}

// A structurally valid CSC pattern that is NOT symmetric: analyze()
// rejects it, so every lookup of it is a build that throws.
SparsePattern asymmetric_pattern() {
  return SparsePattern(2, 2, {0, 2, 3}, {0, 1, 1});
}

// ---------------------------------------------------------------------------
// Eviction
// ---------------------------------------------------------------------------

TEST(SymbolicCacheEviction, LruEvictsAtEntryCapAndCountsIt) {
  const SparsePattern a = symmetrize(gen::grid2d(5, 5));
  const SparsePattern b = symmetrize(gen::grid2d(6, 6));
  const SparsePattern c = symmetrize(gen::grid2d(7, 7));

  SymbolicCacheOptions options;
  options.max_entries = 2;
  SymbolicCache cache(options);

  cache.lookup(a);
  cache.lookup(b);
  EXPECT_EQ(cache.stats().entries, 2u);
  cache.lookup(a);  // touch: b is now the LRU
  cache.lookup(c);  // evicts b
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_TRUE(cache.lookup(a).hit);   // survived (recently used)
  EXPECT_FALSE(cache.lookup(b).hit);  // evicted: rebuilt on this miss
}

TEST(SymbolicCacheEviction, MaxBytesCapBoundsResidentBytes) {
  const SparsePattern a = symmetrize(gen::grid2d(6, 6));
  const SparsePattern b = symmetrize(gen::grid2d(8, 8));
  SymbolicCache probe;
  const std::size_t a_bytes = approx_symbolic_bytes(probe.lookup(a).symbolic);
  const std::size_t b_bytes = approx_symbolic_bytes(probe.lookup(b).symbolic);
  ASSERT_GT(a_bytes, 0u);

  SymbolicCacheOptions options;
  options.max_bytes = a_bytes + b_bytes / 2;  // room for one, not both
  SymbolicCache cache(options);
  cache.lookup(a);
  cache.lookup(b);
  const SymbolicCache::Stats stats = cache.stats();
  EXPECT_LE(stats.resident_bytes, options.max_bytes);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GE(stats.evictions, 1);
}

TEST(SymbolicCacheEviction, InFlightStateSurvivesEviction) {
  const SparsePattern a = symmetrize(gen::grid2d(6, 6));
  const SparsePattern b = symmetrize(gen::grid2d(7, 7));

  SymbolicCacheOptions options;
  options.max_entries = 1;
  SymbolicCache cache(options);

  const SolverSymbolic held = cache.lookup(a).symbolic;
  cache.lookup(b);  // evicts a's entry while we still hold its state
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().evictions, 1);
  ASSERT_TRUE(static_cast<bool>(held));
  expect_bit_identical_factor(held, a, 21);  // shared_ptr kept it alive
}

// ---------------------------------------------------------------------------
// Satellite bugfix regressions
// ---------------------------------------------------------------------------

TEST(SymbolicCacheStats, FailedBuildCountsMissNeverHit) {
  SymbolicCache cache;
  const SparsePattern bad = asymmetric_pattern();

  // First attempt: the build throws; the lookup is a miss.
  EXPECT_THROW(cache.lookup(bad), Error);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 0);

  // Retry: the entry exists but holds no built state — the build re-runs
  // (and throws again), so this is a miss too. The pre-fix code counted
  // it as a hit and returned hit=true while rebuilding.
  EXPECT_THROW(cache.lookup(bad), Error);
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.stats().hits, 0);

  // A valid pattern behaves normally next to the poisoned entry: one
  // miss to build, hits ever after.
  const SparsePattern good = symmetrize(gen::grid2d(5, 5));
  EXPECT_FALSE(cache.lookup(good).hit);
  EXPECT_TRUE(cache.lookup(good).hit);
  EXPECT_EQ(cache.stats().misses, 3);
  EXPECT_EQ(cache.stats().hits, 1);
}

TEST(SymbolicCacheStats, ClearResetsCountersWithEntries) {
  const SparsePattern a = symmetrize(gen::grid2d(5, 5));
  SymbolicCache cache;
  cache.lookup(a);
  cache.lookup(a);
  ASSERT_EQ(cache.stats().hits, 1);
  ASSERT_EQ(cache.stats().misses, 1);

  cache.clear();
  const SymbolicCache::Stats cleared = cache.stats();
  EXPECT_EQ(cleared.entries, 0u);
  EXPECT_EQ(cleared.resident_bytes, 0u);
  // The fresh epoch: pre-clear hits/misses no longer pollute post-clear
  // hit-rate computations (the pre-fix counters were cumulative).
  EXPECT_EQ(cleared.hits, 0);
  EXPECT_EQ(cleared.misses, 0);
  EXPECT_EQ(cleared.evictions, 0);

  EXPECT_FALSE(cache.lookup(a).hit);  // cold again after clear
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST(SolverPoolStats, AggregateCarriesPlannedPeaks) {
  SolverStats a;
  a.planned_peak_entries = 120;
  a.planned_parallel_peak = 90;
  a.modeled_peak_entries = 100;
  SolverStats b;
  b.planned_peak_entries = 200;
  b.planned_parallel_peak = 40;
  b.modeled_peak_entries = 80;

  const SolverStats total = aggregate_solver_stats({a, b});
  // Pre-fix: both planned peaks silently aggregated to 0.
  EXPECT_EQ(total.planned_peak_entries, 200);
  EXPECT_EQ(total.planned_parallel_peak, 90);
  EXPECT_EQ(total.modeled_peak_entries, 100);
}

TEST(SolverPoolStats, PoolAggregateReportsRealPlannedPeak) {
  const SparsePattern pattern = symmetrize(gen::grid2d(7, 7));
  SolverPoolOptions options;
  options.workers = 2;
  SolverPool pool(options);
  SolveRequest request;
  request.matrix = make_spd_matrix(pattern, 3);
  request.rhs = {seeded_rhs(pattern.cols(), 3)};
  pool.solve(std::move(request));

  Solver probe;
  probe.analyze(pattern).plan();
  EXPECT_EQ(pool.aggregated_stats().planned_peak_entries,
            probe.stats().planned_peak_entries);
  EXPECT_GT(pool.aggregated_stats().planned_peak_entries, 0);
}

// ---------------------------------------------------------------------------
// Concurrent churn: rotation above the cap racing clear()
// ---------------------------------------------------------------------------

TEST(SymbolicCacheChurn, RotationAboveCapWithClearLosesNothing) {
  std::vector<SparsePattern> patterns;
  for (int base = 4; base < 9; ++base) {  // 5 patterns > max_entries
    patterns.push_back(symmetrize(gen::grid2d(base, base)));
  }
  SymbolicCacheOptions options;
  options.max_entries = 2;
  SymbolicCache cache(options);

  constexpr int kThreads = 4;
  constexpr int kRounds = 20;
  std::atomic<bool> stop{false};
  std::atomic<int> cap_violations{0};
  std::atomic<int> empty_results{0};

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const std::size_t p = static_cast<std::size_t>(t + round) %
                              patterns.size();
        const SolverSymbolic symbolic = cache.lookup(patterns[p]).symbolic;
        if (!symbolic) {
          empty_results.fetch_add(1);  // a lost build
        }
        if (cache.stats().entries > options.max_entries) {
          cap_violations.fetch_add(1);  // cap must hold at ALL times
        }
      }
    });
  }
  std::thread clearer([&] {
    while (!stop.load()) {
      cache.clear();
      std::this_thread::yield();
    }
  });
  for (std::thread& worker : workers) {
    worker.join();
  }
  stop.store(true);
  clearer.join();

  EXPECT_EQ(empty_results.load(), 0);
  EXPECT_EQ(cap_violations.load(), 0);
  EXPECT_LE(cache.stats().entries, options.max_entries);

  // Factors from churned state are bit-identical to cold runs.
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    expect_bit_identical_factor(cache.lookup(patterns[p]).symbolic,
                                patterns[p],
                                static_cast<std::uint64_t>(p) + 1);
  }
}

// ---------------------------------------------------------------------------
// Persistence: warm restarts
// ---------------------------------------------------------------------------

class SymbolicStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("treemem_store_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(SymbolicStoreTest, FileRoundTripPreservesStateBitExactly) {
  const SparsePattern pattern = symmetrize(gen::grid2d(8, 8));
  SymbolicCache cache;
  const SolverSymbolic original = cache.lookup(pattern).symbolic;

  std::filesystem::create_directories(dir_);
  const std::string path = (dir_ / "state.tmsym").string();
  write_symbolic_file(original, path);
  const SolverSymbolic loaded = read_symbolic_file(path);

  ASSERT_TRUE(static_cast<bool>(loaded));
  EXPECT_EQ(loaded.analysis->perm, original.analysis->perm);
  EXPECT_EQ(loaded.analysis->permuted_value_map,
            original.analysis->permuted_value_map);
  EXPECT_EQ(loaded.analysis->factor_nnz, original.analysis->factor_nnz);
  EXPECT_EQ(loaded.plan->bottom_up_order, original.plan->bottom_up_order);
  EXPECT_EQ(loaded.plan->strategy, original.plan->strategy);
  EXPECT_EQ(loaded.plan->planned_peak_entries,
            original.plan->planned_peak_entries);
  expect_bit_identical_factor(loaded, pattern, 77);
}

TEST_F(SymbolicStoreTest, WarmRestartHasZeroMisses) {
  const std::vector<SparsePattern> patterns = {
      symmetrize(gen::grid2d(5, 5)),
      symmetrize(gen::grid2d(6, 6)),
      symmetrize(gen::grid2d(7, 7)),
  };
  SymbolicCache first;
  for (const SparsePattern& pattern : patterns) {
    first.lookup(pattern);
  }
  const SymbolicStoreReport saved =
      save_symbolic_state(first, dir_.string());
  EXPECT_EQ(saved.saved, patterns.size());

  // A "restarted process": a brand-new cache, warmed from the state dir.
  SymbolicCache second;
  const SymbolicStoreReport loaded =
      load_symbolic_state(second, dir_.string());
  EXPECT_EQ(loaded.saved, patterns.size());
  EXPECT_EQ(loaded.skipped_options, 0u);
  EXPECT_EQ(loaded.skipped_invalid, 0u);

  for (const SparsePattern& pattern : patterns) {
    EXPECT_TRUE(second.lookup(pattern).hit);
  }
  EXPECT_EQ(second.stats().misses, 0);  // the warm-restart contract
  expect_bit_identical_factor(second.lookup(patterns[0]).symbolic,
                              patterns[0], 5);
}

TEST_F(SymbolicStoreTest, LoadSkipsOptionMismatchesAndCorruptFiles) {
  const SparsePattern pattern = symmetrize(gen::grid2d(6, 6));
  SymbolicCache first;
  first.lookup(pattern);
  save_symbolic_state(first, dir_.string());

  // A corrupt leftover must degrade to a cold build, not fail the load.
  {
    std::ofstream junk(dir_ / "pattern-deadbeef.tmsym", std::ios::binary);
    junk << "not a symbolic state file";
  }

  SymbolicCacheOptions other;
  other.analyze.relax = 16;  // different amalgamation => different state
  SymbolicCache second(other);
  const SymbolicStoreReport report =
      load_symbolic_state(second, dir_.string());
  EXPECT_EQ(report.saved, 0u);
  EXPECT_EQ(report.skipped_options, 1u);
  EXPECT_EQ(report.skipped_invalid, 1u);
  EXPECT_EQ(second.stats().entries, 0u);

  // Matching options load both real files fine despite the junk.
  SymbolicCache third;
  const SymbolicStoreReport ok = load_symbolic_state(third, dir_.string());
  EXPECT_EQ(ok.saved, 1u);
  EXPECT_EQ(ok.skipped_invalid, 1u);
  EXPECT_TRUE(third.lookup(pattern).hit);
}

TEST_F(SymbolicStoreTest, MissingDirectoryIsAColdStart) {
  SymbolicCache cache;
  const SymbolicStoreReport report =
      load_symbolic_state(cache, (dir_ / "never_created").string());
  EXPECT_EQ(report.saved, 0u);
  EXPECT_EQ(report.skipped_invalid, 0u);
}

// ---------------------------------------------------------------------------
// Numeric-factor cache
// ---------------------------------------------------------------------------

TEST(NumericCache, ValueFingerprintIsBitwise) {
  const std::vector<double> plus_zero = {0.0, 1.0};
  const std::vector<double> minus_zero = {-0.0, 1.0};
  EXPECT_NE(value_fingerprint(plus_zero), value_fingerprint(minus_zero));
  EXPECT_EQ(value_fingerprint(plus_zero), value_fingerprint(plus_zero));
}

TEST(NumericCache, LookupVerifiesValuesAndLruEvicts) {
  const SparsePattern pattern = symmetrize(gen::grid2d(5, 5));
  const auto factor_of = [&](std::uint64_t seed) {
    Solver solver;
    solver.analyze(pattern).plan().factorize(make_spd_matrix(pattern, seed));
    return solver.shared_factor();
  };
  const std::uint64_t pkey = pattern_fingerprint(pattern);
  const std::vector<double> v1 = make_spd_matrix(pattern, 1).values();
  const std::vector<double> v2 = make_spd_matrix(pattern, 2).values();
  const std::vector<double> v3 = make_spd_matrix(pattern, 3).values();

  NumericCache cache(NumericCacheOptions{2});
  EXPECT_TRUE(cache.insert(pkey, v1, factor_of(1), 10));
  EXPECT_TRUE(cache.insert(pkey, v2, factor_of(2), 10));
  EXPECT_FALSE(cache.insert(pkey, v2, factor_of(2), 10));  // duplicate
  EXPECT_NE(cache.lookup(pkey, v1), nullptr);
  EXPECT_EQ(cache.lookup(pkey, v3), nullptr);  // values unseen
  EXPECT_TRUE(cache.insert(pkey, v3, factor_of(3), 10));  // evicts LRU (v2)
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.take_freed_charge(), 10);
  EXPECT_EQ(cache.lookup(pkey, v2), nullptr);
  EXPECT_NE(cache.lookup(pkey, v1), nullptr);
  EXPECT_NE(cache.lookup(pkey, v3), nullptr);
}

TEST(NumericCache, DisabledCacheNeverStores) {
  const SparsePattern pattern = symmetrize(gen::grid2d(4, 4));
  Solver solver;
  solver.analyze(pattern).plan().factorize(make_spd_matrix(pattern, 1));
  NumericCache cache;  // max_entries = 0: disabled
  EXPECT_FALSE(cache.insert(pattern_fingerprint(pattern),
                            make_spd_matrix(pattern, 1).values(),
                            solver.shared_factor(), 5));
  EXPECT_EQ(cache.lookup(pattern_fingerprint(pattern),
                         make_spd_matrix(pattern, 1).values()),
            nullptr);
}

TEST(Solver, AdoptFactorSolvesWithoutFactorize) {
  const SparsePattern pattern = symmetrize(gen::grid2d(7, 7));
  const SymmetricMatrix matrix = make_spd_matrix(pattern, 9);
  SymbolicCache cache;

  Solver producer;
  producer.adopt(cache.lookup(pattern).symbolic);
  producer.factorize(matrix);

  Solver consumer;
  consumer.adopt(cache.lookup(pattern).symbolic);
  EXPECT_THROW(consumer.adopt_factor(nullptr), Error);
  consumer.adopt_factor(producer.shared_factor());
  EXPECT_TRUE(consumer.factorized());
  EXPECT_EQ(consumer.stats().engine, "cached");
  EXPECT_EQ(consumer.stats().factorizations, 0);  // nothing computed here

  const std::vector<double> rhs = seeded_rhs(pattern.cols(), 4);
  EXPECT_EQ(consumer.solve(rhs), producer.solve(rhs));
}

TEST(SolverPool, RepeatedValuesHitFactorCacheBitExactly) {
  const SparsePattern pattern = symmetrize(gen::grid2d(8, 8));
  SolverPoolOptions options;
  options.workers = 2;
  options.factor_cache_entries = 4;
  SolverPool pool(options);

  const auto request_of = [&](std::uint64_t value_seed) {
    SolveRequest request;
    request.matrix = make_spd_matrix(pattern, value_seed);
    request.rhs = {seeded_rhs(pattern.cols(), value_seed + 100)};
    return request;
  };

  const SolveOutcome cold = pool.solve(request_of(1));
  EXPECT_FALSE(cold.factor_hit);
  const SolveOutcome warm = pool.solve(request_of(1));
  EXPECT_TRUE(warm.factor_hit);
  EXPECT_EQ(warm.solutions, cold.solutions);  // bit-exact fast path
  // Different values on the same pattern do NOT hit.
  EXPECT_FALSE(pool.solve(request_of(2)).factor_hit);

  // Only the two distinct value sets were ever factorized.
  EXPECT_EQ(pool.aggregated_stats().factorizations, 2);
  EXPECT_EQ(pool.factor_cache_stats().hits, 1);
  EXPECT_EQ(pool.factor_cache_stats().entries, 2u);
}

TEST(SolverPool, FactorCacheRespectsMemoryBudget) {
  const SparsePattern pattern = symmetrize(gen::grid2d(8, 8));
  Solver probe;
  probe.analyze(pattern).plan();
  const Weight peak = probe.stats().planned_peak_entries;

  SolverPoolOptions options;
  options.workers = 2;
  options.factor_cache_entries = 16;
  options.memory_budget = peak + peak / 2;  // tight: residency competes
  SolverPool pool(options);

  // Many distinct value sets: every job must still complete even though
  // cached factors occupy (and get evicted from) the same budget.
  std::vector<std::future<SolveOutcome>> futures;
  for (int r = 0; r < 10; ++r) {
    SolveRequest request;
    request.matrix = make_spd_matrix(pattern, static_cast<std::uint64_t>(r));
    request.rhs = {seeded_rhs(pattern.cols(), static_cast<std::uint64_t>(r))};
    futures.push_back(pool.submit(std::move(request)));
  }
  for (std::future<SolveOutcome>& future : futures) {
    EXPECT_EQ(future.get().solutions.size(), 1u);
  }
  EXPECT_EQ(pool.aggregated_stats().factorizations, 10);
}

// ---------------------------------------------------------------------------
// Queue-depth-gated engine promotion
// ---------------------------------------------------------------------------

TEST(SolverPool, LoneJobPromotesToParallelEngine) {
  const SparsePattern pattern = symmetrize(gen::grid2d(16, 16));
  const SymmetricMatrix matrix = make_spd_matrix(pattern, 13);

  SolverPoolOptions options;
  options.workers = 4;
  options.promote_lone_jobs = true;
  SolverPool pool(options);

  SolveRequest request;
  request.matrix = matrix;
  request.rhs = {seeded_rhs(pattern.cols(), 13)};
  const SolveOutcome outcome = pool.solve(std::move(request));

  // The lone job borrowed the idle workers: its factorize ran parallel.
  bool saw_parallel = false;
  for (const SolverStats& stats : pool.solver_stats()) {
    if (stats.factorizations == 1) {
      EXPECT_EQ(stats.engine, "parallel");
      EXPECT_EQ(stats.workers, 4);
      saw_parallel = true;
    }
  }
  EXPECT_TRUE(saw_parallel);

  // Promotion never changes the numbers: bit-exact vs the lone facade.
  Solver lone;
  lone.analyze(pattern).plan().factorize(matrix);
  EXPECT_EQ(outcome.solutions[0], lone.solve(seeded_rhs(pattern.cols(), 13)));
}

TEST(SolverPool, PromotionStaysOffByDefault) {
  const SparsePattern pattern = symmetrize(gen::grid2d(10, 10));
  SolverPoolOptions options;
  options.workers = 4;
  SolverPool pool(options);
  SolveRequest request;
  request.matrix = make_spd_matrix(pattern, 1);
  request.rhs = {seeded_rhs(pattern.cols(), 1)};
  pool.solve(std::move(request));
  for (const SolverStats& stats : pool.solver_stats()) {
    if (stats.factorizations == 1) {
      EXPECT_EQ(stats.engine, "serial");
    }
  }
}

}  // namespace
}  // namespace treemem
