// The facade suite (solver/solver.hpp): the analyze → plan → factorize →
// solve state machine, symbolic-state reuse across repeated numeric
// factorizations, and the one-env-layer configuration path.
//
// Pinned properties:
//   * reuse is exact: a Solver analyzed once and factorized with a second
//     value set produces a factor bit-identical to a fresh end-to-end run
//     on that value set, across a 24-instance corpus (3 seeds × 4 pattern
//     families × 2 orderings) at w ∈ {1, 4} — the analyze/factorize
//     amortization production solvers rely on;
//   * SolverStats memory ledger: measured ≤ modeled ≤ budget on every
//     parallel run, and the facade's factor equals the hand-stitched
//     pipeline (order/ → symbolic/ → multifrontal/) bit for bit;
//   * wrong-phase-order calls throw clean errors naming the missing phase;
//   * multi-RHS solve equals per-column solve_with_factor on the permuted
//     system exactly, and solutions satisfy A x ≈ b in the original
//     ordering;
//   * out-of-core plans (budget below the in-core optimum) execute through
//     the facade and still reproduce the in-core factor bit for bit;
//   * solver_options_from_env applies TREEMEM_ORDERING / TREEMEM_TRAVERSAL
//     / TREEMEM_BUDGET / TREEMEM_WORKERS / TREEMEM_KERNEL strictly.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/postorder.hpp"
#include "multifrontal/numeric.hpp"
#include "solver/solver.hpp"
#include "sparse/generators.hpp"
#include "support/prng.hpp"
#include "symbolic/assembly_tree.hpp"
#include "order/ordering.hpp"

namespace treemem {
namespace {

/// Pattern families chosen for their assembly-tree shapes (same recipe as
/// the numeric_parallel suite): narrow banded → chain-like, arrowhead →
/// star-like, random → irregular, grid → realistic FEM-ish.
std::vector<SparsePattern> pattern_family(std::uint64_t seed) {
  Prng prng(seed * 9176);
  return {
      symmetrize(gen::banded(60, 2, 1.0, prng)),
      symmetrize(gen::arrowhead(48, 6)),
      symmetrize(gen::random_symmetric(64, 3.0, prng)),
      symmetrize(gen::grid2d(8, 8)),
  };
}

AnalyzeOptions analyze_options(OrderingChoice ordering, Index relax) {
  AnalyzeOptions options;
  options.ordering = ordering;
  options.relax = relax;
  return options;
}

FactorizeOptions workers_options(int workers) {
  FactorizeOptions options;
  options.workers = workers;
  return options;
}

// ---------------------------------------------------------------------------
// Reuse: analyze once, factorize many — bit-identical to fresh runs
// ---------------------------------------------------------------------------

class SolverReuseSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverReuseSweep, SecondFactorizationMatchesFreshRunBitForBit) {
  // 3 seeds × 4 patterns × 2 orderings = 24 instances ≥ the 20 the
  // acceptance criteria demand, each exercised at w ∈ {1, 4}.
  const std::uint64_t seed = GetParam();
  const Index relax_by_seed[] = {0, 1, 4};
  const Index relax = relax_by_seed[seed % 3];
  for (const SparsePattern& pattern : pattern_family(seed)) {
    const SymmetricMatrix first_values = make_spd_matrix(pattern, seed);
    const SymmetricMatrix second_values =
        make_spd_matrix(pattern, seed + 1000);
    for (const OrderingChoice ordering :
         {OrderingChoice::kMinDegree, OrderingChoice::kNestedDissection}) {
      SCOPED_TRACE(std::string(to_string(ordering)) + " seed " +
                   std::to_string(seed));
      for (const int workers : {1, 4}) {
        Solver reused;
        reused.analyze(pattern, analyze_options(ordering, relax)).plan();
        reused.factorize(first_values, workers_options(workers));
        const std::vector<double> first_factor = reused.factor().values;
        ASSERT_EQ(reused.stats().factorizations, 1);

        // Second value set on the cached symbolic state...
        reused.factorize(second_values, workers_options(workers));
        const std::vector<double> second_factor = reused.factor().values;
        ASSERT_EQ(reused.stats().factorizations, 2);

        // ...must equal a fresh end-to-end run bit for bit.
        Solver fresh;
        fresh.analyze(pattern, analyze_options(ordering, relax)).plan();
        fresh.factorize(second_values, workers_options(workers));
        EXPECT_EQ(second_factor, fresh.factor().values) << "w=" << workers;

        // And going back to the first value set reproduces the first run.
        reused.factorize(first_values, workers_options(workers));
        EXPECT_EQ(reused.factor().values, first_factor) << "w=" << workers;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverReuseSweep,
                         ::testing::Range<std::uint64_t>(1, 4));

// ---------------------------------------------------------------------------
// Memory ledger + parity with the hand-stitched pipeline
// ---------------------------------------------------------------------------

TEST(SolverStatsLedger, MeasuredWithinModeledWithinBudgetOnParallelRuns) {
  for (const std::uint64_t seed : {2ULL, 9ULL}) {
    for (const SparsePattern& pattern : pattern_family(seed)) {
      const SymmetricMatrix matrix = make_spd_matrix(pattern, seed);
      Solver solver;
      solver.analyze(pattern,
                     analyze_options(OrderingChoice::kMinDegree, 1));
      // A budget no reachable occupancy can exceed (all files resident
      // plus a full transient per worker): admission never blocks.
      const Tree& tree = solver.assembly().tree;
      Weight all_files = 0;
      for (NodeId i = 0; i < tree.size(); ++i) {
        all_files += tree.file_size(i);
      }
      PlanOptions plan;
      plan.memory_budget = all_files + 4 * tree.max_mem_req();
      solver.plan(plan);

      FactorizeOptions factorize = workers_options(4);
      factorize.engine = FactorizeEngine::kParallel;
      solver.factorize(matrix, factorize);
      const SolverStats& stats = solver.stats();
      EXPECT_EQ(stats.engine, "parallel");
      EXPECT_FALSE(stats.stall_fallback);
      EXPECT_LE(stats.measured_peak_entries, stats.modeled_peak_entries);
      EXPECT_LE(stats.modeled_peak_entries, stats.memory_budget);
      EXPECT_GT(stats.flops, 0);
    }
  }
}

TEST(SolverParity, FacadeEqualsHandStitchedPipelineBitForBit) {
  const SparsePattern pattern = symmetrize(gen::grid2d(9, 9));
  const SymmetricMatrix matrix = make_spd_matrix(pattern, 77);

  // The old five-module stitching the facade replaced.
  const std::vector<Index> perm = min_degree_order(pattern);
  const SymmetricMatrix permuted = matrix.permuted(perm);
  AssemblyTreeOptions tree_options;
  tree_options.relax = 2;
  const AssemblyTree assembly =
      build_assembly_tree(permuted.pattern(), tree_options);
  const MultifrontalResult stitched = multifrontal_cholesky(
      permuted, assembly, reverse_traversal(best_postorder(assembly.tree).order),
      KernelConfig{});

  Solver solver;
  PlanOptions plan;
  plan.policy = TraversalPolicy::kPostorder;
  solver.analyze(pattern, analyze_options(OrderingChoice::kMinDegree, 2))
      .plan(plan)
      .factorize(matrix, workers_options(1));
  EXPECT_EQ(solver.factor().values, stitched.factor.values);
  EXPECT_EQ(solver.stats().flops, stitched.flops);
  EXPECT_EQ(solver.stats().measured_peak_entries, stitched.peak_live_entries);
  EXPECT_EQ(solver.permutation(), perm);
}

TEST(SolverParity, FactorIsTraversalIndependent) {
  // The engine's factor is schedule-exact, so re-planning with a different
  // traversal must not change a bit — only the memory profile moves.
  const SparsePattern pattern = symmetrize(gen::grid2d(8, 8));
  const SymmetricMatrix matrix = make_spd_matrix(pattern, 5);
  Solver solver;
  solver.analyze(pattern, analyze_options(OrderingChoice::kMinDegree, 0));

  std::vector<double> reference;
  for (const TraversalPolicy policy :
       {TraversalPolicy::kPostorder, TraversalPolicy::kLiu,
        TraversalPolicy::kMinMem}) {
    PlanOptions plan;
    plan.policy = policy;
    solver.plan(plan).factorize(matrix, workers_options(1));
    EXPECT_LE(solver.stats().measured_peak_entries,
              solver.stats().planned_peak_entries)
        << to_string(policy);
    if (reference.empty()) {
      reference = solver.factor().values;
    } else {
      EXPECT_EQ(solver.factor().values, reference) << to_string(policy);
    }
  }
  // MinMem can only improve on the best postorder (paper's Theorem 1 gap).
  EXPECT_LE(solver.stats().in_core_optimum, solver.stats().best_postorder_peak);
}

// ---------------------------------------------------------------------------
// State machine: wrong-phase calls throw clean errors
// ---------------------------------------------------------------------------

TEST(SolverStateMachine, WrongPhaseOrderThrowsCleanErrors) {
  const SparsePattern pattern = symmetrize(gen::grid2d(5, 5));
  const SymmetricMatrix matrix = make_spd_matrix(pattern, 1);

  Solver solver;
  EXPECT_THROW(solver.plan(), Error);
  EXPECT_THROW(solver.factorize(matrix), Error);
  EXPECT_THROW(solver.solve(std::vector<double>(25, 1.0)), Error);
  EXPECT_THROW(solver.permutation(), Error);
  EXPECT_THROW(solver.assembly(), Error);
  EXPECT_THROW(solver.planned_traversal(), Error);
  EXPECT_THROW(solver.factor(), Error);

  solver.analyze(pattern);
  EXPECT_THROW(solver.factorize(matrix), Error);  // plan() missing
  EXPECT_THROW(solver.solve(std::vector<double>(25, 1.0)), Error);

  solver.plan();
  EXPECT_THROW(solver.solve(std::vector<double>(25, 1.0)), Error);
  solver.factorize(matrix);
  EXPECT_EQ(solver.solve(std::vector<double>(25, 1.0)).size(), 25u);

  // The error message names the missing phase.
  Solver fresh;
  try {
    fresh.plan();
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("analyze()"), std::string::npos);
  }

  // Re-analyzing invalidates the plan and the factor.
  solver.analyze(pattern);
  EXPECT_TRUE(solver.analyzed());
  EXPECT_FALSE(solver.planned());
  EXPECT_THROW(solver.factorize(matrix), Error);
}

TEST(SolverStateMachine, RejectsBadInputs) {
  Solver solver;
  // Unsymmetrized pattern: no diagonal, one triangle only.
  EXPECT_THROW(
      solver.analyze(SparsePattern::from_coo(3, 3, {{1, 0}, {2, 1}})), Error);
  // Non-square pattern.
  EXPECT_THROW(solver.analyze(SparsePattern::from_coo(2, 3, {{0, 0}})),
               Error);

  const SparsePattern pattern = symmetrize(gen::grid2d(5, 5));
  solver.analyze(pattern);
  PlanOptions plan;
  plan.memory_budget = 0;
  EXPECT_THROW(solver.plan(plan), Error);
  // Below max MemReq no schedule exists.
  plan.memory_budget = solver.assembly().tree.max_mem_req() - 1;
  EXPECT_THROW(solver.plan(plan), Error);

  solver.plan();
  // Mismatched matrix pattern.
  const SparsePattern other = symmetrize(gen::grid2d(6, 6));
  EXPECT_THROW(solver.factorize(make_spd_matrix(other, 3)), Error);
  // Wrong value count.
  EXPECT_THROW(solver.factorize(std::vector<double>(3, 1.0)), Error);
  // Negative workers.
  FactorizeOptions factorize;
  factorize.workers = -1;
  EXPECT_THROW(solver.factorize(make_spd_matrix(pattern, 3), factorize),
               Error);

  solver.factorize(make_spd_matrix(pattern, 3));
  // Wrong rhs size.
  EXPECT_THROW(solver.solve(std::vector<double>(7, 1.0)), Error);
}

// ---------------------------------------------------------------------------
// Solve: permutation round-trip, multi-RHS, residual
// ---------------------------------------------------------------------------

TEST(SolverSolve, MultiRhsMatchesPerColumnSolveWithFactor) {
  const SparsePattern pattern = symmetrize(gen::grid2d(7, 7));
  const SymmetricMatrix matrix = make_spd_matrix(pattern, 11);
  const std::size_t n = static_cast<std::size_t>(pattern.cols());

  Solver solver;
  solver.analyze(pattern).plan().factorize(matrix);

  Prng prng(303);
  std::vector<std::vector<double>> rhs(3, std::vector<double>(n));
  for (auto& column : rhs) {
    for (double& v : column) {
      v = 2.0 * prng.uniform_real() - 1.0;
    }
  }
  const std::vector<std::vector<double>> solutions = solver.solve(rhs);
  ASSERT_EQ(solutions.size(), rhs.size());
  EXPECT_EQ(solver.stats().rhs_solved, 3);

  const std::vector<Index>& perm = solver.permutation();
  for (std::size_t c = 0; c < rhs.size(); ++c) {
    // Per-column reference through the exported low-level entry point.
    std::vector<double> permuted_rhs(n);
    for (std::size_t k = 0; k < n; ++k) {
      permuted_rhs[k] = rhs[c][static_cast<std::size_t>(perm[k])];
    }
    const std::vector<double> y =
        solve_with_factor(solver.factor(), std::move(permuted_rhs));
    std::vector<double> expected(n);
    for (std::size_t k = 0; k < n; ++k) {
      expected[static_cast<std::size_t>(perm[k])] = y[k];
    }
    EXPECT_EQ(solutions[c], expected) << "column " << c;

    // And the solution actually solves A x = b in the original ordering.
    EXPECT_LT(relative_residual(matrix, solutions[c], rhs[c]), 1e-10)
        << "column " << c;
  }
}

// ---------------------------------------------------------------------------
// Out-of-core plans through the facade
// ---------------------------------------------------------------------------

TEST(SolverOutOfCore, TightBudgetPlansSpillsAndReproducesTheFactor) {
  // A mid-size grid under nested dissection leaves daylight between the
  // structural floor (max MemReq) and the in-core optimum — the regime
  // where a tight budget genuinely forces spills.
  const SparsePattern pattern = symmetrize(gen::grid2d(16, 16));
  const SymmetricMatrix matrix = make_spd_matrix(pattern, 23);

  Solver unconstrained;
  unconstrained
      .analyze(pattern, analyze_options(OrderingChoice::kNestedDissection, 1))
      .plan()
      .factorize(matrix, workers_options(1));
  const Weight optimum = unconstrained.stats().in_core_optimum;
  const Weight floor = unconstrained.assembly().tree.max_mem_req();
  ASSERT_LT(floor, optimum);

  Solver solver;
  solver.analyze(pattern,
                 analyze_options(OrderingChoice::kNestedDissection, 1));
  PlanOptions plan;
  plan.memory_budget = (floor + optimum) / 2;
  solver.plan(plan);
  EXPECT_NE(solver.stats().strategy.find("out-of-core"), std::string::npos);
  EXPECT_GT(solver.stats().planned_io_volume, 0);
  EXPECT_FALSE(solver.planned_io_schedule().writes.empty());

  // The parallel engine refuses an out-of-core plan explicitly...
  FactorizeOptions parallel;
  parallel.engine = FactorizeEngine::kParallel;
  EXPECT_THROW(solver.factorize(matrix, parallel), Error);

  // ...while kAuto routes to the serial spilling engine, which stays
  // within budget and reproduces the in-core factor bit for bit.
  solver.factorize(matrix, workers_options(4));
  EXPECT_EQ(solver.stats().engine, "out-of-core");
  EXPECT_LE(solver.stats().measured_peak_entries,
            solver.stats().memory_budget);
  EXPECT_EQ(solver.factor().values, unconstrained.factor().values);

  // Solves work off the spilled-plan factor like any other.
  const std::vector<double> x =
      solver.solve(std::vector<double>(static_cast<std::size_t>(pattern.cols()), 1.0));
  EXPECT_EQ(x.size(), static_cast<std::size_t>(pattern.cols()));

  // Disallowing out-of-core turns the same budget into a clean error.
  plan.allow_out_of_core = false;
  EXPECT_THROW(solver.plan(plan), Error);
}

// ---------------------------------------------------------------------------
// Environment overrides through the one strict layer
// ---------------------------------------------------------------------------

class SolverEnvGuard {
 public:
  SolverEnvGuard() {
    for (const char* name : kNames) {
      if (const char* value = std::getenv(name)) {
        saved_.emplace_back(name, value);
      }
      ::unsetenv(name);
    }
  }
  ~SolverEnvGuard() {
    for (const char* name : kNames) {
      ::unsetenv(name);
    }
    for (const auto& [name, value] : saved_) {
      ::setenv(name.c_str(), value.c_str(), 1);
    }
  }

 private:
  static constexpr const char* kNames[] = {
      "TREEMEM_ORDERING", "TREEMEM_TRAVERSAL", "TREEMEM_BUDGET",
      "TREEMEM_WORKERS", "TREEMEM_KERNEL", "TREEMEM_ADMISSION"};
  std::vector<std::pair<std::string, std::string>> saved_;
};

TEST(SolverOptionsEnv, AppliesAllKnobsStrictly) {
  SolverEnvGuard guard;
  // No overrides: compiled-in defaults pass through.
  const SolverOptions defaults = solver_options_from_env();
  EXPECT_EQ(defaults.analyze.ordering, OrderingChoice::kMinDegree);
  EXPECT_EQ(defaults.plan.policy, TraversalPolicy::kAuto);
  EXPECT_EQ(defaults.plan.memory_budget, kInfiniteWeight);
  EXPECT_EQ(defaults.factorize.workers, 0);

  ::setenv("TREEMEM_ORDERING", "nd", 1);
  ::setenv("TREEMEM_TRAVERSAL", "minmem", 1);
  ::setenv("TREEMEM_BUDGET", "123456", 1);
  ::setenv("TREEMEM_WORKERS", "8", 1);
  ::setenv("TREEMEM_KERNEL", "blocked:32", 1);
  ::setenv("TREEMEM_ADMISSION", "lookahead", 1);
  const SolverOptions options = solver_options_from_env();
  EXPECT_EQ(options.analyze.ordering, OrderingChoice::kNestedDissection);
  EXPECT_EQ(options.plan.policy, TraversalPolicy::kMinMem);
  EXPECT_EQ(options.plan.memory_budget, 123456);
  EXPECT_EQ(options.factorize.workers, 8);
  EXPECT_EQ(options.factorize.kernel.kind, KernelKind::kBlocked);
  EXPECT_EQ(options.factorize.kernel.block_size, 32u);
  EXPECT_EQ(options.plan.admission, AdmissionPolicy::kLookahead);
  EXPECT_EQ(options.factorize.admission, AdmissionPolicy::kLookahead);
  ::unsetenv("TREEMEM_ADMISSION");

  // Malformed values throw instead of silently reconfiguring the run.
  ::setenv("TREEMEM_ORDERING", "metis", 1);
  EXPECT_THROW(solver_options_from_env(), Error);
  ::unsetenv("TREEMEM_ORDERING");
  ::setenv("TREEMEM_WORKERS", "many", 1);
  EXPECT_THROW(solver_options_from_env(), Error);
  ::unsetenv("TREEMEM_WORKERS");
  ::setenv("TREEMEM_BUDGET", "-5", 1);
  EXPECT_THROW(solver_options_from_env(), Error);
  ::unsetenv("TREEMEM_BUDGET");

  // A Solver built from env-derived options uses them end to end.
  ::setenv("TREEMEM_ORDERING", "natural", 1);
  const SparsePattern pattern = symmetrize(gen::grid2d(5, 5));
  Solver solver(solver_options_from_env());
  solver.analyze(pattern);
  EXPECT_EQ(solver.stats().ordering, "natural");
  const std::vector<Index>& perm = solver.permutation();
  for (Index k = 0; k < pattern.cols(); ++k) {
    EXPECT_EQ(perm[static_cast<std::size_t>(k)], k);
  }

  // A Solver NOT built from env-derived options is insulated from the
  // environment: even a malformed TREEMEM_KERNEL cannot reach its
  // factorize path (options flow only through SolverOptions).
  ::setenv("TREEMEM_KERNEL", "bogus", 1);
  Solver insulated;
  insulated.analyze(pattern).plan();
  FactorizeOptions parallel;
  parallel.engine = FactorizeEngine::kParallel;
  parallel.workers = 2;
  insulated.factorize(make_spd_matrix(pattern, 3), parallel);
  EXPECT_EQ(insulated.stats().engine, "parallel");
  ::unsetenv("TREEMEM_KERNEL");
}

// ---------------------------------------------------------------------------
// Stats bookkeeping
// ---------------------------------------------------------------------------

TEST(SolverStatsBookkeeping, PhaseTimersAndCountersBehave) {
  const SparsePattern pattern = symmetrize(gen::grid2d(6, 6));
  const SymmetricMatrix matrix = make_spd_matrix(pattern, 7);
  Solver solver;
  solver.analyze(pattern).plan().factorize(matrix);
  const SolverStats& stats = solver.stats();
  EXPECT_EQ(stats.n, 36);
  EXPECT_EQ(stats.pattern_nnz, pattern.nnz());
  EXPECT_GE(stats.factor_nnz, pattern.nnz() / 2);  // fill only grows
  EXPECT_GT(stats.tree_nodes, 0);
  EXPECT_GE(stats.analyze_seconds, 0.0);
  EXPECT_GE(stats.plan_seconds, 0.0);
  EXPECT_GE(stats.factorize_seconds, 0.0);
  EXPECT_EQ(stats.factorizations, 1);
  EXPECT_EQ(stats.rhs_solved, 0);

  solver.solve(std::vector<double>(36, 1.0));
  EXPECT_EQ(solver.stats().rhs_solved, 1);

  // analyze() resets the cumulative counters.
  solver.analyze(pattern);
  EXPECT_EQ(solver.stats().factorizations, 0);
  EXPECT_EQ(solver.stats().rhs_solved, 0);
}

}  // namespace
}  // namespace treemem
