// Correctness suite for the dense front-kernel layer
// (dense/front_kernel.hpp) — the pluggable math under FrontalEngine.
//
// Pinned properties:
//   * the blocked kernel produces bit-identical results to the scalar
//     reference (factors, flop counts) across front sizes, pivot counts
//     and block sizes, including degenerate blocks (width 1, width > η);
//   * the parallel-tiled kernel honors its documented contract (small
//     relative residual against the reference) and — a deliberate extra
//     pin on the current non-reassociating implementation — is today also
//     bit-identical;
//   * degenerate fronts: η = 0 is a no-op, η = m is a full Cholesky, 1×1
//     fronts factor, non-positive pivots throw a clean Error from every
//     kernel;
//   * extend_add scatters a child contribution block exactly;
//   * TREEMEM_KERNEL is parsed strictly (malformed values cannot silently
//     switch kernels);
//   * the parallel-tiled kernel runs race-clean *inside* factor_parallel —
//     intra-front parallel_for nested under the executor's worker threads —
//     with the fork threshold forced to zero so TSan sees the threaded
//     path even on small fronts (this binary is in CI's TSan job).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "core/postorder.hpp"
#include "dense/front_kernel.hpp"
#include "dense/spd_front.hpp"
#include "multifrontal/numeric_parallel.hpp"
#include "perf/corpus.hpp"
#include "sparse/generators.hpp"
#include "support/prng.hpp"

namespace treemem {
namespace {

KernelConfig config_of(KernelKind kind, std::size_t block_size,
                       unsigned workers = 0) {
  KernelConfig config;
  config.kind = kind;
  config.block_size = block_size;
  config.workers = workers;
  return config;
}

long long factor_with(const KernelConfig& config, std::vector<double>& front,
                      std::size_t m, std::size_t eta) {
  return make_front_kernel(config)->partial_factor(front.data(), m, eta,
                                                   nullptr);
}

TEST(BlockedKernel, BitIdenticalToScalarAcrossSizesAndBlocks) {
  for (const std::size_t m : {1u, 2u, 5u, 16u, 33u, 64u, 96u}) {
    for (const std::size_t eta : {m, m / 2, std::size_t{1}}) {
      if (eta == 0 || eta > m) {
        continue;
      }
      const std::vector<double> original = make_dense_spd_front(m, m + eta);
      std::vector<double> reference = original;
      const long long ref_flops =
          factor_with(config_of(KernelKind::kScalar, 1), reference, m, eta);
      for (const std::size_t nb : {1u, 2u, 3u, 7u, 16u, 64u, 128u}) {
        std::vector<double> blocked = original;
        const long long flops = factor_with(
            config_of(KernelKind::kBlocked, nb), blocked, m, eta);
        // Bit-for-bit, not merely close: same per-entry update order, same
        // zero skips.
        EXPECT_EQ(blocked, reference) << "m=" << m << " eta=" << eta
                                      << " nb=" << nb;
        EXPECT_EQ(flops, ref_flops) << "m=" << m << " eta=" << eta
                                    << " nb=" << nb;
      }
    }
  }
}

TEST(ParallelTiledKernel, MeetsResidualContractAgainstScalar) {
  // The documented contract: a small relative residual against the scalar
  // reference (room for future reassociating variants).
  for (const std::size_t m : {64u, 160u}) {
    for (const std::size_t eta : {m, m / 2}) {
      const std::vector<double> original = make_dense_spd_front(m, 3 * m);
      std::vector<double> reference = original;
      factor_with(config_of(KernelKind::kScalar, 1), reference, m, eta);
      for (const unsigned workers : {1u, 4u}) {
        KernelConfig config =
            config_of(KernelKind::kParallelTiled, 8, workers);
        config.min_parallel_volume = 0;  // force the fork/join path
        std::vector<double> tiled = original;
        factor_with(config, tiled, m, eta);
        EXPECT_LE(relative_frobenius_distance(reference, tiled), 1e-12)
            << "m=" << m << " eta=" << eta << " workers=" << workers;
      }
    }
  }
}

TEST(ParallelTiledKernel, CurrentImplementationIsBitIdentical) {
  // Stronger than the contract: today's implementation tiles disjoint
  // columns without reassociating, so it matches the reference exactly.
  // If a future kernel variant trades this away, relax THIS test, not the
  // residual contract above.
  const std::size_t m = 128;
  const std::vector<double> original = make_dense_spd_front(m, 11);
  std::vector<double> reference = original;
  const long long ref_flops =
      factor_with(config_of(KernelKind::kScalar, 1), reference, m, m / 2);
  for (const std::size_t nb : {4u, 16u, 48u}) {
    KernelConfig config = config_of(KernelKind::kParallelTiled, nb, 4);
    config.min_parallel_volume = 0;
    std::vector<double> tiled = original;
    const long long flops = factor_with(config, tiled, m, m / 2);
    EXPECT_EQ(tiled, reference) << "nb=" << nb;
    EXPECT_EQ(flops, ref_flops) << "nb=" << nb;
  }
}

TEST(FrontKernels, DegenerateFronts) {
  for (const KernelKind kind : {KernelKind::kScalar, KernelKind::kBlocked,
                                KernelKind::kParallelTiled}) {
    KernelConfig config = config_of(kind, 4, 2);
    config.min_parallel_volume = 0;
    const auto kernel = make_front_kernel(config);

    // eta = 0: no pivots — the front must come back untouched.
    const std::vector<double> original = make_dense_spd_front(12, 5);
    std::vector<double> front = original;
    EXPECT_EQ(kernel->partial_factor(front.data(), 12, 0, nullptr), 0);
    EXPECT_EQ(front, original);

    // eta = m: a full dense Cholesky; L·Lᵀ must reconstruct the front.
    std::vector<double> full = original;
    kernel->partial_factor(full.data(), 12, 12, nullptr);
    for (std::size_t c = 0; c < 12; ++c) {
      for (std::size_t r = c; r < 12; ++r) {
        double sum = 0.0;
        for (std::size_t k = 0; k <= c; ++k) {
          sum += full[k * 12 + r] * full[k * 12 + c];
        }
        EXPECT_NEAR(sum, original[c * 12 + r], 1e-10)
            << to_string(kind) << " (" << r << "," << c << ")";
      }
    }

    // 1×1 front: sqrt and nothing else.
    std::vector<double> tiny = {9.0};
    EXPECT_EQ(kernel->partial_factor(tiny.data(), 1, 1, nullptr), 1);
    EXPECT_EQ(tiny[0], 3.0);

    // Empty front: a no-op, not a crash.
    EXPECT_EQ(kernel->partial_factor(tiny.data(), 0, 0, nullptr), 0);
  }
}

TEST(FrontKernels, NonPositivePivotThrowsFromEveryKernel) {
  for (const KernelKind kind : {KernelKind::kScalar, KernelKind::kBlocked,
                                KernelKind::kParallelTiled}) {
    const auto kernel = make_front_kernel(config_of(kind, 4, 2));
    // Identity with a poisoned pivot *beyond* the first panel, so blocked
    // kernels reach it mid-run.
    std::vector<double> front(16 * 16, 0.0);
    for (std::size_t k = 0; k < 16; ++k) {
      front[k * 16 + k] = 1.0;
    }
    front[9 * 16 + 9] = -2.0;
    EXPECT_THROW(kernel->partial_factor(front.data(), 16, 16, nullptr),
                 Error)
        << to_string(kind);
  }
}

TEST(FrontKernels, ExtendAddScattersChildBlockExactly) {
  const auto kernel = make_front_kernel({});
  // Front over global rows {2, 5, 7, 8}; child CB over rows {5, 8}.
  std::vector<double> front(4 * 4, 1.0);
  const std::vector<double> expected_base = front;
  const Index front_rows[] = {2, 5, 7, 8};
  std::vector<Index> front_pos(9, -1);
  for (std::size_t k = 0; k < 4; ++k) {
    front_pos[static_cast<std::size_t>(front_rows[k])] =
        static_cast<Index>(k);
  }
  const Index cb_rows[] = {5, 8};
  const std::vector<double> cb_values = {10.0, 20.0,   // column 0 (rows 5,8)
                                         0.0, 40.0};   // column 1 (row 8)
  kernel->extend_add(front.data(), 4, front_pos.data(), cb_rows, 2,
                     cb_values.data());
  std::vector<double> expected = expected_base;
  expected[1 * 4 + 1] += 10.0;  // (5,5)
  expected[1 * 4 + 3] += 20.0;  // (8,5)
  expected[3 * 4 + 3] += 40.0;  // (8,8)
  EXPECT_EQ(front, expected);
}

TEST(KernelConfigEnv, StrictlyParsedLikeTreememThreads) {
  KernelConfig base;
  base.kind = KernelKind::kScalar;
  base.block_size = 48;

  const auto with_env = [&](const char* value) {
    EXPECT_EQ(setenv("TREEMEM_KERNEL", value, 1), 0);
    return kernel_config_from_env(base);
  };

  EXPECT_EQ(with_env("blocked").kind, KernelKind::kBlocked);
  EXPECT_EQ(with_env("blocked").block_size, 48u);
  EXPECT_EQ(with_env("parallel:64").kind, KernelKind::kParallelTiled);
  EXPECT_EQ(with_env("parallel:64").block_size, 64u);
  EXPECT_EQ(with_env("scalar").kind, KernelKind::kScalar);

  // Malformed values throw (strict parse through support/env.hpp): a typo
  // surfaces at startup instead of silently switching kernels.
  for (const char* bad : {"bogus", "BLOCKED", "blocked:", "blocked:0",
                          "blocked:12x", "blocked:999999", "block",
                          "parallelx", ":32"}) {
    EXPECT_THROW(with_env(bad), Error) << "value '" << bad << "'";
  }
  // parse_kernel_spec is the same parser, exposed for CLI flags.
  EXPECT_EQ(parse_kernel_spec("blocked:32", base).block_size, 32u);
  EXPECT_THROW(parse_kernel_spec("turbo", base), Error);

  // Empty means "unset", not "malformed".
  EXPECT_EQ(setenv("TREEMEM_KERNEL", "", 1), 0);
  EXPECT_EQ(kernel_config_from_env(base).kind, base.kind);

  ASSERT_EQ(unsetenv("TREEMEM_KERNEL"), 0);
  EXPECT_EQ(kernel_config_from_env(base).kind, base.kind);
}

/// The TSan flagship: the parallel-tiled kernel's intra-front parallel_for
/// nested inside factor_parallel's executor workers — two layers of real
/// threads sharing one front buffer layer apart. The fork threshold is
/// forced to zero so every panel of every front takes the threaded path.
TEST(KernelInEngine, ParallelTiledInsideFactorParallelIsRaceClean) {
  const NumericInstance inst = build_numeric_instance(
      {"dense-tsan", symmetrize(gen::grid2d(9, 9))},
      OrderingKind::kMinDegree, /*relax=*/2, /*seed=*/29);
  const MultifrontalResult reference = multifrontal_cholesky(
      inst.matrix, inst.assembly,
      reverse_traversal(best_postorder(inst.assembly.tree).order),
      config_of(KernelKind::kScalar, 1));

  ParallelFactorOptions options;
  options.workers = 4;
  options.kernel = config_of(KernelKind::kParallelTiled, 4, 2);
  options.kernel.min_parallel_volume = 0;
  const ParallelFactorResult run =
      factor_parallel(inst.matrix, inst.assembly, options);
  ASSERT_TRUE(run.feasible);
  EXPECT_LE(run.measured_peak_entries, run.modeled_peak_entries);
  EXPECT_EQ(run.flops, reference.flops);
  // Contract-level agreement with the scalar reference...
  ASSERT_EQ(run.factor.values.size(), reference.factor.values.size());
  EXPECT_LE(
      relative_frobenius_distance(reference.factor.values, run.factor.values),
      1e-12);
  // ...and the current implementation's stronger bit-exactness.
  EXPECT_EQ(run.factor.values, reference.factor.values);
}

TEST(KernelInEngine, BlockedKernelKeepsSerialDriverBitExact) {
  Prng prng(17);
  const NumericInstance inst = build_numeric_instance(
      {"dense-serial", symmetrize(gen::random_symmetric(64, 3.0, prng))},
      OrderingKind::kNestedDissection, /*relax=*/1, /*seed=*/31);
  const Traversal order =
      reverse_traversal(best_postorder(inst.assembly.tree).order);
  const MultifrontalResult scalar = multifrontal_cholesky(
      inst.matrix, inst.assembly, order, config_of(KernelKind::kScalar, 1));
  for (const std::size_t nb : {2u, 16u, 96u}) {
    const MultifrontalResult blocked = multifrontal_cholesky(
        inst.matrix, inst.assembly, order,
        config_of(KernelKind::kBlocked, nb));
    EXPECT_EQ(blocked.factor.values, scalar.factor.values) << "nb=" << nb;
    EXPECT_EQ(blocked.flops, scalar.flops) << "nb=" << nb;
    EXPECT_EQ(blocked.peak_live_entries, scalar.peak_live_entries)
        << "nb=" << nb;
  }
}

}  // namespace
}  // namespace treemem
