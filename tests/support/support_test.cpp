// Tests for the support layer: PRNG determinism, CSV escaping, tables,
// plots, big-stack runner and the parallel loop.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "support/ascii_plot.hpp"
#include "support/check.hpp"
#include "support/csv.hpp"
#include "support/env.hpp"
#include "support/parallel_for.hpp"
#include "support/prng.hpp"
#include "support/stack_runner.hpp"
#include "support/text_table.hpp"
#include "test_util.hpp"

namespace treemem {
namespace {

TEST(Prng, DeterministicAcrossInstances) {
  Prng a(123);
  Prng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Prng, GoldenValues) {
  // Pin the exact stream: reproducibility of every experiment depends on it.
  Prng prng(42);
  EXPECT_EQ(prng.next_u64(), 1546998764402558742ULL);
  EXPECT_EQ(prng.next_u64(), 6990951692964543102ULL);
}

TEST(Prng, UniformIntBoundsAndCoverage) {
  Prng prng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = prng.uniform_int(-3, 4);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 4);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 8u);  // all values hit
  EXPECT_EQ(prng.uniform_int(5, 5), 5);
  EXPECT_THROW(prng.uniform_int(2, 1), Error);
}

TEST(Prng, UniformRealInUnitInterval) {
  Prng prng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = prng.uniform_real();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Prng, ShuffleIsPermutation) {
  Prng prng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  prng.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), sorted.begin()));
}

TEST(Csv, WritesEscapedRows) {
  const std::string path = ::testing::TempDir() + "/treemem_csv_test.csv";
  {
    CsvWriter csv(path, {"name", "value"});
    csv.write_row({"plain", "1"});
    csv.write_row({"with,comma", "2"});
    csv.write_row({"with\"quote", "3"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "name,value");
  std::getline(in, line);
  EXPECT_EQ(line, "plain,1");
  std::getline(in, line);
  EXPECT_EQ(line, "\"with,comma\",2");
  std::getline(in, line);
  EXPECT_EQ(line, "\"with\"\"quote\",3");
  std::remove(path.c_str());
}

TEST(Csv, RejectsArityMismatch) {
  const std::string path = ::testing::TempDir() + "/treemem_csv_arity.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.write_row({"1"}), Error);
  std::remove(path.c_str());
}

TEST(TextTable, AlignsColumns) {
  TextTable table({"algo", "peak"});
  table.add_row({"PostOrder", "123"});
  table.add_row({"Liu", "45"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| algo      | peak |"), std::string::npos);
  EXPECT_NE(out.find("| Liu       | 45   |"), std::string::npos);
}

TEST(AsciiPlot, RendersSeriesAndLegend) {
  PlotSeries s1{"up", {0, 1, 2}, {0, 1, 2}};
  PlotSeries s2{"down", {0, 1, 2}, {2, 1, 0}};
  PlotOptions options;
  const std::string out = render_ascii_plot({s1, s2}, options);
  EXPECT_NE(out.find("[*] up"), std::string::npos);
  EXPECT_NE(out.find("[o] down"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiPlot, HandlesEmptyInput) {
  EXPECT_EQ(render_ascii_plot({}, PlotOptions{}), "(empty plot)\n");
}

TEST(StackRunner, RunsDeepRecursion) {
  // ThreadSanitizer keeps a bounded shadow call stack; a million-deep
  // recursion overflows it and crashes the runtime itself, so this test
  // must not run under TSan (a TSan capacity limit, not a bug in
  // run_with_stack).
#ifdef TREEMEM_TSAN
  GTEST_SKIP() << "TSan's shadow stack cannot track 1e6-deep recursion";
#endif
  // 1e6-deep recursion needs far more than the default 8 MiB stack.
  std::function<std::size_t(std::size_t)> burn = [&](std::size_t depth) -> std::size_t {
    volatile char pad[64] = {0};
    (void)pad;
    return depth == 0 ? 0 : 1 + burn(depth - 1);
  };
  std::size_t result = 0;
  run_with_stack(kBigStackBytes, [&]() { result = burn(1000000); });
  EXPECT_EQ(result, 1000000u);
}

TEST(StackRunner, PropagatesExceptions) {
  EXPECT_THROW(
      run_with_stack(kBigStackBytes, []() { throw Error("boom"); }), Error);
}

TEST(ParallelFor, VisitsEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(parallel_for(64,
                            [&](std::size_t i) {
                              if (i % 7 == 3) {
                                throw Error("boom");
                              }
                            }),
               Error);
}

TEST(ParallelFor, WorksSingleThreaded) {
  int sum = 0;
  parallel_for(10, [&](std::size_t i) { sum += static_cast<int>(i); }, 1);
  EXPECT_EQ(sum, 45);
}

TEST(ParallelFor, InlinePathRunsOnTheCallingThread) {
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  parallel_for(8, [&](std::size_t i) { seen[i] = std::this_thread::get_id(); },
               1);
  for (const auto& id : seen) {
    EXPECT_EQ(id, caller);
  }
}

TEST(ParallelFor, InlinePathExecutesAllIndicesAndRethrowsFirst) {
  // Regression: the inline path must share the threaded contract — every
  // index runs exactly once and the FIRST exception is rethrown at the end,
  // not thrown mid-loop with the tail skipped.
  std::vector<int> hits(16, 0);
  try {
    parallel_for(16,
                 [&](std::size_t i) {
                   ++hits[i];
                   if (i == 3 || i == 9) {
                     throw Error("boom at " + std::to_string(i));
                   }
                 },
                 1);
    FAIL() << "should have rethrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("boom at 3"), std::string::npos);
  }
  for (const int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

TEST(ParallelFor, ThreadedPathExecutesAllIndicesDespiteExceptions) {
  std::vector<std::atomic<int>> hits(64);
  EXPECT_THROW(parallel_for(64,
                            [&](std::size_t i) {
                              hits[i].fetch_add(1);
                              if (i % 5 == 0) {
                                throw Error("boom");
                              }
                            },
                            4),
               Error);
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

class ThreadsEnvGuard {
 public:
  ThreadsEnvGuard() {
    if (const char* env = std::getenv("TREEMEM_THREADS")) {
      saved_ = env;
      had_ = true;
    }
  }
  ~ThreadsEnvGuard() {
    if (had_) {
      ::setenv("TREEMEM_THREADS", saved_.c_str(), 1);
    } else {
      ::unsetenv("TREEMEM_THREADS");
    }
  }

 private:
  std::string saved_;
  bool had_ = false;
};

TEST(ParallelFor, DefaultThreadCountHonorsTreememThreads) {
  ThreadsEnvGuard guard;
  ::setenv("TREEMEM_THREADS", "3", 1);
  EXPECT_EQ(default_thread_count(), 3u);
  ::setenv("TREEMEM_THREADS", "1", 1);
  EXPECT_EQ(default_thread_count(), 1u);
  // Absurd values are capped rather than exhausting thread handles.
  ::setenv("TREEMEM_THREADS", "999999", 1);
  EXPECT_EQ(default_thread_count(), 1024u);
}

TEST(ParallelFor, DefaultThreadCountRejectsMalformedTreememThreads) {
  ThreadsEnvGuard guard;
  ::unsetenv("TREEMEM_THREADS");
  const unsigned fallback = default_thread_count();
  EXPECT_GE(fallback, 1u);
  // Invalid settings throw (strict parse through support/env.hpp): a typo
  // surfaces at startup instead of silently changing the thread count.
  for (const char* bad : {"0", "-2", "abc", "4x", " 4", "+4"}) {
    ::setenv("TREEMEM_THREADS", bad, 1);
    EXPECT_THROW(default_thread_count(), Error) << "value: '" << bad << "'";
  }
  // An empty value means "unset", not "malformed".
  ::setenv("TREEMEM_THREADS", "", 1);
  EXPECT_EQ(default_thread_count(), fallback);
}

TEST(EnvLayer, StrictParsersAcceptAndReject) {
  ThreadsEnvGuard guard;  // reuses TREEMEM_THREADS as the scratch variable
  ::setenv("TREEMEM_THREADS", "42", 1);
  EXPECT_EQ(env_int("TREEMEM_THREADS", 1, 100).value(), 42);
  EXPECT_THROW(env_int("TREEMEM_THREADS", 1, 10), Error);  // out of range
  EXPECT_EQ(env_string("TREEMEM_THREADS").value(), "42");
  ::unsetenv("TREEMEM_THREADS");
  EXPECT_FALSE(env_int("TREEMEM_THREADS", 1, 100).has_value());
  EXPECT_FALSE(env_string("TREEMEM_THREADS").has_value());

  EXPECT_EQ(parse_int_strict("-7", -10, 10, "test"), -7);
  for (const char* bad : {"", "-", "1.5", "0x10", "9999999999999999999999"}) {
    EXPECT_THROW(parse_int_strict(bad, -100, 100, "test"), Error)
        << "value: '" << bad << "'";
  }

  ::setenv("TREEMEM_THREADS", "1.5", 1);
  EXPECT_DOUBLE_EQ(env_double("TREEMEM_THREADS", 0.0, 10.0).value(), 1.5);
  ::setenv("TREEMEM_THREADS", "2e-1", 1);
  EXPECT_DOUBLE_EQ(env_double("TREEMEM_THREADS", 0.0, 10.0).value(), 0.2);
  // Same strictness as the integer parser: no '+', hex floats, inf/nan.
  for (const char* bad : {"fast", "+4", "0x10", " 1", "inf", "nan"}) {
    ::setenv("TREEMEM_THREADS", bad, 1);
    EXPECT_THROW(env_double("TREEMEM_THREADS", 0.0, 100.0), Error)
        << "value: '" << bad << "'";
  }
  const std::vector<std::string> choices = {"red", "green"};
  ::setenv("TREEMEM_THREADS", "green", 1);
  EXPECT_EQ(env_choice("TREEMEM_THREADS", choices).value(), 1u);
  ::setenv("TREEMEM_THREADS", "blue", 1);
  EXPECT_THROW(env_choice("TREEMEM_THREADS", choices), Error);
}

TEST(Check, MessagesCarryContext) {
  try {
    TM_CHECK(1 == 2, "custom " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom 42"), std::string::npos);
  }
}

}  // namespace
}  // namespace treemem
