// Tests for the support layer: PRNG determinism, CSV escaping, tables,
// plots, big-stack runner and the parallel loop.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>

#include "support/ascii_plot.hpp"
#include "support/check.hpp"
#include "support/csv.hpp"
#include "support/parallel_for.hpp"
#include "support/prng.hpp"
#include "support/stack_runner.hpp"
#include "support/text_table.hpp"

namespace treemem {
namespace {

TEST(Prng, DeterministicAcrossInstances) {
  Prng a(123);
  Prng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Prng, GoldenValues) {
  // Pin the exact stream: reproducibility of every experiment depends on it.
  Prng prng(42);
  EXPECT_EQ(prng.next_u64(), 1546998764402558742ULL);
  EXPECT_EQ(prng.next_u64(), 6990951692964543102ULL);
}

TEST(Prng, UniformIntBoundsAndCoverage) {
  Prng prng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = prng.uniform_int(-3, 4);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 4);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 8u);  // all values hit
  EXPECT_EQ(prng.uniform_int(5, 5), 5);
  EXPECT_THROW(prng.uniform_int(2, 1), Error);
}

TEST(Prng, UniformRealInUnitInterval) {
  Prng prng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = prng.uniform_real();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Prng, ShuffleIsPermutation) {
  Prng prng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  prng.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), sorted.begin()));
}

TEST(Csv, WritesEscapedRows) {
  const std::string path = ::testing::TempDir() + "/treemem_csv_test.csv";
  {
    CsvWriter csv(path, {"name", "value"});
    csv.write_row({"plain", "1"});
    csv.write_row({"with,comma", "2"});
    csv.write_row({"with\"quote", "3"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "name,value");
  std::getline(in, line);
  EXPECT_EQ(line, "plain,1");
  std::getline(in, line);
  EXPECT_EQ(line, "\"with,comma\",2");
  std::getline(in, line);
  EXPECT_EQ(line, "\"with\"\"quote\",3");
  std::remove(path.c_str());
}

TEST(Csv, RejectsArityMismatch) {
  const std::string path = ::testing::TempDir() + "/treemem_csv_arity.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.write_row({"1"}), Error);
  std::remove(path.c_str());
}

TEST(TextTable, AlignsColumns) {
  TextTable table({"algo", "peak"});
  table.add_row({"PostOrder", "123"});
  table.add_row({"Liu", "45"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| algo      | peak |"), std::string::npos);
  EXPECT_NE(out.find("| Liu       | 45   |"), std::string::npos);
}

TEST(AsciiPlot, RendersSeriesAndLegend) {
  PlotSeries s1{"up", {0, 1, 2}, {0, 1, 2}};
  PlotSeries s2{"down", {0, 1, 2}, {2, 1, 0}};
  PlotOptions options;
  const std::string out = render_ascii_plot({s1, s2}, options);
  EXPECT_NE(out.find("[*] up"), std::string::npos);
  EXPECT_NE(out.find("[o] down"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiPlot, HandlesEmptyInput) {
  EXPECT_EQ(render_ascii_plot({}, PlotOptions{}), "(empty plot)\n");
}

TEST(StackRunner, RunsDeepRecursion) {
  // 1e6-deep recursion needs far more than the default 8 MiB stack.
  std::function<std::size_t(std::size_t)> burn = [&](std::size_t depth) -> std::size_t {
    volatile char pad[64] = {0};
    (void)pad;
    return depth == 0 ? 0 : 1 + burn(depth - 1);
  };
  std::size_t result = 0;
  run_with_stack(kBigStackBytes, [&]() { result = burn(1000000); });
  EXPECT_EQ(result, 1000000u);
}

TEST(StackRunner, PropagatesExceptions) {
  EXPECT_THROW(
      run_with_stack(kBigStackBytes, []() { throw Error("boom"); }), Error);
}

TEST(ParallelFor, VisitsEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(parallel_for(64,
                            [&](std::size_t i) {
                              if (i % 7 == 3) {
                                throw Error("boom");
                              }
                            }),
               Error);
}

TEST(ParallelFor, WorksSingleThreaded) {
  int sum = 0;
  parallel_for(10, [&](std::size_t i) { sum += static_cast<int>(i); }, 1);
  EXPECT_EQ(sum, 45);
}

TEST(Check, MessagesCarryContext) {
  try {
    TM_CHECK(1 == 2, "custom " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom 42"), std::string::npos);
  }
}

}  // namespace
}  // namespace treemem
