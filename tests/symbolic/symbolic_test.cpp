// Tests for the symbolic factorization substrate: elimination trees,
// postorder, column counts (validated against the explicit symbolic
// factor), amalgamation and assembly-tree weights.
#include <gtest/gtest.h>

#include <numeric>

#include "sparse/generators.hpp"
#include "sparse/pattern.hpp"
#include "support/prng.hpp"
#include "symbolic/assembly_tree.hpp"
#include "symbolic/symbolic.hpp"

namespace treemem {
namespace {

/// Dense reference: Cholesky fill by explicit elimination on a boolean
/// matrix. Returns the lower-triangular pattern of L (including diagonal).
std::vector<std::vector<char>> dense_fill(const SparsePattern& a) {
  const Index n = a.cols();
  std::vector<std::vector<char>> m(
      static_cast<std::size_t>(n),
      std::vector<char>(static_cast<std::size_t>(n), 0));
  for (Index j = 0; j < n; ++j) {
    for (const Index i : a.column(j)) {
      m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = 1;
    }
  }
  for (Index k = 0; k < n; ++k) {
    for (Index i = k + 1; i < n; ++i) {
      if (!m[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)]) {
        continue;
      }
      for (Index j = k + 1; j <= i; ++j) {
        if (m[static_cast<std::size_t>(j)][static_cast<std::size_t>(k)]) {
          m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = 1;
        }
      }
    }
  }
  return m;
}

SparsePattern random_spd_pattern(std::uint64_t seed, Index n, double density) {
  Prng prng(seed);
  return symmetrize(gen::random_symmetric(n, density, prng));
}

class SymbolicSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SymbolicSweep, EtreeMatchesDenseDefinition) {
  // parent(j) = min { i > j : L_ij != 0 } per the dense fill.
  const std::uint64_t seed = GetParam();
  for (const Index n : {5, 12, 25}) {
    const SparsePattern a = random_spd_pattern(seed * 37 + n, n, 2.5);
    const auto fill = dense_fill(a);
    const std::vector<Index> parent = elimination_tree(a);
    for (Index j = 0; j < n; ++j) {
      Index expected = -1;
      for (Index i = j + 1; i < n; ++i) {
        if (fill[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]) {
          expected = i;
          break;
        }
      }
      EXPECT_EQ(parent[static_cast<std::size_t>(j)], expected)
          << "seed=" << seed << " n=" << n << " col=" << j;
    }
  }
}

TEST_P(SymbolicSweep, ColumnCountsMatchDenseFill) {
  const std::uint64_t seed = GetParam();
  for (const Index n : {5, 12, 25, 60}) {
    const SparsePattern a = random_spd_pattern(seed * 53 + n, n, 3.0);
    const auto fill = dense_fill(a);
    const std::vector<Index> parent = elimination_tree(a);
    const std::vector<Index> counts = column_counts(a, parent);
    for (Index j = 0; j < n; ++j) {
      Index expected = 0;
      for (Index i = j; i < n; ++i) {
        expected += fill[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      }
      EXPECT_EQ(counts[static_cast<std::size_t>(j)], expected)
          << "seed=" << seed << " n=" << n << " col=" << j;
    }
  }
}

TEST_P(SymbolicSweep, SymbolicCholeskyMatchesDenseFill) {
  const std::uint64_t seed = GetParam();
  for (const Index n : {5, 12, 30}) {
    const SparsePattern a = random_spd_pattern(seed * 71 + n, n, 3.5);
    const auto fill = dense_fill(a);
    const SparsePattern l = symbolic_cholesky(a);
    for (Index j = 0; j < n; ++j) {
      for (Index i = 0; i < n; ++i) {
        const bool expected =
            i >= j && fill[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
        EXPECT_EQ(l.has_entry(i, j), expected)
            << "seed=" << seed << " n=" << n << " (" << i << "," << j << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymbolicSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(Symbolic, EtreeOfTridiagonalIsAChain) {
  Prng prng(1);
  const SparsePattern a = symmetrize(gen::banded(8, 1, 1.0, prng));
  const std::vector<Index> parent = elimination_tree(a);
  for (Index j = 0; j + 1 < 8; ++j) {
    EXPECT_EQ(parent[static_cast<std::size_t>(j)], j + 1);
  }
  EXPECT_EQ(parent[7], -1);
}

TEST(Symbolic, PostorderIsValidAndContiguous) {
  const SparsePattern a = symmetrize(gen::grid2d(6, 6));
  const std::vector<Index> parent = elimination_tree(a);
  const std::vector<Index> post = etree_postorder(parent);
  std::vector<Index> position(post.size());
  for (std::size_t k = 0; k < post.size(); ++k) {
    position[static_cast<std::size_t>(post[k])] = static_cast<Index>(k);
  }
  for (std::size_t j = 0; j < parent.size(); ++j) {
    if (parent[j] != -1) {
      EXPECT_LT(position[j], position[static_cast<std::size_t>(parent[j])]);
    }
  }
}

TEST(Symbolic, FactorNnzOnGrid) {
  const SparsePattern a = symmetrize(gen::grid2d(8, 8));
  const SparsePattern l = symbolic_cholesky(a);
  EXPECT_EQ(factor_nnz(a), l.nnz());
  EXPECT_GE(l.nnz(), a.nnz() / 2);  // at least the lower triangle of A
}

// ---------------------------------------------------------------------------
// Amalgamation
// ---------------------------------------------------------------------------

TEST(Amalgamation, PerfectMergesChainSupernode) {
  // A chain etree with counts decreasing by one at each parent is one
  // fundamental supernode: 0 <- 1 <- 2 with counts 3, 2, 1.
  const std::vector<Index> parent{1, 2, -1};
  const std::vector<Index> counts{3, 2, 1};
  AssemblyTreeOptions options;
  options.relax = 0;
  const AssemblyTree at = amalgamate(parent, counts, options);
  EXPECT_EQ(at.tree.size(), 1);
  EXPECT_EQ(at.eta[0], 3);
  EXPECT_EQ(at.mu[0], 1);  // mu of the top column
  // Frontal weights: eta^2 + 2*eta*(mu-1) = 9, CB = 0.
  EXPECT_EQ(at.tree.work_size(0), 9);
  EXPECT_EQ(at.tree.file_size(0), 0);
}

TEST(Amalgamation, NoMergeWhenCountsDoNotChain) {
  const std::vector<Index> parent{1, 2, -1};
  const std::vector<Index> counts{3, 1, 1};  // 1 != 3-1: no perfect merge
  AssemblyTreeOptions options;
  options.relax = 0;
  const AssemblyTree at = amalgamate(parent, counts, options);
  EXPECT_EQ(at.tree.size(), 3);
  // Node weights follow the formulas with eta=1.
  for (NodeId i = 0; i < at.tree.size(); ++i) {
    const Weight mu = at.mu[static_cast<std::size_t>(i)];
    EXPECT_EQ(at.tree.work_size(i), 1 + 2 * (mu - 1));
    EXPECT_EQ(at.tree.file_size(i), (mu - 1) * (mu - 1));
  }
}

TEST(Amalgamation, RelaxedMergesDensestChild) {
  // Root 4 with children 1 (subtree {0,1}) and 3 (subtree {2,3}).
  // Counts make child 3 denser than child 1.
  const std::vector<Index> parent{1, 4, 3, 4, -1};
  const std::vector<Index> counts{2, 4, 2, 6, 1};
  AssemblyTreeOptions options;
  options.relax = 1;
  options.perfect = false;
  const AssemblyTree at = amalgamate(parent, counts, options);
  // Supernode of column 4 should have absorbed column 3 (mu=6 > mu=4).
  EXPECT_EQ(at.supernode_of[4], at.supernode_of[3]);
  EXPECT_NE(at.supernode_of[4], at.supernode_of[1]);
}

TEST(Amalgamation, VirtualRootForForests) {
  // Two independent chains: columns {0,1} and {2,3}.
  const std::vector<Index> parent{1, -1, 3, -1};
  const std::vector<Index> counts{2, 1, 2, 1};
  AssemblyTreeOptions options;
  options.relax = 0;
  options.perfect = false;
  const AssemblyTree at = amalgamate(parent, counts, options);
  EXPECT_TRUE(at.has_virtual_root);
  EXPECT_EQ(at.tree.num_children(at.tree.root()), 2);
  EXPECT_EQ(at.tree.file_size(at.tree.root()), 0);
  EXPECT_EQ(at.tree.work_size(at.tree.root()), 0);
}

TEST(Amalgamation, HigherRelaxNeverGrowsTree) {
  const SparsePattern a = symmetrize(gen::grid2d(12, 12));
  Index last = std::numeric_limits<Index>::max();
  for (const Index relax : {0, 1, 2, 4, 16}) {
    AssemblyTreeOptions options;
    options.relax = relax;
    const AssemblyTree at = build_assembly_tree(a, options);
    EXPECT_LE(at.tree.size(), last) << "relax=" << relax;
    last = at.tree.size();
    // Every column maps to a live supernode.
    for (Index j = 0; j < a.cols(); ++j) {
      ASSERT_NE(at.supernode_of[static_cast<std::size_t>(j)], kNoNode);
    }
    // Eta sums to the matrix dimension.
    const Weight eta_sum =
        std::accumulate(at.eta.begin(), at.eta.end(), Weight{0});
    EXPECT_EQ(eta_sum, a.cols());
  }
}

TEST(Amalgamation, WeightsFollowPaperFormulas) {
  const SparsePattern a = symmetrize(gen::grid2d(9, 9));
  AssemblyTreeOptions options;
  options.relax = 4;
  const AssemblyTree at = build_assembly_tree(a, options);
  for (NodeId i = 0; i < at.tree.size(); ++i) {
    if (at.has_virtual_root && i == at.tree.root()) {
      continue;
    }
    const Weight eta = at.eta[static_cast<std::size_t>(i)];
    const Weight mu = at.mu[static_cast<std::size_t>(i)];
    ASSERT_GE(eta, 1);
    ASSERT_GE(mu, 1);
    EXPECT_EQ(at.tree.work_size(i), eta * eta + 2 * eta * (mu - 1));
    EXPECT_EQ(at.tree.file_size(i), (mu - 1) * (mu - 1));
  }
}

}  // namespace
}  // namespace treemem
