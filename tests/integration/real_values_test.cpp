// End-to-end regression for the headline bugfix: `solve <matrix.mtx>`
// must factorize the matrix the file actually contains. Before the
// value-carrying reader existed, the pipeline silently replaced the
// file's values with a seeded synthetic SPD stand-in, so any residual
// check against the real matrix was meaningless. This test drives the
// full file → reader → Solver → residual path and proves the file's
// values (not a synthetic set on the same pattern) produced the answer.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "treemem.hpp"

namespace treemem {
namespace {

class TempMatrixFile {
 public:
  explicit TempMatrixFile(const SymmetricMatrix& matrix)
      : path_((std::filesystem::temp_directory_path() /
               ("treemem_real_values_" +
                std::to_string(
                    static_cast<unsigned long long>(matrix.size())) +
                "_" + std::to_string(matrix.pattern().nnz()) + ".mtx"))
                  .string()) {
    write_matrix_market_file(path_, matrix, /*symmetric_lower=*/true);
  }
  ~TempMatrixFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(RealValues, FileRoundTripSolvesTheFilesMatrix) {
  const SparsePattern pattern = symmetrize(gen::grid2d(12, 12));
  const SymmetricMatrix original = make_spd_matrix(pattern, 424242);
  TempMatrixFile file(original);

  const SymmetricMatrix loaded = read_matrix_market_matrix_file(file.path());
  ASSERT_EQ(loaded.values(), original.values());

  Solver solver;
  solver.analyze(loaded.pattern()).plan().factorize(loaded);
  Prng prng(7);
  std::vector<double> rhs(static_cast<std::size_t>(loaded.size()));
  for (double& v : rhs) {
    v = prng.uniform_real(-1.0, 1.0);
  }
  const std::vector<double> x = solver.solve(rhs);

  // The acceptance bar: the reconstructed system reproduces A x = b
  // against the matrix from the file.
  EXPECT_LE(relative_residual(loaded, x, rhs), 1e-10);

  // And it is the *file's* matrix that was solved: the same rhs against a
  // synthetic value set on the identical pattern (what the old pipeline
  // factorized, under a different seed) gives a measurably different
  // solution.
  const SymmetricMatrix synthetic = make_spd_matrix(pattern, 1);
  Solver synthetic_solver;
  synthetic_solver.analyze(pattern).plan().factorize(synthetic);
  const std::vector<double> y = synthetic_solver.solve(rhs);
  double max_diff = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(x[i] - y[i]));
  }
  EXPECT_GT(max_diff, 1e-6);
  EXPECT_GT(relative_residual(loaded, y, rhs), 1e-10);
}

TEST(RealValues, ServicePoolServesMatricesFromFiles) {
  // The `treemem_cli serve` path in library form: requests materialized
  // from on-disk files flow through the pool and come back with residuals
  // at solver precision.
  const SparsePattern pattern = symmetrize(gen::grid2d(9, 9));
  const SymmetricMatrix original = make_spd_matrix(pattern, 20110516);
  TempMatrixFile file(original);

  SolverPoolOptions options;
  options.workers = 2;
  SolverPool pool(options);
  for (int r = 0; r < 4; ++r) {
    SolveRequest request;
    request.matrix = read_matrix_market_matrix_file(file.path());
    Prng prng(static_cast<std::uint64_t>(r) + 1);
    request.rhs.assign(2, std::vector<double>(
                              static_cast<std::size_t>(original.size())));
    for (auto& column : request.rhs) {
      for (double& v : column) {
        v = prng.uniform_real(-1.0, 1.0);
      }
    }
    const std::vector<std::vector<double>> rhs = request.rhs;
    const SolveOutcome outcome = pool.solve(std::move(request));
    ASSERT_EQ(outcome.solutions.size(), rhs.size());
    for (std::size_t c = 0; c < rhs.size(); ++c) {
      EXPECT_LE(relative_residual(original, outcome.solutions[c], rhs[c]),
                1e-10);
    }
    EXPECT_EQ(outcome.cache_hit, r > 0);  // first request builds, rest hit
  }
}

}  // namespace
}  // namespace treemem
