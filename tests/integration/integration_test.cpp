// End-to-end integration tests: the full pipeline from a sparse matrix to
// planned (and executed) factorizations, golden regression values for fixed
// seeds, and cross-module consistency properties that no single-module test
// can see.
#include <gtest/gtest.h>

#include <numeric>

#include "core/check.hpp"
#include "core/in_tree.hpp"
#include "core/liu.hpp"
#include "core/minio.hpp"
#include "core/minmem.hpp"
#include "core/planner.hpp"
#include "core/postorder.hpp"
#include "core/trace.hpp"
#include "multifrontal/numeric.hpp"
#include "order/ordering.hpp"
#include "perf/corpus.hpp"
#include "solver/solver.hpp"
#include "sparse/generators.hpp"
#include "symbolic/assembly_tree.hpp"
#include "symbolic/symbolic.hpp"
#include "tree/generators.hpp"
#include "tree/tree_io.hpp"

namespace treemem {
namespace {

// ---------------------------------------------------------------------------
// Golden regression values. These pin the exact behaviour of the whole
// pipeline for fixed inputs; any change to orderings, amalgamation or the
// traversal algorithms that alters them is visible immediately.
// ---------------------------------------------------------------------------

TEST(Golden, Grid16MinDegreePipeline) {
  const SparsePattern a = symmetrize(gen::grid2d(16, 16));
  EXPECT_EQ(a.cols(), 256);
  EXPECT_EQ(a.nnz(), 256 + 2 * 480);

  const SparsePattern permuted = permute_symmetric(a, min_degree_order(a));
  const std::vector<Index> parent = elimination_tree(permuted);
  const std::vector<Index> counts = column_counts(permuted, parent);
  const std::int64_t nnz_l =
      std::accumulate(counts.begin(), counts.end(), std::int64_t{0});
  // Deterministic ordering => deterministic fill; natural order fill is the
  // upper reference.
  const std::int64_t nnz_natural = factor_nnz(a);
  EXPECT_LT(nnz_l, nnz_natural);

  AssemblyTreeOptions options;
  options.relax = 4;
  const AssemblyTree at = amalgamate(parent, counts, options);
  const Weight po = best_postorder_peak(at.tree);
  const Weight opt = minmem_optimal(at.tree).peak;
  EXPECT_EQ(liu_optimal_peak(at.tree), opt);
  EXPECT_GE(po, opt);
  // Pin the concrete values (regenerate consciously if algorithms change).
  RecordProperty("nnz_l", static_cast<int>(nnz_l));
  RecordProperty("postorder", static_cast<int>(po));
  RecordProperty("optimal", static_cast<int>(opt));
  // Determinism: a second run reproduces everything bit-for-bit.
  const SparsePattern permuted2 = permute_symmetric(a, min_degree_order(a));
  EXPECT_EQ(permuted2.row_idx(), permuted.row_idx());
  EXPECT_EQ(best_postorder_peak(at.tree), po);
}

TEST(Golden, HarpoonSerializationRoundTrip) {
  const Tree tree = gen::iterated_harpoon(3, 2, 999, 7);
  const Tree back = tree_from_string(tree_to_string(tree));
  EXPECT_EQ(back.parents(), tree.parents());
  EXPECT_EQ(back.files(), tree.files());
  EXPECT_EQ(back.works(), tree.works());
  EXPECT_EQ(liu_optimal_peak(back), liu_optimal_peak(tree));
}

// ---------------------------------------------------------------------------
// Cross-module consistency over the corpus
// ---------------------------------------------------------------------------

class CorpusConsistency : public ::testing::TestWithParam<int> {};

TEST_P(CorpusConsistency, EveryInstanceSatisfiesTheModelInvariants) {
  CorpusOptions options;
  options.scale = 0.15;
  options.relax_values = {1, 16};
  const auto instances = build_corpus_instances(options);
  const std::size_t stride = 5;
  for (std::size_t i = static_cast<std::size_t>(GetParam()); i < instances.size();
       i += stride) {
    const Tree& tree = instances[i].tree;
    SCOPED_TRACE(instances[i].name);

    // The three algorithms agree on the ordering of quality.
    const TraversalResult po = best_postorder(tree);
    const TraversalResult liu = liu_optimal(tree);
    const MinMemResult mm = minmem_optimal(tree);
    ASSERT_EQ(liu.peak, mm.peak);
    ASSERT_LE(liu.peak, po.peak);

    // Every traversal validates, and the in-tree duals match.
    EXPECT_EQ(traversal_peak(tree, po.order), po.peak);
    EXPECT_EQ(traversal_peak(tree, liu.order), liu.peak);
    EXPECT_EQ(traversal_peak(tree, mm.order), mm.peak);
    EXPECT_EQ(in_tree_traversal_peak(tree, reverse_traversal(liu.order)),
              liu.peak);

    // Peaks dominate the structural floor.
    EXPECT_GE(liu.peak, tree.max_mem_req());

    // Execution trace agrees with the checker.
    const ExecutionTrace trace = trace_execution(tree, mm.order);
    EXPECT_EQ(trace.peak, mm.peak);

    // A mid-range out-of-core plan validates end to end.
    const Weight floor = std::max(tree.max_mem_req(), tree.file_size(tree.root()));
    if (floor < liu.peak) {
      const Weight budget = (floor + liu.peak) / 2;
      const ExecutionPlan plan = plan_execution(tree, budget);
      ASSERT_TRUE(plan.feasible);
      const CheckResult check = check_out_of_core(tree, plan.schedule, budget);
      ASSERT_TRUE(check.feasible) << check.reason;
      EXPECT_EQ(check.io_volume, plan.io_volume);
      EXPECT_GE(plan.io_volume,
                divisible_io_lower_bound(tree, plan.schedule.order, budget));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Strides, CorpusConsistency, ::testing::Range(0, 5));

// ---------------------------------------------------------------------------
// Numeric end-to-end through the solver facade (the old hand-stitched
// pipeline now lives only inside Solver; tests/solver pins the bit-exact
// parity between the two).
// ---------------------------------------------------------------------------

TEST(EndToEnd, PlannedTraversalFactorsCorrectlyOnEveryOrdering) {
  const SparsePattern raw = symmetrize(gen::grid2d(9, 9));
  const SymmetricMatrix a = make_spd_matrix(raw, 77);
  for (const OrderingChoice ordering :
       {OrderingChoice::kMinDegree, OrderingChoice::kNestedDissection}) {
    AnalyzeOptions analyze;
    analyze.ordering = ordering;
    analyze.relax = 2;
    PlanOptions plan;
    plan.policy = TraversalPolicy::kMinMem;
    Solver solver;
    solver.analyze(raw, analyze).plan(plan).factorize(a);
    const SymmetricMatrix permuted = a.permuted(solver.permutation());
    EXPECT_LT(relative_residual(permuted, solver.factor()), 1e-12)
        << to_string(ordering);
    EXPECT_LE(solver.stats().measured_peak_entries,
              solver.stats().planned_peak_entries)
        << to_string(ordering);
  }
}

TEST(EndToEnd, RcmOrderingAlsoWorksThroughThePipeline) {
  Prng prng(5);
  const SparsePattern raw = symmetrize(gen::banded(80, 6, 0.5, prng));
  const SymmetricMatrix a = make_spd_matrix(raw, 5);
  AnalyzeOptions analyze;
  analyze.ordering = OrderingChoice::kRcm;
  analyze.relax = 1;
  PlanOptions plan;
  plan.policy = TraversalPolicy::kPostorder;
  Solver solver;
  solver.analyze(raw, analyze).plan(plan).factorize(a);
  EXPECT_LT(relative_residual(a.permuted(solver.permutation()),
                              solver.factor()),
            1e-12);

  // The facade's solve closes the loop on the original ordering.
  const std::vector<double> b(80, 1.0);
  const std::vector<double> x = solver.solve(b);
  const std::vector<double> ax = a.multiply(x);
  for (std::size_t i = 0; i < ax.size(); ++i) {
    EXPECT_NEAR(ax[i], b[i], 1e-10);
  }
}

// ---------------------------------------------------------------------------
// Stress: degenerate shapes through the full algorithm stack
// ---------------------------------------------------------------------------

TEST(Stress, WideStarThroughEverything) {
  const Tree tree = gen::star(5000, 3, 1);
  const Weight expected = tree.mem_req(tree.root());
  EXPECT_EQ(best_postorder_peak(tree), expected);
  EXPECT_EQ(liu_optimal_peak(tree), expected);
  EXPECT_EQ(minmem_optimal(tree).peak, expected);
}

TEST(Stress, DeepChainOutOfCorePlan) {
  const Tree tree = gen::chain(50000, 4, 2);
  // Peak is 10 (f+n+f); with budget 10 the plan is in-core postorder.
  const ExecutionPlan plan = plan_execution(tree, 10);
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.io_volume, 0);
  // Below max MemReq nothing works.
  EXPECT_FALSE(plan_execution(tree, 9).feasible);
}

TEST(Stress, RandomTreesThroughTracesAndPlans) {
  Prng prng(31);
  gen::RandomTreeOptions options;
  options.chain_bias = 0.5;
  options.max_file = 200;
  options.max_work = 50;
  const Tree tree = gen::random_tree(3000, options, prng);
  const MinMemResult mm = minmem_optimal(tree);
  const ExecutionTrace trace = trace_execution(tree, mm.order);
  EXPECT_EQ(trace.peak, mm.peak);
  const std::string profile = render_memory_profile(trace);
  EXPECT_NE(profile.find("peak"), std::string::npos);
}

}  // namespace
}  // namespace treemem
