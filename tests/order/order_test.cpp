// Tests for the ordering substrate: permutation validity, bandwidth/fill
// quality, determinism, and the approximate-vs-exact degree variants.
#include <gtest/gtest.h>

#include "order/ordering.hpp"
#include "sparse/generators.hpp"
#include "sparse/pattern.hpp"
#include "support/prng.hpp"
#include "symbolic/symbolic.hpp"

namespace treemem {
namespace {

std::int64_t fill_after(const SparsePattern& a, const std::vector<Index>& perm) {
  return factor_nnz(permute_symmetric(a, perm));
}

Index bandwidth(const SparsePattern& a) {
  Index bw = 0;
  for (Index j = 0; j < a.cols(); ++j) {
    for (const Index i : a.column(j)) {
      bw = std::max(bw, static_cast<Index>(std::abs(i - j)));
    }
  }
  return bw;
}

TEST(Orderings, NaturalAndRandomAreValid) {
  EXPECT_EQ(natural_order(4), (std::vector<Index>{0, 1, 2, 3}));
  Prng prng(3);
  const auto r = random_order(100, prng);
  check_permutation(r, 100);
}

class OrderingSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OrderingSweep, AllOrderingsAreValidPermutations) {
  const std::uint64_t seed = GetParam();
  Prng prng(seed);
  const SparsePattern a = symmetrize(gen::random_symmetric(150, 4.0, prng));
  check_permutation(rcm_order(a), a.cols());
  check_permutation(min_degree_order(a), a.cols());
  check_permutation(nested_dissection_order(a), a.cols());
}

TEST_P(OrderingSweep, ExactAndApproximateDegreesBothReduceFill) {
  const std::uint64_t seed = GetParam();
  Prng prng(seed * 17);
  const SparsePattern a = symmetrize(gen::random_symmetric(120, 3.0, prng));
  const std::int64_t natural = fill_after(a, natural_order(a.cols()));

  MinDegreeOptions approx;
  MinDegreeOptions exact;
  exact.approximate_degree = false;
  const std::int64_t fill_approx = fill_after(a, min_degree_order(a, approx));
  const std::int64_t fill_exact = fill_after(a, min_degree_order(a, exact));
  EXPECT_LE(fill_approx, natural);
  EXPECT_LE(fill_exact, natural);
  // The approximation should stay close to the exact-degree result.
  EXPECT_LE(fill_approx, fill_exact * 3 / 2 + 16);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderingSweep,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(Orderings, RcmShrinksGridBandwidth) {
  // Natural order of a wide grid has bandwidth nx; RCM should do no worse,
  // and it must massacre the bandwidth of a randomly permuted grid.
  const SparsePattern a = symmetrize(gen::grid2d(30, 10));
  Prng prng(5);
  const auto scrambled = permute_symmetric(a, random_order(a.cols(), prng));
  const Index before = bandwidth(scrambled);
  const Index after = bandwidth(permute_symmetric(scrambled, rcm_order(scrambled)));
  EXPECT_LT(after, before / 4);
}

TEST(Orderings, MinDegreeBeatsNaturalOnGrids) {
  const SparsePattern a = symmetrize(gen::grid2d(24, 24));
  const std::int64_t natural = fill_after(a, natural_order(a.cols()));
  const std::int64_t md = fill_after(a, min_degree_order(a));
  EXPECT_LT(md, natural);
}

TEST(Orderings, NestedDissectionBeatsNaturalOnGrids) {
  const SparsePattern a = symmetrize(gen::grid2d(24, 24));
  const std::int64_t natural = fill_after(a, natural_order(a.cols()));
  const std::int64_t nd = fill_after(a, nested_dissection_order(a));
  EXPECT_LT(nd, natural);
}

TEST(Orderings, MinDegreeOptimalOnTridiagonal) {
  // A tridiagonal matrix has no fill under the natural order, and minimum
  // degree must find a no-fill elimination too.
  Prng prng(1);
  const SparsePattern a = symmetrize(gen::banded(60, 1, 1.0, prng));
  EXPECT_EQ(fill_after(a, min_degree_order(a)), 2 * 60 - 1);
}

TEST(Orderings, Deterministic) {
  Prng prng(9);
  const SparsePattern a = symmetrize(gen::random_symmetric(200, 4.0, prng));
  EXPECT_EQ(min_degree_order(a), min_degree_order(a));
  EXPECT_EQ(nested_dissection_order(a), nested_dissection_order(a));
  EXPECT_EQ(rcm_order(a), rcm_order(a));
}

TEST(Orderings, HandleDisconnectedGraphs) {
  Prng prng(21);
  const SparsePattern a = gen::grid2d_with_holes(12, 12, 0.45, prng);
  const SparsePattern s = symmetrize(a);
  check_permutation(rcm_order(s), s.cols());
  check_permutation(min_degree_order(s), s.cols());
  check_permutation(nested_dissection_order(s), s.cols());
}

TEST(Orderings, TinyAndDegenerateInputs) {
  const SparsePattern one = SparsePattern::from_coo(1, 1, {{0, 0}});
  EXPECT_EQ(min_degree_order(one), (std::vector<Index>{0}));
  EXPECT_EQ(rcm_order(one), (std::vector<Index>{0}));
  EXPECT_EQ(nested_dissection_order(one), (std::vector<Index>{0}));

  // Diagonal-only matrix: everything has degree zero.
  const SparsePattern diag =
      SparsePattern::from_coo(5, 5, {{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4}});
  check_permutation(min_degree_order(diag), 5);
  check_permutation(nested_dissection_order(diag), 5);
}

}  // namespace
}  // namespace treemem
