// Correctness suite for the parallel numeric multifrontal engine
// (multifrontal/numeric_parallel.hpp) — the first place worker threads
// share numeric buffers, so this binary also runs under TSan in CI.
//
// Pinned properties:
//   * factor_parallel at w ∈ {1, 2, 8} produces the serial engine's factor
//     bit for bit (fronts write disjoint columns and extend-add walks
//     children in tree order, so sums are schedule-exact), and L·Lᵀ
//     reconstructs A, across a randomized seeded SPD corpus spanning
//     chain-, star- and random-shaped assembly trees and both orderings;
//   * memory-model pinning: at w = 1 over perfectly amalgamated trees the
//     engine's measured live entries equal the abstract Eq. 1 transient of
//     core/check.hpp at every step; at any w, measured peak <= modeled
//     peak <= budget; the minimum feasible budget (the w = 1 modeled peak)
//     completes without stalls;
//   * schedule-independent outputs (factor values, flops, executed-task
//     set, final resident memory) are invariant across repeated w = 4 runs;
//   * a non-SPD matrix surfaces a clean Error through the executor's
//     exception-propagation contract, and an undersized budget reports
//     infeasible instead of hanging.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/check.hpp"
#include "core/postorder.hpp"
#include "multifrontal/numeric_parallel.hpp"
#include "perf/corpus.hpp"
#include "sparse/generators.hpp"
#include "support/prng.hpp"

namespace treemem {
namespace {

/// Instances come from the corpus's own numeric pipeline
/// (build_numeric_instance), so this suite tests exactly the path the
/// bench and perf layers run — no drifting local re-implementation.
NumericInstance make_instance(const SparsePattern& raw, std::uint64_t seed,
                              OrderingKind ordering, Index relax) {
  return build_numeric_instance({"test", symmetrize(raw)}, ordering, relax,
                                seed);
}

MultifrontalResult serial_factor(const NumericInstance& inst) {
  // The scalar reference is pinned explicitly so a TREEMEM_KERNEL override
  // in the environment cannot silently change what "serial" means here.
  return multifrontal_cholesky(
      inst.matrix, inst.assembly,
      reverse_traversal(best_postorder(inst.assembly.tree).order),
      KernelConfig{});
}

/// Pattern families chosen for their assembly-tree shapes: narrow banded →
/// chain-like, arrowhead → star-like, random/grid → irregular.
std::vector<SparsePattern> pattern_family(std::uint64_t seed) {
  Prng prng(seed * 9176);
  return {
      gen::banded(60, 2, 1.0, prng),        // chain-shaped etree
      gen::arrowhead(48, 6),                // star-shaped etree
      gen::random_symmetric(64, 3.0, prng), // random tree
      gen::grid2d(8, 8),                    // realistic FEM-ish tree
  };
}

class NumericParallelSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NumericParallelSweep, MatchesSerialFactorAndReconstructsA) {
  // 7 seeds x 4 patterns x 2 orderings = 56 instances; with the varying
  // relax levels they span chain/star/random trees, both orderings and all
  // amalgamation regimes the serial suite exercises.
  const std::uint64_t seed = GetParam();
  const Index relax_by_seed[] = {0, 1, 4};
  const Index relax = relax_by_seed[seed % 3];
  for (const auto& raw : pattern_family(seed)) {
    for (const OrderingKind ordering :
         {OrderingKind::kMinDegree, OrderingKind::kNestedDissection}) {
      const NumericInstance inst = make_instance(raw, seed, ordering, relax);
      const MultifrontalResult serial = serial_factor(inst);
      ASSERT_LT(relative_residual(inst.matrix, serial.factor), 1e-12);

      // The blocked serial kernel is bit-identical to the scalar reference
      // across the whole 56-instance corpus (block size varied by seed so
      // the sweep covers width-1, mid, and wider-than-most-fronts panels).
      {
        KernelConfig blocked;
        blocked.kind = KernelKind::kBlocked;
        blocked.block_size = static_cast<std::size_t>(1) << (seed % 7);
        const MultifrontalResult blocked_run = multifrontal_cholesky(
            inst.matrix, inst.assembly,
            reverse_traversal(best_postorder(inst.assembly.tree).order),
            blocked);
        EXPECT_EQ(blocked_run.factor.values, serial.factor.values)
            << "blocked nb=" << blocked.block_size;
        EXPECT_EQ(blocked_run.flops, serial.flops);
        EXPECT_EQ(blocked_run.peak_live_entries, serial.peak_live_entries);
      }

      for (const int workers : {1, 2, 8}) {
        ParallelFactorOptions options;
        options.workers = workers;
        const ParallelFactorResult run =
            factor_parallel(inst.matrix, inst.assembly, options);
        ASSERT_TRUE(run.feasible) << "w=" << workers;
        // Bit-exact, not merely close: same kernels, same summation order.
        EXPECT_EQ(run.factor.values, serial.factor.values)
            << "w=" << workers << " relax=" << relax;
        EXPECT_EQ(run.flops, serial.flops);
        EXPECT_LE(run.measured_peak_entries, run.modeled_peak_entries);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NumericParallelSweep,
                         ::testing::Range<std::uint64_t>(1, 8));

TEST(NumericParallelMemory, SingleWorkerMatchesEquationOneExactly) {
  // With perfect amalgamation every front is exactly (eta+mu-1)^2 and every
  // contribution block (mu-1)^2, so on a single-worker schedule the
  // engine's measured occupancy must replay the abstract Eq. 1 accounting
  // of core/check.hpp step for step — transient AND after-step residents.
  for (const std::uint64_t seed : {3ULL, 11ULL, 19ULL}) {
    for (const auto& raw : pattern_family(seed)) {
      const NumericInstance inst =
          make_instance(raw, seed, OrderingKind::kMinDegree, /*relax=*/0);
      const Tree& tree = inst.assembly.tree;
      ParallelFactorOptions options;
      options.workers = 1;
      const ParallelFactorResult run =
          factor_parallel(inst.matrix, inst.assembly, options);
      ASSERT_TRUE(run.feasible);
      ASSERT_EQ(run.completion_order.size(),
                static_cast<std::size_t>(tree.size()));

      Weight resident = 0;
      for (std::size_t t = 0; t < run.completion_order.size(); ++t) {
        const NodeId x = run.completion_order[t];
        const Weight transient = resident + tree.work_size(x) +
                                 tree.file_size(x);
        EXPECT_EQ(run.transient_per_step[t], transient) << "step " << t;
        resident += tree.file_size(x) - tree.child_file_sum(x);
        EXPECT_EQ(run.live_after_step[t], resident) << "step " << t;
      }
      EXPECT_EQ(run.measured_peak_entries,
                in_tree_traversal_peak(tree, run.completion_order));
      EXPECT_EQ(run.measured_peak_entries, run.modeled_peak_entries);
    }
  }
}

TEST(NumericParallelMemory, MeasuredPeakWithinModelAndBudget) {
  const NumericInstance inst = make_instance(
      gen::grid2d(9, 9), 5, OrderingKind::kMinDegree, /*relax=*/4);
  const Tree& tree = inst.assembly.tree;
  const MultifrontalResult serial = serial_factor(inst);

  // A budget no reachable occupancy can exceed (all files resident plus a
  // full transient per worker): admission never blocks, so the run must
  // complete, with the modeled peak — and hence the measured one — below it.
  Weight all_files = 0;
  for (NodeId i = 0; i < tree.size(); ++i) {
    all_files += tree.file_size(i);
  }
  for (const int workers : {2, 4, 8}) {
    const Weight budget = all_files +
                          static_cast<Weight>(workers) * tree.max_mem_req();
    const ParallelFactorResult run =
        factor_parallel(inst.matrix, inst.assembly, budget, workers);
    ASSERT_TRUE(run.feasible) << "w=" << workers;
    EXPECT_LE(run.modeled_peak_entries, budget);
    EXPECT_LE(run.measured_peak_entries, run.modeled_peak_entries);
    EXPECT_EQ(run.factor.values, serial.factor.values);
  }

  // Tight budgets may defer or stall the greedy schedule depending on the
  // interleaving; either way the contract holds: a feasible run respects
  // the bound, an infeasible one reports cleanly instead of hanging.
  const ParallelFactorResult w1 = factor_parallel(
      inst.matrix, inst.assembly, kInfiniteWeight, 1);
  ASSERT_TRUE(w1.feasible);
  const ParallelFactorResult tight = factor_parallel(
      inst.matrix, inst.assembly, w1.modeled_peak_entries, 4);
  if (tight.feasible) {
    EXPECT_LE(tight.modeled_peak_entries, w1.modeled_peak_entries);
    EXPECT_LE(tight.measured_peak_entries, tight.modeled_peak_entries);
    EXPECT_EQ(tight.factor.values, serial.factor.values);
  } else {
    EXPECT_TRUE(tight.factor.values.empty());
  }
}

TEST(NumericParallelMemory, MinimumFeasibleBudgetCompletesWithoutStall) {
  // At w = 1 the greedy executor replays the unbounded run's decisions
  // whenever they fit, so its own peak is the minimum feasible budget for
  // this policy — running at exactly that budget must complete.
  for (const std::uint64_t seed : {2ULL, 7ULL}) {
    for (const auto& raw : pattern_family(seed)) {
      const NumericInstance inst = make_instance(
          raw, seed, OrderingKind::kNestedDissection, /*relax=*/1);
      const ParallelFactorResult free_run = factor_parallel(
          inst.matrix, inst.assembly, kInfiniteWeight, 1);
      ASSERT_TRUE(free_run.feasible);
      const ParallelFactorResult pinned = factor_parallel(
          inst.matrix, inst.assembly, free_run.modeled_peak_entries, 1);
      ASSERT_TRUE(pinned.feasible);
      EXPECT_EQ(pinned.modeled_peak_entries, free_run.modeled_peak_entries);
      EXPECT_EQ(pinned.completion_order, free_run.completion_order);
    }
  }
}

TEST(NumericParallelDeterminism, RepeatedRunsAgreeOnScheduleIndependentOutputs) {
  const NumericInstance inst = make_instance(
      gen::grid2d(10, 10), 23, OrderingKind::kMinDegree, /*relax=*/1);
  const Tree& tree = inst.assembly.tree;
  std::vector<double> reference_values;
  long long reference_flops = 0;
  for (int run_index = 0; run_index < 3; ++run_index) {
    ParallelFactorOptions options;
    options.workers = 4;
    const ParallelFactorResult run =
        factor_parallel(inst.matrix, inst.assembly, options);
    ASSERT_TRUE(run.feasible);

    // Executed-task set: every supernode exactly once.
    Traversal sorted = run.completion_order;
    std::sort(sorted.begin(), sorted.end());
    for (NodeId i = 0; i < tree.size(); ++i) {
      ASSERT_EQ(sorted[static_cast<std::size_t>(i)], i);
    }
    // The root completes last and drains all contribution blocks.
    EXPECT_EQ(run.completion_order.back(), tree.root());
    EXPECT_EQ(run.live_after_step.back(), 0);

    if (run_index == 0) {
      reference_values = run.factor.values;
      reference_flops = run.flops;
    } else {
      EXPECT_EQ(run.factor.values, reference_values);
      EXPECT_EQ(run.flops, reference_flops);
    }
  }
}

TEST(NumericParallelFailure, NonSpdMatrixThrowsCleanly) {
  // Negate an SPD matrix: the first pivot of some front is negative, the
  // kernel throws on a worker thread, and the executor's contract delivers
  // the Error to the caller after draining the pool — no deadlock, no
  // partial silence.
  const SparsePattern sym = symmetrize(gen::grid2d(6, 6));
  const SymmetricMatrix spd = make_spd_matrix(sym, 13);
  std::vector<double> values;
  for (Index j = 0; j < sym.cols(); ++j) {
    for (const Index r : sym.column(j)) {
      values.push_back(-spd.value_of(r, j));
    }
  }
  const SymmetricMatrix negated(sym, std::move(values));
  const AssemblyTree assembly = build_assembly_tree(sym, {});
  ParallelFactorOptions options;
  options.workers = 4;
  EXPECT_THROW(factor_parallel(negated, assembly, options), Error);
}

TEST(NumericParallelFailure, UndersizedBudgetReportsInfeasible) {
  const NumericInstance inst = make_instance(
      gen::grid2d(7, 7), 3, OrderingKind::kMinDegree, /*relax=*/1);
  const Weight too_small = inst.assembly.tree.max_mem_req() - 1;
  const ParallelFactorResult run =
      factor_parallel(inst.matrix, inst.assembly, too_small, 4);
  EXPECT_FALSE(run.feasible);
  EXPECT_TRUE(run.factor.values.empty());
  EXPECT_TRUE(run.completion_order.empty());
}

TEST(NumericParallelFailure, RejectsBadArguments) {
  const NumericInstance inst = make_instance(
      gen::grid2d(4, 4), 1, OrderingKind::kMinDegree, /*relax=*/1);
  ParallelFactorOptions options;
  options.workers = 0;
  EXPECT_THROW(factor_parallel(inst.matrix, inst.assembly, options), Error);
  // Mismatched matrix/tree pair.
  const NumericInstance other = make_instance(
      gen::grid2d(5, 5), 1, OrderingKind::kMinDegree, /*relax=*/1);
  EXPECT_THROW(
      factor_parallel(inst.matrix, other.assembly, ParallelFactorOptions{}),
      Error);
}

}  // namespace
}  // namespace treemem
