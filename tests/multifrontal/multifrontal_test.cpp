// Tests for the numerical multifrontal engine: factorization correctness
// against dense references, the live-memory/abstract-model correspondence,
// traversal independence, the disk model, and execution traces.
#include <gtest/gtest.h>

#include <cmath>

#include "core/check.hpp"
#include "core/liu.hpp"
#include "core/minio.hpp"
#include "core/minmem.hpp"
#include "core/postorder.hpp"
#include "core/trace.hpp"
#include "multifrontal/disk_model.hpp"
#include "multifrontal/numeric.hpp"
#include "order/ordering.hpp"
#include "sparse/generators.hpp"
#include "support/prng.hpp"
#include "symbolic/assembly_tree.hpp"
#include "tree/generators.hpp"

namespace treemem {
namespace {

/// End-to-end helper: SPD matrix on a pattern, ordering, assembly tree,
/// factorization along the given planner's traversal.
struct Pipeline {
  SymmetricMatrix matrix;          // permuted
  AssemblyTree assembly;
  MultifrontalResult result;
};

Pipeline run_pipeline(const SparsePattern& raw, std::uint64_t seed,
                      Index relax, bool use_optimal_traversal) {
  const SparsePattern sym = symmetrize(raw);
  const SymmetricMatrix a = make_spd_matrix(sym, seed);
  const std::vector<Index> perm = min_degree_order(sym);
  const SymmetricMatrix permuted = a.permuted(perm);

  AssemblyTreeOptions options;
  options.relax = relax;
  AssemblyTree assembly = build_assembly_tree(permuted.pattern(), options);

  const Traversal order =
      use_optimal_traversal
          ? reverse_traversal(minmem_optimal(assembly.tree).order)
          : reverse_traversal(best_postorder(assembly.tree).order);
  MultifrontalResult result =
      multifrontal_cholesky(permuted, assembly, order);
  return Pipeline{permuted, std::move(assembly), std::move(result)};
}

TEST(SymmetricMatrix, ValueAccessAndPermutation) {
  const SparsePattern p = symmetrize(gen::grid2d(3, 3));
  const SymmetricMatrix a = make_spd_matrix(p, 42);
  EXPECT_GT(a.value_of(0, 0), 1.0);  // dominant diagonal
  EXPECT_EQ(a.value_of(0, 1), a.value_of(1, 0));
  EXPECT_EQ(a.value_of(0, 8), 0.0);  // far-away grid points

  Prng prng(3);
  const auto perm = random_order(p.cols(), prng);
  const SymmetricMatrix b = a.permuted(perm);
  const auto inv = invert_permutation(perm);
  for (Index j = 0; j < p.cols(); ++j) {
    for (const Index r : p.column(j)) {
      EXPECT_EQ(b.value_of(inv[static_cast<std::size_t>(r)],
                           inv[static_cast<std::size_t>(j)]),
                a.value_of(r, j));
    }
  }
}

TEST(SymmetricMatrix, RejectsAsymmetricValues) {
  const SparsePattern p =
      SparsePattern::from_coo(2, 2, {{0, 0}, {1, 1}, {0, 1}, {1, 0}});
  // values order: col0: (0,0),(1,0); col1: (0,1),(1,1)
  EXPECT_THROW(SymmetricMatrix(p, {1.0, 2.0, 3.0, 1.0}), Error);
  EXPECT_NO_THROW(SymmetricMatrix(p, {1.0, 2.0, 2.0, 1.0}));
}

class FactorizationSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FactorizationSweep, ResidualTinyAcrossPatternsAndRelax) {
  const std::uint64_t seed = GetParam();
  Prng prng(seed * 101);
  const SparsePattern patterns[] = {
      gen::grid2d(7, 7),
      gen::grid3d(4, 4, 3),
      gen::random_symmetric(60, 3.0, prng),
      gen::banded(50, 4, 0.6, prng),
  };
  for (const auto& raw : patterns) {
    for (const Index relax : {0, 1, 4}) {
      const Pipeline pipe = run_pipeline(raw, seed, relax, true);
      const double residual = relative_residual(pipe.matrix, pipe.result.factor);
      EXPECT_LT(residual, 1e-12)
          << "seed=" << seed << " relax=" << relax << " n=" << raw.cols();
    }
  }
}

TEST_P(FactorizationSweep, TraversalDoesNotChangeTheFactor) {
  const std::uint64_t seed = GetParam();
  const SparsePattern raw = gen::grid2d(6, 6);
  const Pipeline with_optimal = run_pipeline(raw, seed, 2, true);
  const Pipeline with_postorder = run_pipeline(raw, seed, 2, false);
  ASSERT_EQ(with_optimal.result.factor.values.size(),
            with_postorder.result.factor.values.size());
  for (std::size_t i = 0; i < with_optimal.result.factor.values.size(); ++i) {
    EXPECT_NEAR(with_optimal.result.factor.values[i],
                with_postorder.result.factor.values[i], 1e-9);
  }
}

TEST_P(FactorizationSweep, SolveRecoversKnownSolution) {
  const std::uint64_t seed = GetParam();
  const Pipeline pipe = run_pipeline(gen::grid2d(8, 8), seed, 4, true);
  const Index n = pipe.matrix.size();
  // b = A * ones  =>  solution should be ones.
  std::vector<double> b(static_cast<std::size_t>(n), 0.0);
  for (Index j = 0; j < n; ++j) {
    for (const Index r : pipe.matrix.pattern().column(j)) {
      b[static_cast<std::size_t>(r)] += pipe.matrix.value_of(r, j);
    }
  }
  const std::vector<double> x = solve_with_factor(pipe.result.factor, b);
  for (const double xi : x) {
    EXPECT_NEAR(xi, 1.0, 1e-9);
  }
}

TEST_P(FactorizationSweep, LiveMemoryMatchesAbstractModelForPerfectSupernodes) {
  // With relax=0 every front is exactly (eta+mu-1)^2, so the engine's live
  // entries at each step must equal the abstract in-tree transient of the
  // weighted assembly tree — the model and the machine agree exactly.
  const std::uint64_t seed = GetParam();
  Prng prng(seed * 709);
  const SparsePattern patterns[] = {gen::grid2d(6, 6),
                                    gen::random_symmetric(50, 3.0, prng)};
  for (const auto& raw : patterns) {
    const SparsePattern sym = symmetrize(raw);
    const SymmetricMatrix a = make_spd_matrix(sym, seed);
    const std::vector<Index> perm = min_degree_order(sym);
    const SymmetricMatrix permuted = a.permuted(perm);
    AssemblyTreeOptions options;
    options.relax = 0;
    const AssemblyTree assembly = build_assembly_tree(permuted.pattern(), options);

    const Traversal bottom_up =
        reverse_traversal(best_postorder(assembly.tree).order);
    const MultifrontalResult run =
        multifrontal_cholesky(permuted, assembly, bottom_up);
    EXPECT_EQ(run.peak_live_entries,
              in_tree_traversal_peak(assembly.tree, bottom_up))
        << "seed=" << seed << " n=" << sym.cols();
  }
}

TEST_P(FactorizationSweep, RelaxedFrontsNeverExceedTheModel) {
  const std::uint64_t seed = GetParam();
  const SparsePattern sym = symmetrize(gen::grid2d(7, 7));
  const SymmetricMatrix a = make_spd_matrix(sym, seed);
  const std::vector<Index> perm = min_degree_order(sym);
  const SymmetricMatrix permuted = a.permuted(perm);
  for (const Index relax : {1, 4, 16}) {
    AssemblyTreeOptions options;
    options.relax = relax;
    const AssemblyTree assembly = build_assembly_tree(permuted.pattern(), options);
    const Traversal bottom_up =
        reverse_traversal(best_postorder(assembly.tree).order);
    const MultifrontalResult run =
        multifrontal_cholesky(permuted, assembly, bottom_up);
    // The model pads relaxed fronts with explicit zeros; real fronts are
    // index unions, so measured memory is bounded by the model's peak.
    EXPECT_LE(run.peak_live_entries,
              in_tree_traversal_peak(assembly.tree, bottom_up))
        << "relax=" << relax;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FactorizationSweep,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(Multifrontal, RejectsBadTraversals) {
  const Pipeline pipe = run_pipeline(gen::grid2d(4, 4), 1, 1, true);
  Traversal top_down = reverse_traversal(
      Traversal(pipe.result.live_after_step.size(), 0));  // bogus
  EXPECT_THROW(
      multifrontal_cholesky(pipe.matrix, pipe.assembly, top_down), Error);
}

TEST(Multifrontal, RejectsIndefiniteMatrix) {
  const SparsePattern sym = symmetrize(gen::grid2d(3, 3));
  SymmetricMatrix spd = make_spd_matrix(sym, 7);
  // Flip the sign of every value: negative definite now.
  std::vector<double> values;
  for (Index j = 0; j < sym.cols(); ++j) {
    for (const Index r : sym.column(j)) {
      values.push_back(-spd.value_of(r, j));
    }
  }
  const SymmetricMatrix negated(sym, std::move(values));
  AssemblyTreeOptions options;
  const AssemblyTree assembly = build_assembly_tree(sym, options);
  const Traversal bottom_up =
      reverse_traversal(best_postorder(assembly.tree).order);
  EXPECT_THROW(multifrontal_cholesky(negated, assembly, bottom_up), Error);
}

TEST(Multifrontal, FlopsArePositiveAndScaleWithFill) {
  const Pipeline small = run_pipeline(gen::grid2d(6, 6), 1, 4, true);
  const Pipeline large = run_pipeline(gen::grid2d(12, 12), 1, 4, true);
  EXPECT_GT(small.result.flops, 0);
  EXPECT_GT(large.result.flops, 4 * small.result.flops);
}

// ---------------------------------------------------------------------------
// Disk model
// ---------------------------------------------------------------------------

TEST(DiskModel, TimeAccountsLatencyAndVolume) {
  const Tree tree = gen::star(3, 1000, 0);
  IoSchedule schedule;
  schedule.order = {0, 1, 2, 3};
  schedule.writes.push_back({1, 3});
  DiskModel model;
  model.latency_s = 0.01;
  model.bandwidth_entries_s = 1e6;
  // one write + one read: 2 * (0.01 + 1000/1e6)
  EXPECT_NEAR(io_time_s(tree, schedule, model), 2 * (0.01 + 1e-3), 1e-12);
}

TEST(DiskModel, LatencyCanReorderHeuristics) {
  // Eviction need of 5 against resident files {2,2,7}: FirstFit writes one
  // file of 7 (volume 7, 1 op); LSNF writes 2+2+7 (volume 11, 3 ops).
  // By volume LSNF is worse; with a latency-dominated disk the gap widens.
  TreeBuilder b;
  const NodeId root = b.add_root(0, 0);
  const NodeId a1 = b.add_child(root, 2, 0);
  const NodeId a2 = b.add_child(root, 2, 0);
  const NodeId a3 = b.add_child(root, 7, 0);
  const NodeId e = b.add_child(root, 6, 0);
  b.add_child(a1, 1, 0);
  b.add_child(a2, 1, 0);
  b.add_child(a3, 1, 0);
  b.add_child(e, 6, 0);
  const Tree tree = std::move(b).build();
  const Traversal order{0, 4, 8, 3, 7, 2, 6, 1, 5};
  const Weight memory = 2 + 2 + 7 + 12 - 5;

  const MinIoResult ff =
      minio_heuristic(tree, order, memory, EvictionPolicy::kFirstFit);
  const MinIoResult lsnf =
      minio_heuristic(tree, order, memory, EvictionPolicy::kLsnf);
  DiskModel latency_heavy;
  latency_heavy.latency_s = 1.0;
  latency_heavy.bandwidth_entries_s = 1e9;
  EXPECT_LT(io_time_s(tree, ff, latency_heavy),
            io_time_s(tree, lsnf, latency_heavy) / 2.5);
}

// ---------------------------------------------------------------------------
// Execution traces
// ---------------------------------------------------------------------------

TEST(Trace, MatchesCheckerPeak) {
  Prng prng(11);
  gen::RandomTreeOptions options;
  const Tree tree = gen::random_tree(40, options, prng);
  const TraversalResult liu = liu_optimal(tree);
  const ExecutionTrace trace = trace_execution(tree, liu.order);
  EXPECT_EQ(trace.peak, liu.peak);
  EXPECT_EQ(trace.steps.size(), static_cast<std::size_t>(tree.size()));
  EXPECT_EQ(trace.steps.back().resident_after, 0);
  EXPECT_EQ(trace.io_volume, 0);
}

TEST(Trace, RecordsEvictionsAndReadbacks) {
  // tiny_mixed-style tree, forced to evict node 1's file at step 1.
  TreeBuilder b;
  const NodeId root = b.add_root(0, 1);
  const NodeId left = b.add_child(root, 4, 0);
  const NodeId right = b.add_child(root, 6, 2);
  b.add_child(left, 2, 0);
  b.add_child(right, 3, 1);
  const Tree tree = std::move(b).build();

  const Traversal order{0, 2, 4, 1, 3};
  const MinIoResult io =
      minio_heuristic(tree, order, 14, EvictionPolicy::kFirstFit);
  ASSERT_TRUE(io.feasible);
  const ExecutionTrace trace = trace_execution(tree, io.schedule);
  EXPECT_EQ(trace.io_volume, io.io_volume);
  EXPECT_LE(trace.peak, 14 + 0);  // fits in the budget by construction
  // Node 1's file (size 4) leaves at step 1 and returns at its execution.
  EXPECT_EQ(trace.steps[1].written, 4);
  bool read_back_seen = false;
  for (const TraceStep& step : trace.steps) {
    if (step.node == 1) {
      EXPECT_EQ(step.read_back, 4);
      read_back_seen = true;
    }
  }
  EXPECT_TRUE(read_back_seen);
}

TEST(Trace, RendersProfileWithPeakAnnotation) {
  const Tree tree = gen::star(4, 10, 2);
  const ExecutionTrace trace =
      trace_execution(tree, Traversal{0, 1, 2, 3, 4});
  const std::string plot = render_memory_profile(trace);
  EXPECT_NE(plot.find("peak 42"), std::string::npos);  // 0 + 2 + 4*10
  EXPECT_NE(plot.find("transient memory"), std::string::npos);
}

TEST(Trace, RejectsInvalidSchedules) {
  const Tree tree = gen::star(2, 5, 0);
  EXPECT_THROW(trace_execution(tree, Traversal{1, 0, 2}), Error);
  IoSchedule bad;
  bad.order = {0, 1, 2};
  bad.writes.push_back({0, 2});  // unproduced file
  EXPECT_THROW(trace_execution(tree, bad), Error);
}

}  // namespace
}  // namespace treemem
