// Tests for the out-of-core multifrontal engine: plans from the MinIO
// heuristics execute within their budgets, spill accounting matches the
// plan's model volume, and the factor stays numerically exact.
#include <gtest/gtest.h>

#include "core/liu.hpp"
#include "core/minio.hpp"
#include "core/minmem.hpp"
#include "core/postorder.hpp"
#include "multifrontal/out_of_core.hpp"
#include "order/ordering.hpp"
#include "sparse/generators.hpp"
#include "support/prng.hpp"
#include "symbolic/assembly_tree.hpp"

namespace treemem {
namespace {

struct OocSetup {
  SymmetricMatrix matrix;
  AssemblyTree assembly;
  Traversal out_tree_order;  // MinMem's order (out-tree direction)
  Weight floor = 0;
  Weight peak = 0;
};

OocSetup make_setup(const SparsePattern& raw, std::uint64_t seed, Index relax) {
  const SparsePattern sym = symmetrize(raw);
  const SymmetricMatrix a = make_spd_matrix(sym, seed);
  const SymmetricMatrix permuted = a.permuted(min_degree_order(sym));
  AssemblyTreeOptions options;
  options.relax = relax;
  AssemblyTree assembly = build_assembly_tree(permuted.pattern(), options);
  const MinMemResult mm = minmem_optimal(assembly.tree);
  OocSetup setup{permuted, std::move(assembly), mm.order, 0, mm.peak};
  setup.floor = std::max(setup.assembly.tree.max_mem_req(),
                         setup.assembly.tree.file_size(setup.assembly.tree.root()));
  return setup;
}

class OutOfCoreSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OutOfCoreSweep, ExecutesPlansWithinBudgetAndStaysExact) {
  const std::uint64_t seed = GetParam();
  for (const Index relax : {0, 2}) {
    const OocSetup setup = make_setup(gen::grid2d(8, 8), seed, relax);
    if (setup.floor >= setup.peak) {
      continue;
    }
    for (int step = 0; step <= 2; ++step) {
      const Weight budget =
          setup.floor + (setup.peak - setup.floor) * step / 3;
      const MinIoResult plan =
          minio_heuristic(setup.assembly.tree, setup.out_tree_order, budget,
                          EvictionPolicy::kFirstFit);
      ASSERT_TRUE(plan.feasible);
      const OutOfCoreRunResult run = multifrontal_cholesky_out_of_core(
          setup.matrix, setup.assembly, plan.schedule, budget);
      EXPECT_LE(run.peak_live_entries, budget)
          << "seed=" << seed << " relax=" << relax << " M=" << budget;
      // Real spilled blocks are never larger than the model's files.
      EXPECT_LE(run.entries_spilled, plan.io_volume);
      if (relax == 0) {
        // Perfect supernodes: model file sizes are exact block sizes.
        EXPECT_EQ(run.entries_spilled, plan.io_volume);
        EXPECT_EQ(run.spill_events, plan.files_written);
      }
      EXPECT_LT(relative_residual(setup.matrix, run.factor), 1e-12);
      EXPECT_GT(run.estimated_io_s, 0.0);
    }
  }
}

TEST_P(OutOfCoreSweep, NoWritesMeansNoSpills) {
  const std::uint64_t seed = GetParam();
  const OocSetup setup = make_setup(gen::grid2d(6, 6), seed, 1);
  IoSchedule in_core;
  in_core.order = setup.out_tree_order;
  const OutOfCoreRunResult run = multifrontal_cholesky_out_of_core(
      setup.matrix, setup.assembly, in_core, setup.peak);
  EXPECT_EQ(run.entries_spilled, 0);
  EXPECT_EQ(run.spill_events, 0);
  EXPECT_EQ(run.estimated_io_s, 0.0);
  EXPECT_LE(run.peak_live_entries, setup.peak);
  EXPECT_LT(relative_residual(setup.matrix, run.factor), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OutOfCoreSweep,
                         ::testing::Range<std::uint64_t>(1, 7));

TEST(OutOfCore, RejectsInfeasibleSchedules) {
  const OocSetup setup = make_setup(gen::grid2d(5, 5), 3, 1);
  IoSchedule plan;
  plan.order = setup.out_tree_order;
  // A budget below the floor cannot pass Algorithm 2.
  EXPECT_THROW(multifrontal_cholesky_out_of_core(setup.matrix, setup.assembly,
                                                 plan, setup.floor - 1),
               Error);
}

TEST(OutOfCore, SpillsReduceThePeakBelowTheInCoreRun) {
  // 8x8 with relax=2 has an out-of-core regime (floor < peak); relax=0
  // collapses this particular tree to floor == peak.
  const OocSetup setup = make_setup(gen::grid2d(8, 8), 11, 2);
  ASSERT_LT(setup.floor, setup.peak);
  // In-core reference peak (same traversal, no spills).
  IoSchedule in_core;
  in_core.order = setup.out_tree_order;
  const OutOfCoreRunResult full = multifrontal_cholesky_out_of_core(
      setup.matrix, setup.assembly, in_core, setup.peak);

  const Weight budget = (setup.floor + setup.peak) / 2;
  const MinIoResult plan = minio_heuristic(
      setup.assembly.tree, setup.out_tree_order, budget,
      EvictionPolicy::kFirstFit);
  ASSERT_TRUE(plan.feasible);
  ASSERT_GT(plan.io_volume, 0);
  const OutOfCoreRunResult constrained = multifrontal_cholesky_out_of_core(
      setup.matrix, setup.assembly, plan.schedule, budget);
  EXPECT_LT(constrained.peak_live_entries, full.peak_live_entries);
}

}  // namespace
}  // namespace treemem
