// Tests for the experiment layer: performance profiles, ratio statistics
// and the corpus pipeline (small scale).
#include <gtest/gtest.h>

#include <cmath>

#include "core/check.hpp"
#include "core/liu.hpp"
#include "core/minmem.hpp"
#include "core/postorder.hpp"
#include "multifrontal/numeric_parallel.hpp"
#include "perf/corpus.hpp"
#include "perf/profile.hpp"

namespace treemem {
namespace {

TEST(Profiles, KnownTable) {
  // Two methods over three cases: A = {2, 3, 10}, B = {4, 3, 5}.
  // Best = {2, 3, 5}; ratios A = {1, 1, 2}, B = {2, 1, 1}.
  const std::vector<std::vector<double>> values{{2, 4}, {3, 3}, {10, 5}};
  const auto profiles = performance_profiles(values, {"A", "B"});
  ASSERT_EQ(profiles.size(), 2u);
  EXPECT_DOUBLE_EQ(profiles[0].fraction.front(), 2.0 / 3.0);  // rho_A(1)
  EXPECT_DOUBLE_EQ(profiles[1].fraction.front(), 2.0 / 3.0);  // rho_B(1)
  EXPECT_DOUBLE_EQ(profiles[0].tau.back(), 2.0);
  EXPECT_DOUBLE_EQ(profiles[0].fraction.back(), 1.0);
}

TEST(Profiles, FailuresNeverReachOne) {
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<std::vector<double>> values{{1, inf}, {1, 2}};
  const auto profiles = performance_profiles(values, {"A", "B"});
  EXPECT_DOUBLE_EQ(profiles[0].fraction.back(), 1.0);
  EXPECT_DOUBLE_EQ(profiles[1].fraction.back(), 0.5);
}

TEST(Profiles, MaxTauClipsCurves) {
  const std::vector<std::vector<double>> values{{1, 100}};
  ProfileOptions options;
  options.max_tau = 5.0;
  const auto profiles = performance_profiles(values, {"A", "B"}, options);
  EXPECT_LE(profiles[1].tau.back(), 5.0);
}

TEST(Profiles, ZeroBestHandled) {
  const std::vector<std::vector<double>> values{{0, 0}, {0, 3}};
  const auto profiles = performance_profiles(values, {"A", "B"});
  EXPECT_DOUBLE_EQ(profiles[0].fraction.front(), 1.0);
  EXPECT_DOUBLE_EQ(profiles[1].fraction.back(), 0.5);
}

TEST(Profiles, RenderedPlotMentionsMethods) {
  const std::vector<std::vector<double>> values{{2, 4}, {3, 3}};
  const auto profiles = performance_profiles(values, {"alpha", "beta"});
  const std::string plot = render_profiles(profiles);
  EXPECT_NE(plot.find("alpha"), std::string::npos);
  EXPECT_NE(plot.find("beta"), std::string::npos);
}

TEST(RatioStats, MatchesHandComputation) {
  const std::vector<double> values{10, 12, 10};
  const std::vector<double> best{10, 10, 10};
  const RatioStats stats = ratio_stats(values, best);
  EXPECT_EQ(stats.cases, 3u);
  EXPECT_EQ(stats.non_optimal, 1u);
  EXPECT_NEAR(stats.non_optimal_fraction, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.max_ratio, 1.2);
  EXPECT_NEAR(stats.mean_ratio, (1 + 1.2 + 1) / 3.0, 1e-12);
  EXPECT_GT(stats.stddev_ratio, 0.0);
}

TEST(Corpus, MatricesAreWellFormed) {
  CorpusOptions options;
  options.scale = 0.08;  // tiny for test speed
  const auto matrices = build_corpus_matrices(options);
  EXPECT_GE(matrices.size(), 15u);
  for (const auto& m : matrices) {
    EXPECT_TRUE(m.pattern.is_symmetric()) << m.name;
    EXPECT_TRUE(m.pattern.has_full_diagonal()) << m.name;
    EXPECT_GE(m.pattern.cols(), 4) << m.name;
  }
}

TEST(Corpus, InstancesAreDeterministicAndUsable) {
  CorpusOptions options;
  options.scale = 0.05;
  options.relax_values = {1, 4};
  const auto a = build_corpus_instances(options);
  const auto b = build_corpus_instances(options);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GE(a.size(), 30u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    ASSERT_EQ(a[i].tree.size(), b[i].tree.size());
    EXPECT_EQ(a[i].tree.parents(), b[i].tree.parents());
    EXPECT_EQ(a[i].tree.files(), b[i].tree.files());
  }
  // Every instance runs through the full algorithm stack.
  for (std::size_t i = 0; i < a.size(); i += 7) {
    const Tree& tree = a[i].tree;
    const TraversalResult liu = liu_optimal(tree);
    const MinMemResult mm = minmem_optimal(tree);
    EXPECT_EQ(liu.peak, mm.peak) << a[i].name;
    EXPECT_GE(best_postorder(tree).peak, liu.peak) << a[i].name;
    EXPECT_EQ(traversal_peak(tree, liu.order), liu.peak);
  }
}

TEST(Corpus, NumericInstancesDriveTheParallelPipeline) {
  // End-to-end regression guard: the two smallest corpus matrices, through
  // matrix -> ordering -> assembly tree -> parallel numeric factorization,
  // at both orderings — the same path bench/numeric_parallel sweeps.
  CorpusOptions options;
  options.scale = 0.05;
  const auto instances = build_numeric_instances(options, /*max_matrices=*/2);
  ASSERT_EQ(instances.size(), 4u);  // 2 matrices x 2 orderings
  for (const NumericInstance& inst : instances) {
    ASSERT_EQ(inst.assembly.columns, inst.matrix.size()) << inst.name;
    const MultifrontalResult serial = multifrontal_cholesky(
        inst.matrix, inst.assembly,
        reverse_traversal(best_postorder(inst.assembly.tree).order));
    EXPECT_LT(relative_residual(inst.matrix, serial.factor), 1e-12)
        << inst.name;
    const ParallelFactorResult parallel =
        factor_parallel(inst.matrix, inst.assembly, kInfiniteWeight,
                        /*workers=*/4);
    ASSERT_TRUE(parallel.feasible) << inst.name;
    EXPECT_EQ(parallel.factor.values, serial.factor.values) << inst.name;
    EXPECT_LE(parallel.measured_peak_entries, parallel.modeled_peak_entries)
        << inst.name;
  }
  // Determinism across rebuilds: the corpus is seeded end to end.
  const auto again = build_numeric_instances(options, 2);
  ASSERT_EQ(again.size(), instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    EXPECT_EQ(again[i].name, instances[i].name);
    EXPECT_EQ(again[i].assembly.tree.parents(),
              instances[i].assembly.tree.parents());
  }
}

TEST(Corpus, RandomWeightInstancesKeepStructure) {
  CorpusOptions options;
  options.scale = 0.05;
  options.relax_values = {4};
  const auto base = build_corpus_instances(options);
  const auto random = build_random_weight_instances(options, 2);
  ASSERT_EQ(random.size(), base.size() * 2);
  EXPECT_EQ(random[0].tree.parents(), base[0].tree.parents());
  EXPECT_NE(random[0].tree.files(), base[0].tree.files());
}

}  // namespace
}  // namespace treemem
