// Tests for the memory-bounded parallel traversal simulator.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/check.hpp"
#include "core/postorder.hpp"
#include "parallel/parallel_sim.hpp"
#include "test_util.hpp"
#include "tree/generators.hpp"

namespace treemem {
namespace {

using testing::seeded_random_tree;

/// Validates the Gantt chart: precedence, worker exclusivity, completeness.
void check_gantt(const Tree& tree, const ParallelScheduleResult& result,
                 int workers) {
  ASSERT_EQ(result.gantt.size(), static_cast<std::size_t>(tree.size()));
  std::vector<double> finish(static_cast<std::size_t>(tree.size()), -1.0);
  for (const TaskInterval& task : result.gantt) {
    ASSERT_GE(task.worker, 0);
    ASSERT_LT(task.worker, workers);
    ASSERT_LT(task.start, task.finish);
    ASSERT_EQ(finish[static_cast<std::size_t>(task.node)], -1.0);
    finish[static_cast<std::size_t>(task.node)] = task.finish;
  }
  // Children finish before their parent starts.
  for (const TaskInterval& task : result.gantt) {
    for (const NodeId c : tree.children(task.node)) {
      EXPECT_LE(finish[static_cast<std::size_t>(c)], task.start + 1e-9);
    }
  }
  // No two tasks overlap on one worker.
  std::vector<TaskInterval> sorted = result.gantt;
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.worker != b.worker ? a.worker < b.worker : a.start < b.start;
  });
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i].worker == sorted[i - 1].worker) {
      EXPECT_GE(sorted[i].start, sorted[i - 1].finish - 1e-9);
    }
  }
}

TEST(ParallelSim, SerialPostorderMatchesTheAbstractPeak) {
  for (const std::uint64_t seed : {1ULL, 4ULL, 9ULL}) {
    const Tree tree = seeded_random_tree(seed * 8111, 60);
    ParallelOptions options;
    options.workers = 1;
    options.priority = ParallelPriority::kPostorder;
    const ParallelScheduleResult result =
        simulate_parallel_traversal(tree, options);
    ASSERT_TRUE(result.feasible);
    EXPECT_EQ(result.peak_memory, best_postorder(tree).peak) << seed;
    EXPECT_NEAR(result.speedup, 1.0, 1e-9);
    check_gantt(tree, result, 1);
  }
}

TEST(ParallelSim, StarScalesWithWorkers) {
  // 16 identical leaves of duration 6 (f=5,n=1) + root: ideal parallelism.
  const Tree tree = gen::star(16, 5, 1);
  ParallelOptions one;
  one.workers = 1;
  ParallelOptions eight;
  eight.workers = 8;
  const auto serial = simulate_parallel_traversal(tree, one);
  const auto parallel = simulate_parallel_traversal(tree, eight);
  ASSERT_TRUE(serial.feasible);
  ASSERT_TRUE(parallel.feasible);
  EXPECT_LT(parallel.makespan, serial.makespan / 4);
  EXPECT_GT(parallel.speedup, 4.0);
  check_gantt(tree, parallel, 8);
}

TEST(ParallelSim, ChainCannotSpeedUp) {
  const Tree tree = gen::chain(50, 3, 2);
  ParallelOptions options;
  options.workers = 8;
  const auto result = simulate_parallel_traversal(tree, options);
  ASSERT_TRUE(result.feasible);
  EXPECT_NEAR(result.speedup, 1.0, 1e-9);
}

TEST(ParallelSim, MemoryBoundSerializesTheStar) {
  // Each leaf transient = 6; root transient = 16*5+1 = 81. With budget 81
  // but 8 workers, concurrent leaves hold 6 each plus finished files 5:
  // the bound caps how many run at once, stretching the makespan.
  const Tree tree = gen::star(16, 5, 1);
  ParallelOptions unlimited;
  unlimited.workers = 8;
  ParallelOptions capped = unlimited;
  capped.memory_budget = 81;  // root's own requirement: minimum possible
  const auto free_run = simulate_parallel_traversal(tree, unlimited);
  const auto capped_run = simulate_parallel_traversal(tree, capped);
  ASSERT_TRUE(free_run.feasible);
  ASSERT_TRUE(capped_run.feasible);
  EXPECT_LE(capped_run.peak_memory, 81);
  EXPECT_GT(capped_run.makespan, free_run.makespan);
  EXPECT_GT(free_run.peak_memory, capped_run.peak_memory);
}

TEST(ParallelSim, InfeasibleBelowSingleTaskRequirement) {
  const Tree tree = gen::star(4, 10, 0);  // root transient = 40
  ParallelOptions options;
  options.workers = 2;
  options.memory_budget = 39;
  EXPECT_FALSE(simulate_parallel_traversal(tree, options).feasible);
}

class ParallelSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelSweep, AllPrioritiesProduceValidSchedules) {
  const std::uint64_t seed = GetParam();
  const Tree tree = seeded_random_tree(seed * 617, 80);
  for (const ParallelPriority priority :
       {ParallelPriority::kCriticalPath, ParallelPriority::kPostorder,
        ParallelPriority::kSmallestWork}) {
    for (const int workers : {1, 3, 7}) {
      ParallelOptions options;
      options.workers = workers;
      options.priority = priority;
      const auto result = simulate_parallel_traversal(tree, options);
      ASSERT_TRUE(result.feasible)
          << to_string(priority) << " w=" << workers;
      check_gantt(tree, result, workers);
      EXPECT_LE(result.speedup, static_cast<double>(workers) + 1e-9);
      EXPECT_GE(result.speedup, 1.0 - 1e-9);
    }
  }
}

TEST_P(ParallelSweep, MoreMemoryNeverHurtsMakespan) {
  const std::uint64_t seed = GetParam();
  const Tree tree = seeded_random_tree(seed * 1999, 50);
  ParallelOptions options;
  options.workers = 4;
  const auto unlimited = simulate_parallel_traversal(tree, options);
  ASSERT_TRUE(unlimited.feasible);
  options.memory_budget = unlimited.peak_memory;
  const auto exact_fit = simulate_parallel_traversal(tree, options);
  ASSERT_TRUE(exact_fit.feasible);
  EXPECT_NEAR(exact_fit.makespan, unlimited.makespan, 1e-9);
}

TEST_P(ParallelSweep, CustomDurationsRespected) {
  const std::uint64_t seed = GetParam();
  const Tree tree = seeded_random_tree(seed * 83, 20);
  std::vector<double> durations(static_cast<std::size_t>(tree.size()), 2.5);
  ParallelOptions options;
  options.workers = 1;
  const auto result = simulate_parallel_traversal(tree, options, durations);
  ASSERT_TRUE(result.feasible);
  EXPECT_NEAR(result.makespan, 2.5 * tree.size(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelSweep,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(ParallelSim, RejectsBadArguments) {
  const Tree tree = gen::chain(3, 1, 1);
  ParallelOptions options;
  options.workers = 0;
  EXPECT_THROW(simulate_parallel_traversal(tree, options), Error);
  options.workers = 2;
  EXPECT_THROW(
      simulate_parallel_traversal(tree, options, {1.0, 2.0}),  // short
      Error);
  EXPECT_THROW(
      simulate_parallel_traversal(tree, options, {1.0, -1.0, 2.0}),
      Error);
}

}  // namespace
}  // namespace treemem
