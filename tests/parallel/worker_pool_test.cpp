// Contract suite for the persistent worker pool (parallel/worker_pool.hpp)
// — the substrate both parallelism levels lease from, so this binary runs
// under TSan in CI.
//
// Pinned properties:
//   * the pool spawns exactly size() threads at construction and never
//     again: threads_spawned stays frozen across any number of leases,
//     loops and dispatches (the zero-births-on-the-hot-path contract CI
//     also gates via bench/check_regression.py);
//   * try_lease never blocks and never over-grants: concurrent
//     lease/run/release hammering from 8 threads stays race-free, every
//     loop index executes exactly once, and a request that finds nobody
//     idle comes back empty (counted as denied) instead of waiting;
//   * nested leasing works: a lease taken from inside an executor task —
//     the production shape, a front leasing trailing-update workers while
//     the tree level owns the crew — runs to completion;
//   * factor_parallel stays bit-identical to the serial engine at
//     w ∈ {1, 2, 8} with elastic crewing on and off (leases only move
//     work between threads, never reassociate it);
//   * an exception in a leased tile fails only that lease's loop (first
//     exception rethrown, every index still executed) and the pool remains
//     fully usable afterwards;
//   * tearing down a pool with a lease outstanding is a clean
//     treemem::Error from shutdown(), and release() then makes shutdown
//     succeed.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/postorder.hpp"
#include "multifrontal/numeric_parallel.hpp"
#include "parallel/executor.hpp"
#include "parallel/worker_pool.hpp"
#include "perf/corpus.hpp"
#include "sparse/generators.hpp"
#include "support/check.hpp"
#include "support/prng.hpp"
#include "tree/generators.hpp"

namespace treemem {
namespace {

TEST(WorkerPool, SpawnsOnceAndNeverAgain) {
  WorkerPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.stats().threads_spawned, 3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> hits{0};
    pool.try_lease(2).run(16, [&](std::size_t) { hits.fetch_add(1); });
    EXPECT_EQ(hits.load(), 16);
  }
  // The frozen counter IS the no-thread-births contract.
  EXPECT_EQ(pool.stats().threads_spawned, 3);
  EXPECT_GE(pool.stats().leases_granted, 1);
}

TEST(WorkerPool, SizeIsClampedToAtLeastOne) {
  WorkerPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(WorkerPool, LeaseRunExecutesEveryIndexExactlyOnce) {
  WorkerPool pool(4);
  std::vector<std::atomic<int>> hits(997);
  pool.try_lease(4).run(hits.size(),
                        [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(WorkerPool, EmptyLeaseRunsInlineOnTheCallingThread) {
  WorkerPool pool(2);
  // Hold every worker so the next request must come back empty.
  WorkerLease all = pool.try_lease(2);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(pool.idle_workers(), 0u);

  WorkerLease empty = pool.try_lease(2);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(pool.stats().leases_denied, 1);

  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  empty.run(seen.size(),
            [&](std::size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const std::thread::id& id : seen) {
    EXPECT_EQ(id, caller);  // denied leases must never block, just inline
  }
}

TEST(WorkerPool, ReleaseReturnsWorkersWithoutRunning) {
  WorkerPool pool(2);
  {
    WorkerLease lease = pool.try_lease(2);
    EXPECT_EQ(lease.size(), 2u);
    EXPECT_EQ(pool.idle_workers(), 0u);
  }  // RAII release
  EXPECT_EQ(pool.idle_workers(), 2u);
  EXPECT_EQ(pool.stats().threads_spawned, 2);
}

TEST(WorkerPool, ConcurrentLeaseReturnRacesAreClean) {
  // The satellite's race scenario: 8 external threads hammer one pool with
  // overlapping lease/run/release cycles. TSan must see no races; the
  // index counts prove no loop lost or duplicated work.
  WorkerPool pool(8);
  constexpr int kThreads = 8;
  constexpr int kRounds = 40;
  constexpr std::size_t kIndices = 64;
  std::vector<std::atomic<long long>> hits(kThreads);
  std::vector<std::thread> drivers;
  drivers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    drivers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        if ((t + round) % 3 == 0) {
          // Mix in lease-and-release-without-running.
          WorkerLease idle_lease = pool.try_lease(2);
          idle_lease.release();
        }
        pool.try_lease(static_cast<unsigned>(1 + (t + round) % 4))
            .run(kIndices, [&](std::size_t) { hits[t].fetch_add(1); });
      }
    });
  }
  for (std::thread& d : drivers) {
    d.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(hits[t].load(), static_cast<long long>(kRounds) * kIndices);
  }
  EXPECT_EQ(pool.stats().threads_spawned, 8);
  EXPECT_EQ(pool.idle_workers(), 8u);
}

TEST(WorkerPool, NestedLeaseFromInsideAnExecutorTask) {
  // The production shape: the tree-level executor recruits its crew from
  // the pool, and a task body (a front) leases more workers for its tiles
  // from the same pool, mid-run. Must complete and count every tile.
  WorkerPool pool(4);
  const Tree tree = gen::complete_kary(3, 3, 2, 1);  // 13 fronts, arity 3
  const auto p = static_cast<std::size_t>(tree.size());
  ExecutorOptions options;
  options.workers = 3;
  options.pool = &pool;
  std::atomic<long long> tile_hits{0};
  const ExecutorResult run = execute_task_tree(
      tree, options, std::vector<double>(p, 1.0), [&](NodeId) {
        pool.try_lease(2).run(16, [&](std::size_t) {
          tile_hits.fetch_add(1);
        });
      });
  EXPECT_TRUE(run.feasible);
  EXPECT_EQ(tile_hits.load(), static_cast<long long>(p) * 16);
  EXPECT_EQ(pool.stats().threads_spawned, 4);
  EXPECT_EQ(pool.idle_workers(), 4u);
}

TEST(WorkerPool, ExceptionInLeasedTileFailsOnlyThatLoop) {
  WorkerPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  EXPECT_THROW(
      pool.try_lease(3).run(hits.size(),
                            [&](std::size_t i) {
                              hits[i].fetch_add(1);
                              if (i == 7) {
                                throw Error("tile 7 failed");
                              }
                            }),
      Error);
  // The contract: every index still executed exactly once.
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
  // ...and the failure did not poison the pool: the next lease works.
  std::atomic<int> ok{0};
  pool.try_lease(3).run(32, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 32);
  EXPECT_EQ(pool.idle_workers(), 4u);
}

TEST(WorkerPool, ShutdownWithLeaseOutstandingIsACleanError) {
  WorkerPool pool(2);
  WorkerLease lease = pool.try_lease(1);
  ASSERT_EQ(lease.size(), 1u);
  EXPECT_THROW(pool.shutdown(), Error);  // teardown under a live lease
  lease.release();
  EXPECT_NO_THROW(pool.shutdown());  // clean once the lease is back
  EXPECT_NO_THROW(pool.shutdown());  // idempotent
}

TEST(WorkerPool, DispatchRunsJobOnceAndSelfReturns) {
  WorkerPool pool(2);
  std::atomic<int> runs{0};
  const unsigned claimed = pool.try_dispatch(2, [&] { runs.fetch_add(1); });
  EXPECT_EQ(claimed, 2u);
  // Dispatched workers self-return; the destructor's drain would also
  // cover this, but pin it explicitly.
  while (pool.idle_workers() != 2u) {
    std::this_thread::yield();
  }
  EXPECT_EQ(runs.load(), 2);
  EXPECT_EQ(pool.stats().workers_dispatched, 2);
}

// ---------------------------------------------------------------------------
// Factors bit-identical to serial under every lease policy
// ---------------------------------------------------------------------------

class LeasePolicySweep : public ::testing::TestWithParam<bool> {};

TEST_P(LeasePolicySweep, FactorsBitIdenticalToSerialAcrossWorkerCounts) {
  const bool lease_idle = GetParam();
  Prng prng(4242);
  const SparsePattern raw = symmetrize(gen::random_symmetric(72, 3.0, prng));
  const NumericInstance inst = build_numeric_instance(
      {"pool-test", raw}, OrderingKind::kMinDegree, 2, 4242);
  const MultifrontalResult serial = multifrontal_cholesky(
      inst.matrix, inst.assembly,
      reverse_traversal(best_postorder(inst.assembly.tree).order),
      KernelConfig{});

  WorkerPool pool(4);
  for (const int workers : {1, 2, 8}) {
    ParallelFactorOptions options;
    options.workers = workers;
    options.lease_idle_workers = lease_idle;
    // The parallel-tiled kernel with the gate forced open, leasing from a
    // private pool: every panel of every front exercises the leased path.
    options.kernel.kind = KernelKind::kParallelTiled;
    options.kernel.block_size = 4;
    options.kernel.min_parallel_volume = 0;
    options.kernel.pool = &pool;
    const ParallelFactorResult run =
        factor_parallel(inst.matrix, inst.assembly, options);
    ASSERT_TRUE(run.feasible);
    ASSERT_EQ(run.factor.values.size(), serial.factor.values.size());
    for (std::size_t i = 0; i < serial.factor.values.size(); ++i) {
      ASSERT_EQ(run.factor.values[i], serial.factor.values[i])
          << "factor drift at offset " << i << " with workers=" << workers
          << " lease_idle_workers=" << lease_idle;
    }
  }
  // Everything returned: the pool drained back to fully idle.
  EXPECT_EQ(pool.idle_workers(), 4u);
  EXPECT_EQ(pool.stats().threads_spawned, 4);
}

INSTANTIATE_TEST_SUITE_P(LeasingOnAndOff, LeasePolicySweep,
                         ::testing::Values(true, false));

}  // namespace
}  // namespace treemem
