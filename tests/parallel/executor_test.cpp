// Tests for the real threaded memory-bounded executor and the schedule_core
// it shares with the simulator.
//
// The load-bearing properties:
//   * with w = 1 the executor takes exactly the simulator's scheduling
//     decisions, so feasibility, peak and order match the simulation — and
//     the peak equals the serial in-tree checker's Eq. 1 peak (the
//     schedule_core transient accounting cannot drift from the paper's
//     model);
//   * the accounted peak never exceeds the budget on feasible runs;
//   * schedule-independent outputs (per-task payload results, precedence,
//     final resident memory) are deterministic even at w > 1;
//   * infeasible instances — transient larger than M, or a mid-run greedy
//     stall — fail cleanly instead of hanging.
// At w > 1 with a tight budget, greedy feasibility depends on the real
// completion interleaving, so exact simulator parity is only asserted where
// it is interleaving-invariant: w = 1 (any budget), any w with an unlimited
// budget, and symmetric trees (identical siblings) with tight budgets.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <thread>
#include <vector>

#include "core/check.hpp"
#include "core/postorder.hpp"
#include "parallel/executor.hpp"
#include "parallel/parallel_sim.hpp"
#include "test_util.hpp"
#include "tree/generators.hpp"

namespace treemem {
namespace {

using testing::seeded_random_tree;
using testing::small_tree_corpus;

/// Nodes of the simulator gantt in completion order.
Traversal sim_completion_order(const ParallelScheduleResult& sim) {
  Traversal order;
  order.reserve(sim.gantt.size());
  for (const TaskInterval& task : sim.gantt) {
    order.push_back(task.node);
  }
  return order;
}

/// Structural validation of an executor run: every task exactly once,
/// children complete before their parent starts (measured clocks), no two
/// tasks overlap on one worker.
void check_executor_run(const Tree& tree, const ExecutorResult& result,
                        int workers) {
  ASSERT_TRUE(result.feasible);
  ASSERT_EQ(result.gantt.size(), static_cast<std::size_t>(tree.size()));
  ASSERT_EQ(result.completion_order.size(),
            static_cast<std::size_t>(tree.size()));
  Traversal sorted = result.completion_order;
  std::sort(sorted.begin(), sorted.end());
  for (NodeId i = 0; i < tree.size(); ++i) {
    EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
  }
  for (const TaskInterval& task : result.gantt) {
    ASSERT_GE(task.worker, 0);
    ASSERT_LT(task.worker, workers);
    ASSERT_LE(task.start, task.finish);
    for (const NodeId c : tree.children(task.node)) {
      // The parent is dispatched only after the child's finish timestamp
      // was taken (both under the scheduler lock), so measured times agree.
      EXPECT_LE(result.gantt[static_cast<std::size_t>(c)].finish,
                task.start + 1e-9);
    }
  }
  std::vector<TaskInterval> by_worker = result.gantt;
  std::sort(by_worker.begin(), by_worker.end(),
            [](const TaskInterval& a, const TaskInterval& b) {
              return a.worker != b.worker ? a.worker < b.worker
                                          : a.start < b.start;
            });
  for (std::size_t i = 1; i < by_worker.size(); ++i) {
    if (by_worker[i].worker == by_worker[i - 1].worker) {
      EXPECT_GE(by_worker[i].start, by_worker[i - 1].finish - 1e-9);
    }
  }
}

TEST(Executor, SingleWorkerMatchesSimulatorAndSerialChecker) {
  // The satellite property: schedule_core transient accounting == the Eq. 1
  // peak of the serial in-tree checker on every single-worker schedule, and
  // the w=1 executor replays the w=1 simulation decision for decision.
  for (const Tree& tree : small_tree_corpus(60, 24)) {
    for (const ParallelPriority priority :
         {ParallelPriority::kCriticalPath, ParallelPriority::kPostorder,
          ParallelPriority::kSmallestWork}) {
      ParallelOptions sim_options;
      sim_options.workers = 1;
      sim_options.priority = priority;
      const auto sim = simulate_parallel_traversal(tree, sim_options);
      ASSERT_TRUE(sim.feasible);

      ExecutorOptions exec_options;
      exec_options.workers = 1;
      exec_options.priority = priority;
      const auto exec = execute_task_tree(tree, exec_options);
      check_executor_run(tree, exec, 1);
      EXPECT_EQ(exec.completion_order, sim_completion_order(sim));
      EXPECT_EQ(exec.peak_memory, sim.peak_memory);
      EXPECT_EQ(exec.peak_memory,
                in_tree_traversal_peak(tree, exec.completion_order))
          << to_string(priority);
    }
  }
}

TEST(Executor, SingleWorkerFeasibilityParityUnderTightBudgets) {
  // At w=1 the executor and simulator are the same greedy decision
  // process, so feasibility parity is exact — including identical stalls.
  for (const Tree& tree : small_tree_corpus(40, 20, /*salt=*/77)) {
    const Weight postorder_peak = best_postorder(tree).peak;
    for (const Weight budget :
         {tree.max_mem_req(), postorder_peak,
          (tree.max_mem_req() + postorder_peak) / 2, postorder_peak * 2}) {
      ParallelOptions sim_options;
      sim_options.workers = 1;
      sim_options.memory_budget = budget;
      const auto sim = simulate_parallel_traversal(tree, sim_options);

      ExecutorOptions exec_options;
      exec_options.workers = 1;
      exec_options.memory_budget = budget;
      const auto exec = execute_task_tree(tree, exec_options);
      ASSERT_EQ(exec.feasible, sim.feasible) << "budget " << budget;
      if (exec.feasible) {
        EXPECT_EQ(exec.peak_memory, sim.peak_memory);
        EXPECT_LE(exec.peak_memory, budget);
        EXPECT_EQ(exec.completion_order, sim_completion_order(sim));
      }
    }
  }
}

TEST(Executor, UnlimitedBudgetAlwaysCompletes) {
  for (const std::uint64_t seed : {3ULL, 11ULL, 27ULL}) {
    const Tree tree = seeded_random_tree(seed * 733, 80);
    for (const int workers : {2, 4, 8}) {
      ExecutorOptions options;
      options.workers = workers;
      const auto result = execute_task_tree(tree, options);
      check_executor_run(tree, result, workers);
      // When any task starts, its children files are already accounted, so
      // the peak is at least the largest Eq. 1 transient of the tree.
      EXPECT_GE(result.peak_memory, tree.max_mem_req());
    }
  }
}

TEST(Executor, SymmetricStarRespectsTightBudget) {
  // 16 identical leaves (transient 6, file 5) + root (transient 81). With
  // budget 81 feasibility is interleaving-invariant: any k running leaves
  // and r finished files hold 6k + 5r <= 81 only when admitted, and once
  // all leaves finished (resident 80) the root's delta 1 always fits.
  const Tree tree = gen::star(16, 5, 1);
  for (const int workers : {2, 8}) {
    ExecutorOptions options;
    options.workers = workers;
    options.memory_budget = 81;
    const auto result = execute_task_tree(tree, options);
    check_executor_run(tree, result, workers);
    EXPECT_LE(result.peak_memory, 81);

    ParallelOptions sim_options;
    sim_options.workers = workers;
    sim_options.memory_budget = 81;
    EXPECT_TRUE(simulate_parallel_traversal(tree, sim_options).feasible);
  }
}

TEST(Executor, PeakNeverExceedsBudgetAcrossSweep) {
  for (const Tree& tree : small_tree_corpus(30, 16, /*salt=*/5)) {
    const Weight budget = best_postorder(tree).peak * 2;
    for (const int workers : {1, 2, 4}) {
      ExecutorOptions options;
      options.workers = workers;
      options.memory_budget = budget;
      const auto result = execute_task_tree(tree, options);
      if (result.feasible) {
        EXPECT_LE(result.peak_memory, budget);
      }
    }
  }
}

TEST(Executor, ScheduleIndependentOutputsAreDeterministic) {
  // Payload results land in per-node slots; whatever interleaving the OS
  // produces, the slots, the exactly-once execution count, the precedence
  // and the final resident memory are identical run to run.
  const Tree tree = seeded_random_tree(4242, 120);
  const std::size_t p = static_cast<std::size_t>(tree.size());
  std::vector<Weight> reference;
  for (int run = 0; run < 3; ++run) {
    std::vector<Weight> slots(p, 0);
    std::atomic<int> executions{0};
    ExecutorOptions options;
    options.workers = 4;
    const auto result = execute_task_tree(
        tree, options, default_task_durations(tree), [&](NodeId node) {
          Weight value = tree.file_size(node) + 3 * tree.work_size(node);
          for (const NodeId c : tree.children(node)) {
            value += slots[static_cast<std::size_t>(c)];  // children done
          }
          slots[static_cast<std::size_t>(node)] = value;
          executions.fetch_add(1, std::memory_order_relaxed);
        });
    check_executor_run(tree, result, 4);
    EXPECT_EQ(executions.load(), tree.size());
    if (run == 0) {
      reference = slots;
    } else {
      EXPECT_EQ(slots, reference);
    }
  }
}

TEST(Executor, InfeasibleWhenATaskCannotFit) {
  const Tree tree = gen::star(4, 10, 0);  // root transient = 40
  ExecutorOptions options;
  options.workers = 2;
  options.memory_budget = 39;
  const auto result = execute_task_tree(tree, options);
  EXPECT_FALSE(result.feasible);
  EXPECT_TRUE(result.gantt.empty());
  EXPECT_TRUE(result.completion_order.empty());
}

TEST(Executor, GreedyStallFailsCleanlyAndMatchesSimulator) {
  // Two two-node subtrees under the root. Critical-path ranks (via the
  // custom durations) force both leaves to run before either parent; with
  // budget 20 the two resident leaf files (10+10) then strand the memory:
  // neither parent's delta (5) fits and nothing can ever free space. The
  // instance IS schedulable under budget 25 (leaf-parent-leaf-parent), so
  // this exercises the mid-run stall path, not the per-task precheck.
  TreeBuilder builder;
  const NodeId root = builder.add_root(0, 0);
  const NodeId left = builder.add_child(root, 5, 0);
  const NodeId right = builder.add_child(root, 5, 0);
  builder.add_child(left, 10, 0);   // node 3
  builder.add_child(right, 10, 0);  // node 4
  const Tree tree = std::move(builder).build();
  const std::vector<double> durations{1.0, 1.0, 1.0, 100.0, 90.0};

  for (const Weight budget : {Weight{20}, Weight{25}}) {
    ExecutorOptions exec_options;
    exec_options.workers = 1;
    exec_options.memory_budget = budget;
    const auto exec = execute_task_tree(tree, exec_options, durations);

    ParallelOptions sim_options;
    sim_options.workers = 1;
    sim_options.memory_budget = budget;
    const auto sim = simulate_parallel_traversal(tree, sim_options, durations);

    EXPECT_EQ(exec.feasible, sim.feasible) << "budget " << budget;
    EXPECT_EQ(exec.feasible, budget == 25) << "budget " << budget;
    if (exec.feasible) {
      EXPECT_LE(exec.peak_memory, budget);
    }
  }
}

TEST(Executor, SpinWorkYieldsRealSpeedup) {
  if (std::thread::hardware_concurrency() < 2) {
    GTEST_SKIP() << "needs at least two cores for measured speedup";
  }
  // 8 identical leaves of 6 duration units each; with 2 ms per unit the
  // serial run spins ~100 ms, so scheduling overhead is noise. Wall-clock
  // thresholds on a shared CI runner can lose to a noisy neighbor, so take
  // the best of a few attempts before judging.
  const Tree tree = gen::star(8, 5, 1);
  ExecutorOptions serial;
  serial.workers = 1;
  serial.spin_seconds_per_unit = 2e-3;
  ExecutorOptions parallel = serial;
  parallel.workers = 2;
  double best_ratio = std::numeric_limits<double>::max();
  for (int attempt = 0; attempt < 3 && best_ratio >= 0.8; ++attempt) {
    const auto one = execute_task_tree(tree, serial);
    const auto two = execute_task_tree(tree, parallel);
    ASSERT_TRUE(one.feasible);
    ASSERT_TRUE(two.feasible);
    EXPECT_LE(two.speedup, 2.0 + 1e-6);
    best_ratio = std::min(best_ratio, two.makespan / one.makespan);
  }
  EXPECT_LT(best_ratio, 0.8);
}

TEST(Executor, PayloadExceptionPropagatesWithoutHanging) {
  const Tree tree = gen::star(12, 2, 1);
  ExecutorOptions options;
  options.workers = 4;
  std::atomic<int> ran{0};
  EXPECT_THROW(
      execute_task_tree(tree, options, default_task_durations(tree),
                        [&](NodeId node) {
                          if (node == 5) {
                            throw Error("payload failure");
                          }
                          ran.fetch_add(1, std::memory_order_relaxed);
                        }),
      Error);
  EXPECT_LT(ran.load(), tree.size());  // the run aborted early
}

TEST(Executor, RejectsBadArguments) {
  const Tree tree = gen::chain(3, 1, 1);
  ExecutorOptions options;
  options.workers = 0;
  EXPECT_THROW(execute_task_tree(tree, options), Error);
  options.workers = 2;
  EXPECT_THROW(execute_task_tree(tree, options, {1.0, 2.0}), Error);
  EXPECT_THROW(execute_task_tree(tree, options, {1.0, -1.0, 2.0}), Error);
}

TEST(ScheduleCore, TransientMatchesEquationOne) {
  for (const Tree& tree : small_tree_corpus(20, 12, /*salt=*/9)) {
    const auto durations = default_task_durations(tree);
    ScheduleCore core(tree, ParallelPriority::kCriticalPath, kInfiniteWeight,
                      durations);
    for (NodeId i = 0; i < tree.size(); ++i) {
      EXPECT_EQ(core.transient(i), tree.mem_req(i));
    }
  }
}

TEST(ScheduleCore, SerialDriveReproducesSerialCheckerPeak) {
  // Driving the core strictly serially (finish immediately after start) is
  // a single-worker schedule; its accounted peak must equal the Eq. 1 peak
  // the serial in-tree checker computes for the executed order.
  for (const Tree& tree : small_tree_corpus(40, 18, /*salt=*/13)) {
    for (const ParallelPriority priority :
         {ParallelPriority::kCriticalPath, ParallelPriority::kPostorder,
          ParallelPriority::kSmallestWork}) {
      const auto durations = default_task_durations(tree);
      ScheduleCore core(tree, priority, kInfiniteWeight, durations);
      Traversal order;
      while (!core.done()) {
        const NodeId node = core.try_start();
        ASSERT_NE(node, kNoNode);
        core.finish(node);
        order.push_back(node);
      }
      EXPECT_EQ(core.peak_memory(), in_tree_traversal_peak(tree, order));
      EXPECT_EQ(core.current_memory(), tree.file_size(tree.root()));
    }
  }
}

TEST(MemoryAccountant, GatesOnBudgetAndTracksPeak) {
  MemoryAccountant accountant(100);
  EXPECT_TRUE(accountant.try_acquire(60));
  EXPECT_FALSE(accountant.try_acquire(41));
  EXPECT_TRUE(accountant.try_acquire(40));
  EXPECT_EQ(accountant.current(), 100);
  EXPECT_EQ(accountant.peak(), 100);
  accountant.adjust(-70);
  EXPECT_EQ(accountant.current(), 30);
  EXPECT_EQ(accountant.peak(), 100);
  EXPECT_TRUE(accountant.try_acquire(0));
  MemoryAccountant unlimited;
  EXPECT_TRUE(unlimited.try_acquire(kInfiniteWeight / 2));
}

}  // namespace
}  // namespace treemem
