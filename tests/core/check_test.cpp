// Tests for the Algorithm 1 / Algorithm 2 feasibility checkers and the
// in-tree/out-tree duality of Section III-C.
#include <gtest/gtest.h>

#include "core/brute_force.hpp"
#include "core/check.hpp"
#include "core/liu.hpp"
#include "test_util.hpp"
#include "tree/generators.hpp"

namespace treemem {
namespace {

using testing::seeded_random_tree;
using testing::tiny_mixed;

TEST(TraversalPeak, HandComputedExample) {
  const Tree tree = tiny_mixed();
  // Order: 0, 2, 4, 1, 3.
  // resident starts at f0=0.
  //  exec 0: 0 + n0(1) + f1+f2 (10) = 11; resident -> 10
  //  exec 2: 10 + 2 + 3 = 15;            resident -> 7  (drop 6, add 3)
  //  exec 4: 7 + 1 + 0 = 8;              resident -> 4
  //  exec 1: 4 + 0 + 2 = 6;              resident -> 2
  //  exec 3: 2 + 0 + 0 = 2;              resident -> 0
  const Traversal order{0, 2, 4, 1, 3};
  EXPECT_EQ(traversal_peak(tree, order), 15);

  const CheckResult ok = check_in_core(tree, order, 15);
  EXPECT_TRUE(ok.feasible);
  EXPECT_EQ(ok.peak, 15);
  const CheckResult fail = check_in_core(tree, order, 14);
  EXPECT_FALSE(fail.feasible);
  EXPECT_EQ(fail.fail_step, 1);  // step executing node 2
}

TEST(TraversalPeak, RejectsMalformedOrders) {
  const Tree tree = tiny_mixed();
  EXPECT_THROW(traversal_peak(tree, {0, 1, 2, 3}), Error);      // short
  EXPECT_THROW(traversal_peak(tree, {0, 1, 1, 3, 4}), Error);   // duplicate
  EXPECT_THROW(traversal_peak(tree, {1, 0, 2, 3, 4}), Error);   // child first
  EXPECT_THROW(traversal_peak(tree, {0, 1, 2, 4, 5}), Error);   // bad id
}

TEST(CheckInCore, DetectsNotReady) {
  const Tree tree = tiny_mixed();
  const CheckResult res = check_in_core(tree, {0, 3, 1, 2, 4}, 1000);
  EXPECT_FALSE(res.feasible);
  EXPECT_EQ(res.fail_step, 1);  // node 3 runs before its parent 1
}

class DualitySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DualitySweep, OutTreePeakEqualsReversedInTreePeak) {
  const std::uint64_t seed = GetParam();
  for (NodeId size = 2; size <= 9; ++size) {
    const Tree tree = seeded_random_tree(seed * 557 + size, size);
    for (const Traversal& order : all_traversals(tree)) {
      const Weight out_peak = traversal_peak(tree, order);
      const Weight in_peak =
          in_tree_traversal_peak(tree, reverse_traversal(order));
      EXPECT_EQ(out_peak, in_peak)
          << "seed=" << seed << " size=" << size;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualitySweep,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(CheckOutOfCore, NoWritesMatchesInCore) {
  const Tree tree = tiny_mixed();
  IoSchedule schedule;
  schedule.order = {0, 2, 4, 1, 3};
  const CheckResult res = check_out_of_core(tree, schedule, 15);
  EXPECT_TRUE(res.feasible);
  EXPECT_EQ(res.io_volume, 0);
}

TEST(CheckOutOfCore, SimpleEvictionScenario) {
  const Tree tree = tiny_mixed();
  // With M = 14 the order {0,2,4,1,3} fails at node 2 (needs 15). Writing
  // node 1's file (size 4) out just before step 1 frees enough.
  IoSchedule schedule;
  schedule.order = {0, 2, 4, 1, 3};
  schedule.writes.push_back({1, 1});
  const CheckResult res = check_out_of_core(tree, schedule, 14);
  ASSERT_TRUE(res.feasible) << res.reason;
  EXPECT_EQ(res.io_volume, 4);
}

TEST(CheckOutOfCore, RejectsWritingUnproducedFile) {
  const Tree tree = tiny_mixed();
  IoSchedule schedule;
  schedule.order = {0, 2, 4, 1, 3};
  schedule.writes.push_back({0, 3});  // node 3's file not produced at step 0
  const CheckResult res = check_out_of_core(tree, schedule, 1000);
  EXPECT_FALSE(res.feasible);
}

TEST(CheckOutOfCore, RejectsWritingAfterExecution) {
  const Tree tree = tiny_mixed();
  IoSchedule schedule;
  schedule.order = {0, 2, 4, 1, 3};
  schedule.writes.push_back({3, 2});  // node 2 executed at step 1
  const CheckResult res = check_out_of_core(tree, schedule, 1000);
  EXPECT_FALSE(res.feasible);
}

TEST(CheckOutOfCore, CountsEachWriteOnce) {
  const Tree tree = gen::star(3, 10, 0);
  IoSchedule schedule;
  schedule.order = {0, 1, 2, 3};
  // Budget 31 fits everything; still allow a gratuitous write+read cycle.
  schedule.writes.push_back({1, 3});
  const CheckResult res = check_out_of_core(tree, schedule, 31);
  ASSERT_TRUE(res.feasible) << res.reason;
  EXPECT_EQ(res.io_volume, 10);
}

}  // namespace
}  // namespace treemem
