// Cross-algorithm property tests on the shared small-tree corpus: every
// polynomial MinMemory algorithm is validated against the exhaustive
// bitmask DP, and every reported peak against the Algorithm 1 simulator —
// tying MinMem and Liu to the optimal bound of the paper (Liu's theorem)
// rather than only to each other.
#include <gtest/gtest.h>

#include "core/brute_force.hpp"
#include "core/check.hpp"
#include "core/liu.hpp"
#include "core/minmem.hpp"
#include "core/postorder.hpp"
#include "test_util.hpp"
#include "tree/tree.hpp"

namespace treemem {
namespace {

constexpr int kCorpusSize = 200;
constexpr NodeId kMaxNodes = 12;

TEST(MinMemProperty, MatchesBruteForceOnCorpus) {
  const auto corpus = testing::small_tree_corpus(kCorpusSize, kMaxNodes);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const Tree& tree = corpus[i];
    const Weight optimal = brute_force_min_memory(tree);
    const MinMemResult mm = minmem_optimal(tree);
    EXPECT_EQ(mm.peak, optimal) << "corpus instance " << i;
    // The reported peak must be exactly what Algorithm 1 measures for the
    // returned order, not merely an upper bound.
    EXPECT_EQ(traversal_peak(tree, mm.order), mm.peak) << "corpus instance "
                                                       << i;
  }
}

TEST(LiuProperty, MatchesBruteForceOnCorpus) {
  const auto corpus = testing::small_tree_corpus(kCorpusSize, kMaxNodes);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const Tree& tree = corpus[i];
    const Weight optimal = brute_force_min_memory(tree);
    for (const auto strategy :
         {LiuMergeStrategy::kHeap, LiuMergeStrategy::kStableSort}) {
      const TraversalResult liu = liu_optimal(tree, strategy);
      EXPECT_EQ(liu.peak, optimal) << "corpus instance " << i;
      EXPECT_EQ(traversal_peak(tree, liu.order), liu.peak)
          << "corpus instance " << i;
      EXPECT_EQ(liu_optimal_peak(tree, strategy), liu.peak)
          << "corpus instance " << i;
    }
  }
}

TEST(PostOrderProperty, OptimalAmongPostordersAndAboveLiuBound) {
  const auto corpus = testing::small_tree_corpus(kCorpusSize, kMaxNodes);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const Tree& tree = corpus[i];
    const TraversalResult post = best_postorder(tree);
    EXPECT_EQ(post.peak, brute_force_best_postorder(tree))
        << "corpus instance " << i;
    EXPECT_EQ(traversal_peak(tree, post.order), post.peak)
        << "corpus instance " << i;
    EXPECT_EQ(best_postorder_peak(tree), post.peak) << "corpus instance " << i;
    // Liu's bound: no traversal, postorder or not, beats the optimum.
    EXPECT_GE(post.peak, brute_force_min_memory(tree)) << "corpus instance "
                                                       << i;
  }
}

TEST(MinMemProperty, CheckInCoreAcceptsAtPeakRejectsBelow) {
  const auto corpus = testing::small_tree_corpus(kCorpusSize, kMaxNodes, 77);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const Tree& tree = corpus[i];
    const MinMemResult mm = minmem_optimal(tree);
    EXPECT_TRUE(check_in_core(tree, mm.order, mm.peak).feasible)
        << "corpus instance " << i;
    if (mm.peak > 0) {
      // No traversal fits below the optimum, so in particular this one.
      EXPECT_FALSE(check_in_core(tree, mm.order, mm.peak - 1).feasible)
          << "corpus instance " << i;
    }
  }
}

TEST(MinMemProperty, InTreeDualityOnCorpus) {
  const auto corpus = testing::small_tree_corpus(kCorpusSize, kMaxNodes, 123);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const Tree& tree = corpus[i];
    const MinMemResult mm = minmem_optimal(tree);
    // Section III-C: reversing an out-tree traversal gives an in-tree
    // traversal with the identical peak.
    EXPECT_EQ(in_tree_traversal_peak(tree, reverse_traversal(mm.order)),
              mm.peak)
        << "corpus instance " << i;
  }
}

}  // namespace
}  // namespace treemem
