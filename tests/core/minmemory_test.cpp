// Cross-validation of the three MinMemory algorithms (PostOrder, LiuExact,
// MinMem) against each other, against exhaustive search, and against the
// closed forms of Theorem 1.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/brute_force.hpp"
#include "core/check.hpp"
#include "core/liu.hpp"
#include "core/minmem.hpp"
#include "core/postorder.hpp"
#include "test_util.hpp"
#include "tree/generators.hpp"

namespace treemem {
namespace {

using testing::seeded_random_tree;
using testing::tiny_chain;
using testing::tiny_mixed;
using testing::tiny_star;

// ---------------------------------------------------------------------------
// Hand-checked instances
// ---------------------------------------------------------------------------

TEST(MinMemoryHand, SingleNode) {
  TreeBuilder b;
  b.add_root(7, 3);
  const Tree tree = std::move(b).build();
  EXPECT_EQ(best_postorder(tree).peak, 10);
  EXPECT_EQ(liu_optimal(tree).peak, 10);
  EXPECT_EQ(minmem_optimal(tree).peak, 10);
}

TEST(MinMemoryHand, SingleNodeNegativeWork) {
  // f=5, n=-5: the transient demand is zero but the file itself must fit.
  Tree tree({kNoNode}, {5}, {-5});
  EXPECT_EQ(best_postorder(tree).peak, 5);
  EXPECT_EQ(liu_optimal(tree).peak, 5);
  EXPECT_EQ(minmem_optimal(tree).peak, 5);
  EXPECT_EQ(brute_force_min_memory(tree), 5);
}

TEST(MinMemoryHand, Chain) {
  // Chain with constant f=3, n=2: every step holds exactly one file plus
  // its successor, so the peak is MemReq = 3+2+3 = 8 (leaf: 5).
  const Tree tree = tiny_chain();
  EXPECT_EQ(tree.max_mem_req(), 8);
  EXPECT_EQ(best_postorder(tree).peak, 8);
  EXPECT_EQ(liu_optimal(tree).peak, 8);
  EXPECT_EQ(minmem_optimal(tree).peak, 8);
}

TEST(MinMemoryHand, StarIsMemReqBound) {
  // Executing the root materializes all leaf files at once: no traversal
  // can beat MemReq(root) = 0 + 1 + 4*5 = 21.
  const Tree tree = tiny_star();
  EXPECT_EQ(tree.max_mem_req(), 21);
  EXPECT_EQ(liu_optimal(tree).peak, 21);
  EXPECT_EQ(minmem_optimal(tree).peak, 21);
  EXPECT_EQ(best_postorder(tree).peak, 21);
}

TEST(MinMemoryHand, MixedTreeMatchesBruteForce) {
  const Tree tree = tiny_mixed();
  const Weight expected = brute_force_min_memory(tree);
  EXPECT_EQ(liu_optimal(tree).peak, expected);
  EXPECT_EQ(minmem_optimal(tree).peak, expected);
  EXPECT_GE(best_postorder(tree).peak, expected);
}

// ---------------------------------------------------------------------------
// Theorem 1: harpoon closed forms
// ---------------------------------------------------------------------------

struct HarpoonCase {
  NodeId branches;
  NodeId levels;
  Weight big;
  Weight eps;
};

class HarpoonFormulas : public ::testing::TestWithParam<HarpoonCase> {};

TEST_P(HarpoonFormulas, ClosedForms) {
  const auto [b, levels, big, eps] = GetParam();
  const Tree tree = gen::iterated_harpoon(b, levels, big, eps);

  const Weight expected_postorder =
      big + eps + static_cast<Weight>(levels) * (b - 1) * (big / b);
  const Weight expected_optimal =
      big + eps + static_cast<Weight>(levels) * (b - 1) * eps;

  EXPECT_EQ(best_postorder(tree).peak, expected_postorder)
      << "b=" << b << " L=" << levels;
  EXPECT_EQ(liu_optimal(tree).peak, expected_optimal);
  EXPECT_EQ(minmem_optimal(tree).peak, expected_optimal);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HarpoonFormulas,
    ::testing::Values(HarpoonCase{2, 1, 1000, 2}, HarpoonCase{2, 2, 1000, 2},
                      HarpoonCase{2, 5, 1000, 2}, HarpoonCase{3, 1, 900, 5},
                      HarpoonCase{3, 3, 900, 5}, HarpoonCase{4, 2, 1000, 1},
                      HarpoonCase{4, 4, 1000, 1}, HarpoonCase{5, 3, 1000, 3},
                      HarpoonCase{8, 2, 8000, 7}));

TEST(HarpoonTheorem, RatioGrowsWithLevels) {
  // Theorem 1: for any K there is an L with ratio > K. Check monotone
  // growth and that it crosses 3x within a few levels.
  double last_ratio = 0.0;
  for (NodeId levels = 1; levels <= 8; ++levels) {
    const Tree tree = gen::iterated_harpoon(4, levels, 1000, 1);
    const double ratio =
        static_cast<double>(best_postorder(tree).peak) /
        static_cast<double>(liu_optimal(tree).peak);
    EXPECT_GT(ratio, last_ratio);
    last_ratio = ratio;
  }
  EXPECT_GT(last_ratio, 3.0);
}

// ---------------------------------------------------------------------------
// Exhaustive validation sweeps on random trees
// ---------------------------------------------------------------------------

class SmallRandomTrees : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SmallRandomTrees, OptimalAlgorithmsMatchBruteForce) {
  const std::uint64_t seed = GetParam();
  for (NodeId size = 2; size <= 9; ++size) {
    const Tree tree = seeded_random_tree(seed * 131 + size, size);
    const Weight expected = brute_force_min_memory(tree);
    EXPECT_EQ(liu_optimal(tree).peak, expected)
        << "Liu mismatch, seed=" << seed << " size=" << size;
    EXPECT_EQ(minmem_optimal(tree).peak, expected)
        << "MinMem mismatch, seed=" << seed << " size=" << size;
    EXPECT_GE(best_postorder(tree).peak, expected);
  }
}

TEST_P(SmallRandomTrees, PostOrderMatchesEnumeration) {
  const std::uint64_t seed = GetParam();
  for (NodeId size = 2; size <= 10; ++size) {
    const Tree tree = seeded_random_tree(seed * 733 + size, size);
    EXPECT_EQ(best_postorder(tree).peak, brute_force_best_postorder(tree))
        << "seed=" << seed << " size=" << size;
  }
}

TEST_P(SmallRandomTrees, ProducedTraversalsAreValidAndAttainPeaks) {
  const std::uint64_t seed = GetParam();
  for (NodeId size = 2; size <= 24; size += 3) {
    const Tree tree = seeded_random_tree(seed * 977 + size, size);

    const TraversalResult po = best_postorder(tree);
    EXPECT_EQ(traversal_peak(tree, po.order), po.peak);

    const TraversalResult liu = liu_optimal(tree);
    EXPECT_EQ(traversal_peak(tree, liu.order), liu.peak);

    const MinMemResult mm = minmem_optimal(tree);
    EXPECT_EQ(traversal_peak(tree, mm.order), mm.peak);

    // Algorithm 1 accepts each traversal exactly at its peak and rejects
    // one unit below.
    EXPECT_TRUE(check_in_core(tree, liu.order, liu.peak).feasible);
    EXPECT_FALSE(check_in_core(tree, liu.order, liu.peak - 1).feasible);
  }
}

TEST_P(SmallRandomTrees, LiuMergeStrategiesAgree) {
  const std::uint64_t seed = GetParam();
  for (NodeId size = 2; size <= 40; size += 7) {
    const Tree tree = seeded_random_tree(seed * 389 + size, size);
    EXPECT_EQ(liu_optimal_peak(tree, LiuMergeStrategy::kHeap),
              liu_optimal_peak(tree, LiuMergeStrategy::kStableSort));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmallRandomTrees,
                         ::testing::Range<std::uint64_t>(1, 26));

// ---------------------------------------------------------------------------
// Medium random trees: Liu and MinMem must agree (both claim optimality)
// ---------------------------------------------------------------------------

class MediumRandomTrees : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MediumRandomTrees, LiuEqualsMinMem) {
  const std::uint64_t seed = GetParam();
  for (const NodeId size : {50, 200, 800}) {
    const Tree tree = seeded_random_tree(seed * 3571 + size, size);
    const TraversalResult liu = liu_optimal(tree);
    const MinMemResult mm = minmem_optimal(tree);
    ASSERT_EQ(liu.peak, mm.peak) << "seed=" << seed << " size=" << size;
    EXPECT_EQ(traversal_peak(tree, liu.order), liu.peak);
    EXPECT_EQ(traversal_peak(tree, mm.order), mm.peak);
    EXPECT_LE(liu.peak, best_postorder(tree).peak);
  }
}

TEST_P(MediumRandomTrees, WarmStartMatchesColdStart) {
  const std::uint64_t seed = GetParam();
  const Tree tree = seeded_random_tree(seed * 911, 300);
  MinMemOptions cold;
  cold.warm_start = false;
  const MinMemResult warm = minmem_optimal(tree);
  const MinMemResult rerun = minmem_optimal(tree, cold);
  EXPECT_EQ(warm.peak, rerun.peak);
  EXPECT_EQ(traversal_peak(tree, rerun.order), rerun.peak);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MediumRandomTrees,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// Structured families
// ---------------------------------------------------------------------------

TEST(MinMemoryStructured, DeepChainDoesNotOverflowStack) {
  // AddressSanitizer pads every frame with redzones, so the same recursion
  // depth needs several times the stack; scale the chain down under ASan
  // (the no-native-stack-overflow property is exercised either way).
#ifdef TREEMEM_ASAN
  const NodeId depth = 30000;
#else
  const NodeId depth = 200000;
#endif
  const Tree tree = gen::chain(depth, 2, 1);
  EXPECT_EQ(minmem_optimal(tree).peak, 5);  // f+n+f_child = 2+1+2
  EXPECT_EQ(liu_optimal_peak(tree), 5);
  EXPECT_EQ(best_postorder_peak(tree), 5);
}

TEST(MinMemoryStructured, CompleteBinaryTree) {
  const Tree tree = gen::complete_kary(2, 10, 4, 1);  // 1023 nodes
  const TraversalResult liu = liu_optimal(tree);
  const MinMemResult mm = minmem_optimal(tree);
  EXPECT_EQ(liu.peak, mm.peak);
  EXPECT_LE(liu.peak, best_postorder(tree).peak);
  EXPECT_EQ(traversal_peak(tree, liu.order), liu.peak);
}

TEST(MinMemoryStructured, CaterpillarFamilies) {
  for (const NodeId legs : {1, 3, 8}) {
    const Tree tree = gen::caterpillar(40, legs, 5, 2, 1);
    const TraversalResult liu = liu_optimal(tree);
    const MinMemResult mm = minmem_optimal(tree);
    EXPECT_EQ(liu.peak, mm.peak) << "legs=" << legs;
  }
}

TEST(MinMemoryStructured, ExploreReportsCutAndPeak) {
  const Tree tree = tiny_mixed();
  // max_mem_req = 11 executes the root only: node 1 needs local budget 6
  // (has 5), node 2 needs 11 (has 7). The cut stays at the root's children
  // with footprint f_1 + f_2 = 10.
  const ExploreResult res =
      explore_subtree(tree, tree.root(), tree.max_mem_req());
  EXPECT_EQ(res.order, Traversal{tree.root()});
  EXPECT_EQ(res.cut.size(), 2u);
  EXPECT_EQ(res.min_mem, 10);
  // Entering node 1 needs 6 while holding f_2 = 6 -> peak 12.
  EXPECT_EQ(res.peak, 12);
}

TEST(MinMemoryStructured, ExploreRejectsUnexecutableRoot) {
  const Tree tree = tiny_star();  // MemReq(root) = 21
  const ExploreResult res = explore_subtree(tree, tree.root(), 20);
  EXPECT_EQ(res.min_mem, kInfiniteWeight);
  EXPECT_EQ(res.peak, 21);
  EXPECT_TRUE(res.order.empty());
}

}  // namespace
}  // namespace treemem
