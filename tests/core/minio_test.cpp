// Tests for the MinIO machinery: the six eviction heuristics, the exact
// branch-and-bound solvers, the divisible lower bound, and the Theorem 2
// 2-Partition gadget.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/check.hpp"
#include "core/liu.hpp"
#include "core/minio.hpp"
#include "core/minio_exact.hpp"
#include "core/minmem.hpp"
#include "core/postorder.hpp"
#include "test_util.hpp"
#include "tree/generators.hpp"

namespace treemem {
namespace {

using testing::seeded_random_tree;
using testing::tiny_mixed;

// ---------------------------------------------------------------------------
// Simulator basics
// ---------------------------------------------------------------------------

TEST(MinIoHeuristic, NoIoWhenMemorySuffices) {
  const Tree tree = tiny_mixed();
  const TraversalResult opt = liu_optimal(tree);
  for (const EvictionPolicy policy : all_eviction_policies()) {
    const MinIoResult res = minio_heuristic(tree, opt.order, opt.peak, policy);
    ASSERT_TRUE(res.feasible) << to_string(policy);
    EXPECT_EQ(res.io_volume, 0) << to_string(policy);
    EXPECT_TRUE(res.schedule.writes.empty()) << to_string(policy);
  }
}

TEST(MinIoHeuristic, InfeasibleBelowMaxMemReq) {
  const Tree tree = tiny_mixed();
  const TraversalResult opt = liu_optimal(tree);
  const MinIoResult res = minio_heuristic(
      tree, opt.order, tree.max_mem_req() - 1, EvictionPolicy::kLsnf);
  EXPECT_FALSE(res.feasible);
}

TEST(MinIoHeuristic, KnownEvictionOnMixedTree) {
  const Tree tree = tiny_mixed();
  // Order {0,2,4,1,3} peaks at 15 (executing node 2 with f_1 resident).
  // With M = 14, one unit must leave: the only resident candidate is f_1=4.
  const Traversal order{0, 2, 4, 1, 3};
  for (const EvictionPolicy policy : all_eviction_policies()) {
    const MinIoResult res = minio_heuristic(tree, order, 14, policy);
    ASSERT_TRUE(res.feasible) << to_string(policy);
    EXPECT_EQ(res.io_volume, 4) << to_string(policy);
    const CheckResult check = check_out_of_core(tree, res.schedule, 14);
    ASSERT_TRUE(check.feasible) << to_string(policy) << ": " << check.reason;
    EXPECT_EQ(check.io_volume, res.io_volume);
  }
}

// ---------------------------------------------------------------------------
// Every heuristic always emits a schedule Algorithm 2 accepts, with the
// volume it claims; and IO decreases (weakly) as memory grows.
// ---------------------------------------------------------------------------

class HeuristicSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, EvictionPolicy>> {};

TEST_P(HeuristicSweep, SchedulesValidateAndRespectBounds) {
  const auto [seed, policy] = GetParam();
  for (NodeId size = 4; size <= 40; size += 9) {
    const Tree tree = seeded_random_tree(seed * 1543 + size, size);
    const TraversalResult opt = liu_optimal(tree);
    const Weight lo = std::max(tree.max_mem_req(), tree.file_size(tree.root()));
    if (lo >= opt.peak) {
      continue;  // no out-of-core regime for this instance
    }
    for (int step = 0; step <= 4; ++step) {
      const Weight memory = lo + (opt.peak - lo) * step / 4;
      const MinIoResult res = minio_heuristic(tree, opt.order, memory, policy);
      ASSERT_TRUE(res.feasible);
      const CheckResult check = check_out_of_core(tree, res.schedule, memory);
      ASSERT_TRUE(check.feasible)
          << to_string(policy) << " seed=" << seed << " size=" << size
          << " M=" << memory << ": " << check.reason;
      EXPECT_EQ(check.io_volume, res.io_volume);
      // The divisible relaxation bounds every integral schedule from below.
      EXPECT_GE(res.io_volume,
                divisible_io_lower_bound(tree, opt.order, memory));
      if (memory >= opt.peak) {
        EXPECT_EQ(res.io_volume, 0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, HeuristicSweep,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 11),
                       ::testing::ValuesIn(all_eviction_policies())),
    [](const auto& info) {
      return std::string(to_string(std::get<1>(info.param))) + "_seed" +
             std::to_string(std::get<0>(info.param));
    });

// ---------------------------------------------------------------------------
// Exact solvers vs heuristics on tiny trees
// ---------------------------------------------------------------------------

class ExactMinIoSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactMinIoSweep, HeuristicsNeverBeatExactAndBoundsHold) {
  const std::uint64_t seed = GetParam();
  for (NodeId size = 4; size <= 10; size += 2) {
    const Tree tree = seeded_random_tree(seed * 3301 + size, size);
    const TraversalResult opt = liu_optimal(tree);
    const Weight lo = std::max(tree.max_mem_req(), tree.file_size(tree.root()));
    if (lo >= opt.peak) {
      continue;
    }
    const Weight memory = (lo + opt.peak) / 2;
    const Weight exact_fixed = exact_minio_fixed_order(tree, opt.order, memory);
    const Weight exact_any = exact_minio(tree, memory);
    const Weight divisible = divisible_io_lower_bound(tree, opt.order, memory);

    ASSERT_LT(exact_fixed, kInfiniteWeight);
    EXPECT_LE(exact_any, exact_fixed);  // freedom of order can only help
    EXPECT_LE(divisible, exact_fixed);  // relaxation bound

    for (const EvictionPolicy policy : all_eviction_policies()) {
      const MinIoResult res = minio_heuristic(tree, opt.order, memory, policy);
      ASSERT_TRUE(res.feasible);
      EXPECT_GE(res.io_volume, exact_fixed)
          << to_string(policy) << " seed=" << seed << " size=" << size;
    }
  }
}

TEST_P(ExactMinIoSweep, UnitFilesMakeLsnfOptimal) {
  // With unit-size files MinIO degenerates to the classical paging problem
  // for which evict-farthest-next-use (Belady / LSNF) is optimal.
  const std::uint64_t seed = GetParam();
  for (NodeId size = 5; size <= 10; ++size) {
    Prng prng(seed * 7877 + static_cast<std::uint64_t>(size));
    gen::RandomTreeOptions options;
    options.chain_bias = 0.3;
    options.min_file = 1;
    options.max_file = 1;
    options.min_work = 0;
    options.max_work = 0;
    const Tree tree = gen::random_tree(size, options, prng);
    const TraversalResult opt = liu_optimal(tree);
    const Weight lo = tree.max_mem_req();
    if (lo >= opt.peak) {
      continue;
    }
    for (Weight memory = lo; memory < opt.peak; ++memory) {
      const Weight exact = exact_minio_fixed_order(tree, opt.order, memory);
      const MinIoResult lsnf =
          minio_heuristic(tree, opt.order, memory, EvictionPolicy::kLsnf);
      EXPECT_EQ(lsnf.io_volume, exact) << "seed=" << seed << " size=" << size
                                       << " M=" << memory;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactMinIoSweep,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Theorem 2: the 2-Partition gadget
// ---------------------------------------------------------------------------

TEST(TwoPartitionGadget, StructureAndMemory) {
  const std::vector<Weight> values{3, 5, 2, 4, 6};  // S = 20
  const Tree tree = gen::two_partition_gadget(values);
  EXPECT_EQ(tree.size(), 2 * 5 + 3);
  EXPECT_EQ(gen::two_partition_gadget_memory(values), 40);
  EXPECT_EQ(gen::two_partition_gadget_io_bound(values), 10);
  // The root is the largest requirement (the paper sets M to exactly it).
  EXPECT_EQ(tree.max_mem_req(), 40);
  EXPECT_EQ(tree.mem_req(tree.root()), 40);
}

TEST(TwoPartitionGadget, YesInstanceAchievesBound) {
  // {3,5,2,4,6}: S/2 = 10 = 4+6 — a yes instance.
  const std::vector<Weight> values{3, 5, 2, 4, 6};
  const Tree tree = gen::two_partition_gadget(values);
  const Weight memory = gen::two_partition_gadget_memory(values);
  const Weight io = exact_minio(tree, memory);
  EXPECT_EQ(io, gen::two_partition_gadget_io_bound(values));
}

TEST(TwoPartitionGadget, AnotherYesInstance) {
  const std::vector<Weight> values{1, 1, 1, 1};  // S/2 = 2 = 1+1
  const Tree tree = gen::two_partition_gadget(values);
  EXPECT_EQ(exact_minio(tree, gen::two_partition_gadget_memory(values)),
            gen::two_partition_gadget_io_bound(values));
}

TEST(TwoPartitionGadget, NoInstanceExceedsBound) {
  // {3,3,5,3}: S = 14, S/2 = 7; subsets sum to 3,5,6,8,9,11 — never 7.
  const std::vector<Weight> values{3, 3, 5, 3};
  const Tree tree = gen::two_partition_gadget(values);
  const Weight memory = gen::two_partition_gadget_memory(values);
  const Weight io = exact_minio(tree, memory);
  EXPECT_GT(io, gen::two_partition_gadget_io_bound(values));
}

TEST(TwoPartitionGadget, HeuristicsAreFeasibleOnGadget) {
  const std::vector<Weight> values{3, 5, 2, 4, 6};
  const Tree tree = gen::two_partition_gadget(values);
  const Weight memory = gen::two_partition_gadget_memory(values);
  const TraversalResult po = best_postorder(tree);
  for (const EvictionPolicy policy : all_eviction_policies()) {
    const MinIoResult res = minio_heuristic(tree, po.order, memory, policy);
    ASSERT_TRUE(res.feasible) << to_string(policy);
    const CheckResult check = check_out_of_core(tree, res.schedule, memory);
    EXPECT_TRUE(check.feasible) << check.reason;
    EXPECT_GE(res.io_volume, gen::two_partition_gadget_io_bound(values));
  }
}

// ---------------------------------------------------------------------------
// Policy-specific behaviours
// ---------------------------------------------------------------------------

TEST(PolicyBehaviour, FirstFitPrefersOneLargeFile) {
  // Resident files (farthest first): sizes 2, 2, 7. Need 5: FirstFit should
  // write the single 7; LSNF writes 2+2+7 = 11 (2,2 then still short by 1).
  TreeBuilder b;
  const NodeId root = b.add_root(0, 0);
  const NodeId a = b.add_child(root, 2, 0);  // id 1
  const NodeId c = b.add_child(root, 2, 0);  // id 2
  const NodeId d = b.add_child(root, 7, 0);  // id 3
  const NodeId e = b.add_child(root, 6, 0);  // id 4: the trigger
  b.add_child(a, 1, 0);                      // id 5
  b.add_child(c, 1, 0);                      // id 6
  b.add_child(d, 1, 0);                      // id 7
  b.add_child(e, 6, 0);                      // id 8: forces MemReq(e)=12
  const Tree tree = std::move(b).build();
  // Order: root, then e (requires 6+0+6=12 while 2+2+7 resident), then the
  // rest — farthest next use must rank {1,2,3} ahead.
  const Traversal order{0, 4, 8, 3, 7, 2, 6, 1, 5};
  const Weight memory = 2 + 2 + 7 + 12 - 5;  // need = 5 at step 1

  const MinIoResult ff =
      minio_heuristic(tree, order, memory, EvictionPolicy::kFirstFit);
  ASSERT_TRUE(ff.feasible);
  EXPECT_EQ(ff.io_volume, 7);
  EXPECT_EQ(ff.files_written, 1);

  const MinIoResult lsnf =
      minio_heuristic(tree, order, memory, EvictionPolicy::kLsnf);
  ASSERT_TRUE(lsnf.feasible);
  // LSNF takes farthest-use files until covered. Farthest next use among
  // {1,2,3} at step 1: node 1 (used at step 7), node 2 (step 5), node 3
  // (step 3) -> takes f_1=2, f_2=2, f_3=7.
  EXPECT_EQ(lsnf.io_volume, 11);

  const MinIoResult bestfit =
      minio_heuristic(tree, order, memory, EvictionPolicy::kBestFit);
  ASSERT_TRUE(bestfit.feasible);
  // Closest single file to 5 is 7 (gap 2 vs gap 3 for the 2s).
  EXPECT_EQ(bestfit.io_volume, 7);

  const MinIoResult bestfill =
      minio_heuristic(tree, order, memory, EvictionPolicy::kBestFill);
  ASSERT_TRUE(bestfill.feasible);
  // Largest files strictly below the need: 2, then need=3: 2, then need=1:
  // nothing below 1 -> LSNF fallback takes farthest remaining (7).
  EXPECT_EQ(bestfill.io_volume, 11);

  const MinIoResult bestk =
      minio_heuristic(tree, order, memory, EvictionPolicy::kBestKCombination);
  ASSERT_TRUE(bestk.feasible);
  // Subsets of {2,2,7}: closest to 5 is 2+2=4? gap 1; {7} gap 2; {2,2,7}=11.
  // 4 < 5 so a second round picks the best for need=1: {2}? taken; window
  // now {7}: writes 7. Total 4 + 7 = 11. (Documented tie-break behaviour.)
  EXPECT_EQ(bestk.io_volume, 11);
}

TEST(PolicyBehaviour, BestKWindowRespectsK) {
  MinIoOptions narrow;
  narrow.best_k = 1;  // degenerates to LSNF
  const Tree tree = tiny_mixed();
  const Traversal order{0, 2, 4, 1, 3};
  const MinIoResult res = minio_heuristic(
      tree, order, 14, EvictionPolicy::kBestKCombination, narrow);
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(res.io_volume, 4);
}

TEST(PolicyBehaviour, DivisibleBoundTightOnFractionalNeed) {
  // Divisible LSNF evicts exactly `need`, integral policies at least one
  // whole file.
  const Tree tree = tiny_mixed();
  const Traversal order{0, 2, 4, 1, 3};  // peak 15
  EXPECT_EQ(divisible_io_lower_bound(tree, order, 15), 0);
  EXPECT_EQ(divisible_io_lower_bound(tree, order, 14), 1);
  EXPECT_EQ(divisible_io_lower_bound(tree, order, 12), 3);
}

}  // namespace
}  // namespace treemem
