// Tests for the Section III-C model variants: the replacement-model and
// Liu-model reductions are validated by simulating both sides of each
// reduction on the same traversals, and the pebble-game specialization is
// checked against the classical Sethi–Ullman numbers.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/brute_force.hpp"
#include "core/check.hpp"
#include "core/liu.hpp"
#include "core/minmem.hpp"
#include "core/pebble.hpp"
#include "core/postorder.hpp"
#include "core/variants.hpp"
#include "test_util.hpp"
#include "tree/generators.hpp"

namespace treemem {
namespace {

using testing::seeded_random_tree;

// ---------------------------------------------------------------------------
// Replacement model (Fig. 1)
// ---------------------------------------------------------------------------

TEST(ReplacementModel, TransformMatchesFigureOne) {
  // Fig. 1: node E with f=1 and children of sizes 1 and 2 gets n = -1 in
  // the transformed instance.
  TreeBuilder b;
  const NodeId e = b.add_root(1, 0);
  b.add_child(e, 1, 0);
  b.add_child(e, 2, 0);
  const Tree transformed = replacement_transform(std::move(b).build());
  EXPECT_EQ(transformed.work_size(e), -1);  // -min(f=1, children=3)
  EXPECT_EQ(transformed.mem_req(e), 1 - 1 + 3);  // max(f, children) = 3
}

class ReplacementSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReplacementSweep, TransformPreservesEveryTraversalPeak) {
  const std::uint64_t seed = GetParam();
  for (NodeId size = 2; size <= 8; ++size) {
    const Tree tree = seeded_random_tree(seed * 691 + size, size);
    const Tree transformed = replacement_transform(tree);
    for (const Traversal& order : all_traversals(tree)) {
      EXPECT_EQ(replacement_model_peak(tree, order),
                traversal_peak(transformed, order))
          << "seed=" << seed << " size=" << size;
    }
  }
}

TEST_P(ReplacementSweep, OptimalAlgorithmsAgreeOnTransformedInstances) {
  const std::uint64_t seed = GetParam();
  for (NodeId size = 3; size <= 9; ++size) {
    const Tree transformed =
        replacement_transform(seeded_random_tree(seed * 827 + size, size));
    const Weight expected = brute_force_min_memory(transformed);
    EXPECT_EQ(liu_optimal(transformed).peak, expected);
    EXPECT_EQ(minmem_optimal(transformed).peak, expected);
    EXPECT_GE(best_postorder(transformed).peak, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplacementSweep,
                         ::testing::Range<std::uint64_t>(1, 11));

// ---------------------------------------------------------------------------
// Liu's (x+, x-) model (Fig. 2)
// ---------------------------------------------------------------------------

LiuModelInstance random_liu_instance(std::uint64_t seed, NodeId size) {
  Prng prng(seed);
  gen::RandomTreeOptions options;
  const Tree shape = gen::random_tree(size, options, prng);
  LiuModelInstance instance;
  instance.parent = shape.parents();
  instance.n_minus.resize(static_cast<std::size_t>(size));
  instance.n_plus.resize(static_cast<std::size_t>(size));
  // Draw n_minus first, then n_plus >= sum of children storage (validity).
  for (NodeId u = 0; u < size; ++u) {
    instance.n_minus[static_cast<std::size_t>(u)] = prng.uniform_int(1, 30);
  }
  for (NodeId u = 0; u < size; ++u) {
    Weight child_storage = 0;
    for (const NodeId c : shape.children(u)) {
      child_storage += instance.n_minus[static_cast<std::size_t>(c)];
    }
    instance.n_plus[static_cast<std::size_t>(u)] =
        child_storage + prng.uniform_int(0, 40);
  }
  return instance;
}

class LiuModelSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LiuModelSweep, ReductionPreservesBottomUpPeaks) {
  const std::uint64_t seed = GetParam();
  for (NodeId size = 2; size <= 8; ++size) {
    const LiuModelInstance instance = random_liu_instance(seed * 409 + size, size);
    const Tree reduced = from_liu_model(instance);
    for (const Traversal& order : all_traversals(reduced)) {
      // Bottom-up order for the in-tree reading = reverse of the out-tree
      // traversal; its Liu-model peak must equal the base-model in-tree peak.
      const Traversal bottom_up = reverse_traversal(order);
      EXPECT_EQ(liu_model_peak(instance, bottom_up),
                in_tree_traversal_peak(reduced, bottom_up))
          << "seed=" << seed << " size=" << size;
    }
  }
}

TEST_P(LiuModelSweep, FigureTwoStyleValidation) {
  const std::uint64_t seed = GetParam();
  const LiuModelInstance instance = random_liu_instance(seed * 6007, 7);
  const Tree reduced = from_liu_model(instance);
  // The reduction defines f = n_minus exactly.
  for (NodeId u = 0; u < reduced.size(); ++u) {
    EXPECT_EQ(reduced.file_size(u),
              instance.n_minus[static_cast<std::size_t>(u)]);
  }
  // Optimal memory in the reduced instance is the optimal Liu-model memory:
  // check by brute force over all orders.
  Weight best_direct = kInfiniteWeight;
  for (const Traversal& order : all_traversals(reduced)) {
    best_direct = std::min(
        best_direct, liu_model_peak(instance, reverse_traversal(order)));
  }
  EXPECT_EQ(liu_optimal(reduced).peak, best_direct);
}

TEST(LiuModel, RejectsInvalidInstances) {
  LiuModelInstance bad;
  bad.parent = {kNoNode, 0};
  bad.n_minus = {1, 5};
  bad.n_plus = {3, 5};  // root n_plus(0)=3 < child storage 5
  EXPECT_THROW(from_liu_model(bad), Error);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LiuModelSweep,
                         ::testing::Range<std::uint64_t>(1, 11));

// ---------------------------------------------------------------------------
// Pebble game / Sethi–Ullman correspondence
// ---------------------------------------------------------------------------

TEST(PebbleGame, ChainNeedsOneRegister) {
  const Tree chain = gen::chain(10, 3, 1);
  EXPECT_EQ(sethi_ullman_number(chain), 1);
}

TEST(PebbleGame, BalancedBinaryTreeIsLogDepth) {
  // A complete binary tree of depth d needs d+1 registers.
  for (NodeId levels = 1; levels <= 6; ++levels) {
    const Tree tree = gen::complete_kary(2, levels, 1, 0);
    EXPECT_EQ(sethi_ullman_number(tree), levels);
  }
}

TEST(PebbleGame, StarNeedsAllOperands) {
  const Tree star = gen::star(6, 1, 0);
  EXPECT_EQ(sethi_ullman_number(star), 6);
}

class PebbleSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PebbleSweep, OptimalReplacementPebblingEqualsSethiUllman) {
  // The classical correspondence: on unit-file trees, optimal memory in the
  // replacement model equals the Sethi–Ullman register number.
  const std::uint64_t seed = GetParam();
  for (NodeId size = 2; size <= 40; size += 5) {
    const Tree shape = seeded_random_tree(seed * 1201 + size, size);
    const Tree unit = make_unit_tree(shape);
    const Tree game = replacement_transform(unit);
    EXPECT_EQ(liu_optimal(game).peak, sethi_ullman_number(shape))
        << "seed=" << seed << " size=" << size;
    EXPECT_EQ(minmem_optimal(game).peak, sethi_ullman_number(shape));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PebbleSweep,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace treemem
