// MinIO regression tests on the shared small-tree corpus, covering both the
// in-core-feasible regime (no writes needed) and the forced-swap regime
// (max MemReq <= M < optimal peak, where every schedule must evict).
//
// The load-bearing relations:
//   * every heuristic schedule passes Algorithm 2 with the volume it claims;
//   * the best of the six eviction policies equals the exact per-traversal
//     DP (exact_minio_fixed_order) on this corpus — a golden equality the
//     deterministic corpus keeps reproducible;
//   * the library's traversal x policy candidate sweep never loses to the
//     postorder-only sweep, and never beats the global exact optimum;
//   * the global exact optimum is 0 exactly when M reaches the MinMemory
//     value (Section V ties the two problems together this way).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/check.hpp"
#include "core/liu.hpp"
#include "core/minio.hpp"
#include "core/minio_exact.hpp"
#include "core/minmem.hpp"
#include "core/planner.hpp"
#include "core/postorder.hpp"
#include "test_util.hpp"
#include "tree/tree.hpp"

namespace treemem {
namespace {

constexpr int kCorpusSize = 200;
constexpr NodeId kMaxNodes = 10;  // exact_minio explores 2^p states

/// Least I/O over the six eviction policies for this traversal, asserting
/// along the way that each feasible schedule validates under Algorithm 2.
Weight best_policy_io(const Tree& tree, const Traversal& order, Weight memory) {
  Weight best = kInfiniteWeight;
  for (const EvictionPolicy policy : all_eviction_policies()) {
    const MinIoResult res = minio_heuristic(tree, order, memory, policy);
    if (!res.feasible) {
      continue;
    }
    const CheckResult check = check_out_of_core(tree, res.schedule, memory);
    EXPECT_TRUE(check.feasible) << to_string(policy) << ": " << check.reason;
    EXPECT_EQ(check.io_volume, res.io_volume) << to_string(policy);
    best = std::min(best, res.io_volume);
  }
  return best;
}

/// Forced-swap budgets for this tree: a few points in [max MemReq, peak).
std::vector<Weight> swap_budgets(const Tree& tree, Weight optimal_peak) {
  const Weight lo = tree.max_mem_req();
  std::vector<Weight> budgets;
  if (lo >= optimal_peak) {
    return budgets;  // every budget that admits the tree is in-core feasible
  }
  for (int step = 0; step < 3; ++step) {
    budgets.push_back(lo + (optimal_peak - 1 - lo) * step / 2);
  }
  budgets.erase(std::unique(budgets.begin(), budgets.end()), budgets.end());
  return budgets;
}

TEST(MinIoProperty, BestPolicyMatchesExactFixedOrderDp) {
  const auto corpus = testing::small_tree_corpus(kCorpusSize, kMaxNodes);
  int swap_points = 0;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const Tree& tree = corpus[i];
    const Weight optimal_peak = minmem_optimal(tree).peak;
    for (const Weight memory : swap_budgets(tree, optimal_peak)) {
      for (const Traversal& order :
           {best_postorder(tree).order, liu_optimal(tree).order}) {
        const Weight exact = exact_minio_fixed_order(tree, order, memory);
        EXPECT_EQ(best_policy_io(tree, order, memory), exact)
            << "corpus instance " << i << " memory " << memory;
        EXPECT_GE(exact, divisible_io_lower_bound(tree, order, memory))
            << "corpus instance " << i << " memory " << memory;
        ++swap_points;
      }
    }
  }
  // The corpus must actually exercise the forced-swap regime.
  EXPECT_GT(swap_points, 100);
}

TEST(MinIoProperty, PlannerSweepNeverLosesToPostorderOnly) {
  const auto corpus = testing::small_tree_corpus(kCorpusSize, kMaxNodes);
  PlannerOptions options;
  options.try_best_k = true;
  options.try_lsnf = true;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const Tree& tree = corpus[i];
    const Weight optimal_peak = minmem_optimal(tree).peak;
    const Traversal postorder = best_postorder(tree).order;
    for (const Weight memory : swap_budgets(tree, optimal_peak)) {
      const ExecutionPlan plan = plan_execution(tree, memory, options);
      ASSERT_TRUE(plan.feasible)
          << "corpus instance " << i << " memory " << memory;
      const CheckResult check =
          check_out_of_core(tree, plan.schedule, memory);
      EXPECT_TRUE(check.feasible) << "corpus instance " << i << " memory "
                                  << memory << ": " << check.reason;
      EXPECT_EQ(check.io_volume, plan.io_volume)
          << "corpus instance " << i << " memory " << memory;
      // The planner's traversal x policy sweep includes the postorder
      // candidates, so it can never do worse than postorder alone under
      // the same policies...
      Weight postorder_io = kInfiniteWeight;
      for (const EvictionPolicy policy :
           {EvictionPolicy::kBestKCombination, EvictionPolicy::kLsnf}) {
        const MinIoResult res = minio_heuristic(tree, postorder, memory, policy);
        if (res.feasible) {
          postorder_io = std::min(postorder_io, res.io_volume);
        }
      }
      EXPECT_LE(plan.io_volume, postorder_io)
          << "corpus instance " << i << " memory " << memory;
      // ...and never better than the global exact optimum, which is
      // strictly positive below the MinMemory value.
      const Weight global_exact = exact_minio(tree, memory);
      EXPECT_GE(plan.io_volume, global_exact)
          << "corpus instance " << i << " memory " << memory;
      EXPECT_GT(global_exact, 0)
          << "corpus instance " << i << " memory " << memory
          << ": below the MinMemory value some write is unavoidable";
    }
  }
}

TEST(MinIoProperty, InCoreFeasibleRegimeWritesNothing) {
  const auto corpus = testing::small_tree_corpus(kCorpusSize, kMaxNodes, 31);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const Tree& tree = corpus[i];
    const MinMemResult mm = minmem_optimal(tree);
    EXPECT_EQ(exact_minio(tree, mm.peak), 0) << "corpus instance " << i;
    for (const EvictionPolicy policy : all_eviction_policies()) {
      const MinIoResult res = minio_heuristic(tree, mm.order, mm.peak, policy);
      ASSERT_TRUE(res.feasible) << "corpus instance " << i << " "
                                << to_string(policy);
      EXPECT_EQ(res.io_volume, 0) << "corpus instance " << i << " "
                                  << to_string(policy);
      EXPECT_TRUE(res.schedule.writes.empty())
          << "corpus instance " << i << " " << to_string(policy);
    }
  }
}

TEST(MinIoProperty, BelowMaxMemReqNothingHelps) {
  const auto corpus = testing::small_tree_corpus(kCorpusSize, kMaxNodes, 57);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const Tree& tree = corpus[i];
    const Weight memory = tree.max_mem_req() - 1;
    EXPECT_EQ(exact_minio(tree, memory), kInfiniteWeight)
        << "corpus instance " << i;
    const MinIoResult res = minio_heuristic(
        tree, liu_optimal(tree).order, memory, EvictionPolicy::kLsnf);
    EXPECT_FALSE(res.feasible) << "corpus instance " << i;
  }
}

}  // namespace
}  // namespace treemem
