// Edge-case coverage for degenerate tree shapes — single node, pure chain,
// pure star, all-zero weights, duplicated weights — across the Algorithm 1
// checker, the postorder optimizer, and the Section III-C model transforms.
// These shapes sit at the boundaries of every recurrence in the library
// (no children, one child, only-leaf children, zero file sizes, ties).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/brute_force.hpp"
#include "core/check.hpp"
#include "core/liu.hpp"
#include "core/minmem.hpp"
#include "core/pebble.hpp"
#include "core/postorder.hpp"
#include "core/variants.hpp"
#include "test_util.hpp"
#include "tree/generators.hpp"

namespace treemem {
namespace {

/// Asserts that every algorithm agrees with the exhaustive DP on `tree`
/// and that all reported orders re-simulate to their reported peaks.
void expect_all_algorithms_agree(const Tree& tree, Weight expected_peak) {
  EXPECT_EQ(brute_force_min_memory(tree), expected_peak);
  const TraversalResult post = best_postorder(tree);
  const TraversalResult liu = liu_optimal(tree);
  const MinMemResult mm = minmem_optimal(tree);
  EXPECT_EQ(post.peak, expected_peak);
  EXPECT_EQ(liu.peak, expected_peak);
  EXPECT_EQ(mm.peak, expected_peak);
  for (const Traversal& order : {post.order, liu.order, mm.order}) {
    EXPECT_EQ(traversal_peak(tree, order), expected_peak);
    const CheckResult at_peak = check_in_core(tree, order, expected_peak);
    EXPECT_TRUE(at_peak.feasible) << at_peak.reason;
    if (expected_peak > 0) {
      EXPECT_FALSE(check_in_core(tree, order, expected_peak - 1).feasible);
    }
  }
}

// ---------------------------------------------------------------------------
// Single node
// ---------------------------------------------------------------------------

TEST(DegenerateTrees, SingleNode) {
  const Tree tree({kNoNode}, {7}, {4});
  expect_all_algorithms_agree(tree, 11);
  // Algorithm 1 on the only traversal.
  EXPECT_TRUE(check_in_core(tree, {0}, 11).feasible);
  EXPECT_FALSE(check_in_core(tree, {0}, 10).feasible);
}

TEST(DegenerateTrees, SingleNodeZeroWeights) {
  const Tree tree({kNoNode}, {0}, {0});
  expect_all_algorithms_agree(tree, 0);
  EXPECT_TRUE(check_in_core(tree, {0}, 0).feasible);
}

// ---------------------------------------------------------------------------
// Pure chain: exactly one traversal exists, peak = max_i MemReq(i)
// ---------------------------------------------------------------------------

TEST(DegenerateTrees, PureChain) {
  for (NodeId p = 1; p <= 7; ++p) {
    const Tree tree = gen::chain(p, 3, 2);
    // Non-leaf nodes hold their file, work, and the single child file.
    const Weight expected = p == 1 ? 5 : 8;
    expect_all_algorithms_agree(tree, expected);
    // Any order except the unique chain order must be structurally invalid.
    if (p >= 2) {
      Traversal swapped(static_cast<std::size_t>(p));
      for (NodeId i = 0; i < p; ++i) {
        swapped[static_cast<std::size_t>(i)] = i;
      }
      std::swap(swapped[0], swapped[1]);
      EXPECT_FALSE(check_in_core(tree, swapped, kInfiniteWeight).feasible);
    }
  }
}

TEST(DegenerateTrees, ZeroFileChain) {
  // Zero-size files: only the execution files ever occupy memory.
  const Tree tree = gen::chain(6, 0, 5);
  expect_all_algorithms_agree(tree, 5);
}

// ---------------------------------------------------------------------------
// Pure star: all leaf orders are equivalent by symmetry
// ---------------------------------------------------------------------------

TEST(DegenerateTrees, PureStar) {
  for (NodeId branches = 1; branches <= 6; ++branches) {
    const Tree tree = gen::star(branches, 4, 1);
    // Executing the root materializes all leaf files at once.
    expect_all_algorithms_agree(tree, 4 * branches + 1);
  }
}

TEST(DegenerateTrees, StarWithZeroWork) {
  const Tree tree = gen::star(5, 2, 0);
  expect_all_algorithms_agree(tree, 10);
  // With zero works, exactly the leaf files must fit and M = sum suffices.
  const TraversalResult post = best_postorder(tree);
  EXPECT_TRUE(check_in_core(tree, post.order, 10).feasible);
  EXPECT_FALSE(check_in_core(tree, post.order, 9).feasible);
}

// ---------------------------------------------------------------------------
// Duplicate weights: ties in every comparator
// ---------------------------------------------------------------------------

TEST(DegenerateTrees, DuplicateWeightsCaterpillar) {
  const Tree shape = gen::caterpillar(4, 2, 5, 5, 5);
  const Weight expected = brute_force_min_memory(shape);
  expect_all_algorithms_agree(shape, expected);
}

TEST(DegenerateTrees, DuplicateWeightsRandomShapes) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Prng prng(seed * 0x51ed270b);
    const Tree shape = testing::seeded_random_tree(seed, 9);
    const Tree uniform =
        gen::with_random_weights(shape, 3, 3, 1, 1, prng);  // every f=3, n=1
    expect_all_algorithms_agree(uniform, brute_force_min_memory(uniform));
  }
}

// ---------------------------------------------------------------------------
// Variant transforms on degenerate shapes
// ---------------------------------------------------------------------------

TEST(DegenerateTrees, ReplacementTransformMatchesDirectSimulation) {
  const Tree shapes[] = {Tree({kNoNode}, {7}, {0}), gen::chain(5, 3, 0),
                         gen::star(4, 6, 0), gen::chain(4, 0, 0)};
  for (const Tree& tree : shapes) {
    const Tree reduced = replacement_transform(tree);
    ASSERT_EQ(reduced.size(), tree.size());
    for (const Traversal& order : all_traversals(tree)) {
      EXPECT_EQ(replacement_model_peak(tree, order),
                traversal_peak(reduced, order));
    }
  }
}

TEST(DegenerateTrees, LiuModelChainRoundTrip) {
  // A 3-node chain in Liu's (x+, x-) model; n_plus >= child n_minus holds.
  LiuModelInstance instance;
  instance.parent = {kNoNode, 0, 1};
  instance.n_plus = {9, 7, 4};
  instance.n_minus = {2, 3, 3};
  const Tree reduced = from_liu_model(instance);
  for (const Traversal& order : all_traversals(reduced)) {
    const Traversal bottom_up = reverse_traversal(order);
    EXPECT_EQ(liu_model_peak(instance, bottom_up),
              in_tree_traversal_peak(reduced, bottom_up));
  }
}

TEST(DegenerateTrees, SethiUllmanOnDegenerateShapes) {
  EXPECT_EQ(sethi_ullman_number(Tree({kNoNode}, {1}, {0})), 1);
  EXPECT_EQ(sethi_ullman_number(gen::chain(8, 2, 1)), 1);
  EXPECT_EQ(sethi_ullman_number(gen::star(5, 9, 0)), 5);
  // Unit-weight pebble instance of a star: Liu's optimum equals the
  // Sethi–Ullman number via the replacement transform.
  const Tree star = gen::star(5, 9, 0);
  const Tree game = replacement_transform(make_unit_tree(star));
  EXPECT_EQ(liu_optimal(game).peak, sethi_ullman_number(star));
}

}  // namespace
}  // namespace treemem
