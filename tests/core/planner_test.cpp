// Tests for the execution planner and the in-tree wrapper API.
#include <gtest/gtest.h>

#include "core/check.hpp"
#include "core/in_tree.hpp"
#include "core/liu.hpp"
#include "core/minmem.hpp"
#include "core/planner.hpp"
#include "core/postorder.hpp"
#include "test_util.hpp"
#include "tree/generators.hpp"

namespace treemem {
namespace {

using testing::seeded_random_tree;

class PlannerSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlannerSweep, PlansValidateAcrossAllRegimes) {
  const std::uint64_t seed = GetParam();
  for (NodeId size = 5; size <= 60; size += 11) {
    const Tree tree = seeded_random_tree(seed * 2029 + size, size);
    const Weight po_peak = best_postorder_peak(tree);
    const Weight opt_peak = minmem_optimal(tree).peak;
    const Weight floor = std::max(tree.max_mem_req(), tree.file_size(tree.root()));

    const Weight budgets[] = {po_peak + 5, po_peak,      opt_peak,
                              (floor + opt_peak) / 2,    floor,
                              floor - 1};
    for (const Weight budget : budgets) {
      const ExecutionPlan plan = plan_execution(tree, budget);
      EXPECT_EQ(plan.in_core_optimum, opt_peak);
      if (budget < floor) {
        EXPECT_FALSE(plan.feasible);
        continue;
      }
      ASSERT_TRUE(plan.feasible) << "budget=" << budget;
      const CheckResult check = check_out_of_core(tree, plan.schedule, budget);
      ASSERT_TRUE(check.feasible)
          << plan.strategy << " budget=" << budget << ": " << check.reason;
      EXPECT_EQ(check.io_volume, plan.io_volume);
      if (budget >= opt_peak) {
        EXPECT_EQ(plan.io_volume, 0) << plan.strategy;
        EXPECT_TRUE(plan.schedule.writes.empty());
      }
    }
  }
}

TEST_P(PlannerSweep, StrategyTagsMatchRegimes) {
  const std::uint64_t seed = GetParam();
  const Tree tree = seeded_random_tree(seed * 15101, 40);
  const Weight po_peak = best_postorder_peak(tree);
  const Weight opt_peak = minmem_optimal(tree).peak;

  EXPECT_EQ(plan_execution(tree, po_peak).strategy, "postorder/in-core");
  if (opt_peak < po_peak) {
    EXPECT_EQ(plan_execution(tree, opt_peak).strategy, "minmem/in-core");
  }
  const Weight floor = std::max(tree.max_mem_req(), tree.file_size(tree.root()));
  if (floor < opt_peak) {
    const ExecutionPlan plan = plan_execution(tree, floor);
    EXPECT_NE(plan.strategy.find("out-of-core"), std::string::npos);
    EXPECT_GT(plan.io_volume, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(Planner, HarpoonPrefersOptimalWhenPostorderCannotFit) {
  const Tree tree = gen::iterated_harpoon(4, 3, 1000, 1);
  const Weight opt_peak = liu_optimal_peak(tree);
  const ExecutionPlan plan = plan_execution(tree, opt_peak);
  EXPECT_EQ(plan.strategy, "minmem/in-core");
  EXPECT_EQ(plan.peak, opt_peak);
}

TEST(InTreeWrappers, PeaksMatchAndOrdersAreBottomUp) {
  for (const std::uint64_t seed : {1ULL, 5ULL, 9ULL}) {
    const Tree tree = seeded_random_tree(seed * 4242, 50);
    const TraversalResult po = in_tree_best_postorder(tree);
    const TraversalResult liu = in_tree_liu_optimal(tree);
    const MinMemResult mm = in_tree_minmem_optimal(tree);

    EXPECT_EQ(in_tree_traversal_peak(tree, po.order), po.peak);
    EXPECT_EQ(in_tree_traversal_peak(tree, liu.order), liu.peak);
    EXPECT_EQ(in_tree_traversal_peak(tree, mm.order), mm.peak);
    EXPECT_EQ(liu.peak, mm.peak);
    // Bottom-up: the root comes last.
    EXPECT_EQ(po.order.back(), tree.root());
    EXPECT_EQ(liu.order.back(), tree.root());
    EXPECT_EQ(mm.order.back(), tree.root());
  }
}

}  // namespace
}  // namespace treemem
