// Shared helpers for the treemem test suite.
#pragma once

#include <gtest/gtest.h>

#include "support/prng.hpp"
#include "tree/generators.hpp"
#include "tree/tree.hpp"

// Sanitizer detection, shared so capacity-limited tests (deep recursion
// blows TSan's shadow stack; ASan's redzones inflate every frame) scale or
// skip consistently. GCC defines __SANITIZE_*__, Clang goes through
// __has_feature.
#if defined(__SANITIZE_THREAD__)
#define TREEMEM_TSAN 1
#endif
#if defined(__SANITIZE_ADDRESS__)
#define TREEMEM_ASAN 1
#endif
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define TREEMEM_TSAN 1
#endif
#if __has_feature(address_sanitizer)
#define TREEMEM_ASAN 1
#endif
#endif

namespace treemem::testing {

/// A deterministic zoo of small hand-built trees exercising assorted shapes
/// and weight regimes (including zero files and negative execution files
/// from variant-model transforms).
inline Tree tiny_chain() { return gen::chain(5, 3, 2); }

inline Tree tiny_star() { return gen::star(4, 5, 1); }

/// The running example used across several tests: root 0 (f=0,n=1) with
/// children 1 (f=4,n=0) and 2 (f=6,n=2); node 3 (f=2,n=0) under 1 and
/// node 4 (f=3,n=1) under 2.
inline Tree tiny_mixed() {
  TreeBuilder b;
  const NodeId r = b.add_root(0, 1);
  const NodeId a = b.add_child(r, 4, 0);
  const NodeId c = b.add_child(r, 6, 2);
  b.add_child(a, 2, 0);
  b.add_child(c, 3, 1);
  return std::move(b).build();
}

/// Random tree with the given seed; sizes and shape vary with the seed so
/// parameterized sweeps cover many regimes.
inline Tree seeded_random_tree(std::uint64_t seed, NodeId size) {
  Prng prng(seed);
  gen::RandomTreeOptions options;
  options.chain_bias = 0.15 + 0.7 * prng.uniform_real();
  options.min_file = 0;
  options.max_file = 1 + static_cast<Weight>(prng.uniform_int(1, 40));
  options.min_work = 0;
  options.max_work = static_cast<Weight>(prng.uniform_int(0, 15));
  return gen::random_tree(size, options, prng);
}

/// The shared small-tree corpus for exhaustive cross-validation against the
/// brute-force solvers: `count` seeded random trees of 1..max_size nodes,
/// cycling through sizes and shape/weight regimes (including zero files and
/// zero works). Deterministic: same arguments, same trees, on every
/// platform.
inline std::vector<Tree> small_tree_corpus(int count, NodeId max_size,
                                           std::uint64_t salt = 0) {
  std::vector<Tree> corpus;
  corpus.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const NodeId size = 1 + static_cast<NodeId>(i) % max_size;
    corpus.push_back(
        seeded_random_tree(salt + 0x9e3779b9ULL * static_cast<std::uint64_t>(i),
                           size));
  }
  return corpus;
}

}  // namespace treemem::testing
