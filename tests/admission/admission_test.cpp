// Tests for the pluggable admission policies of the memory-bounded
// scheduler (parallel/schedule_core.hpp) and their threading through the
// simulator, the executor, factor_parallel and the Solver facade.
//
// The load-bearing properties:
//   * zero stalls: with budget >= the serial witness peak, the lookahead
//     and reservation policies always complete — pinned at the tightest
//     legal budget (the MinMem optimum itself) on random trees, and at the
//     ROADMAP's 1.5x budget on the 10-instance numeric corpus, where the
//     greedy baseline deadlocks on six instances;
//   * the measured <= modeled <= budget invariant holds under every
//     policy, on the simulator and on real threads;
//   * w = 1 parity: the executor takes exactly the simulator's admission
//     decisions for each policy (same completion order, same peak);
//   * the factor is bit-identical across policies (admission only reorders
//     the schedule; the numerics are schedule-exact);
//   * TREEMEM_ADMISSION parses strictly and reaches both the plan-phase
//     co-search and the factorize-phase executor via
//     solver_options_from_env().
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/check.hpp"
#include "core/minmem.hpp"
#include "core/postorder.hpp"
#include "multifrontal/numeric.hpp"
#include "multifrontal/numeric_parallel.hpp"
#include "parallel/executor.hpp"
#include "parallel/parallel_sim.hpp"
#include "perf/corpus.hpp"
#include "solver/solver.hpp"
#include "sparse/generators.hpp"
#include "sparse/matrix.hpp"
#include "test_util.hpp"
#include "tree/generators.hpp"

namespace treemem {
namespace {

using testing::small_tree_corpus;

constexpr AdmissionPolicy kNonGreedy[] = {AdmissionPolicy::kLookahead,
                                          AdmissionPolicy::kReservation};

/// The ROADMAP's stall-testbed budget: 1.5x the serial optimum, floored at
/// max MemReq (below which no schedule exists at all). One definition
/// shared with bench/parallel_tradeoff and bench/regression_report.
Weight tight_budget(const Tree& tree) {
  const Weight serial_opt = minmem_optimal(tree).peak;
  return std::max(serial_opt + serial_opt / 2, tree.max_mem_req());
}

/// Nodes of a simulator gantt in completion order.
Traversal sim_completion_order(const ParallelScheduleResult& sim) {
  Traversal order;
  order.reserve(sim.gantt.size());
  for (const TaskInterval& task : sim.gantt) {
    order.push_back(task.node);
  }
  return order;
}

TEST(AdmissionPolicyName, ToString) {
  EXPECT_STREQ(to_string(AdmissionPolicy::kGreedy), "greedy");
  EXPECT_STREQ(to_string(AdmissionPolicy::kLookahead), "lookahead");
  EXPECT_STREQ(to_string(AdmissionPolicy::kReservation), "reservation");
}

TEST(AdmissionPolicyEnv, StrictParse) {
  const char* saved = std::getenv("TREEMEM_ADMISSION");
  const std::string saved_value = saved ? saved : "";
  ::unsetenv("TREEMEM_ADMISSION");
  EXPECT_FALSE(admission_policy_from_env().has_value());
  ::setenv("TREEMEM_ADMISSION", "greedy", 1);
  EXPECT_EQ(admission_policy_from_env(), AdmissionPolicy::kGreedy);
  ::setenv("TREEMEM_ADMISSION", "lookahead", 1);
  EXPECT_EQ(admission_policy_from_env(), AdmissionPolicy::kLookahead);
  ::setenv("TREEMEM_ADMISSION", "reservation", 1);
  EXPECT_EQ(admission_policy_from_env(), AdmissionPolicy::kReservation);
  // Malformed values throw instead of silently running greedy.
  ::setenv("TREEMEM_ADMISSION", "Lookahead", 1);
  EXPECT_THROW(admission_policy_from_env(), Error);
  ::setenv("TREEMEM_ADMISSION", "banker", 1);
  EXPECT_THROW(admission_policy_from_env(), Error);
  if (saved) {
    ::setenv("TREEMEM_ADMISSION", saved_value.c_str(), 1);
  } else {
    ::unsetenv("TREEMEM_ADMISSION");
  }
}

TEST(AdmissionWitness, RejectsStructurallyInvalidWitness) {
  const Tree tree = testing::tiny_mixed();
  const auto durations = default_task_durations(tree);
  // Top-down (root-first) order is not a valid bottom-up witness.
  Traversal top_down = tree.top_down_order();
  EXPECT_THROW(ScheduleCore(tree, ParallelPriority::kCriticalPath,
                            tree.max_mem_req() * 4, durations,
                            AdmissionPolicy::kLookahead, top_down),
               Error);
}

TEST(AdmissionWitness, InfiniteBudgetDegradesToGreedy) {
  const Tree tree = testing::tiny_mixed();
  const auto durations = default_task_durations(tree);
  for (const AdmissionPolicy policy : kNonGreedy) {
    ScheduleCore core(tree, ParallelPriority::kCriticalPath, kInfiniteWeight,
                      durations, policy);
    EXPECT_EQ(core.admission(), AdmissionPolicy::kGreedy);
    EXPECT_EQ(core.witness_peak(), 0);
  }
}

// The zero-stall guarantee at the *tightest legal budget*: the witness's
// own serial peak. Greedy routinely deadlocks here; the non-greedy
// policies must always complete, with the accounted peak within budget.
TEST(AdmissionSimulator, NonGreedyNeverStallsAtWitnessPeak) {
  int greedy_stalls = 0;
  for (const Tree& tree : small_tree_corpus(60, 24)) {
    const auto mm = minmem_optimal(tree);
    const Weight budget = std::max(mm.peak, tree.max_mem_req());
    for (const int workers : {2, 4}) {
      ParallelOptions options;
      options.workers = workers;
      options.memory_budget = budget;
      options.admission = AdmissionPolicy::kGreedy;
      greedy_stalls += !simulate_parallel_traversal(tree, options).feasible;
      for (const AdmissionPolicy policy : kNonGreedy) {
        options.admission = policy;
        options.serial_witness = reverse_traversal(mm.order);
        const auto run = simulate_parallel_traversal(tree, options);
        ASSERT_TRUE(run.feasible)
            << to_string(policy) << " stalled at the witness peak (w="
            << workers << ", p=" << tree.size() << ")";
        EXPECT_LE(run.peak_memory, budget);
      }
    }
  }
  // The corpus must keep exercising the hard regime, or the guarantee
  // above is vacuous.
  EXPECT_GT(greedy_stalls, 0);
}

// An empty witness defaults to the MinMem optimum internally — same
// guarantee without the caller supplying a traversal.
TEST(AdmissionSimulator, DefaultWitnessIsMinMemOptimal) {
  for (const Tree& tree : small_tree_corpus(20, 16, /*salt=*/7)) {
    const Weight budget =
        std::max(minmem_optimal(tree).peak, tree.max_mem_req());
    ParallelOptions options;
    options.workers = 4;
    options.memory_budget = budget;
    options.admission = AdmissionPolicy::kLookahead;
    const auto run = simulate_parallel_traversal(tree, options);
    ASSERT_TRUE(run.feasible);
    EXPECT_LE(run.peak_memory, budget);
  }
}

// Below the witness peak no admission is ever safe: schedule_feasible()
// reports infeasibility up front instead of deadlocking mid-run.
TEST(AdmissionSimulator, BudgetBelowWitnessPeakIsInfeasible) {
  const Tree tree = gen::chain(6, 5, 3);
  const auto mm = minmem_optimal(tree);
  if (tree.max_mem_req() < mm.peak) {
    ParallelOptions options;
    options.workers = 2;
    options.memory_budget = mm.peak - 1;
    options.admission = AdmissionPolicy::kLookahead;
    EXPECT_FALSE(simulate_parallel_traversal(tree, options).feasible);
  }
}

// w = 1 admission-decision parity: the executor drives the same
// ScheduleCore sequentially, so for every policy its completion order,
// feasibility and peak match the simulation exactly.
TEST(AdmissionExecutor, W1SimulatorParityPerPolicy) {
  for (const Tree& tree : small_tree_corpus(36, 20, /*salt=*/3)) {
    const auto mm = minmem_optimal(tree);
    const Weight budget = std::max(mm.peak, tree.max_mem_req());
    for (const AdmissionPolicy policy :
         {AdmissionPolicy::kGreedy, AdmissionPolicy::kLookahead,
          AdmissionPolicy::kReservation}) {
      ParallelOptions sim_options;
      sim_options.workers = 1;
      sim_options.memory_budget = budget;
      sim_options.admission = policy;
      sim_options.serial_witness = reverse_traversal(mm.order);
      const auto sim = simulate_parallel_traversal(tree, sim_options);

      ExecutorOptions exec_options;
      exec_options.workers = 1;
      exec_options.memory_budget = budget;
      exec_options.admission = policy;
      exec_options.serial_witness = reverse_traversal(mm.order);
      const auto exec = execute_task_tree(tree, exec_options);

      ASSERT_EQ(sim.feasible, exec.feasible) << to_string(policy);
      if (!sim.feasible) {
        continue;  // greedy may legitimately deadlock at this budget
      }
      EXPECT_EQ(sim.peak_memory, exec.peak_memory) << to_string(policy);
      EXPECT_EQ(sim_completion_order(sim), exec.completion_order)
          << to_string(policy);
    }
  }
}

// Real threads, tight budget: the non-greedy policies complete under every
// interleaving and the accounted peak stays within budget. (This is the
// suite's TSan surface for the admission bookkeeping.)
TEST(AdmissionExecutor, NonGreedyFeasibleOnThreadsAtWitnessPeak) {
  for (const Tree& tree : small_tree_corpus(24, 20, /*salt=*/11)) {
    const auto mm = minmem_optimal(tree);
    const Weight budget = std::max(mm.peak, tree.max_mem_req());
    for (const AdmissionPolicy policy : kNonGreedy) {
      ExecutorOptions options;
      options.workers = 4;
      options.memory_budget = budget;
      options.admission = policy;
      options.serial_witness = reverse_traversal(mm.order);
      const auto run = execute_task_tree(tree, options);
      ASSERT_TRUE(run.feasible)
          << to_string(policy) << " stalled on threads (p=" << tree.size()
          << ")";
      EXPECT_LE(run.peak_memory, budget);
      const Weight checker_peak =
          in_tree_traversal_peak(tree, run.completion_order);
      EXPECT_LE(checker_peak, budget);
    }
  }
}

// ---------------------------------------------------------------------------
// The 10-instance numeric corpus at the ROADMAP's 1.5x budget, w = 4 — the
// "kill the stalls" regression suite.
// ---------------------------------------------------------------------------

const std::vector<NumericInstance>& corpus_instances() {
  static const std::vector<NumericInstance> instances =
      build_numeric_instances(CorpusOptions{}, 5);
  return instances;
}

TEST(AdmissionCorpus, ZeroStallsAtTightBudgetW4) {
  // The greedy baseline's stall set at this budget — pinned exactly so the
  // testbed stays meaningful (if these ever stop stalling, greedy
  // regressions would go unobserved).
  const std::vector<std::string> known_greedy_stalls = {
      "blocktri-dense/mindeg/r1", "blocktri-dense/nd/r1",
      "blocktri-sparse/mindeg/r1", "blocktri-sparse/nd/r1",
      "band-48/mindeg/r1",        "band-48/nd/r1"};
  std::vector<std::string> greedy_stalls;
  int within_ten_percent_checked = 0;
  ASSERT_EQ(corpus_instances().size(), 10u);
  for (const NumericInstance& instance : corpus_instances()) {
    const Tree& tree = instance.assembly.tree;
    const Weight budget = tight_budget(tree);
    const Traversal witness =
        reverse_traversal(minmem_optimal(tree).order);

    ParallelOptions free_options;
    free_options.workers = 4;
    const auto free_run = simulate_parallel_traversal(tree, free_options);
    ASSERT_TRUE(free_run.feasible);

    ParallelOptions options;
    options.workers = 4;
    options.memory_budget = budget;
    options.serial_witness = witness;

    options.admission = AdmissionPolicy::kGreedy;
    if (!simulate_parallel_traversal(tree, options).feasible) {
      greedy_stalls.push_back(instance.name);
    }

    for (const AdmissionPolicy policy : kNonGreedy) {
      options.admission = policy;
      const auto run = simulate_parallel_traversal(tree, options);
      ASSERT_TRUE(run.feasible) << instance.name << " stalled under "
                                << to_string(policy);
      EXPECT_LE(run.peak_memory, budget) << instance.name;
      // Where the uncapped schedule's peak already fits the budget, memory
      // is not the binding constraint, and lookahead must not cost more
      // than 10% of the uncapped speedup. Reservation pre-books the
      // root-path peak, deliberately trading some overlap for its stronger
      // never-retract invariant — it gets a 25% allowance (measured: 79%
      // retention on rand-dense/mindeg/r1). Where the uncapped peak
      // exceeds the budget — up to 4.8x the serial optimum on this corpus
      // — the budget itself bounds the speedup; zero stalls still holds,
      // and bench/regression_report charts the retention.
      if (free_run.peak_memory <= budget) {
        const double floor =
            policy == AdmissionPolicy::kLookahead ? 0.9 : 0.75;
        EXPECT_GE(run.speedup, floor * free_run.speedup)
            << instance.name << " under " << to_string(policy);
        ++within_ten_percent_checked;
      }
    }
  }
  EXPECT_EQ(greedy_stalls, known_greedy_stalls);
  // The within-10% leg must actually trigger on this corpus.
  EXPECT_GE(within_ten_percent_checked, 4);
}

// Bit-identical factors across all three policies on a formerly-stalling
// instance: admission reorders the schedule, and the numerics are
// schedule-exact. Greedy deadlocks at the tight budget, so it is compared
// at an unconstrained budget instead; the serial engine anchors the bits.
TEST(AdmissionCorpus, FactorsBitIdenticalAcrossPolicies) {
  const NumericInstance* stalling = nullptr;
  for (const NumericInstance& instance : corpus_instances()) {
    if (instance.name == "blocktri-dense/nd/r1") {
      stalling = &instance;
    }
  }
  ASSERT_NE(stalling, nullptr);
  const Tree& tree = stalling->assembly.tree;
  const Weight budget = tight_budget(tree);
  const Traversal witness = reverse_traversal(minmem_optimal(tree).order);

  const MultifrontalResult serial = multifrontal_cholesky(
      stalling->matrix, stalling->assembly, witness, KernelConfig{});

  ParallelFactorOptions options;
  options.workers = 4;
  options.kernel = KernelConfig{};

  options.admission = AdmissionPolicy::kGreedy;  // unconstrained: no stall
  const auto greedy = factor_parallel(stalling->matrix, stalling->assembly,
                                      options);
  ASSERT_TRUE(greedy.feasible);
  EXPECT_EQ(greedy.factor.values, serial.factor.values);

  options.memory_budget = budget;
  options.serial_witness = witness;
  for (const AdmissionPolicy policy : kNonGreedy) {
    options.admission = policy;
    const auto run =
        factor_parallel(stalling->matrix, stalling->assembly, options);
    ASSERT_TRUE(run.feasible) << to_string(policy);
    EXPECT_LE(run.measured_peak_entries, run.modeled_peak_entries);
    EXPECT_LE(run.modeled_peak_entries, budget);
    EXPECT_EQ(run.factor.values, serial.factor.values) << to_string(policy);
  }
}

// ---------------------------------------------------------------------------
// Solver facade: co-search, admission threading, env knob.
// ---------------------------------------------------------------------------

TEST(AdmissionSolver, CoSearchAndLookaheadEndToEnd) {
  const SparsePattern pattern = symmetrize(gen::grid2d(14, 14));
  const SymmetricMatrix matrix = make_spd_matrix(pattern, 2011);

  // Serial reference factor (unconstrained plan).
  Solver reference;
  reference.analyze(pattern).plan();
  FactorizeOptions serial;
  serial.engine = FactorizeEngine::kSerial;
  reference.factorize(matrix, serial);
  const std::vector<double> reference_values = reference.factor().values;

  Solver solver;
  solver.analyze(pattern);
  const Tree& tree = solver.assembly().tree;

  PlanOptions plan;
  plan.memory_budget = tight_budget(tree);
  plan.admission = AdmissionPolicy::kLookahead;
  plan.co_search_workers = 4;
  solver.plan(plan);
  const SolverStats planned = solver.stats();
  EXPECT_NE(planned.strategy.find("cosearch"), std::string::npos);
  EXPECT_GT(planned.planned_parallel_peak, 0);
  EXPECT_LE(planned.planned_parallel_peak, plan.memory_budget);
  EXPECT_GE(planned.planned_parallel_peak, planned.planned_peak_entries);

  FactorizeOptions factorize;
  factorize.engine = FactorizeEngine::kParallel;
  factorize.workers = 4;
  factorize.admission = AdmissionPolicy::kLookahead;
  factorize.allow_serial_fallback = false;  // a stall must surface
  solver.factorize(matrix, factorize);
  const SolverStats stats = solver.stats();
  EXPECT_EQ(stats.engine, "parallel");
  EXPECT_EQ(stats.admission, "lookahead");
  EXPECT_FALSE(stats.stall_fallback);
  EXPECT_LE(stats.measured_peak_entries, stats.modeled_peak_entries);
  EXPECT_LE(stats.modeled_peak_entries, plan.memory_budget);
  EXPECT_EQ(solver.factor().values, reference_values);

  // Same plan, reservation admission: same bits.
  factorize.admission = AdmissionPolicy::kReservation;
  solver.factorize(matrix, factorize);
  EXPECT_EQ(solver.stats().admission, "reservation");
  EXPECT_EQ(solver.factor().values, reference_values);
}

TEST(AdmissionSolver, EnvKnobReachesPlanAndFactorize) {
  const char* saved = std::getenv("TREEMEM_ADMISSION");
  const std::string saved_value = saved ? saved : "";
  ::setenv("TREEMEM_ADMISSION", "reservation", 1);
  const SolverOptions options = solver_options_from_env();
  EXPECT_EQ(options.plan.admission, AdmissionPolicy::kReservation);
  EXPECT_EQ(options.factorize.admission, AdmissionPolicy::kReservation);
  ::setenv("TREEMEM_ADMISSION", "eager", 1);
  EXPECT_THROW(solver_options_from_env(), Error);
  if (saved) {
    ::setenv("TREEMEM_ADMISSION", saved_value.c_str(), 1);
  } else {
    ::unsetenv("TREEMEM_ADMISSION");
  }
}

}  // namespace
}  // namespace treemem
