// The value-carrying Matrix Market readers (sparse/mm_io.hpp): the fix
// for the solve pipeline factorizing synthetic values no matter what file
// it was given. Pins the coordinate-format conventions: duplicate entries
// sum, symmetric/hermitian storage expands to both triangles (skew
// negating the mirror), complex keeps the real part, pattern files carry
// no values, absent diagonal entries are padded with explicit zeros, and
// a valued write/read round-trip is bit-exact.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sparse/generators.hpp"
#include "sparse/matrix.hpp"
#include "sparse/mm_io.hpp"
#include "support/check.hpp"

namespace treemem {
namespace {

TEST(MatrixMarketValues, RealGeneralReadsValues) {
  const std::string text =
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 4\n"
      "1 1 4.0\n"
      "2 1 -1.5\n"
      "1 2 -1.5\n"
      "2 2 3.0\n";
  const MatrixMarketData data = read_matrix_market_data_string(text);
  EXPECT_EQ(data.field, "real");
  EXPECT_EQ(data.symmetry, "general");
  ASSERT_TRUE(data.has_values());
  ASSERT_EQ(data.values.size(), 4u);

  const SymmetricMatrix matrix = read_matrix_market_matrix_string(text);
  EXPECT_EQ(matrix.value_of(0, 0), 4.0);
  EXPECT_EQ(matrix.value_of(1, 0), -1.5);
  EXPECT_EQ(matrix.value_of(0, 1), -1.5);
  EXPECT_EQ(matrix.value_of(1, 1), 3.0);
}

TEST(MatrixMarketValues, DuplicateEntriesAreSummed) {
  // The Matrix Market convention for assembled FEM input: coordinate
  // repeats accumulate.
  const std::string text =
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 5\n"
      "1 1 1.0\n"
      "1 1 2.5\n"
      "2 2 1.0\n"
      "2 1 0.5\n"
      "1 2 0.5\n";
  const SymmetricMatrix matrix = read_matrix_market_matrix_string(text);
  EXPECT_EQ(matrix.value_of(0, 0), 3.5);
  EXPECT_EQ(matrix.value_of(1, 1), 1.0);
  EXPECT_EQ(matrix.pattern().nnz(), 4);  // duplicates collapsed
}

TEST(MatrixMarketValues, SymmetricStorageExpandsBothTriangles) {
  const std::string text =
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 4\n"
      "1 1 2.0\n"
      "2 2 2.0\n"
      "3 3 2.0\n"
      "3 1 -1.0\n";
  const SymmetricMatrix matrix = read_matrix_market_matrix_string(text);
  EXPECT_EQ(matrix.pattern().nnz(), 5);  // 3 diagonal + mirrored pair
  EXPECT_EQ(matrix.value_of(2, 0), -1.0);
  EXPECT_EQ(matrix.value_of(0, 2), -1.0);
}

TEST(MatrixMarketValues, SkewSymmetricNegatesMirrorAndIsRejectedForSolve) {
  const std::string text =
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 3.0\n";
  const MatrixMarketData data = read_matrix_market_data_string(text);
  ASSERT_EQ(data.pattern.nnz(), 2);
  // Entries sorted by (col, row): (1,0) = 3, mirrored (0,1) = -3.
  EXPECT_EQ(data.values[0], 3.0);
  EXPECT_EQ(data.values[1], -3.0);
  // No symmetric value set exists — the Cholesky path must refuse.
  EXPECT_THROW(read_matrix_market_matrix_string(text), Error);
}

TEST(MatrixMarketValues, ComplexKeepsRealPart) {
  const std::string text =
      "%%MatrixMarket matrix coordinate complex hermitian\n"
      "2 2 3\n"
      "1 1 2.0 0.0\n"
      "2 2 2.0 0.0\n"
      "2 1 0.5 0.0\n";
  const SymmetricMatrix matrix = read_matrix_market_matrix_string(text);
  EXPECT_EQ(matrix.value_of(1, 0), 0.5);
  EXPECT_EQ(matrix.value_of(0, 1), 0.5);
}

TEST(MatrixMarketValues, IntegerFieldReadsAsDoubles) {
  const std::string text =
      "%%MatrixMarket matrix coordinate integer symmetric\n"
      "2 2 3\n"
      "1 1 5\n"
      "2 2 7\n"
      "2 1 -2\n";
  const SymmetricMatrix matrix = read_matrix_market_matrix_string(text);
  EXPECT_EQ(matrix.value_of(0, 0), 5.0);
  EXPECT_EQ(matrix.value_of(1, 0), -2.0);
}

TEST(MatrixMarketValues, PatternFieldHasNoValues) {
  const std::string text =
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "2 2 2\n"
      "1 1\n"
      "2 1\n";
  const MatrixMarketData data = read_matrix_market_data_string(text);
  EXPECT_FALSE(data.has_values());
  try {
    read_matrix_market_matrix_string(text);
    FAIL() << "pattern file must not produce a valued matrix";
  } catch (const Error& e) {
    // The error points the user at the synthetic fallback.
    EXPECT_NE(std::string(e.what()).find("synthetic"), std::string::npos);
  }
}

TEST(MatrixMarketValues, MissingDiagonalIsPaddedWithExplicitZeros) {
  const std::string text =
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 3\n"
      "1 1 2.0\n"
      "3 3 2.0\n"
      "2 1 1.0\n";  // no (2,2) entry
  const SymmetricMatrix matrix = read_matrix_market_matrix_string(text);
  ASSERT_TRUE(matrix.pattern().has_full_diagonal());
  EXPECT_EQ(matrix.value_of(1, 1), 0.0);   // padded, value unchanged
  EXPECT_EQ(matrix.value_of(0, 0), 2.0);
  EXPECT_EQ(matrix.value_of(1, 0), 1.0);
}

TEST(MatrixMarketValues, NumericallyUnsymmetricGeneralIsRejected) {
  const std::string text =
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 4\n"
      "1 1 1.0\n"
      "2 2 1.0\n"
      "2 1 0.25\n"
      "1 2 0.75\n";  // A(1,2) != A(2,1)
  EXPECT_THROW(read_matrix_market_matrix_string(text), Error);
}

TEST(MatrixMarketValues, ValuedRoundTripIsBitExact) {
  const SparsePattern pattern = symmetrize(gen::grid2d(5, 5));
  const SymmetricMatrix original = make_spd_matrix(pattern, 12345);
  for (const bool symmetric_lower : {true, false}) {
    std::ostringstream out;
    write_matrix_market(out, original, symmetric_lower);
    const SymmetricMatrix reread = read_matrix_market_matrix_string(out.str());
    ASSERT_EQ(reread.pattern().row_idx(), original.pattern().row_idx());
    ASSERT_EQ(reread.values().size(), original.values().size());
    for (std::size_t i = 0; i < original.values().size(); ++i) {
      EXPECT_EQ(reread.values()[i], original.values()[i])
          << "entry " << i << " lower=" << symmetric_lower;
    }
  }
}

}  // namespace
}  // namespace treemem
