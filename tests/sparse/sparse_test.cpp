// Tests for the sparse pattern substrate: CSC construction, symmetrization,
// permutation, Matrix Market I/O and the matrix generators.
#include <gtest/gtest.h>

#include <sstream>

#include "sparse/generators.hpp"
#include "sparse/mm_io.hpp"
#include "sparse/pattern.hpp"
#include "support/prng.hpp"

namespace treemem {
namespace {

SparsePattern small_asym() {
  // 4x4: entries (0,0),(1,0),(3,1),(2,2),(0,3)
  return SparsePattern::from_coo(
      4, 4, {{0, 0}, {1, 0}, {3, 1}, {2, 2}, {0, 3}});
}

TEST(Pattern, FromCooSortsAndDedups) {
  const SparsePattern p = SparsePattern::from_coo(
      3, 3, {{2, 0}, {0, 0}, {2, 0}, {1, 2}, {1, 2}});
  EXPECT_EQ(p.nnz(), 3);
  const auto col0 = p.column(0);
  ASSERT_EQ(col0.size(), 2u);
  EXPECT_EQ(col0[0], 0);
  EXPECT_EQ(col0[1], 2);
  EXPECT_TRUE(p.has_entry(1, 2));
  EXPECT_FALSE(p.has_entry(2, 2));
}

TEST(Pattern, RejectsBadInput) {
  EXPECT_THROW(SparsePattern::from_coo(2, 2, {{2, 0}}), Error);
  EXPECT_THROW(SparsePattern::from_coo(2, 2, {{0, -1}}), Error);
  EXPECT_THROW(SparsePattern(2, 2, {0, 1}, {0}), Error);      // bad col_ptr size
  EXPECT_THROW(SparsePattern(2, 2, {0, 2, 1}, {0, 1}), Error);  // not monotone
}

TEST(Pattern, TransposeRoundTrip) {
  const SparsePattern p = small_asym();
  const SparsePattern tt = p.transposed().transposed();
  EXPECT_EQ(tt.col_ptr(), p.col_ptr());
  EXPECT_EQ(tt.row_idx(), p.row_idx());
  EXPECT_TRUE(p.transposed().has_entry(3, 0));  // (0,3) transposed
}

TEST(Pattern, SymmetrizeAddsTransposeAndDiagonal) {
  const SparsePattern s = symmetrize(small_asym());
  EXPECT_TRUE(s.is_symmetric());
  EXPECT_TRUE(s.has_full_diagonal());
  EXPECT_TRUE(s.has_entry(0, 1));  // mirror of (1,0)
  EXPECT_TRUE(s.has_entry(1, 0));
  EXPECT_TRUE(s.has_entry(3, 3));  // diagonal added
}

TEST(Pattern, PermuteSymmetricRelabels) {
  const SparsePattern s = symmetrize(small_asym());
  const std::vector<Index> perm{3, 2, 1, 0};  // reversal
  const SparsePattern q = permute_symmetric(s, perm);
  EXPECT_TRUE(q.is_symmetric());
  EXPECT_EQ(q.nnz(), s.nnz());
  // Entry (1,0) of A maps to (inverse[1], inverse[0]) = (2,3).
  EXPECT_EQ(q.has_entry(2, 3), s.has_entry(1, 0));
  EXPECT_THROW(permute_symmetric(s, {0, 1, 2}), Error);
  EXPECT_THROW(permute_symmetric(s, {0, 0, 1, 2}), Error);
}

TEST(Pattern, PermutationHelpers) {
  const std::vector<Index> perm{2, 0, 3, 1};
  const std::vector<Index> inv = invert_permutation(perm);
  EXPECT_EQ(inv, (std::vector<Index>{1, 3, 0, 2}));
  EXPECT_THROW(check_permutation({0, 0, 1}, 3), Error);
}

TEST(MatrixMarket, ParsesGeneralReal) {
  const std::string text =
      "%%MatrixMarket matrix coordinate real general\n"
      "% comment\n"
      "3 3 3\n"
      "1 1 1.5\n"
      "2 1 -2.0\n"
      "3 3 7\n";
  const SparsePattern p = read_matrix_market_string(text);
  EXPECT_EQ(p.rows(), 3);
  EXPECT_EQ(p.nnz(), 3);
  EXPECT_TRUE(p.has_entry(1, 0));
}

TEST(MatrixMarket, ExpandsSymmetric) {
  const std::string text =
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "3 3 2\n"
      "2 1\n"
      "3 3\n";
  const SparsePattern p = read_matrix_market_string(text);
  EXPECT_EQ(p.nnz(), 3);  // (1,0), (0,1), (2,2)
  EXPECT_TRUE(p.has_entry(0, 1));
  EXPECT_TRUE(p.has_entry(1, 0));
}

TEST(MatrixMarket, ParsesComplexAndInteger) {
  const SparsePattern c = read_matrix_market_string(
      "%%MatrixMarket matrix coordinate complex general\n2 2 1\n1 2 3.0 4.0\n");
  EXPECT_TRUE(c.has_entry(0, 1));
  const SparsePattern i = read_matrix_market_string(
      "%%MatrixMarket matrix coordinate integer symmetric\n2 2 1\n2 1 5\n");
  EXPECT_EQ(i.nnz(), 2);
}

TEST(MatrixMarket, RejectsGarbage) {
  EXPECT_THROW(read_matrix_market_string("not a matrix\n"), Error);
  EXPECT_THROW(read_matrix_market_string(
                   "%%MatrixMarket matrix array real general\n2 2\n"),
               Error);
  EXPECT_THROW(read_matrix_market_string(
                   "%%MatrixMarket matrix coordinate real general\n2 2 1\n"
                   "5 1 1.0\n"),
               Error);
  EXPECT_THROW(read_matrix_market_string(
                   "%%MatrixMarket matrix coordinate real general\n2 2 2\n"
                   "1 1 1.0\n"),
               Error);
}

TEST(MatrixMarket, WriteReadRoundTrip) {
  Prng prng(5);
  const SparsePattern p = symmetrize(gen::random_symmetric(30, 4.0, prng));
  for (const bool lower : {false, true}) {
    std::ostringstream oss;
    write_matrix_market(oss, p, lower);
    const SparsePattern back = read_matrix_market_string(oss.str());
    EXPECT_EQ(back.col_ptr(), p.col_ptr()) << "lower=" << lower;
    EXPECT_EQ(back.row_idx(), p.row_idx());
  }
}

TEST(Generators, Grid2dStructure) {
  const SparsePattern g = gen::grid2d(4, 3);
  EXPECT_EQ(g.rows(), 12);
  EXPECT_TRUE(g.is_symmetric());
  EXPECT_TRUE(g.has_full_diagonal());
  // Interior vertex (1,1) = id 5 has 4 neighbours + diagonal.
  EXPECT_EQ(g.column(5).size(), 5u);
  // Corner vertex 0 has 2 neighbours + diagonal.
  EXPECT_EQ(g.column(0).size(), 3u);
  // 9-point has diagonal neighbours too.
  const SparsePattern g9 = gen::grid2d(4, 3, true);
  EXPECT_EQ(g9.column(5).size(), 9u);
}

TEST(Generators, Grid3dStructure) {
  const SparsePattern g = gen::grid3d(3, 3, 3);
  EXPECT_EQ(g.rows(), 27);
  EXPECT_TRUE(g.is_symmetric());
  // Center vertex has 6 neighbours + diagonal.
  EXPECT_EQ(g.column(13).size(), 7u);
  const SparsePattern g27 = gen::grid3d(3, 3, 3, true);
  EXPECT_EQ(g27.column(13).size(), 27u);
}

TEST(Generators, RandomSymmetricDensity) {
  Prng prng(11);
  const SparsePattern p = gen::random_symmetric(2000, 4.0, prng);
  EXPECT_TRUE(p.is_symmetric());
  EXPECT_TRUE(p.has_full_diagonal());
  const double off_per_row =
      static_cast<double>(p.nnz() - p.rows()) / p.rows();
  EXPECT_GT(off_per_row, 2.5);
  EXPECT_LT(off_per_row, 5.5);
}

TEST(Generators, BandedArrowheadBlocks) {
  Prng prng(3);
  const SparsePattern band = gen::banded(50, 3, 1.0, prng);
  EXPECT_TRUE(band.is_symmetric());
  EXPECT_FALSE(band.has_entry(0, 10));
  EXPECT_TRUE(band.has_entry(0, 3));

  const SparsePattern arrow = gen::arrowhead(20, 2);
  EXPECT_TRUE(arrow.has_entry(0, 19));
  EXPECT_TRUE(arrow.has_entry(1, 19));
  EXPECT_FALSE(arrow.has_entry(2, 19));

  const SparsePattern bt = gen::block_tridiagonal(4, 5, 0.5, prng);
  EXPECT_TRUE(bt.is_symmetric());
  EXPECT_EQ(bt.rows(), 20);
  EXPECT_TRUE(bt.has_entry(0, 4));     // inside first block
  EXPECT_FALSE(bt.has_entry(0, 12));   // two blocks away
}

TEST(Generators, HolesKeepDimension) {
  Prng prng(17);
  const SparsePattern g = gen::grid2d_with_holes(10, 10, 0.3, prng);
  EXPECT_EQ(g.rows(), 100);
  EXPECT_TRUE(g.is_symmetric());
  EXPECT_TRUE(g.has_full_diagonal());
  EXPECT_LT(g.nnz(), gen::grid2d(10, 10).nnz());
}

}  // namespace
}  // namespace treemem
