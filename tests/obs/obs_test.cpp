// The observability suite (src/obs): tracing ring buffers, the metrics
// registry, and the SolverPool exposition contract.
//
// Pinned properties:
//   * concurrent emits are bit-exact: 8 threads × N events land as
//     exactly N retained events per registered thread, zero dropped —
//     the per-thread single-writer rings never lose or duplicate under
//     contention (the TSan job runs this binary);
//   * overflow drops oldest: a capacity-16 buffer fed 100 events retains
//     the LAST 16 in order and counts the other 84 as dropped — a
//     truncated trace is always labelled as such;
//   * the disabled path is inert: emits on a never-started recorder
//     register no buffer, retain nothing, count nothing — the permanent
//     instrumentation on hot paths is free when tracing is off;
//   * a TraceSpan armed while disabled never emits an orphan 'E';
//   * the Chrome export is real JSON (python3 -m json.tool parses it)
//     and every thread's 'B'/'E' events balance like a stack;
//   * Histogram quantiles follow the documented interpolation exactly
//     (golden values), and exponential_bounds builds the 1-2-5 ladder;
//   * the registry round-trips counters/gauges/histograms/exporters
//     through dump(), and reset_values() zeroes values while keeping
//     every identity (references stay valid);
//   * SolverPool's exporter emits the EXACT metric set — the
//     `--metrics-out` exposition is a scrape contract, so a renamed or
//     dropped series must fail here, not in a dashboard.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "solver/solver_pool.hpp"
#include "sparse/generators.hpp"
#include "sparse/matrix.hpp"
#include "test_util.hpp"

namespace treemem {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::TraceEvent;
using obs::TraceRecorder;
using obs::TraceSpan;

TEST(Trace, EightThreadsRetainBitExactCounts) {
  TraceRecorder recorder;  // private instance: isolated from the process one
  recorder.start();
  constexpr int kThreads = 8;
  constexpr long long kEvents = 500;  // well under the default capacity
  std::vector<std::thread> crew;
  crew.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    crew.emplace_back([&recorder, t] {
      for (long long i = 0; i < kEvents; ++i) {
        recorder.instant("event", "test", TraceRecorder::kNoLane, "seq",
                         t * kEvents + i);
      }
    });
  }
  for (std::thread& thread : crew) {
    thread.join();
  }
  recorder.stop();

  const TraceRecorder::Stats stats = recorder.stats();
  EXPECT_EQ(stats.threads, static_cast<std::size_t>(kThreads));
  EXPECT_EQ(stats.retained, static_cast<std::uint64_t>(kThreads * kEvents));
  EXPECT_EQ(stats.dropped, 0u);

  // Exactly kEvents per tid, in emission order (vals strictly increasing).
  std::map<int, std::vector<long long>> per_tid;
  for (const TraceEvent& event : recorder.snapshot()) {
    per_tid[event.tid].push_back(event.val0);
  }
  ASSERT_EQ(per_tid.size(), static_cast<std::size_t>(kThreads));
  for (const auto& [tid, vals] : per_tid) {
    ASSERT_EQ(vals.size(), static_cast<std::size_t>(kEvents))
        << "tid " << tid;
    for (std::size_t i = 1; i < vals.size(); ++i) {
      ASSERT_LT(vals[i - 1], vals[i]) << "tid " << tid;
    }
  }
}

TEST(Trace, OverflowDropsOldestAndCountsDropped) {
  obs::TraceRecorderOptions options;
  options.buffer_capacity = 16;
  TraceRecorder recorder(options);
  recorder.start();
  for (long long i = 0; i < 100; ++i) {
    recorder.instant("event", "test", TraceRecorder::kNoLane, "seq", i);
  }
  recorder.stop();

  const TraceRecorder::Stats stats = recorder.stats();
  EXPECT_EQ(stats.threads, 1u);
  EXPECT_EQ(stats.retained, 16u);
  EXPECT_EQ(stats.dropped, 84u);

  const std::vector<TraceEvent> events = recorder.snapshot();
  ASSERT_EQ(events.size(), 16u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].val0, 84 + static_cast<long long>(i));
  }
}

TEST(Trace, DisabledRecorderIsInert) {
  TraceRecorder recorder;  // never started
  recorder.instant("event", "test");
  recorder.begin("span", "test");
  recorder.end("span", "test");
  recorder.counter("track", "series", 1);
  const TraceRecorder::Stats stats = recorder.stats();
  EXPECT_EQ(stats.threads, 0u);  // the disabled path never registers
  EXPECT_EQ(stats.retained, 0u);
  EXPECT_EQ(stats.dropped, 0u);
}

TEST(Trace, SpanArmedWhileDisabledEmitsNoOrphanEnd) {
  TraceRecorder recorder;
  {
    TraceSpan span(recorder, "span", "test");  // disabled: no begin
    recorder.start();
  }  // must not emit the lone 'E'
  recorder.stop();
  EXPECT_EQ(recorder.stats().retained, 0u);
}

TEST(Trace, ChromeJsonParsesAndBeginEndBalancePerThread) {
  TraceRecorder recorder;
  recorder.start();
  constexpr int kThreads = 4;
  std::vector<std::thread> crew;
  crew.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    crew.emplace_back([&recorder, t] {
      for (int i = 0; i < 20; ++i) {
        TraceSpan outer(recorder, "outer", "test", t, "i", i);
        recorder.instant("mark", "test", t);
        TraceSpan inner(recorder, "inner", "test", t, "i", i, "half", i / 2);
      }
      recorder.counter("load", "value", t);
    });
  }
  for (std::thread& thread : crew) {
    thread.join();
  }
  recorder.stop();

  // Stack discipline per emitting thread: depth never goes negative and
  // ends at zero (TraceSpan guarantees this by construction; the export
  // relies on it to render nested slices).
  std::map<int, int> depth;
  for (const TraceEvent& event : recorder.snapshot()) {
    if (event.phase == 'B') {
      ++depth[event.tid];
    } else if (event.phase == 'E') {
      ASSERT_GT(depth[event.tid], 0);
      --depth[event.tid];
    }
  }
  for (const auto& [tid, d] : depth) {
    EXPECT_EQ(d, 0) << "unbalanced spans on tid " << tid;
  }

  const std::string path =
      ::testing::TempDir() + "/treemem_obs_trace_test.json";
  recorder.write_chrome_json(path);
  if (std::system("python3 --version > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "python3 unavailable: JSON checked structurally only";
  }
  const std::string check =
      "python3 -m json.tool '" + path + "' > /dev/null 2>&1";
  EXPECT_EQ(std::system(check.c_str()), 0)
      << "exported trace is not valid JSON: " << path;
}

TEST(Histogram, QuantileGoldens) {
  Histogram h({1.0, 2.0, 5.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(1.5);
  h.observe(3.0);
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 6.5);
  EXPECT_EQ(h.bucket_counts(), (std::vector<long long>{1, 2, 1, 0}));

  // target = q * total walks the cumulative counts and interpolates
  // linearly inside the selected bucket (first bucket's lower edge is 0).
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 1.0);   // exactly the first bucket
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.5);    // halfway through (1, 2]
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5.0);    // top of the last counted bucket

  h.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty = 0

  // An observation above every finite bound reports the largest bound —
  // the histogram cannot resolve further.
  Histogram overflow({1.0});
  overflow.observe(100.0);
  EXPECT_DOUBLE_EQ(overflow.quantile(1.0), 1.0);
}

TEST(Histogram, ExponentialBoundsBuildTheLadder) {
  const std::vector<double> decade = Histogram::exponential_bounds(1.0, 10.0);
  EXPECT_EQ(decade, (std::vector<double>{1.0, 2.0, 5.0, 10.0}));

  const std::vector<double> latency =
      Histogram::exponential_bounds(1e-6, 10.0);
  ASSERT_EQ(latency.size(), 22u);  // 7 decades × 3 + the final 10
  EXPECT_DOUBLE_EQ(latency.front(), 1e-6);
  EXPECT_DOUBLE_EQ(latency.back(), 10.0);
  for (std::size_t i = 1; i < latency.size(); ++i) {
    EXPECT_LT(latency[i - 1], latency[i]);
  }
}

TEST(Metrics, RegistryDumpRoundTrip) {
  MetricsRegistry registry;  // private instance, not the process one
  Counter& requests = registry.counter("test_requests_total");
  requests.add(3);
  Gauge& load = registry.gauge("test_load", "shard=\"a\"");
  load.set(2.5);
  Histogram& sizes = registry.histogram("test_sizes", {1.0, 10.0});
  sizes.observe(0.5);
  sizes.observe(4.0);

  // Find-or-create returns the same identity.
  registry.counter("test_requests_total").add(1);
  EXPECT_EQ(requests.value(), 4);

  const std::uint64_t token =
      registry.add_exporter([] { return std::string("custom_line 7\n"); });

  const std::string dump = registry.dump();
  EXPECT_NE(dump.find("# TYPE test_requests_total counter\n"
                      "test_requests_total 4\n"),
            std::string::npos);
  EXPECT_NE(dump.find("# TYPE test_load gauge\n"
                      "test_load{shard=\"a\"} 2.5\n"),
            std::string::npos);
  EXPECT_NE(dump.find("test_sizes_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(dump.find("test_sizes_bucket{le=\"10\"} 2\n"), std::string::npos);
  EXPECT_NE(dump.find("test_sizes_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(dump.find("test_sizes_sum 4.5\n"), std::string::npos);
  EXPECT_NE(dump.find("test_sizes_count 2\n"), std::string::npos);
  EXPECT_NE(dump.find("custom_line 7\n"), std::string::npos);

  registry.remove_exporter(token);
  EXPECT_EQ(registry.dump().find("custom_line"), std::string::npos);

  // reset_values zeroes the numbers but keeps every identity: the cached
  // references stay valid and usable.
  registry.reset_values();
  EXPECT_EQ(requests.value(), 0);
  EXPECT_DOUBLE_EQ(load.value(), 0.0);
  EXPECT_EQ(sizes.count(), 0);
  requests.add(2);
  EXPECT_EQ(registry.counter("test_requests_total").value(), 2);
}

TEST(Metrics, SolverPoolExportsExactMetricSet) {
  // The scrape contract behind `treemem_cli serve --metrics-out`: the
  // pool's exporter must emit exactly these series, in this order. A
  // rename, a drop, or a new unlisted series is a breaking change to
  // every dashboard scraping the service — fail here instead.
  const std::string before = obs::dump_metrics();

  SolverPoolOptions options;
  options.workers = 2;
  options.factor_cache_entries = 2;
  // Keep the job off the process WorkerPool: its lazily-registered
  // exporter would otherwise blur the before/after diff below.
  options.solver.factorize.kernel.kind = KernelKind::kScalar;
  SolverPool pool(options);

  SolveRequest request;
  request.matrix = make_spd_matrix(gen::grid2d(6, 6), 7);
  request.rhs.assign(1, std::vector<double>(36, 1.0));
  const SolveOutcome outcome = pool.solve(std::move(request));
  EXPECT_EQ(outcome.solutions.size(), 1u);

  const std::string after = obs::dump_metrics();
  ASSERT_EQ(after.substr(0, before.size()), before)
      << "pool registration must only append to the exposition";
  const std::string added = after.substr(before.size());

  std::vector<std::string> types;
  std::istringstream lines(added);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("# TYPE ", 0) == 0) {
      types.push_back(line.substr(7));
    }
  }
  const std::vector<std::string> expected = {
      "treemem_solve_latency_seconds histogram",
      "treemem_symbolic_cache_hits_total counter",
      "treemem_symbolic_cache_misses_total counter",
      "treemem_symbolic_cache_evictions_total counter",
      "treemem_symbolic_cache_entries gauge",
      "treemem_symbolic_cache_resident_bytes gauge",
      "treemem_factor_cache_hits_total counter",
      "treemem_factor_cache_misses_total counter",
      "treemem_factor_cache_evictions_total counter",
      "treemem_factor_cache_entries gauge",
      "treemem_factor_cache_resident_charge gauge",
      "treemem_solver_analyze_seconds gauge",
      "treemem_solver_plan_seconds gauge",
      "treemem_solver_factorize_seconds gauge",
      "treemem_solver_solve_seconds gauge",
      "treemem_solver_factorizations counter",
      "treemem_solver_rhs_solved counter",
      "treemem_solver_flops counter",
      "treemem_solver_leases_granted counter",
      "treemem_solver_lease_denied counter",
      "treemem_solver_measured_peak_entries counter",
      "treemem_solver_modeled_peak_entries counter",
      "treemem_solver_planned_peak_entries counter",
      "treemem_solver_planned_parallel_peak counter",
      "treemem_solver_in_core_optimum counter",
      "treemem_solver_best_postorder_peak counter",
      "treemem_solver_planned_io_volume counter",
  };
  EXPECT_EQ(types, expected);

  // The one solve is visible in the exposition.
  EXPECT_NE(added.find("treemem_solve_latency_seconds_count 1\n"),
            std::string::npos);
  EXPECT_NE(added.find("treemem_symbolic_cache_misses_total 1\n"),
            std::string::npos);
  EXPECT_NE(added.find("treemem_solver_factorizations 1\n"),
            std::string::npos);
}

TEST(Metrics, SolverPoolExporterUnregistersOnDestruction) {
  const std::string before = obs::dump_metrics();
  {
    SolverPoolOptions options;
    options.workers = 1;
    SolverPool pool(options);
    EXPECT_NE(obs::dump_metrics().find("treemem_solve_latency_seconds"),
              std::string::npos);
  }
  EXPECT_EQ(obs::dump_metrics(), before);
}

}  // namespace
}  // namespace treemem
