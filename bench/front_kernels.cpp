// Extension bench: the dense front-kernel microbenchmark — kernel × front
// size × block size, GFLOP/s per cell, into front_kernels.csv.
//
// Synthesizes deterministic dense SPD fronts (the multifrontal engine's
// inner payload, isolated from the tree) and times partial_factor for the
// scalar reference, the cache-blocked kernel and the parallel-tiled kernel
// across block sizes, at both a full Cholesky (η = m) and the
// representative partial front (η = m/2). Per cell it also cross-checks
// the result against the scalar reference — blocked must match bit for
// bit, parallel within the residual contract — so a kernel regression
// cannot hide behind a fast wrong answer.
//
// TREEMEM_SCALE ≥ 2 adds larger fronts (the regime where cache blocking
// and intra-front parallelism pay); the parallel kernel's worker count
// honors TREEMEM_THREADS via default_thread_count. Parallel-tiled cells
// are measured twice — leasing from the persistent worker pool (the
// production dispatch) and on the legacy per-panel fork/join path — so the
// "leased/fork" column isolates what retiring per-panel thread births buys
// at each front size.
#include <cmath>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_common.hpp"
#include "dense/front_kernel.hpp"
#include "dense/spd_front.hpp"
#include "support/csv.hpp"
#include "support/parallel_for.hpp"
#include "support/text_table.hpp"
#include "support/timer.hpp"

namespace {

using namespace treemem;

std::string fmt(double v, int precision = 2) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

struct Cell {
  KernelConfig config;
  double seconds = 0.0;
  long long flops = 0;
  bool bit_identical = false;
};

int run() {
  const double scale = bench::scale_from_env();
  std::vector<std::size_t> sizes = {64, 128, 256, 512};
  if (scale >= 2.0) {
    sizes.push_back(768);
  }
  if (scale >= 4.0) {
    sizes.push_back(1024);
  }
  const std::size_t block_sizes[] = {16, 48, 96};

  bench::print_header(
      "Extension — dense front kernels: scalar vs cache-blocked vs "
      "parallel-tiled, GFLOP/s");

  CsvWriter csv(bench::output_dir() + "/front_kernels.csv",
                {"kernel", "block_size", "workers", "dispatch", "m", "eta",
                 "seconds", "gflops", "bit_identical_to_scalar"});
  TextTable table({"m", "eta", "scalar GF/s", "best blocked GF/s (nb)",
                   "best parallel GF/s (nb)", "blocked speedup",
                   "leased/fork"});

  const unsigned workers = default_thread_count();
  for (const std::size_t m : sizes) {
    for (const std::size_t eta : {m, m / 2}) {
      if (eta == 0) {
        continue;
      }
      const std::vector<double> original = make_dense_spd_front(m, m + eta);
      std::vector<double> reference = original;
      make_front_kernel({})->partial_factor(reference.data(), m, eta,
                                            nullptr);

      std::vector<Cell> cells;
      cells.push_back({KernelConfig{}, 0.0, 0, true});
      for (const KernelKind kind :
           {KernelKind::kBlocked, KernelKind::kParallelTiled}) {
        for (const std::size_t nb : block_sizes) {
          KernelConfig config;
          config.kind = kind;
          config.block_size = nb;
          if (kind == KernelKind::kParallelTiled) {
            // Force the parallel path on every panel: these cells must
            // measure intra-front parallelism (including its overhead on
            // fronts below the production gate), not silently re-measure
            // the blocked kernel, or the CSV's workers column would lie.
            config.min_parallel_volume = 0;
            // Same tiles, both dispatchers: leased from the persistent
            // pool, then the legacy per-panel fork/join.
            cells.push_back({config, 0.0, 0, false});
            config.fork_join = true;
          }
          cells.push_back({config, 0.0, 0, false});
        }
      }

      const int reps = m >= 512 ? 1 : 3;
      double scalar_gflops = 1e-12;
      double best_blocked = 0.0, best_parallel = 0.0, best_forkjoin = 0.0;
      std::size_t best_blocked_nb = 0, best_parallel_nb = 0;
      for (Cell& cell : cells) {
        const auto kernel = make_front_kernel(cell.config);
        std::vector<double> work;
        cell.seconds = bench::median_time_s(
            [&] {
              work = original;
              cell.flops = kernel->partial_factor(work.data(), m, eta,
                                                  nullptr);
            },
            reps);
        cell.bit_identical = work == reference;
        if (cell.config.kind == KernelKind::kBlocked) {
          // The blocked kernel preserves the reference's per-entry update
          // order exactly; anything else is a kernel bug.
          TM_CHECK(cell.bit_identical,
                   "blocked kernel diverged from the scalar reference at m="
                       << m << " nb=" << cell.config.block_size);
        } else {
          TM_CHECK(relative_frobenius_distance(reference, work) <= 1e-12,
                   "kernel " << to_string(cell.config.kind)
                             << " violated the residual contract at m=" << m);
        }
        const double gflops = static_cast<double>(cell.flops) /
                              std::max(cell.seconds, 1e-12) / 1e9;
        if (cell.config.kind == KernelKind::kScalar) {
          scalar_gflops = gflops;
        } else if (cell.config.kind == KernelKind::kBlocked) {
          if (gflops > best_blocked) {
            best_blocked = gflops;
            best_blocked_nb = cell.config.block_size;
          }
        } else if (cell.config.fork_join) {
          best_forkjoin = std::max(best_forkjoin, gflops);
        } else if (gflops > best_parallel) {
          best_parallel = gflops;
          best_parallel_nb = cell.config.block_size;
        }
        const bool tiled = cell.config.kind == KernelKind::kParallelTiled;
        csv.write_row(
            {to_string(cell.config.kind),
             CsvWriter::cell(static_cast<long long>(cell.config.block_size)),
             CsvWriter::cell(static_cast<long long>(tiled ? workers : 1)),
             !tiled ? "serial" : cell.config.fork_join ? "forkjoin" : "leased",
             CsvWriter::cell(static_cast<long long>(m)),
             CsvWriter::cell(static_cast<long long>(eta)),
             CsvWriter::cell(cell.seconds), CsvWriter::cell(gflops),
             cell.bit_identical ? "1" : "0"});
      }
      table.add_row({std::to_string(m), std::to_string(eta),
                     fmt(scalar_gflops),
                     fmt(best_blocked) + " (" +
                         std::to_string(best_blocked_nb) + ")",
                     fmt(best_parallel) + " (" +
                         std::to_string(best_parallel_nb) + ")",
                     fmt(best_blocked / scalar_gflops) + "x",
                     fmt(best_parallel / std::max(best_forkjoin, 1e-12)) +
                         "x"});
    }
  }

  std::cout << table.to_string();
  std::cout << "\nreading: the cache-blocked kernel streams the trailing\n"
               "matrix once per panel instead of once per pivot, so its\n"
               "advantage over the scalar reference grows with the front\n"
               "(the multifrontal root-front regime); the parallel-tiled\n"
               "kernel adds intra-front threads on top for the largest\n"
               "fronts (workers = " +
                   std::to_string(workers) +
                   " here). The leased/fork column is the\n"
                   "leased-dispatch GF/s over the per-panel fork/join GF/s\n"
                   "for the best parallel cell — the persistent pool's win\n"
                   "per panel. Blocked results are checked bit-identical\n"
                   "to the scalar reference on every cell.\n";
  std::cout << "raw data: " << csv.path() << "\n";
  return 0;
}

}  // namespace

int main() { return run(); }
