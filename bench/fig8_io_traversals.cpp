// Figure 8: I/O volume of the three MinMemory algorithms' traversals, each
// equipped with the FirstFit eviction heuristic, over the same
// (instance, memory budget) cases as Fig. 7.
//
// Paper's result: PostOrder's traversals yield the least I/O; Liu beats
// MinMem because its construction produces long chains of dependent tasks
// whose files are consumed quickly — MinMem's cut-driven order spreads
// files over time and pays for it out-of-core.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/liu.hpp"
#include "core/minio.hpp"
#include "core/minmem.hpp"
#include "core/postorder.hpp"
#include "perf/profile.hpp"
#include "support/csv.hpp"
#include "support/parallel_for.hpp"

namespace {

using namespace treemem;

constexpr int kMemorySteps = 5;

struct CaseResult {
  std::string instance;
  Weight memory = 0;
  Weight po_io = 0;
  Weight liu_io = 0;
  Weight mm_io = 0;
};

int run() {
  const auto instances = build_corpus_instances(bench::corpus_options());
  bench::print_header(
      "Fig. 8 — I/O volume of PostOrder/Liu/MinMem traversals + FirstFit");

  std::vector<std::vector<CaseResult>> per_instance(instances.size());
  parallel_for(instances.size(), [&](std::size_t i) {
    const Tree& tree = instances[i].tree;
    const TraversalResult po = best_postorder(tree);
    const TraversalResult liu = liu_optimal(tree);
    const MinMemResult mm = minmem_optimal(tree);
    const Weight lo = std::max(tree.max_mem_req(), tree.file_size(tree.root()));
    // Sweep between the elementwise bound and the *optimal* peak — the same
    // budget grid as Fig. 7, so every traversal is under genuine pressure on
    // the whole range (PostOrder's own peak is at least this).
    const Weight hi = std::min({po.peak, liu.peak, mm.peak});
    if (lo >= hi) {
      return;
    }
    for (int step = 0; step < kMemorySteps; ++step) {
      CaseResult result;
      result.instance = instances[i].name;
      result.memory = lo + (hi - lo) * step / kMemorySteps;
      const auto io_of = [&](const Traversal& order) {
        const MinIoResult res = minio_heuristic(tree, order, result.memory,
                                                EvictionPolicy::kFirstFit);
        TM_CHECK(res.feasible, "FirstFit infeasible above max MemReq");
        return res.io_volume;
      };
      result.po_io = io_of(po.order);
      result.liu_io = io_of(liu.order);
      result.mm_io = io_of(mm.order);
      per_instance[i].push_back(result);
    }
  });

  CsvWriter csv(bench::output_dir() + "/fig8_io_traversals.csv",
                {"instance", "memory", "postorder_io", "liu_io", "minmem_io"});
  std::vector<std::vector<double>> cases;
  for (const auto& instance_cases : per_instance) {
    for (const CaseResult& c : instance_cases) {
      csv.write_row({c.instance,
                     CsvWriter::cell(static_cast<long long>(c.memory)),
                     CsvWriter::cell(static_cast<long long>(c.po_io)),
                     CsvWriter::cell(static_cast<long long>(c.liu_io)),
                     CsvWriter::cell(static_cast<long long>(c.mm_io))});
      cases.push_back({static_cast<double>(c.po_io),
                       static_cast<double>(c.liu_io),
                       static_cast<double>(c.mm_io)});
    }
  }

  std::cout << "cases: " << cases.size() << "\n";
  ProfileOptions options;
  options.max_tau = 5.0;
  const auto profiles = performance_profiles(
      cases,
      {"PostOrder + First Fit", "Liu + First Fit", "MinMem + First Fit"},
      options);
  std::cout << "\nFig. 8 — I/O volume performance profiles:\n"
            << render_profiles(profiles, "tau (IO / best)");
  std::cout << "paper: PostOrder best, Liu second, MinMem worst for I/O\n";
  std::cout << "raw data: " << csv.path() << "\n";
  return 0;
}

}  // namespace

int main() { return run(); }
