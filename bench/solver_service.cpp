// solver_service — throughput of the solver-as-a-service layer.
//
// Replays one deterministic mixed-traffic trace (perf/traffic.hpp: a few
// sparsity patterns hit repeatedly with fresh SPD value sets and varying
// rhs batch sizes) through a SolverPool twice:
//
//   cold   — use_cache = false: every request redoes ordering, assembly
//            tree and traversal planning (the pre-service baseline);
//   cached — use_cache = true: one analyze+plan per distinct pattern,
//            every later request adopts the shared symbolic state.
//
// Reported per scenario: solves/sec (rhs columns / wall), p50/p99 request
// latency, cache hits/misses and the pool-aggregated SolverStats — plus
// the headline cached-vs-cold speedup. Scale knobs:
//   TREEMEM_SCALE — multiplies the base grid edge and the request count
//   TREEMEM_OUT   — CSV output directory (solver_service.csv)
#include <algorithm>
#include <cmath>
#include <future>
#include <iomanip>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "perf/traffic.hpp"
#include "support/csv.hpp"
#include "support/text_table.hpp"
#include "treemem.hpp"

using namespace treemem;

namespace {

struct ScenarioResult {
  std::string name;
  long long requests = 0;
  long long rhs_columns = 0;
  double wall_seconds = 0.0;
  double solves_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  long long cache_hits = 0;
  long long cache_misses = 0;
  SolverStats totals;
};

double percentile_ms(std::vector<double> latencies, double p) {
  std::sort(latencies.begin(), latencies.end());
  const std::size_t index = static_cast<std::size_t>(
      p * static_cast<double>(latencies.size() - 1) + 0.5);
  return latencies[index] * 1e3;
}

ScenarioResult run_scenario(const std::string& name, const ServiceTrace& trace,
                            bool use_cache, int workers) {
  SolverPoolOptions options;
  options.workers = workers;
  options.use_cache = use_cache;
  SolverPool pool(options);

  // Materialize every request up front: the measured window contains only
  // service work (symbolic, factorize, solves), not matrix generation.
  std::vector<SolveRequest> requests;
  requests.reserve(trace.requests.size());
  for (const ServiceRequest& request : trace.requests) {
    requests.push_back(materialize_request(trace, request));
  }

  Timer wall;
  std::vector<std::future<SolveOutcome>> futures;
  futures.reserve(requests.size());
  for (SolveRequest& request : requests) {
    futures.push_back(pool.submit(std::move(request)));
  }
  ScenarioResult result;
  result.name = name;
  std::vector<double> latencies;
  latencies.reserve(futures.size());
  for (std::future<SolveOutcome>& future : futures) {
    SolveOutcome outcome = future.get();
    result.rhs_columns += static_cast<long long>(outcome.solutions.size());
    latencies.push_back(outcome.seconds);
  }
  result.wall_seconds = wall.elapsed_s();
  result.requests = static_cast<long long>(futures.size());
  result.solves_per_sec =
      result.wall_seconds > 0.0
          ? static_cast<double>(result.rhs_columns) / result.wall_seconds
          : 0.0;
  result.p50_ms = percentile_ms(latencies, 0.50);
  result.p99_ms = percentile_ms(latencies, 0.99);
  const SymbolicCache::Stats cache = pool.cache_stats();
  result.cache_hits = cache.hits;
  result.cache_misses = cache.misses;
  result.totals = pool.aggregated_stats();
  return result;
}

std::string fixed3(double v) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(3) << v;
  return oss.str();
}

}  // namespace

int main() {
  const double scale = bench::scale_from_env();

  TrafficOptions traffic;
  traffic.patterns = 4;
  traffic.grid_base = static_cast<Index>(
      std::max(8.0, 12.0 * std::sqrt(scale)));
  traffic.requests = static_cast<int>(std::max(16.0, 48.0 * scale));
  traffic.max_rhs = 4;
  const ServiceTrace trace = build_service_trace(traffic);

  bench::print_header("solver-as-a-service throughput (reuse-heavy trace)");
  std::cout << "patterns=" << traffic.patterns << " (grid edges "
            << traffic.grid_base << ".." << traffic.grid_base + 6
            << "), requests=" << traffic.requests
            << ", rhs columns=" << trace.total_rhs() << "\n";

  const int workers = static_cast<int>(default_thread_count());
  const ScenarioResult cold =
      run_scenario("cold-analyze", trace, /*use_cache=*/false, workers);
  const ScenarioResult cached =
      run_scenario("symbolic-cache", trace, /*use_cache=*/true, workers);

  TextTable table({"scenario", "solves/sec", "p50 ms", "p99 ms", "hits",
                   "misses", "analyze s", "factorize s", "solve s"});
  for (const ScenarioResult* r : {&cold, &cached}) {
    table.add_row({r->name, fixed3(r->solves_per_sec), fixed3(r->p50_ms),
                   fixed3(r->p99_ms), std::to_string(r->cache_hits),
                   std::to_string(r->cache_misses),
                   fixed3(r->totals.analyze_seconds),
                   fixed3(r->totals.factorize_seconds),
                   fixed3(r->totals.solve_seconds)});
  }
  std::cout << table.to_string();
  const double speedup = cold.solves_per_sec > 0.0
                             ? cached.solves_per_sec / cold.solves_per_sec
                             : 0.0;
  std::cout << "cached vs cold speedup: " << fixed3(speedup) << "x\n";

  CsvWriter csv(bench::output_dir() + "/solver_service.csv",
                {"scenario", "patterns", "requests", "rhs_columns", "workers",
                 "wall_seconds", "solves_per_sec", "p50_ms", "p99_ms",
                 "cache_hits", "cache_misses", "factorizations", "rhs_solved",
                 "analyze_seconds", "factorize_seconds", "solve_seconds"});
  for (const ScenarioResult* r : {&cold, &cached}) {
    csv.write_row(
        {r->name, CsvWriter::cell(static_cast<long long>(traffic.patterns)),
         CsvWriter::cell(r->requests), CsvWriter::cell(r->rhs_columns),
         CsvWriter::cell(static_cast<long long>(workers)),
         CsvWriter::cell(r->wall_seconds), CsvWriter::cell(r->solves_per_sec),
         CsvWriter::cell(r->p50_ms), CsvWriter::cell(r->p99_ms),
         CsvWriter::cell(r->cache_hits), CsvWriter::cell(r->cache_misses),
         CsvWriter::cell(static_cast<long long>(r->totals.factorizations)),
         CsvWriter::cell(static_cast<long long>(r->totals.rhs_solved)),
         CsvWriter::cell(r->totals.analyze_seconds),
         CsvWriter::cell(r->totals.factorize_seconds),
         CsvWriter::cell(r->totals.solve_seconds)});
  }
  std::cout << "data: " << csv.path() << "\n";
  return 0;
}
