// solver_service — throughput of the solver-as-a-service layer.
//
// Replays one deterministic mixed-traffic trace (perf/traffic.hpp: a few
// sparsity patterns hit repeatedly with fresh SPD value sets and varying
// rhs batch sizes) through a SolverPool twice:
//
//   cold   — use_cache = false: every request redoes ordering, assembly
//            tree and traversal planning (the pre-service baseline);
//   cached — use_cache = true: one analyze+plan per distinct pattern,
//            every later request adopts the shared symbolic state.
//
// Round-two scenarios ride the same trace:
//
//   churn-evict    — the symbolic cache capped below the pattern count, so
//                    LRU eviction churns while correctness holds;
//   warm-restart   — symbolic state persisted to a state dir by one pool
//                    and loaded by a fresh one (zero symbolic misses);
//   repeat-refactor / repeat-cached — the trace with every request's value
//                    seed pinned per pattern, served without and with the
//                    numeric-factor cache (hits skip factorize entirely).
//
// Reported per scenario: solves/sec (rhs columns / wall), p50/p99 request
// latency, cache hits/misses/evictions, factor-cache hits and the
// pool-aggregated SolverStats — plus the headline cached-vs-cold and
// repeat-values speedups. Scale knobs:
//   TREEMEM_SCALE — multiplies the base grid edge and the request count
//   TREEMEM_OUT   — CSV output directory (solver_service.csv)
#include <algorithm>
#include <cmath>
#include <filesystem>
#include <future>
#include <iomanip>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "perf/traffic.hpp"
#include "support/csv.hpp"
#include "support/text_table.hpp"
#include "treemem.hpp"

using namespace treemem;

namespace {

struct ScenarioResult {
  std::string name;
  long long requests = 0;
  long long rhs_columns = 0;
  double wall_seconds = 0.0;
  double solves_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  long long cache_hits = 0;
  long long cache_misses = 0;
  long long cache_evictions = 0;
  long long factor_hits = 0;
  long long factor_misses = 0;
  SolverStats totals;
};

double percentile_ms(std::vector<double> latencies, double p) {
  std::sort(latencies.begin(), latencies.end());
  const std::size_t index = static_cast<std::size_t>(
      p * static_cast<double>(latencies.size() - 1) + 0.5);
  return latencies[index] * 1e3;
}

ScenarioResult run_scenario(const std::string& name, const ServiceTrace& trace,
                            const SolverPoolOptions& options,
                            const std::string& load_dir = "",
                            const std::string& save_dir = "") {
  SolverPool pool(options);
  if (!load_dir.empty()) {
    load_symbolic_state(pool.cache(), load_dir);
  }

  // Materialize every request up front: the measured window contains only
  // service work (symbolic, factorize, solves), not matrix generation.
  std::vector<SolveRequest> requests;
  requests.reserve(trace.requests.size());
  for (const ServiceRequest& request : trace.requests) {
    requests.push_back(materialize_request(trace, request));
  }

  Timer wall;
  std::vector<std::future<SolveOutcome>> futures;
  futures.reserve(requests.size());
  for (SolveRequest& request : requests) {
    futures.push_back(pool.submit(std::move(request)));
  }
  ScenarioResult result;
  result.name = name;
  std::vector<double> latencies;
  latencies.reserve(futures.size());
  for (std::future<SolveOutcome>& future : futures) {
    SolveOutcome outcome = future.get();
    result.rhs_columns += static_cast<long long>(outcome.solutions.size());
    latencies.push_back(outcome.seconds);
  }
  result.wall_seconds = wall.elapsed_s();
  result.requests = static_cast<long long>(futures.size());
  result.solves_per_sec =
      result.wall_seconds > 0.0
          ? static_cast<double>(result.rhs_columns) / result.wall_seconds
          : 0.0;
  result.p50_ms = percentile_ms(latencies, 0.50);
  result.p99_ms = percentile_ms(latencies, 0.99);
  const SymbolicCache::Stats cache = pool.cache_stats();
  result.cache_hits = cache.hits;
  result.cache_misses = cache.misses;
  result.cache_evictions = static_cast<long long>(cache.evictions);
  const NumericCache::Stats factors = pool.factor_cache_stats();
  result.factor_hits = factors.hits;
  result.factor_misses = factors.misses;
  result.totals = pool.aggregated_stats();
  if (!save_dir.empty()) {
    save_symbolic_state(pool.cache(), save_dir);
  }
  return result;
}

std::string fixed3(double v) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(3) << v;
  return oss.str();
}

}  // namespace

int main() {
  const double scale = bench::scale_from_env();

  TrafficOptions traffic;
  traffic.patterns = 4;
  traffic.grid_base = static_cast<Index>(
      std::max(8.0, 12.0 * std::sqrt(scale)));
  traffic.requests = static_cast<int>(std::max(16.0, 48.0 * scale));
  traffic.max_rhs = 4;
  const ServiceTrace trace = build_service_trace(traffic);

  bench::print_header("solver-as-a-service throughput (reuse-heavy trace)");
  std::cout << "patterns=" << traffic.patterns << " (grid edges "
            << traffic.grid_base << ".." << traffic.grid_base + 6
            << "), requests=" << traffic.requests
            << ", rhs columns=" << trace.total_rhs() << "\n";

  const int workers = static_cast<int>(default_thread_count());
  SolverPoolOptions cold_options;
  cold_options.workers = workers;
  cold_options.use_cache = false;
  SolverPoolOptions cached_options;
  cached_options.workers = workers;
  const ScenarioResult cold = run_scenario("cold-analyze", trace, cold_options);
  const ScenarioResult cached =
      run_scenario("symbolic-cache", trace, cached_options);

  // Churn: cap the symbolic cache below the pattern count so LRU eviction
  // is constantly in play while the trace keeps rotating patterns.
  SolverPoolOptions churn_options = cached_options;
  churn_options.cache_entries =
      static_cast<std::size_t>(std::max(1, traffic.patterns / 2));
  const ScenarioResult churn =
      run_scenario("churn-evict", trace, churn_options);

  // Warm restart: persist the cached pool's symbolic state, then replay
  // the trace in a fresh pool that loads it — zero symbolic misses.
  const std::string state_dir = bench::output_dir() + "/solver_service_state";
  std::filesystem::remove_all(state_dir);
  const ScenarioResult first_boot = run_scenario(
      "first-boot", trace, cached_options, /*load_dir=*/"", state_dir);
  const ScenarioResult warm = run_scenario("warm-restart", trace,
                                           cached_options, state_dir);

  // Repeat values: pin every request of a pattern to one value seed, then
  // serve without and with the numeric-factor cache.
  ServiceTrace repeat_trace = trace;
  for (ServiceRequest& request : repeat_trace.requests) {
    request.value_seed =
        static_cast<std::uint64_t>(request.pattern_id + 1) * 17u;
  }
  const ScenarioResult repeat_refactor =
      run_scenario("repeat-refactor", repeat_trace, cached_options);
  SolverPoolOptions factor_options = cached_options;
  factor_options.factor_cache_entries =
      static_cast<std::size_t>(traffic.patterns) * 2;
  const ScenarioResult repeat_cached =
      run_scenario("repeat-cached", repeat_trace, factor_options);

  const ScenarioResult* scenarios[] = {&cold,       &cached, &churn,
                                       &first_boot, &warm,   &repeat_refactor,
                                       &repeat_cached};
  TextTable table({"scenario", "solves/sec", "p50 ms", "p99 ms", "hits",
                   "misses", "evict", "f.hits", "analyze s", "factorize s",
                   "solve s"});
  for (const ScenarioResult* r : scenarios) {
    table.add_row({r->name, fixed3(r->solves_per_sec), fixed3(r->p50_ms),
                   fixed3(r->p99_ms), std::to_string(r->cache_hits),
                   std::to_string(r->cache_misses),
                   std::to_string(r->cache_evictions),
                   std::to_string(r->factor_hits),
                   fixed3(r->totals.analyze_seconds),
                   fixed3(r->totals.factorize_seconds),
                   fixed3(r->totals.solve_seconds)});
  }
  std::cout << table.to_string();
  const double speedup = cold.solves_per_sec > 0.0
                             ? cached.solves_per_sec / cold.solves_per_sec
                             : 0.0;
  std::cout << "cached vs cold speedup: " << fixed3(speedup) << "x\n";
  const double repeat_speedup =
      repeat_refactor.solves_per_sec > 0.0
          ? repeat_cached.solves_per_sec / repeat_refactor.solves_per_sec
          : 0.0;
  std::cout << "repeat-values cached vs refactorize speedup: "
            << fixed3(repeat_speedup) << "x\n";
  std::cout << "warm restart symbolic misses: " << warm.cache_misses
            << " (cold boot paid " << first_boot.cache_misses << ")\n";

  CsvWriter csv(bench::output_dir() + "/solver_service.csv",
                {"scenario", "patterns", "requests", "rhs_columns", "workers",
                 "wall_seconds", "solves_per_sec", "p50_ms", "p99_ms",
                 "cache_hits", "cache_misses", "cache_evictions",
                 "factor_hits", "factor_misses", "factorizations",
                 "rhs_solved", "analyze_seconds", "factorize_seconds",
                 "solve_seconds"});
  for (const ScenarioResult* r : scenarios) {
    csv.write_row(
        {r->name, CsvWriter::cell(static_cast<long long>(traffic.patterns)),
         CsvWriter::cell(r->requests), CsvWriter::cell(r->rhs_columns),
         CsvWriter::cell(static_cast<long long>(workers)),
         CsvWriter::cell(r->wall_seconds), CsvWriter::cell(r->solves_per_sec),
         CsvWriter::cell(r->p50_ms), CsvWriter::cell(r->p99_ms),
         CsvWriter::cell(r->cache_hits), CsvWriter::cell(r->cache_misses),
         CsvWriter::cell(r->cache_evictions),
         CsvWriter::cell(r->factor_hits), CsvWriter::cell(r->factor_misses),
         CsvWriter::cell(static_cast<long long>(r->totals.factorizations)),
         CsvWriter::cell(static_cast<long long>(r->totals.rhs_solved)),
         CsvWriter::cell(r->totals.analyze_seconds),
         CsvWriter::cell(r->totals.factorize_seconds),
         CsvWriter::cell(r->totals.solve_seconds)});
  }
  std::cout << "data: " << csv.path() << "\n";
  return 0;
}
