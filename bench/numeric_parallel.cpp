// Extension bench: the end-to-end parallel numeric pipeline — corpus
// matrix → treemem::Solver facade (analyze → plan → factorize) — swept
// across the dense front kernels (dense/front_kernel.hpp).
//
// Each instance is analyzed ONCE (ordering, assembly tree, symbolic) and
// then factorized many times through the facade's reuse path: serially
// (the scalar reference along the planned best postorder), and with the
// threaded engine at w ∈ {1, 2, 4, 8} under each kernel — scalar,
// cache-blocked, parallel-tiled — free and (at w = 4) re-planned with the
// modeled budget capped at 1.5× the w = 1 modeled peak. Reported per run:
// measured factor seconds, speedup over the serial engine, the engine's
// *measured* peak live entries and the *modeled* Eq. 1 peak from
// SolverStats — the same quantity in the same units, machine vs. model.
// Stalled capped runs are reported as such (the greedy scheduler's memory
// deadlock, surfaced by allow_serial_fallback = false, not an error).
//
// Kernel exactness is enforced on every feasible run: scalar and blocked
// must reproduce the serial factor bit for bit; the parallel-tiled kernel
// must stay within its residual contract. The sweep's block size follows
// TREEMEM_KERNEL (e.g. TREEMEM_KERNEL=blocked:64 resizes the panels
// without recompiling); intra-front workers follow TREEMEM_THREADS.
//
// Two additions chart what the persistent worker pool buys: a per-instance
// leased-vs-fork/join dispatch shootout (same parallel-tiled panels at
// w = 4, only the dispatch mechanism differs — the "pool/fork w=4" column
// is the fork/join time over the leased time), and a standalone
// fork-overhead microbench printed at the end (per-round cost of waking
// the parked crew vs birthing threads, outside any factorization).
#include <algorithm>
#include <atomic>
#include <cmath>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "bench_common.hpp"
#include "dense/spd_front.hpp"
#include "multifrontal/numeric.hpp"
#include "obs/trace.hpp"
#include "parallel/worker_pool.hpp"
#include "solver/solver.hpp"
#include "support/csv.hpp"
#include "support/parallel_for.hpp"
#include "support/text_table.hpp"
#include "support/timer.hpp"

namespace {

using namespace treemem;

std::string fmt(double v, int precision = 2) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

int run(const std::string& trace_path) {
  // Records the whole sweep (tree-level lanes, panel/trailing spans, pool
  // lease instants) when --trace or TREEMEM_TRACE asks for it.
  obs::TraceSession trace(trace_path);
  CorpusOptions options = bench::corpus_options();
  // Numeric factorization is dense-kernel heavy; a moderate slice of the
  // corpus keeps the smoke run in seconds while exercising real fronts.
  // The facade re-runs the same ordering/relax pipeline internally, so
  // instances match the old hand-stitched build_numeric_instances ones.
  const auto matrices = smallest_corpus_matrices(options, /*count=*/5);
  bench::print_header(
      "Extension — parallel numeric multifrontal Cholesky via the Solver "
      "facade: kernels × workers, measured vs modeled peak");

  // The env override steers the sweep's block size (and names the default
  // kernel, though all three kinds are always swept).
  const KernelConfig base = kernel_config_from_env();
  KernelConfig kernels[3];
  kernels[0].kind = KernelKind::kScalar;
  kernels[1].kind = KernelKind::kBlocked;
  kernels[2].kind = KernelKind::kParallelTiled;
  for (KernelConfig& k : kernels) {
    k.block_size = base.block_size;
  }

  CsvWriter csv(bench::output_dir() + "/numeric_parallel.csv",
                {"instance", "n", "tree_nodes", "kernel", "block_size",
                 "workers", "mode", "runtime", "admission", "memory_budget",
                 "feasible", "serial_seconds", "parallel_seconds",
                 "speedup_vs_serial", "measured_peak", "modeled_peak",
                 "flops"});

  TextTable table({"instance", "n", "serial s", "scalar w=8 s",
                   "blocked w=8 s", "parallel w=8 s", "best speedup",
                   "pool/fork w=4", "capped greedy", "capped la"});

  // "Largest" for the root-front check means the most factorization work
  // (dense flops), not the widest matrix — a huge narrow-band instance has
  // only small fronts and says nothing about kernel quality.
  std::string largest_name;
  long long largest_flops = -1;
  double largest_scalar_w8 = 0.0, largest_parallel_w8 = 0.0;

  for (const CorpusMatrix& source : matrices) {
    for (const OrderingChoice ordering :
         {OrderingChoice::kMinDegree, OrderingChoice::kNestedDissection}) {
      const std::string name = source.name + "/" + to_string(ordering) +
                               "/r" + std::to_string(options.relax_values.front());
      const SymmetricMatrix values =
          make_spd_matrix(source.pattern, options.seed);
      const Index n = source.pattern.cols();

      // Analyze ONCE; every run below reuses the symbolic state. The plan
      // pins the best postorder — the serial yardstick the kernels are
      // measured against (TREEMEM_KERNEL must not move it either, hence
      // the explicit scalar config).
      AnalyzeOptions analyze;
      analyze.ordering = ordering;
      analyze.relax = options.relax_values.front();
      Solver solver;
      solver.analyze(source.pattern, analyze);
      const Tree& tree = solver.assembly().tree;

      PlanOptions free_plan;
      free_plan.policy = TraversalPolicy::kPostorder;
      solver.plan(free_plan);

      FactorizeOptions serial_options;
      serial_options.engine = FactorizeEngine::kSerial;
      serial_options.kernel = KernelConfig{};
      serial_options.kernel.kind = KernelKind::kScalar;
      solver.factorize(values, serial_options);
      const double serial_seconds = solver.stats().factorize_seconds;
      const long long serial_flops = solver.stats().flops;
      const std::vector<double> serial_factor = solver.factor().values;

      // The w = 1 modeled peak anchors the capped runs (kernel-independent:
      // the model sees only the assembly-tree weights).
      FactorizeOptions w1 = serial_options;
      w1.engine = FactorizeEngine::kParallel;
      w1.workers = 1;
      solver.factorize(values, w1);
      const Weight cap = std::max(solver.stats().modeled_peak_entries * 3 / 2,
                                  tree.max_mem_req());

      double w8_seconds[3] = {0.0, 0.0, 0.0};
      double best_speedup = 0.0;
      std::string capped_greedy_cell = "-";
      std::string capped_lookahead_cell = "-";

      // Exactness enforcement on every feasible run: a fast wrong kernel
      // must crash the bench, not chart a win.
      const auto check_factor = [&](const KernelConfig& kernel) {
        if (kernel.kind == KernelKind::kParallelTiled) {
          // Contract: residual-bounded against the scalar reference.
          TM_CHECK(relative_frobenius_distance(serial_factor,
                                               solver.factor().values) <= 1e-12,
                   "parallel-tiled factor drifted past its residual contract "
                   "on " << name);
        } else {
          // Scalar and blocked: bit-identical to the serial engine.
          TM_CHECK(solver.factor().values == serial_factor,
                   to_string(kernel.kind)
                       << " factor diverged from serial on " << name);
        }
      };
      // One parallel run's numbers, captured from SolverStats at run time
      // (the solver's stats describe only the *latest* factorize call).
      struct RunSample {
        bool feasible = false;
        double seconds = 0.0;
        Weight measured_peak = 0;
        Weight modeled_peak = 0;
        long long flops = 0;
      };
      const auto write_row = [&](const KernelConfig& kernel, int workers,
                                 const char* mode_label,
                                 AdmissionPolicy admission, Weight budget,
                                 const RunSample& run, double speedup,
                                 const char* runtime = "leased") {
        csv.write_row(
            {name, CsvWriter::cell(static_cast<long long>(n)),
             CsvWriter::cell(static_cast<long long>(tree.size())),
             to_string(kernel.kind),
             CsvWriter::cell(static_cast<long long>(kernel.block_size)),
             CsvWriter::cell(static_cast<long long>(workers)), mode_label,
             runtime, to_string(admission),
             budget == kInfiniteWeight ? std::string("inf")
                                       : std::to_string(budget),
             run.feasible ? "1" : "0", CsvWriter::cell(serial_seconds),
             CsvWriter::cell(run.seconds), CsvWriter::cell(speedup),
             CsvWriter::cell(static_cast<long long>(run.measured_peak)),
             CsvWriter::cell(static_cast<long long>(run.modeled_peak)),
             CsvWriter::cell(run.flops)});
      };

      // A parallel factorization through the facade; a greedy stall is
      // surfaced as an infeasible sample (typed SolverStallError — not
      // smoothed over by the serial fallback).
      const auto parallel_run = [&](const KernelConfig& kernel, int workers,
                                    AdmissionPolicy admission =
                                        AdmissionPolicy::kGreedy,
                                    bool lease_idle = true) {
        FactorizeOptions run_options;
        run_options.engine = FactorizeEngine::kParallel;
        run_options.workers = workers;
        run_options.kernel = kernel;
        run_options.admission = admission;
        run_options.allow_serial_fallback = false;
        run_options.lease_idle_workers = lease_idle;
        RunSample sample;
        try {
          solver.factorize(values, run_options);
        } catch (const SolverStallError&) {
          return sample;
        }
        check_factor(kernel);
        sample.feasible = true;
        sample.seconds = solver.stats().factorize_seconds;
        sample.measured_peak = solver.stats().measured_peak_entries;
        sample.modeled_peak = solver.stats().modeled_peak_entries;
        sample.flops = solver.stats().flops;
        return sample;
      };

      // Worker sweep (single samples) + one capped point per kernel.
      for (int ki = 0; ki < 3; ++ki) {
        const KernelConfig& kernel = kernels[ki];
        for (const int workers : {1, 2, 4}) {
          struct Mode {
            const char* label;
            AdmissionPolicy admission;
            Weight budget;
          };
          // Capped points (w = 4 only) run once per admission policy: the
          // greedy column charts the stall, the lookahead/reservation
          // columns chart the stall-free throughput under the same budget.
          const Mode modes[] = {
              {"free", AdmissionPolicy::kGreedy, kInfiniteWeight},
              {"capped", AdmissionPolicy::kGreedy, cap},
              {"capped", AdmissionPolicy::kLookahead, cap},
              {"capped", AdmissionPolicy::kReservation, cap}};
          for (const Mode& mode : modes) {
            if (mode.budget != kInfiniteWeight && workers != 4) {
              continue;  // one capped point per kernel tells the story
            }
            PlanOptions plan = free_plan;
            if (mode.budget != kInfiniteWeight) {
              // Re-plan under the cap; the symbolic state is reused. kAuto
              // may tighten the traversal to fit (the facade's regime
              // logic); the parallel engine only consumes the budget.
              plan.policy = TraversalPolicy::kAuto;
              plan.memory_budget = mode.budget;
              plan.admission = mode.admission;
            }
            solver.plan(plan);
            const RunSample run =
                parallel_run(kernel, workers, mode.admission);
            const double speedup =
                run.feasible ? serial_seconds / std::max(run.seconds, 1e-12)
                             : 0.0;
            write_row(kernel, workers, mode.label, mode.admission,
                      mode.budget, run, speedup);
            if (mode.budget != kInfiniteWeight && workers == 4 &&
                kernel.kind == base.kind) {
              std::string& cell =
                  mode.admission == AdmissionPolicy::kLookahead
                      ? capped_lookahead_cell
                      : capped_greedy_cell;
              if (mode.admission != AdmissionPolicy::kReservation) {
                cell = run.feasible ? fmt(speedup) + "x" : "stall";
              }
            }
          }
        }
      }

      // w = 8 shootout — the per-kernel wall-clock comparison the
      // root-front check reads. Reps interleave the kernels so machine
      // drift lands on all of them equally; min-of-3 is the estimator.
      solver.plan(free_plan);
      RunSample best[3];
      for (int rep = 0; rep < 3; ++rep) {
        for (int ki = 0; ki < 3; ++ki) {
          const RunSample run = parallel_run(kernels[ki], 8);
          TM_CHECK(run.feasible, "unbounded w=8 run must be feasible");
          if (rep == 0 || run.seconds < best[ki].seconds) {
            best[ki] = run;
          }
        }
      }
      for (int ki = 0; ki < 3; ++ki) {
        const double speedup =
            serial_seconds / std::max(best[ki].seconds, 1e-12);
        write_row(kernels[ki], 8, "free", AdmissionPolicy::kGreedy,
                  kInfiniteWeight, best[ki], speedup);
        w8_seconds[ki] = best[ki].seconds;
        best_speedup = std::max(best_speedup, speedup);
      }

      // Leased vs fork/join dispatch at w = 4: identical parallel-tiled
      // panels and tiles, only the dispatch mechanism differs — the
      // persistent pool wakes its parked crew, the legacy path births a
      // thread per tile crew per panel. Min-of-3, interleaved. The ratio
      // cell is fork/join time over leased time (> 1 means the pool wins).
      KernelConfig forkjoin_kernel = kernels[2];
      forkjoin_kernel.fork_join = true;
      RunSample best_leased, best_forkjoin;
      for (int rep = 0; rep < 3; ++rep) {
        const RunSample leased = parallel_run(kernels[2], 4);
        const RunSample forked = parallel_run(
            forkjoin_kernel, 4, AdmissionPolicy::kGreedy,
            /*lease_idle=*/false);
        TM_CHECK(leased.feasible && forked.feasible,
                 "unbounded w=4 dispatch shootout must be feasible");
        if (rep == 0 || leased.seconds < best_leased.seconds) {
          best_leased = leased;
        }
        if (rep == 0 || forked.seconds < best_forkjoin.seconds) {
          best_forkjoin = forked;
        }
      }
      write_row(kernels[2], 4, "dispatch", AdmissionPolicy::kGreedy,
                kInfiniteWeight, best_leased,
                serial_seconds / std::max(best_leased.seconds, 1e-12));
      write_row(forkjoin_kernel, 4, "dispatch", AdmissionPolicy::kGreedy,
                kInfiniteWeight, best_forkjoin,
                serial_seconds / std::max(best_forkjoin.seconds, 1e-12),
                "forkjoin");
      const double dispatch_ratio =
          best_forkjoin.seconds / std::max(best_leased.seconds, 1e-12);

      if (serial_flops > largest_flops) {
        largest_flops = serial_flops;
        largest_name = name;
        largest_scalar_w8 = w8_seconds[0];
        largest_parallel_w8 = w8_seconds[2];
      }
      table.add_row({name, std::to_string(n), fmt(serial_seconds, 3),
                     fmt(w8_seconds[0], 3), fmt(w8_seconds[1], 3),
                     fmt(w8_seconds[2], 3), fmt(best_speedup),
                     fmt(dispatch_ratio) + "x", capped_greedy_cell,
                     capped_lookahead_cell});
    }
  }

  std::cout << table.to_string();

  // Fork-overhead microbench, outside any factorization: per-round cost
  // of waking a parked 4-worker crew for an 8-tile loop vs spawning the
  // same crew as fresh threads. The pool spawns its 4 threads once, ever;
  // the fork/join path births 4 per round — the per-panel cost every
  // trailing update used to pay.
  {
    constexpr unsigned kCrew = 4;
    constexpr int kRounds = 32;
    constexpr std::size_t kTiles = 8;
    std::atomic<long long> sink{0};
    const auto tiny_body = [&](std::size_t i) {
      sink.fetch_add(static_cast<long long>(i) + 1,
                     std::memory_order_relaxed);
    };
    WorkerPool pool(kCrew);
    Timer leased_wall;
    for (int round = 0; round < kRounds; ++round) {
      while (pool.idle_workers() != kCrew) {
        std::this_thread::yield();
      }
      pool.try_lease(kCrew - 1).run(kTiles, tiny_body);
    }
    const double leased_us = leased_wall.elapsed_s() * 1e6 / kRounds;
    const long long births_before = forkjoin_threads_spawned();
    Timer forkjoin_wall;
    for (int round = 0; round < kRounds; ++round) {
      forkjoin_parallel_for(kTiles, tiny_body, kCrew);
    }
    const double forkjoin_us = forkjoin_wall.elapsed_s() * 1e6 / kRounds;
    const long long births = forkjoin_threads_spawned() - births_before;
    std::cout << "\nfork-overhead microbench (8-tile loop, crew of "
              << kCrew << "): leased " << fmt(leased_us, 1)
              << " us/round vs fork/join " << fmt(forkjoin_us, 1)
              << " us/round (" << fmt(forkjoin_us / std::max(leased_us, 1e-9))
              << "x); thread births: " << pool.stats().threads_spawned
              << " once vs " << births << " across " << kRounds
              << " rounds\n";
  }

  std::cout << "\nroot-front check (largest instance, " << largest_name
            << "): parallel-tiled w=8 " << fmt(largest_parallel_w8, 3)
            << " s vs scalar w=8 " << fmt(largest_scalar_w8, 3) << " s — "
            << fmt(largest_scalar_w8 /
                   std::max(largest_parallel_w8, 1e-12))
            << "x\n";
  std::cout << "\nreading: every instance is analyzed once and factorized "
               "~35 times through the\nfacade's reuse path — every kernel "
               "reproduces the serial factor (scalar/blocked\nbit for bit, "
               "parallel-tiled within its residual contract) at every "
               "worker count,\nwhile the engine's measured live entries "
               "stay within the Eq. 1 model reported\nby SolverStats. The "
               "cache-blocked kernels outrun the scalar reference on the\n"
               "dense-front-heavy instances — the intra-front lever for "
               "the root fronts that\ncap tree-level speedup — and "
               "re-planning with the budget capped at 1.5x the\nw=1 peak "
               "throttles or stalls the greedy schedule, while the "
               "lookahead and\nreservation admission policies factor the "
               "same instances stall-free under\nthe same budget: the "
               "memory/parallelism tension the paper's conclusion\n"
               "anticipates, on real numeric payloads.\n";
  std::cout << "raw data: " << csv.path() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::cerr << "usage: numeric_parallel [--trace out.json]\n";
      return 2;
    }
  }
  return run(trace_path);
}
