// Extension bench: the end-to-end parallel numeric pipeline — corpus
// matrix → ordering → assembly tree → threaded multifrontal Cholesky —
// now swept across the dense front kernels (dense/front_kernel.hpp).
//
// For the smallest corpus matrices under both orderings, factor each
// instance serially (the scalar reference walked along the reversed best
// postorder) and with factor_parallel at w ∈ {1, 2, 4, 8} under each
// kernel — scalar, cache-blocked, parallel-tiled — free and (at w = 4)
// with the modeled budget capped at 1.5× the w = 1 modeled peak. Reported
// per run: measured factor seconds, speedup over the serial engine, the
// engine's *measured* peak live entries and the executor's *modeled* Eq. 1
// peak — the same quantity in the same units, machine vs. model. Stalled
// capped runs are reported as such (the greedy scheduler's memory
// deadlock, not an error).
//
// Kernel exactness is enforced on every feasible run: scalar and blocked
// must reproduce the serial factor bit for bit; the parallel-tiled kernel
// must stay within its residual contract. The sweep's block size follows
// TREEMEM_KERNEL (e.g. TREEMEM_KERNEL=blocked:64 resizes the panels
// without recompiling); intra-front workers follow TREEMEM_THREADS.
#include <cmath>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "core/postorder.hpp"
#include "dense/spd_front.hpp"
#include "multifrontal/numeric_parallel.hpp"
#include "support/csv.hpp"
#include "support/text_table.hpp"
#include "support/timer.hpp"

namespace {

using namespace treemem;

std::string fmt(double v, int precision = 2) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

int run() {
  CorpusOptions options = bench::corpus_options();
  // Numeric factorization is dense-kernel heavy; a moderate slice of the
  // corpus keeps the smoke run in seconds while exercising real fronts.
  const auto instances = build_numeric_instances(options, /*max_matrices=*/5);
  bench::print_header(
      "Extension — parallel numeric multifrontal Cholesky: kernels × "
      "workers, measured vs modeled peak");

  // The env override steers the sweep's block size (and names the default
  // kernel, though all three kinds are always swept).
  const KernelConfig base = kernel_config_from_env();
  KernelConfig kernels[3];
  kernels[0].kind = KernelKind::kScalar;
  kernels[1].kind = KernelKind::kBlocked;
  kernels[2].kind = KernelKind::kParallelTiled;
  for (KernelConfig& k : kernels) {
    k.block_size = base.block_size;
  }

  CsvWriter csv(bench::output_dir() + "/numeric_parallel.csv",
                {"instance", "n", "tree_nodes", "kernel", "block_size",
                 "workers", "mode", "memory_budget", "feasible",
                 "serial_seconds", "parallel_seconds", "speedup_vs_serial",
                 "measured_peak", "modeled_peak", "flops"});

  TextTable table({"instance", "n", "serial s", "scalar w=8 s",
                   "blocked w=8 s", "parallel w=8 s", "best speedup",
                   "capped w=4"});

  // "Largest" for the root-front check means the most factorization work
  // (dense flops), not the widest matrix — a huge narrow-band instance has
  // only small fronts and says nothing about kernel quality.
  std::string largest_name;
  long long largest_flops = -1;
  double largest_scalar_w8 = 0.0, largest_parallel_w8 = 0.0;

  for (const NumericInstance& inst : instances) {
    const Tree& tree = inst.assembly.tree;
    const Index n = inst.matrix.size();

    // Serial baseline: the scalar reference along the reversed best
    // postorder (pinned explicitly — TREEMEM_KERNEL must not move the
    // yardstick the kernels are measured against).
    Timer serial_timer;
    const MultifrontalResult serial = multifrontal_cholesky(
        inst.matrix, inst.assembly,
        reverse_traversal(best_postorder(tree).order), KernelConfig{});
    const double serial_seconds = serial_timer.elapsed_s();

    // The w = 1 modeled peak anchors the capped runs (kernel-independent:
    // the model sees only the assembly-tree weights).
    ParallelFactorOptions w1;
    w1.workers = 1;
    w1.kernel = KernelConfig{};
    const ParallelFactorResult anchor =
        factor_parallel(inst.matrix, inst.assembly, w1);
    TM_CHECK(anchor.feasible, "unbounded w=1 run must be feasible");
    const Weight cap = std::max(anchor.modeled_peak_entries * 3 / 2,
                                tree.max_mem_req());

    double w8_seconds[3] = {0.0, 0.0, 0.0};
    double best_speedup = 0.0;
    std::string capped_cell = "-";

    // Exactness enforcement on every feasible run: a fast wrong kernel
    // must crash the bench, not chart a win.
    const auto check_factor = [&](const KernelConfig& kernel,
                                  const ParallelFactorResult& run) {
      if (!run.feasible) {
        return;
      }
      if (kernel.kind == KernelKind::kParallelTiled) {
        // Contract: residual-bounded against the scalar reference.
        TM_CHECK(relative_frobenius_distance(serial.factor.values,
                                             run.factor.values) <= 1e-12,
                 "parallel-tiled factor drifted past its residual contract "
                 "on " << inst.name);
      } else {
        // Scalar and blocked: bit-identical to the serial engine.
        TM_CHECK(run.factor.values == serial.factor.values,
                 to_string(kernel.kind)
                     << " factor diverged from serial on " << inst.name);
      }
    };
    const auto write_row = [&](const KernelConfig& kernel, int workers,
                               const char* mode_label, Weight budget,
                               const ParallelFactorResult& run,
                               double speedup) {
      csv.write_row(
          {inst.name, CsvWriter::cell(static_cast<long long>(n)),
           CsvWriter::cell(static_cast<long long>(tree.size())),
           to_string(kernel.kind),
           CsvWriter::cell(static_cast<long long>(kernel.block_size)),
           CsvWriter::cell(static_cast<long long>(workers)), mode_label,
           budget == kInfiniteWeight ? std::string("inf")
                                     : std::to_string(budget),
           run.feasible ? "1" : "0", CsvWriter::cell(serial_seconds),
           CsvWriter::cell(run.factor_seconds), CsvWriter::cell(speedup),
           CsvWriter::cell(static_cast<long long>(run.measured_peak_entries)),
           CsvWriter::cell(static_cast<long long>(run.modeled_peak_entries)),
           CsvWriter::cell(static_cast<long long>(run.flops))});
    };

    // Worker sweep (single samples) + one capped point per kernel.
    for (int ki = 0; ki < 3; ++ki) {
      const KernelConfig& kernel = kernels[ki];
      for (const int workers : {1, 2, 4}) {
        struct Mode {
          const char* label;
          Weight budget;
        };
        const Mode modes[] = {{"free", kInfiniteWeight}, {"capped", cap}};
        for (const Mode& mode : modes) {
          if (mode.budget != kInfiniteWeight && workers != 4) {
            continue;  // one capped point per kernel tells the story
          }
          ParallelFactorOptions run_options;
          run_options.workers = workers;
          run_options.memory_budget = mode.budget;
          run_options.kernel = kernel;
          const ParallelFactorResult run =
              factor_parallel(inst.matrix, inst.assembly, run_options);
          const double speedup =
              run.feasible
                  ? serial_seconds / std::max(run.factor_seconds, 1e-12)
                  : 0.0;
          check_factor(kernel, run);
          write_row(kernel, workers, mode.label, mode.budget, run, speedup);
          if (mode.budget != kInfiniteWeight && workers == 4 &&
              kernel.kind == base.kind) {
            capped_cell = run.feasible ? fmt(speedup) + "x" : "stall";
          }
        }
      }
    }

    // w = 8 shootout — the per-kernel wall-clock comparison the root-front
    // check reads. Reps interleave the kernels so machine drift lands on
    // all of them equally, and min-of-3 is the wall-clock estimator.
    ParallelFactorResult best[3];
    for (int rep = 0; rep < 3; ++rep) {
      for (int ki = 0; ki < 3; ++ki) {
        ParallelFactorOptions run_options;
        run_options.workers = 8;
        run_options.kernel = kernels[ki];
        ParallelFactorResult run =
            factor_parallel(inst.matrix, inst.assembly, run_options);
        check_factor(kernels[ki], run);
        if (rep == 0 || run.factor_seconds < best[ki].factor_seconds) {
          best[ki] = std::move(run);
        }
      }
    }
    for (int ki = 0; ki < 3; ++ki) {
      const double speedup =
          serial_seconds / std::max(best[ki].factor_seconds, 1e-12);
      write_row(kernels[ki], 8, "free", kInfiniteWeight, best[ki], speedup);
      w8_seconds[ki] = best[ki].factor_seconds;
      best_speedup = std::max(best_speedup, speedup);
    }

    if (serial.flops > largest_flops) {
      largest_flops = serial.flops;
      largest_name = inst.name;
      largest_scalar_w8 = w8_seconds[0];
      largest_parallel_w8 = w8_seconds[2];
    }
    table.add_row({inst.name, std::to_string(n), fmt(serial_seconds, 3),
                   fmt(w8_seconds[0], 3), fmt(w8_seconds[1], 3),
                   fmt(w8_seconds[2], 3), fmt(best_speedup),
                   capped_cell});
  }

  std::cout << table.to_string();
  std::cout << "\nroot-front check (largest instance, " << largest_name
            << "): parallel-tiled w=8 " << fmt(largest_parallel_w8, 3)
            << " s vs scalar w=8 " << fmt(largest_scalar_w8, 3) << " s — "
            << fmt(largest_scalar_w8 /
                   std::max(largest_parallel_w8, 1e-12))
            << "x\n";
  std::cout << "\nreading: every kernel reproduces the serial factor "
               "(scalar/blocked bit for bit,\nparallel-tiled within its "
               "residual contract) at every worker count, while the\n"
               "engine's measured live entries stay within the executor's "
               "Eq. 1 model. The\ncache-blocked kernels outrun the scalar "
               "reference on the dense-front-heavy\ninstances — the "
               "intra-front lever for the root fronts that cap tree-level\n"
               "speedup — and capping the modeled budget at 1.5x the w=1 "
               "peak throttles or\nstalls the greedy schedule: the "
               "memory/parallelism tension the paper's\nconclusion "
               "anticipates, on real numeric payloads.\n";
  std::cout << "raw data: " << csv.path() << "\n";
  return 0;
}

}  // namespace

int main() { return run(); }
