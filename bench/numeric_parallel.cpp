// Extension bench: the end-to-end parallel numeric pipeline — corpus
// matrix → ordering → assembly tree → threaded multifrontal Cholesky.
//
// For the smallest corpus matrices under both orderings, factor each
// instance serially (the engine walked along the reversed best postorder)
// and with factor_parallel at w ∈ {1, 2, 4, 8}, free and with the modeled
// budget capped at 1.5× the w = 1 modeled peak. Reported per run: measured
// factor seconds, speedup over the serial engine, the engine's *measured*
// peak live entries and the executor's *modeled* Eq. 1 peak — the same
// quantity in the same units, machine vs. model. Stalled capped runs are
// reported as such (the greedy scheduler's memory deadlock, not an error).
#include <iomanip>
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "core/postorder.hpp"
#include "multifrontal/numeric_parallel.hpp"
#include "support/csv.hpp"
#include "support/text_table.hpp"
#include "support/timer.hpp"

namespace {

using namespace treemem;

std::string fmt(double v, int precision = 2) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

int run() {
  CorpusOptions options = bench::corpus_options();
  // Numeric factorization is dense-kernel heavy; a moderate slice of the
  // corpus keeps the smoke run in seconds while exercising real fronts.
  const auto instances = build_numeric_instances(options, /*max_matrices=*/5);
  bench::print_header(
      "Extension — parallel numeric multifrontal Cholesky: serial vs "
      "threaded, measured vs modeled peak");

  CsvWriter csv(bench::output_dir() + "/numeric_parallel.csv",
                {"instance", "n", "tree_nodes", "workers", "mode",
                 "memory_budget", "feasible", "serial_seconds",
                 "parallel_seconds", "speedup_vs_serial", "measured_peak",
                 "modeled_peak", "flops"});

  TextTable table({"instance", "n", "serial s", "w=8 s", "speedup",
                   "measured/modeled peak", "capped w=4"});

  for (const NumericInstance& inst : instances) {
    const Tree& tree = inst.assembly.tree;
    const Index n = inst.matrix.size();

    // Serial baseline: the plain engine along the reversed best postorder.
    Timer serial_timer;
    const MultifrontalResult serial = multifrontal_cholesky(
        inst.matrix, inst.assembly,
        reverse_traversal(best_postorder(tree).order));
    const double serial_seconds = serial_timer.elapsed_s();

    // The w = 1 modeled peak anchors the capped runs.
    ParallelFactorOptions w1;
    w1.workers = 1;
    const ParallelFactorResult base = factor_parallel(inst.matrix,
                                                      inst.assembly, w1);
    TM_CHECK(base.feasible, "unbounded w=1 run must be feasible");
    const Weight cap = std::max(base.modeled_peak_entries * 3 / 2,
                                tree.max_mem_req());

    double w8_seconds = 0.0;
    double w8_speedup = 0.0;
    Weight w8_measured = 0;
    Weight w8_modeled = 1;
    std::string capped_cell = "-";

    for (const int workers : {1, 2, 4, 8}) {
      struct Mode {
        const char* label;
        Weight budget;
      };
      const Mode modes[] = {{"free", kInfiniteWeight}, {"capped", cap}};
      for (const Mode& mode : modes) {
        if (mode.budget != kInfiniteWeight && workers != 4) {
          continue;  // one capped point suffices for the smoke narrative
        }
        const ParallelFactorResult run = factor_parallel(
            inst.matrix, inst.assembly, mode.budget, workers);
        const double speedup =
            run.feasible ? serial_seconds / std::max(run.factor_seconds, 1e-12)
                         : 0.0;
        if (run.feasible) {
          // The factor must be bit-identical to the serial engine's.
          TM_CHECK(run.factor.values == serial.factor.values,
                   "parallel factor diverged from serial on " << inst.name);
        }
        csv.write_row(
            {inst.name, CsvWriter::cell(static_cast<long long>(n)),
             CsvWriter::cell(static_cast<long long>(tree.size())),
             CsvWriter::cell(static_cast<long long>(workers)), mode.label,
             mode.budget == kInfiniteWeight ? std::string("inf")
                                            : std::to_string(mode.budget),
             run.feasible ? "1" : "0", CsvWriter::cell(serial_seconds),
             CsvWriter::cell(run.factor_seconds), CsvWriter::cell(speedup),
             CsvWriter::cell(static_cast<long long>(run.measured_peak_entries)),
             CsvWriter::cell(static_cast<long long>(run.modeled_peak_entries)),
             CsvWriter::cell(static_cast<long long>(run.flops))});
        if (mode.budget == kInfiniteWeight && workers == 8) {
          w8_seconds = run.factor_seconds;
          w8_speedup = speedup;
          w8_measured = run.measured_peak_entries;
          w8_modeled = std::max<Weight>(run.modeled_peak_entries, 1);
        }
        if (mode.budget != kInfiniteWeight && workers == 4) {
          capped_cell = run.feasible ? fmt(speedup) + "x" : "stall";
        }
      }
    }

    table.add_row({inst.name, std::to_string(n), fmt(serial_seconds, 3),
                   fmt(w8_seconds, 3), fmt(w8_speedup),
                   fmt(static_cast<double>(w8_measured) /
                       static_cast<double>(w8_modeled)),
                   capped_cell});
  }

  std::cout << table.to_string();
  std::cout << "\nreading: real frontal kernels through the memory-bounded\n"
               "executor reproduce the serial factor bit for bit at every\n"
               "worker count, while the engine's measured live entries stay\n"
               "within the executor's Eq. 1 model (ratio <= 1; equality is\n"
               "only reachable with perfect amalgamation). Capping the\n"
               "modeled budget at 1.5x the w=1 peak throttles or stalls the\n"
               "greedy schedule — the memory/parallelism tension the paper's\n"
               "conclusion anticipates, now on real numeric payloads.\n";
  std::cout << "raw data: " << csv.path() << "\n";
  return 0;
}

}  // namespace

int main() { return run(); }
