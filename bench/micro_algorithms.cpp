// Google-Benchmark microbenchmarks: scaling of the three MinMemory
// algorithms, the MinIO simulator and the symbolic-factorization substrate
// across tree shapes and sizes.
#include <benchmark/benchmark.h>

#include "core/liu.hpp"
#include "core/minio.hpp"
#include "core/minmem.hpp"
#include "core/postorder.hpp"
#include "order/ordering.hpp"
#include "perf/corpus.hpp"
#include "sparse/generators.hpp"
#include "support/prng.hpp"
#include "symbolic/assembly_tree.hpp"
#include "symbolic/symbolic.hpp"
#include "tree/generators.hpp"

namespace {

using namespace treemem;

Tree bench_tree(int shape, NodeId p) {
  Prng prng(static_cast<std::uint64_t>(shape) * 7919 + static_cast<std::uint64_t>(p));
  switch (shape) {
    case 0:
      return gen::chain(p, 8, 2);
    case 1: {
      // complete binary tree of ~p nodes
      NodeId levels = 1;
      while ((NodeId{1} << levels) - 1 < p) {
        ++levels;
      }
      return gen::complete_kary(2, levels, 8, 2);
    }
    default: {
      gen::RandomTreeOptions options;
      options.chain_bias = 0.3;
      options.max_file = 64;
      options.max_work = 16;
      return gen::random_tree(p, options, prng);
    }
  }
}

const char* shape_name(int shape) {
  switch (shape) {
    case 0:
      return "chain";
    case 1:
      return "binary";
    default:
      return "random";
  }
}

void BM_PostOrder(benchmark::State& state) {
  const Tree tree = bench_tree(static_cast<int>(state.range(0)),
                               static_cast<NodeId>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(best_postorder(tree).peak);
  }
  state.SetLabel(shape_name(static_cast<int>(state.range(0))));
  state.SetComplexityN(state.range(1));
}

void BM_LiuExact(benchmark::State& state) {
  const Tree tree = bench_tree(static_cast<int>(state.range(0)),
                               static_cast<NodeId>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(liu_optimal(tree).peak);
  }
  state.SetLabel(shape_name(static_cast<int>(state.range(0))));
  state.SetComplexityN(state.range(1));
}

void BM_MinMem(benchmark::State& state) {
  const Tree tree = bench_tree(static_cast<int>(state.range(0)),
                               static_cast<NodeId>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(minmem_optimal(tree).peak);
  }
  state.SetLabel(shape_name(static_cast<int>(state.range(0))));
  state.SetComplexityN(state.range(1));
}

void BM_MinIoFirstFit(benchmark::State& state) {
  const Tree tree = bench_tree(2, static_cast<NodeId>(state.range(0)));
  const MinMemResult mm = minmem_optimal(tree);
  const Weight lo = std::max(tree.max_mem_req(), tree.file_size(tree.root()));
  const Weight memory = lo + (mm.peak - lo) / 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        minio_heuristic(tree, mm.order, memory, EvictionPolicy::kFirstFit)
            .io_volume);
  }
}

void BM_EliminationTree(benchmark::State& state) {
  const Index side = static_cast<Index>(state.range(0));
  const SparsePattern a = symmetrize(gen::grid2d(side, side));
  for (auto _ : state) {
    benchmark::DoNotOptimize(elimination_tree(a));
  }
  state.SetComplexityN(side * side);
}

void BM_ColumnCounts(benchmark::State& state) {
  const Index side = static_cast<Index>(state.range(0));
  const SparsePattern a = symmetrize(gen::grid2d(side, side));
  const std::vector<Index> parent = elimination_tree(a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(column_counts(a, parent));
  }
}

void BM_MinDegree(benchmark::State& state) {
  const Index side = static_cast<Index>(state.range(0));
  const SparsePattern a = symmetrize(gen::grid2d(side, side));
  for (auto _ : state) {
    benchmark::DoNotOptimize(min_degree_order(a));
  }
  state.SetComplexityN(side * side);
}

void BM_NestedDissection(benchmark::State& state) {
  const Index side = static_cast<Index>(state.range(0));
  const SparsePattern a = symmetrize(gen::grid2d(side, side));
  for (auto _ : state) {
    benchmark::DoNotOptimize(nested_dissection_order(a));
  }
}

void BM_AssemblyTreePipeline(benchmark::State& state) {
  const Index side = static_cast<Index>(state.range(0));
  const SparsePattern a = symmetrize(gen::grid2d(side, side));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        assembly_tree_for(a, OrderingKind::kMinDegree, 4).size());
  }
}

}  // namespace

BENCHMARK(BM_PostOrder)
    ->ArgsProduct({{0, 1, 2}, {1 << 10, 1 << 13, 1 << 16}})
    ->Unit(benchmark::kMicrosecond)->MinTime(0.1);
BENCHMARK(BM_LiuExact)
    ->ArgsProduct({{0, 1, 2}, {1 << 10, 1 << 13, 1 << 16}})
    ->Unit(benchmark::kMicrosecond)->MinTime(0.1);
BENCHMARK(BM_MinMem)
    ->ArgsProduct({{0, 1, 2}, {1 << 10, 1 << 13, 1 << 16}})
    ->Unit(benchmark::kMicrosecond)->MinTime(0.1);
BENCHMARK(BM_MinIoFirstFit)->Arg(1 << 10)->Arg(1 << 13)->Unit(benchmark::kMicrosecond)->MinTime(0.1);
BENCHMARK(BM_EliminationTree)->Arg(32)->Arg(64)->Arg(128)->Unit(benchmark::kMicrosecond)->MinTime(0.1);
BENCHMARK(BM_ColumnCounts)->Arg(32)->Arg(64)->Arg(128)->Unit(benchmark::kMicrosecond)->MinTime(0.1);
BENCHMARK(BM_MinDegree)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond)->MinTime(0.1);
BENCHMARK(BM_NestedDissection)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond)->MinTime(0.1);
BENCHMARK(BM_AssemblyTreePipeline)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond)->MinTime(0.1);

BENCHMARK_MAIN();
