// Figure 6: performance profiles of the running times of the three
// MinMemory algorithms (PostOrder, Liu, MinMem) on the assembly-tree
// corpus.
//
// Paper's result: MinMem is the fastest algorithm in ~80% of the cases and
// clearly outperforms Liu; PostOrder (O(p log p)) is cheap but suboptimal
// in memory. Timings run serially (no thread contention) with median-of-3.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/liu.hpp"
#include "core/minmem.hpp"
#include "core/postorder.hpp"
#include "perf/profile.hpp"
#include "support/csv.hpp"
#include "support/text_table.hpp"

namespace {

using namespace treemem;

int run() {
  const auto instances = build_corpus_instances(bench::corpus_options());
  bench::print_header("Fig. 6 — runtime profiles of PostOrder / Liu / MinMem");
  std::cout << "instances: " << instances.size() << ", median of 3 runs each\n";

  CsvWriter csv(bench::output_dir() + "/fig6_runtimes.csv",
                {"instance", "nodes", "postorder_s", "liu_s", "minmem_s",
                 "optimal_peak"});
  std::vector<std::vector<double>> times;
  int minmem_fastest = 0;
  int postorder_fastest = 0;
  int liu_fastest = 0;
  for (const CorpusInstance& inst : instances) {
    Weight po_peak = 0;
    Weight liu_peak = 0;
    Weight mm_peak = 0;
    const double po_s =
        bench::median_time_s([&]() { po_peak = best_postorder(inst.tree).peak; });
    const double liu_s =
        bench::median_time_s([&]() { liu_peak = liu_optimal(inst.tree).peak; });
    const double mm_s =
        bench::median_time_s([&]() { mm_peak = minmem_optimal(inst.tree).peak; });
    TM_CHECK(liu_peak == mm_peak, "optimal algorithms disagree on " << inst.name);
    TM_CHECK(po_peak >= mm_peak, "postorder beat the optimum on " << inst.name);
    csv.write_row({inst.name,
                   CsvWriter::cell(static_cast<long long>(inst.tree.size())),
                   CsvWriter::cell(po_s), CsvWriter::cell(liu_s),
                   CsvWriter::cell(mm_s),
                   CsvWriter::cell(static_cast<long long>(mm_peak))});
    times.push_back({mm_s, po_s, liu_s});
    if (mm_s <= po_s && mm_s <= liu_s) {
      ++minmem_fastest;
    } else if (po_s <= liu_s) {
      ++postorder_fastest;
    } else {
      ++liu_fastest;
    }
  }

  ProfileOptions options;
  options.max_tau = 5.0;  // the paper plots tau in [1, 5]
  const auto profiles =
      performance_profiles(times, {"MinMem", "PostOrder", "Liu"}, options);
  std::cout << "\nFig. 6 — runtime performance profiles (tau in [1,5]):\n"
            << render_profiles(profiles, "tau (time / fastest)");

  TextTable table({"algorithm", "fastest on", "fraction"});
  auto frac = [&](int count) {
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(1)
        << 100.0 * count / static_cast<double>(instances.size()) << "%";
    return oss.str();
  };
  table.add_row({"MinMem", std::to_string(minmem_fastest), frac(minmem_fastest)});
  table.add_row({"PostOrder", std::to_string(postorder_fastest), frac(postorder_fastest)});
  table.add_row({"Liu", std::to_string(liu_fastest), frac(liu_fastest)});
  std::cout << "\n" << table.to_string();
  std::cout << "paper: MinMem fastest in ~80% of cases, Liu slowest overall\n";
  std::cout << "raw data: " << csv.path() << "\n";
  return 0;
}

}  // namespace

int main() { return run(); }
