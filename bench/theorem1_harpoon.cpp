// Theorem 1 / Fig. 3: the iterated-harpoon family on which the best
// postorder requires arbitrarily more memory than the optimal traversal.
//
// For b branches, L levels, big file M and small file eps:
//   M_PO  = M + eps + L*(b-1)*M/b        (grows linearly in L)
//   M_opt = M + eps + L*(b-1)*eps        (grows by eps per level)
// so M_PO / M_opt -> 1 + (L(b-1)/b)*(M/...) is unbounded in L. The harness
// sweeps L and b, checks the measured peaks against the closed forms, and
// prints the ratio growth.
#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "core/liu.hpp"
#include "core/minmem.hpp"
#include "core/postorder.hpp"
#include "support/csv.hpp"
#include "support/text_table.hpp"
#include "tree/generators.hpp"

namespace {

using namespace treemem;

int run() {
  bench::print_header("Theorem 1 — iterated harpoon: postorder vs optimal");
  CsvWriter csv(bench::output_dir() + "/theorem1_harpoon.csv",
                {"branches", "levels", "nodes", "postorder", "optimal",
                 "ratio", "closed_form_postorder", "closed_form_optimal"});
  TextTable table({"b", "L", "nodes", "PostOrder", "Optimal", "ratio"});

  const Weight big = 10000;
  const Weight eps = 5;
  for (const NodeId b : {2, 4, 8}) {
    for (NodeId levels = 1; levels <= 7; ++levels) {
      const Tree tree = gen::iterated_harpoon(b, levels, big, eps);
      const Weight po = best_postorder_peak(tree);
      const Weight opt_liu = liu_optimal_peak(tree);
      const Weight opt_mm = minmem_optimal(tree).peak;
      TM_CHECK(opt_liu == opt_mm, "optimal algorithms disagree");

      const Weight expected_po =
          big + eps + static_cast<Weight>(levels) * (b - 1) * (big / b);
      const Weight expected_opt =
          big + eps + static_cast<Weight>(levels) * (b - 1) * eps;
      TM_CHECK(po == expected_po, "postorder closed form violated: " << po
                                  << " != " << expected_po);
      TM_CHECK(opt_liu == expected_opt, "optimal closed form violated");

      const double ratio = static_cast<double>(po) / static_cast<double>(opt_liu);
      std::ostringstream ratio_str;
      ratio_str << std::fixed << std::setprecision(3) << ratio;
      table.add_row({std::to_string(b), std::to_string(levels),
                     std::to_string(tree.size()), std::to_string(po),
                     std::to_string(opt_liu), ratio_str.str()});
      csv.write_row({CsvWriter::cell(static_cast<long long>(b)),
                     CsvWriter::cell(static_cast<long long>(levels)),
                     CsvWriter::cell(static_cast<long long>(tree.size())),
                     CsvWriter::cell(static_cast<long long>(po)),
                     CsvWriter::cell(static_cast<long long>(opt_liu)),
                     CsvWriter::cell(ratio),
                     CsvWriter::cell(static_cast<long long>(expected_po)),
                     CsvWriter::cell(static_cast<long long>(expected_opt))});
    }
  }
  std::cout << table.to_string();
  std::cout << "\nevery row matches the closed forms of Theorem 1 exactly;\n"
               "the ratio grows without bound as L increases.\n";
  std::cout << "raw data: " << bench::output_dir() << "/theorem1_harpoon.csv\n";
  return 0;
}

}  // namespace

int main() { return run(); }
