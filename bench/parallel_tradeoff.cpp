// Extension bench: the parallel memory/speedup trade-off the paper's
// conclusion motivates. For a sample of corpus assembly trees, simulate the
// multifrontal task tree on 1..16 workers and report (a) the speedup and
// (b) the shared-memory peak, then repeat with the memory capped at the
// serial optimum to show how the bound throttles parallelism.
#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "core/minmem.hpp"
#include "parallel/parallel_sim.hpp"
#include "support/csv.hpp"
#include "support/text_table.hpp"

namespace {

using namespace treemem;

int run() {
  CorpusOptions options = bench::corpus_options();
  options.relax_values = {4};  // one amalgamation level suffices here
  const auto instances = build_corpus_instances(options);
  bench::print_header(
      "Extension — parallel traversal: speedup vs shared-memory peak");

  CsvWriter csv(bench::output_dir() + "/parallel_tradeoff.csv",
                {"instance", "workers", "priority", "memory_budget",
                 "feasible", "makespan", "speedup", "peak_memory"});

  TextTable table({"instance", "w", "speedup (free)", "peak / serial peak",
                   "speedup (cap 1.5x)", "slowdown from cap"});
  auto fmt = [](double v) {
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(2) << v;
    return oss.str();
  };

  // A manageable sample: one instance per matrix family per ordering.
  for (std::size_t i = 0; i < instances.size(); i += 7) {
    const Tree& tree = instances[i].tree;
    const Weight serial_opt = minmem_optimal(tree).peak;

    for (const int workers : {2, 4, 8, 16}) {
      ParallelOptions free_opts;
      free_opts.workers = workers;
      const auto free_run = simulate_parallel_traversal(tree, free_opts);
      TM_CHECK(free_run.feasible, "unbounded run must be feasible");

      // Cap at 1.5x the serial optimum (a tight cap can deadlock the
      // greedy scheduler outright — eagerly started subtrees strand
      // resident files; the CSV sweeps 1.0x/1.5x/2.0x to chart where the
      // throttle becomes a deadlock).
      ParallelOptions capped = free_opts;
      capped.memory_budget =
          std::max(serial_opt * 3 / 2, tree.max_mem_req());
      const auto capped_run = simulate_parallel_traversal(tree, capped);
      for (const int pct : {100, 200}) {
        ParallelOptions sweep = free_opts;
        sweep.memory_budget =
            std::max(serial_opt * pct / 100, tree.max_mem_req());
        const auto sweep_run = simulate_parallel_traversal(tree, sweep);
        csv.write_row({instances[i].name,
                       CsvWriter::cell(static_cast<long long>(workers)),
                       "cap" + std::to_string(pct),
                       std::to_string(sweep.memory_budget),
                       sweep_run.feasible ? "1" : "0",
                       CsvWriter::cell(sweep_run.makespan),
                       CsvWriter::cell(sweep_run.speedup),
                       CsvWriter::cell(static_cast<long long>(sweep_run.peak_memory))});
      }

      for (const auto& [label, run, budget] :
           {std::tuple{"free", &free_run, kInfiniteWeight},
            std::tuple{"capped", &capped_run, capped.memory_budget}}) {
        csv.write_row(
            {instances[i].name, CsvWriter::cell(static_cast<long long>(workers)),
             label,
             budget == kInfiniteWeight
                 ? std::string("inf")
                 : std::to_string(budget),
             run->feasible ? "1" : "0", CsvWriter::cell(run->makespan),
             CsvWriter::cell(run->speedup),
             CsvWriter::cell(static_cast<long long>(run->peak_memory))});
      }

      if (workers == 8) {
        table.add_row(
            {instances[i].name, std::to_string(workers), fmt(free_run.speedup),
             fmt(static_cast<double>(free_run.peak_memory) /
                 static_cast<double>(serial_opt)),
             capped_run.feasible ? fmt(capped_run.speedup)
                                 : "deadlock",
             capped_run.feasible
                 ? fmt(capped_run.makespan / free_run.makespan)
                 : "-"});
      }
    }
  }
  std::cout << table.to_string();
  std::cout << "\nreading: parallel speedup costs memory — 8 workers push the\n"
               "peak to 2-3x the serial optimum. Tight caps throttle the\n"
               "schedule or deadlock the greedy scheduler outright (started\n"
               "subtrees strand resident files) — the memory/parallelism\n"
               "tension the paper's conclusion anticipates.\n";
  std::cout << "raw data: " << csv.path() << "\n";
  return 0;
}

}  // namespace

int main() { return run(); }
